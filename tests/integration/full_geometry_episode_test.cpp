// Integration: the OAQ protocol driven by TRUE orbital geometry
// (GeometricSchedule over real constellations) instead of the
// timing-diagram idealization.
#include <gtest/gtest.h>

#include "oaq/episode.hpp"

namespace oaq {
namespace {

Constellation polar_plane(int k) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = k;
  d.inclination_rad = deg2rad(90.0);
  return Constellation(d);
}

ProtocolConfig quick_config(double tau_min = 5.0) {
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(tau_min);
  cfg.delta = Duration::seconds(6);
  cfg.tg = Duration::seconds(3);
  cfg.computation_cap = Duration::seconds(3);
  return cfg;
}

TEST(FullGeometryEpisode, UnderlapPlaneReachesSequentialDual) {
  // k = 9 polar plane over an equatorial centerline target: real passes
  // are 9 min with 1-min gaps (Tr = 10).
  const auto c = polar_plane(9);
  const GeometricSchedule sched(c, GeoPoint{0.0, 0.0});
  const EpisodeEngine engine(sched, quick_config(), true);
  Rng rng(1);
  // Passes over the target run [5.5, 14.5], [15.5, 24.5], ... ; a signal
  // at t = 13 is detected near the end of a pass, so the next satellite
  // (arriving 15.5) is inside the 5-minute window of opportunity.
  const auto r = engine.run(TimePoint::at(Duration::minutes(13.0)),
                            Duration::minutes(30), rng);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSequentialDual);
  EXPECT_TRUE(r.timely);
  EXPECT_EQ(r.alerts_sent, 1);
}

TEST(FullGeometryEpisode, OverlapPlaneReachesSimultaneousDual) {
  // k = 14 polar plane: Tr = 6.43 < Tc = 9, real overlap windows exist.
  const auto c = polar_plane(14);
  const GeometricSchedule sched(c, GeoPoint{0.0, 0.0});
  const EpisodeEngine engine(sched, quick_config(), true);
  Rng rng(2);
  const auto r = engine.run(TimePoint::at(Duration::minutes(10.0)),
                            Duration::minutes(30), rng);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.level, QosLevel::kSimultaneousDual);
  EXPECT_TRUE(r.timely);
}

TEST(FullGeometryEpisode, BaqNeverExceedsOaqOverManyEpisodes) {
  const auto c = polar_plane(9);
  const GeometricSchedule sched(c, GeoPoint{0.0, 0.0});
  const EpisodeEngine oaq(sched, quick_config(), true);
  const EpisodeEngine baq(sched, quick_config(), false);
  Rng master(3);
  int oaq_high = 0, baq_high = 0;
  for (int e = 0; e < 60; ++e) {
    const auto start = TimePoint::at(
        Duration::minutes(5.0 + 1.5 * static_cast<double>(e)));
    Rng r1 = master.fork(static_cast<std::uint64_t>(2 * e));
    Rng r2 = master.fork(static_cast<std::uint64_t>(2 * e + 1));
    const auto ro = oaq.run(start, Duration::minutes(25), r1);
    const auto rb = baq.run(start, Duration::minutes(25), r2);
    oaq_high += to_int(ro.level) >= 2;
    baq_high += to_int(rb.level) >= 2;
    EXPECT_GE(to_int(ro.level), to_int(rb.level) > 0 ? 1 : 0);
  }
  EXPECT_GT(oaq_high, baq_high);
  EXPECT_GT(oaq_high, 20);
  EXPECT_EQ(baq_high, 0);  // underlap: BAQ cannot exceed level 1
}

TEST(FullGeometryEpisode, ReferenceConstellationAt30North) {
  // The full 98-satellite constellation over a 30°N target: detection is
  // quick (near-continuous coverage) and a timely alert always goes out.
  const auto c = Constellation::reference();
  const GeometricSchedule sched(c, GeoPoint::from_degrees(30.0, 13.0));
  const EpisodeEngine engine(sched, quick_config(), true);
  Rng master(4);
  for (int e = 0; e < 10; ++e) {
    const auto start = TimePoint::at(
        Duration::minutes(3.0 + 4.0 * static_cast<double>(e)));
    Rng rng = master.fork(static_cast<std::uint64_t>(e));
    const auto r = engine.run(start, Duration::minutes(20), rng);
    EXPECT_TRUE(r.detected) << "episode " << e;
    EXPECT_TRUE(r.alert_delivered) << "episode " << e;
    EXPECT_TRUE(r.timely) << "episode " << e;
    EXPECT_GE(to_int(r.level), 1) << "episode " << e;
  }
}

TEST(FullGeometryEpisode, DegradedReferencePlaneStillDelivers) {
  auto c = Constellation::reference();
  for (int j = 0; j < c.num_planes(); ++j) c.plane(j).set_active_count(9);
  const GeometricSchedule sched(c, GeoPoint::from_degrees(0.0, 0.0));
  const EpisodeEngine engine(sched, quick_config(), true);
  Rng rng(5);
  const auto r = engine.run(TimePoint::at(Duration::minutes(12.0)),
                            Duration::minutes(30), rng);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_TRUE(r.timely);
}

}  // namespace
}  // namespace oaq
