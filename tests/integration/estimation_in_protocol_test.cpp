// Integration: the estimation substrate behind a protocol episode.
//
// Plays out an OAQ sequential-dual episode, then generates the REAL
// Doppler measurements the chain's satellites would have collected and
// verifies that sequential WLS delivers the accuracy ordering the
// protocol's AccuracyModel assumes (TC-1's basis).
#include <gtest/gtest.h>

#include "geoloc/sequential.hpp"
#include "oaq/episode.hpp"

namespace oaq {
namespace {

TEST(EstimationInProtocol, ChainMeasurementsReproduceAccuracyOrdering) {
  // Protocol side: k = 9 plane, sequential-dual episode.
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(5);
  cfg.delta = Duration::zero();
  cfg.tg = Duration::zero();
  cfg.computation_cap = Duration::seconds(1e-6);
  const EpisodeEngine engine(sched, cfg, true);
  Rng rng(1);
  const auto episode = engine.run(TimePoint::at(Duration::minutes(2)),
                                  Duration::minutes(30), rng);
  ASSERT_EQ(episode.level, QosLevel::kSequentialDual);
  ASSERT_EQ(episode.chain_length, 2);

  // Estimation side: the same two-pass revisit pattern with real orbits
  // (polar plane, k = 9 -> Tr = 10 min), Doppler noise 5 Hz.
  Emitter emitter;
  emitter.position = GeoPoint::from_degrees(30.0, 31.0);
  emitter.carrier_hz = 400e6;
  emitter.start = TimePoint::origin();
  const DopplerModel model(true);
  Rng meas_rng(2);
  SequentialLocalizer localizer;
  std::vector<double> errors;
  for (int pass = 0; pass < 2; ++pass) {
    const Orbit orbit = Orbit::circular_with_period(
        Duration::minutes(90), deg2rad(85.0), deg2rad(30.0),
        -2.0 * kPi * pass / 9.0);
    const auto batch = model.take_measurements(
        orbit, {0, pass}, emitter,
        measurement_epochs(Duration::minutes(5) + Duration::minutes(10) * pass,
                           Duration::minutes(13) + Duration::minutes(10) * pass,
                           25),
        deg2rad(18.0), 5.0, meas_rng);
    ASSERT_GE(batch.size(), 5u);
    const auto& est = localizer.incorporate(batch);
    errors.push_back(est.position_error_1sigma_km);
  }

  // The protocol's parametric accuracy model assumes a contraction per
  // added pass; the real estimator must exhibit one.
  EXPECT_LT(errors[1], errors[0] * 0.8);
  // And the delivered level-2 error estimate in the episode is consistent
  // with the model used by TC-1.
  const AccuracyModel acc;
  EXPECT_NEAR(episode.reported_error_km, acc.sequential_error_km(2), 1e-9);
}

}  // namespace
}  // namespace oaq
