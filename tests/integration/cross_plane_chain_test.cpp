// Integration: coordination chains across orbital planes.
//
// Footnote 3 of the paper assumes, for illustration, that the chain
// coincides with one plane — "however, the algorithm itself is general".
// With true geometry, a target sitting between two planes' ground tracks
// is revisited by satellites of BOTH planes; the protocol's next-visitor
// rule (next pass over the target, whoever flies it) forms a cross-plane
// chain without any special handling.
#include <gtest/gtest.h>

#include <set>

#include "oaq/episode.hpp"

namespace oaq {
namespace {

/// Two sparse polar planes with nodes 30° apart: each plane alone leaves
/// minute-scale gaps over a target between their tracks, but their passes
/// interleave.
Constellation two_planes() {
  ConstellationDesign d;
  d.num_planes = 2;
  d.sats_per_plane = 9;
  d.inclination_rad = deg2rad(90.0);
  d.raan_spread_rad = deg2rad(60.0);  // planes at 0° and 30°
  d.phasing_factor = 1;  // shift plane 1 by 5 min: passes interleave
  return Constellation(d);
}

TEST(CrossPlaneChain, ParticipantsSpanPlanes) {
  const auto c = two_planes();
  // A target between the two ground tracks (both planes' footprints reach
  // it during their equator crossings).
  const GeoPoint target = GeoPoint::from_degrees(0.0, 16.0);
  const GeometricSchedule sched(c, target);

  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(20);
  cfg.delta = Duration::seconds(6);
  cfg.tg = Duration::seconds(3);
  cfg.computation_cap = Duration::seconds(3);
  const EpisodeEngine engine(sched, cfg, true);

  // Sweep signal starts until an episode's chain spans both planes.
  bool cross_plane_seen = false;
  Rng master(7);
  for (int e = 0; e < 40 && !cross_plane_seen; ++e) {
    Rng rng = master.fork(static_cast<std::uint64_t>(e));
    const auto r = engine.run(
        TimePoint::at(Duration::minutes(2.0 + 2.0 * e)),
        Duration::minutes(40), rng);
    if (!r.detected) continue;
    EXPECT_TRUE(r.alert_delivered);
    std::set<int> planes;
    for (const auto id : r.participants) planes.insert(id.plane);
    if (planes.size() >= 2) {
      cross_plane_seen = true;
      EXPECT_GE(r.chain_length, 2);
      EXPECT_GE(to_int(r.level), 2);
    }
  }
  EXPECT_TRUE(cross_plane_seen)
      << "no cross-plane chain formed in 40 episodes";
}

TEST(CrossPlaneChain, ParticipantsMatchChainLength) {
  // In the single-plane timing-diagram world, participants are exactly the
  // chain members (sequential case) and in join order.
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(25);
  cfg.delta = Duration::zero();
  cfg.tg = Duration::zero();
  cfg.computation_cap = Duration::seconds(1e-6);
  const EpisodeEngine engine(sched, cfg, true);
  Rng rng(1);
  const auto r = engine.run(TimePoint::at(Duration::minutes(2)),
                            Duration::minutes(60), rng);
  ASSERT_EQ(r.chain_length, 4);
  ASSERT_EQ(r.participants.size(), 4u);
  // Join order: slots descend mod k (next visitor = slot − 1 mod 9).
  for (std::size_t i = 1; i < r.participants.size(); ++i) {
    EXPECT_EQ(r.participants[i].slot,
              (r.participants[i - 1].slot + 9 - 1) % 9);
  }
}

}  // namespace
}  // namespace oaq
