// Integration: the paper's full evaluation pipeline, Eq. (3) —
// dependability model P(k) composed with the conditional QoS model —
// against a direct campaign simulation that samples capacities from the
// same failure history and runs real protocol episodes.
#include <gtest/gtest.h>

#include "analytic/measure.hpp"
#include "fault/plane_capacity.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

TEST(Pipeline, AnalyticMeasureMatchesCampaignSimulation) {
  PlaneDependability dep;
  dep.satellite_failure_rate = Rate::per_hour(7e-5);
  dep.policy.ground_threshold = 10;

  // Analytic side: Eq. (3) with the simulated capacity pmf.
  const auto pk = plane_capacity_pmf(dep, 11, 400);
  QosModelParams params;
  params.tau = Duration::minutes(5);
  params.mu = Rate::per_minute(0.5);
  params.nu = Rate::per_minute(30);
  const QosModel model(PlaneGeometry{}, params);
  const auto analytic = qos_measure(model, pk, Scheme::kOaq);

  // Campaign side: sample signal arrival instants over a long capacity
  // trace (PASTA), run a protocol episode per signal.
  const auto trace =
      simulate_capacity_trace(dep, 11, Duration::hours(30000.0 * 50));
  ProtocolConfig protocol;
  protocol.tau = params.tau;
  protocol.delta = Duration::zero();
  protocol.tg = Duration::zero();
  protocol.nu = params.nu;
  Rng rng(12);
  DiscretePmf levels;
  const PlaneGeometry geometry;
  const Duration horizon = Duration::hours(30000.0 * 50);
  std::size_t cursor = 0;
  TimePoint t = TimePoint::origin();
  const Rate signal_rate = Rate::per_hour(1.0 / 120.0);
  int signals = 0;
  while (signals < 8000) {
    t = t + rng.exponential(signal_rate);
    if (t.since_origin() >= horizon) break;
    ++signals;
    while (cursor + 1 < trace.size() && trace[cursor + 1].at <= t) ++cursor;
    const int k = trace[cursor].active;
    if (k <= 0) {
      levels.add(0);
      continue;
    }
    const AnalyticSchedule sched(
        geometry, k, rng.uniform(Duration::zero(), geometry.tr(k)));
    const EpisodeEngine engine(sched, protocol, true);
    Rng ep = rng.fork(static_cast<std::uint64_t>(signals));
    const auto r = engine.run(TimePoint::at(Duration::minutes(60)),
                              rng.exponential(params.mu), ep);
    levels.add(to_int(r.alert_delivered ? r.level : QosLevel::kMissed));
  }
  ASSERT_GT(signals, 4000);

  for (int y = 0; y <= 3; ++y) {
    EXPECT_NEAR(levels.probability(y), analytic.at(y), 0.03)
        << "level " << y;
  }
}

TEST(Pipeline, CapacityPmfFromTraceMatchesDirectPmf) {
  // The time-weighted pmf accumulated from a trace must agree with the
  // dedicated estimator (same engine, same regeneration argument).
  PlaneDependability dep;
  dep.satellite_failure_rate = Rate::per_hour(1e-4);
  dep.policy.ground_threshold = 10;
  const int cycles = 200;
  const Duration horizon = dep.policy.scheduled_period * cycles;
  const auto trace = simulate_capacity_trace(dep, 21, horizon);
  DiscretePmf from_trace;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TimePoint end =
        i + 1 < trace.size() ? trace[i + 1].at : TimePoint::at(horizon);
    from_trace.add(trace[i].active, (end - trace[i].at).to_hours());
  }
  const auto direct = plane_capacity_pmf(dep, 21, cycles);
  for (int k = 7; k <= 14; ++k) {
    EXPECT_NEAR(from_trace.probability(k), direct.probability(k), 1e-9)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace oaq
