// Golden-file equivalence with the seed DES kernel (ISSUE 3).
//
// tests/data/golden_* were captured from the pre-pooling kernel with the
// exact oaqctl invocations documented in tests/data/README.md. The pooled
// kernel, flat network dispatch, and any future hot-path change must
// reproduce those bytes exactly — trace JSONL and metrics JSON are fully
// deterministic for a fixed seed at any worker count. A mismatch here
// means a semantic change to event ordering, RNG stream consumption, or
// accounting, not a style regression.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

std::string read_file(const std::string& name) {
  const std::string path = std::string(OAQ_TEST_DATA_DIR) + "/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing golden file: " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// The configuration `oaqctl simulate --k 9 --episodes 200 --seed 7` builds.
QosSimulationConfig golden_simulate_config() {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 200;
  cfg.seed = 7;
  cfg.mu = Rate::per_minute(0.5);
  cfg.opportunity_adaptive = true;
  cfg.protocol.tau = Duration::minutes(5.0);
  cfg.protocol.delta = Duration::seconds(12.0);
  cfg.protocol.tg = Duration::seconds(6.0);
  cfg.protocol.computation_cap = cfg.protocol.tg;
  return cfg;
}

/// The configuration `oaqctl campaign --k 9 --per-hour 5 --hours 10
/// --seed 3 --replications 4` builds.
CampaignConfig golden_campaign_config() {
  CampaignConfig cfg;
  cfg.k = 9;
  cfg.signal_arrival_rate = Rate::per_hour(5.0);
  cfg.horizon = Duration::hours(10.0);
  cfg.protocol.tau = Duration::minutes(5.0);
  cfg.protocol.nu = Rate::per_minute(30.0);
  cfg.protocol.computation_cap = Duration::seconds(6.0);
  cfg.compute_contention = true;
  cfg.seed = 3;
  cfg.replications = 4;
  return cfg;
}

TEST(KernelGolden, SimulateTraceAndMetricsMatchSeedKernel) {
  const std::string golden_trace = read_file("golden_simulate_trace.jsonl");
  const std::string golden_metrics = read_file("golden_simulate_metrics.json");
  ASSERT_FALSE(golden_trace.empty());
  for (const int jobs : {1, 4, 8}) {
    QosSimulationConfig cfg = golden_simulate_config();
    cfg.jobs = jobs;
    TraceCollector trace;
    MetricsRegistry metrics;
    cfg.trace = &trace;
    cfg.metrics = &metrics;
    (void)simulate_qos(cfg);
    std::ostringstream ts;
    trace.write_jsonl(ts);
    EXPECT_EQ(ts.str(), golden_trace) << "trace drifted at jobs=" << jobs;
    std::ostringstream ms;
    metrics.write_json(ms);
    ms << "\n";  // oaqctl terminates the file with a newline
    EXPECT_EQ(ms.str(), golden_metrics) << "metrics drifted at jobs=" << jobs;
  }
}

TEST(KernelGolden, CampaignTraceAndMetricsMatchSeedKernel) {
  const std::string golden_trace = read_file("golden_campaign_trace.jsonl");
  const std::string golden_metrics = read_file("golden_campaign_metrics.json");
  ASSERT_FALSE(golden_trace.empty());
  for (const int jobs : {1, 4}) {
    CampaignConfig cfg = golden_campaign_config();
    cfg.jobs = jobs;
    TraceCollector trace;
    MetricsRegistry metrics;
    cfg.trace = &trace;
    cfg.metrics = &metrics;
    (void)run_campaign(cfg);
    std::ostringstream ts;
    trace.write_jsonl(ts);
    EXPECT_EQ(ts.str(), golden_trace) << "trace drifted at jobs=" << jobs;
    std::ostringstream ms;
    metrics.write_json(ms);
    ms << "\n";
    EXPECT_EQ(ms.str(), golden_metrics) << "metrics drifted at jobs=" << jobs;
  }
}

}  // namespace
}  // namespace oaq
