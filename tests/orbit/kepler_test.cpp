#include "orbit/kepler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(SolveKepler, CircularIsIdentity) {
  for (double m : {0.0, 0.5, 2.0, -1.3}) {
    EXPECT_NEAR(solve_kepler(m, 0.0), wrap_pi(m), 1e-13);
  }
}

TEST(SolveKepler, SatisfiesKeplerEquation) {
  for (double e : {0.01, 0.3, 0.7, 0.95}) {
    for (double m : {-2.5, -0.7, 0.1, 1.9, 3.0}) {
      const double E = solve_kepler(m, e);
      EXPECT_NEAR(E - e * std::sin(E), wrap_pi(m), 1e-11)
          << "e=" << e << " m=" << m;
    }
  }
}

TEST(SolveKepler, RejectsHyperbolic) {
  EXPECT_THROW((void)solve_kepler(0.0, 1.0), PreconditionError);
  EXPECT_THROW((void)solve_kepler(0.0, -0.1), PreconditionError);
}

TEST(Orbit, NinetyMinutePeriodAltitude) {
  // The paper's θ = 90 min orbit sits at ~275 km on a spherical Earth.
  const double a = Orbit::semi_major_for_period(Duration::minutes(90));
  EXPECT_NEAR(a - kEarthRadiusKm, 275.0, 10.0);
  const auto orbit = Orbit::circular_with_period(Duration::minutes(90), 0.0,
                                                 0.0, 0.0);
  EXPECT_NEAR(orbit.period().to_minutes(), 90.0, 1e-9);
}

TEST(Orbit, CircularRadiusIsConstant) {
  const auto orbit = Orbit::circular(500.0, deg2rad(85.0), 1.0, 0.3);
  const double r0 = orbit.position_eci(Duration::zero()).norm();
  EXPECT_NEAR(r0, kEarthRadiusKm + 500.0, 1e-9);
  for (double frac : {0.1, 0.37, 0.5, 0.93}) {
    const double r = orbit.position_eci(orbit.period() * frac).norm();
    EXPECT_NEAR(r, r0, 1e-6);
  }
}

TEST(Orbit, PeriodReturnsToStart) {
  const auto orbit = Orbit::circular(400.0, deg2rad(63.0), 0.7, 1.1);
  const Vec3 p0 = orbit.position_eci(Duration::zero());
  const Vec3 p1 = orbit.position_eci(orbit.period());
  EXPECT_NEAR((p1 - p0).norm(), 0.0, 1e-6);
}

TEST(Orbit, VelocityMagnitudeMatchesVisViva) {
  const auto orbit = Orbit::circular(500.0, deg2rad(45.0), 0.0, 0.0);
  const auto state = orbit.state_at(Duration::minutes(13.0));
  const double r = state.position_km.norm();
  const double v_expected = std::sqrt(kEarthMuKm3PerS2 / r);
  EXPECT_NEAR(state.velocity_km_s.norm(), v_expected, 1e-9);
  // Velocity perpendicular to position for circular orbits.
  EXPECT_NEAR(state.position_km.dot(state.velocity_km_s), 0.0, 1e-6);
}

TEST(Orbit, EllipticalConservesAngularMomentumAndEnergy) {
  KeplerianElements el;
  el.semi_major_km = 8000.0;
  el.eccentricity = 0.2;
  el.inclination_rad = deg2rad(30.0);
  el.raan_rad = 0.5;
  el.arg_perigee_rad = 1.2;
  el.mean_anomaly_rad = 0.0;
  const Orbit orbit(el);
  const auto s0 = orbit.state_at(Duration::zero());
  const double h0 = s0.position_km.cross(s0.velocity_km_s).norm();
  const double e0 = 0.5 * s0.velocity_km_s.norm2() -
                    kEarthMuKm3PerS2 / s0.position_km.norm();
  for (double frac : {0.2, 0.5, 0.8}) {
    const auto s = orbit.state_at(orbit.period() * frac);
    const double h = s.position_km.cross(s.velocity_km_s).norm();
    const double e = 0.5 * s.velocity_km_s.norm2() -
                     kEarthMuKm3PerS2 / s.position_km.norm();
    EXPECT_NEAR(h, h0, h0 * 1e-10);
    EXPECT_NEAR(e, e0, std::abs(e0) * 1e-10);
  }
  // Perigee and apogee radii.
  const double rp = orbit.state_at(Duration::zero()).position_km.norm();
  EXPECT_NEAR(rp, el.semi_major_km * (1.0 - el.eccentricity), 1e-6);
  const double ra = orbit.state_at(orbit.period() * 0.5).position_km.norm();
  EXPECT_NEAR(ra, el.semi_major_km * (1.0 + el.eccentricity), 1e-6);
}

TEST(Orbit, InclinationBoundsLatitude) {
  const double incl = deg2rad(55.0);
  const auto orbit = Orbit::circular(600.0, incl, 0.0, 0.0);
  double max_lat = 0.0;
  for (int i = 0; i < 360; ++i) {
    const auto p = orbit.subsatellite_point(orbit.period() * (i / 360.0));
    max_lat = std::max(max_lat, std::abs(p.lat_rad));
  }
  EXPECT_NEAR(max_lat, incl, 0.01);
}

TEST(Orbit, SubsatellitePointStartsAtAscendingNode) {
  const auto orbit = Orbit::circular(500.0, deg2rad(85.0), deg2rad(40.0), 0.0);
  const auto p = orbit.subsatellite_point(Duration::zero());
  EXPECT_NEAR(p.lat_deg(), 0.0, 1e-9);
  EXPECT_NEAR(p.lon_deg(), 40.0, 1e-9);
}

TEST(Orbit, EarthRotationShiftsGroundTrackWest) {
  const auto orbit = Orbit::circular_with_period(Duration::minutes(90),
                                                 deg2rad(85.0), 0.0, 0.0);
  const auto fixed = orbit.subsatellite_point(orbit.period(), false);
  const auto rotating = orbit.subsatellite_point(orbit.period(), true);
  EXPECT_NEAR(fixed.lon_deg(), 0.0, 1e-6);
  // One 90-min orbit: the Earth turns ~22.6° east, track shifts west.
  EXPECT_NEAR(rotating.lon_deg(), -rad2deg(kEarthRotationRadPerS * 5400.0),
              1e-6);
}

TEST(Orbit, RejectsSubterraneanOrbit) {
  KeplerianElements el;
  el.semi_major_km = 6000.0;
  EXPECT_THROW(Orbit{el}, PreconditionError);
  EXPECT_THROW((void)Orbit::circular(-10.0, 0.0, 0.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace oaq
