#include <gtest/gtest.h>

#include <cmath>

#include "orbit/kepler.hpp"

namespace oaq {
namespace {

Orbit leo(double incl_deg) {
  return Orbit::circular_with_period(Duration::minutes(90), deg2rad(incl_deg),
                                     deg2rad(40.0), 0.3);
}

TEST(J2, SecularRatesMatchTextbookFormulas) {
  // Sun-synchronous check: at ~97-98° inclination the node rate for a
  // ~560-km orbit is +0.9856°/day (the solar rate). Our 275-km orbit at
  // 97° should be in that ballpark.
  const auto orbit = Orbit::circular(560.0, deg2rad(97.64), 0.0, 0.0);
  const auto rates = orbit.j2_secular_rates();
  const double deg_per_day = rad2deg(rates.raan_rate) * 86400.0;
  EXPECT_NEAR(deg_per_day, 0.9856, 0.08);
}

TEST(J2, NodeRegressesWestwardForPrograde) {
  const auto rates = leo(85.0).j2_secular_rates();
  EXPECT_LT(rates.raan_rate, 0.0);  // cos i > 0 → regression
  // Polar orbit: no node drift.
  const auto polar = leo(90.0).j2_secular_rates();
  EXPECT_NEAR(polar.raan_rate, 0.0, 1e-12);
  // Retrograde: progression.
  EXPECT_GT(leo(100.0).j2_secular_rates().raan_rate, 0.0);
}

TEST(J2, CriticalInclinationFreezesPerigee) {
  // dω/dt = 0 at sin²i = 4/5 → i = 63.435°.
  const auto rates = leo(63.434948822922).j2_secular_rates();
  EXPECT_NEAR(rates.arg_perigee_rate, 0.0, 1e-15);
  EXPECT_GT(leo(40.0).j2_secular_rates().arg_perigee_rate, 0.0);
  EXPECT_LT(leo(80.0).j2_secular_rates().arg_perigee_rate, 0.0);
}

TEST(J2, DisabledByDefaultEnabledByWith) {
  const auto base = leo(85.0);
  EXPECT_FALSE(base.j2_enabled());
  const auto pert = base.with_j2();
  EXPECT_TRUE(pert.j2_enabled());
  // At t = 0 both agree.
  EXPECT_NEAR((base.position_eci(Duration::zero()) -
               pert.position_eci(Duration::zero()))
                  .norm(),
              0.0, 1e-9);
}

TEST(J2, NodeDriftDisplacesOrbitOverADay) {
  const auto base = leo(85.0);
  const auto pert = base.with_j2();
  const auto t = Duration::days(1);
  const double displacement =
      (base.position_eci(t) - pert.position_eci(t)).norm();
  // Expected from the secular rates: dominated by the in-track mean-
  // anomaly correction plus node drift — several hundred km after a day.
  EXPECT_GT(displacement, 50.0);
  EXPECT_LT(displacement, 5000.0);
}

TEST(J2, DriftMatchesPredictedNodeShift) {
  // The sub-satellite longitude shift at the ascending node after N whole
  // (Keplerian) orbits equals the accumulated node drift plus the mean-
  // anomaly correction converted to along-track phase.
  const auto base = Orbit::circular_with_period(Duration::minutes(90),
                                                deg2rad(85.0), 0.0, 0.0);
  const auto pert = base.with_j2();
  const auto rates = base.j2_secular_rates();
  const auto t = base.period() * 16.0;  // one day
  const auto p_base = base.subsatellite_point(t);
  const auto p_pert = pert.subsatellite_point(t);
  // Longitude difference ≈ node drift (the mean-anomaly correction moves
  // the satellite along the (near-polar) track, mostly in latitude).
  const double expected_node_shift = rates.raan_rate * t.to_seconds();
  EXPECT_NEAR(wrap_pi(p_pert.lon_rad - p_base.lon_rad), expected_node_shift,
              std::abs(expected_node_shift) * 0.5 + 0.01);
}

TEST(J2, RadiusStaysConstantForCircular) {
  // Secular J2 does not change the semi-major axis.
  const auto pert = leo(85.0).with_j2();
  const double r0 = pert.position_eci(Duration::zero()).norm();
  for (double days : {0.5, 1.0, 5.0}) {
    EXPECT_NEAR(pert.position_eci(Duration::days(days)).norm(), r0, 1e-6);
  }
}

}  // namespace
}  // namespace oaq
