#include "orbit/coverage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(CoverageAnalyzer, FullConstellationCoversEverywhere) {
  const auto c = Constellation::reference();
  const CoverageAnalyzer cov(c);
  const auto g = cov.global(Duration::zero(), 24, 72);
  EXPECT_GT(g.covered_fraction, 0.995);
  EXPECT_GT(g.overlap_fraction, 0.2);
}

TEST(CoverageAnalyzer, OverlapGrowsTowardPoles) {
  // The paper: "the ratio is the lowest at the equator and the highest at
  // the poles".
  const auto c = Constellation::reference();
  const CoverageAnalyzer cov(c);
  const auto bands = cov.by_latitude_time_averaged(4, 18, 72);
  double equator = 0.0, pole = 0.0;
  for (const auto& b : bands) {
    if (std::abs(b.lat_deg) < 10.0) equator = std::max(equator, b.overlap_fraction);
    if (std::abs(b.lat_deg) > 70.0) pole = std::max(pole, b.overlap_fraction);
  }
  EXPECT_GT(pole, equator);
}

TEST(CoverageAnalyzer, ThirtyDegreesIsModeratelyOverlapped) {
  // Paper: "in our assumed area of interest, around 30° north latitude,
  // the ratio is moderately high" — between equator and pole.
  const auto c = Constellation::reference();
  const CoverageAnalyzer cov(c);
  const auto bands = cov.by_latitude_time_averaged(4, 36, 72);
  double equator = 0.0, thirty = 0.0, pole = 0.0;
  for (const auto& b : bands) {
    if (std::abs(b.lat_deg) < 5.0) equator += b.overlap_fraction / 2.0;
    if (std::abs(b.lat_deg - 30.0) < 5.0) thirty += b.overlap_fraction / 2.0;
    if (b.lat_deg > 75.0) pole += b.overlap_fraction / 3.0;
  }
  EXPECT_GE(thirty, equator * 0.9);
  EXPECT_LT(thirty, pole);
}

TEST(CoverageAnalyzer, DegradedConstellationLosesCoverage) {
  auto c = Constellation::reference();
  for (int j = 0; j < 7; ++j) c.plane(j).set_active_count(9);
  const CoverageAnalyzer cov(c);
  const auto degraded = cov.global(Duration::zero(), 24, 72);
  const auto full = CoverageAnalyzer(Constellation::reference())
                        .global(Duration::zero(), 24, 72);
  EXPECT_LT(degraded.covered_fraction, full.covered_fraction);
  EXPECT_LT(degraded.overlap_fraction, full.overlap_fraction);
}

TEST(CoverageAnalyzer, MeanMultiplicityConsistentWithFractions) {
  const auto c = Constellation::reference();
  const CoverageAnalyzer cov(c);
  for (const auto& b : cov.by_latitude(Duration::zero(), 12, 36)) {
    EXPECT_GE(b.mean_multiplicity, b.covered_fraction - 1e-12);
    EXPECT_GE(b.covered_fraction, b.overlap_fraction - 1e-12);
    EXPECT_GE(b.overlap_fraction, 0.0);
    EXPECT_LE(b.covered_fraction, 1.0);
  }
}

TEST(CoverageAnalyzer, RejectsEmptyGrid) {
  const auto c = Constellation::reference();
  const CoverageAnalyzer cov(c);
  EXPECT_THROW((void)cov.by_latitude(Duration::zero(), 0, 10),
               PreconditionError);
  EXPECT_THROW((void)cov.by_latitude_time_averaged(0), PreconditionError);
}

}  // namespace
}  // namespace oaq
