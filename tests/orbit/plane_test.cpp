#include "orbit/plane.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "orbit/footprint.hpp"

namespace oaq {
namespace {

OrbitalPlane make_plane(int design_count = 14) {
  return OrbitalPlane(0, Duration::minutes(90), deg2rad(85.0), 0.0, 0.0,
                      design_count);
}

TEST(FootprintModel, ReferenceConstellationPsiIs18Degrees) {
  const auto fp = FootprintModel::from_coverage_time(Duration::minutes(9),
                                                     Duration::minutes(90));
  EXPECT_NEAR(rad2deg(fp.angular_radius_rad()), 18.0, 1e-12);
  EXPECT_NEAR(fp.coverage_time(Duration::minutes(90)).to_minutes(), 9.0, 1e-12);
}

TEST(FootprintModel, CoversWithinRadius) {
  const FootprintModel fp(deg2rad(18.0));
  const auto subsat = GeoPoint::from_degrees(30.0, 0.0);
  EXPECT_TRUE(fp.covers(subsat, GeoPoint::from_degrees(30.0, 0.0)));
  EXPECT_TRUE(fp.covers(subsat, GeoPoint::from_degrees(45.0, 0.0)));
  EXPECT_FALSE(fp.covers(subsat, GeoPoint::from_degrees(49.0, 0.0)));
  EXPECT_EQ(fp.cap_at(subsat).radius_rad(), deg2rad(18.0));
}

TEST(FootprintModel, RejectsDegenerate) {
  EXPECT_THROW(FootprintModel(0.0), PreconditionError);
  EXPECT_THROW(FootprintModel(2.0), PreconditionError);
  EXPECT_THROW((void)FootprintModel::from_coverage_time(Duration::minutes(91),
                                                  Duration::minutes(90)),
               PreconditionError);
}

TEST(OrbitalPlane, RevisitTimeMatchesPaperTable) {
  auto plane = make_plane();
  // Tr[k] = θ / k: 90/14 ≈ 6.43, 90/12 = 7.5, 90/10 = 9, 90/9 = 10.
  EXPECT_NEAR(plane.revisit_time_for(14).to_minutes(), 90.0 / 14.0, 1e-12);
  EXPECT_NEAR(plane.revisit_time_for(12).to_minutes(), 7.5, 1e-12);
  EXPECT_NEAR(plane.revisit_time_for(10).to_minutes(), 9.0, 1e-12);
  EXPECT_NEAR(plane.revisit_time_for(9).to_minutes(), 10.0, 1e-12);
  plane.set_active_count(12);
  EXPECT_NEAR(plane.revisit_time().to_minutes(), 7.5, 1e-12);
  EXPECT_THROW((void)plane.revisit_time_for(0), PreconditionError);
}

TEST(OrbitalPlane, PhasingAdjustmentRedistributesEvenly) {
  auto plane = make_plane();
  EXPECT_NEAR(plane.slot_spacing_rad(), 2.0 * kPi / 14.0, 1e-14);
  plane.set_active_count(10);
  EXPECT_EQ(plane.active_count(), 10);
  EXPECT_NEAR(plane.slot_spacing_rad(), 2.0 * kPi / 10.0, 1e-14);
  // Adjacent satellites are separated by the slot spacing at all times.
  const auto p0 = plane.position_eci(0, Duration::minutes(7.0));
  const auto p1 = plane.position_eci(1, Duration::minutes(7.0));
  EXPECT_NEAR(angle_between(p0, p1), plane.slot_spacing_rad(), 1e-10);
}

TEST(OrbitalPlane, SuccessorPassesSameGroundPointAfterRevisitTime) {
  // The satellite "behind" (lower slot phase) revisits the point covered by
  // its predecessor Tr later — the paper's sequential-coverage mechanism.
  auto plane = make_plane();
  plane.set_active_count(10);
  const Duration tr = plane.revisit_time();
  const auto pt_now = plane.subsatellite_point(1, Duration::minutes(3.0));
  const auto pt_later = plane.subsatellite_point(0, Duration::minutes(3.0) + tr);
  EXPECT_NEAR(central_angle(pt_now, pt_later), 0.0, 1e-10);
}

TEST(OrbitalPlane, ActiveSatelliteIdsAreSlotOrdered) {
  auto plane = make_plane();
  plane.set_active_count(3);
  const auto ids = plane.active_satellites();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], (SatelliteId{0, 0}));
  EXPECT_EQ(ids[2], (SatelliteId{0, 2}));
}

TEST(OrbitalPlane, SlotRangeChecked) {
  auto plane = make_plane();
  plane.set_active_count(5);
  EXPECT_THROW((void)plane.orbit_of(5), PreconditionError);
  EXPECT_THROW((void)plane.orbit_of(-1), PreconditionError);
  EXPECT_THROW(plane.set_active_count(15), PreconditionError);
  EXPECT_THROW(plane.set_active_count(-1), PreconditionError);
}

TEST(OrbitalPlane, AllSatellitesShareOrbitGeometry) {
  const auto plane = make_plane();
  for (int s = 0; s < plane.active_count(); ++s) {
    const auto orbit = plane.orbit_of(s);
    EXPECT_NEAR(orbit.period().to_minutes(), 90.0, 1e-9);
    EXPECT_DOUBLE_EQ(orbit.elements().inclination_rad, deg2rad(85.0));
  }
}

}  // namespace
}  // namespace oaq
