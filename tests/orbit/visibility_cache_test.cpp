#include "orbit/visibility_cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

Constellation small_polar_plane() {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  return Constellation(d);
}

void expect_same_passes(const std::vector<Pass>& a,
                        const std::vector<Pass>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].satellite, b[i].satellite) << "pass " << i;
    EXPECT_EQ(a[i].start.to_seconds(), b[i].start.to_seconds()) << i;
    EXPECT_EQ(a[i].end.to_seconds(), b[i].end.to_seconds()) << i;
  }
}

TEST(VisibilityCache, MemoizedPassesAreBitIdenticalToPredictor) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  const Duration t0 = Duration::zero();
  const Duration t1 = Duration::minutes(90);

  VisibilityCache cache(c);
  const PassPredictor direct(c);
  expect_same_passes(cache.passes(target, t0, t1),
                     direct.passes(target, t0, t1));
  EXPECT_EQ(cache.stats().pass_queries, 1u);
  EXPECT_EQ(cache.stats().pass_hits, 0u);
}

TEST(VisibilityCache, RepeatQueryHitsAndReturnsTheSameEntry) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  VisibilityCache cache(c);
  const auto& first =
      cache.passes(target, Duration::zero(), Duration::minutes(90));
  const auto& second =
      cache.passes(target, Duration::zero(), Duration::minutes(90));
  EXPECT_EQ(&first, &second);  // stable reference, no recomputation
  EXPECT_EQ(cache.stats().pass_queries, 2u);
  EXPECT_EQ(cache.stats().pass_hits, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(VisibilityCache, DistinctWindowsAndTargetsAreDistinctEntries) {
  const Constellation c = small_polar_plane();
  VisibilityCache cache(c);
  (void)cache.passes(GeoPoint{0.0, 0.0}, Duration::zero(),
                     Duration::minutes(90));
  (void)cache.passes(GeoPoint{0.0, 0.0}, Duration::zero(),
                     Duration::minutes(45));
  (void)cache.passes(GeoPoint{0.1, 0.0}, Duration::zero(),
                     Duration::minutes(90));
  EXPECT_EQ(cache.stats().pass_hits, 0u);
  EXPECT_EQ(cache.entry_count(), 3u);
}

TEST(VisibilityCache, TimelineMemoizationMatchesDirectComputation) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  const Duration t0 = Duration::zero();
  const Duration t1 = Duration::minutes(90);
  VisibilityCache cache(c);
  const PassPredictor direct(c);

  const auto& cached = cache.multiplicity_timeline(target, t0, t1);
  const auto expect =
      PassPredictor::multiplicity_timeline(direct.passes(target, t0, t1),
                                           t0, t1);
  ASSERT_EQ(cached.size(), expect.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].start.to_seconds(), expect[i].start.to_seconds());
    EXPECT_EQ(cached[i].end.to_seconds(), expect[i].end.to_seconds());
    EXPECT_EQ(cached[i].satellites, expect[i].satellites);
  }
  (void)cache.multiplicity_timeline(target, t0, t1);
  EXPECT_EQ(cache.stats().timeline_queries, 2u);
  EXPECT_EQ(cache.stats().timeline_hits, 1u);
}

TEST(VisibilityCache, WindowQueriesShareTheQuantizedComputation) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  VisibilityCache cache(c);
  // Both requests round out to [0h, 1h]: one miss, then a hit.
  (void)cache.passes_window(target, Duration::minutes(10),
                            Duration::minutes(50));
  (void)cache.passes_window(target, Duration::minutes(20),
                            Duration::minutes(55));
  EXPECT_EQ(cache.stats().pass_queries, 2u);
  EXPECT_EQ(cache.stats().pass_hits, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(VisibilityCache, WindowResultIsTheQuantizedSupersetClipped) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  const Duration from = Duration::minutes(10);
  const Duration to = Duration::minutes(50);
  VisibilityCache cache(c);

  const auto got = cache.passes_window(target, from, to);
  // Manual reference: compute the enclosing [0h, 1h] window and clip.
  const PassPredictor direct(c);
  std::vector<Pass> expect;
  for (const Pass& p :
       direct.passes(target, Duration::zero(), Duration::hours(1))) {
    if (p.end <= from || p.start >= to) continue;
    expect.push_back(
        {p.satellite, std::max(p.start, from), std::min(p.end, to)});
  }
  ASSERT_FALSE(got.empty());
  expect_same_passes(got, expect);
  for (const Pass& p : got) {
    EXPECT_GE(p.start, from);
    EXPECT_LE(p.end, to);
    EXPECT_LT(p.start, p.end);
  }
}

TEST(VisibilityCache, WindowResultIsIndependentOfQueryOrder) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  const Duration a0 = Duration::minutes(15), a1 = Duration::minutes(70);
  const Duration b0 = Duration::minutes(100), b1 = Duration::minutes(160);

  VisibilityCache forward(c);
  const auto fa = forward.passes_window(target, a0, a1);
  const auto fb = forward.passes_window(target, b0, b1);
  VisibilityCache backward(c);
  const auto bb = backward.passes_window(target, b0, b1);
  const auto ba = backward.passes_window(target, a0, a1);
  expect_same_passes(fa, ba);
  expect_same_passes(fb, bb);
}

TEST(VisibilityCache, NegativeWindowStartIsClampedLikeTheSchedule) {
  const Constellation c = small_polar_plane();
  const GeoPoint target{0.0, 0.0};
  VisibilityCache cache(c);
  const auto got =
      cache.passes_window(target, Duration::minutes(-30), Duration::minutes(30));
  for (const Pass& p : got) EXPECT_GE(p.start, Duration::zero());
}

TEST(VisibilityCache, ClearResetsEntriesAndStats) {
  const Constellation c = small_polar_plane();
  VisibilityCache cache(c);
  (void)cache.passes(GeoPoint{0.0, 0.0}, Duration::zero(),
                     Duration::minutes(45));
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().pass_queries, 0u);
}

TEST(VisibilityCache, RejectsBadOptionsAndWindows) {
  const Constellation c = small_polar_plane();
  VisibilityCache::Options bad;
  bad.window_quantum = Duration::zero();
  EXPECT_THROW(VisibilityCache(c, false, bad), PreconditionError);
  bad = {};
  bad.tol = Duration::zero();
  EXPECT_THROW(VisibilityCache(c, false, bad), PreconditionError);
  VisibilityCache cache(c);
  EXPECT_THROW((void)cache.passes_window(GeoPoint{0.0, 0.0},
                                         Duration::minutes(5),
                                         Duration::minutes(5)),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
