#include "orbit/visibility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

/// Single-plane constellation whose plane 0 passes over the target's
/// longitude; target on the ground-track centerline (equator crossing).
Constellation single_plane(int k) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = k;
  d.inclination_rad = deg2rad(90.0);  // polar: ground track along a meridian
  return Constellation(d);
}

TEST(PassPredictor, CenterlinePassLastsCoverageTime) {
  // A point on the ground track is covered for exactly Tc = 9 min.
  auto c = single_plane(10);
  const PassPredictor pred(c);
  const GeoPoint target{0.0, 0.0};  // on the track (node at lon 0)
  const auto passes = pred.passes(target, Duration::zero(),
                                  Duration::minutes(90.0));
  ASSERT_FALSE(passes.empty());
  // Interior passes (not clipped by the horizon) last Tc.
  int interior = 0;
  for (const auto& p : passes) {
    if (p.start > Duration::zero() && p.end < Duration::minutes(90.0)) {
      EXPECT_NEAR(p.duration().to_minutes(), 9.0, 0.01);
      ++interior;
    }
  }
  EXPECT_GE(interior, 7);
}

TEST(PassPredictor, RevisitIntervalMatchesTrOfK) {
  auto c = single_plane(10);  // Tr = 9 min = Tc: back-to-back coverage
  const PassPredictor pred(c);
  const GeoPoint target{0.0, 0.0};
  const auto passes = pred.passes(target, Duration::zero(),
                                  Duration::minutes(90.0));
  ASSERT_GE(passes.size(), 3u);
  // Skip horizon-clipped passes; interior pass starts are spaced Tr apart.
  for (std::size_t i = 2; i + 1 < passes.size(); ++i) {
    const double gap = (passes[i].start - passes[i - 1].start).to_minutes();
    EXPECT_NEAR(gap, 9.0, 0.02) << "pass " << i;
  }
}

TEST(PassPredictor, OverlappingPlaneShowsSimultaneousCoverage) {
  // k = 14 > 10: Tr < Tc, adjacent footprints overlap on the centerline.
  auto c = single_plane(14);
  const PassPredictor pred(c);
  const GeoPoint target{0.0, 0.0};
  const auto passes = pred.passes(target, Duration::zero(),
                                  Duration::minutes(90.0));
  const auto timeline = PassPredictor::multiplicity_timeline(
      passes, Duration::zero(), Duration::minutes(90.0));
  const auto stats = PassPredictor::summarize(timeline);
  EXPECT_EQ(stats.max_multiplicity, 2);
  EXPECT_GT(stats.multiple.to_minutes(), 1.0);
  EXPECT_NEAR(stats.uncovered.to_minutes(), 0.0, 0.05);
  // Overlap share per period should be L2 = Tc − Tr ≈ 2.571 min out of
  // every Tr ≈ 6.43 min.
  const double expected_multi_fraction = (9.0 - 90.0 / 14.0) / (90.0 / 14.0);
  EXPECT_NEAR(stats.multiple / stats.horizon, expected_multi_fraction, 0.02);
}

TEST(PassPredictor, UnderlappingPlaneShowsGaps) {
  // k = 9 < 10: Tr = 10 min > Tc = 9 min; 1-minute gaps appear.
  auto c = single_plane(9);
  const PassPredictor pred(c);
  const GeoPoint target{0.0, 0.0};
  const auto passes = pred.passes(target, Duration::zero(),
                                  Duration::minutes(90.0));
  const auto timeline = PassPredictor::multiplicity_timeline(
      passes, Duration::zero(), Duration::minutes(90.0));
  const auto stats = PassPredictor::summarize(timeline);
  EXPECT_EQ(stats.max_multiplicity, 1);
  EXPECT_NEAR(stats.longest_gap.to_minutes(), 1.0, 0.02);
  EXPECT_NEAR(stats.uncovered.to_minutes(), 9.0, 0.2);  // 9 gaps × 1 min
}

TEST(PassPredictor, TimelinePartitionsHorizonExactly) {
  auto c = single_plane(12);
  const PassPredictor pred(c);
  const auto t0 = Duration::zero();
  const auto t1 = Duration::minutes(45.0);
  const auto passes = pred.passes(GeoPoint{0.0, 0.0}, t0, t1);
  const auto timeline = PassPredictor::multiplicity_timeline(passes, t0, t1);
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.front().start, t0);
  EXPECT_EQ(timeline.back().end, t1);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].start, timeline[i - 1].end);
    EXPECT_GT(timeline[i].duration(), Duration::zero());
  }
  // Segment multiplicity changes between adjacent segments.
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_NE(timeline[i].satellites, timeline[i - 1].satellites);
  }
}

TEST(PassPredictor, OffTrackPointHasShorterPasses) {
  auto c = single_plane(10);
  const PassPredictor pred(c);
  // 10° off the track: chord through the 18°-radius cap is shorter.
  const auto passes = pred.passes(GeoPoint::from_degrees(0.0, 10.0),
                                  Duration::zero(), Duration::minutes(90.0));
  ASSERT_FALSE(passes.empty());
  for (const auto& p : passes) {
    if (p.start > Duration::zero() && p.end < Duration::minutes(90.0)) {
      EXPECT_LT(p.duration().to_minutes(), 9.0);
      EXPECT_GT(p.duration().to_minutes(), 5.0);
    }
  }
}

TEST(PassPredictor, FarOffTrackPointSeesNothing) {
  auto c = single_plane(10);
  const PassPredictor pred(c);
  const auto passes = pred.passes(GeoPoint::from_degrees(0.0, 90.0),
                                  Duration::zero(), Duration::minutes(90.0));
  EXPECT_TRUE(passes.empty());
}

TEST(PassPredictor, RejectsEmptyHorizon) {
  auto c = single_plane(10);
  const PassPredictor pred(c);
  EXPECT_THROW(
      (void)pred.passes(GeoPoint{}, Duration::minutes(5), Duration::minutes(5)),
      PreconditionError);
}

}  // namespace
}  // namespace oaq
