#include "orbit/constellation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(Constellation, ReferenceDesignMatchesPaper) {
  const auto c = Constellation::reference();
  EXPECT_EQ(c.num_planes(), 7);
  EXPECT_EQ(c.total_active(), 98);
  EXPECT_EQ(c.design().in_orbit_spares_per_plane, 2);
  EXPECT_NEAR(c.design().period.to_minutes(), 90.0, 1e-12);
  EXPECT_NEAR(c.design().coverage_time.to_minutes(), 9.0, 1e-12);
  EXPECT_NEAR(rad2deg(c.footprint().angular_radius_rad()), 18.0, 1e-12);
  EXPECT_EQ(static_cast<int>(c.active_satellites().size()), 98);
}

TEST(Constellation, PlanesSpreadAcrossNodes) {
  const auto c = Constellation::reference();
  for (int j = 0; j < 7; ++j) {
    EXPECT_NEAR(c.plane(j).raan_rad(), kPi * j / 7.0, 1e-12);
    EXPECT_EQ(c.plane(j).plane_index(), j);
  }
  EXPECT_THROW((void)c.plane(7), PreconditionError);
  EXPECT_THROW((void)c.plane(-1), PreconditionError);
}

TEST(Constellation, DegradingOnePlaneOnlyAffectsThatPlane) {
  auto c = Constellation::reference();
  c.plane(3).set_active_count(10);
  EXPECT_EQ(c.total_active(), 94);
  EXPECT_EQ(c.plane(3).active_count(), 10);
  EXPECT_EQ(c.plane(2).active_count(), 14);
  EXPECT_NEAR(c.plane(3).revisit_time().to_minutes(), 9.0, 1e-12);
  EXPECT_NEAR(c.plane(2).revisit_time().to_minutes(), 90.0 / 14.0, 1e-12);
}

TEST(Constellation, FullConstellationCoversTheEarth) {
  // Paper, Fig. 1: "when the constellation has 98 operational satellites,
  // it offers a full earth coverage." Sample a coarse global grid.
  const auto c = Constellation::reference();
  for (double lat = -85.0; lat <= 85.0; lat += 10.0) {
    for (double lon = -180.0; lon < 180.0; lon += 15.0) {
      const auto covering = c.covering_satellites(
          GeoPoint::from_degrees(lat, lon), Duration::minutes(0.0));
      EXPECT_GE(covering.size(), 1u) << "uncovered at " << lat << "," << lon;
    }
  }
}

TEST(Constellation, CoveringSatellitesConsistentWithFootprint) {
  const auto c = Constellation::reference();
  const auto target = GeoPoint::from_degrees(30.0, 12.0);
  const auto t = Duration::minutes(17.0);
  const auto covering = c.covering_satellites(target, t);
  for (const auto id : covering) {
    const auto subsat = c.subsatellite_point(id, t);
    EXPECT_LE(central_angle(subsat, target),
              c.footprint().angular_radius_rad() + 1e-9);
  }
}

TEST(Constellation, HighLatitudeSeesMoreOverlapThanEquator) {
  // Fig. 1: overlapped-footprint share grows toward the poles.
  const auto c = Constellation::reference();
  const auto t = Duration::minutes(11.0);
  auto mean_multiplicity = [&](double lat_deg) {
    double sum = 0.0;
    int n = 0;
    for (double lon = -180.0; lon < 180.0; lon += 5.0, ++n) {
      sum += static_cast<double>(
          c.covering_satellites(GeoPoint::from_degrees(lat_deg, lon), t).size());
    }
    return sum / n;
  };
  EXPECT_GT(mean_multiplicity(70.0), mean_multiplicity(0.0));
}

TEST(Constellation, RejectsDegenerateDesign) {
  ConstellationDesign d;
  d.num_planes = 0;
  EXPECT_THROW(Constellation{d}, PreconditionError);
  d.num_planes = 3;
  d.sats_per_plane = 0;
  EXPECT_THROW(Constellation{d}, PreconditionError);
}

}  // namespace
}  // namespace oaq
