// SharedVisibilityCache seed/freeze contract: concurrent seeding, frozen
// lock-free reads, overflow misses — values always equal a fresh
// single-threaded VisibilityCache, and hit accounting is independent of
// cross-thread timing. Built into test_geometry, which the ThreadSanitizer
// CI job runs to certify the protocol data-race-free.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "orbit/constellation.hpp"
#include "orbit/shared_visibility_cache.hpp"
#include "orbit/visibility_cache.hpp"

namespace oaq {
namespace {

Constellation test_constellation() {
  ConstellationDesign design;
  design.num_planes = 2;
  design.sats_per_plane = 8;
  design.inclination_rad = deg2rad(85.0);
  return Constellation(design);
}

std::vector<GeoPoint> test_targets() {
  return {{0.1, 0.2}, {0.8, -1.1}, {-0.5, 2.4}, {1.2, 0.0},
          {0.0, -2.9}, {0.4, 1.7}, {-1.0, -0.3}, {0.9, 3.0}};
}

TEST(SharedVisibilityCache, MatchesFreshVisibilityCacheExactly) {
  const Constellation c = test_constellation();
  VisibilityCacheOptions opt;
  opt.window_quantum = Duration::minutes(45);

  SharedVisibilityCache shared(c, true, opt);
  VisibilityCache fresh(c, true, opt);

  const GeoPoint target{0.3, -0.7};
  shared.seed_window(target, Duration::zero(), Duration::hours(2));
  shared.freeze();
  EXPECT_TRUE(shared.frozen());
  EXPECT_EQ(shared.seed_computes(), 1u);
  EXPECT_EQ(shared.frozen_entries(), 1u);

  // Two queries quantize to the seeded window (frozen hits); the short
  // clamped-negative one and the shifted one quantize to different keys
  // (overflow misses) — all must clip identically to the single-threaded
  // cache either way.
  const std::vector<std::pair<Duration, Duration>> windows = {
      {Duration::zero(), Duration::hours(2)},
      {Duration::minutes(10), Duration::minutes(95)},
      {Duration::seconds(-50.0), Duration::minutes(30)},
      {Duration::hours(3), Duration::hours(5)},
  };
  VisibilityCacheStats stats;
  for (const auto& [from, to] : windows) {
    const std::vector<Pass> got = shared.passes_window(target, from, to, &stats);
    const std::vector<Pass> want = fresh.passes_window(target, from, to);
    ASSERT_EQ(got.size(), want.size()) << "window " << from.to_seconds();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].satellite, want[i].satellite);
      EXPECT_EQ(got[i].start.to_seconds(), want[i].start.to_seconds());
      EXPECT_EQ(got[i].end.to_seconds(), want[i].end.to_seconds());
    }
  }
  EXPECT_EQ(stats.pass_queries, 4u);
  EXPECT_EQ(stats.pass_hits, 2u);
  EXPECT_EQ(shared.overflow_entries(), 2u);
}

TEST(SharedVisibilityCache, EmptyWindowAfterClampReturnsNothing) {
  const Constellation c = test_constellation();
  SharedVisibilityCache shared(c, false);
  shared.freeze();
  VisibilityCacheStats stats;
  const std::vector<Pass> got = shared.passes_window(
      {0.1, 0.1}, Duration::seconds(-100.0), Duration::seconds(-1.0), &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.pass_queries, 0u);  // clamped-empty windows are free
}

TEST(SharedVisibilityCache, ConcurrentSeedThenConcurrentFrozenReads) {
  const Constellation c = test_constellation();
  VisibilityCacheOptions opt;
  opt.window_quantum = Duration::minutes(30);
  SharedVisibilityCache shared(c, true, opt);
  const std::vector<GeoPoint> targets = test_targets();

  // Phase 1: several threads seed overlapping target sets concurrently —
  // duplicates must be computed once, and TSan must see no races.
  {
    std::vector<std::thread> seeders;
    for (int th = 0; th < 4; ++th) {
      seeders.emplace_back([&shared, &targets, th] {
        for (std::size_t i = 0; i < targets.size(); ++i) {
          if ((i + static_cast<std::size_t>(th)) % 2 == 0) {
            shared.seed_window(targets[i], Duration::zero(),
                               Duration::hours(1));
          }
        }
      });
    }
    for (auto& t : seeders) t.join();
  }
  shared.freeze();
  ASSERT_EQ(shared.frozen_entries(), targets.size());
  EXPECT_EQ(shared.seed_computes(), targets.size());

  // Phase 2: concurrent frozen reads (hits) plus overflow misses beyond
  // the seeded horizon. Every thread must observe values identical to a
  // private single-threaded cache, with per-thread stats counting hits
  // only for seeded windows.
  std::vector<VisibilityCacheStats> stats(4);
  std::vector<int> mismatches(4, 0);
  {
    std::vector<std::thread> readers;
    for (int th = 0; th < 4; ++th) {
      readers.emplace_back([&, th] {
        VisibilityCache fresh(c, true, opt);
        std::vector<Pass> got;
        for (int rep = 0; rep < 3; ++rep) {
          for (const GeoPoint& target : targets) {
            shared.passes_window_into(target, Duration::minutes(5),
                                      Duration::minutes(50), got, &stats[th]);
            const std::vector<Pass> want = fresh.passes_window(
                target, Duration::minutes(5), Duration::minutes(50));
            if (got.size() != want.size()) ++mismatches[th];
            // Overflow miss: same window, shifted past the seeded hour.
            shared.passes_window_into(target, Duration::hours(2),
                                      Duration::hours(3), got, &stats[th]);
            const std::vector<Pass> want2 = fresh.passes_window(
                target, Duration::hours(2), Duration::hours(3));
            if (got.size() != want2.size()) ++mismatches[th];
          }
        }
      });
    }
    for (auto& t : readers) t.join();
  }
  for (int th = 0; th < 4; ++th) {
    EXPECT_EQ(mismatches[th], 0) << "thread " << th;
    EXPECT_EQ(stats[th].pass_queries, 3u * 2u * targets.size());
    // Hit accounting is deterministic per thread: seeded windows hit, the
    // shifted windows miss — regardless of which thread computed the
    // overflow entries first.
    EXPECT_EQ(stats[th].pass_hits, 3u * targets.size());
  }
  EXPECT_EQ(shared.overflow_entries(), targets.size());
}

TEST(SharedVisibilityCache, SeedWindowsFansOutAcrossThePool) {
  const Constellation c = test_constellation();
  VisibilityCacheOptions opt;
  opt.window_quantum = Duration::minutes(30);
  const std::vector<GeoPoint> targets = test_targets();

  // Parallel fan-out (ISSUE 6): seed_windows shards the per-target sweeps
  // across the pool and blocks until every stripe is written, so the
  // subsequent freeze publishes the same entries the serial loop would.
  SharedVisibilityCache parallel_seeded(c, true, opt);
  const int executors =
      parallel_seeded.seed_windows(targets, Duration::zero(),
                                   Duration::hours(1), /*jobs=*/4);
  EXPECT_EQ(executors, 4);
  parallel_seeded.freeze();

  SharedVisibilityCache serial_seeded(c, true, opt);
  EXPECT_EQ(serial_seeded.seed_windows(targets, Duration::zero(),
                                       Duration::hours(1), /*jobs=*/1),
            1);
  serial_seeded.freeze();

  ASSERT_EQ(parallel_seeded.frozen_entries(), targets.size());
  EXPECT_EQ(parallel_seeded.seed_computes(), targets.size());
  for (const GeoPoint& target : targets) {
    const std::vector<Pass> got = parallel_seeded.passes_window(
        target, Duration::minutes(5), Duration::minutes(50), nullptr);
    const std::vector<Pass> want = serial_seeded.passes_window(
        target, Duration::minutes(5), Duration::minutes(50), nullptr);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].satellite, want[i].satellite);
      EXPECT_EQ(got[i].start.to_seconds(), want[i].start.to_seconds());
      EXPECT_EQ(got[i].end.to_seconds(), want[i].end.to_seconds());
    }
  }
  // A single target cannot fan out; the empty set seeds nothing.
  SharedVisibilityCache single(c, true, opt);
  EXPECT_EQ(single.seed_windows({targets.front()}, Duration::zero(),
                                Duration::hours(1), /*jobs=*/4),
            1);
  EXPECT_EQ(single.seed_windows({}, Duration::zero(), Duration::hours(1),
                                /*jobs=*/4),
            0);
}

}  // namespace
}  // namespace oaq
