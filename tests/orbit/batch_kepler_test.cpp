// BatchKepler bit-identity contract (ISSUE 4): the batched SoA kernel must
// reproduce the scalar kepler.cpp propagator EXACTLY — same eccentric
// anomalies, same ECI positions — across eccentricity and anomaly edge
// cases, and a partial block (any n, down to single-element calls) must
// agree bitwise with the same element inside a full-width batch. The pass
// sweep's root refinement depends on the latter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "orbit/batch_kepler.hpp"
#include "orbit/constellation_builder.hpp"

namespace oaq {
namespace {

std::vector<double> edge_case_anomalies() {
  std::vector<double> m = {
      0.0,       1e-12,     -1e-12,     0.5,       -0.5,     kPi / 2.0,
      -kPi / 2.0, kPi - 1e-9, -(kPi - 1e-9), kPi,   -kPi,    kPi + 1e-9,
      2.0 * kPi, -2.0 * kPi, 3.75,      100.0,     -100.0,  12345.678,
      -98765.4321};
  for (int i = 0; i < 40; ++i) {
    m.push_back(-7.0 + 0.35 * static_cast<double>(i));
  }
  return m;
}

TEST(BatchKepler, SolveMatchesScalarBitwiseAcrossEccentricities) {
  const std::vector<double> mean = edge_case_anomalies();
  for (const double e : {0.0, 1e-9, 1e-3, 0.01, 0.1, 0.3, 0.7, 0.9, 0.97}) {
    std::vector<double> batch(mean.size());
    BatchKepler::solve(mean.data(), mean.size(), e, batch.data());
    for (std::size_t i = 0; i < mean.size(); ++i) {
      const double scalar = solve_kepler(mean[i], e);
      EXPECT_EQ(batch[i], scalar)
          << "e=" << e << " M=" << mean[i] << " batch-scalar delta "
          << batch[i] - scalar;
    }
  }
}

TEST(BatchKepler, SolveRespectsLooserTolerance) {
  const std::vector<double> mean = edge_case_anomalies();
  const double e = 0.4;
  std::vector<double> batch(mean.size());
  BatchKepler::solve(mean.data(), mean.size(), e, batch.data(), 1e-6);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    EXPECT_EQ(batch[i], solve_kepler(mean[i], e, 1e-6)) << "M=" << mean[i];
  }
}

TEST(BatchKepler, PartialBlocksMatchFullBatchBitwise) {
  const std::vector<double> mean = edge_case_anomalies();
  const double e = 0.3;
  std::vector<double> full(mean.size());
  BatchKepler::solve(mean.data(), mean.size(), e, full.data());
  // Every prefix length, including n == 1 (the root-refinement shape):
  // lane values must not depend on how the array was blocked.
  for (std::size_t n = 1; n <= mean.size(); ++n) {
    std::vector<double> part(n);
    BatchKepler::solve(mean.data(), n, e, part.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(part[i], full[i]) << "n=" << n << " i=" << i;
    }
  }
}

std::vector<double> sweep_times() {
  std::vector<double> t;
  for (int i = 0; i < 300; ++i) {
    t.push_back(static_cast<double>(i) * 37.5);  // ~3 hours, off-grid step
  }
  t.push_back(0.0);
  t.push_back(1e-3);
  t.push_back(86400.0);
  return t;
}

void expect_positions_match(const Orbit& orbit) {
  const std::vector<double> t = sweep_times();
  std::vector<double> x(t.size()), y(t.size()), z(t.size());
  const BatchKepler batch(orbit);
  batch.positions_eci(t.data(), t.size(), x.data(), y.data(), z.data());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Vec3 scalar = orbit.position_eci(Duration::seconds(t[i]));
    EXPECT_EQ(x[i], scalar.x) << "t=" << t[i];
    EXPECT_EQ(y[i], scalar.y) << "t=" << t[i];
    EXPECT_EQ(z[i], scalar.z) << "t=" << t[i];
  }
}

TEST(BatchKepler, CircularPositionsMatchScalarBitwise) {
  expect_positions_match(
      Orbit::circular(550.0, deg2rad(85.0), 0.7, 1.3));
}

TEST(BatchKepler, EllipticPositionsMatchScalarBitwise) {
  KeplerianElements el;
  el.semi_major_km = 8000.0;
  el.eccentricity = 0.3;
  el.inclination_rad = deg2rad(63.4);
  el.raan_rad = 1.1;
  el.arg_perigee_rad = 2.2;
  el.mean_anomaly_rad = 0.4;
  expect_positions_match(Orbit(el));
}

TEST(BatchKepler, HighEccentricityPositionsMatchScalarBitwise) {
  KeplerianElements el;
  el.semi_major_km = 26600.0;
  el.eccentricity = 0.74;  // Molniya-like
  el.inclination_rad = deg2rad(63.4);
  el.raan_rad = 5.9;
  el.arg_perigee_rad = 4.7;
  el.mean_anomaly_rad = 3.1;
  expect_positions_match(Orbit(el));
}

TEST(BatchKepler, J2DriftedPositionsMatchScalarBitwise) {
  KeplerianElements el;
  el.semi_major_km = 7000.0;
  el.eccentricity = 0.05;
  el.inclination_rad = deg2rad(97.8);
  el.raan_rad = 0.3;
  el.arg_perigee_rad = 1.9;
  el.mean_anomaly_rad = 2.6;
  expect_positions_match(Orbit(el).with_j2());
}

TEST(BatchKepler, J2CircularPositionsMatchScalarBitwise) {
  expect_positions_match(
      Orbit::circular(550.0, deg2rad(85.0), 0.7, 1.3).with_j2());
}

TEST(BatchKepler, TailLanesMatchScalarOnNonMultipleOfEightShells) {
  // Width-8 SoA blocks must stay bit-identical to the scalar propagator
  // when per-plane satellite counts — and hence per-call sample counts —
  // are not multiples of 8 (ISSUE 8): Iridium-NEXT's 6×11 and Kepler's
  // 7×20 both leave partial tail blocks. Sweep every satellite of every
  // plane, and also block the time grid at awkward lengths (1, 3, 11)
  // to force tails inside a call.
  for (const char* preset : {"iridium-next", "kepler"}) {
    const Constellation c = ConstellationBuilder::preset(preset).build();
    const std::vector<double> t = sweep_times();
    std::vector<double> x(t.size()), y(t.size()), z(t.size());
    for (int pi = 0; pi < c.num_planes(); ++pi) {
      const auto& plane = c.plane(pi);
      for (int slot = 0; slot < plane.active_count(); ++slot) {
        const Orbit orbit = plane.orbit_of(slot);
        const BatchKepler batch(orbit);
        batch.positions_eci(t.data(), t.size(), x.data(), y.data(), z.data());
        for (std::size_t i = 0; i < t.size(); ++i) {
          const Vec3 scalar = orbit.position_eci(Duration::seconds(t[i]));
          ASSERT_EQ(x[i], scalar.x)
              << preset << " plane " << pi << " slot " << slot << " t=" << t[i];
          ASSERT_EQ(y[i], scalar.y)
              << preset << " plane " << pi << " slot " << slot << " t=" << t[i];
          ASSERT_EQ(z[i], scalar.z)
              << preset << " plane " << pi << " slot " << slot << " t=" << t[i];
        }
        if (pi == 0 && slot == 0) {
          // Odd block lengths: values must not depend on the blocking.
          for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                                      std::size_t{11}}) {
            std::vector<double> px(n), py(n), pz(n);
            batch.positions_eci(t.data(), n, px.data(), py.data(), pz.data());
            for (std::size_t i = 0; i < n; ++i) {
              ASSERT_EQ(px[i], x[i]) << preset << " n=" << n;
              ASSERT_EQ(py[i], y[i]) << preset << " n=" << n;
              ASSERT_EQ(pz[i], z[i]) << preset << " n=" << n;
            }
          }
        }
      }
    }
  }
}

TEST(BatchKepler, MarginSweepIsBlockingInvariant) {
  // coverage_margins makes no scalar-equality promise (it skips the
  // geodetic round trip), but it MUST be invariant to how the sample array
  // is blocked: the sweep (full batches) and the Brent refinement
  // (single-element calls) evaluate the same function.
  const Orbit orbit = Orbit::circular(550.0, deg2rad(90.0), 0.0, 0.0);
  const BatchKepler batch(orbit);
  const GeoPoint target{0.2, -0.4};
  const std::vector<double> t = sweep_times();
  for (const bool rotation : {false, true}) {
    std::vector<double> full(t.size());
    batch.coverage_margins(target, 0.3, rotation, t.data(), t.size(),
                           full.data());
    for (std::size_t i = 0; i < t.size(); ++i) {
      double one = 0.0;
      batch.coverage_margins(target, 0.3, rotation, &t[i], 1, &one);
      EXPECT_EQ(one, full[i]) << "i=" << i << " rotation=" << rotation;
    }
  }
}

}  // namespace
}  // namespace oaq
