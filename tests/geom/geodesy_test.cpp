#include "geom/geodesy.hpp"

#include <gtest/gtest.h>

#include "common/numeric.hpp"

namespace oaq {
namespace {

TEST(Geodesy, GeoEcefRoundTrip) {
  const auto p = GeoPoint::from_degrees(30.0, -118.25);
  const auto v = geo_to_ecef(p);
  EXPECT_NEAR(v.norm(), kEarthRadiusKm, 1e-9);
  const auto q = ecef_to_geo(v);
  EXPECT_NEAR(q.lat_deg(), 30.0, 1e-10);
  EXPECT_NEAR(q.lon_deg(), -118.25, 1e-10);
}

TEST(Geodesy, CardinalPoints) {
  const auto north = geo_to_ecef_unit(GeoPoint::from_degrees(90.0, 0.0));
  EXPECT_NEAR(north.z, 1.0, 1e-15);
  const auto gulf = geo_to_ecef_unit(GeoPoint::from_degrees(0.0, 0.0));
  EXPECT_NEAR(gulf.x, 1.0, 1e-15);
  const auto east = geo_to_ecef_unit(GeoPoint::from_degrees(0.0, 90.0));
  EXPECT_NEAR(east.y, 1.0, 1e-15);
}

TEST(Geodesy, EciEcefRotationRoundTrip) {
  const Vec3 eci{5000.0, -2500.0, 3000.0};
  const auto t = Duration::minutes(37.0);
  const auto back = ecef_to_eci(eci_to_ecef(eci, t), t);
  EXPECT_NEAR((back - eci).norm(), 0.0, 1e-9);
}

TEST(Geodesy, EarthRotatesEastward) {
  // A point fixed in inertial space drifts westward in ECEF longitude.
  const Vec3 eci{kEarthRadiusKm, 0.0, 0.0};
  const auto after = ecef_to_geo(eci_to_ecef(eci, Duration::hours(1.0)));
  EXPECT_LT(after.lon_rad, 0.0);
  EXPECT_NEAR(after.lon_rad, -kEarthRotationRadPerS * 3600.0, 1e-12);
}

TEST(Geodesy, SiderealDayReturnsHome) {
  const Vec3 eci{kEarthRadiusKm, 0.0, 0.0};
  const double sidereal_s = 2.0 * kPi / kEarthRotationRadPerS;
  const auto after = eci_to_ecef(eci, Duration::seconds(sidereal_s));
  EXPECT_NEAR((after - eci).norm(), 0.0, 1e-6);
}

TEST(Geodesy, CentralAngleKnownValues) {
  const auto a = GeoPoint::from_degrees(0.0, 0.0);
  const auto b = GeoPoint::from_degrees(0.0, 90.0);
  EXPECT_NEAR(central_angle(a, b), kPi / 2.0, 1e-14);
  const auto pole = GeoPoint::from_degrees(90.0, 45.0);
  EXPECT_NEAR(central_angle(a, pole), kPi / 2.0, 1e-14);
  EXPECT_NEAR(central_angle(a, a), 0.0, 1e-14);
}

TEST(Geodesy, GreatCircleDistanceQuarterEquator) {
  const auto a = GeoPoint::from_degrees(0.0, 0.0);
  const auto b = GeoPoint::from_degrees(0.0, 90.0);
  EXPECT_NEAR(great_circle_km(a, b), kEarthRadiusKm * kPi / 2.0, 1e-9);
}

TEST(Geodesy, InitialBearingCardinals) {
  const auto origin = GeoPoint::from_degrees(0.0, 0.0);
  EXPECT_NEAR(initial_bearing(origin, GeoPoint::from_degrees(10.0, 0.0)), 0.0,
              1e-12);
  EXPECT_NEAR(initial_bearing(origin, GeoPoint::from_degrees(0.0, 10.0)),
              kPi / 2.0, 1e-12);
  EXPECT_NEAR(initial_bearing(origin, GeoPoint::from_degrees(-10.0, 0.0)), kPi,
              1e-12);
}

TEST(Geodesy, DestinationInvertsBearing) {
  const auto a = GeoPoint::from_degrees(30.0, -118.0);
  const double bearing = deg2rad(63.0);
  const double angle = deg2rad(20.0);
  const auto b = destination(a, bearing, angle);
  EXPECT_NEAR(central_angle(a, b), angle, 1e-12);
  EXPECT_NEAR(initial_bearing(a, b), bearing, 1e-9);
}

TEST(Geodesy, DestinationAlongEquator) {
  const auto a = GeoPoint::from_degrees(0.0, 10.0);
  const auto b = destination(a, kPi / 2.0, deg2rad(15.0));
  EXPECT_NEAR(b.lat_deg(), 0.0, 1e-10);
  EXPECT_NEAR(b.lon_deg(), 25.0, 1e-10);
}

TEST(Geodesy, DestinationWrapsLongitude) {
  const auto a = GeoPoint::from_degrees(0.0, 175.0);
  const auto b = destination(a, kPi / 2.0, deg2rad(10.0));
  EXPECT_NEAR(b.lon_deg(), -175.0, 1e-10);
}

}  // namespace
}  // namespace oaq
