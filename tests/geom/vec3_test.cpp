#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace oaq {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, -3.0, 9.0}));
  EXPECT_EQ(a - b, (Vec3{-3.0, 7.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(y.cross(x), (Vec3{0.0, 0.0, -1.0}));
  EXPECT_DOUBLE_EQ((Vec3{1.0, 2.0, 3.0}).dot(Vec3{4.0, 5.0, 6.0}), 32.0);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const auto u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, AngleBetweenIsStable) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_NEAR(angle_between(x, y), kPi / 2.0, 1e-15);
  EXPECT_NEAR(angle_between(x, x), 0.0, 1e-15);
  EXPECT_NEAR(angle_between(x, -x), kPi, 1e-15);
  // Tiny angle: acos would lose precision, atan2 must not.
  const Vec3 almost{1.0, 1e-9, 0.0};
  EXPECT_NEAR(angle_between(x, almost), 1e-9, 1e-15);
}

}  // namespace
}  // namespace oaq
