#include "geom/spherical_cap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(SphericalCap, ContainsCenterAndBoundary) {
  const SphericalCap cap(GeoPoint::from_degrees(30.0, 0.0), deg2rad(18.0));
  EXPECT_TRUE(cap.contains(GeoPoint::from_degrees(30.0, 0.0)));
  EXPECT_TRUE(cap.contains(GeoPoint::from_degrees(47.9, 0.0)));
  EXPECT_FALSE(cap.contains(GeoPoint::from_degrees(48.5, 0.0)));
}

TEST(SphericalCap, RejectsDegenerateRadius) {
  EXPECT_THROW(SphericalCap(GeoPoint{}, 0.0), PreconditionError);
  EXPECT_THROW(SphericalCap(GeoPoint{}, 4.0), PreconditionError);
}

TEST(SphericalCap, AreaMatchesClosedForm) {
  const double psi = deg2rad(18.0);
  const SphericalCap cap(GeoPoint{}, psi);
  const double expected =
      2.0 * kPi * kEarthRadiusKm * kEarthRadiusKm * (1.0 - std::cos(psi));
  EXPECT_NEAR(cap.area_km2(), expected, 1e-6);
  // Hemisphere sanity: 2πR².
  const SphericalCap hemi(GeoPoint{}, kPi / 2.0);
  EXPECT_NEAR(hemi.area_km2(1.0), 2.0 * kPi, 1e-12);
}

TEST(SphericalCap, OverlapPredicate) {
  const double psi = deg2rad(18.0);
  const SphericalCap a(GeoPoint::from_degrees(0.0, 0.0), psi);
  const SphericalCap near(GeoPoint::from_degrees(0.0, 20.0), psi);
  const SphericalCap far(GeoPoint::from_degrees(0.0, 40.0), psi);
  EXPECT_TRUE(a.overlaps(near));
  EXPECT_FALSE(a.overlaps(far));
}

TEST(SphericalCap, IntersectionDisjointIsZero) {
  const SphericalCap a(GeoPoint::from_degrees(0.0, 0.0), deg2rad(10.0));
  const SphericalCap b(GeoPoint::from_degrees(0.0, 30.0), deg2rad(10.0));
  EXPECT_DOUBLE_EQ(a.intersection_area_km2(b), 0.0);
}

TEST(SphericalCap, IntersectionNestedIsSmallerCap) {
  const SphericalCap big(GeoPoint::from_degrees(0.0, 0.0), deg2rad(30.0));
  const SphericalCap small(GeoPoint::from_degrees(0.0, 5.0), deg2rad(10.0));
  EXPECT_NEAR(big.intersection_area_km2(small), small.area_km2(), 1e-6);
  EXPECT_NEAR(small.intersection_area_km2(big), small.area_km2(), 1e-6);
}

TEST(SphericalCap, IntersectionIdenticalCapsIsCapArea) {
  const SphericalCap a(GeoPoint::from_degrees(12.0, 34.0), deg2rad(18.0));
  EXPECT_NEAR(a.intersection_area_km2(a), a.area_km2(), 1e-6);
}

TEST(SphericalCap, IntersectionOfOrthogonalHemispheresIsLune) {
  // Two hemispheres with orthogonal axes intersect in a lune of area πR².
  const SphericalCap h1(GeoPoint::from_degrees(90.0, 0.0), kPi / 2.0);
  const SphericalCap h2(GeoPoint::from_degrees(0.0, 0.0), kPi / 2.0);
  EXPECT_NEAR(h1.intersection_area_km2(h2, 1.0), kPi, 1e-9);
}

TEST(SphericalCap, IntersectionMonotoneInSeparation) {
  const double psi = deg2rad(18.0);
  const SphericalCap a(GeoPoint::from_degrees(0.0, 0.0), psi);
  double prev = a.area_km2();
  for (double sep = 2.0; sep < 36.0; sep += 2.0) {
    const SphericalCap b(GeoPoint::from_degrees(0.0, sep), psi);
    const double inter = a.intersection_area_km2(b);
    EXPECT_LT(inter, prev + 1e-9) << "sep " << sep;
    EXPECT_GE(inter, 0.0);
    prev = inter;
  }
}

TEST(SphericalCap, IntersectionMatchesMonteCarloEstimate) {
  // Cross-check the Gauss–Bonnet formula against area quadrature on a
  // latitude/longitude grid (deterministic, no RNG needed).
  const double psi = deg2rad(18.0);
  const SphericalCap a(GeoPoint::from_degrees(10.0, 0.0), psi);
  const SphericalCap b(GeoPoint::from_degrees(10.0, 24.0), psi);
  const int nlat = 600, nlon = 1200;
  double covered = 0.0;
  for (int i = 0; i < nlat; ++i) {
    const double lat = -kPi / 2.0 + kPi * (i + 0.5) / nlat;
    const double cell = (kPi / nlat) * (2.0 * kPi / nlon) * std::cos(lat);
    for (int j = 0; j < nlon; ++j) {
      const double lon = -kPi + 2.0 * kPi * (j + 0.5) / nlon;
      const GeoPoint p{lat, lon};
      if (a.contains(p) && b.contains(p)) covered += cell;
    }
  }
  const double exact = a.intersection_area_km2(b, 1.0);
  EXPECT_NEAR(covered, exact, exact * 0.02);
}

}  // namespace
}  // namespace oaq
