#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(ParallelJobs, HardwareDetectionIsPositive) {
  EXPECT_GE(hardware_jobs(), 1);
}

TEST(ParallelJobs, ExplicitRequestWins) {
  ::setenv("OAQ_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_EQ(resolve_jobs(1), 1);
  ::unsetenv("OAQ_JOBS");
}

TEST(ParallelJobs, EnvOverridesAuto) {
  ::setenv("OAQ_JOBS", "3", 1);
  EXPECT_EQ(env_jobs(), 3);
  EXPECT_EQ(resolve_jobs(0), 3);
  ::unsetenv("OAQ_JOBS");
  EXPECT_EQ(env_jobs(), 0);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
}

TEST(ParallelJobs, MalformedEnvIsIgnored) {
  for (const char* bad : {"", "zero", "-2", "0"}) {
    ::setenv("OAQ_JOBS", bad, 1);
    EXPECT_EQ(env_jobs(), 0) << "OAQ_JOBS=" << bad;
  }
  ::unsetenv("OAQ_JOBS");
}

TEST(ParallelThreadPool, ForEachShardRunsEveryShardOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.for_each_shard(97, 4, [&](int s) { ++hits[static_cast<size_t>(s)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelThreadPool, MoreJobsThanShardsIsFine) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.for_each_shard(3, 16, [&](int) { ++total; });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelThreadPool, PropagatesShardException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.for_each_shard(16, 4,
                                   [&](int s) {
                                     if (s == 5) throw std::runtime_error("boom");
                                     ++completed;
                                   }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the other shards still ran
}

TEST(ParallelShardRange, PartitionsExhaustivelyAndContiguously) {
  for (const std::int64_t n : {1L, 7L, 64L, 1000L, 20001L}) {
    for (const int shards : {1, 3, 8, 64}) {
      if (shards > n) continue;
      std::int64_t expected_begin = 0;
      for (int s = 0; s < shards; ++s) {
        const auto [b, e] = shard_range(n, shards, s);
        EXPECT_EQ(b, expected_begin);
        EXPECT_LT(b, e);  // balanced split never produces an empty shard
        expected_begin = e;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ParallelReduce, MatchesSerialSumForAnyJobsAndShards) {
  const std::int64_t n = 20001;
  const std::int64_t expected = n * (n - 1) / 2;
  for (const int shards : {1, 3, 16, 64}) {
    for (const int jobs : {1, 2, 4, 8}) {
      const auto sum = parallel_reduce<std::int64_t>(
          n, shards, jobs,
          [](std::int64_t begin, std::int64_t end, int) {
            std::int64_t s = 0;
            for (std::int64_t i = begin; i < end; ++i) s += i;
            return s;
          },
          [](std::int64_t& into, std::int64_t from) { into += from; });
      EXPECT_EQ(sum, expected) << "shards=" << shards << " jobs=" << jobs;
    }
  }
}

TEST(ParallelReduce, MergesInShardOrder) {
  // Non-commutative merge (concatenation): order-sensitive, so this fails
  // unless shard results are folded strictly left-to-right.
  for (const int jobs : {1, 4}) {
    const auto order = parallel_reduce<std::vector<int>>(
        48, 16, jobs,
        [](std::int64_t, std::int64_t, int shard) {
          return std::vector<int>{shard};
        },
        [](std::vector<int>& into, std::vector<int>&& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
    std::vector<int> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected) << "jobs=" << jobs;
  }
}

TEST(ParallelReduce, PropagatesMapException) {
  for (const int jobs : {1, 4}) {
    EXPECT_THROW(parallel_reduce<int>(
                     16, 8, jobs,
                     [](std::int64_t b, std::int64_t, int) -> int {
                       if (b >= 8) throw std::runtime_error("map failed");
                       return 0;
                     },
                     [](int& into, int from) { into += from; }),
                 std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(ParallelReduce, SingleItemCollapsesToOneShard) {
  const auto v = parallel_reduce<int>(
      1, 64, 8, [](std::int64_t b, std::int64_t e, int) {
        return static_cast<int>(e - b);
      },
      [](int& into, int from) { into += from; });
  EXPECT_EQ(v, 1);
}

TEST(ParallelReduce, RejectsEmptyInput) {
  const auto noop_map = [](std::int64_t, std::int64_t, int) { return 0; };
  const auto noop_merge = [](int& into, int from) { into += from; };
  EXPECT_THROW((void)parallel_reduce<int>(0, 4, 1, noop_map, noop_merge),
               PreconditionError);
  EXPECT_THROW((void)parallel_reduce<int>(4, 0, 1, noop_map, noop_merge),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
