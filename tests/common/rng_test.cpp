#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oaq {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRangeAndWellSpread) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // expectation 1000
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(Rng, ExponentialDurationUsesStrongRate) {
  Rng rng(11);
  double sum_minutes = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum_minutes += rng.exponential(Rate::per_minute(0.5)).to_minutes();
  }
  EXPECT_NEAR(sum_minutes / n, 2.0, 0.08);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  // Forking with the same tag from an untouched parent replays the stream.
  Rng parent2(99);
  Rng c1_again = parent2.fork(1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  }
  // Different tags give different streams.
  Rng c1b = parent2.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1b.next_u64() == c2.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
}

}  // namespace
}  // namespace oaq
