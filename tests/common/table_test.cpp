#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"k", "Tr[k]", "mode"}, 2);
  t.add_row({static_cast<long long>(12), 7.5, std::string("overlap")});
  t.add_row({static_cast<long long>(9), 10.0, std::string("underlap")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Tr[k]"), std::string::npos);
  EXPECT_NE(out.find("7.50"), std::string::npos);
  EXPECT_NE(out.find("underlap"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, CaptionAppearsFirst) {
  TablePrinter t({"a"});
  t.set_caption("Table 1: QoS levels");
  t.add_row({std::string("x")});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("Table 1: QoS levels", 0), 0u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), PreconditionError);
  EXPECT_THROW(TablePrinter({}), PreconditionError);
}

TEST(SeriesPrinter, RendersSeriesHeadersAndPoints) {
  SeriesPrinter s("lambda", {"OAQ", "BAQ"}, 3);
  s.add_point(1e-5, {0.75, 0.33});
  s.add_point(1e-4, {0.41, 0.04});
  std::ostringstream os;
  s.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("lambda"), std::string::npos);
  EXPECT_NE(out.find("OAQ"), std::string::npos);
  EXPECT_NE(out.find("0.750"), std::string::npos);
  EXPECT_NE(out.find("1.00e-05"), std::string::npos);
}

TEST(SeriesPrinter, RejectsArityMismatch) {
  SeriesPrinter s("x", {"y"});
  EXPECT_THROW(s.add_point(0.0, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(SeriesPrinter("x", {}), PreconditionError);
}

TEST(Sci, FormatsScientific) {
  EXPECT_EQ(sci(1e-5), "1.00e-05");
  EXPECT_EQ(sci(0.00003), "3.00e-05");
}

}  // namespace
}  // namespace oaq
