#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oaq {
namespace {

TEST(Duration, FactoryConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(Duration::minutes(9).to_seconds(), 540.0);
  EXPECT_DOUBLE_EQ(Duration::hours(2).to_minutes(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::days(1).to_hours(), 24.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(90).to_minutes(), 1.5);
}

TEST(Duration, ArithmeticAndComparison) {
  const auto a = Duration::minutes(5);
  const auto b = Duration::minutes(4);
  EXPECT_DOUBLE_EQ((a + b).to_minutes(), 9.0);
  EXPECT_DOUBLE_EQ((a - b).to_minutes(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).to_minutes(), 10.0);
  EXPECT_DOUBLE_EQ((2.0 * a).to_minutes(), 10.0);
  EXPECT_DOUBLE_EQ((a / 2.0).to_minutes(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 1.25);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(Duration, CompoundAssignment) {
  auto d = Duration::minutes(1);
  d += Duration::minutes(2);
  d -= Duration::seconds(60);
  d *= 3.0;
  d /= 2.0;
  EXPECT_DOUBLE_EQ(d.to_minutes(), 3.0);
}

TEST(Duration, InfinityIsLargerThanAnyFinite) {
  EXPECT_FALSE(Duration::infinity().is_finite());
  EXPECT_TRUE(Duration::hours(1e12).is_finite());
  EXPECT_LT(Duration::hours(1e12), Duration::infinity());
}

TEST(Duration, StreamsInMinutes) {
  std::ostringstream os;
  os << Duration::minutes(7.5);
  EXPECT_EQ(os.str(), "7.5 min");
}

TEST(Rate, UnitConversions) {
  EXPECT_DOUBLE_EQ(Rate::per_hour(3600).per_second_value(), 1.0);
  EXPECT_DOUBLE_EQ(Rate::per_minute(0.5).per_hour_value(), 30.0);
  EXPECT_DOUBLE_EQ(Rate::per_second(2).per_minute_value(), 120.0);
}

TEST(Rate, MeanIntervalInvertsRate) {
  EXPECT_DOUBLE_EQ(Rate::per_minute(0.5).mean_interval().to_minutes(), 2.0);
}

TEST(Rate, RateTimesDurationIsDimensionless) {
  // λ = 1e-5 per hour over φ = 30000 hours: expect 0.3 failures.
  EXPECT_DOUBLE_EQ(Rate::per_hour(1e-5) * Duration::hours(30000), 0.3);
  EXPECT_DOUBLE_EQ(Duration::hours(30000) * Rate::per_hour(1e-5), 0.3);
}

TEST(Rate, AdditionAndScaling) {
  const auto r = Rate::per_hour(2) + Rate::per_hour(3);
  EXPECT_DOUBLE_EQ(r.per_hour_value(), 5.0);
  EXPECT_DOUBLE_EQ((r * 2.0).per_hour_value(), 10.0);
  EXPECT_DOUBLE_EQ((2.0 * r).per_hour_value(), 10.0);
}

TEST(TimePoint, OffsetArithmetic) {
  const auto t0 = TimePoint::origin();
  const auto t1 = t0 + Duration::minutes(5);
  EXPECT_DOUBLE_EQ((t1 - t0).to_minutes(), 5.0);
  EXPECT_DOUBLE_EQ((t1 - Duration::minutes(2)).since_origin().to_minutes(), 3.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::at(Duration::minutes(5)), t1);
}

TEST(Angles, DegreesRadiansRoundTrip) {
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad2deg(kPi / 2.0), 90.0);
  EXPECT_NEAR(rad2deg(deg2rad(33.3)), 33.3, 1e-12);
}

TEST(Angles, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(2.0 * kPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5), 2.0 * kPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(0.0), 0.0, 1e-12);
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(kPi + 0.25), -kPi + 0.25, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.25), kPi - 0.25, 1e-12);
  EXPECT_NEAR(wrap_pi(0.75), 0.75, 1e-12);
}

}  // namespace
}  // namespace oaq
