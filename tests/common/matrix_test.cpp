#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace oaq {
namespace {

TEST(Matrix, InitializerListAndIndexing) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((void)m(2, 0), PreconditionError);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), PreconditionError);
}

TEST(Matrix, IdentityAndDiagonal) {
  const auto i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
  const auto d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, TransposeProduct) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  const auto g = at * a;  // Gram matrix, 3x3 symmetric
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 3u);
  EXPECT_DOUBLE_EQ(g(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
  EXPECT_THROW(a * a, PreconditionError);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 6.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a)(0, 1), 4.0);
  EXPECT_THROW(a += Matrix::identity(2), PreconditionError);
}

TEST(Matrix, SolveRecoversKnownSolution) {
  const Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const auto x_true = Matrix::column({1.0, -2.0});
  const auto b = a * x_true;
  const auto x = a.solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), -2.0, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting) {
  // Leading zero pivot forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = a.solve(Matrix::column({5.0, 7.0}));
  EXPECT_NEAR(x(0, 0), 7.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 5.0, 1e-12);
}

TEST(Matrix, SolveDetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(a.solve(Matrix::column({1.0, 1.0})), InvariantError);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  Rng rng(3);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 4.0;  // diagonally dominant
  const auto prod = a * a.inverse();
  EXPECT_NEAR((prod - Matrix::identity(4)).norm(), 0.0, 1e-10);
}

TEST(Matrix, CholeskyFactorReconstructs) {
  const Matrix a{{4.0, 2.0, 0.0}, {2.0, 5.0, 1.0}, {0.0, 1.0, 3.0}};
  const auto L = a.cholesky();
  const auto r = L * L.transposed() - a;
  EXPECT_NEAR(r.norm(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(L(0, 1), 0.0);  // lower triangular
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(a.cholesky(), InvariantError);
}

TEST(Matrix, SolveSpdMatchesLu) {
  const Matrix a{{4.0, 2.0, 0.0}, {2.0, 5.0, 1.0}, {0.0, 1.0, 3.0}};
  const auto b = Matrix::column({1.0, 2.0, 3.0});
  const auto x1 = a.solve(b);
  const auto x2 = a.solve_spd(b);
  EXPECT_NEAR((x1 - x2).norm(), 0.0, 1e-12);
}

TEST(Matrix, VectorNorm) {
  EXPECT_DOUBLE_EQ(vector_norm(Matrix::column({3.0, 4.0})), 5.0);
  EXPECT_THROW((void)vector_norm(Matrix::identity(2)), PreconditionError);
}

}  // namespace
}  // namespace oaq
