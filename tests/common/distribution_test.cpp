#include "common/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "common/stats.hpp"

namespace oaq {
namespace {

/// Empirical mean of `n` samples.
Duration sample_mean(const DurationDistribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  Duration sum = Duration::zero();
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  return sum / static_cast<double>(n);
}

/// ∫₀^∞ S(t) dt should equal the mean for a nonnegative variable.
double survival_mass_minutes(const DurationDistribution& d, double upto_min) {
  return integrate(
      [&](double t) { return d.survival(Duration::minutes(t)); }, 0.0,
      upto_min, 1e-10);
}

TEST(ExponentialDurationTest, SurvivalAndMean) {
  const ExponentialDuration d(Rate::per_minute(0.5));
  EXPECT_DOUBLE_EQ(d.mean().to_minutes(), 2.0);
  EXPECT_NEAR(d.survival(Duration::minutes(2)), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.survival(Duration::zero()), 1.0);
  EXPECT_NEAR(d.cdf(Duration::minutes(4)), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_NEAR(sample_mean(d, 40000, 1).to_minutes(), 2.0, 0.05);
  EXPECT_NEAR(survival_mass_minutes(d, 60.0), 2.0, 1e-6);
  EXPECT_THROW(ExponentialDuration(Rate::zero()), PreconditionError);
}

TEST(DeterministicDurationTest, StepSurvival) {
  const DeterministicDuration d(Duration::minutes(3));
  EXPECT_DOUBLE_EQ(d.mean().to_minutes(), 3.0);
  EXPECT_DOUBLE_EQ(d.survival(Duration::minutes(2.999)), 1.0);
  EXPECT_DOUBLE_EQ(d.survival(Duration::minutes(3.0)), 0.0);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(d.sample(rng).to_minutes(), 3.0);
  EXPECT_NEAR(survival_mass_minutes(d, 10.0), 3.0, 1e-6);
  EXPECT_THROW(DeterministicDuration(Duration::zero()), PreconditionError);
}

TEST(WeibullDurationTest, ReducesToExponentialAtShapeOne) {
  const WeibullDuration w(1.0, Duration::minutes(2));
  const ExponentialDuration e(Rate::per_minute(0.5));
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(w.survival(Duration::minutes(t)),
                e.survival(Duration::minutes(t)), 1e-12);
  }
  EXPECT_NEAR(w.mean().to_minutes(), 2.0, 1e-10);
}

TEST(WeibullDurationTest, WithMeanHitsTheMean) {
  for (double shape : {0.7, 1.0, 2.0, 3.5}) {
    const auto w = WeibullDuration::with_mean(shape, Duration::minutes(5));
    EXPECT_NEAR(w.mean().to_minutes(), 5.0, 1e-9) << "shape " << shape;
    EXPECT_NEAR(sample_mean(w, 60000, 3).to_minutes(), 5.0, 0.15)
        << "shape " << shape;
    EXPECT_NEAR(survival_mass_minutes(w, 400.0), 5.0, 0.01)
        << "shape " << shape;
  }
}

TEST(WeibullDurationTest, ShapeControlsTail) {
  // At equal means, the bursty (shape < 1) law has the heavier tail.
  const auto bursty = WeibullDuration::with_mean(0.5, Duration::minutes(5));
  const auto ageing = WeibullDuration::with_mean(3.0, Duration::minutes(5));
  EXPECT_GT(bursty.survival(Duration::minutes(20)),
            ageing.survival(Duration::minutes(20)));
  // ...and more mass near zero.
  EXPECT_GT(bursty.cdf(Duration::minutes(1)), ageing.cdf(Duration::minutes(1)));
  EXPECT_THROW(WeibullDuration(0.0, Duration::minutes(1)), PreconditionError);
}

TEST(UniformDurationTest, LinearSurvival) {
  const UniformDuration d(Duration::minutes(2), Duration::minutes(6));
  EXPECT_DOUBLE_EQ(d.mean().to_minutes(), 4.0);
  EXPECT_DOUBLE_EQ(d.survival(Duration::minutes(1)), 1.0);
  EXPECT_DOUBLE_EQ(d.survival(Duration::minutes(4)), 0.5);
  EXPECT_DOUBLE_EQ(d.survival(Duration::minutes(7)), 0.0);
  EXPECT_NEAR(sample_mean(d, 40000, 4).to_minutes(), 4.0, 0.05);
  EXPECT_THROW(UniformDuration(Duration::minutes(3), Duration::minutes(3)),
               PreconditionError);
}

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(kPi), 1e-10);
  EXPECT_THROW((void)log_gamma(0.0), PreconditionError);
}

}  // namespace
}  // namespace oaq
