#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace oaq {
namespace {

TEST(RunningStat, MeanVarianceExtremaOfKnownData) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(RunningStat, CiShrinksWithSamples) {
  Rng rng(5);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.mean(), 0.0, 3.0 * large.ci95_halfwidth() + 0.05);
}

TEST(ProportionEstimate, PointEstimateAndInterval) {
  ProportionEstimate p;
  for (int i = 0; i < 70; ++i) p.add(true);
  for (int i = 0; i < 30; ++i) p.add(false);
  EXPECT_DOUBLE_EQ(p.value(), 0.7);
  const auto [lo, hi] = p.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
  EXPECT_GT(lo, 0.55);
  EXPECT_LT(hi, 0.82);
}

TEST(ProportionEstimate, EmptyIsVacuous) {
  ProportionEstimate p;
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
  const auto [lo, hi] = p.wilson95();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);   // underflow -> first bin
  h.add(123.0);  // overflow -> last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(MergeRunningStat, HalvesAgreeWithOnePassStream) {
  Rng rng(17);
  RunningStat one_pass, left, right;
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.normal(3.0, 2.0));
  for (double x : samples) one_pass.add(x);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i < samples.size() / 3 ? left : right).add(samples[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), one_pass.count());
  EXPECT_NEAR(left.mean(), one_pass.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), one_pass.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), one_pass.min());
  EXPECT_DOUBLE_EQ(left.max(), one_pass.max());
}

TEST(MergeRunningStat, EmptySidesAreIdentity) {
  RunningStat stat, empty;
  stat.add(1.0);
  stat.add(5.0);
  stat.merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);

  RunningStat target;
  target.merge(stat);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 3.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 5.0);
}

TEST(MergeProportion, TrialsAndSuccessesAdd) {
  ProportionEstimate a, b;
  for (int i = 0; i < 30; ++i) a.add(i < 21);
  for (int i = 0; i < 70; ++i) b.add(i < 49);
  a.merge(b);
  EXPECT_EQ(a.trials(), 100u);
  EXPECT_EQ(a.successes(), 70u);
  EXPECT_DOUBLE_EQ(a.value(), 0.7);
}

TEST(MergeDiscretePmf, CountsAddExactly) {
  DiscretePmf a, b;
  a.add(0, 3.0);
  a.add(2, 1.0);
  b.add(2, 4.0);
  b.add(5, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 10.0);
  EXPECT_DOUBLE_EQ(a.weights().at(0), 3.0);
  EXPECT_DOUBLE_EQ(a.weights().at(2), 5.0);
  EXPECT_DOUBLE_EQ(a.weights().at(5), 2.0);
  EXPECT_DOUBLE_EQ(a.probability(2), 0.5);
}

TEST(MergeHistogram, CountsOverflowAndQuantilesCombine) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10), whole(0.0, 10.0, 10);
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1.0, 12.0);
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_EQ(a.underflow(), whole.underflow());
  EXPECT_EQ(a.overflow(), whole.overflow());
  for (std::size_t bin = 0; bin < whole.bins(); ++bin) {
    EXPECT_EQ(a.count(bin), whole.count(bin)) << "bin " << bin;
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.5), whole.quantile(0.5));
}

TEST(MergeHistogram, RejectsMismatchedLayout) {
  Histogram a(0.0, 10.0, 10);
  Histogram different_range(0.0, 5.0, 10);
  Histogram different_bins(0.0, 10.0, 20);
  EXPECT_THROW(a.merge(different_range), PreconditionError);
  EXPECT_THROW(a.merge(different_bins), PreconditionError);
}

TEST(DiscretePmf, ProbabilitiesAndTail) {
  DiscretePmf pmf;
  pmf.add(0, 1.0);
  pmf.add(1, 2.0);
  pmf.add(3, 1.0);
  EXPECT_DOUBLE_EQ(pmf.probability(1), 0.5);
  EXPECT_DOUBLE_EQ(pmf.probability(2), 0.0);
  EXPECT_DOUBLE_EQ(pmf.tail_probability(1), 0.75);
  EXPECT_DOUBLE_EQ(pmf.tail_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(pmf.tail_probability(4), 0.0);
}

TEST(DiscretePmf, EmptyPmfIsZero) {
  DiscretePmf pmf;
  EXPECT_DOUBLE_EQ(pmf.probability(0), 0.0);
  EXPECT_DOUBLE_EQ(pmf.tail_probability(0), 0.0);
}

}  // namespace
}  // namespace oaq
