#include "common/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace oaq {
namespace {

TEST(Integrate, Polynomial) {
  const auto f = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(integrate(f, 0.0, 2.0), 8.0, 1e-9);
}

TEST(Integrate, ExponentialMatchesClosedForm) {
  // ∫0^5 e^{-0.5 x} dx = 2 (1 - e^{-2.5}) — the shape used throughout the
  // analytic QoS model.
  const auto f = [](double x) { return std::exp(-0.5 * x); };
  EXPECT_NEAR(integrate(f, 0.0, 5.0), 2.0 * (1.0 - std::exp(-2.5)), 1e-10);
}

TEST(Integrate, ReversedBoundsGiveNegative) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(integrate(f, 2.0, 0.0), -2.0, 1e-9);
}

TEST(Integrate, EmptyIntervalIsZero) {
  const auto f = [](double) { return 1e9; };
  EXPECT_DOUBLE_EQ(integrate(f, 3.0, 3.0), 0.0);
}

TEST(Integrate, StiffIntegrandConverges) {
  // ν = 30 terms give integrands with a boundary layer of width 1/30.
  const auto f = [](double x) { return 30.0 * std::exp(-30.0 * x); };
  EXPECT_NEAR(integrate(f, 0.0, 5.0, 1e-12), 1.0, 1e-8);
}

TEST(Integrate, RejectsBadTolerance) {
  EXPECT_THROW((void)integrate([](double) { return 0.0; }, 0.0, 1.0, 0.0),
               PreconditionError);
}

TEST(IntegrateGauss, AgreesWithAdaptiveOnSmoothIntegrand) {
  const auto f = [](double x) { return std::sin(x) * std::exp(-0.3 * x); };
  for (int order : {4, 8, 16, 32, 64}) {
    EXPECT_NEAR(integrate_gauss(f, 0.0, 4.0, order), integrate(f, 0.0, 4.0),
                order >= 16 ? 1e-10 : 1e-4)
        << "order " << order;
  }
}

TEST(IntegrateGauss, RejectsUnknownOrder) {
  EXPECT_THROW((void)integrate_gauss([](double) { return 0.0; }, 0.0, 1.0, 7),
               PreconditionError);
}

TEST(FindRoot, SimpleTranscendental) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const double r = find_root(f, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(FindRoot, ExactEndpoint) {
  const auto f = [](double x) { return x - 2.0; };
  EXPECT_DOUBLE_EQ(find_root(f, 2.0, 5.0), 2.0);
}

TEST(FindRoot, RequiresBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)find_root(f, -1.0, 1.0), PreconditionError);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_THROW(linspace(0.0, 1.0, 1), PreconditionError);
}

TEST(Logspace, EndpointsExactAndMonotone) {
  const auto g = logspace(1e-5, 1e-4, 10);
  ASSERT_EQ(g.size(), 10u);
  EXPECT_DOUBLE_EQ(g.front(), 1e-5);
  EXPECT_DOUBLE_EQ(g.back(), 1e-4);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  EXPECT_THROW(logspace(0.0, 1.0, 4), PreconditionError);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1.0 + 1e-10)));
}

}  // namespace
}  // namespace oaq
