#include "common/function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace oaq {
namespace {

TEST(SmallFunction, DefaultConstructedIsEmpty) {
  SmallFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  SmallFunction<int()> g(nullptr);
  EXPECT_TRUE(g == nullptr);
}

TEST(SmallFunction, InvokesSmallCapturesInline) {
  int x = 41;
  SmallFunction<int()> f([&x] { return x + 1; });
  ASSERT_TRUE(f != nullptr);
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(SmallFunction, ForwardsArgumentsAndReturn) {
  SmallFunction<int(int, int)> f([](int a, int b) { return a * 10 + b; });
  EXPECT_EQ(f(3, 4), 34);
}

TEST(SmallFunction, OversizedCaptureFallsBackToHeap) {
  std::array<double, 32> big{};  // 256 bytes > the 64-byte default buffer
  big[7] = 3.5;
  SmallFunction<double()> f([big] { return big[7]; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 3.5);
}

TEST(SmallFunction, MoveTransfersOwnership) {
  auto owned = std::make_unique<int>(7);
  SmallFunction<int()> f([p = std::move(owned)] { return *p; });
  SmallFunction<int()> g(std::move(f));
  EXPECT_TRUE(f == nullptr);  // NOLINT(bugprone-use-after-move): contract
  ASSERT_TRUE(g != nullptr);
  EXPECT_EQ(g(), 7);
  SmallFunction<int()> h;
  h = std::move(g);
  EXPECT_TRUE(g == nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(h(), 7);
}

TEST(SmallFunction, MoveTransfersHeapCallableWithoutCopy) {
  std::array<std::string, 8> big{};
  big[0] = "payload";
  SmallFunction<std::string()> f([big] { return big[0]; });
  ASSERT_FALSE(f.is_inline());
  SmallFunction<std::string()> g(std::move(f));
  EXPECT_EQ(g(), "payload");
}

TEST(SmallFunction, NullAssignmentDestroysCapture) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
    Probe(std::shared_ptr<int> c) : c(std::move(c)) {}
    Probe(Probe&&) noexcept = default;
    Probe(const Probe& o) : c(o.c) {}
    void operator()() const {}
  };
  {
    SmallFunction<void()> f(Probe{counter});
    const int after_construction = *counter;
    f = nullptr;
    EXPECT_EQ(*counter, after_construction + 1);
    EXPECT_TRUE(f == nullptr);
  }
}

TEST(SmallFunction, ReassignmentReplacesCallable) {
  SmallFunction<int()> f([] { return 1; });
  f = SmallFunction<int()>([] { return 2; });
  EXPECT_EQ(f(), 2);
}

TEST(SmallFunction, MutableCallableKeepsStateAcrossCalls) {
  SmallFunction<int()> f([n = 0]() mutable { return ++n; });
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
  EXPECT_EQ(f(), 3);
}

TEST(SmallFunction, WrapsFunctionPointers) {
  SmallFunction<int(int)> f(+[](int v) { return v * v; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(9), 81);
}

}  // namespace
}  // namespace oaq
