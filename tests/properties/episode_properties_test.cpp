// Property suite: protocol-level invariants over randomized episodes,
// parameterized over capacity, deadline and messaging variant.
#include <gtest/gtest.h>

#include "analytic/geometry.hpp"
#include "oaq/episode.hpp"

namespace oaq {
namespace {

struct Scenario {
  int k;
  double tau_min;
  bool backward;
};

class EpisodeInvariants : public ::testing::TestWithParam<Scenario> {};

TEST_P(EpisodeInvariants, HoldOverRandomizedEpisodes) {
  const auto sc = GetParam();
  const PlaneGeometry geometry;
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(sc.tau_min);
  cfg.delta = Duration::seconds(12);
  cfg.tg = Duration::seconds(6);
  cfg.computation_cap = Duration::seconds(6);  // bounded-computation regime
  cfg.backward_messaging = sc.backward;

  Rng master(1000 + static_cast<unsigned>(sc.k));
  Rng phase_rng = master.fork(1);
  Rng dur_rng = master.fork(2);
  Rng ep_rng = master.fork(3);

  const int episodes = 400;
  for (int e = 0; e < episodes; ++e) {
    const Duration phase =
        phase_rng.uniform(Duration::zero(), geometry.tr(sc.k));
    const AnalyticSchedule sched(geometry, sc.k, phase);
    const EpisodeEngine engine(sched, cfg, true);
    const Duration dur = dur_rng.exponential(Rate::per_minute(0.3));
    Rng rng = ep_rng.fork(static_cast<std::uint64_t>(e));
    const auto r = engine.run(TimePoint::at(Duration::minutes(60)), dur, rng);

    // I1: detection implies delivery (no faults injected), and exactly one
    //     alert under backward messaging.
    if (r.detected) {
      EXPECT_TRUE(r.alert_delivered) << "episode " << e;
      EXPECT_EQ(r.alerts_sent, 1) << "episode " << e;
      // I2: the alert is timely (bounded computation + TC-2 margins).
      EXPECT_TRUE(r.timely) << "episode " << e;
      // I3: the first alert never precedes detection.
      EXPECT_GE(r.first_alert_sent, r.detection) << "episode " << e;
    } else {
      EXPECT_FALSE(r.alert_delivered) << "episode " << e;
      EXPECT_EQ(r.level, QosLevel::kMissed) << "episode " << e;
    }

    // I4: chain length respects Eq. (2) (underlapping planes).
    if (!geometry.overlapping(sc.k) && r.detected) {
      EXPECT_LE(r.chain_length,
                std::max(1, geometry.max_chain(sc.k, cfg.tau)))
          << "episode " << e;
    }

    // I5: levels respect Table 1's support.
    if (geometry.overlapping(sc.k)) {
      EXPECT_NE(r.level, QosLevel::kSequentialDual) << "episode " << e;
      EXPECT_NE(r.level, QosLevel::kMissed) << "episode " << e;
    } else {
      EXPECT_NE(r.level, QosLevel::kSimultaneousDual) << "episode " << e;
    }

    // I6: nobody is left waiting.
    EXPECT_TRUE(r.all_participants_resolved) << "episode " << e;

    // I7: a delivered result always carries a positive error estimate and
    //     a level consistent with its chain length.
    if (r.alert_delivered) {
      EXPECT_GT(r.reported_error_km, 0.0) << "episode " << e;
      if (r.level == QosLevel::kSequentialDual) {
        EXPECT_GE(r.chain_length, 2) << "episode " << e;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityDeadlineVariant, EpisodeInvariants,
    ::testing::Values(Scenario{7, 5.0, true}, Scenario{9, 3.0, true},
                      Scenario{9, 5.0, true}, Scenario{9, 5.0, false},
                      Scenario{9, 25.0, true}, Scenario{10, 5.0, true},
                      Scenario{11, 5.0, true}, Scenario{12, 5.0, true},
                      Scenario{12, 5.0, false}, Scenario{14, 2.0, true},
                      Scenario{14, 8.0, true}),
    [](const auto& info) {
      const auto& s = info.param;
      return "k" + std::to_string(s.k) + "_tau" +
             std::to_string(static_cast<int>(s.tau_min * 10)) +
             (s.backward ? "_bwd" : "_fwd");
    });

}  // namespace
}  // namespace oaq
