// Property suite: protocol behaviour under lossy crosslinks.
//
// The backward-messaging design degrades gracefully under message loss:
// a lost CoordinationRequest or a lost "done" can cost accuracy or cause
// a duplicate alert, but never the alert itself — at-least-once delivery
// is carried by the per-member wait deadlines, not by the links.
#include <gtest/gtest.h>

#include "analytic/geometry.hpp"
#include "oaq/episode.hpp"

namespace oaq {
namespace {

class LossyLinks : public ::testing::TestWithParam<double> {};

TEST_P(LossyLinks, AtLeastOnceDeliverySurvivesLoss) {
  const double loss = GetParam();
  const PlaneGeometry geometry;
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(5);
  cfg.delta = Duration::seconds(12);
  cfg.tg = Duration::seconds(6);
  cfg.computation_cap = Duration::seconds(6);
  cfg.crosslink_loss_probability = loss;

  Rng master(42);
  Rng phase_rng = master.fork(1);
  Rng dur_rng = master.fork(2);
  Rng ep_rng = master.fork(3);

  int detected = 0, delivered = 0, duplicates = 0, level2 = 0;
  const int episodes = 1500;
  for (int e = 0; e < episodes; ++e) {
    const Duration phase = phase_rng.uniform(Duration::zero(),
                                             geometry.tr(9));
    const AnalyticSchedule sched(geometry, 9, phase);
    const EpisodeEngine engine(sched, cfg, true);
    Rng rng = ep_rng.fork(static_cast<std::uint64_t>(e));
    const auto r = engine.run(TimePoint::at(Duration::minutes(60)),
                              dur_rng.exponential(Rate::per_minute(0.2)),
                              rng);
    detected += r.detected;
    delivered += r.alert_delivered;
    duplicates += (r.alerts_sent > 1);
    level2 += (r.level == QosLevel::kSequentialDual);
    // The safety property: detection ⇒ delivery, at any loss rate.
    if (r.detected) {
      EXPECT_TRUE(r.alert_delivered) << "episode " << e << " loss " << loss;
    }
  }
  EXPECT_EQ(delivered, detected);
  if (loss == 0.0) {
    EXPECT_EQ(duplicates, 0);
  }
  // Liveness degrades gracefully: some level-2 results survive even heavy
  // loss (requests that do get through still work).
  if (loss <= 0.5) {
    EXPECT_GT(level2, 0) << "loss " << loss;
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LossyLinks,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5),
                         [](const auto& info) {
                           return "loss" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

TEST(LossyLinks, LostDoneCausesDuplicateNotSilence) {
  // Force the "done" path to fail often: heavy loss, long signals so the
  // chain always forms. Duplicates may appear; missing alerts may not.
  const PlaneGeometry geometry;
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(5);
  cfg.delta = Duration::seconds(12);
  cfg.tg = Duration::seconds(6);
  cfg.computation_cap = Duration::seconds(6);
  cfg.crosslink_loss_probability = 0.6;

  Rng master(77);
  int delivered = 0, detected = 0, dup = 0;
  for (int e = 0; e < 800; ++e) {
    const AnalyticSchedule sched(geometry, 9,
                                 Duration::minutes(0.013 * e));
    const EpisodeEngine engine(sched, cfg, true);
    Rng rng = master.fork(static_cast<std::uint64_t>(e));
    const auto r = engine.run(TimePoint::at(Duration::minutes(60)),
                              Duration::minutes(30), rng);
    detected += r.detected;
    delivered += r.alert_delivered;
    dup += (r.alerts_sent > 1);
  }
  EXPECT_EQ(delivered, detected);
  EXPECT_GT(dup, 0);  // exactly-once is traded away, delivery is not
}

}  // namespace
}  // namespace oaq
