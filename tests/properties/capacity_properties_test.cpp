// Property suite: plane-capacity dependability model over a (λ, η) grid.
#include <gtest/gtest.h>

#include "fault/plane_capacity.hpp"

namespace oaq {
namespace {

struct DepPoint {
  double lambda;
  int eta;
};

class CapacityGrid : public ::testing::TestWithParam<DepPoint> {
 protected:
  [[nodiscard]] PlaneDependability model() const {
    PlaneDependability m;
    m.satellite_failure_rate = Rate::per_hour(GetParam().lambda);
    m.policy.ground_threshold = GetParam().eta;
    return m;
  }
};

TEST_P(CapacityGrid, PmfIsNormalizedWithBoundedSupport) {
  const auto pmf = plane_capacity_pmf(model(), 3, 150);
  double total = 0.0;
  for (const auto& [k, w] : pmf.weights()) {
    EXPECT_GE(k, 0);
    EXPECT_LE(k, 14);
    total += w / pmf.total_weight();
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(CapacityGrid, RarelyFallsFarBelowThreshold) {
  // The expedited policy keeps capacity within ~2 of the threshold.
  const auto pmf = plane_capacity_pmf(model(), 4, 150);
  double far_below = 0.0;
  for (const auto& [k, w] : pmf.weights()) {
    if (k < GetParam().eta - 2) far_below += w / pmf.total_weight();
  }
  EXPECT_LT(far_below, 0.05);
}

TEST_P(CapacityGrid, DeterministicAcrossRuns) {
  const auto a = plane_capacity_pmf(model(), 5, 60);
  const auto b = plane_capacity_pmf(model(), 5, 60);
  for (int k = 0; k <= 14; ++k) {
    EXPECT_DOUBLE_EQ(a.probability(k), b.probability(k));
  }
}

TEST_P(CapacityGrid, FullCapacityProbabilityFallsWithLambda) {
  const auto here = plane_capacity_pmf(model(), 6, 200);
  PlaneDependability harsher = model();
  harsher.satellite_failure_rate =
      Rate::per_hour(GetParam().lambda * 2.0);
  const auto worse = plane_capacity_pmf(harsher, 6, 200);
  EXPECT_GT(here.probability(14), worse.probability(14) - 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    LambdaEtaGrid, CapacityGrid,
    ::testing::Values(DepPoint{1e-5, 10}, DepPoint{5e-5, 10},
                      DepPoint{1e-4, 10}, DepPoint{1e-5, 12},
                      DepPoint{5e-5, 12}, DepPoint{1e-4, 12},
                      DepPoint{5e-5, 8}),
    [](const auto& info) {
      return "lam" + std::to_string(static_cast<int>(
                         info.param.lambda * 1e6)) +
             "_eta" + std::to_string(info.param.eta);
    });

}  // namespace
}  // namespace oaq
