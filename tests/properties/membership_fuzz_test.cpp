// Property suite: membership convergence under randomized failure
// schedules (fuzz-style, parameterized over seeds).
#include <gtest/gtest.h>

#include <set>

#include "net/membership.hpp"

namespace oaq {
namespace {

class MembershipFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembershipFuzz, ConvergesAfterRandomFailureSchedule) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  Simulator sim;
  CrosslinkNetwork::Options links;
  links.min_delay = Duration::seconds(0.5);
  links.max_delay = Duration::seconds(2.0);
  CrosslinkNetwork net(sim, links, rng.fork(1));

  const int n = 3 + static_cast<int>(rng.uniform_index(10));  // 3..12
  std::vector<SatelliteId> ring;
  for (int s = 0; s < n; ++s) ring.push_back({0, s});
  MembershipConfig config;
  config.heartbeat_period = Duration::seconds(30);
  config.suspicion_timeout = Duration::seconds(120);
  MembershipGroup group(sim, net, ring, config);

  // Kill a random subset (leaving at least 2 alive), at random times
  // spread over the first 20 minutes.
  std::set<SatelliteId> live(ring.begin(), ring.end());
  const int kills =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n - 1)));
  for (int i = 0; i < kills && static_cast<int>(live.size()) > 2; ++i) {
    const int victim = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    const SatelliteId id{0, victim};
    if (!live.contains(id)) continue;
    live.erase(id);
    const Duration at = rng.uniform(Duration::minutes(1),
                                    Duration::minutes(20));
    sim.schedule_at(TimePoint::at(at),
                    [&net, id] { net.fail_silent(Address::sat(id)); });
  }

  // Converge within: last kill (20 min) + suspicion + gossip slack.
  sim.run_until(TimePoint::at(Duration::minutes(20) +
                              Duration::seconds(4 * 120 + 60)));
  EXPECT_TRUE(group.converged(live))
      << "seed " << seed << " n=" << n << " kills=" << kills;
  // Ring queries stay within the live set.
  for (const auto id : live) {
    EXPECT_TRUE(live.contains(group.node(id).live_successor()));
    EXPECT_TRUE(live.contains(group.node(id).live_predecessor()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace oaq
