// Property suite: invariants of the closed-form QoS model over a dense
// parameter grid (k × τ × µ × ν), via parameterized gtest.
#include <gtest/gtest.h>

#include "analytic/measure.hpp"
#include "analytic/qos_model.hpp"

namespace oaq {
namespace {

struct GridPoint {
  int k;
  double tau_min;
  double mu_per_min;
  double nu_per_min;
};

class QosModelGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  [[nodiscard]] QosModel model() const {
    const auto p = GetParam();
    QosModelParams params;
    params.tau = Duration::minutes(p.tau_min);
    params.mu = Rate::per_minute(p.mu_per_min);
    params.nu = Rate::per_minute(p.nu_per_min);
    return QosModel(PlaneGeometry{}, params);
  }
};

TEST_P(QosModelGrid, PmfIsValidForBothSchemes) {
  const auto m = model();
  const int k = GetParam().k;
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    const auto pmf = m.conditional_pmf(k, s);
    double sum = 0.0;
    for (double v : pmf) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(QosModelGrid, OaqStochasticallyDominatesBaq) {
  const auto m = model();
  const int k = GetParam().k;
  for (int y = 1; y <= 3; ++y) {
    EXPECT_GE(m.conditional_tail(k, y, Scheme::kOaq),
              m.conditional_tail(k, y, Scheme::kBaq) - 1e-12)
        << "y=" << y;
  }
}

TEST_P(QosModelGrid, DetectionFloorIsSchemeIndependent) {
  const auto m = model();
  const int k = GetParam().k;
  EXPECT_NEAR(m.conditional_tail(k, 1, Scheme::kOaq),
              m.conditional_tail(k, 1, Scheme::kBaq), 1e-12);
}

TEST_P(QosModelGrid, TableOneSupportRespected) {
  const auto m = model();
  const int k = GetParam().k;
  const auto oaq = m.conditional_pmf(k, Scheme::kOaq);
  if (m.geometry().overlapping(k)) {
    EXPECT_EQ(oaq[2], 0.0);  // no sequential dual when overlapping
    EXPECT_EQ(oaq[0], 0.0);  // nothing escapes a covered centerline
  } else {
    EXPECT_EQ(oaq[3], 0.0);  // no simultaneous dual when underlapping
  }
  EXPECT_EQ(m.conditional(k, 2, Scheme::kBaq), 0.0);  // BAQ: level 2 N/A
}

TEST_P(QosModelGrid, LongerDeadlineNeverHurts) {
  const auto p = GetParam();
  QosModelParams a, b;
  a.tau = Duration::minutes(p.tau_min);
  b.tau = Duration::minutes(p.tau_min + 0.7);
  a.mu = b.mu = Rate::per_minute(p.mu_per_min);
  a.nu = b.nu = Rate::per_minute(p.nu_per_min);
  const QosModel ma(PlaneGeometry{}, a), mb(PlaneGeometry{}, b);
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    for (int y = 1; y <= 3; ++y) {
      EXPECT_GE(mb.conditional_tail(p.k, y, s),
                ma.conditional_tail(p.k, y, s) - 1e-12)
          << "y=" << y;
    }
  }
}

TEST_P(QosModelGrid, ShorterSignalsNeverHelp) {
  const auto p = GetParam();
  QosModelParams fast, slow;
  fast.tau = slow.tau = Duration::minutes(p.tau_min);
  fast.mu = Rate::per_minute(p.mu_per_min * 2.0);
  slow.mu = Rate::per_minute(p.mu_per_min);
  fast.nu = slow.nu = Rate::per_minute(p.nu_per_min);
  const QosModel mf(PlaneGeometry{}, fast), ms(PlaneGeometry{}, slow);
  for (int y = 1; y <= 3; ++y) {
    EXPECT_GE(ms.conditional_tail(p.k, y, Scheme::kOaq),
              mf.conditional_tail(p.k, y, Scheme::kOaq) - 1e-12)
        << "y=" << y;
  }
}

TEST_P(QosModelGrid, MoreSatellitesNeverHurtHighEndQos) {
  // P(Y >= 2 | k) is nondecreasing in k for OAQ (more density = more
  // opportunity) across the grid.
  const auto m = model();
  const int k = GetParam().k;
  EXPECT_GE(m.conditional_tail(k + 1, 2, Scheme::kOaq),
            m.conditional_tail(k, 2, Scheme::kOaq) - 1e-9);
}

std::vector<GridPoint> make_grid() {
  std::vector<GridPoint> grid;
  for (int k : {7, 9, 10, 11, 12, 14}) {
    for (double tau : {1.0, 3.0, 5.0, 8.0}) {
      for (double mu : {0.1, 0.5}) {
        for (double nu : {5.0, 30.0}) {
          grid.push_back({k, tau, mu, nu});
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, QosModelGrid,
                         ::testing::ValuesIn(make_grid()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "k" + std::to_string(p.k) + "_tau" +
                                  std::to_string(static_cast<int>(
                                      p.tau_min * 10)) +
                                  "_mu" + std::to_string(static_cast<int>(
                                              p.mu_per_min * 10)) +
                                  "_nu" + std::to_string(static_cast<int>(
                                              p.nu_per_min));
                         });

}  // namespace
}  // namespace oaq
