#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace oaq {
namespace {

TEST(Simulator, StartsAtOriginWithEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = TimePoint::at(Duration::minutes(5));
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_after(Duration::minutes(7.5),
                     [&] { seen = sim.now().since_origin().to_minutes(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::minutes(1), chain);
  };
  sim.schedule_after(Duration::minutes(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(Duration::minutes(1), [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processed_count(), 0u);
}

TEST(Simulator, CancelOneOfManyLeavesOthers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  const auto id = sim.schedule_after(Duration::minutes(2),
                                     [&] { order.push_back(2); });
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(5), [&] { order.push_back(5); });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::minutes(3), [&] { fired = true; });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastSchedulingAndBackwardRun) {
  Simulator sim;
  sim.schedule_after(Duration::minutes(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::at(Duration::minutes(1)), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(-1), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.run_until(TimePoint::at(Duration::minutes(1))),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(1), nullptr),
               PreconditionError);
}

TEST(Simulator, MaxEventsBoundsRunawayChains) {
  Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    sim.schedule_after(Duration::minutes(1), forever);
  };
  sim.schedule_after(Duration::minutes(1), forever);
  sim.run(100);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, CancelInsideEventCallback) {
  Simulator sim;
  bool second_fired = false;
  EventId second{};
  second = sim.schedule_after(Duration::minutes(2),
                              [&] { second_fired = true; });
  sim.schedule_after(Duration::minutes(1), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

// --- Semantics locked before the pooled-kernel rewrite. These pin the
// exact contract (cancel visibility, FIFO ties, clock advance, gauge
// behaviour) that the old and new kernels must share. ---

TEST(Simulator, CancelDuringCallbackOfSimultaneousEvent) {
  // Two events at the SAME timestamp: the first one's callback cancels the
  // second, which must then not fire even though it is already at the top
  // of the queue region being drained.
  Simulator sim;
  bool second_fired = false;
  const auto t = TimePoint::at(Duration::minutes(1));
  EventId second{};
  sim.schedule_at(t, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(t, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.processed_count(), 1u);
}

TEST(Simulator, CancelOfAlreadyFiredIdIsNoOp) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_after(Duration::minutes(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));
  // A later event must be unaffected by the stale cancel.
  sim.schedule_after(Duration::minutes(1), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, OwnIdNotPendingDuringCallback) {
  // While an event's callback runs, the event has left the pending set:
  // cancelling or querying the own id reports "already fired".
  Simulator sim;
  EventId self{};
  bool checked = false;
  self = sim.schedule_after(Duration::minutes(1), [&] {
    EXPECT_FALSE(sim.is_pending(self));
    EXPECT_FALSE(sim.cancel(self));
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(Simulator, EqualTimestampFifoSurvivesInterleavedCancels) {
  // FIFO among simultaneous events must hold even when some of the
  // interleaved events are cancelled before the timestamp drains.
  Simulator sim;
  const auto t = TimePoint::at(Duration::minutes(2));
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(sim.schedule_at(t, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 3) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 7, 8, 10, 11}));
}

TEST(Simulator, ScheduleAtCurrentTimeDuringCallbackFiresAfterQueue) {
  // An event scheduled at now() from inside a callback runs after the
  // events already queued at that timestamp (sequence order).
  Simulator sim;
  const auto t = TimePoint::at(Duration::minutes(1));
  std::vector<int> order;
  sim.schedule_at(t, [&] {
    order.push_back(0);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, RunUntilAdvancesClockPastCancelledTail) {
  // run_until must advance the clock to the boundary even when every
  // remaining event beneath it was cancelled.
  Simulator sim;
  const auto id = sim.schedule_after(Duration::minutes(2), [] {});
  sim.cancel(id);
  sim.run_until(TimePoint::at(Duration::minutes(4)));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 4.0);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.processed_count(), 0u);
  // And scheduling before the advanced clock must now throw.
  EXPECT_THROW(sim.schedule_at(TimePoint::at(Duration::minutes(3)), [] {}),
               PreconditionError);
}

TEST(Simulator, RunUntilOnEmptyQueueStillAdvancesClock) {
  Simulator sim;
  sim.run_until(TimePoint::at(Duration::minutes(9)));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 9.0);
}

TEST(Simulator, PeakPendingTracksHighWaterMonotonically) {
  Simulator sim;
  EXPECT_EQ(sim.peak_pending_count(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_after(Duration::minutes(i + 1), [] {}));
    EXPECT_EQ(sim.peak_pending_count(), static_cast<std::size_t>(i + 1));
  }
  // Cancelling shrinks the pending set but never the high-water mark.
  sim.cancel(ids[0]);
  sim.cancel(ids[1]);
  EXPECT_EQ(sim.pending_count(), 6u);
  EXPECT_EQ(sim.peak_pending_count(), 8u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.peak_pending_count(), 8u);
  // Refilling below the mark leaves it unchanged; exceeding it moves it.
  for (int i = 0; i < 9; ++i) {
    sim.schedule_after(Duration::minutes(i + 1), [] {});
  }
  EXPECT_EQ(sim.peak_pending_count(), 9u);
}

TEST(Simulator, LongLivedSoleRunStaysCompact) {
  // A simulator that alternates small out-of-order bursts with full drains
  // keeps its sole run alive forever through the direct-append fast path —
  // the run is never exhausted when settle() scans it, so only the fold
  // path can reclaim popped entries. Without dead-prefix compaction the
  // run buffer grew by every burst for the lifetime of the simulator;
  // with it, the largest run ever materialized stays bounded by the live
  // set, not the round count.
  Simulator sim;
  int fired = 0;
  for (int round = 0; round < 4000; ++round) {
    // Descending offsets force the later events below the appended head,
    // so every burst exercises the spill-fold path on the live sole run.
    sim.schedule_after(Duration::minutes(8.0), [&] { ++fired; });
    sim.schedule_after(Duration::minutes(4.0), [&] { ++fired; });
    sim.schedule_after(Duration::minutes(2.0), [&] { ++fired; });
    sim.schedule_after(Duration::minutes(1.0), [&] { ++fired; });
    sim.run();
  }
  EXPECT_EQ(fired, 4 * 4000);
  EXPECT_LT(sim.queue_stats().max_run_length, 512u);
}

TEST(Simulator, IdsStayDistinctAcrossHeavyChurn) {
  // Schedule/cancel/fire churn must never produce an id that aliases a
  // live event (the generation-tag contract of the pooled kernel).
  Simulator sim;
  std::vector<EventId> live;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) {
      live.push_back(
          sim.schedule_after(Duration::seconds(1 + (round + i) % 7),
                             [&] { ++fired; }));
    }
    // Cancel half; every cancel must report success exactly once.
    for (std::size_t i = 0; i < live.size(); i += 2) {
      EXPECT_TRUE(sim.cancel(live[i]));
      EXPECT_FALSE(sim.cancel(live[i]));
    }
    sim.run();
    for (const auto id : live) EXPECT_FALSE(sim.is_pending(id));
    live.clear();
  }
  EXPECT_EQ(fired, 200 * 4);
}

// --- reset() equivalence property (ISSUE 9). The batch engine leans on
// reset() between lanes, so a reused kernel must be indistinguishable
// from a fresh one — same event order AND same queue-maintenance
// counters, since QueueStats feeds the deterministic metrics export. ---

/// One randomized episode driven against a simulator: schedules bursts of
/// events (some at equal timestamps, some chained from callbacks), cancels
/// a random subset, fires part of the timeline with run_until, then drains.
/// Returns the fired-event log as "seq@time" strings.
std::vector<std::string> random_episode(Simulator& sim, Rng rng) {
  std::vector<std::string> fired;
  std::vector<EventId> ids;
  const int bursts = 3 + static_cast<int>(rng.uniform_index(3));
  int label = 0;
  for (int burst = 0; burst < bursts; ++burst) {
    const int events = 4 + static_cast<int>(rng.uniform_index(12));
    const double base =
        sim.now().since_origin().to_seconds() + rng.uniform(0.0, 30.0);
    for (int i = 0; i < events; ++i) {
      // Half the events share the burst timestamp to exercise FIFO ties.
      const double at = rng.bernoulli(0.5) ? base : base + rng.uniform(0.0, 60.0);
      const int id = label++;
      Rng chain_rng = rng.fork(static_cast<std::uint64_t>(id));
      ids.push_back(sim.schedule_at(
          TimePoint::at(Duration::seconds(at)), [&sim, &fired, id, chain_rng] {
            fired.push_back(std::to_string(id) + "@" +
                            std::to_string(sim.now().since_origin().to_seconds()));
            Rng r = chain_rng;
            if (r.bernoulli(0.4)) {
              const int child = -id - 1;  // distinct label space for chains
              sim.schedule_after(Duration::seconds(r.uniform(0.0, 10.0)),
                                 [&sim, &fired, child] {
                                   fired.push_back(
                                       std::to_string(child) + "@" +
                                       std::to_string(
                                           sim.now().since_origin().to_seconds()));
                                 });
            }
          }));
    }
    // Cancel a random subset (stale cancels of fired ids are no-ops).
    for (const auto id : ids) {
      if (rng.bernoulli(0.25)) sim.cancel(id);
    }
    // Fire part of the timeline before the next scheduling burst so spills
    // land both on an empty queue and mid-drain.
    sim.run_until(TimePoint::at(
        Duration::seconds(sim.now().since_origin().to_seconds() +
                          rng.uniform(0.0, 45.0))));
  }
  sim.run();
  return fired;
}

TEST(Simulator, ResetEquivalentToFreshAcrossRandomizedCycles) {
  // One long-lived simulator is reset between randomized episodes; each
  // episode must replay what a fresh simulator produces — same fired-event
  // log, same clock, same QueueStats (reset zeroes the counters, so a
  // reused kernel's telemetry is a pure function of the episode, not of
  // how many episodes came before — the metrics-determinism contract).
  Simulator reused;
  for (int cycle = 0; cycle < 25; ++cycle) {
    const Rng episode_rng = Rng(991).fork(static_cast<std::uint64_t>(cycle));
    Simulator fresh;
    const auto fresh_fired = random_episode(fresh, episode_rng);
    const auto reused_fired = random_episode(reused, episode_rng);
    EXPECT_EQ(reused_fired, fresh_fired) << "cycle " << cycle;
    EXPECT_EQ(reused.now().since_origin().to_seconds(),
              fresh.now().since_origin().to_seconds())
        << "cycle " << cycle;

    const QueueStats& fs = fresh.queue_stats();
    const QueueStats& rs = reused.queue_stats();
    EXPECT_EQ(rs.runs_created, fs.runs_created) << "cycle " << cycle;
    EXPECT_EQ(rs.run_merges, fs.run_merges) << "cycle " << cycle;
    EXPECT_EQ(rs.tombstones_purged, fs.tombstones_purged) << "cycle " << cycle;
    EXPECT_EQ(rs.spill_folds, fs.spill_folds) << "cycle " << cycle;
    EXPECT_EQ(rs.max_run_length, fs.max_run_length) << "cycle " << cycle;

    const SimAccounting fa = fresh.accounting();
    const SimAccounting ra = reused.accounting();
    EXPECT_EQ(ra.scheduled, fa.scheduled) << "cycle " << cycle;
    EXPECT_EQ(ra.processed, fa.processed) << "cycle " << cycle;
    EXPECT_EQ(ra.cancelled, fa.cancelled) << "cycle " << cycle;
    EXPECT_EQ(ra.pending, 0u) << "cycle " << cycle;
    EXPECT_EQ(reused.peak_pending_count(), fresh.peak_pending_count())
        << "cycle " << cycle;

    reused.reset();
  }
}

// --- Episode tags (ISSUE 9): one kernel multiplexing independent lanes. ---

TEST(Simulator, EpisodeTagOrdersEqualTimesByTagThenSequence) {
  // At equal timestamps the packed key orders by tag first, then by
  // scheduling order within the tag — even when the lower tag scheduled
  // its events later in wall order.
  Simulator sim;
  const auto t = TimePoint::at(Duration::minutes(1));
  std::vector<int> order;
  sim.set_episode_tag(3);
  sim.schedule_at(t, [&] { order.push_back(30); });
  sim.schedule_at(t, [&] { order.push_back(31); });
  sim.set_episode_tag(1);
  sim.schedule_at(t, [&] { order.push_back(10); });
  sim.set_episode_tag(0);
  sim.schedule_at(t, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 30, 31}));
}

TEST(Simulator, CallbacksInheritTheFiringEventsTag) {
  Simulator sim;
  std::vector<std::uint16_t> seen;
  sim.set_episode_tag(5);
  sim.schedule_after(Duration::minutes(1), [&] {
    seen.push_back(sim.episode_tag());
    sim.schedule_after(Duration::minutes(1),
                       [&] { seen.push_back(sim.episode_tag()); });
  });
  sim.set_episode_tag(2);
  sim.schedule_after(Duration::minutes(1),
                     [&] { seen.push_back(sim.episode_tag()); });
  sim.run();
  // Tag 2 fires before tag 5 at the shared timestamp; the chained event
  // stays in lane 5 without any explicit set_episode_tag call.
  EXPECT_EQ(seen, (std::vector<std::uint16_t>{2, 5, 5}));
}

TEST(Simulator, PerLaneAccountingMatchesDedicatedSimulators) {
  // Two interleaved lanes must report the same per-lane balances and
  // virtual clocks as two dedicated simulators running the same episodes.
  const auto drive = [](Simulator& sim, std::uint16_t tag, int events,
                        double spacing_min) {
    sim.set_episode_tag(tag);
    std::vector<EventId> ids;
    for (int i = 0; i < events; ++i) {
      ids.push_back(
          sim.schedule_after(Duration::minutes((i + 1) * spacing_min), [] {}));
    }
    sim.cancel(ids.front());
    return ids;
  };
  Simulator merged;
  merged.reserve_episode_tags(3);
  drive(merged, 1, 6, 1.0);
  drive(merged, 2, 9, 0.5);
  merged.run();

  Simulator solo1;
  drive(solo1, 0, 6, 1.0);
  solo1.run();
  Simulator solo2;
  drive(solo2, 0, 9, 0.5);
  solo2.run();

  const SimAccounting a1 = merged.episode_accounting(1);
  const SimAccounting s1 = solo1.accounting();
  EXPECT_EQ(a1.scheduled, s1.scheduled);
  EXPECT_EQ(a1.processed, s1.processed);
  EXPECT_EQ(a1.cancelled, s1.cancelled);
  EXPECT_EQ(a1.pending, 0u);
  EXPECT_EQ(merged.episode_peak_pending(1), solo1.peak_pending_count());
  EXPECT_EQ(merged.episode_now(1).since_origin().to_minutes(),
            solo1.now().since_origin().to_minutes());

  const SimAccounting a2 = merged.episode_accounting(2);
  const SimAccounting s2 = solo2.accounting();
  EXPECT_EQ(a2.scheduled, s2.scheduled);
  EXPECT_EQ(a2.processed, s2.processed);
  EXPECT_EQ(a2.cancelled, s2.cancelled);
  EXPECT_EQ(merged.episode_peak_pending(2), solo2.peak_pending_count());
  EXPECT_EQ(merged.episode_now(2).since_origin().to_minutes(),
            solo2.now().since_origin().to_minutes());

  // The merged totals partition into the lanes (lane 0 idle here).
  const SimAccounting total = merged.accounting();
  EXPECT_EQ(total.scheduled, a1.scheduled + a2.scheduled);
  EXPECT_EQ(total.processed, a1.processed + a2.processed);
  EXPECT_EQ(total.cancelled, a1.cancelled + a2.cancelled);
}

TEST(Simulator, CancelNamespacesStayPerEpisode) {
  // Ids minted in one lane must not alias or disturb another lane's
  // events, and cancelling from a different current tag still works (ids
  // are global; tags only affect ordering and accounting).
  Simulator sim;
  sim.set_episode_tag(1);
  bool fired1 = false;
  const auto id1 = sim.schedule_after(Duration::minutes(1),
                                      [&] { fired1 = true; });
  sim.set_episode_tag(2);
  bool fired2 = false;
  (void)sim.schedule_after(Duration::minutes(1), [&] { fired2 = true; });
  EXPECT_TRUE(sim.cancel(id1));
  sim.run();
  EXPECT_FALSE(fired1);
  EXPECT_TRUE(fired2);
  EXPECT_EQ(sim.episode_accounting(1).cancelled, 1u);
  EXPECT_EQ(sim.episode_accounting(2).processed, 1u);
}

TEST(Simulator, TagZeroSequencesMatchUntaggedKernel) {
  // The default lane produces bit-identical sequence words to a kernel
  // that never called set_episode_tag: identical event order on ties.
  Simulator tagged;
  tagged.reserve_episode_tags(4);
  tagged.set_episode_tag(0);
  Simulator plain;
  std::vector<int> order_tagged;
  std::vector<int> order_plain;
  const auto t = TimePoint::at(Duration::minutes(2));
  for (int i = 0; i < 6; ++i) {
    tagged.schedule_at(t, [&order_tagged, i] { order_tagged.push_back(i); });
    plain.schedule_at(t, [&order_plain, i] { order_plain.push_back(i); });
  }
  tagged.run();
  plain.run();
  EXPECT_EQ(order_tagged, order_plain);
}

}  // namespace
}  // namespace oaq
