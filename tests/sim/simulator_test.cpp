#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oaq {
namespace {

TEST(Simulator, StartsAtOriginWithEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = TimePoint::at(Duration::minutes(5));
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_after(Duration::minutes(7.5),
                     [&] { seen = sim.now().since_origin().to_minutes(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::minutes(1), chain);
  };
  sim.schedule_after(Duration::minutes(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(Duration::minutes(1), [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processed_count(), 0u);
}

TEST(Simulator, CancelOneOfManyLeavesOthers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  const auto id = sim.schedule_after(Duration::minutes(2),
                                     [&] { order.push_back(2); });
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(5), [&] { order.push_back(5); });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::minutes(3), [&] { fired = true; });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastSchedulingAndBackwardRun) {
  Simulator sim;
  sim.schedule_after(Duration::minutes(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::at(Duration::minutes(1)), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(-1), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.run_until(TimePoint::at(Duration::minutes(1))),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(1), nullptr),
               PreconditionError);
}

TEST(Simulator, MaxEventsBoundsRunawayChains) {
  Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    sim.schedule_after(Duration::minutes(1), forever);
  };
  sim.schedule_after(Duration::minutes(1), forever);
  sim.run(100);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, CancelInsideEventCallback) {
  Simulator sim;
  bool second_fired = false;
  EventId second{};
  second = sim.schedule_after(Duration::minutes(2),
                              [&] { second_fired = true; });
  sim.schedule_after(Duration::minutes(1), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

// --- Semantics locked before the pooled-kernel rewrite. These pin the
// exact contract (cancel visibility, FIFO ties, clock advance, gauge
// behaviour) that the old and new kernels must share. ---

TEST(Simulator, CancelDuringCallbackOfSimultaneousEvent) {
  // Two events at the SAME timestamp: the first one's callback cancels the
  // second, which must then not fire even though it is already at the top
  // of the queue region being drained.
  Simulator sim;
  bool second_fired = false;
  const auto t = TimePoint::at(Duration::minutes(1));
  EventId second{};
  sim.schedule_at(t, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(t, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.processed_count(), 1u);
}

TEST(Simulator, CancelOfAlreadyFiredIdIsNoOp) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_after(Duration::minutes(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));
  // A later event must be unaffected by the stale cancel.
  sim.schedule_after(Duration::minutes(1), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, OwnIdNotPendingDuringCallback) {
  // While an event's callback runs, the event has left the pending set:
  // cancelling or querying the own id reports "already fired".
  Simulator sim;
  EventId self{};
  bool checked = false;
  self = sim.schedule_after(Duration::minutes(1), [&] {
    EXPECT_FALSE(sim.is_pending(self));
    EXPECT_FALSE(sim.cancel(self));
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(Simulator, EqualTimestampFifoSurvivesInterleavedCancels) {
  // FIFO among simultaneous events must hold even when some of the
  // interleaved events are cancelled before the timestamp drains.
  Simulator sim;
  const auto t = TimePoint::at(Duration::minutes(2));
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(sim.schedule_at(t, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 3) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 7, 8, 10, 11}));
}

TEST(Simulator, ScheduleAtCurrentTimeDuringCallbackFiresAfterQueue) {
  // An event scheduled at now() from inside a callback runs after the
  // events already queued at that timestamp (sequence order).
  Simulator sim;
  const auto t = TimePoint::at(Duration::minutes(1));
  std::vector<int> order;
  sim.schedule_at(t, [&] {
    order.push_back(0);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, RunUntilAdvancesClockPastCancelledTail) {
  // run_until must advance the clock to the boundary even when every
  // remaining event beneath it was cancelled.
  Simulator sim;
  const auto id = sim.schedule_after(Duration::minutes(2), [] {});
  sim.cancel(id);
  sim.run_until(TimePoint::at(Duration::minutes(4)));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 4.0);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.processed_count(), 0u);
  // And scheduling before the advanced clock must now throw.
  EXPECT_THROW(sim.schedule_at(TimePoint::at(Duration::minutes(3)), [] {}),
               PreconditionError);
}

TEST(Simulator, RunUntilOnEmptyQueueStillAdvancesClock) {
  Simulator sim;
  sim.run_until(TimePoint::at(Duration::minutes(9)));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 9.0);
}

TEST(Simulator, PeakPendingTracksHighWaterMonotonically) {
  Simulator sim;
  EXPECT_EQ(sim.peak_pending_count(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_after(Duration::minutes(i + 1), [] {}));
    EXPECT_EQ(sim.peak_pending_count(), static_cast<std::size_t>(i + 1));
  }
  // Cancelling shrinks the pending set but never the high-water mark.
  sim.cancel(ids[0]);
  sim.cancel(ids[1]);
  EXPECT_EQ(sim.pending_count(), 6u);
  EXPECT_EQ(sim.peak_pending_count(), 8u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.peak_pending_count(), 8u);
  // Refilling below the mark leaves it unchanged; exceeding it moves it.
  for (int i = 0; i < 9; ++i) {
    sim.schedule_after(Duration::minutes(i + 1), [] {});
  }
  EXPECT_EQ(sim.peak_pending_count(), 9u);
}

TEST(Simulator, IdsStayDistinctAcrossHeavyChurn) {
  // Schedule/cancel/fire churn must never produce an id that aliases a
  // live event (the generation-tag contract of the pooled kernel).
  Simulator sim;
  std::vector<EventId> live;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) {
      live.push_back(
          sim.schedule_after(Duration::seconds(1 + (round + i) % 7),
                             [&] { ++fired; }));
    }
    // Cancel half; every cancel must report success exactly once.
    for (std::size_t i = 0; i < live.size(); i += 2) {
      EXPECT_TRUE(sim.cancel(live[i]));
      EXPECT_FALSE(sim.cancel(live[i]));
    }
    sim.run();
    for (const auto id : live) EXPECT_FALSE(sim.is_pending(id));
    live.clear();
  }
  EXPECT_EQ(fired, 200 * 4);
}

}  // namespace
}  // namespace oaq
