#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oaq {
namespace {

TEST(Simulator, StartsAtOriginWithEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = TimePoint::at(Duration::minutes(5));
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_after(Duration::minutes(7.5),
                     [&] { seen = sim.now().since_origin().to_minutes(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::minutes(1), chain);
  };
  sim.schedule_after(Duration::minutes(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(Duration::minutes(1), [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processed_count(), 0u);
}

TEST(Simulator, CancelOneOfManyLeavesOthers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  const auto id = sim.schedule_after(Duration::minutes(2),
                                     [&] { order.push_back(2); });
  sim.schedule_after(Duration::minutes(3), [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::minutes(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::minutes(5), [&] { order.push_back(5); });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now().since_origin().to_minutes(), 3.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::minutes(3), [&] { fired = true; });
  sim.run_until(TimePoint::at(Duration::minutes(3)));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastSchedulingAndBackwardRun) {
  Simulator sim;
  sim.schedule_after(Duration::minutes(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::at(Duration::minutes(1)), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(-1), [] {}),
               PreconditionError);
  EXPECT_THROW(sim.run_until(TimePoint::at(Duration::minutes(1))),
               PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::minutes(1), nullptr),
               PreconditionError);
}

TEST(Simulator, MaxEventsBoundsRunawayChains) {
  Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    sim.schedule_after(Duration::minutes(1), forever);
  };
  sim.schedule_after(Duration::minutes(1), forever);
  sim.run(100);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, CancelInsideEventCallback) {
  Simulator sim;
  bool second_fired = false;
  EventId second{};
  second = sim.schedule_after(Duration::minutes(2),
                              [&] { second_fired = true; });
  sim.schedule_after(Duration::minutes(1), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

}  // namespace
}  // namespace oaq
