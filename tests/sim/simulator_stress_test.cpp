// Stress and robustness tests for the DES kernel and RNG — the substrate
// every Monte-Carlo result in this repo rests on.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace oaq {
namespace {

TEST(SimulatorStress, MillionEventsStayOrdered) {
  Simulator sim;
  Rng rng(1);
  const int n = 1000000;
  // Schedule a million events at random times; verify global time order.
  double last = -1.0;
  int fired = 0;
  for (int i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, 1e6);
    sim.schedule_at(TimePoint::at(Duration::seconds(at)), [&, at] {
      EXPECT_GE(at, last);
      last = at;
      ++fired;
    });
  }
  sim.run();
  EXPECT_EQ(fired, n);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorStress, MassCancellationLeavesSurvivors) {
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 20000; ++i) {
    ids.push_back(sim.schedule_after(Duration::seconds(i + 1),
                                     [&] { ++fired; }));
  }
  // Cancel every even event.
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 10000);
}

TEST(SimulatorStress, CascadingChainsInterleaveCorrectly) {
  // Two self-rescheduling chains with co-prime periods: the total event
  // count over an LCM window is exact.
  Simulator sim;
  int a = 0, b = 0;
  std::function<void()> chain_a = [&] {
    ++a;
    if (sim.now().since_origin() < Duration::seconds(1000))
      sim.schedule_after(Duration::seconds(3), chain_a);
  };
  std::function<void()> chain_b = [&] {
    ++b;
    if (sim.now().since_origin() < Duration::seconds(1000))
      sim.schedule_after(Duration::seconds(7), chain_b);
  };
  sim.schedule_after(Duration::seconds(3), chain_a);
  sim.schedule_after(Duration::seconds(7), chain_b);
  sim.run();
  EXPECT_EQ(a, 334);  // 3, 6, ..., 1002
  EXPECT_EQ(b, 143);  // 7, 14, ..., 1001
}

TEST(RngStatistics, UniformIndexChiSquare) {
  // 16 bins, 160k draws: chi-square with 15 dof; 99.9th percentile ≈ 37.7.
  Rng rng(12345);
  const int bins = 16, n = 160000;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(static_cast<std::uint64_t>(bins))];
  }
  const double expected = static_cast<double>(n) / bins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(RngStatistics, ExponentialKolmogorovSmirnov) {
  // KS statistic for Exp(1) over 10k samples; 1% critical ≈ 1.63/sqrt(n).
  Rng rng(777);
  const int n = 10000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.exponential(1.0);
  std::sort(xs.begin(), xs.end());
  double d = 0.0;
  for (int i = 0; i < n; ++i) {
    const double cdf = 1.0 - std::exp(-xs[static_cast<std::size_t>(i)]);
    d = std::max(d, std::abs(cdf - (i + 1.0) / n));
    d = std::max(d, std::abs(cdf - static_cast<double>(i) / n));
  }
  EXPECT_LT(d, 1.63 / std::sqrt(static_cast<double>(n)));
}

TEST(RngStatistics, ForkedStreamsUncorrelated) {
  Rng parent(9);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  // Sample correlation of 20k uniform pairs should be ~0 (< 0.02).
  const int n = 20000;
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  EXPECT_LT(std::abs(cov / std::sqrt(var_a * var_b)), 0.02);
}

}  // namespace
}  // namespace oaq
