#include "oaq/montecarlo.hpp"

#include <gtest/gtest.h>

#include "analytic/qos_model.hpp"
#include "common/error.hpp"

namespace oaq {
namespace {

/// Analytic-assumption protocol config: δ = Tg = 0, uncapped Exp(ν).
QosSimulationConfig validation_config(int k, bool oaq, double tau = 5.0,
                                      double mu = 0.5, double nu = 30.0) {
  QosSimulationConfig c;
  c.k = k;
  c.opportunity_adaptive = oaq;
  c.episodes = 6000;
  c.seed = 1234;
  c.mu = Rate::per_minute(mu);
  c.protocol.tau = Duration::minutes(tau);
  c.protocol.delta = Duration::zero();
  c.protocol.tg = Duration::zero();
  c.protocol.nu = Rate::per_minute(nu);
  return c;
}

/// The E10 validation: the protocol simulation reproduces the closed-form
/// P(Y = y | k) under the analytic model's assumptions.
class SimVsAnalytic : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SimVsAnalytic, ConditionalPmfMatches) {
  const auto [k, oaq] = GetParam();
  const auto cfg = validation_config(k, oaq);
  const auto sim = simulate_qos(cfg);

  QosModelParams mp;
  mp.tau = cfg.protocol.tau;
  mp.mu = cfg.mu;
  mp.nu = cfg.protocol.nu;
  const QosModel model(cfg.geometry, mp);
  const auto expected =
      model.conditional_pmf(k, oaq ? Scheme::kOaq : Scheme::kBaq);

  for (int y = 0; y <= 3; ++y) {
    EXPECT_NEAR(sim.level_pmf.probability(y),
                expected[static_cast<std::size_t>(y)], 0.025)
        << "k=" << k << " oaq=" << oaq << " y=" << y;
  }
  EXPECT_EQ(sim.duplicates, 0);
  EXPECT_EQ(sim.unresolved, 0);
  EXPECT_EQ(sim.untimely, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossCapacitiesAndSchemes, SimVsAnalytic,
    ::testing::Combine(::testing::Values(7, 9, 10, 11, 12, 14),
                       ::testing::Bool()),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_oaq" : "_baq");
    });

TEST(MonteCarlo, ChainLengthNeverExceedsEquationTwoBound) {
  PlaneGeometry g;
  for (int k : {7, 9, 10}) {
    for (double tau : {3.0, 5.0, 12.0, 25.0}) {
      auto cfg = validation_config(k, true, tau, 0.1);
      cfg.episodes = 800;
      const auto sim = simulate_qos(cfg);
      const int bound = g.max_chain(k, Duration::minutes(tau));
      EXPECT_LE(sim.max_chain_length, std::max(bound, 1))
          << "k=" << k << " tau=" << tau;
    }
  }
}

TEST(MonteCarlo, OaqTailDominatesBaqTail) {
  for (int k : {9, 12}) {
    const auto oaq = simulate_qos(validation_config(k, true));
    const auto baq = simulate_qos(validation_config(k, false));
    for (auto level : {QosLevel::kSingle, QosLevel::kSequentialDual,
                       QosLevel::kSimultaneousDual}) {
      EXPECT_GE(oaq.tail(level), baq.tail(level) - 0.01)
          << "k=" << k << " level=" << to_int(level);
    }
  }
}

TEST(MonteCarlo, LongerSignalsRaiseOaqLevel3) {
  const auto fast = simulate_qos(validation_config(12, true, 5.0, 0.5));
  const auto slow = simulate_qos(validation_config(12, true, 5.0, 0.2));
  EXPECT_GT(slow.probability(QosLevel::kSimultaneousDual),
            fast.probability(QosLevel::kSimultaneousDual));
}

TEST(MonteCarlo, RealisticDelaysKeepProtocolSafe) {
  // With nonzero δ and Tg and a bounded computation, the protocol's
  // guarantees hold outright: no duplicates, no unresolved members, and
  // every alert timely.
  QosSimulationConfig c;
  c.k = 9;
  c.opportunity_adaptive = true;
  c.episodes = 4000;
  c.seed = 77;
  c.mu = Rate::per_minute(0.3);
  c.protocol.tau = Duration::minutes(5);
  c.protocol.delta = Duration::seconds(12);
  c.protocol.tg = Duration::seconds(6);
  c.protocol.nu = Rate::per_minute(30);
  c.protocol.computation_cap = Duration::seconds(6);  // bounded by Tg
  const auto sim = simulate_qos(c);
  EXPECT_EQ(sim.duplicates, 0);
  EXPECT_EQ(sim.unresolved, 0);
  EXPECT_EQ(sim.untimely, 0);
  EXPECT_GT(sim.probability(QosLevel::kSequentialDual), 0.05);
}

TEST(MonteCarlo, RejectsBadConfig) {
  QosSimulationConfig c;
  c.k = 0;
  EXPECT_THROW((void)simulate_qos(c), PreconditionError);
  c.k = 9;
  c.episodes = 0;
  EXPECT_THROW((void)simulate_qos(c), PreconditionError);
}

}  // namespace
}  // namespace oaq
