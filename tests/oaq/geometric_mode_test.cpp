// Geometric Monte-Carlo / campaign mode (ISSUE 3): episodes against real
// constellation geometry through per-shard VisibilityCaches. The contract
// under test: the cache changes wall-clock cost only — results stay
// bit-identical for any worker count, and cached schedules agree with a
// fresh cache answering the same windows.
#include <gtest/gtest.h>

#include <sstream>

#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

Constellation small_polar_plane() {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  return Constellation(d);
}

QosSimulationConfig geometric_config(const Constellation& c) {
  QosSimulationConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.episodes = 24;
  cfg.seed = 19;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  return cfg;
}

TEST(GeometricMonteCarlo, CachedScheduleMatchesFreshCache) {
  const Constellation c = small_polar_plane();
  VisibilityCache cache(c);
  const GeometricSchedule cached(cache, GeoPoint{0.0, 0.0});
  VisibilityCache reference(c);
  const auto expect = reference.passes_window(
      GeoPoint{0.0, 0.0}, Duration::minutes(5), Duration::minutes(85));
  const auto got = cached.passes(Duration::minutes(5), Duration::minutes(85));
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].satellite, expect[i].satellite);
    EXPECT_EQ(got[i].start.to_seconds(), expect[i].start.to_seconds());
    EXPECT_EQ(got[i].end.to_seconds(), expect[i].end.to_seconds());
  }
  EXPECT_GT(cache.stats().pass_queries, 0u);
}

TEST(GeometricMonteCarlo, ResultsAreBitIdenticalAcrossJobs) {
  const Constellation c = small_polar_plane();
  SimulatedQos base;
  std::string base_trace;
  std::string base_metrics;
  for (const int jobs : {1, 2, 4, 8}) {
    QosSimulationConfig cfg = geometric_config(c);
    cfg.jobs = jobs;
    TraceCollector trace;
    cfg.trace = &trace;
    MetricsRegistry metrics;
    cfg.metrics = &metrics;
    const SimulatedQos r = simulate_qos(cfg);
    std::ostringstream os;
    trace.write_jsonl(os);
    std::ostringstream ms;
    metrics.write_json(ms);
    if (jobs == 1) {
      base = r;
      base_trace = os.str();
      base_metrics = ms.str();
      EXPECT_EQ(r.episodes, 24);
      continue;
    }
    for (int y = 0; y <= 3; ++y) {
      EXPECT_EQ(r.level_pmf.probability(y), base.level_pmf.probability(y))
          << "level " << y << " jobs " << jobs;
    }
    EXPECT_EQ(r.duplicates, base.duplicates);
    EXPECT_EQ(r.unresolved, base.unresolved);
    EXPECT_EQ(r.mean_chain_length, base.mean_chain_length);
    EXPECT_EQ(os.str(), base_trace) << "jobs " << jobs;
    // The full serialized registry — counters, gauges, and stat folds,
    // including the shared cache's hit accounting — must be byte-identical
    // for any worker count, not just statistically equal.
    EXPECT_EQ(ms.str(), base_metrics) << "jobs " << jobs;
  }
}

TEST(GeometricMonteCarlo, SharedCacheMatchesPrivateCachesExactly) {
  // The shared frozen cache is a wall-clock optimization only: cached pass
  // lists are pure functions of the query window, so disabling it (one
  // private VisibilityCache per shard) must reproduce results and traces
  // byte-for-byte.
  const Constellation c = small_polar_plane();
  SimulatedQos base;
  std::string base_trace;
  for (const bool shared : {true, false}) {
    QosSimulationConfig cfg = geometric_config(c);
    cfg.jobs = 4;
    cfg.shared_visibility = shared;
    TraceCollector trace;
    cfg.trace = &trace;
    const SimulatedQos r = simulate_qos(cfg);
    std::ostringstream os;
    trace.write_jsonl(os);
    if (shared) {
      base = r;
      base_trace = os.str();
      continue;
    }
    for (int y = 0; y <= 3; ++y) {
      EXPECT_EQ(r.level_pmf.probability(y), base.level_pmf.probability(y))
          << "level " << y;
    }
    EXPECT_EQ(r.duplicates, base.duplicates);
    EXPECT_EQ(r.unresolved, base.unresolved);
    EXPECT_EQ(r.untimely, base.untimely);
    EXPECT_EQ(r.mean_chain_length, base.mean_chain_length);
    EXPECT_EQ(r.max_chain_length, base.max_chain_length);
    EXPECT_EQ(os.str(), base_trace);
  }
}

TEST(GeometricMonteCarlo, ExportsCacheHitMetrics) {
  const Constellation c = small_polar_plane();
  QosSimulationConfig cfg = geometric_config(c);
  // More episodes than shards, so shards hold several episodes and the
  // shard-wide quantum turns all but the first query into hits.
  cfg.episodes = 130;
  cfg.jobs = 1;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  (void)simulate_qos(cfg);
  const auto& counters = metrics.counters();
  ASSERT_TRUE(counters.contains("visibility.pass_queries"));
  ASSERT_TRUE(counters.contains("visibility.pass_hits"));
  ASSERT_TRUE(counters.contains("visibility.cache_entries"));
  const auto queries = counters.at("visibility.pass_queries");
  const auto hits = counters.at("visibility.pass_hits");
  EXPECT_GT(queries, 0);
  EXPECT_GE(queries, hits);
  // Quantized windows make most of a shard's episodes share entries.
  EXPECT_GT(hits, 0);
}

TEST(GeometricCampaign, RunsOnRealGeometryAndReportsCacheStats) {
  const Constellation c = small_polar_plane();
  CampaignConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.k = 10;
  cfg.signal_arrival_rate = Rate::per_hour(4.0);
  cfg.horizon = Duration::hours(4);
  cfg.seed = 5;
  cfg.jobs = 1;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_GT(r.signals, 0);
  EXPECT_GT(r.delivered, 0);
  const auto& counters = metrics.counters();
  ASSERT_TRUE(counters.contains("visibility.pass_queries"));
  EXPECT_GT(counters.at("visibility.pass_hits"), 0);
}

TEST(GeometricCampaign, ReplicationsAreBitIdenticalAcrossJobs) {
  const Constellation c = small_polar_plane();
  CampaignConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.k = 10;
  cfg.signal_arrival_rate = Rate::per_hour(4.0);
  cfg.horizon = Duration::hours(3);
  cfg.seed = 9;
  cfg.replications = 3;
  CampaignResult base;
  for (const int jobs : {1, 3, 8}) {
    cfg.jobs = jobs;
    const CampaignResult r = run_campaign(cfg);
    if (jobs == 1) {
      base = r;
      continue;
    }
    EXPECT_EQ(r.signals, base.signals);
    EXPECT_EQ(r.delivered, base.delivered);
    EXPECT_EQ(r.mean_latency_min, base.mean_latency_min);
    for (int y = 0; y <= 3; ++y) {
      EXPECT_EQ(r.levels.probability(y), base.levels.probability(y));
    }
  }
}

TEST(GeometricCampaign, SharedCacheMatchesPrivateCachesExactly) {
  const Constellation c = small_polar_plane();
  CampaignConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.k = 10;
  cfg.signal_arrival_rate = Rate::per_hour(4.0);
  cfg.horizon = Duration::hours(3);
  cfg.seed = 9;
  cfg.replications = 3;
  cfg.jobs = 3;
  CampaignResult base;
  for (const bool shared : {true, false}) {
    cfg.shared_visibility = shared;
    const CampaignResult r = run_campaign(cfg);
    if (shared) {
      base = r;
      continue;
    }
    EXPECT_EQ(r.signals, base.signals);
    EXPECT_EQ(r.delivered, base.delivered);
    EXPECT_EQ(r.untimely, base.untimely);
    EXPECT_EQ(r.duplicates, base.duplicates);
    EXPECT_EQ(r.mean_latency_min, base.mean_latency_min);
    for (int y = 0; y <= 3; ++y) {
      EXPECT_EQ(r.levels.probability(y), base.levels.probability(y));
    }
  }
}

}  // namespace
}  // namespace oaq
