#include "oaq/episode.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

/// Deterministic protocol config: zero message delay and (near-)zero
/// computation time unless a test overrides them.
ProtocolConfig fast_config(double tau_min = 5.0) {
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(tau_min);
  cfg.delta = Duration::zero();
  cfg.tg = Duration::zero();
  cfg.nu = Rate::per_minute(30.0);
  cfg.computation_cap = Duration::seconds(1e-6);
  return cfg;
}

/// k = 9 underlapping plane, phase 0: passes [-4.5, 4.5], [5.5, 14.5], ...
AnalyticSchedule underlap_schedule() {
  return AnalyticSchedule(PlaneGeometry{}, 9, Duration::zero());
}

/// k = 12 overlapping plane, phase 0: passes [-4.5, 4.5], [3, 12], ...
AnalyticSchedule overlap_schedule() {
  return AnalyticSchedule(PlaneGeometry{}, 12, Duration::zero());
}

EpisodeResult run(const CoverageSchedule& sched, const ProtocolConfig& cfg,
                  bool oaq, double start_min, double duration_min,
                  std::uint64_t seed = 1,
                  const std::vector<EpisodeEngine::Fault>& faults = {}) {
  const EpisodeEngine engine(sched, cfg, oaq);
  Rng rng(seed);
  return engine.run(TimePoint::at(Duration::minutes(start_min)),
                    Duration::minutes(duration_min), rng, faults);
}

TEST(Episode, SignalInGapThatDiesEscapesSurveillance) {
  // Gap between passes is (4.5, 5.5); a 0.5-minute signal at 4.6 dies
  // before the next footprint arrives — the paper's worst case.
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(), true, 4.6, 0.5);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kMissed);
  EXPECT_EQ(r.alerts_sent, 0);
}

TEST(Episode, GapSignalDetectedAtNextFootprintArrival) {
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(), true, 4.6, 30.0);
  EXPECT_TRUE(r.detected);
  EXPECT_NEAR(r.detection.since_origin().to_minutes(), 5.5, 1e-9);
  EXPECT_TRUE(r.alert_delivered);
}

TEST(Episode, BaqDeliversSingleCoverageResultImmediately) {
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(), false, 0.0, 30.0);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_TRUE(r.timely);
  EXPECT_EQ(r.alerts_sent, 1);
  EXPECT_EQ(r.coordination_requests, 0);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 0.0, 1e-6);
}

TEST(Episode, OaqSequentialDualViaCoordinationChain) {
  // Signal at t = 2 covered by pass0; S2 arrives at 5.5 < deadline 7.
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(), true, 2.0, 30.0);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSequentialDual);
  EXPECT_EQ(r.chain_length, 2);
  EXPECT_EQ(r.coordination_requests, 1);
  EXPECT_EQ(r.alerts_sent, 1);
  EXPECT_TRUE(r.timely);
  EXPECT_TRUE(r.all_participants_resolved);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 5.5, 0.01);
}

TEST(Episode, Tc3SignalStopsBeforePeerArrives) {
  // Signal dies at t = 4 < 5.5; S1's wait deadline τ fires and delivers
  // the preliminary result (Fig. 4).
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(), true, 2.0, 2.0);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_EQ(r.alerts_sent, 1);
  EXPECT_TRUE(r.timely);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 7.0, 1e-6);
  EXPECT_TRUE(r.all_participants_resolved);
}

TEST(Episode, ForwardResponsibilityForwardsOnTc3) {
  auto cfg = fast_config();
  cfg.backward_messaging = false;
  const auto sched = underlap_schedule();
  const auto r = run(sched, cfg, true, 2.0, 2.0);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  // S2 forwards S1's result right when its footprint finds no signal.
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 5.5, 0.01);
}

TEST(Episode, BackwardMessagingSurvivesFailSilentPeer) {
  // §3.2: "the delivery of the alert message will be guaranteed even if
  // Sn+1 becomes fail-silent in the middle of computation."
  const auto sched = underlap_schedule();
  // S2 of the chain is the satellite of the pass at 5.5. Find its id
  // dynamically: phase 0, k = 9 ⇒ pass j=1 has slot (k-1) mod 9 = 8.
  const std::vector<EpisodeEngine::Fault> faults = {
      {SatelliteId{0, 8}, TimePoint::at(Duration::minutes(5.0))}};
  const auto r = run(sched, fast_config(), true, 2.0, 30.0, 1, faults);
  EXPECT_TRUE(r.alert_delivered);
  EXPECT_EQ(r.level, QosLevel::kSingle);  // S1's own preliminary result
  EXPECT_TRUE(r.timely);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 7.0, 1e-6);
}

TEST(Episode, ForwardResponsibilityLosesAlertOnFailSilentPeer) {
  auto cfg = fast_config();
  cfg.backward_messaging = false;
  const auto sched = underlap_schedule();
  const std::vector<EpisodeEngine::Fault> faults = {
      {SatelliteId{0, 8}, TimePoint::at(Duration::minutes(5.0))}};
  const auto r = run(sched, cfg, true, 2.0, 30.0, 1, faults);
  EXPECT_TRUE(r.detected);
  EXPECT_FALSE(r.alert_delivered);  // the ablation's point
}

TEST(Episode, Tc1StopsChainImmediatelyWhenThresholdLoose) {
  auto cfg = fast_config();
  cfg.error_threshold_km = 100.0;  // single-pass error (8 km) suffices
  const auto sched = underlap_schedule();
  const auto r = run(sched, cfg, true, 2.0, 30.0);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_EQ(r.coordination_requests, 0);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 2.0, 1e-6);
}

TEST(Episode, Tc1StopsChainAtRequiredAccuracy) {
  // τ = 25 allows a chain of M[9] = 4; a 3-km threshold is met after two
  // passes (8 → 2.8 km), so the chain stops there.
  auto cfg = fast_config(25.0);
  cfg.error_threshold_km = 3.0;
  const auto sched = underlap_schedule();
  const auto r = run(sched, cfg, true, 2.0, 60.0);
  EXPECT_EQ(r.level, QosLevel::kSequentialDual);
  EXPECT_EQ(r.chain_length, 2);
  EXPECT_EQ(r.coordination_requests, 1);
}

TEST(Episode, ChainGrowsToEquationTwoBoundWithLargeDeadline) {
  // τ = 25, k = 9: M[k] = 2 + floor((25-1)/10) = 4.
  const auto sched = underlap_schedule();
  const auto r = run(sched, fast_config(25.0), true, 2.0, 60.0);
  EXPECT_EQ(r.level, QosLevel::kSequentialDual);
  EXPECT_EQ(r.chain_length, 4);
  EXPECT_EQ(r.coordination_requests, 3);
  EXPECT_EQ(r.alerts_sent, 1);
  EXPECT_TRUE(r.all_participants_resolved);
}

TEST(Episode, OverlapWithholdsAndReachesSimultaneousDual) {
  // k = 12: signal at 0.5 under single coverage; the overlap window starts
  // at t = 3 (pass1 begins) — before the 5.5 deadline.
  const auto sched = overlap_schedule();
  const auto r = run(sched, fast_config(), true, 0.5, 30.0);
  EXPECT_EQ(r.level, QosLevel::kSimultaneousDual);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 3.0, 0.01);
  EXPECT_EQ(r.alerts_sent, 1);
  EXPECT_EQ(r.coordination_requests, 0);  // no chain needed
}

TEST(Episode, OverlapWithheldSignalDiesPreliminaryAtDeadline) {
  const auto sched = overlap_schedule();
  const auto r = run(sched, fast_config(), true, 0.5, 1.0);  // dies at 1.5
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 5.5, 1e-6);
  EXPECT_TRUE(r.timely);
}

TEST(Episode, SimultaneousCoverageAtDetection) {
  // t = 3.5 lies in the overlap window [3, 4.5] of passes 0 and 1.
  const auto sched = overlap_schedule();
  const auto r = run(sched, fast_config(), true, 3.5, 30.0);
  EXPECT_EQ(r.level, QosLevel::kSimultaneousDual);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 3.5, 0.01);
  // BAQ gets it too — no withholding needed when detection is simultaneous.
  const auto rb = run(sched, fast_config(), false, 3.5, 30.0);
  EXPECT_EQ(rb.level, QosLevel::kSimultaneousDual);
}

TEST(Episode, BaqNeverWithholds) {
  // Same single-coverage start as the withhold test, but BAQ: level 1.
  const auto sched = overlap_schedule();
  const auto r = run(sched, fast_config(), false, 0.5, 30.0);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 0.5, 1e-6);
}

TEST(Episode, ComputationOverrunFallsBackToPreliminary) {
  // Slow iterative computation (mean ~17 hours, uncapped): the level-3
  // solution cannot complete by τ; the preliminary goes out at deadline.
  auto cfg = fast_config();
  cfg.nu = Rate::per_hour(0.06);
  cfg.computation_cap = Duration::infinity();
  const auto sched = overlap_schedule();
  const auto r = run(sched, cfg, true, 3.5, 30.0, 7);
  EXPECT_EQ(r.level, QosLevel::kSingle);
  EXPECT_NEAR(r.first_alert_sent.since_origin().to_minutes(), 8.5, 1e-6);
  EXPECT_TRUE(r.timely);
}

TEST(Episode, DeterministicForFixedSeed) {
  const auto sched = underlap_schedule();
  auto cfg = fast_config();
  cfg.delta = Duration::seconds(10);
  cfg.computation_cap = Duration::infinity();
  const auto a = run(sched, cfg, true, 2.0, 6.0, 99);
  const auto b = run(sched, cfg, true, 2.0, 6.0, 99);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.alerts_sent, b.alerts_sent);
  EXPECT_EQ(a.first_alert_sent, b.first_alert_sent);
  EXPECT_EQ(a.chain_length, b.chain_length);
}

TEST(Episode, MembershipViewSkipsKnownFailedPeer) {
  // Without the view: S1 requests the (silently failed) S2, waits out the
  // full deadline and falls back to its level-1 result. With the
  // membership view marking S2 failed, S1 skips straight to S3's pass and
  // still achieves sequential-dual quality.
  const auto sched = underlap_schedule();
  const auto cfg = fast_config(25.0);
  const EpisodeEngine engine(sched, cfg, true);
  const SatelliteId s2{0, 8};  // pass at 5.5 (phase 0, k = 9)

  Rng rng1(1);
  const std::vector<EpisodeEngine::Fault> faults = {
      {s2, TimePoint::at(Duration::minutes(0.0))}};
  const auto blind = engine.run(TimePoint::at(Duration::minutes(2)),
                                Duration::minutes(60), rng1, faults);
  EXPECT_EQ(blind.level, QosLevel::kSingle);
  EXPECT_NEAR(blind.first_alert_sent.since_origin().to_minutes(), 27.0, 1e-6);

  Rng rng2(1);
  const auto informed = engine.run(TimePoint::at(Duration::minutes(2)),
                                   Duration::minutes(60), rng2, faults, {s2});
  EXPECT_EQ(informed.level, QosLevel::kSequentialDual);
  EXPECT_GE(informed.chain_length, 2);
  EXPECT_LT(informed.first_alert_sent.since_origin().to_minutes(), 27.0);
  EXPECT_EQ(informed.alerts_sent, 1);
}

TEST(Episode, RejectsBadInput) {
  const auto sched = underlap_schedule();
  const EpisodeEngine engine(sched, fast_config(), true);
  Rng rng(1);
  EXPECT_THROW((void)engine.run(TimePoint::origin(), Duration::zero(), rng),
               PreconditionError);
  auto bad = fast_config();
  bad.tau = Duration::zero();
  EXPECT_THROW(EpisodeEngine(sched, bad, true), PreconditionError);
}

}  // namespace
}  // namespace oaq
