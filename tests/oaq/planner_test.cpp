#include "oaq/planner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

ProtocolConfig ideal_config(double tau_min = 5.0) {
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(tau_min);
  cfg.delta = Duration::zero();
  cfg.tg = Duration::zero();
  cfg.computation_cap = Duration::seconds(1e-6);
  return cfg;
}

TEST(OpportunityPlanner, UnderlapChainMatchesEquationTwo) {
  // k = 9, τ = 25: Eq. (2) gives M = 4; passes at [-4.5,4.5],[5.5,...].
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config(25.0));
  const auto plan = planner.plan(TimePoint::at(Duration::minutes(2)));
  EXPECT_FALSE(plan.simultaneous_at.has_value());
  EXPECT_EQ(plan.max_chain_length(), 4);
  EXPECT_EQ(plan.best_achievable, QosLevel::kSequentialDual);
  // Steps arrive Tr = 10 min apart.
  ASSERT_EQ(plan.chain.size(), 4u);
  EXPECT_NEAR(plan.chain[1].arrival.to_minutes(), 5.5, 1e-9);
  EXPECT_NEAR(plan.chain[2].arrival.to_minutes(), 15.5, 1e-9);
  EXPECT_NEAR(plan.chain[3].arrival.to_minutes(), 25.5, 1e-9);
  // Accuracy improves monotonically along the chain.
  for (std::size_t i = 1; i < plan.chain.size(); ++i) {
    EXPECT_LT(plan.chain[i].expected_error_km,
              plan.chain[i - 1].expected_error_km);
  }
}

TEST(OpportunityPlanner, OverlapPlanFindsSimultaneousWindow) {
  // k = 12, detection at 0.5: overlap window starts at 3.0 < deadline.
  const AnalyticSchedule sched(PlaneGeometry{}, 12, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config());
  const auto plan = planner.plan(TimePoint::at(Duration::minutes(0.5)));
  ASSERT_TRUE(plan.simultaneous_at.has_value());
  EXPECT_NEAR(plan.simultaneous_at->to_minutes(), 3.0, 1e-9);
  EXPECT_EQ(plan.best_achievable, QosLevel::kSimultaneousDual);
  EXPECT_DOUBLE_EQ(plan.best_error_km,
                   AccuracyModel{}.simultaneous_error_km());
}

TEST(OpportunityPlanner, DetectionInsideOverlapIsImmediatelySimultaneous) {
  const AnalyticSchedule sched(PlaneGeometry{}, 12, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config());
  const auto plan = planner.plan(TimePoint::at(Duration::minutes(3.5)));
  ASSERT_TRUE(plan.simultaneous_at.has_value());
  EXPECT_NEAR(plan.simultaneous_at->to_minutes(), 3.5, 1e-9);
  EXPECT_DOUBLE_EQ(plan.chain.front().expected_error_km,
                   AccuracyModel{}.simultaneous_error_km());
}

TEST(OpportunityPlanner, TightDeadlineDegradesToSingle) {
  // k = 9, τ = 0.9 < L2 = 1: no peer can arrive; single coverage only.
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config(0.9));
  const auto plan = planner.plan(TimePoint::at(Duration::minutes(2)));
  EXPECT_EQ(plan.max_chain_length(), 1);
  EXPECT_EQ(plan.best_achievable, QosLevel::kSingle);
  EXPECT_FALSE(plan.simultaneous_at.has_value());
}

TEST(OpportunityPlanner, PlanMatchesEpisodeOutcomeForPersistentSignal) {
  // The planner's best_achievable must equal the engine's delivered level
  // when the signal outlives the window, across capacities and phases.
  for (int k : {9, 10, 12, 14}) {
    for (double start : {0.5, 2.0, 3.7}) {
      const AnalyticSchedule sched(PlaneGeometry{}, k,
                                   Duration::minutes(0.0));
      const auto cfg = ideal_config();
      const OpportunityPlanner planner(sched, cfg);
      const EpisodeEngine engine(sched, cfg, true);
      const auto t0 = TimePoint::at(Duration::minutes(start));
      // Only plan at covered instants.
      const auto passes = sched.passes(Duration::minutes(-10),
                                       Duration::minutes(10));
      bool covered = false;
      for (const auto& p : passes) {
        covered |= (p.start <= t0.since_origin() &&
                    t0.since_origin() < p.end);
      }
      if (!covered) continue;
      const auto plan = planner.plan(t0);
      Rng rng(9);
      const auto episode = engine.run(t0, Duration::hours(5), rng);
      EXPECT_EQ(episode.level, plan.best_achievable)
          << "k=" << k << " start=" << start;
    }
  }
}

TEST(OpportunityPlanner, NextDetectionOpportunity) {
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config());
  // Covered at t = 2 -> immediate.
  const auto now = planner.next_detection_opportunity(
      TimePoint::at(Duration::minutes(2)));
  ASSERT_TRUE(now.has_value());
  EXPECT_NEAR(now->since_origin().to_minutes(), 2.0, 1e-9);
  // In the gap (4.5, 5.5) -> next pass start.
  const auto gap = planner.next_detection_opportunity(
      TimePoint::at(Duration::minutes(4.7)));
  ASSERT_TRUE(gap.has_value());
  EXPECT_NEAR(gap->since_origin().to_minutes(), 5.5, 1e-9);
}

TEST(OpportunityPlanner, RejectsUncoveredDetection) {
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::zero());
  const OpportunityPlanner planner(sched, ideal_config());
  EXPECT_THROW((void)planner.plan(TimePoint::at(Duration::minutes(4.7))),
               PreconditionError);
  EXPECT_THROW((void)planner.next_detection_opportunity(
                   TimePoint::origin(), Duration::zero()),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
