// SoA episode batching (ISSUE 6): the batched analytic path must be an
// observationally perfect stand-in for the scalar per-episode loop —
// identical trace bytes, metrics bytes, and aggregate statistics — and the
// closed-form escape classifier must agree with TargetEpisode::arm() on
// every sampled (phase, duration) pair.
#include "oaq/batch_episode.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/distribution.hpp"
#include "fault/plan.hpp"
#include "oaq/montecarlo.hpp"
#include "oaq/schedule.hpp"

namespace oaq {
namespace {

/// The golden-trace protocol shape: k = 9, bounded computations, nonzero
/// messaging delays — the configuration whose DES path is busiest.
QosSimulationConfig protocol_config(int episodes, bool oaq) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.opportunity_adaptive = oaq;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  return cfg;
}

struct Snapshot {
  SimulatedQos qos;
  std::string trace;
  std::string metrics;
};

Snapshot run(QosSimulationConfig cfg, bool batched) {
  cfg.batch_episodes = batched;
  TraceCollector trace;
  MetricsRegistry metrics;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  Snapshot s;
  s.qos = simulate_qos(cfg);
  std::ostringstream ts;
  trace.write_jsonl(ts);
  s.trace = ts.str();
  std::ostringstream ms;
  metrics.write_json(ms);
  s.metrics = ms.str();
  return s;
}

void expect_bitwise_equal(const QosSimulationConfig& cfg,
                          const std::string& label) {
  const Snapshot scalar = run(cfg, /*batched=*/false);
  const Snapshot batched = run(cfg, /*batched=*/true);
  EXPECT_EQ(batched.trace, scalar.trace) << label << ": trace drifted";
  EXPECT_EQ(batched.metrics, scalar.metrics) << label << ": metrics drifted";
  EXPECT_EQ(batched.qos.episodes, scalar.qos.episodes) << label;
  EXPECT_EQ(batched.qos.duplicates, scalar.qos.duplicates) << label;
  EXPECT_EQ(batched.qos.unresolved, scalar.qos.unresolved) << label;
  EXPECT_EQ(batched.qos.untimely, scalar.qos.untimely) << label;
  EXPECT_EQ(batched.qos.max_chain_length, scalar.qos.max_chain_length) << label;
  EXPECT_EQ(batched.qos.mean_chain_length, scalar.qos.mean_chain_length)
      << label;
  EXPECT_EQ(batched.qos.invariant_violations, scalar.qos.invariant_violations)
      << label;
  for (int y = 0; y <= 3; ++y) {
    EXPECT_EQ(batched.qos.level_pmf.probability(y),
              scalar.qos.level_pmf.probability(y))
        << label << ": level " << y;
  }
}

TEST(BatchEpisode, BitwiseEqualAcrossWorkerCounts) {
  for (const int jobs : {1, 4, 8}) {
    auto cfg = protocol_config(400, /*oaq=*/true);
    cfg.jobs = jobs;
    expect_bitwise_equal(cfg, "oaq jobs=" + std::to_string(jobs));
  }
}

TEST(BatchEpisode, BitwiseEqualUnderBaq) {
  for (const int jobs : {1, 4}) {
    auto cfg = protocol_config(400, /*oaq=*/false);
    cfg.jobs = jobs;
    expect_bitwise_equal(cfg, "baq jobs=" + std::to_string(jobs));
  }
}

TEST(BatchEpisode, BitwiseEqualAcrossDurationLaws) {
  // Eccentric duration laws stress the escape classifier: near-zero
  // deterministic signals escape almost always, heavy-tailed Weibull
  // signals almost never, and a uniform law straddles the pass length.
  const std::vector<
      std::pair<std::string, std::shared_ptr<const DurationDistribution>>>
      laws = {
          {"det_short", std::make_shared<DeterministicDuration>(
                            Duration::seconds(2.0))},
          {"weibull_heavy", std::make_shared<WeibullDuration>(
                                WeibullDuration::with_mean(
                                    0.6, Duration::minutes(2.0)))},
          {"uniform", std::make_shared<UniformDuration>(
                          Duration::seconds(5.0), Duration::minutes(10.0))},
      };
  for (const auto& [name, law] : laws) {
    auto cfg = protocol_config(300, /*oaq=*/true);
    cfg.duration_distribution = law;
    cfg.jobs = 4;
    expect_bitwise_equal(cfg, name);
  }
}

TEST(BatchEpisode, BitwiseEqualWithFaultPlanAttached) {
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 2}, Duration::minutes(1.0)));
  plan.add(FaultPlan::recover({0, 2}, Duration::minutes(4.0)));
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1.0),
                                  Duration::minutes(5.0)));
  plan.add(FaultPlan::burst_loss(0.3, Duration::minutes(0.0),
                                 Duration::minutes(2.0)));
  for (const int jobs : {1, 4}) {
    auto cfg = protocol_config(300, /*oaq=*/true);
    cfg.fault_plan = &plan;
    cfg.check_invariants = true;
    cfg.jobs = jobs;
    expect_bitwise_equal(cfg, "faults jobs=" + std::to_string(jobs));
  }
}

// With interleaving default-on (interleave_width = 0 → block width) the
// byte-identity suites above already drain merged timelines; these pin the
// contract at every explicit width, including width 1 — the PR 6
// sequential drain — which must remain reachable and identical.
TEST(BatchEpisode, InterleavedDrainBitwiseEqualAcrossWidths) {
  for (const int width : {1, 2, 4, kEpisodeBatchWidth}) {
    auto cfg = protocol_config(400, /*oaq=*/true);
    cfg.jobs = 1;
    cfg.interleave_width = width;
    expect_bitwise_equal(cfg, "width=" + std::to_string(width));
  }
}

TEST(BatchEpisode, InterleavedDrainBitwiseEqualAcrossWorkerCounts) {
  // Sharding composes with interleaving: each worker drains its own merged
  // timeline, and the resequenced artifacts must still match the scalar
  // oracle byte for byte at every jobs count.
  for (const int jobs : {1, 4, 8}) {
    auto cfg = protocol_config(400, /*oaq=*/true);
    cfg.jobs = jobs;
    cfg.interleave_width = kEpisodeBatchWidth;
    expect_bitwise_equal(cfg, "interleave jobs=" + std::to_string(jobs));
  }
}

TEST(BatchEpisode, InterleavedDrainBitwiseEqualWithFaultPlanAttached) {
  // Fault storms schedule injector events on the shared timeline; the
  // per-episode cancel namespace must keep them in their own lanes.
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 2}, Duration::minutes(1.0)));
  plan.add(FaultPlan::recover({0, 2}, Duration::minutes(4.0)));
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1.0),
                                  Duration::minutes(5.0)));
  plan.add(FaultPlan::burst_loss(0.3, Duration::minutes(0.0),
                                 Duration::minutes(2.0)));
  for (const int width : {2, kEpisodeBatchWidth}) {
    auto cfg = protocol_config(300, /*oaq=*/true);
    cfg.fault_plan = &plan;
    cfg.check_invariants = true;
    cfg.jobs = 1;
    cfg.interleave_width = width;
    expect_bitwise_equal(cfg, "faults width=" + std::to_string(width));
  }
}

/// TargetEpisode::arm()'s detection decision, replayed over a materialized
/// pass list: any pass covering the signal start, else the first pass
/// starting inside [sig_start, sig_end).
bool arm_oracle(const PlaneGeometry& geometry, int k, Duration phase,
                TimePoint signal_start, Duration signal_duration,
                Duration tau) {
  const AnalyticSchedule schedule(geometry, k, phase);
  const Duration from = signal_start.since_origin() - Duration::minutes(20);
  const Duration to = signal_start.since_origin() +
                      std::min(signal_duration, Duration::minutes(30)) + tau +
                      Duration::minutes(60);
  std::vector<Pass> passes;
  schedule.passes_into(from, to, passes);
  const Duration sig_start = signal_start.since_origin();
  const Duration sig_end = sig_start + signal_duration;
  for (const auto& p : passes) {
    if (p.start <= sig_start && sig_start < p.end) return true;
  }
  for (const auto& p : passes) {
    if (p.start >= sig_start) return p.start < sig_end;
  }
  return false;
}

TEST(BatchEpisode, ClassifierAgreesWithArmOnSampledEpisodes) {
  const PlaneGeometry geometry;
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  Rng rng(20260808);
  for (const int k : {7, 9, 12}) {
    for (const double tau_min : {3.0, 5.0, 12.0}) {
      const Duration tau = Duration::minutes(tau_min);
      const Duration tr = geometry.tr(k);
      std::int64_t escaped = 0;
      for (int i = 0; i < 4000; ++i) {
        const Duration phase = rng.uniform(Duration::zero(), tr);
        // Log-uniform-ish spread from sub-second blips to multi-hour
        // signals; includes durations far longer than the 30-minute cap.
        const double mins = std::pow(10.0, rng.uniform(-1.5, 2.5));
        const Duration duration = Duration::minutes(mins);
        const bool fast = analytic_signal_detected(geometry, k, phase,
                                                   signal_start, duration, tau);
        const bool slow =
            arm_oracle(geometry, k, phase, signal_start, duration, tau);
        ASSERT_EQ(fast, slow) << "k=" << k << " tau=" << tau_min
                              << " phase_min=" << phase.to_minutes()
                              << " dur_min=" << mins;
        if (!fast) ++escaped;
      }
      // With coverage gaps (Tr > Tc) the sample must hit the escape path;
      // under continuous coverage (k = 12 here) nothing can escape.
      if (tr > geometry.tc()) {
        EXPECT_GT(escaped, 0) << "k=" << k << " tau=" << tau_min
                              << ": sample never exercised the escape path";
      } else {
        EXPECT_EQ(escaped, 0) << "k=" << k << " tau=" << tau_min;
      }
    }
  }
}

TEST(BatchEpisode, StatsPartitionEpisodes) {
  auto cfg = protocol_config(257, /*oaq=*/true);  // deliberately not 8-aligned
  cfg.jobs = 1;
  cfg.batch_metrics = true;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  (void)simulate_qos(cfg);
  std::ostringstream os;
  metrics.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"sim.batch.episodes\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.batch.occupancy."), std::string::npos);
}

}  // namespace
}  // namespace oaq
