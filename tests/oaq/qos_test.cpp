#include "oaq/qos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace oaq {
namespace {

TEST(QosLevelTest, IntegerMappingMatchesPaper) {
  EXPECT_EQ(to_int(QosLevel::kMissed), 0);
  EXPECT_EQ(to_int(QosLevel::kSingle), 1);
  EXPECT_EQ(to_int(QosLevel::kSequentialDual), 2);
  EXPECT_EQ(to_int(QosLevel::kSimultaneousDual), 3);
}

TEST(QosLevelTest, Names) {
  EXPECT_EQ(to_string(QosLevel::kMissed), "missed");
  EXPECT_EQ(to_string(QosLevel::kSimultaneousDual), "simultaneous-dual");
}

TEST(QosLevelTest, RateResultByCoverageBasis) {
  EXPECT_EQ(rate_result(0, false), QosLevel::kMissed);
  EXPECT_EQ(rate_result(1, false), QosLevel::kSingle);
  EXPECT_EQ(rate_result(2, false), QosLevel::kSequentialDual);
  EXPECT_EQ(rate_result(5, false), QosLevel::kSequentialDual);
  EXPECT_EQ(rate_result(2, true), QosLevel::kSimultaneousDual);
  EXPECT_EQ(rate_result(3, true), QosLevel::kSimultaneousDual);
}

TEST(QosLevelTest, TableOneRows) {
  const auto over = achievable_levels(true);
  EXPECT_NE(std::find(over.begin(), over.end(), QosLevel::kSimultaneousDual),
            over.end());
  EXPECT_NE(std::find(over.begin(), over.end(), QosLevel::kSingle), over.end());
  EXPECT_EQ(std::find(over.begin(), over.end(), QosLevel::kSequentialDual),
            over.end());
  EXPECT_EQ(std::find(over.begin(), over.end(), QosLevel::kMissed), over.end());

  const auto under = achievable_levels(false);
  EXPECT_NE(std::find(under.begin(), under.end(), QosLevel::kSequentialDual),
            under.end());
  EXPECT_NE(std::find(under.begin(), under.end(), QosLevel::kMissed),
            under.end());
  EXPECT_EQ(std::find(under.begin(), under.end(),
                      QosLevel::kSimultaneousDual),
            under.end());
}

}  // namespace
}  // namespace oaq
