#include "oaq/schedule.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(AnalyticSchedule, PassStructureMatchesTimingDiagram) {
  // k = 12, θ = 90, Tc = 9: Tr = 7.5, overlap L2 = 1.5 per period.
  const AnalyticSchedule sched(PlaneGeometry{}, 12, Duration::zero());
  const auto passes = sched.passes(Duration::zero(), Duration::minutes(45));
  ASSERT_GE(passes.size(), 6u);
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_NEAR(passes[i].duration().to_minutes(), 9.0, 1e-9);
    if (i > 0) {
      EXPECT_NEAR((passes[i].start - passes[i - 1].start).to_minutes(), 7.5,
                  1e-9);
    }
  }
}

TEST(AnalyticSchedule, PhaseShiftsThePattern) {
  const AnalyticSchedule a(PlaneGeometry{}, 12, Duration::zero());
  const AnalyticSchedule b(PlaneGeometry{}, 12, Duration::minutes(2));
  const auto pa = a.passes(Duration::minutes(10), Duration::minutes(30));
  const auto pb = b.passes(Duration::minutes(10), Duration::minutes(30));
  ASSERT_FALSE(pa.empty());
  ASSERT_FALSE(pb.empty());
  const double shift = (pb.front().start - pa.front().start).to_minutes();
  // The shift is 2 minutes modulo the 7.5-minute period.
  EXPECT_NEAR(std::fmod(shift + 7.5, 7.5), 2.0, 1e-9);
}

TEST(AnalyticSchedule, ConsecutiveVisitorsAreChainNeighbors) {
  // Successive passes must be slot s, s-1, s-2 ... (mod k), matching
  // PlaneRouter::next_visitor.
  const int k = 10;
  const AnalyticSchedule sched(PlaneGeometry{}, k, Duration::minutes(3));
  const auto passes = sched.passes(Duration::zero(), Duration::minutes(120));
  ASSERT_GE(passes.size(), 10u);
  for (std::size_t i = 1; i < passes.size(); ++i) {
    const int prev = passes[i - 1].satellite.slot;
    const int cur = passes[i].satellite.slot;
    EXPECT_EQ(cur, (prev + k - 1) % k) << "pass " << i;
  }
}

TEST(AnalyticSchedule, SatelliteIdentityIsPeriodic) {
  const int k = 9;
  const AnalyticSchedule sched(PlaneGeometry{}, k, Duration::zero());
  const auto passes = sched.passes(Duration::zero(), Duration::minutes(181));
  // After k passes the same satellite returns (one orbit period later).
  ASSERT_GT(passes.size(), static_cast<std::size_t>(k));
  for (std::size_t i = 0; i + k < passes.size(); ++i) {
    EXPECT_EQ(passes[i].satellite, passes[i + k].satellite);
    EXPECT_NEAR((passes[i + k].start - passes[i].start).to_minutes(), 90.0,
                1e-9);
  }
}

TEST(OverlapWindows, OverlappingPlaneHasWindowsOfLengthL2) {
  const AnalyticSchedule sched(PlaneGeometry{}, 12, Duration::zero());
  const auto passes = sched.passes(Duration::zero(), Duration::minutes(60));
  const auto windows =
      overlap_windows(passes, Duration::zero(), Duration::minutes(60));
  ASSERT_GE(windows.size(), 5u);
  for (const auto& w : windows) {
    EXPECT_NEAR(w.duration().to_minutes(), 1.5, 0.01);  // L2[12]
    EXPECT_EQ(w.multiplicity(), 2);
  }
  // Windows recur every Tr.
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_NEAR((windows[i].start - windows[i - 1].start).to_minutes(), 7.5,
                1e-6);
  }
}

TEST(OverlapWindows, UnderlappingPlaneHasNone) {
  for (int k : {9, 10}) {
    const AnalyticSchedule sched(PlaneGeometry{}, k, Duration::zero());
    const auto passes = sched.passes(Duration::zero(), Duration::minutes(90));
    const auto windows =
        overlap_windows(passes, Duration::zero(), Duration::minutes(90));
    EXPECT_TRUE(windows.empty()) << "k=" << k;
  }
}

TEST(GeometricSchedule, MatchesAnalyticStructureOnCenterline) {
  // A real polar plane over an equatorial target reproduces the analytic
  // pass structure: k = 10 gives back-to-back 9-minute passes.
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  const Constellation c(d);
  const GeometricSchedule sched(c, GeoPoint{0.0, 0.0});
  const auto passes = sched.passes(Duration::zero(), Duration::minutes(90));
  ASSERT_GE(passes.size(), 9u);
  // Skip the first pass: it may be clipped at the horizon start.
  for (std::size_t i = 2; i + 1 < passes.size(); ++i) {
    EXPECT_NEAR(passes[i].duration().to_minutes(), 9.0, 0.05);
    EXPECT_NEAR((passes[i].start - passes[i - 1].start).to_minutes(), 9.0,
                0.05);
  }
}

TEST(GeometricSchedule, NegativeWindowIsClippedToZero) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  const Constellation c(d);
  const GeometricSchedule sched(c, GeoPoint{0.0, 0.0});
  const auto passes =
      sched.passes(Duration::minutes(-30), Duration::minutes(30));
  for (const auto& p : passes) {
    EXPECT_GE(p.start, Duration::zero());
  }
}

TEST(AnalyticSchedule, RejectsBadArguments) {
  EXPECT_THROW(AnalyticSchedule(PlaneGeometry{}, 0, Duration::zero()),
               PreconditionError);
  const AnalyticSchedule s(PlaneGeometry{}, 10, Duration::zero());
  EXPECT_THROW((void)s.passes(Duration::minutes(5), Duration::minutes(5)),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
