#include "oaq/campaign.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.k = 9;
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(30);
  cfg.protocol.computation_cap = Duration::seconds(6);
  cfg.duration_distribution =
      std::make_shared<ExponentialDuration>(Rate::per_minute(0.2));
  cfg.horizon = Duration::hours(200);
  cfg.signal_arrival_rate = Rate::per_hour(2.0);
  cfg.seed = 11;
  return cfg;
}

TEST(Campaign, LowLoadMatchesSingleTargetModel) {
  // At 2 signals/hour with 6-second computations, contention is nil: the
  // campaign's level distribution must match the single-episode harness.
  auto cfg = base_config();
  const auto campaign = run_campaign(cfg);
  ASSERT_GT(campaign.signals, 250);

  QosSimulationConfig single;
  single.k = cfg.k;
  single.protocol = cfg.protocol;
  single.mu = Rate::per_minute(0.2);
  single.episodes = 20000;
  single.seed = 5;
  const auto reference = simulate_qos(single);

  for (int y = 0; y <= 3; ++y) {
    EXPECT_NEAR(campaign.levels.probability(y),
                reference.level_pmf.probability(y), 0.05)
        << "level " << y;
  }
  EXPECT_EQ(campaign.duplicates, 0);
  EXPECT_EQ(campaign.untimely, 0);
  // Occasional coincident signals may share a satellite even at low load.
  EXPECT_LT(campaign.contended_computations, campaign.signals / 50);
}

TEST(Campaign, EveryDetectedSignalIsDelivered) {
  auto cfg = base_config();
  cfg.signal_arrival_rate = Rate::per_hour(10.0);
  cfg.horizon = Duration::hours(100);
  const auto r = run_campaign(cfg);
  // delivered == signals − escaped; escaped signals show up as kMissed.
  EXPECT_EQ(r.delivered,
            r.signals - static_cast<int>(std::lround(
                            r.levels.probability(0) * r.signals)));
  EXPECT_EQ(r.untimely, 0);
}

TEST(Campaign, HeavyLoadWithSlowComputationsContends) {
  auto cfg = base_config();
  // Slow computations (mean 1 min, cap 2 min) and a dense signal stream.
  cfg.protocol.nu = Rate::per_minute(1.0);
  cfg.protocol.computation_cap = Duration::minutes(2);
  cfg.signal_arrival_rate = Rate::per_hour(60.0);
  cfg.horizon = Duration::hours(50);
  const auto contended = run_campaign(cfg);
  EXPECT_GT(contended.contended_computations, 0);
  EXPECT_GT(contended.mean_queueing_delay_s, 0.0);

  auto no_contention = cfg;
  no_contention.compute_contention = false;
  const auto free = run_campaign(no_contention);
  EXPECT_EQ(free.contended_computations, 0);
  // Contention can only hurt the high end of the spectrum.
  EXPECT_LE(contended.tail(QosLevel::kSequentialDual),
            free.tail(QosLevel::kSequentialDual) + 0.02);
}

TEST(Campaign, DeterministicForSeed) {
  const auto a = run_campaign(base_config());
  const auto b = run_campaign(base_config());
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.delivered, b.delivered);
  for (int y = 0; y <= 3; ++y) {
    EXPECT_DOUBLE_EQ(a.levels.probability(y), b.levels.probability(y));
  }
  EXPECT_DOUBLE_EQ(a.mean_latency_min, b.mean_latency_min);
}

TEST(Campaign, RejectsBadConfig) {
  auto cfg = base_config();
  cfg.k = 0;
  EXPECT_THROW((void)run_campaign(cfg), PreconditionError);
  cfg = base_config();
  cfg.horizon = Duration::zero();
  EXPECT_THROW((void)run_campaign(cfg), PreconditionError);
}

}  // namespace
}  // namespace oaq
