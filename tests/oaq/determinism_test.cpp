// Determinism contract of the parallel Monte-Carlo engine: for a fixed
// seed, results are BIT-identical for every jobs value — threads only
// change which worker computes a shard, never what is computed or the
// order results are merged in.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

QosSimulationConfig sim_config(int jobs) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 4000;
  cfg.seed = 2718;
  cfg.mu = Rate::per_minute(0.3);
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(30);
  cfg.protocol.computation_cap = Duration::seconds(6);
  cfg.jobs = jobs;
  return cfg;
}

CampaignConfig campaign_config(int replications, int jobs) {
  CampaignConfig cfg;
  cfg.k = 9;
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(1.0);
  cfg.protocol.computation_cap = Duration::minutes(2);
  cfg.signal_arrival_rate = Rate::per_hour(12.0);
  cfg.horizon = Duration::hours(25);
  cfg.seed = 31;
  cfg.replications = replications;
  cfg.jobs = jobs;
  return cfg;
}

void expect_identical(const SimulatedQos& a, const SimulatedQos& b,
                      int jobs) {
  EXPECT_EQ(a.level_pmf.weights(), b.level_pmf.weights()) << "jobs=" << jobs;
  EXPECT_EQ(a.episodes, b.episodes) << "jobs=" << jobs;
  EXPECT_EQ(a.duplicates, b.duplicates) << "jobs=" << jobs;
  EXPECT_EQ(a.unresolved, b.unresolved) << "jobs=" << jobs;
  EXPECT_EQ(a.untimely, b.untimely) << "jobs=" << jobs;
  // Exact: same integer chain_sum / detected division on both sides.
  EXPECT_EQ(a.mean_chain_length, b.mean_chain_length) << "jobs=" << jobs;
  EXPECT_EQ(a.max_chain_length, b.max_chain_length) << "jobs=" << jobs;
}

TEST(ParallelDeterminism, SimulateQosBitIdenticalAcrossJobs) {
  const auto serial = simulate_qos(sim_config(1));
  EXPECT_DOUBLE_EQ(serial.level_pmf.total_weight(), 4000.0);
  for (const int jobs : {2, 4, 8}) {
    expect_identical(simulate_qos(sim_config(jobs)), serial, jobs);
  }
}

TEST(ParallelDeterminism, SimulateQosAutoJobsMatchesSerial) {
  // jobs = 0 resolves to hardware/OAQ_JOBS — still the same result.
  expect_identical(simulate_qos(sim_config(0)), simulate_qos(sim_config(1)),
                   0);
}

TEST(ParallelDeterminism, SimulateQosBaqPathToo) {
  auto serial = sim_config(1);
  serial.opportunity_adaptive = false;
  auto wide = sim_config(4);
  wide.opportunity_adaptive = false;
  expect_identical(simulate_qos(wide), simulate_qos(serial), 4);
}

TEST(ParallelDeterminism, CampaignBitIdenticalAcrossJobs) {
  const auto serial = run_campaign(campaign_config(6, 1));
  ASSERT_GT(serial.signals, 100);
  for (const int jobs : {2, 4, 8}) {
    const auto wide = run_campaign(campaign_config(6, jobs));
    EXPECT_EQ(wide.signals, serial.signals) << "jobs=" << jobs;
    EXPECT_EQ(wide.delivered, serial.delivered) << "jobs=" << jobs;
    EXPECT_EQ(wide.duplicates, serial.duplicates) << "jobs=" << jobs;
    EXPECT_EQ(wide.untimely, serial.untimely) << "jobs=" << jobs;
    EXPECT_EQ(wide.levels.weights(), serial.levels.weights())
        << "jobs=" << jobs;
    // Bit-equality (not tolerance): latency stats are folded one shard per
    // replication in replication order, independent of the worker count.
    EXPECT_EQ(wide.mean_latency_min, serial.mean_latency_min)
        << "jobs=" << jobs;
    EXPECT_EQ(wide.latency_min.variance(), serial.latency_min.variance())
        << "jobs=" << jobs;
    EXPECT_EQ(wide.mean_queueing_delay_s, serial.mean_queueing_delay_s)
        << "jobs=" << jobs;
    EXPECT_EQ(wide.contended_computations, serial.contended_computations)
        << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, CampaignReplicationsAggregate) {
  const auto one = run_campaign(campaign_config(1, 1));
  const auto six = run_campaign(campaign_config(6, 1));
  EXPECT_EQ(six.replications, 6);
  // Six independent 25-hour campaigns see roughly six times the signals.
  EXPECT_GT(six.signals, 4 * one.signals);
  EXPECT_EQ(six.delivered, static_cast<std::int64_t>(six.latency_min.count()));
  // More replications tighten the latency confidence interval.
  EXPECT_LT(six.latency_min.ci95_halfwidth(),
            one.latency_min.ci95_halfwidth());
}

TEST(ParallelDeterminism, CampaignSingleReplicationPreservesSeedPath) {
  // replications = 1 must be byte-for-byte the historical run for `seed`,
  // whatever jobs is set to (there is nothing to parallelize over).
  const auto a = run_campaign(campaign_config(1, 1));
  const auto b = run_campaign(campaign_config(1, 8));
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.levels.weights(), b.levels.weights());
  EXPECT_EQ(a.mean_latency_min, b.mean_latency_min);
}

TEST(ParallelDeterminism, RejectsBadReplicationCount) {
  auto cfg = campaign_config(0, 1);
  EXPECT_THROW((void)run_campaign(cfg), PreconditionError);
}

}  // namespace
}  // namespace oaq
