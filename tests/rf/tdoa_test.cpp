#include "rf/tdoa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace oaq {
namespace {

struct Pair {
  Orbit a;
  Orbit b;
};

/// Two satellites of one plane, one slot (36°) apart, overlapping over the
/// emitter region around t ≈ 8-9 min.
Pair make_pair() {
  return {Orbit::circular_with_period(Duration::minutes(90), deg2rad(85.0),
                                      deg2rad(30.0), 0.0),
          Orbit::circular_with_period(Duration::minutes(90), deg2rad(85.0),
                                      deg2rad(30.0), deg2rad(-20.0))};
}

TEST(TdoaModel, TdoaIsZeroOnThePerpendicularBisector) {
  // A point equidistant from both satellites has zero TDOA. Construct it:
  // take the two sub-satellite points' midpoint on the great circle.
  const auto pair = make_pair();
  const TdoaModel model(false);
  const auto t = Duration::minutes(10.0);
  const auto sa = pair.a.state_at(t);
  const auto sb = pair.b.state_at(t);
  const Vec3 mid_dir = (sa.position_km + sb.position_km).normalized();
  const GeoPoint mid = ecef_to_geo(mid_dir * kEarthRadiusKm);
  EXPECT_NEAR(model.predicted_tdoa_s(sa, sb, mid, t), 0.0, 1e-12);
}

TEST(TdoaModel, TdoaSignFollowsProximity) {
  const auto pair = make_pair();
  const TdoaModel model(false);
  const auto t = Duration::minutes(10.0);
  const auto sa = pair.a.state_at(t);
  const auto sb = pair.b.state_at(t);
  const GeoPoint under_a = ecef_to_geo(sa.position_km);
  const GeoPoint under_b = ecef_to_geo(sb.position_km);
  // Directly under A, range to A is smaller: TDOA = (ra-rb)/c < 0.
  EXPECT_LT(model.predicted_tdoa_s(sa, sb, under_a, t), 0.0);
  EXPECT_GT(model.predicted_tdoa_s(sa, sb, under_b, t), 0.0);
  // Magnitude bounded by the inter-satellite distance / c.
  const double bound =
      (sa.position_km - sb.position_km).norm() / kSpeedOfLightKmPerS;
  EXPECT_LE(std::abs(model.predicted_tdoa_s(sa, sb, under_a, t)), bound);
}

TEST(TdoaModel, FdoaScalesWithCarrier) {
  const auto pair = make_pair();
  const TdoaModel model(false);
  const auto t = Duration::minutes(9.0);
  const auto sa = pair.a.state_at(t);
  const auto sb = pair.b.state_at(t);
  const GeoPoint p = GeoPoint::from_degrees(28.0, 30.0);
  const double f400 = model.predicted_fdoa_hz(sa, sb, p, 400e6, t);
  const double f800 = model.predicted_fdoa_hz(sa, sb, p, 800e6, t);
  EXPECT_NEAR(f800, 2.0 * f400, std::abs(f400) * 1e-9 + 1e-12);
}

TEST(TdoaModel, TakeMeasurementsRequiresDualVisibility) {
  const auto pair = make_pair();
  const TdoaModel model(true);
  Rng rng(1);
  Emitter e;
  e.position = GeoPoint::from_degrees(30.0, 31.0);
  e.start = TimePoint::origin();
  const auto epochs = measurement_epochs(Duration::zero(),
                                         Duration::minutes(30), 121);
  const auto ms = model.take_measurements(pair.a, {0, 0}, pair.b, {0, 1}, e,
                                          epochs, deg2rad(18.0), 1e-6, 1.0,
                                          rng);
  ASSERT_FALSE(ms.empty());
  for (const auto& m : ms) {
    // Both footprints must cover the emitter at each retained epoch.
    const auto sub_a = pair.a.subsatellite_point(m.time, true);
    const auto sub_b = pair.b.subsatellite_point(m.time, true);
    EXPECT_LE(central_angle(sub_a, e.position), deg2rad(18.0) + 1e-9);
    EXPECT_LE(central_angle(sub_b, e.position), deg2rad(18.0) + 1e-9);
    EXPECT_EQ(m.sat_a, (SatelliteId{0, 0}));
    EXPECT_EQ(m.sat_b, (SatelliteId{0, 1}));
  }
  // Dual-visibility epochs are strictly fewer than single-visibility ones.
  const DopplerModel single(true);
  Rng rng2(2);
  const auto singles = single.take_measurements(pair.a, {0, 0}, e, epochs,
                                                deg2rad(18.0), 1.0, rng2);
  EXPECT_LT(ms.size(), singles.size());
}

TEST(TdoaModel, MeasurementNoiseMatchesSigmas) {
  const auto pair = make_pair();
  const TdoaModel model(false);
  Rng rng(3);
  Emitter e;
  e.position = GeoPoint::from_degrees(30.0, 31.0);
  e.start = TimePoint::origin();
  const auto t = Duration::minutes(10.0);
  const double truth_td = model.predicted_tdoa_s(pair.a.state_at(t),
                                                 pair.b.state_at(t),
                                                 e.position, t);
  RunningStat td_err;
  for (int i = 0; i < 3000; ++i) {
    const auto ms = model.take_measurements(pair.a, {0, 0}, pair.b, {0, 1},
                                            e, {t}, deg2rad(18.0), 2e-6, 1.0,
                                            rng);
    ASSERT_EQ(ms.size(), 1u);
    td_err.add(ms[0].tdoa_s - truth_td);
  }
  EXPECT_NEAR(td_err.mean(), 0.0, 2e-7);
  EXPECT_NEAR(td_err.stddev(), 2e-6, 2e-7);
}

TEST(TdoaModel, RejectsBadNoise) {
  const auto pair = make_pair();
  const TdoaModel model(false);
  Rng rng(4);
  Emitter e;
  EXPECT_THROW((void)model.take_measurements(pair.a, {0, 0}, pair.b, {0, 1},
                                             e, {}, 0.3, 0.0, 1.0, rng),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
