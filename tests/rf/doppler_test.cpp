#include "rf/doppler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

Orbit test_orbit() {
  return Orbit::circular_with_period(Duration::minutes(90), deg2rad(85.0),
                                     0.0, deg2rad(-30.0));
}

TEST(Emitter, EmissionWindow) {
  Emitter e;
  e.start = TimePoint::at(Duration::minutes(10));
  e.duration = Duration::minutes(4);
  EXPECT_FALSE(e.emitting_at(TimePoint::at(Duration::minutes(9.9))));
  EXPECT_TRUE(e.emitting_at(TimePoint::at(Duration::minutes(10))));
  EXPECT_TRUE(e.emitting_at(TimePoint::at(Duration::minutes(13.9))));
  EXPECT_FALSE(e.emitting_at(TimePoint::at(Duration::minutes(14))));
  Emitter forever;
  forever.start = TimePoint::origin();
  EXPECT_TRUE(forever.emitting_at(TimePoint::at(Duration::hours(10000))));
}

TEST(Emitter, EciPositionRespectsRotationFlag) {
  Emitter e;
  e.position = GeoPoint::from_degrees(30.0, 40.0);
  const auto fixed = e.position_eci(Duration::hours(1), false);
  EXPECT_NEAR((fixed - geo_to_ecef(e.position)).norm(), 0.0, 1e-12);
  const auto rotated = e.position_eci(Duration::hours(1), true);
  EXPECT_GT((rotated - fixed).norm(), 100.0);
  EXPECT_NEAR(rotated.norm(), kEarthRadiusKm, 1e-9);
  // Velocity magnitude = ω·R·cos(lat).
  const auto v = e.velocity_eci(Duration::zero(), true);
  EXPECT_NEAR(v.norm(),
              kEarthRotationRadPerS * kEarthRadiusKm * std::cos(deg2rad(30.0)),
              1e-9);
  EXPECT_EQ(e.velocity_eci(Duration::zero(), false), Vec3{});
}

TEST(DopplerModel, ZeroShiftAtClosestApproach) {
  // When the satellite passes directly over the emitter, the range rate
  // vanishes and the received frequency equals the carrier.
  const auto orbit = test_orbit();
  const DopplerModel model(false);
  Emitter e;
  // Sub-satellite point at u = 0 (ascending node): lat 0, lon 0.
  e.position = GeoPoint::from_degrees(0.0, 0.0);
  // Satellite reaches u = 0 at t = 30/360 * period (started at u = -30°).
  const auto t_over = Duration::minutes(90.0 * 30.0 / 360.0);
  const auto state = orbit.state_at(t_over);
  EXPECT_NEAR(model.range_rate_km_s(state, e.position, t_over), 0.0, 1e-6);
  EXPECT_NEAR(model.predicted_frequency_hz(state, e.position, 400e6, t_over),
              400e6, 1.0);
}

TEST(DopplerModel, ApproachingRaisesFrequencyRecedingLowers) {
  const auto orbit = test_orbit();
  const DopplerModel model(false);
  Emitter e;
  e.position = GeoPoint::from_degrees(0.0, 0.0);
  const auto t_over = Duration::minutes(90.0 * 30.0 / 360.0);
  const auto before = t_over - Duration::minutes(2);
  const auto after = t_over + Duration::minutes(2);
  const double f_before = model.predicted_frequency_hz(
      orbit.state_at(before), e.position, 400e6, before);
  const double f_after = model.predicted_frequency_hz(
      orbit.state_at(after), e.position, 400e6, after);
  EXPECT_GT(f_before, 400e6);
  EXPECT_LT(f_after, 400e6);
  // LEO Doppler magnitude at 400 MHz is on the order of kHz.
  EXPECT_GT(f_before - 400e6, 1e3);
  EXPECT_LT(f_before - 400e6, 2e4);
}

TEST(DopplerModel, ShiftScalesWithCarrier) {
  const auto orbit = test_orbit();
  const DopplerModel model(false);
  const auto t = Duration::minutes(3.0);
  const auto state = orbit.state_at(t);
  const GeoPoint p = GeoPoint::from_degrees(0.0, 0.0);
  const double s400 = model.predicted_frequency_hz(state, p, 400e6, t) - 400e6;
  const double s800 = model.predicted_frequency_hz(state, p, 800e6, t) - 800e6;
  EXPECT_NEAR(s800, 2.0 * s400, std::abs(s400) * 1e-9);
  EXPECT_THROW(
      (void)model.predicted_frequency_hz(state, p, 0.0, t),
      PreconditionError);
}

TEST(DopplerModel, TakeMeasurementsFiltersFootprintAndEmission) {
  const auto orbit = test_orbit();
  const DopplerModel model(false);
  Rng rng(1);
  Emitter e;
  e.position = GeoPoint::from_degrees(0.0, 0.0);
  e.start = TimePoint::at(Duration::minutes(4));
  e.duration = Duration::minutes(6);
  // Satellite is within 18° of the emitter between u = -18°..18°, i.e.
  // t in [3, 12] min; emission limits it to [4, 10) min.
  const auto epochs = measurement_epochs(Duration::zero(),
                                         Duration::minutes(20), 41);
  const auto ms = model.take_measurements(orbit, {0, 3}, e, epochs,
                                          deg2rad(18.0), 2.0, rng);
  ASSERT_FALSE(ms.empty());
  for (const auto& m : ms) {
    EXPECT_GE(m.time.to_minutes(), 4.0 - 1e-9);
    EXPECT_LT(m.time.to_minutes(), 10.0 + 1e-9);
    EXPECT_EQ(m.satellite, (SatelliteId{0, 3}));
    EXPECT_DOUBLE_EQ(m.sigma_hz, 2.0);
    EXPECT_NEAR(m.frequency_hz, 400e6, 2e4);
  }
}

TEST(DopplerModel, MeasurementNoiseHasRequestedSigma) {
  const auto orbit = test_orbit();
  const DopplerModel model(false);
  Rng rng(7);
  Emitter e;
  e.position = GeoPoint::from_degrees(0.0, 0.0);
  e.start = TimePoint::origin();
  const auto t = Duration::minutes(7.0);
  double sum = 0.0, sum2 = 0.0;
  const int n = 4000;
  const double truth = model.predicted_frequency_hz(orbit.state_at(t),
                                                    e.position, 400e6, t);
  for (int i = 0; i < n; ++i) {
    const auto ms = model.take_measurements(orbit, {0, 0}, e, {t},
                                            deg2rad(18.0), 3.0, rng);
    ASSERT_EQ(ms.size(), 1u);
    const double d = ms[0].frequency_hz - truth;
    sum += d;
    sum2 += d * d;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum2 / n), 3.0, 0.15);
}

TEST(MeasurementEpochs, EvenSpacing) {
  const auto ep = measurement_epochs(Duration::minutes(2),
                                     Duration::minutes(4), 5);
  ASSERT_EQ(ep.size(), 5u);
  EXPECT_DOUBLE_EQ(ep.front().to_minutes(), 2.0);
  EXPECT_DOUBLE_EQ(ep.back().to_minutes(), 4.0);
  EXPECT_DOUBLE_EQ(ep[2].to_minutes(), 3.0);
  EXPECT_THROW((void)measurement_epochs(Duration::zero(), Duration::zero(), 2),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
