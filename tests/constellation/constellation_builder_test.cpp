// Parameterized Walker-shell builder (ISSUE 8 tentpole): preset design
// points, i:T/P/F validation, multi-shell plane layout, the shell-aware
// router / plane-capacity factories, and the on-disk shell format
// round-trip.
#include "orbit/constellation_builder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/error.hpp"
#include "fault/plane_capacity.hpp"
#include "net/router.hpp"

namespace oaq {
namespace {

WalkerShell small_shell() {
  WalkerShell s;
  s.total_sats = 6;
  s.planes = 2;
  s.phasing = 1;
  s.altitude_km = 600.0;
  s.inclination_deg = 97.0;
  return s;
}

TEST(ConstellationBuilder, PresetCatalogueBuildsAtPublishedScale) {
  struct Expect {
    std::string_view name;
    int planes;
    int active;
  };
  const Expect expect[] = {
      {"reference", 7, 98},   {"kepler", 7, 140},     {"iridium-next", 6, 66},
      {"oneweb", 18, 648},    {"starlink", 72, 1584},
  };
  ASSERT_EQ(constellation_preset_names().size(), std::size(expect));
  for (const auto& e : expect) {
    const Constellation c = ConstellationBuilder::preset(e.name).build();
    EXPECT_EQ(c.num_planes(), e.planes) << e.name;
    EXPECT_EQ(c.total_active(), e.active) << e.name;
    EXPECT_EQ(c.num_shells(), 1) << e.name;
  }
  EXPECT_THROW((void)constellation_preset("galileo"), std::invalid_argument);
}

TEST(ConstellationBuilder, ReferencePresetEqualsPaperDesignExactly) {
  // The "reference" preset must lower to the same ConstellationDesign the
  // engine has always defaulted to — field for field, bit for bit — so
  // preset-driven runs reproduce the paper's golden bytes.
  const ConstellationDesign got =
      design_from_shell(constellation_preset("reference")[0]);
  const ConstellationDesign want{};
  EXPECT_EQ(got.num_planes, want.num_planes);
  EXPECT_EQ(got.sats_per_plane, want.sats_per_plane);
  EXPECT_EQ(got.in_orbit_spares_per_plane, want.in_orbit_spares_per_plane);
  EXPECT_EQ(got.period.to_seconds(), want.period.to_seconds());
  EXPECT_EQ(got.coverage_time.to_seconds(), want.coverage_time.to_seconds());
  EXPECT_EQ(got.inclination_rad, want.inclination_rad);
  EXPECT_EQ(got.raan_spread_rad, want.raan_spread_rad);
  EXPECT_EQ(got.phasing_factor, want.phasing_factor);
  EXPECT_EQ(got.j2, want.j2);
}

TEST(ConstellationBuilder, StarAndDeltaSetRaanSpread) {
  WalkerShell star = small_shell();
  EXPECT_EQ(design_from_shell(star).raan_spread_rad, kPi);
  WalkerShell delta = small_shell();
  delta.star = false;
  EXPECT_EQ(design_from_shell(delta).raan_spread_rad, 2.0 * kPi);
}

TEST(ConstellationBuilder, AltitudeDerivesPeriodUnlessOverridden) {
  const WalkerShell s = small_shell();
  const Duration derived = design_from_shell(s).period;
  EXPECT_EQ(derived.to_seconds(),
            Orbit::circular(s.altitude_km, deg2rad(s.inclination_deg), 0.0, 0.0)
                .period()
                .to_seconds());
  WalkerShell fixed = s;
  fixed.period_min = 90.0;
  EXPECT_EQ(design_from_shell(fixed).period.to_minutes(), 90.0);
}

TEST(ConstellationBuilder, RejectsMalformedShells) {
  const auto reject = [](auto&& mutate) {
    WalkerShell s = small_shell();
    mutate(s);
    EXPECT_THROW((void)design_from_shell(s), std::invalid_argument);
  };
  reject([](WalkerShell& s) { s.planes = 0; });            // zero planes
  reject([](WalkerShell& s) { s.total_sats = 0; });        // zero satellites
  reject([](WalkerShell& s) { s.total_sats = 7; });        // T % P != 0
  reject([](WalkerShell& s) { s.phasing = s.planes; });    // F >= P
  reject([](WalkerShell& s) { s.phasing = -1; });          // F < 0
  reject([](WalkerShell& s) { s.altitude_km = 0.0; });
  reject([](WalkerShell& s) { s.inclination_deg = 0.0; });
  reject([](WalkerShell& s) { s.inclination_deg = 181.0; });
  reject([](WalkerShell& s) { s.footprint_deg = 0.0; });
  reject([](WalkerShell& s) { s.footprint_deg = 91.0; });
  reject([](WalkerShell& s) { s.spares_per_plane = -1; });
  reject([](WalkerShell& s) { s.period_min = -1.0; });
  // The builder validates eagerly.
  WalkerShell bad = small_shell();
  bad.total_sats = 7;
  EXPECT_THROW(ConstellationBuilder().add_shell(bad), std::invalid_argument);
}

TEST(ConstellationBuilder, MultiShellLayoutIsContiguous) {
  WalkerShell low = small_shell();  // 2 planes × 3
  WalkerShell high = small_shell();
  high.planes = 3;
  high.total_sats = 12;  // 3 planes × 4
  high.altitude_km = 1200.0;
  high.footprint_deg = 25.0;
  const Constellation c =
      ConstellationBuilder().add_shell(low).add_shell(high).build();

  EXPECT_EQ(c.num_shells(), 2);
  EXPECT_EQ(c.num_planes(), 5);
  EXPECT_EQ(c.total_active(), 6 + 12);
  EXPECT_EQ(c.shell_first_plane(0), 0);
  EXPECT_EQ(c.shell_first_plane(1), 2);
  EXPECT_EQ(c.shell_plane_count(1), 3);
  EXPECT_EQ(c.shell_of_plane(1), 0);
  EXPECT_EQ(c.shell_of_plane(2), 1);
  EXPECT_EQ(c.shell_of_plane(4), 1);
  // Global plane indices, shell-local geometry.
  EXPECT_EQ(c.plane(3).plane_index(), 3);
  EXPECT_EQ(c.plane(3).active_count(), 4);
  EXPECT_EQ(c.plane(0).active_count(), 3);
  // Per-plane footprints follow the owning shell.
  EXPECT_NE(c.footprint_of_plane(0).angular_radius_rad(),
            c.footprint_of_plane(2).angular_radius_rad());
  EXPECT_EQ(&c.footprint_of_plane(0), &c.footprint());
  // max_period spans shells; the higher shell orbits slower.
  EXPECT_EQ(c.max_period().to_seconds(),
            c.shell_design(1).period.to_seconds());
  EXPECT_GT(c.max_period(), c.shell_design(0).period);
}

TEST(ConstellationBuilder, RejectsPlaneRangeOverflow) {
  // Two Starlink-class shells exceed the 128-plane addressable range.
  ConstellationBuilder b;
  b.add_shell(constellation_preset("starlink")[0]);
  b.add_shell(constellation_preset("starlink")[0]);
  EXPECT_THROW((void)b.build(), PreconditionError);
}

TEST(ConstellationBuilder, RouterAndDependabilityAreShellAware) {
  WalkerShell low = small_shell();  // 2 planes × 3
  WalkerShell high = small_shell();
  high.planes = 3;
  high.total_sats = 12;  // 3 planes × 4
  high.spares_per_plane = 1;
  const Constellation c =
      ConstellationBuilder().add_shell(low).add_shell(high).build();

  // Per-plane routing tables size to the owning shell's ring.
  const PlaneRouter r0 = PlaneRouter::for_plane(c, 1);
  EXPECT_EQ(r0.active_count(), 3);
  EXPECT_EQ(r0.next_visitor({1, 0}), (SatelliteId{1, 2}));
  const PlaneRouter r1 = PlaneRouter::for_plane(c, 4);
  EXPECT_EQ(r1.active_count(), 4);
  EXPECT_EQ(r1.previous_visitor({4, 3}), (SatelliteId{4, 0}));

  // Plane-capacity math follows the shell design, not the 14+2 reference.
  const PlaneDependability dep = plane_dependability_of(c.shell_design(1));
  EXPECT_EQ(dep.design_active, 4);
  EXPECT_EQ(dep.policy.in_orbit_spares, 1);
  EXPECT_EQ(dep.policy.ground_threshold, 1);  // max(1, 4 - 4) floors at 1
  const PlaneDependability ref = plane_dependability_of(ConstellationDesign{});
  EXPECT_EQ(ref.design_active, 14);
  EXPECT_EQ(ref.policy.in_orbit_spares, 2);
  EXPECT_EQ(ref.policy.ground_threshold, 10);  // the paper's η
}

TEST(ConstellationFormat, WriteParseRoundTripsBitExactly) {
  std::vector<WalkerShell> shells = {small_shell()};
  WalkerShell second;
  second.total_sats = 66;
  second.planes = 6;
  second.phasing = 2;
  second.altitude_km = 780.25;  // non-integral fields must survive
  second.inclination_deg = 86.4;
  second.star = false;
  second.spares_per_plane = 1;
  second.footprint_deg = 22.5;
  second.period_min = 100.4375;
  shells.push_back(second);

  std::ostringstream os;
  write_constellation(shells, os);
  std::istringstream is(os.str());
  const std::vector<WalkerShell> back = parse_constellation(is);
  ASSERT_EQ(back.size(), shells.size());
  EXPECT_EQ(back[0], shells[0]);
  EXPECT_EQ(back[1], shells[1]);
}

TEST(ConstellationFormat, ParsesCommentsAndOptionalPeriod) {
  std::istringstream is(
      "# two-shell design\n"
      "shell 6 2 1 600 97 star 0 18\n"
      "\n"
      "shell 66 6 1 780 86.4 delta 1 22.5 period 100  # slow shell\n");
  const auto shells = parse_constellation(is);
  ASSERT_EQ(shells.size(), 2u);
  EXPECT_EQ(shells[0].total_sats, 6);
  EXPECT_TRUE(shells[0].star);
  EXPECT_EQ(shells[0].period_min, 0.0);
  EXPECT_FALSE(shells[1].star);
  EXPECT_EQ(shells[1].spares_per_plane, 1);
  EXPECT_EQ(shells[1].period_min, 100.0);
}

TEST(ConstellationFormat, ParseErrorsNameTheLine) {
  const auto expect_error_mentions = [](const std::string& text,
                                        const std::string& needle) {
    std::istringstream is(text);
    try {
      (void)parse_constellation(is);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_error_mentions("orbit 6 2 1 600 97 star 0 18\n", "line 1");
  expect_error_mentions("shell 6 2 1 600 97 star 0\n", "line 1");  // missing ψ
  expect_error_mentions("shell 6 2 1 600 97 polar 0 18\n", "line 1");
  expect_error_mentions("shell 6 2 1 600 97 star 0 18 extra\n", "line 1");
  expect_error_mentions("shell 7 2 1 600 97 star 0 18\n", "line 1");  // T % P
  expect_error_mentions("shell 6.5 2 1 600 97 star 0 18\n", "line 1");
  expect_error_mentions("# only comments\n", "no shells");
  expect_error_mentions("shell 6 2 1 600 97 star 0 18\nshell 6 2 9 600 97 star 0 18\n",
                        "line 2");  // F >= P
}

}  // namespace
}  // namespace oaq
