// Sharded-simulator campaigns at constellation scale (ISSUE 8 tentpole):
// the pooled per-shard DES context must be byte-identical to the scalar
// per-episode oracle — results, traces, and metrics — for any job count,
// on the paper's reference preset, a published mega-constellation design
// point, and a multi-shell composition.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/plan.hpp"
#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"
#include "orbit/constellation_builder.hpp"

namespace oaq {
namespace {

QosSimulationConfig geometric_config(const Constellation& c) {
  QosSimulationConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  // More episodes than shards, so every shard drains several episodes
  // through one pooled context — the reset path is what's under test.
  cfg.episodes = 130;
  cfg.seed = 19;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  return cfg;
}

struct RunOutput {
  SimulatedQos qos;
  std::string trace;
  std::string metrics;
};

RunOutput run(QosSimulationConfig cfg) {
  TraceCollector trace;
  MetricsRegistry metrics;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  RunOutput out;
  out.qos = simulate_qos(cfg);
  std::ostringstream os;
  trace.write_jsonl(os);
  out.trace = os.str();
  std::ostringstream ms;
  metrics.write_json(ms);
  out.metrics = ms.str();
  return out;
}

void expect_equal(const RunOutput& got, const RunOutput& want,
                  const std::string& label) {
  for (int y = 0; y <= 3; ++y) {
    EXPECT_EQ(got.qos.level_pmf.probability(y),
              want.qos.level_pmf.probability(y))
        << label << " level " << y;
  }
  EXPECT_EQ(got.qos.duplicates, want.qos.duplicates) << label;
  EXPECT_EQ(got.qos.unresolved, want.qos.unresolved) << label;
  EXPECT_EQ(got.qos.untimely, want.qos.untimely) << label;
  EXPECT_EQ(got.qos.mean_chain_length, want.qos.mean_chain_length) << label;
  EXPECT_EQ(got.qos.max_chain_length, want.qos.max_chain_length) << label;
  EXPECT_EQ(got.trace, want.trace) << label;
  EXPECT_EQ(got.metrics, want.metrics) << label;
}

Constellation two_shell_constellation() {
  WalkerShell low;
  low.total_sats = 10;
  low.planes = 1;
  low.phasing = 0;
  low.altitude_km = 550.0;
  low.inclination_deg = 90.0;
  WalkerShell high = low;
  high.total_sats = 8;
  high.planes = 2;
  high.phasing = 1;
  high.altitude_km = 1200.0;
  high.footprint_deg = 25.0;
  return ConstellationBuilder().add_shell(low).add_shell(high).build();
}

TEST(PooledEpisodes, MatchesScalarOracleByteForByte) {
  // The pooled path is a wall-clock optimization only: disabling it (the
  // scalar per-episode oracle) must reproduce results, traces, and
  // metrics byte-for-byte on the paper's reference design.
  const Constellation c = ConstellationBuilder::preset("reference").build();
  QosSimulationConfig cfg = geometric_config(c);
  cfg.jobs = 4;
  cfg.pooled_episodes = true;
  const RunOutput pooled = run(cfg);
  cfg.pooled_episodes = false;
  const RunOutput scalar = run(cfg);
  EXPECT_GT(pooled.qos.episodes, 0);
  expect_equal(pooled, scalar, "pooled vs scalar");
}

TEST(PooledEpisodes, MatchesScalarOracleUnderFaultPlan) {
  // The injector must arm at the episode's jittered start (the scalar
  // engine's signal-start argument), not the run-wide anchor — a plan
  // with windowed clauses pins that alignment.
  WalkerShell shell;
  shell.total_sats = 10;
  shell.planes = 1;
  shell.phasing = 0;
  shell.inclination_deg = 90.0;
  const Constellation c = ConstellationBuilder().add_shell(shell).build();
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 2}, Duration::minutes(1)));
  plan.add(FaultPlan::recover({0, 2}, Duration::minutes(12)));
  plan.add(FaultPlan::delay_spike(2.0, Duration::minutes(0),
                                  Duration::minutes(20)));
  plan.add(FaultPlan::burst_loss(0.3, Duration::minutes(2),
                                 Duration::minutes(9)));
  QosSimulationConfig cfg = geometric_config(c);
  cfg.fault_plan = &plan;
  cfg.check_invariants = true;
  cfg.jobs = 4;
  cfg.pooled_episodes = true;
  const RunOutput pooled = run(cfg);
  cfg.pooled_episodes = false;
  const RunOutput scalar = run(cfg);
  expect_equal(pooled, scalar, "pooled vs scalar under plan");
  EXPECT_EQ(pooled.qos.invariant_violations, 0);
}

TEST(PooledEpisodes, ResultsBitIdenticalAcrossJobsOnPresets) {
  // The acceptance pin: simulate trace+metrics bytes identical at jobs
  // 1/4/8 for the 7×14+2 reference and the 6×11 Iridium-NEXT presets.
  for (const char* preset : {"reference", "iridium-next"}) {
    const Constellation c = ConstellationBuilder::preset(preset).build();
    RunOutput base;
    for (const int jobs : {1, 4, 8}) {
      QosSimulationConfig cfg = geometric_config(c);
      cfg.jobs = jobs;
      const RunOutput r = run(cfg);
      if (jobs == 1) {
        base = r;
        EXPECT_EQ(r.qos.episodes, 130) << preset;
        continue;
      }
      expect_equal(r, base,
                   std::string(preset) + " jobs " + std::to_string(jobs));
    }
  }
}

TEST(PooledEpisodes, MultiShellResultsBitIdenticalAcrossJobs) {
  // Shell-aware hot path: per-plane footprints in the visibility sweep
  // and max_period phase jitter, under the pooled runner at any jobs.
  const Constellation c = two_shell_constellation();
  RunOutput base;
  for (const int jobs : {1, 4, 8}) {
    QosSimulationConfig cfg = geometric_config(c);
    cfg.jobs = jobs;
    const RunOutput r = run(cfg);
    if (jobs == 1) {
      base = r;
      continue;
    }
    expect_equal(r, base, "two-shell jobs " + std::to_string(jobs));
  }
}

TEST(PooledEpisodes, WarmSharedCacheHitAccountingPreserved) {
  // The pooled context must not change the visibility query pattern: with
  // the run-covering quantum, all but each shard's first query hit.
  const Constellation c = ConstellationBuilder::preset("iridium-next").build();
  QosSimulationConfig cfg = geometric_config(c);
  cfg.jobs = 1;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  (void)simulate_qos(cfg);
  const auto& counters = metrics.counters();
  ASSERT_TRUE(counters.contains("visibility.pass_queries"));
  ASSERT_TRUE(counters.contains("visibility.pass_hits"));
  EXPECT_GT(counters.at("visibility.pass_queries"), 0);
  EXPECT_GT(counters.at("visibility.pass_hits"), 0);
  EXPECT_GE(counters.at("visibility.pass_queries"),
            counters.at("visibility.pass_hits"));
}

TEST(GeometricCampaign, PresetReplicationsBitIdenticalAcrossJobs) {
  const Constellation c = ConstellationBuilder::preset("iridium-next").build();
  CampaignConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.k = 11;
  cfg.signal_arrival_rate = Rate::per_hour(4.0);
  cfg.horizon = Duration::hours(3);
  cfg.seed = 9;
  cfg.replications = 3;
  CampaignResult base;
  for (const int jobs : {1, 4, 8}) {
    cfg.jobs = jobs;
    const CampaignResult r = run_campaign(cfg);
    if (jobs == 1) {
      base = r;
      EXPECT_GT(r.signals, 0);
      continue;
    }
    EXPECT_EQ(r.signals, base.signals);
    EXPECT_EQ(r.delivered, base.delivered);
    EXPECT_EQ(r.untimely, base.untimely);
    EXPECT_EQ(r.mean_latency_min, base.mean_latency_min);
    for (int y = 0; y <= 3; ++y) {
      EXPECT_EQ(r.levels.probability(y), base.levels.probability(y));
    }
  }
}

}  // namespace
}  // namespace oaq
