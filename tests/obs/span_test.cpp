// SpanArena / SpanProfiler unit tests plus the jobs-independence
// contract: the span tree's structure, counts, and items are bit-identical
// for any worker count (only wall times vary), pinned by byte-comparing
// the zero-wall Chrome JSON export across jobs 1, 4, 8.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

TEST(SpanArena, AggregatesRepeatedPathsIntoOneNode) {
  SpanArena arena;
  for (int i = 0; i < 100; ++i) {
    arena.enter("outer");
    arena.enter("inner");
    arena.add_items(2);
    arena.exit();
    arena.exit();
  }
  ASSERT_TRUE(arena.balanced());
  ASSERT_EQ(arena.nodes().size(), 2u);  // one node per path, not per entry
  const auto& outer = arena.nodes()[0];
  const auto& inner = arena.nodes()[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.count, 100);
  EXPECT_EQ(outer.first_child, 1);
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.count, 100);
  EXPECT_EQ(inner.items, 200);
  EXPECT_GE(inner.wall_ns, 0);
  EXPECT_GE(outer.wall_ns, inner.wall_ns);  // inclusive time nests
}

TEST(SpanArena, SameNameUnderDifferentParentsIsDifferentNode) {
  SpanArena arena;
  arena.enter("a");
  arena.enter("work");
  arena.exit();
  arena.exit();
  arena.enter("b");
  arena.enter("work");
  arena.exit();
  arena.exit();
  ASSERT_EQ(arena.nodes().size(), 4u);  // a, a/work, b, b/work
  EXPECT_EQ(arena.nodes()[1].parent, 0);
  EXPECT_EQ(arena.nodes()[3].parent, 2);
}

TEST(SpanArena, SiblingOrderIsDiscoveryOrder) {
  SpanArena arena;
  for (const char* name : {"second", "first", "second", "third"}) {
    arena.enter(name);
    arena.exit();
  }
  ASSERT_EQ(arena.nodes().size(), 3u);
  EXPECT_STREQ(arena.nodes()[0].name, "second");
  EXPECT_EQ(arena.nodes()[0].count, 2);
  EXPECT_STREQ(arena.nodes()[1].name, "first");
  EXPECT_STREQ(arena.nodes()[2].name, "third");
}

TEST(SpanArena, LongNamesTruncateWithoutAllocatingOrColliding) {
  SpanArena arena;
  const std::string long_name(kSpanNameCapacity + 20, 'x');
  arena.enter(long_name);
  arena.exit();
  ASSERT_EQ(arena.nodes().size(), 1u);
  EXPECT_EQ(std::string(arena.nodes()[0].name).size(), kSpanNameCapacity);
  // Re-entering the same long name reuses the truncated node.
  arena.enter(long_name);
  arena.exit();
  EXPECT_EQ(arena.nodes().size(), 1u);
  EXPECT_EQ(arena.nodes()[0].count, 2);
}

TEST(SpanArena, ClearResetsRootsAndNodes) {
  SpanArena arena;
  arena.enter("root");
  arena.exit();
  arena.clear();
  EXPECT_TRUE(arena.nodes().empty());
  arena.enter("other");
  arena.exit();
  ASSERT_EQ(arena.nodes().size(), 1u);
  EXPECT_STREQ(arena.nodes()[0].name, "other");
}

TEST(ScopedSpan, NullArenaIsANoOp) {
  const ScopedSpan span(nullptr, "ignored");  // must not crash
}

TEST(SpanProfiler, PrepareDropsPreviousRun) {
  SpanProfiler profiler;
  profiler.prepare(2);
  profiler.shard_arena(0)->enter("stale");
  profiler.shard_arena(0)->exit();
  profiler.prepare(3);
  EXPECT_EQ(profiler.shards(), 3);
  EXPECT_TRUE(profiler.shard_arena(0)->nodes().empty());
}

TEST(SpanProfiler, ChromeExportShape) {
  SpanProfiler profiler;
  profiler.prepare(1);
  {
    const ScopedSpan root(profiler.main_arena(), "root");
    const ScopedSpan child(profiler.main_arena(), "child");
  }
  {
    const ScopedSpan shard(profiler.shard_arena(0), "shard");
  }
  std::ostringstream os;
  profiler.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard-0\""), std::string::npos);
}

/// Zero-wall span export of one simulate_qos run.
std::string span_export(int jobs, bool batch) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 2000;
  cfg.seed = 11;
  cfg.jobs = jobs;
  cfg.batch_episodes = batch;
  SpanProfiler profiler;
  cfg.spans = &profiler;
  const SimulatedQos qos = simulate_qos(cfg);
  EXPECT_EQ(qos.episodes, cfg.episodes);
  std::ostringstream os;
  profiler.write_chrome_json(os, /*zero_wall=*/true);
  return os.str();
}

TEST(SpanDeterminism, TreeIsByteIdenticalAcrossWorkerCounts) {
  for (const bool batch : {true, false}) {
    const std::string serial = span_export(1, batch);
    EXPECT_EQ(serial, span_export(4, batch)) << "batch=" << batch;
    EXPECT_EQ(serial, span_export(8, batch)) << "batch=" << batch;
    // The tree is non-trivial: harness phases plus per-shard work.
    EXPECT_NE(serial.find("simulate_qos"), std::string::npos);
    EXPECT_NE(serial.find("merge"), std::string::npos);
    EXPECT_NE(serial.find(batch ? "prologue" : "episodes"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace oaq
