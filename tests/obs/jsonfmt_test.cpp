// JSON formatting edge cases (ISSUE 7 satellite): non-finite doubles,
// metric-name escaping, shortest round-trip numbers, and MiniJson
// parse/re-emit stability over the emitters' actual output.
#include "obs/jsonfmt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/ledger.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace oaq {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  write_json_double(os, v);
  return os.str();
}

std::string quote(std::string_view s) {
  std::ostringstream os;
  write_json_string(os, s);
  return os.str();
}

TEST(WriteJsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(fmt(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(fmt(-std::numeric_limits<double>::infinity()), "null");
}

TEST(WriteJsonDouble, ShortestRoundTrip) {
  EXPECT_EQ(fmt(0.0), "0");
  EXPECT_EQ(fmt(-1.5), "-1.5");
  EXPECT_EQ(fmt(0.1), "0.1");  // not 0.1000000000000000055511...
  // Round-trip: parsing the emitted text recovers the exact bits.
  for (const double v : {1.0 / 3.0, 6.02214076e23, 5e-324, -0.0,
                         std::numeric_limits<double>::max()}) {
    const std::string text = fmt(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << text;
  }
}

TEST(WriteJsonString, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(quote("plain"), "\"plain\"");
  EXPECT_EQ(quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(quote(std::string("a\nb\tc\x01") + "d"),
            "\"a\\nb\\tc\\u0001d\"");
}

TEST(WriteJsonString, MetricNamesWithHostileCharacters) {
  MetricsRegistry registry;
  registry.add("sim.queue\"x\\y\n", 3);
  std::ostringstream os;
  registry.write_json(os);
  const auto doc = MiniJson::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const MiniJson* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->object.size(), 1u);
  EXPECT_EQ(counters->object[0].first, "sim.queue\"x\\y\n");
  EXPECT_EQ(counters->object[0].second.number, 3.0);
}

TEST(MiniJson, ParsesScalarsArraysAndNestedObjects) {
  const auto doc = MiniJson::parse(
      R"({"a":1.5,"b":"x","c":[true,false,null],"d":{"e":-2}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->number, 1.5);
  EXPECT_EQ(doc->find("b")->text, "x");
  ASSERT_EQ(doc->find("c")->array.size(), 3u);
  EXPECT_TRUE(doc->find("c")->array[0].boolean);
  EXPECT_EQ(doc->find("c")->array[2].kind, MiniJson::Kind::kNull);
  EXPECT_EQ(doc->find("d")->find("e")->number, -2.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(MiniJson, DecodesEscapesAndRejectsGarbage) {
  const auto doc = MiniJson::parse(R"({"k":"a\"\\\nAé"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("k")->text, "a\"\\\nA\xc3\xa9");
  EXPECT_FALSE(MiniJson::parse("{").has_value());
  EXPECT_FALSE(MiniJson::parse(R"({"a":})").has_value());
  EXPECT_FALSE(MiniJson::parse(R"({"a":1} trailing)").has_value());
}

TEST(MiniJson, RoundTripsTheEmittersOutput) {
  // Manifest emitter → parser: field order, digest, nested maps.
  RunManifest manifest;
  manifest.tool = "simulate";
  manifest.seed = 7;
  manifest.jobs = 4;
  manifest.config.emplace_back("k", "9");
  manifest.config.emplace_back("path", "a\"b\\c");
  manifest.artifacts.emplace_back("trace", "t.jsonl");
  std::ostringstream manifest_os;
  manifest.write_json(manifest_os);
  const auto mdoc = MiniJson::parse(manifest_os.str());
  ASSERT_TRUE(mdoc.has_value());
  EXPECT_EQ(mdoc->find("schema")->text, "oaq-manifest-v1");
  EXPECT_EQ(mdoc->find("seed")->number, 7.0);
  EXPECT_EQ(mdoc->find("config")->find("path")->text, "a\"b\\c");
  EXPECT_EQ(mdoc->find("config_digest")->text.size(), 16u);

  // Ledger emitter → parser.
  EpisodeLedger ledger;
  ledger.reserve(4);
  ledger.record_drop(2, DropReason::kLoss);
  ledger.record_fault(-1);
  std::ostringstream ledger_os;
  ledger.write_json(ledger_os);
  const auto ldoc = MiniJson::parse(ledger_os.str());
  ASSERT_TRUE(ldoc.has_value());
  EXPECT_EQ(ldoc->find("schema")->text, "oaq-ledger-v1");
  ASSERT_EQ(ldoc->find("rows")->array.size(), 1u);  // all-zero rows skipped
  EXPECT_EQ(ldoc->find("rows")->array[0].find("ep")->number, 2.0);
  EXPECT_EQ(ldoc->find("global")->find("faults")->number, 1.0);

  // Stability: parse(emit(parse(text))) sees identical structure — spot
  // check by re-finding every manifest key.
  for (const auto& [key, value] : mdoc->object) {
    EXPECT_NE(mdoc->find(key), nullptr) << key;
  }
}

}  // namespace
}  // namespace oaq
