// Determinism contract of the observability layer: for a fixed seed, the
// exported trace JSONL and the merged metrics registry are BIT-identical
// for every jobs value, and attaching observers never perturbs results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oaq {
namespace {

QosSimulationConfig sim_config(int jobs) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 1500;
  cfg.seed = 97;
  cfg.mu = Rate::per_minute(0.3);
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(30);
  cfg.protocol.computation_cap = Duration::seconds(6);
  cfg.protocol.crosslink_loss_probability = 0.05;  // exercise drop events
  cfg.jobs = jobs;
  return cfg;
}

std::string traced_jsonl(int jobs, MetricsRegistry* metrics) {
  TraceCollector collector;
  auto cfg = sim_config(jobs);
  cfg.trace = &collector;
  cfg.metrics = metrics;
  (void)simulate_qos(cfg);
  std::ostringstream os;
  collector.write_jsonl(os);
  return os.str();
}

TEST(TraceDeterminism, SimulateQosJsonlBitIdenticalAcrossJobs) {
  MetricsRegistry serial_metrics;
  const std::string serial = traced_jsonl(1, &serial_metrics);
  EXPECT_FALSE(serial.empty());
  for (const int jobs : {2, 4, 8}) {
    MetricsRegistry metrics;
    const std::string parallel = traced_jsonl(jobs, &metrics);
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
    // The merged registries must also match exactly: counters are
    // integral and stats fold in shard order on both sides.
    EXPECT_EQ(metrics.counters(), serial_metrics.counters())
        << "jobs=" << jobs;
    ASSERT_EQ(metrics.stats().size(), serial_metrics.stats().size());
    for (const auto& [name, stat] : serial_metrics.stats()) {
      const RunningStat& other = metrics.stat(name);
      EXPECT_EQ(stat.count(), other.count()) << name;
      EXPECT_EQ(stat.mean(), other.mean()) << name;
      EXPECT_EQ(stat.variance(), other.variance()) << name;
      EXPECT_EQ(stat.min(), other.min()) << name;
      EXPECT_EQ(stat.max(), other.max()) << name;
    }
  }
}

TEST(TraceDeterminism, ObserversDoNotPerturbResults) {
  const SimulatedQos plain = simulate_qos(sim_config(2));

  TraceCollector collector;
  MetricsRegistry metrics;
  ReduceProfile profile;
  auto cfg = sim_config(2);
  cfg.trace = &collector;
  cfg.metrics = &metrics;
  cfg.profile = &profile;
  const SimulatedQos observed = simulate_qos(cfg);

  EXPECT_EQ(plain.level_pmf.weights(), observed.level_pmf.weights());
  EXPECT_EQ(plain.duplicates, observed.duplicates);
  EXPECT_EQ(plain.unresolved, observed.unresolved);
  EXPECT_EQ(plain.untimely, observed.untimely);
  EXPECT_EQ(plain.mean_chain_length, observed.mean_chain_length);
  EXPECT_EQ(plain.max_chain_length, observed.max_chain_length);
  EXPECT_GT(collector.total_recorded(), 0u);
  EXPECT_EQ(profile.shards_used, 64);
}

TEST(TraceDeterminism, MetricsAgreeWithResultCounters) {
  TraceCollector collector;
  MetricsRegistry metrics;
  auto cfg = sim_config(4);
  cfg.trace = &collector;
  cfg.metrics = &metrics;
  const SimulatedQos r = simulate_qos(cfg);

  EXPECT_EQ(metrics.counter("episodes"), r.episodes);
  EXPECT_EQ(metrics.counter("alerts.duplicate_episodes"), r.duplicates);
  EXPECT_EQ(metrics.counter("episodes.unresolved"), r.unresolved);
  EXPECT_EQ(metrics.counter("alerts.untimely"), r.untimely);
  EXPECT_EQ(static_cast<double>(metrics.stat("chain.length").count()),
            // chain.length is observed once per detected episode
            static_cast<double>(metrics.counter("episodes.detected")));
  EXPECT_EQ(metrics.stat("chain.length").max(),
            static_cast<double>(r.max_chain_length));

  // The trace tells the same story as the aggregate counters.
  std::ostringstream os;
  collector.write_jsonl(os);
  std::istringstream is(os.str());
  const TraceSummary summary = summarize_trace(is);
  EXPECT_EQ(summary.detections, metrics.counter("episodes.detected"));
  EXPECT_EQ(summary.alerts_delivered, metrics.counter("alerts.delivered"));
  EXPECT_GE(summary.max_chain, r.max_chain_length);
}

CampaignConfig campaign_config(int jobs) {
  CampaignConfig cfg;
  cfg.k = 9;
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(1.0);
  cfg.protocol.computation_cap = Duration::minutes(2);
  cfg.signal_arrival_rate = Rate::per_hour(12.0);
  cfg.horizon = Duration::hours(6);
  cfg.seed = 31;
  cfg.replications = 4;
  cfg.jobs = jobs;
  return cfg;
}

TEST(TraceDeterminism, CampaignJsonlBitIdenticalAcrossJobs) {
  auto run = [](int jobs) {
    TraceCollector collector;
    auto cfg = campaign_config(jobs);
    cfg.trace = &collector;
    (void)run_campaign(cfg);
    std::ostringstream os;
    collector.write_jsonl(os);
    return os.str();
  };
  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  for (const int jobs : {2, 4}) {
    EXPECT_EQ(serial, run(jobs)) << "jobs=" << jobs;
  }
}

TEST(TraceDeterminism, CampaignMetricsMatchResult) {
  TraceCollector collector;
  MetricsRegistry metrics;
  auto cfg = campaign_config(2);
  cfg.trace = &collector;
  cfg.metrics = &metrics;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_EQ(metrics.counter("campaign.replications"), r.replications);
  EXPECT_EQ(metrics.counter("campaign.signals"), r.signals);
  EXPECT_EQ(metrics.counter("alerts.delivered"), r.delivered);
  EXPECT_EQ(metrics.counter("compute.contended"), r.contended_computations);
  EXPECT_EQ(metrics.stat("alerts.latency_min").count(),
            r.latency_min.count());
  EXPECT_GT(collector.total_recorded(), 0u);
}

}  // namespace
}  // namespace oaq
