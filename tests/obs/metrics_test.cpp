// MetricsRegistry: counters/gauges/stats semantics and the shard-order
// merge contract (mirrors the Monte-Carlo accumulator discipline).
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace oaq {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("episodes"), 0);
  m.add("episodes");
  m.add("episodes", 4);
  EXPECT_EQ(m.counter("episodes"), 5);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, CounterOverflowIsGuarded) {
  MetricsRegistry m;
  m.add("big", std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW(m.add("big", 1), PreconditionError);
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  MetricsRegistry m;
  EXPECT_EQ(m.gauge("queue"), 0.0);
  m.set_gauge("queue", 3.5);
  m.set_gauge("queue", 1.25);
  EXPECT_EQ(m.gauge("queue"), 1.25);
}

TEST(MetricsRegistry, ObserveFeedsRunningStat) {
  MetricsRegistry m;
  m.observe("chain.length", 1.0);
  m.observe("chain.length", 3.0);
  const RunningStat& s = m.stat("chain.length");
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  // Unknown stat: an empty RunningStat, not an error.
  EXPECT_EQ(m.stat("absent").count(), 0u);
}

TEST(MetricsRegistry, MergeMatchesSerialRecording) {
  // Two shard registries merged in shard order must equal one registry
  // fed the same stream serially — the same invariant the Monte-Carlo
  // accumulators rely on.
  MetricsRegistry serial;
  MetricsRegistry shard0;
  MetricsRegistry shard1;
  const double xs0[] = {1.0, 4.0, 2.5};
  const double xs1[] = {7.0, 0.5};
  for (const double x : xs0) {
    serial.observe("v", x);
    shard0.observe("v", x);
    serial.add("n");
    shard0.add("n");
  }
  for (const double x : xs1) {
    serial.observe("v", x);
    shard1.observe("v", x);
    serial.add("n");
    shard1.add("n");
  }
  shard0.set_gauge("g", 1.0);
  shard1.set_gauge("g", 2.0);

  MetricsRegistry merged = shard0;
  merged.merge(shard1);
  EXPECT_EQ(merged.counter("n"), serial.counter("n"));
  EXPECT_EQ(merged.stat("v").count(), serial.stat("v").count());
  EXPECT_DOUBLE_EQ(merged.stat("v").min(), serial.stat("v").min());
  EXPECT_DOUBLE_EQ(merged.stat("v").max(), serial.stat("v").max());
  EXPECT_NEAR(merged.stat("v").mean(), serial.stat("v").mean(), 1e-12);
  EXPECT_NEAR(merged.stat("v").variance(), serial.stat("v").variance(),
              1e-12);
  EXPECT_EQ(merged.gauge("g"), 2.0);  // right-hand (later shard) wins
}

TEST(MetricsRegistry, MergeIsDeterministicForAnyGrouping) {
  // ((a ⊕ b) ⊕ c) must give bit-identical counters and stat moments to
  // a ⊕ (b-then-c recorded as one shard) when fold order is preserved —
  // the property that makes parallel_reduce's shard-order fold safe.
  auto record = [](MetricsRegistry& m, int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      m.add("count");
      m.observe("x", 0.1 * i);
    }
  };
  MetricsRegistry a;
  MetricsRegistry b;
  MetricsRegistry c;
  record(a, 0, 5);
  record(b, 5, 9);
  record(c, 9, 12);
  MetricsRegistry left = a;
  left.merge(b);
  left.merge(c);

  MetricsRegistry bc;
  record(bc, 5, 9);
  record(bc, 9, 12);
  MetricsRegistry right = a;
  right.merge(bc);

  EXPECT_EQ(left.counter("count"), right.counter("count"));
  EXPECT_EQ(left.stat("x").count(), right.stat("x").count());
  EXPECT_EQ(left.stat("x").mean(), right.stat("x").mean());
}

TEST(MetricsRegistry, ScopedTimerObservesUnderWallPrefix) {
  MetricsRegistry m;
  {
    const auto timer = m.time("wall.block");
    (void)timer;
  }
  EXPECT_EQ(m.stat("wall.block").count(), 1u);
  EXPECT_GE(m.stat("wall.block").min(), 0.0);
}

TEST(MetricsRegistry, WriteJsonIsSortedAndParseable) {
  MetricsRegistry m;
  m.add("b.counter", 2);
  m.add("a.counter", 1);
  m.set_gauge("g", 0.5);
  m.observe("s", 2.0);
  std::ostringstream os;
  m.write_json(os);
  const std::string json = os.str();
  // Keys appear sorted (map order) — deterministic bytes.
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace oaq
