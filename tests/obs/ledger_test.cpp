// EpisodeLedger unit tests: drop-reason classification, global-row
// fallback, row-wise merge, totals reconciliation, and the JSON export's
// sparse-row contract.
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oaq {
namespace {

TEST(EpisodeLedger, ClassifiesDropReasonsIntoColumns) {
  EpisodeLedger ledger;
  ledger.reserve(2);
  ledger.record_drop(0, DropReason::kLoss);
  ledger.record_drop(0, DropReason::kDeadSender);
  ledger.record_drop(0, DropReason::kDeadReceiver);
  ledger.record_drop(0, DropReason::kUnregistered);
  ledger.record_drop(1, DropReason::kLinkDown);
  const LedgerRow& first = ledger.row(0);
  EXPECT_EQ(first.drops_loss, 1);
  EXPECT_EQ(first.drops_dead, 3);
  EXPECT_EQ(first.drops_link, 0);
  EXPECT_EQ(first.drops(), 4);
  EXPECT_EQ(ledger.row(1).drops_link, 1);
}

TEST(EpisodeLedger, EpisodelessEventsLandInTheGlobalRow) {
  EpisodeLedger ledger;
  ledger.record_drop(-1, DropReason::kLoss);
  ledger.record_fault(-1);
  ledger.record_retry(-1);
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.global_row().drops_loss, 1);
  EXPECT_EQ(ledger.global_row().faults, 1);
  EXPECT_EQ(ledger.global_row().retries, 1);
  // row() never inserts: out-of-range ids read the global row.
  EXPECT_EQ(&ledger.row(-1), &ledger.global_row());
  EXPECT_EQ(&ledger.row(99), &ledger.global_row());
}

TEST(EpisodeLedger, TotalsSumRowsAndGlobal) {
  EpisodeLedger ledger;
  ledger.reserve(3);
  ledger.record_retry(0);
  ledger.record_retry(2);
  ledger.record_retry_exhausted(2);
  ledger.record_drop(2, DropReason::kLoss);
  ledger.record_fault(-1);
  const LedgerRow totals = ledger.totals();
  EXPECT_EQ(totals.retries, 2);
  EXPECT_EQ(totals.retries_exhausted, 1);
  EXPECT_EQ(totals.drops_loss, 1);
  EXPECT_EQ(totals.faults, 1);
}

TEST(EpisodeLedger, MergeFoldsRowWise) {
  EpisodeLedger a;
  a.reserve(2);
  a.record_drop(1, DropReason::kLoss);
  a.record_fault(-1);
  EpisodeLedger b;
  b.reserve(4);
  b.record_drop(1, DropReason::kLoss);
  b.record_drop(3, DropReason::kLinkDown);
  a.merge(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.row(1).drops_loss, 2);
  EXPECT_EQ(a.row(3).drops_link, 1);
  EXPECT_EQ(a.global_row().faults, 1);
  // Merge order does not matter for the result values: b ∪ a == a ∪ b.
  EpisodeLedger c;
  c.record_drop(3, DropReason::kLinkDown);
  c.record_drop(1, DropReason::kLoss);
  c.record_drop(1, DropReason::kLoss);
  c.record_fault(-1);
  EXPECT_EQ(a.row(1), c.row(1));
  EXPECT_EQ(a.row(3), c.row(3));
  EXPECT_EQ(a.totals(), c.totals());
}

TEST(EpisodeLedger, SteadyStateRecordingAfterReserveDoesNotGrow) {
  EpisodeLedger ledger;
  ledger.reserve(8);
  EXPECT_EQ(ledger.size(), 8u);
  for (int i = 0; i < 8; ++i) ledger.record_retry(i);
  EXPECT_EQ(ledger.size(), 8u);
}

TEST(EpisodeLedger, JsonSkipsAllZeroRows) {
  EpisodeLedger ledger;
  ledger.reserve(100);
  ledger.record_drop(42, DropReason::kLoss);
  ledger.record_retry(42);
  std::ostringstream os;
  ledger.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"oaq-ledger-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"episodes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"ep\":42"), std::string::npos);
  EXPECT_EQ(json.find("\"ep\":0"), std::string::npos);  // zero rows skipped
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
}

TEST(EpisodeLedger, ClearResetsEverything) {
  EpisodeLedger ledger;
  ledger.reserve(4);
  ledger.record_drop(0, DropReason::kLoss);
  ledger.record_fault(-1);
  ledger.clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_FALSE(ledger.global_row().any());
  EXPECT_FALSE(ledger.totals().any());
}

}  // namespace
}  // namespace oaq
