// ShardTraceBuffer / TraceCollector: flight-recorder semantics, the
// canonical JSONL export, and the parse/summarize round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace oaq {
namespace {

TraceEvent make_event(int i) {
  TraceEvent ev;
  ev.episode = i;
  ev.t_min = 0.5 * i;
  ev.type = TraceEventType::kChainHop;
  ev.sat = static_cast<std::int16_t>(i % 9);
  ev.peer = static_cast<std::int16_t>((i + 1) % 9);
  ev.a = i;
  ev.v = 1.0 / (i + 1);
  return ev;
}

TEST(ShardTraceBuffer, KeepsEventsInOrderBelowCapacity) {
  ShardTraceBuffer buf(8);
  for (int i = 0; i < 5; ++i) buf.push(make_event(i));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.recorded(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto events = buf.events();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[i], make_event(i));
}

TEST(ShardTraceBuffer, OverwritesOldestWhenFull) {
  ShardTraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) buf.push(make_event(i));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.events();
  // Flight recorder: the last 4 events survive, oldest first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i], make_event(6 + i));
}

TEST(ShardTraceBuffer, ClearResets) {
  ShardTraceBuffer buf(4);
  for (int i = 0; i < 6; ++i) buf.push(make_event(i));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.recorded(), 0u);
  buf.push(make_event(42));
  EXPECT_EQ(buf.events()[0], make_event(42));
}

TEST(TraceEventType, WireNamesRoundTrip) {
  for (int t = 0; t <= static_cast<int>(TraceEventType::kTermLate); ++t) {
    const auto type = static_cast<TraceEventType>(t);
    const auto name = to_string(type);
    EXPECT_NE(name, "unknown") << t;
    const auto back = trace_event_type_from(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(trace_event_type_from("no_such_event").has_value());
}

TEST(TraceEventType, TerminationFamilyIsContiguous) {
  EXPECT_FALSE(is_termination(TraceEventType::kAlertDelivered));
  EXPECT_TRUE(is_termination(TraceEventType::kTermTc1));
  EXPECT_TRUE(is_termination(TraceEventType::kTermLate));
}

TEST(TraceCollector, ShardBuffersAreIndependentAndStable) {
  TraceCollector collector(16);
  collector.prepare(3);
  ASSERT_EQ(collector.shards(), 3);
  ShardTraceBuffer* s0 = collector.shard(0);
  collector.shard(1)->push(make_event(1));
  s0->push(make_event(0));  // pointer still valid after other-shard pushes
  EXPECT_EQ(collector.shard_buffer(0).size(), 1u);
  EXPECT_EQ(collector.shard_buffer(1).size(), 1u);
  EXPECT_EQ(collector.shard_buffer(2).size(), 0u);
  EXPECT_EQ(collector.total_recorded(), 2u);
  EXPECT_EQ(collector.total_dropped(), 0u);
}

TEST(TraceCollector, JsonlRoundTripsThroughParser) {
  TraceCollector collector(16);
  collector.prepare(2);
  collector.shard(0)->push(make_event(3));
  collector.shard(1)->push(make_event(7));
  std::ostringstream os;
  collector.write_jsonl(os);

  std::istringstream is(os.str());
  std::string line;
  std::vector<ParsedTraceEvent> parsed;
  while (std::getline(is, line)) {
    const auto ev = parse_trace_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    parsed.push_back(*ev);
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].shard, 0);
  EXPECT_EQ(parsed[0].event, make_event(3));
  EXPECT_EQ(parsed[1].shard, 1);
  EXPECT_EQ(parsed[1].event, make_event(7));
}

TEST(TraceCollector, ExportConcatenatesInShardOrder) {
  TraceCollector collector(16);
  collector.prepare(2);
  // Push into shard 1 first: export order must still be shard 0 first.
  collector.shard(1)->push(make_event(1));
  collector.shard(0)->push(make_event(0));
  std::ostringstream os;
  collector.write_jsonl(os);
  const std::string text = os.str();
  EXPECT_LT(text.find("\"shard\":0"), text.find("\"shard\":1"));
}

TEST(ParseTraceLine, RejectsForeignLines) {
  EXPECT_FALSE(parse_trace_line("").has_value());
  EXPECT_FALSE(parse_trace_line("not json").has_value());
  EXPECT_FALSE(parse_trace_line("{\"shard\":0}").has_value());
  EXPECT_FALSE(
      parse_trace_line("{\"shard\":0,\"ep\":1,\"t\":2,\"type\":\"bogus\","
                       "\"sat\":0,\"peer\":0,\"a\":0,\"v\":0}")
          .has_value());
}

TEST(TraceSummary, CountsTerminationsByCauseAndChainLength) {
  TraceCollector collector(16);
  collector.prepare(1);
  TraceEvent det;
  det.type = TraceEventType::kDetection;
  collector.shard(0)->push(det);
  TraceEvent term;
  term.type = TraceEventType::kTermTc2;
  term.a = 2;
  collector.shard(0)->push(term);
  term.type = TraceEventType::kTermWindow;
  term.a = 1;
  collector.shard(0)->push(term);
  collector.shard(0)->push(term);
  TraceEvent delivered;
  delivered.type = TraceEventType::kAlertDelivered;
  collector.shard(0)->push(delivered);

  std::ostringstream os;
  collector.write_jsonl(os);
  std::istringstream is(os.str() + "garbage line\n");
  const TraceSummary summary = summarize_trace(is);
  EXPECT_EQ(summary.events, 5);
  EXPECT_EQ(summary.detections, 1);
  EXPECT_EQ(summary.alerts_delivered, 1);
  EXPECT_EQ(summary.terminations, 3);
  EXPECT_EQ(summary.max_chain, 2);
  EXPECT_EQ(summary.termination.at("term_tc2").at(2), 1);
  EXPECT_EQ(summary.termination.at("term_window").at(1), 2);
}

}  // namespace
}  // namespace oaq
