// Attribution ledger under interleaved drains (ISSUE 9): simulate's
// per-episode ledger must be byte-identical whether armed episodes drain
// sequentially (width 1), over a merged event timeline (full width), or
// through the scalar oracle — and, under randomized fault storms with
// lossy reliable links, every row must reconcile exactly with the trace's
// attributed drop/retry/fault events while the sharpened per-episode I7
// audit stays free of false violations.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "oaq/batch_episode.hpp"
#include "oaq/montecarlo.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace oaq {
namespace {

/// A signal-relative storm touching every attribution path: a silenced
/// satellite (dead drops), an outage window (link drops), violent burst
/// loss over reliable links (retries and exhausted retries), and a delay
/// spike. Times target the episode's first minutes, where the protocol
/// actually runs.
FaultPlan ledger_storm(Rng& rng, int k) {
  FaultPlan plan;
  const int victim = static_cast<int>(
      rng.uniform_index(static_cast<std::uint64_t>(k)));
  const double down = rng.uniform(0.5, 2.0);
  plan.add(FaultPlan::fail_silent({0, victim}, Duration::minutes(down)));
  plan.add(FaultPlan::recover(
      {0, victim}, Duration::minutes(down + rng.uniform(2.0, 4.0))));
  plan.add(FaultPlan::link_outage(0, 0, Duration::minutes(0.0),
                                  Duration::minutes(rng.uniform(2.0, 5.0))));
  plan.add(FaultPlan::burst_loss(rng.uniform(0.5, 0.9),
                                 Duration::minutes(0.0),
                                 Duration::minutes(rng.uniform(3.0, 6.0))));
  plan.add(FaultPlan::delay_spike(rng.uniform(1.5, 3.0),
                                  Duration::minutes(1.0),
                                  Duration::minutes(4.0)));
  return plan;
}

QosSimulationConfig storm_config(const FaultPlan* plan, std::uint64_t seed) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 300;
  cfg.seed = seed;
  cfg.fault_plan = plan;
  cfg.check_invariants = true;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.protocol.crosslink_loss_probability = 0.25;
  cfg.protocol.reliable_links = true;
  // One retry only, so exhausted-retry final drops actually occur.
  cfg.protocol.link_retry_limit = 1;
  return cfg;
}

struct StormRun {
  SimulatedQos qos;
  EpisodeLedger ledger;
  std::string trace_jsonl;
};

StormRun run_storm(const FaultPlan& plan, std::uint64_t seed, int jobs,
                   bool batched, int width) {
  QosSimulationConfig cfg = storm_config(&plan, seed);
  cfg.jobs = jobs;
  cfg.batch_episodes = batched;
  cfg.interleave_width = width;
  TraceCollector trace;
  cfg.trace = &trace;
  StormRun run;
  cfg.ledger = &run.ledger;
  run.qos = simulate_qos(cfg);
  std::ostringstream os;
  trace.write_jsonl(os);
  run.trace_jsonl = os.str();
  return run;
}

std::string ledger_json(const EpisodeLedger& ledger) {
  std::ostringstream os;
  ledger.write_json(os);
  return os.str();
}

/// Copy of `row` with retries_exhausted cleared: the trace has no
/// dedicated exhausted-retry event (a final drop is just kXlinkDrop), so
/// the witness cannot reconstruct that one column.
LedgerRow comparable(const LedgerRow& row) {
  LedgerRow out = row;
  out.retries_exhausted = 0;
  return out;
}

/// Ledger rebuilt from the trace's attributed xlink/fault events: the
/// independent witness the real ledger must match row for row.
EpisodeLedger ledger_from_trace(const std::string& jsonl) {
  EpisodeLedger witness;
  std::istringstream is(jsonl);
  std::string line;
  while (std::getline(is, line)) {
    const auto parsed = parse_trace_line(line);
    if (!parsed) continue;
    const TraceEvent& ev = parsed->event;
    switch (ev.type) {
      case TraceEventType::kXlinkDrop:
        witness.record_drop(ev.episode, static_cast<DropReason>(ev.a));
        break;
      case TraceEventType::kXlinkRetry:
        witness.record_retry(ev.episode);
        break;
      case TraceEventType::kFaultFailSilent:
      case TraceEventType::kFaultRecover:
      case TraceEventType::kFaultLinkOutage:
      case TraceEventType::kFaultDelaySpike:
      case TraceEventType::kFaultBurstLoss:
      case TraceEventType::kFaultPartition:
        if (ev.a > 0) witness.record_fault(ev.episode);
        break;
      default:
        break;
    }
  }
  return witness;
}

TEST(InterleavedLedger, BytesIdenticalAcrossWidthsAndScalarOracle) {
  Rng rng(6121);
  const FaultPlan plan = ledger_storm(rng, 9);
  const StormRun scalar = run_storm(plan, /*seed=*/11, /*jobs=*/1,
                                    /*batched=*/false, /*width=*/0);
  const std::string expected = ledger_json(scalar.ledger);
  EXPECT_NE(expected.find("\"ep\":"), std::string::npos);  // non-trivial
  const LedgerRow totals = scalar.ledger.totals();
  EXPECT_GT(totals.drops(), 0);
  EXPECT_GT(totals.retries, 0);
  EXPECT_GT(totals.faults, 0);
  for (const int width : {1, 2, kEpisodeBatchWidth}) {
    for (const int jobs : {1, 4}) {
      const StormRun run = run_storm(plan, /*seed=*/11, jobs,
                                     /*batched=*/true, width);
      EXPECT_EQ(ledger_json(run.ledger), expected)
          << "width " << width << " jobs " << jobs;
      EXPECT_EQ(run.trace_jsonl, scalar.trace_jsonl)
          << "width " << width << " jobs " << jobs;
    }
  }
}

TEST(InterleavedLedger, RowsReconcileExactlyWithTraceWitness) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 3307);
    const FaultPlan plan = ledger_storm(rng, 9);
    const StormRun run = run_storm(plan, seed, /*jobs=*/2, /*batched=*/true,
                                   /*width=*/kEpisodeBatchWidth);
    EpisodeLedger witness = ledger_from_trace(run.trace_jsonl);
    witness.reserve(run.ledger.size());
    ASSERT_EQ(run.ledger.size(), witness.size()) << "seed " << seed;
    for (std::size_t ep = 0; ep < run.ledger.size(); ++ep) {
      EXPECT_EQ(comparable(run.ledger.row(static_cast<std::int64_t>(ep))),
                comparable(witness.row(static_cast<std::int64_t>(ep))))
          << "seed " << seed << " episode " << ep;
    }
    EXPECT_EQ(comparable(run.ledger.global_row()),
              comparable(witness.global_row()))
        << "seed " << seed;
    // Episode-anchored plans replay per episode: nothing may leak into
    // the global row, which campaigns reserve for origin-anchored clauses.
    EXPECT_FALSE(run.ledger.global_row().any()) << "seed " << seed;
  }
}

TEST(InterleavedLedger, StormsKeepI7AuditCleanUnderInterleavedDrains) {
  // Randomized fault storms, interleaved merged-timeline drains, and the
  // exact per-episode I7 audit ("no drops and no faults leaves no one
  // unresolved") — the audit reads each lane's OWN ledger-grade telemetry,
  // so a cross-lane attribution leak would surface as a violation here.
  for (std::uint64_t seed = 4; seed <= 6; ++seed) {
    Rng rng(seed * 7109);
    const FaultPlan plan = ledger_storm(rng, 9);
    const StormRun run = run_storm(plan, seed, /*jobs=*/4, /*batched=*/true,
                                   /*width=*/kEpisodeBatchWidth);
    EXPECT_EQ(run.qos.invariant_violations, 0)
        << "seed " << seed << ": "
        << (run.qos.invariant_samples.empty()
                ? std::string("(no samples)")
                : run.qos.invariant_samples.front());
    EXPECT_GT(run.ledger.totals().faults, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace oaq
