// FaultPlan validation, the line-based plan format, and its round-trip
// (ISSUE 5 tentpole).
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace oaq {
namespace {

FaultPlan full_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({2, 5}, Duration::minutes(1.5)));
  plan.add(FaultPlan::recover({2, 5}, Duration::minutes(4.0)));
  plan.add(FaultPlan::link_outage(0, 3, Duration::minutes(0.5),
                                  Duration::minutes(2.0)));
  plan.add(FaultPlan::delay_spike(2.5, Duration::minutes(1.0),
                                  Duration::minutes(3.0)));
  plan.add(FaultPlan::burst_loss(0.4, Duration::minutes(0.0),
                                 Duration::minutes(2.0)));
  plan.add(FaultPlan::partition(0b1010, Duration::minutes(2.0),
                                Duration::minutes(5.0)));
  return plan;
}

TEST(FaultPlan, BuildersPopulateClauses) {
  const FaultPlan plan = full_plan();
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_FALSE(plan.empty());

  const auto& c = plan.clauses();
  EXPECT_EQ(c[0].kind, FaultClauseKind::kFailSilent);
  EXPECT_EQ(c[0].satellite, (SatelliteId{2, 5}));
  EXPECT_DOUBLE_EQ(c[0].at.to_minutes(), 1.5);
  EXPECT_FALSE(c[0].windowed());

  EXPECT_EQ(c[2].kind, FaultClauseKind::kLinkOutage);
  EXPECT_EQ(c[2].plane_a, 0);
  EXPECT_EQ(c[2].plane_b, 3);
  EXPECT_TRUE(c[2].windowed());

  EXPECT_EQ(c[3].kind, FaultClauseKind::kDelaySpike);
  EXPECT_DOUBLE_EQ(c[3].value, 2.5);
  EXPECT_EQ(c[4].kind, FaultClauseKind::kBurstLoss);
  EXPECT_DOUBLE_EQ(c[4].value, 0.4);
  EXPECT_EQ(c[5].kind, FaultClauseKind::kPartition);
  EXPECT_EQ(c[5].plane_mask, 0b1010u);
}

TEST(FaultPlan, MaxPlaneSpansEveryClauseKind) {
  EXPECT_EQ(FaultPlan{}.max_plane(), -1);
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({2, 0}, Duration::zero()));
  EXPECT_EQ(plan.max_plane(), 2);
  plan.add(FaultPlan::link_outage(1, 5, Duration::zero(),
                                  Duration::minutes(1)));
  EXPECT_EQ(plan.max_plane(), 5);
  plan.add(FaultPlan::partition(1ull << 9, Duration::zero(),
                                Duration::minutes(1)));
  EXPECT_EQ(plan.max_plane(), 9);
}

TEST(FaultPlan, RejectsMalformedClauses) {
  FaultPlan plan;
  // Negative times.
  EXPECT_THROW(plan.add(FaultPlan::fail_silent({0, 0}, Duration::minutes(-1))),
               std::invalid_argument);
  // Empty / backwards window.
  EXPECT_THROW(plan.add(FaultPlan::burst_loss(0.5, Duration::minutes(2),
                                              Duration::minutes(2))),
               std::invalid_argument);
  EXPECT_THROW(plan.add(FaultPlan::burst_loss(0.5, Duration::minutes(2),
                                              Duration::minutes(1))),
               std::invalid_argument);
  // Loss outside [0, 1]; non-positive delay factor.
  EXPECT_THROW(plan.add(FaultPlan::burst_loss(1.5, Duration::zero(),
                                              Duration::minutes(1))),
               std::invalid_argument);
  EXPECT_THROW(plan.add(FaultPlan::delay_spike(0.0, Duration::zero(),
                                               Duration::minutes(1))),
               std::invalid_argument);
  // Plane out of range; negative slot.
  EXPECT_THROW(plan.add(FaultPlan::link_outage(-1, 0, Duration::zero(),
                                               Duration::minutes(1))),
               std::invalid_argument);
  EXPECT_THROW(plan.add(FaultPlan::link_outage(0, 128, Duration::zero(),
                                               Duration::minutes(1))),
               std::invalid_argument);
  EXPECT_THROW(plan.add(FaultPlan::fail_silent({0, -1}, Duration::zero())),
               std::invalid_argument);
  // Empty / universal partition.
  EXPECT_THROW(plan.add(FaultPlan::partition(0, Duration::zero(),
                                             Duration::minutes(1))),
               std::invalid_argument);
  EXPECT_THROW(plan.add(FaultPlan::partition(~0ull, Duration::zero(),
                                             Duration::minutes(1))),
               std::invalid_argument);
  // Nothing half-added.
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, ParsesLineFormatWithComments) {
  std::istringstream is(
      "# storm scenario\n"
      "fail_silent 0 2 1.5\n"
      "\n"
      "recover 0 2 4   # revives\n"
      "link_outage 0 1 0.5 2\n"
      "delay_spike 3.0 1 5\n"
      "burst_loss 0.25 0 2\n"
      "partition 1,3 2 6\n");
  const FaultPlan plan = parse_fault_plan(is);
  ASSERT_EQ(plan.size(), 6u);
  const auto& c = plan.clauses();
  EXPECT_EQ(c[0].satellite, (SatelliteId{0, 2}));
  EXPECT_DOUBLE_EQ(c[0].at.to_minutes(), 1.5);
  EXPECT_EQ(c[1].kind, FaultClauseKind::kRecover);
  EXPECT_DOUBLE_EQ(c[3].value, 3.0);
  EXPECT_DOUBLE_EQ(c[4].window_end.to_minutes(), 2.0);
  EXPECT_EQ(c[5].plane_mask, (1ull << 1) | (1ull << 3));
}

TEST(FaultPlan, ParseErrorsNameTheLine) {
  const auto expect_error_mentions = [](const std::string& text,
                                        const std::string& needle) {
    std::istringstream is(text);
    try {
      (void)parse_fault_plan(is);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_error_mentions("frobnicate 1 2\n", "line 1");
  expect_error_mentions("fail_silent 0 2\n", "line 1");             // missing time
  expect_error_mentions("fail_silent 0 2 1 extra\n", "line 1");     // trailing
  expect_error_mentions("burst_loss 1.5 0 2\n", "line 1");          // validation
  expect_error_mentions("fail_silent 0 2.5 1\n", "line 1");         // non-integer
  expect_error_mentions("# ok\nfail_silent 0 2 1\nburst_loss 2 1 2\n",
                        "line 3");
}

TEST(FaultPlan, WriteParseRoundTrips) {
  const FaultPlan plan = full_plan();
  std::ostringstream os;
  write_fault_plan(plan, os);
  std::istringstream is(os.str());
  const FaultPlan back = parse_fault_plan(is);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultClause& a = plan.clauses()[i];
    const FaultClause& b = back.clauses()[i];
    EXPECT_EQ(a.kind, b.kind) << "clause " << i;
    EXPECT_EQ(a.satellite, b.satellite) << "clause " << i;
    EXPECT_EQ(a.plane_a, b.plane_a) << "clause " << i;
    EXPECT_EQ(a.plane_b, b.plane_b) << "clause " << i;
    EXPECT_EQ(a.plane_mask, b.plane_mask) << "clause " << i;
    EXPECT_DOUBLE_EQ(a.value, b.value) << "clause " << i;
    EXPECT_EQ(a.at, b.at) << "clause " << i;
    EXPECT_EQ(a.window_start, b.window_start) << "clause " << i;
    EXPECT_EQ(a.window_end, b.window_end) << "clause " << i;
  }
}

}  // namespace
}  // namespace oaq
