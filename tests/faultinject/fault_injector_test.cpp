// FaultInjector clause semantics against a live CrosslinkNetwork
// (ISSUE 5 tentpole): every clause kind flips the scripted network state
// at the scripted time, windows close cleanly, and the whole lifecycle is
// deterministic DES scheduling.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "fault/plan.hpp"
#include "net/crosslink.hpp"
#include "sim/simulator.hpp"

namespace oaq {
namespace {

struct Ping {
  int value = 0;
};

/// Fixed 10 s delay: delivery times are exact, so windowed assertions can
/// place sends strictly inside/outside fault windows.
CrosslinkNetwork::Options fixed_delay_options() {
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(10);
  opt.max_delay = Duration::seconds(10);
  return opt;
}

/// One-plane (or two-plane) rig with a delivery counter per address.
struct Rig {
  Simulator sim;
  Rng rng{17};
  CrosslinkNetwork net;
  int delivered = 0;

  explicit Rig(CrosslinkNetwork::Options opt = fixed_delay_options())
      : net(sim, opt, Rng(23)) {}

  void register_sat(SatelliteId id) {
    net.register_node(Address::sat(id), [this](const Envelope&) { ++delivered; });
  }
  void send_at(Duration when, SatelliteId from, SatelliteId to) {
    sim.schedule_after(when, [this, from, to] {
      net.send(Address::sat(from), Address::sat(to), Ping{});
    });
  }
};

TEST(FaultInjector, FailSilentThenRecoverFollowsTheScript) {
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({0, 1});
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 1}, Duration::minutes(1)));
  plan.add(FaultPlan::recover({0, 1}, Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  rig.send_at(Duration::minutes(0.5), {0, 0}, {0, 1});  // before: delivered
  rig.send_at(Duration::minutes(1.5), {0, 0}, {0, 1});  // silent: dropped
  rig.send_at(Duration::minutes(2.5), {0, 0}, {0, 1});  // revived: delivered
  rig.sim.run();

  EXPECT_EQ(rig.delivered, 2);
  EXPECT_EQ(rig.net.stats().dropped_dead_receiver, 1u);
  EXPECT_FALSE(rig.net.is_failed(Address::sat({0, 1})));
  EXPECT_EQ(injector.stats().clauses_armed, 2u);
  EXPECT_EQ(injector.stats().activations, 2u);
}

TEST(FaultInjector, LinkOutageWindowBlocksThePlanePair) {
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({1, 0});
  FaultPlan plan;
  plan.add(FaultPlan::link_outage(0, 1, Duration::minutes(1),
                                  Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  rig.send_at(Duration::minutes(0.5), {0, 0}, {1, 0});  // before window
  rig.send_at(Duration::minutes(1.5), {0, 0}, {1, 0});  // inside: link down
  rig.send_at(Duration::minutes(1.5), {1, 0}, {0, 0});  // symmetric
  rig.send_at(Duration::minutes(2.5), {0, 0}, {1, 0});  // after window
  rig.sim.run();

  EXPECT_EQ(rig.delivered, 2);
  EXPECT_EQ(rig.net.stats().dropped_link, 2u);
}

TEST(FaultInjector, DelaySpikeScalesDeliveryInsideTheWindow) {
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({0, 1});
  std::vector<double> delays_s;
  rig.net.register_node(Address::sat({0, 2}), [&](const Envelope& e) {
    delays_s.push_back((e.delivered - e.sent).to_seconds());
  });
  FaultPlan plan;
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1),
                                  Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  rig.send_at(Duration::minutes(0.5), {0, 0}, {0, 2});  // base 10 s
  rig.send_at(Duration::minutes(1.5), {0, 0}, {0, 2});  // scaled 30 s
  rig.send_at(Duration::minutes(2.5), {0, 0}, {0, 2});  // base again
  rig.sim.run();

  ASSERT_EQ(delays_s.size(), 3u);
  EXPECT_DOUBLE_EQ(delays_s[0], 10.0);
  EXPECT_DOUBLE_EQ(delays_s[1], 30.0);
  EXPECT_DOUBLE_EQ(delays_s[2], 10.0);
}

TEST(FaultInjector, BurstLossWindowDropsEverythingAtProbabilityOne) {
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({0, 1});
  FaultPlan plan;
  plan.add(FaultPlan::burst_loss(1.0, Duration::minutes(1),
                                 Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  for (int i = 0; i < 5; ++i) {
    rig.send_at(Duration::minutes(1.1 + 0.1 * i), {0, 0}, {0, 1});
  }
  rig.send_at(Duration::minutes(0.5), {0, 0}, {0, 1});
  rig.send_at(Duration::minutes(2.5), {0, 0}, {0, 1});
  rig.sim.run();

  EXPECT_EQ(rig.delivered, 2);
  EXPECT_EQ(rig.net.stats().dropped_loss, 5u);
}

TEST(FaultInjector, PartitionCutsCrossBoundaryLinksButNotGround) {
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({1, 0});
  int ground_received = 0;
  rig.net.register_node(Address::ground(),
                        [&](const Envelope&) { ++ground_received; });
  FaultPlan plan;
  plan.add(FaultPlan::partition(0b1, Duration::minutes(1),
                                Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  rig.send_at(Duration::minutes(1.5), {0, 0}, {1, 0});  // crosses boundary
  rig.send_at(Duration::minutes(1.5), {0, 0}, {0, 0});  // inside the set
  rig.sim.schedule_after(Duration::minutes(1.5), [&] {
    rig.net.send(Address::sat({0, 0}), Address::ground(), Ping{});
  });
  rig.send_at(Duration::minutes(2.5), {0, 0}, {1, 0});  // window closed
  rig.sim.run();

  EXPECT_EQ(rig.net.stats().dropped_link, 1u);
  EXPECT_EQ(rig.delivered, 2);  // intra-set + post-window cross
  EXPECT_EQ(ground_received, 1);
}

TEST(FaultInjector, OverlappingWindowsComposeOrderIndependently) {
  // Two loss overrides and two delay spikes overlap; the effective state
  // is max(loss) and the product of factors regardless of window order.
  Rig rig;
  rig.register_sat({0, 0});
  std::vector<double> delays_s;
  rig.net.register_node(Address::sat({0, 1}), [&](const Envelope& e) {
    delays_s.push_back((e.delivered - e.sent).to_seconds());
  });
  FaultPlan plan;
  plan.add(FaultPlan::delay_spike(2.0, Duration::minutes(0.5),
                                  Duration::minutes(3)));
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1),
                                  Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());

  rig.send_at(Duration::minutes(1.5), {0, 0}, {0, 1});  // x2 * x3 = 60 s
  rig.send_at(Duration::minutes(2.5), {0, 0}, {0, 1});  // inner popped: 20 s
  rig.sim.run();

  ASSERT_EQ(delays_s.size(), 2u);
  EXPECT_DOUBLE_EQ(delays_s[0], 60.0);
  EXPECT_DOUBLE_EQ(delays_s[1], 20.0);
}

TEST(FaultInjector, TracesActivationsAndDeactivations) {
  Rig rig;
  rig.register_sat({0, 0});
  ShardTraceBuffer trace(64);
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 0}, Duration::minutes(1)));
  plan.add(FaultPlan::burst_loss(0.5, Duration::minutes(2),
                                 Duration::minutes(3)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1), &trace, 42);
  injector.arm(rig.sim.now());
  rig.sim.run();

  const std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 3u);  // point + activate + deactivate
  EXPECT_EQ(events[0].type, TraceEventType::kFaultFailSilent);
  EXPECT_EQ(events[0].episode, 42);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_DOUBLE_EQ(events[0].t_min, 1.0);
  EXPECT_EQ(events[1].type, TraceEventType::kFaultBurstLoss);
  EXPECT_EQ(events[1].a, 1);
  EXPECT_DOUBLE_EQ(events[1].v, 0.5);
  EXPECT_EQ(events[2].type, TraceEventType::kFaultBurstLoss);
  EXPECT_EQ(events[2].a, -1);
  EXPECT_DOUBLE_EQ(events[2].t_min, 3.0);
  for (const TraceEvent& e : events) EXPECT_TRUE(is_fault(e.type));
}

TEST(FaultInjector, PastClauseTimesFireImmediately) {
  // An anchor in the past must not schedule before now() — the clause
  // fires immediately instead (causality).
  Rig rig;
  rig.register_sat({0, 0});
  rig.register_sat({0, 1});
  rig.sim.schedule_after(Duration::minutes(5), [] {});
  rig.sim.run();  // advance now() to 5 min
  FaultPlan plan;
  plan.add(FaultPlan::burst_loss(1.0, Duration::minutes(1),
                                 Duration::minutes(2)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now() - Duration::minutes(10));
  rig.sim.run();  // activate + deactivate both fire (in order) at now()
  rig.net.send(Address::sat({0, 0}), Address::sat({0, 1}), Ping{});
  rig.sim.run();
  EXPECT_EQ(rig.delivered, 1);  // the window is already over
  EXPECT_EQ(injector.stats().activations, 1u);
}

TEST(FaultInjector, ArmIsSingleShot) {
  Rig rig;
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 0}, Duration::minutes(1)));
  FaultInjector injector(rig.sim, rig.net, plan, rig.rng.fork(1));
  injector.arm(rig.sim.now());
  EXPECT_THROW(injector.arm(rig.sim.now()), PreconditionError);
}

}  // namespace
}  // namespace oaq
