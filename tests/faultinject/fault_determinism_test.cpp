// Determinism contract of the fault-injection engine (ISSUE 5
// acceptance): a fixed plan yields byte-identical trace and metrics
// output at any worker count, and attaching clauses never perturbs the
// protocol's own random streams (the injector draws from a dedicated
// fork).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/plan.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

FaultPlan storm_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 2}, Duration::minutes(1)));
  plan.add(FaultPlan::recover({0, 2}, Duration::minutes(3)));
  plan.add(FaultPlan::link_outage(0, 0, Duration::minutes(0.5),
                                  Duration::minutes(2)));
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1),
                                  Duration::minutes(4)));
  plan.add(FaultPlan::burst_loss(0.3, Duration::minutes(0),
                                 Duration::minutes(2)));
  plan.add(FaultPlan::partition(0b1, Duration::minutes(2),
                                Duration::minutes(5)));
  return plan;
}

QosSimulationConfig base_config(int jobs) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 600;
  cfg.seed = 97;
  cfg.jobs = jobs;
  return cfg;
}

struct Rendered {
  std::string trace;
  std::string metrics;
  SimulatedQos qos;
};

Rendered render(QosSimulationConfig cfg) {
  TraceCollector trace;
  MetricsRegistry metrics;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  Rendered out;
  out.qos = simulate_qos(cfg);
  std::ostringstream ts;
  trace.write_jsonl(ts);
  out.trace = ts.str();
  std::ostringstream ms;
  metrics.write_json(ms);
  out.metrics = ms.str();
  return out;
}

TEST(FaultDeterminism, StormTraceAndMetricsBitIdenticalAcrossJobs) {
  const FaultPlan plan = storm_plan();
  QosSimulationConfig serial = base_config(1);
  serial.fault_plan = &plan;
  serial.check_invariants = true;
  const Rendered golden = render(serial);
  ASSERT_FALSE(golden.trace.empty());
  // The storm's own events are in the stream.
  EXPECT_NE(golden.trace.find("fault_burst_loss"), std::string::npos);
  EXPECT_NE(golden.trace.find("fault_partition"), std::string::npos);
  for (const int jobs : {4, 8}) {
    QosSimulationConfig cfg = base_config(jobs);
    cfg.fault_plan = &plan;
    cfg.check_invariants = true;
    const Rendered wide = render(cfg);
    EXPECT_EQ(wide.trace, golden.trace) << "trace drifted at jobs=" << jobs;
    EXPECT_EQ(wide.metrics, golden.metrics)
        << "metrics drifted at jobs=" << jobs;
  }
}

TEST(FaultDeterminism, NoOpClausesDoNotPerturbProtocolDraws) {
  // A plan whose clauses touch nothing the episode uses — recovering a
  // never-failed satellite, cutting links between planes the single-plane
  // run never crosses — must reproduce the unfaulted run's QoS outcome
  // exactly: clause scheduling draws nothing from the protocol streams.
  const SimulatedQos baseline = simulate_qos(base_config(1));

  FaultPlan inert;
  inert.add(FaultPlan::recover({0, 0}, Duration::minutes(1)));
  inert.add(FaultPlan::link_outage(7, 8, Duration::minutes(0.5),
                                   Duration::minutes(4)));
  inert.add(FaultPlan::partition(1ull << 9, Duration::minutes(1),
                                 Duration::minutes(3)));
  QosSimulationConfig cfg = base_config(1);
  cfg.fault_plan = &inert;
  const SimulatedQos faulted = simulate_qos(cfg);

  EXPECT_EQ(faulted.level_pmf.weights(), baseline.level_pmf.weights());
  EXPECT_EQ(faulted.duplicates, baseline.duplicates);
  EXPECT_EQ(faulted.unresolved, baseline.unresolved);
  EXPECT_EQ(faulted.untimely, baseline.untimely);
  EXPECT_EQ(faulted.mean_chain_length, baseline.mean_chain_length);
}

TEST(FaultDeterminism, AppendingAnInertClauseKeepsStormOutcome) {
  // Adding one more (inert) clause to an active plan must not reshuffle
  // the existing clauses' effect: tokens are clause indices, and the
  // extra activation draws no protocol randomness.
  const FaultPlan storm = storm_plan();
  QosSimulationConfig cfg = base_config(1);
  cfg.fault_plan = &storm;
  const SimulatedQos before = simulate_qos(cfg);

  FaultPlan extended = storm;
  extended.add(FaultPlan::recover({0, 7}, Duration::minutes(6)));
  QosSimulationConfig cfg2 = base_config(1);
  cfg2.fault_plan = &extended;
  const SimulatedQos after = simulate_qos(cfg2);

  EXPECT_EQ(after.level_pmf.weights(), before.level_pmf.weights());
  EXPECT_EQ(after.duplicates, before.duplicates);
  EXPECT_EQ(after.unresolved, before.unresolved);
  EXPECT_EQ(after.mean_chain_length, before.mean_chain_length);
}

TEST(FaultDeterminism, AttachingTheCheckerChangesNothing) {
  // The InvariantChecker is a pure observer: attaching it to a faulted
  // run must not change any outcome.
  const FaultPlan plan = storm_plan();
  QosSimulationConfig plain = base_config(1);
  plain.fault_plan = &plan;
  QosSimulationConfig checked = plain;
  checked.check_invariants = true;
  const SimulatedQos a = simulate_qos(plain);
  const SimulatedQos b = simulate_qos(checked);
  EXPECT_EQ(a.level_pmf.weights(), b.level_pmf.weights());
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.unresolved, b.unresolved);
  EXPECT_EQ(b.invariant_violations, 0);
}

}  // namespace
}  // namespace oaq
