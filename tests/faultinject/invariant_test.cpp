// InvariantChecker unit tests (ISSUE 5 tentpole): a clean episode passes,
// and each deliberately broken test double trips exactly its invariant.
#include "fault/invariants.hpp"

#include <gtest/gtest.h>

#include <string>

#include "oaq/episode.hpp"
#include "sim/simulator.hpp"

namespace oaq {
namespace {

ProtocolConfig config_5min_tau() {
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(5);
  return cfg;
}

/// A consistent single-alert episode: detected, one termination, one
/// timely alert delivered inside τ.
EpisodeResult clean_result() {
  EpisodeResult r;
  r.detected = true;
  r.detection = TimePoint::origin() + Duration::minutes(10);
  r.alert_delivered = true;
  r.timely = true;
  r.first_alert_sent = r.detection + Duration::minutes(2);
  r.alerts_sent = 1;
  r.terminations = 1;
  r.level = QosLevel::kSingle;
  return r;
}

/// Expects exactly `n` new violations, the first tagged `invariant`.
void expect_trips(const EpisodeResult& r, std::string_view invariant) {
  InvariantChecker checker;
  checker.check_episode(7, r, config_5min_tau());
  ASSERT_EQ(checker.violations(), 1u) << "expected exactly " << invariant;
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.samples().size(), 1u);
  EXPECT_EQ(checker.samples()[0].find(invariant), 0u)
      << "sample was: " << checker.samples()[0];
  EXPECT_NE(checker.samples()[0].find("episode 7"), std::string::npos);
}

TEST(InvariantChecker, CleanEpisodePasses) {
  InvariantChecker checker;
  checker.check_episode(1, clean_result(), config_5min_tau());
  checker.check_episode(2, EpisodeResult{}, config_5min_tau());  // undetected
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.episodes_checked(), 2u);
}

TEST(InvariantChecker, I1DetectedWithoutTermination) {
  EpisodeResult r = clean_result();
  r.terminations = 0;
  r.alerts_sent = 0;          // keep I5 quiet
  r.alert_delivered = false;  // keep I3/I4 quiet
  expect_trips(r, "I1");
}

TEST(InvariantChecker, I2DoubleTermination) {
  EpisodeResult r = clean_result();
  r.double_terminations = 1;
  expect_trips(r, "I2");
}

TEST(InvariantChecker, I3DeliveryWithoutDetection) {
  EpisodeResult r = clean_result();
  r.detected = false;
  expect_trips(r, "I3");
}

TEST(InvariantChecker, I4LateAlertCountedTimely) {
  EpisodeResult r = clean_result();
  r.first_alert_sent = r.detection + Duration::minutes(6);  // past τ = 5
  r.timely = true;
  expect_trips(r, "I4");
}

TEST(InvariantChecker, I4TimelyAlertCountedLate) {
  EpisodeResult r = clean_result();
  r.timely = false;  // but first_alert_sent is within τ
  expect_trips(r, "I4");
}

TEST(InvariantChecker, I5MoreAlertsThanTerminations) {
  EpisodeResult r = clean_result();
  r.alerts_sent = 2;
  r.wait_rescues = 1;  // keep I6 quiet
  expect_trips(r, "I5");
}

TEST(InvariantChecker, I6DuplicateWithoutRescue) {
  EpisodeResult r = clean_result();
  r.alerts_sent = 2;
  r.terminations = 2;  // keep I5 quiet
  expect_trips(r, "I6");
}

TEST(InvariantChecker, I7UnresolvedParticipantInCleanEpisode) {
  EpisodeResult r = clean_result();
  r.all_participants_resolved = false;
  expect_trips(r, "I7");
}

TEST(InvariantChecker, I7ToleratesUnresolvedUnderDropsOrFaults) {
  // Drops or injected faults explain a hanging participant — no finding.
  EpisodeResult dropped = clean_result();
  dropped.all_participants_resolved = false;
  dropped.telemetry.messages_dropped_link = 1;
  EpisodeResult faulted = clean_result();
  faulted.all_participants_resolved = false;
  faulted.telemetry.faults_injected = 1;
  InvariantChecker checker;
  checker.check_episode(1, dropped, config_5min_tau());
  checker.check_episode(2, faulted, config_5min_tau());
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantChecker, I8LedgerImbalance) {
  InvariantChecker checker;
  checker.check_simulator(3, SimAccounting{100, 98, 2, 0});  // balances
  EXPECT_TRUE(checker.ok());
  checker.check_simulator(3, SimAccounting{100, 98, 1, 0});  // leaks one
  EXPECT_EQ(checker.violations(), 1u);
  ASSERT_EQ(checker.samples().size(), 1u);
  EXPECT_EQ(checker.samples()[0].find("I8"), 0u);
}

TEST(InvariantChecker, RealSimulatorLedgerBalances) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::seconds(5), [] {});
  sim.schedule_after(Duration::seconds(1), [&] { sim.cancel(id); });
  sim.schedule_after(Duration::seconds(2), [] {});
  sim.run();
  InvariantChecker checker;
  checker.check_simulator(0, sim.accounting());
  EXPECT_TRUE(checker.ok());
  const SimAccounting a = sim.accounting();
  EXPECT_EQ(a.scheduled, 3u);
  EXPECT_EQ(a.cancelled, 1u);
  EXPECT_EQ(a.pending, 0u);
}

TEST(InvariantChecker, MergeSumsAndCapsSamples) {
  InvariantChecker a;
  InvariantChecker b;
  EpisodeResult bad = clean_result();
  bad.double_terminations = 1;
  for (int i = 0; i < 20; ++i) a.check_episode(i, bad, config_5min_tau());
  for (int i = 0; i < 20; ++i) b.check_episode(100 + i, bad, config_5min_tau());
  a.merge(b);
  EXPECT_EQ(a.violations(), 40u);
  EXPECT_EQ(a.episodes_checked(), 40u);
  EXPECT_EQ(a.samples().size(), InvariantChecker::kMaxSamples);
}

}  // namespace
}  // namespace oaq
