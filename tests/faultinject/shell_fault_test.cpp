// Shell-relative fault clauses (ISSUE 8): on a multi-shell constellation,
// plane-pair link_outage and partition clauses addressed to one shell must
// resolve to — and sever — only that shell's planes; out-of-shell
// references are rejected, never silently remapped.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/crosslink.hpp"
#include "orbit/constellation_builder.hpp"
#include "sim/simulator.hpp"

namespace oaq {
namespace {

struct Ping {
  int value = 0;
};

/// Shell 0: 2 planes × 3; shell 1: 3 planes × 3 (global planes 2..4).
Constellation two_shell_constellation() {
  WalkerShell low;
  low.total_sats = 6;
  low.planes = 2;
  low.phasing = 1;
  low.altitude_km = 600.0;
  low.inclination_deg = 97.0;
  WalkerShell high = low;
  high.total_sats = 9;
  high.planes = 3;
  high.altitude_km = 1200.0;
  return ConstellationBuilder().add_shell(low).add_shell(high).build();
}

TEST(ShellFaults, ResolveTranslatesToTheAddressedShellOnly) {
  const Constellation c = two_shell_constellation();
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({1, 0}, Duration::minutes(1), /*shell=*/1));
  plan.add(FaultPlan::link_outage(0, 1, Duration::zero(), Duration::minutes(5),
                                  /*shell=*/1));
  plan.add(FaultPlan::partition(0b101, Duration::zero(), Duration::minutes(5),
                                /*shell=*/1));
  plan.add(FaultPlan::link_outage(0, 1, Duration::zero(),
                                  Duration::minutes(5)));  // global, untouched

  const FaultPlan resolved = plan.resolve(c);
  ASSERT_EQ(resolved.size(), 4u);
  const auto& r = resolved.clauses();
  EXPECT_EQ(r[0].satellite, (SatelliteId{3, 0}));  // shell 1 starts at plane 2
  EXPECT_EQ(r[0].shell, -1);
  EXPECT_EQ(r[1].plane_a, 2);
  EXPECT_EQ(r[1].plane_b, 3);
  EXPECT_EQ(r[2].plane_mask, PlaneSet(0b101u << 2));
  EXPECT_EQ(r[3].plane_a, 0);
  EXPECT_EQ(r[3].plane_b, 1);
  EXPECT_EQ(resolved.max_plane(), 4);
}

TEST(ShellFaults, ResolveRejectsOutOfShellReferences) {
  const Constellation c = two_shell_constellation();
  const auto reject = [&](FaultClause clause) {
    FaultPlan plan;
    plan.add(clause);
    EXPECT_THROW((void)plan.resolve(c), std::invalid_argument);
  };
  // Shell 0 has 2 planes: plane 2 is its neighbor's, not a wraparound.
  reject(FaultPlan::link_outage(0, 2, Duration::zero(), Duration::minutes(5),
                                /*shell=*/0));
  reject(FaultPlan::fail_silent({3, 0}, Duration::minutes(1), /*shell=*/1));
  reject(FaultPlan::partition(0b1000, Duration::zero(), Duration::minutes(5),
                              /*shell=*/1));  // plane 3 of a 3-plane shell
  reject(FaultPlan::link_outage(0, 1, Duration::zero(), Duration::minutes(5),
                                /*shell=*/2));  // no such shell
}

TEST(ShellFaults, ShellClausesSeverOnlyTheAddressedShell) {
  // Behavioral regression: a shell-1 partition of {first shell-1 plane}
  // cuts shell-1 crosslinks crossing that boundary and nothing in shell 0,
  // even though shell 0 owns the same *relative* plane indices.
  const Constellation c = two_shell_constellation();
  FaultPlan plan;
  plan.add(FaultPlan::partition(0b1, Duration::zero(), Duration::minutes(30),
                                /*shell=*/1));
  plan.add(FaultPlan::link_outage(1, 2, Duration::minutes(0),
                                  Duration::minutes(30), /*shell=*/1));
  const FaultPlan resolved = plan.resolve(c);

  Simulator sim;
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(5);
  opt.max_delay = Duration::seconds(5);
  CrosslinkNetwork net(sim, opt, Rng(7));
  int delivered_shell0 = 0;
  int delivered_shell1 = 0;
  for (int p = 0; p < c.num_planes(); ++p) {
    const SatelliteId id{p, 0};
    int& counter = p < 2 ? delivered_shell0 : delivered_shell1;
    net.register_node(Address::sat(id),
                      [&counter](const Envelope&) { ++counter; });
  }
  FaultInjector injector(sim, net, resolved, Rng(8));
  injector.arm(TimePoint::origin());

  // Same relative pair (0, 1) in both shells: shell 0's link must survive
  // the shell-1 partition; shell 1's (global 2 → 3) must be cut, as must
  // the shell-1 outage pair (global 3 → 4).
  sim.schedule_at(TimePoint::at(Duration::minutes(5)), [&net] {
    net.send(Address::sat({0, 0}), Address::sat({1, 0}), Ping{});
    net.send(Address::sat({2, 0}), Address::sat({3, 0}), Ping{});
    net.send(Address::sat({3, 0}), Address::sat({4, 0}), Ping{});
  });
  sim.run();

  EXPECT_EQ(delivered_shell0, 1);
  EXPECT_EQ(delivered_shell1, 0);
  EXPECT_EQ(net.stats().dropped_link, 2u);

  // After the windows close the same sends all deliver.
  Simulator sim2;
  CrosslinkNetwork net2(sim2, opt, Rng(7));
  int delivered_after = 0;
  for (int p = 0; p < c.num_planes(); ++p) {
    net2.register_node(Address::sat({p, 0}),
                       [&delivered_after](const Envelope&) {
                         ++delivered_after;
                       });
  }
  FaultInjector injector2(sim2, net2, resolved, Rng(8));
  injector2.arm(TimePoint::origin());
  sim2.schedule_at(TimePoint::at(Duration::minutes(40)), [&net2] {
    net2.send(Address::sat({0, 0}), Address::sat({1, 0}), Ping{});
    net2.send(Address::sat({2, 0}), Address::sat({3, 0}), Ping{});
    net2.send(Address::sat({3, 0}), Address::sat({4, 0}), Ping{});
  });
  sim2.run();
  EXPECT_EQ(delivered_after, 3);
}

TEST(ShellFaults, ShellTokenRoundTripsThroughThePlanFormat) {
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({1, 2}, Duration::minutes(1.5), /*shell=*/1));
  plan.add(FaultPlan::link_outage(0, 1, Duration::minutes(0.5),
                                  Duration::minutes(2), /*shell=*/0));
  plan.add(FaultPlan::partition(0b11, Duration::minutes(2),
                                Duration::minutes(5), /*shell=*/1));
  plan.add(FaultPlan::link_outage(0, 1, Duration::zero(),
                                  Duration::minutes(1)));  // global: no token

  std::ostringstream os;
  write_fault_plan(plan, os);
  std::istringstream is(os.str());
  const FaultPlan back = parse_fault_plan(is);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.clauses()[i].shell, plan.clauses()[i].shell) << i;
    EXPECT_EQ(back.clauses()[i].plane_mask, plan.clauses()[i].plane_mask) << i;
  }

  // The token is strict: negative shells and trailing junk are rejected.
  std::istringstream bad1("link_outage 0 1 0 5 shell -1\n");
  EXPECT_THROW((void)parse_fault_plan(bad1), std::invalid_argument);
  std::istringstream bad2("link_outage 0 1 0 5 shell 1 junk\n");
  EXPECT_THROW((void)parse_fault_plan(bad2), std::invalid_argument);
  std::istringstream bad3("delay_spike 2 0 5 shell 1\n");
  EXPECT_THROW((void)parse_fault_plan(bad3), std::invalid_argument);
}

}  // namespace
}  // namespace oaq
