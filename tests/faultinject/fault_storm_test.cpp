// Randomized fault-storm property test (ISSUE 5 acceptance): hundreds of
// episodes under plans mixing ALL clause kinds — with lossy and reliable
// links — must keep every protocol invariant (I1–I8). This is the "under
// *any* fault plan" half of the checker's contract; the unit half (broken
// doubles are detected) is invariant_test.cpp.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "oaq/campaign.hpp"
#include "oaq/montecarlo.hpp"

namespace oaq {
namespace {

/// A randomized six-clause plan touching every clause kind. Times target
/// the episode's first minutes (signal-relative anchor), where the
/// protocol actually runs.
FaultPlan random_storm(Rng& rng, int k) {
  FaultPlan plan;
  const auto window = [&rng](double lo) {
    const double t0 = rng.uniform(lo, lo + 3.0);
    return std::pair(Duration::minutes(t0),
                     Duration::minutes(t0 + rng.uniform(0.5, 3.0)));
  };
  const int victim = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(k)));
  const double down = rng.uniform(0.5, 3.0);
  plan.add(FaultPlan::fail_silent({0, victim}, Duration::minutes(down)));
  plan.add(FaultPlan::recover({0, victim},
                              Duration::minutes(down + rng.uniform(1.0, 3.0))));
  const auto [o0, o1] = window(0.0);
  plan.add(FaultPlan::link_outage(0, 0, o0, o1));
  const auto [d0, d1] = window(0.5);
  plan.add(FaultPlan::delay_spike(rng.uniform(1.5, 4.0), d0, d1));
  const auto [l0, l1] = window(0.0);
  plan.add(FaultPlan::burst_loss(rng.uniform(0.1, 0.9), l0, l1));
  const auto [p0, p1] = window(1.0);
  plan.add(FaultPlan::partition(0b1, p0, p1));
  return plan;
}

QosSimulationConfig storm_config(int episodes, std::uint64_t seed) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = seed;
  cfg.check_invariants = true;
  return cfg;
}

TEST(FaultStorm, RandomPlansKeepEveryInvariant) {
  int total_episodes = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 1013);
    const FaultPlan plan = random_storm(rng, 9);
    QosSimulationConfig cfg = storm_config(100, seed);
    cfg.fault_plan = &plan;
    MetricsRegistry metrics;
    cfg.metrics = &metrics;
    const SimulatedQos qos = simulate_qos(cfg);
    total_episodes += static_cast<int>(qos.episodes);
    EXPECT_EQ(qos.invariant_violations, 0)
        << "seed " << seed << ": " << (qos.invariant_samples.empty()
                                           ? std::string("(no samples)")
                                           : qos.invariant_samples.front());
    // The storm really fired: every episode replays the six clauses.
    EXPECT_GE(metrics.counter("net.fault.injected"), qos.episodes);
    EXPECT_EQ(metrics.counter("invariant.violations"), 0);
  }
  EXPECT_GE(total_episodes, 300);
}

TEST(FaultStorm, LossyReliableLinksUnderStormKeepInvariants) {
  Rng rng(77);
  const FaultPlan plan = random_storm(rng, 9);
  QosSimulationConfig cfg = storm_config(150, 5);
  cfg.fault_plan = &plan;
  cfg.protocol.crosslink_loss_probability = 0.1;
  cfg.protocol.reliable_links = true;
  cfg.protocol.link_retry_limit = 2;
  const SimulatedQos qos = simulate_qos(cfg);
  EXPECT_EQ(qos.invariant_violations, 0)
      << (qos.invariant_samples.empty() ? std::string("(no samples)")
                                        : qos.invariant_samples.front());
  EXPECT_EQ(qos.episodes, 150);
}

TEST(FaultStorm, ParallelStormMatchesSerialAndKeepsInvariants) {
  Rng rng(4242);
  const FaultPlan plan = random_storm(rng, 9);
  QosSimulationConfig serial = storm_config(200, 9);
  serial.fault_plan = &plan;
  serial.jobs = 1;
  QosSimulationConfig wide = serial;
  wide.jobs = 8;
  const SimulatedQos a = simulate_qos(serial);
  const SimulatedQos b = simulate_qos(wide);
  EXPECT_EQ(a.invariant_violations, 0);
  EXPECT_EQ(b.invariant_violations, 0);
  EXPECT_EQ(a.level_pmf.weights(), b.level_pmf.weights());
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.unresolved, b.unresolved);
}

TEST(FaultStorm, CampaignStormKeepsInvariants) {
  // Campaign anchor is the replication origin: script a mid-campaign
  // degradation stretch plus a node outage.
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 3}, Duration::hours(2)));
  plan.add(FaultPlan::recover({0, 3}, Duration::hours(4)));
  plan.add(FaultPlan::burst_loss(0.5, Duration::hours(1), Duration::hours(3)));
  plan.add(FaultPlan::delay_spike(2.0, Duration::hours(2), Duration::hours(5)));
  plan.add(FaultPlan::link_outage(0, 0, Duration::hours(6), Duration::hours(7)));
  plan.add(FaultPlan::partition(0b1, Duration::hours(8), Duration::hours(9)));

  CampaignConfig cfg;
  cfg.k = 9;
  cfg.signal_arrival_rate = Rate::per_hour(6.0);
  cfg.horizon = Duration::hours(12);
  cfg.protocol.nu = Rate::per_minute(30.0);
  cfg.protocol.computation_cap = Duration::seconds(6);
  cfg.seed = 11;
  cfg.replications = 3;
  cfg.fault_plan = &plan;
  cfg.check_invariants = true;
  const CampaignResult result = run_campaign(cfg);
  EXPECT_GT(result.signals, 30);
  EXPECT_EQ(result.invariant_violations, 0)
      << (result.invariant_samples.empty()
              ? std::string("(no samples)")
              : result.invariant_samples.front());
}

}  // namespace
}  // namespace oaq
