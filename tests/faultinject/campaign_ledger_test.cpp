// Campaign attribution-ledger acceptance (ISSUE 7): under randomized
// fault-storm campaigns with lossy reliable links, the per-target ledger
// must (a) reconcile exactly with the trace's drop/retry/fault events,
// row by row, (b) keep the sharpened per-episode I7 audit free of false
// violations, and (c) be bit-identical for jobs 1, 4, 8.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "oaq/campaign.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace oaq {
namespace {

/// A campaign-anchored storm: clause times are relative to the campaign
/// origin, so windows span the first simulated hours where arrivals land.
FaultPlan campaign_storm(Rng& rng, int k) {
  FaultPlan plan;
  const auto window = [&rng](double lo_min, double len_max) {
    const double t0 = rng.uniform(lo_min, lo_min + 60.0);
    return std::pair(Duration::minutes(t0),
                     Duration::minutes(t0 + rng.uniform(5.0, len_max)));
  };
  const int victim = static_cast<int>(
      rng.uniform_index(static_cast<std::uint64_t>(k)));
  const double down = rng.uniform(10.0, 60.0);
  plan.add(FaultPlan::fail_silent({0, victim}, Duration::minutes(down)));
  plan.add(FaultPlan::recover(
      {0, victim}, Duration::minutes(down + rng.uniform(20.0, 60.0))));
  // Long, violent windows: the exactness assertions below need actual
  // final drops, which reliable links make rare under a mild storm.
  const auto [o0, o1] = window(0.0, 60.0);
  plan.add(FaultPlan::link_outage(0, 0, o0, o1));
  const auto [l0, l1] = window(0.0, 120.0);
  plan.add(FaultPlan::burst_loss(rng.uniform(0.5, 0.9), l0, l1));
  const auto [d0, d1] = window(60.0, 30.0);
  plan.add(FaultPlan::delay_spike(rng.uniform(1.5, 3.0), d0, d1));
  return plan;
}

CampaignConfig storm_config(const FaultPlan* plan, std::uint64_t seed,
                            int jobs) {
  CampaignConfig cfg;
  cfg.k = 9;
  cfg.signal_arrival_rate = Rate::per_hour(10.0);
  cfg.horizon = Duration::hours(4);
  cfg.replications = 4;
  cfg.seed = seed;
  cfg.jobs = jobs;
  cfg.fault_plan = plan;
  cfg.protocol.crosslink_loss_probability = 0.25;
  cfg.protocol.reliable_links = true;
  // One retry only: with the default budget, exhausted-retry final drops
  // are so rare the exactness assertions below would often see zero.
  cfg.protocol.link_retry_limit = 1;
  return cfg;
}

/// Copy of `row` with retries_exhausted cleared: the trace has no
/// dedicated exhausted-retry event (a final drop is just kXlinkDrop), so
/// the witness cannot reconstruct that one column.
LedgerRow comparable(const LedgerRow& row) {
  LedgerRow out = row;
  out.retries_exhausted = 0;
  return out;
}

/// Ledger rebuilt from the trace's attributed xlink/fault events: the
/// independent witness the real ledger must match row for row.
EpisodeLedger ledger_from_trace(const std::string& jsonl) {
  EpisodeLedger witness;
  std::istringstream is(jsonl);
  std::string line;
  while (std::getline(is, line)) {
    const auto parsed = parse_trace_line(line);
    if (!parsed) continue;
    const TraceEvent& ev = parsed->event;
    switch (ev.type) {
      case TraceEventType::kXlinkDrop:
        witness.record_drop(ev.episode, static_cast<DropReason>(ev.a));
        break;
      case TraceEventType::kXlinkRetry:
        witness.record_retry(ev.episode);
        break;
      case TraceEventType::kFaultFailSilent:
      case TraceEventType::kFaultRecover:
      case TraceEventType::kFaultLinkOutage:
      case TraceEventType::kFaultDelaySpike:
      case TraceEventType::kFaultBurstLoss:
      case TraceEventType::kFaultPartition:
        if (ev.a > 0) witness.record_fault(ev.episode);
        break;
      default:
        break;
    }
  }
  return witness;
}

std::string ledger_json(const EpisodeLedger& ledger) {
  std::ostringstream os;
  ledger.write_json(os);
  return os.str();
}

struct StormRun {
  CampaignResult result;
  EpisodeLedger ledger;
  std::string trace_jsonl;
};

StormRun run_storm(const FaultPlan& plan, std::uint64_t seed, int jobs,
                   bool check_invariants) {
  CampaignConfig cfg = storm_config(&plan, seed, jobs);
  cfg.check_invariants = check_invariants;
  cfg.episode_attribution = true;
  TraceCollector trace;
  cfg.trace = &trace;
  StormRun run;
  cfg.ledger = &run.ledger;
  run.result = run_campaign(cfg);
  std::ostringstream os;
  trace.write_jsonl(os);
  run.trace_jsonl = os.str();
  return run;
}

TEST(CampaignLedger, RowsReconcileExactlyWithAttributedTraceEvents) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 2027);
    const FaultPlan plan = campaign_storm(rng, 9);
    const StormRun run = run_storm(plan, seed, /*jobs=*/2,
                                   /*check_invariants=*/false);
    ASSERT_GT(run.result.signals, 0);

    EpisodeLedger witness = ledger_from_trace(run.trace_jsonl);
    // The real ledger is pre-sized to the arrival count; quiet top ids
    // leave the witness shorter. Equalize with all-zero rows.
    witness.reserve(run.ledger.size());
    const LedgerRow totals = run.ledger.totals();
    EXPECT_EQ(comparable(totals), comparable(witness.totals()))
        << "seed " << seed;
    // The storm actually exercised the attribution paths, including the
    // retry-exhaustion accounting the trace cannot see.
    EXPECT_GT(totals.drops(), 0) << "seed " << seed;
    EXPECT_GT(totals.retries, 0) << "seed " << seed;
    EXPECT_GT(totals.retries_exhausted, 0) << "seed " << seed;
    EXPECT_GT(totals.faults, 0) << "seed " << seed;

    // Row-for-row exactness, including the global row (campaign-wide
    // fault clauses and unattributable traffic).
    ASSERT_EQ(run.ledger.size(), witness.size()) << "seed " << seed;
    for (std::size_t ep = 0; ep < run.ledger.size(); ++ep) {
      EXPECT_EQ(comparable(run.ledger.row(static_cast<std::int64_t>(ep))),
                comparable(witness.row(static_cast<std::int64_t>(ep))))
          << "seed " << seed << " target " << ep;
    }
    EXPECT_EQ(comparable(run.ledger.global_row()),
              comparable(witness.global_row()))
        << "seed " << seed;
  }
}

TEST(CampaignLedger, SharpenedI7HasNoFalseViolationsAtAnyJobs) {
  Rng rng(4099);
  const FaultPlan plan = campaign_storm(rng, 9);
  for (const int jobs : {1, 4, 8}) {
    const StormRun run = run_storm(plan, /*seed=*/5, jobs,
                                   /*check_invariants=*/true);
    EXPECT_EQ(run.result.invariant_violations, 0)
        << "jobs " << jobs << ": "
        << (run.result.invariant_samples.empty()
                ? std::string("(no samples)")
                : run.result.invariant_samples.front());
  }
}

TEST(CampaignLedger, LedgerIsBitIdenticalAcrossWorkerCounts) {
  Rng rng(8191);
  const FaultPlan plan = campaign_storm(rng, 9);
  const StormRun serial = run_storm(plan, /*seed=*/9, /*jobs=*/1,
                                    /*check_invariants=*/false);
  const std::string expected = ledger_json(serial.ledger);
  EXPECT_NE(expected.find("\"ep\":"), std::string::npos);  // non-trivial
  for (const int jobs : {4, 8}) {
    const StormRun run = run_storm(plan, /*seed=*/9, jobs,
                                   /*check_invariants=*/false);
    EXPECT_EQ(ledger_json(run.ledger), expected) << "jobs " << jobs;
    EXPECT_EQ(run.trace_jsonl, serial.trace_jsonl) << "jobs " << jobs;
  }
}

}  // namespace
}  // namespace oaq
