// Stochastic fault processes (ISSUE 10 tentpole): round-trip of the
// generative clause kinds through the on-disk plan format, parse
// diagnostics, deterministic expansion of Gilbert–Elliott / outage-train /
// lifecycle sample paths, CTMC cross-validation of the lifecycle renewal
// process, the byte-identity contract of stochastic episodes across
// worker counts and interleave widths, and health-aware chain re-routing
// around a demoted link.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "fault/ctmc.hpp"
#include "fault/plan.hpp"
#include "fault/process.hpp"
#include "oaq/episode.hpp"
#include "oaq/montecarlo.hpp"
#include "oaq/schedule.hpp"

namespace oaq {
namespace {

FaultPlan generative_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::ge_loss(0, 1, 4.0, 2.0, 0.8, Duration::minutes(0),
                              Duration::minutes(8)));
  plan.add(FaultPlan::outage_train(1, 2, 1.5, 0.5, Duration::minutes(1),
                                   Duration::minutes(7)));
  plan.add(FaultPlan::sat_lifecycle({2, 3}, 0.2, 1.0, Duration::minutes(0),
                                    Duration::minutes(30)));
  return plan;
}

std::string rendered(const FaultPlan& plan) {
  std::ostringstream os;
  write_fault_plan(plan, os);
  return os.str();
}

TEST(FaultProcessPlan, StochasticKindsRoundTripThroughTheFileFormat) {
  FaultPlan plan = generative_plan();
  plan.add(FaultPlan::ge_loss(0, 1, 3.0, 1.0, 1.0, Duration::minutes(0),
                              Duration::minutes(5), /*shell=*/1));
  std::istringstream is(rendered(plan));
  const FaultPlan back = parse_fault_plan(is);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultClause& want = plan.clauses()[i];
    const FaultClause& got = back.clauses()[i];
    EXPECT_EQ(got.kind, want.kind) << "clause " << i;
    EXPECT_EQ(got.plane_a, want.plane_a) << "clause " << i;
    EXPECT_EQ(got.plane_b, want.plane_b) << "clause " << i;
    EXPECT_EQ(got.satellite, want.satellite) << "clause " << i;
    EXPECT_DOUBLE_EQ(got.value, want.value) << "clause " << i;
    EXPECT_DOUBLE_EQ(got.param_a, want.param_a) << "clause " << i;
    EXPECT_DOUBLE_EQ(got.param_b, want.param_b) << "clause " << i;
    EXPECT_EQ(got.shell, want.shell) << "clause " << i;
    EXPECT_DOUBLE_EQ(got.window_start.to_seconds(),
                     want.window_start.to_seconds())
        << "clause " << i;
    EXPECT_DOUBLE_EQ(got.window_end.to_seconds(), want.window_end.to_seconds())
        << "clause " << i;
  }
}

TEST(FaultProcessPlan, ParseErrorsNameTheLineAndToken) {
  std::istringstream is(
      "# stochastic storm\n"
      "ge_loss 0 1 bogus 2.0 0.8 0 8\n");
  try {
    (void)parse_fault_plan(is);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("'bogus'"), std::string::npos) << what;
  }
}

TEST(FaultProcessPlan, HorizonRejectsClausesThatCouldNeverFire) {
  // A process whose window opens at/after the episode horizon would never
  // take effect — the horizon-aware parser names both times in the error.
  const std::string text = "outage_train 0 1 1.0 0.5 10 20\n";
  {
    std::istringstream is(text);
    EXPECT_NO_THROW((void)parse_fault_plan(is, Duration::infinity()));
  }
  std::istringstream is(text);
  try {
    (void)parse_fault_plan(is, Duration::minutes(5));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("horizon"), std::string::npos) << what;
  }
}

TEST(FaultProcessExpansion, DeterministicInRngAndAcrossInstances) {
  const FaultPlan plan = generative_plan();
  ASSERT_TRUE(has_stochastic_clauses(plan));
  FaultProcessExpander a;
  FaultProcessExpander b;
  const std::string first = rendered(a.expand(plan, Rng(42).fork(7)));
  ASSERT_FALSE(first.empty());
  // Same expander (reused buffers), fresh expander, different stream.
  EXPECT_EQ(rendered(a.expand(plan, Rng(42).fork(7))), first);
  EXPECT_EQ(rendered(b.expand(plan, Rng(42).fork(7))), first);
  EXPECT_NE(rendered(b.expand(plan, Rng(43).fork(7))), first);
  EXPECT_EQ(a.stats().expansions, 2u);
  EXPECT_EQ(a.stats().stochastic_clauses, 2u * plan.size());
}

TEST(FaultProcessExpansion, ScriptedClausesPassThroughUnchanged) {
  FaultPlan plan;
  plan.add(FaultPlan::delay_spike(3.0, Duration::minutes(1),
                                  Duration::minutes(4)));
  plan.add(FaultPlan::ge_loss(0, 1, 4.0, 2.0, 1.0, Duration::minutes(0),
                              Duration::minutes(8)));
  plan.add(FaultPlan::burst_loss(0.3, Duration::minutes(0),
                                 Duration::minutes(2)));
  FaultProcessExpander ex;
  const FaultPlan& out = ex.expand(plan, Rng(9));
  ASSERT_GE(out.size(), 3u);
  // Generated clauses replace their generative clause in place, so the
  // scripted neighbours keep their positions around the expansion.
  EXPECT_EQ(out.clauses().front().kind, FaultClauseKind::kDelaySpike);
  EXPECT_EQ(out.clauses().back().kind, FaultClauseKind::kBurstLoss);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_EQ(out.clauses()[i].kind, FaultClauseKind::kLinkLoss);
  }
  EXPECT_FALSE(has_stochastic_clauses(out));
}

TEST(FaultProcessExpansion, EmittedWindowsStayInsideTheClauseWindow) {
  FaultPlan plan;
  plan.add(FaultPlan::ge_loss(0, 1, 8.0, 4.0, 1.0, Duration::minutes(2),
                              Duration::minutes(6)));
  plan.add(FaultPlan::outage_train(2, 3, 0.3, 0.2, Duration::minutes(2),
                                   Duration::minutes(6)));
  FaultProcessExpander ex;
  const FaultPlan& out = ex.expand(plan, Rng(5));
  ASSERT_FALSE(out.empty());
  for (const FaultClause& c : out.clauses()) {
    ASSERT_TRUE(c.kind == FaultClauseKind::kLinkLoss ||
                c.kind == FaultClauseKind::kLinkOutage);
    EXPECT_GE(c.window_start.to_minutes(), 2.0);
    EXPECT_LE(c.window_end.to_minutes(), 6.0);
    EXPECT_LT(c.window_start.to_seconds(), c.window_end.to_seconds());
    if (c.kind == FaultClauseKind::kLinkLoss) {
      EXPECT_DOUBLE_EQ(c.value, 1.0);
    }
  }
  EXPECT_EQ(ex.stats().stochastic_clauses, 2u);
  EXPECT_EQ(ex.stats().emitted_clauses, out.size());
  EXPECT_EQ(ex.stats().truncated_clauses, 0u);
}

TEST(FaultProcessExpansion, LifecyclePairsStayMatchedAndTagged) {
  FaultPlan plan;
  plan.add(FaultPlan::sat_lifecycle({1, 4}, 0.5, 2.0, Duration::minutes(0),
                                    Duration::minutes(60)));
  FaultProcessExpander ex;
  const FaultPlan& out = ex.expand(plan, Rng(21));
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.size() % 2, 0u);  // every death has its spare activation
  double prev_min = 0.0;
  for (std::size_t i = 0; i < out.size(); i += 2) {
    const FaultClause& death = out.clauses()[i];
    const FaultClause& spare = out.clauses()[i + 1];
    EXPECT_EQ(death.kind, FaultClauseKind::kFailSilent);
    EXPECT_EQ(spare.kind, FaultClauseKind::kRecover);
    EXPECT_EQ(death.origin, FaultClauseOrigin::kLifecycle);
    EXPECT_EQ(spare.origin, FaultClauseOrigin::kLifecycle);
    EXPECT_EQ(death.satellite, (SatelliteId{1, 4}));
    EXPECT_EQ(spare.satellite, (SatelliteId{1, 4}));
    // Deaths land inside the window (the spare activation may exceed it —
    // a pair is never split); renewals are chronological.
    EXPECT_LT(death.at.to_minutes(), 60.0);
    EXPECT_GE(death.at.to_minutes(), prev_min);
    EXPECT_GT(spare.at.to_seconds(), death.at.to_seconds());
    prev_min = spare.at.to_minutes();
  }
}

TEST(FaultProcessExpansion, LifecycleDeadFractionMatchesTheCtmc) {
  // The sat_lifecycle renewal process is the two-state availability CTMC
  // (alive --λ--> dead --μ--> alive): the long-run dead fraction of the
  // expanded sample path must match the chain's stationary solution
  // λ/(λ+μ) computed by the uniformization solver.
  const double death_rate = 0.2;       // λ, per minute
  const double spare_mean_min = 1.0;   // 1/μ
  const double horizon_min = 2400.0;   // ~400 renewals, well under the cap
  FaultPlan plan;
  plan.add(FaultPlan::sat_lifecycle({0, 0}, death_rate, spare_mean_min,
                                    Duration::zero(),
                                    Duration::minutes(horizon_min)));
  FaultProcessExpander ex;
  const FaultPlan& out = ex.expand(plan, Rng(1234));
  ASSERT_EQ(ex.stats().truncated_clauses, 0u);
  ASSERT_GE(out.size(), 200u);
  double dead_min = 0.0;
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    const double down = out.clauses()[i].at.to_minutes();
    const double up =
        std::min(out.clauses()[i + 1].at.to_minutes(), horizon_min);
    if (up > down) dead_min += up - down;
  }
  const double empirical = dead_min / horizon_min;

  Ctmc chain(2);
  chain.add_transition(0, 1, death_rate);          // alive → dead
  chain.add_transition(1, 0, 1.0 / spare_mean_min);  // spare activation
  const std::vector<double> pi = chain.steady_state();
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[1], death_rate / (death_rate + 1.0 / spare_mean_min), 1e-9);
  EXPECT_NEAR(empirical, pi[1], 0.03);
}

TEST(FaultProcessExpansion, DegenerateRatesTruncateAtTheCap) {
  // Sub-millisecond dwells over an hour would emit tens of thousands of
  // windows; the expander truncates the sample path at the per-clause cap
  // instead of exhausting memory, and says so in its stats.
  FaultPlan plan;
  plan.add(FaultPlan::ge_loss(0, 1, 2000.0, 2000.0, 1.0, Duration::zero(),
                              Duration::minutes(60)));
  FaultProcessExpander ex;
  const FaultPlan& out = ex.expand(plan, Rng(3));
  EXPECT_EQ(out.size(), static_cast<std::size_t>(
                            FaultProcessExpander::kMaxIntervalsPerClause));
  EXPECT_EQ(ex.stats().truncated_clauses, 1u);
}

// --- Episode-level determinism of the stochastic path. -------------------

QosSimulationConfig storm_config(int jobs) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 400;
  cfg.seed = 97;
  cfg.jobs = jobs;
  cfg.protocol.self_healing_links = true;
  cfg.protocol.link_health_alpha = 0.45;
  cfg.protocol.reliable_links = true;
  cfg.check_invariants = true;
  return cfg;
}

FaultPlan storm_process_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::ge_loss(0, 0, 4.0, 2.0, 1.0, Duration::zero(),
                              Duration::minutes(8)));
  plan.add(FaultPlan::outage_train(0, 0, 1.0, 0.5, Duration::zero(),
                                   Duration::minutes(8)));
  plan.add(FaultPlan::sat_lifecycle({0, 2}, 0.05, 1.0, Duration::zero(),
                                    Duration::minutes(8)));
  return plan;
}

struct Rendered {
  std::string trace;
  std::string metrics;
  SimulatedQos qos;
};

Rendered render(QosSimulationConfig cfg) {
  TraceCollector trace;
  MetricsRegistry metrics;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  Rendered out;
  out.qos = simulate_qos(cfg);
  std::ostringstream ts;
  trace.write_jsonl(ts);
  out.trace = ts.str();
  std::ostringstream ms;
  metrics.write_json(ms);
  out.metrics = ms.str();
  return out;
}

TEST(FaultProcessDeterminism, StochasticStormBitIdenticalAcrossJobsAndWidths) {
  const FaultPlan plan = storm_process_plan();
  QosSimulationConfig serial = storm_config(1);
  serial.fault_plan = &plan;
  const Rendered golden = render(serial);
  ASSERT_FALSE(golden.trace.empty());
  EXPECT_EQ(golden.qos.invariant_violations, 0);
  for (const int jobs : {4, 8}) {
    QosSimulationConfig cfg = storm_config(jobs);
    cfg.fault_plan = &plan;
    const Rendered wide = render(cfg);
    EXPECT_EQ(wide.trace, golden.trace) << "trace drifted at jobs=" << jobs;
    EXPECT_EQ(wide.metrics, golden.metrics)
        << "metrics drifted at jobs=" << jobs;
  }
  // The interleaved drain must realise the same sample paths: expansion
  // happens at arm() time from the reserved fork, before any lane events.
  for (const int width : {1, 8}) {
    QosSimulationConfig cfg = storm_config(4);
    cfg.fault_plan = &plan;
    cfg.interleave_width = width;
    const Rendered wide = render(cfg);
    EXPECT_EQ(wide.trace, golden.trace) << "trace drifted at width=" << width;
    EXPECT_EQ(wide.metrics, golden.metrics)
        << "metrics drifted at width=" << width;
  }
}

TEST(FaultProcessDeterminism, InertStochasticClausesDoNotPerturbProtocolDraws) {
  // Processes confined to planes the single-plane analytic episode never
  // crosses: expansion consumes only the reserved fault fork, so the
  // protocol outcome must be bit-identical to the unfaulted run.
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 500;
  cfg.seed = 97;
  cfg.jobs = 1;
  const SimulatedQos baseline = simulate_qos(cfg);

  FaultPlan inert;
  inert.add(FaultPlan::ge_loss(7, 8, 4.0, 2.0, 1.0, Duration::zero(),
                               Duration::minutes(8)));
  inert.add(FaultPlan::outage_train(8, 9, 0.5, 0.5, Duration::zero(),
                                    Duration::minutes(8)));
  inert.add(FaultPlan::sat_lifecycle({7, 0}, 0.2, 1.0, Duration::zero(),
                                     Duration::minutes(8)));
  cfg.fault_plan = &inert;
  const SimulatedQos faulted = simulate_qos(cfg);

  EXPECT_EQ(faulted.level_pmf.weights(), baseline.level_pmf.weights());
  EXPECT_EQ(faulted.duplicates, baseline.duplicates);
  EXPECT_EQ(faulted.unresolved, baseline.unresolved);
  EXPECT_EQ(faulted.untimely, baseline.untimely);
  EXPECT_EQ(faulted.mean_chain_length, baseline.mean_chain_length);
}

// --- Health-aware re-routing around a demoted link. ----------------------

/// Hand-scripted multi-plane pass horizon: the analytic schedule is
/// single-plane, so re-routing (which skips a whole demoted plane pair)
/// needs passes from several planes.
class ScriptedSchedule final : public CoverageSchedule {
 public:
  explicit ScriptedSchedule(std::vector<Pass> passes)
      : passes_(std::move(passes)) {}

  [[nodiscard]] std::vector<Pass> passes(Duration from,
                                         Duration to) const override {
    std::vector<Pass> out;
    for (const Pass& p : passes_) {
      if (p.end >= from && p.start <= to) out.push_back(p);
    }
    return out;
  }

 private:
  std::vector<Pass> passes_;
};

TEST(FaultProcessReroute, DemotedLinkIsSkippedForAHealthyPlane) {
  // Detector on plane 0; the natural chain successor is plane 1 (two
  // passes), with a plane-2 pass behind them. Plane 0 <-> 1 is fully
  // lossy, so the first coordination request fails, demotes the link
  // (alpha 0.9: one failure takes the EWMA to 0.1 < 0.5), and the
  // re-route scan must skip BOTH plane-1 passes and settle on plane 2.
  const ScriptedSchedule schedule({
      {{0, 0}, Duration::minutes(0.0), Duration::minutes(1.0)},
      {{1, 0}, Duration::minutes(1.5), Duration::minutes(2.5)},
      {{1, 1}, Duration::minutes(3.0), Duration::minutes(4.0)},
      {{2, 0}, Duration::minutes(4.5), Duration::minutes(5.5)},
  });
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(10);
  cfg.self_healing_links = true;
  cfg.link_health_alpha = 0.9;
  // Reliable links matter here: a best-effort loss fails synchronously
  // inside send(), before the requester arms its waiting flag, so the
  // drop hook would ignore it. With retries the failure surfaces later,
  // through the DES — the path production re-routes actually take.
  cfg.reliable_links = true;
  EpisodeEngine engine(schedule, cfg, /*opportunity_adaptive=*/true);

  FaultPlan plan;
  plan.add(FaultPlan::link_loss(0, 1, 1.0, Duration::zero(),
                                Duration::minutes(9)));
  EpisodeFaultHooks hooks;
  hooks.plan = &plan;

  Rng rng(77);
  const EpisodeResult result =
      engine.run(TimePoint::at(Duration::minutes(0.2)), Duration::minutes(30),
                 rng, {}, {}, nullptr, 0, &hooks);
  EXPECT_TRUE(result.detected);
  EXPECT_GE(result.reroutes, 1);
  EXPECT_GE(result.telemetry.links_demoted, 1u);
  EXPECT_GE(result.coordination_requests, 2);
  EXPECT_TRUE(result.alert_delivered);
  bool plane2_joined = false;
  for (const SatelliteId& sat : result.participants) {
    plane2_joined |= sat.plane == 2;
  }
  EXPECT_TRUE(plane2_joined);
}

}  // namespace
}  // namespace oaq
