#include "geoloc/sequential.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geoloc/accuracy.hpp"
#include "geoloc/crlb.hpp"

namespace oaq {
namespace {

constexpr double kCarrierHz = 400.0e6;

struct MultiPass {
  Emitter emitter;
  std::vector<std::vector<FoaMeasurement>> passes;
};

/// Several satellites of one (slightly spread) plane revisit the emitter.
/// Earth rotation shifts each pass's track, giving geometry diversity.
MultiPass make_passes(int n_passes, double sigma_hz, std::uint64_t seed) {
  MultiPass mp;
  mp.emitter.position = GeoPoint::from_degrees(30.0, 31.0);
  mp.emitter.carrier_hz = kCarrierHz;
  mp.emitter.start = TimePoint::origin();
  const DopplerModel model(true);
  Rng rng(seed);
  const Duration revisit = Duration::minutes(9);  // Tr[10]
  for (int p = 0; p < n_passes; ++p) {
    // Satellite p trails by p slots: same geometry shifted in time; the
    // Earth's rotation during p·Tr displaces the ground track.
    const Orbit orbit = Orbit::circular_with_period(
        Duration::minutes(90), deg2rad(85.0), deg2rad(30.0),
        -2.0 * kPi * p / 10.0);
    const auto window_start = Duration::minutes(5) + revisit * p;
    const auto window_end = Duration::minutes(13) + revisit * p;
    auto batch = model.take_measurements(
        orbit, {0, p}, mp.emitter,
        measurement_epochs(window_start, window_end, 25), deg2rad(18.0),
        sigma_hz, rng);
    mp.passes.push_back(std::move(batch));
  }
  return mp;
}

TEST(SequentialLocalizer, ErrorShrinksWithEachPass) {
  const auto mp = make_passes(3, 5.0, 11);
  SequentialLocalizer loc;
  std::vector<double> sigma_km;
  for (const auto& batch : mp.passes) {
    ASSERT_GE(batch.size(), 3u);
    const auto& est = loc.incorporate(batch);
    EXPECT_TRUE(est.converged);
    sigma_km.push_back(est.position_error_1sigma_km);
  }
  ASSERT_EQ(sigma_km.size(), 3u);
  EXPECT_LT(sigma_km[1], sigma_km[0]);
  EXPECT_LT(sigma_km[2], sigma_km[1]);
  EXPECT_EQ(loc.passes_incorporated(), 3);
  // Final estimate close to the truth.
  EXPECT_LT(great_circle_km(loc.current().position, mp.emitter.position),
            5.0 * sigma_km[2] + 1.0);
}

TEST(SequentialLocalizer, MatchesBatchSolution) {
  // Sequential incorporation of two batches should approximate solving all
  // measurements jointly (information-form recursion is exact for linear
  // models; near-exact here).
  const auto mp = make_passes(2, 2.0, 12);
  SequentialLocalizer loc;
  loc.incorporate(mp.passes[0]);
  const auto est_seq = loc.incorporate(mp.passes[1]);

  std::vector<FoaMeasurement> all = mp.passes[0];
  all.insert(all.end(), mp.passes[1].begin(), mp.passes[1].end());
  const WlsGeolocator solver;
  const auto est_joint = solver.solve(all, WlsGeolocator::initial_guess(all),
                                      kCarrierHz);
  EXPECT_LT(great_circle_km(est_seq.position, est_joint.position), 1.0);
  EXPECT_NEAR(est_seq.position_error_1sigma_km,
              est_joint.position_error_1sigma_km,
              0.5 * est_joint.position_error_1sigma_km + 0.05);
}

TEST(SequentialLocalizer, HintOverridesDataDrivenGuess) {
  const auto mp = make_passes(1, 1.0, 13);
  SequentialLocalizer loc;
  const auto& est =
      loc.incorporate(mp.passes[0], GeoPoint::from_degrees(29.0, 30.0));
  EXPECT_TRUE(est.converged);
  // A single pass leaves the cross-track direction weakly observable (the
  // paper's "ambiguity problem"), so km-scale error is expected.
  EXPECT_LT(great_circle_km(est.position, mp.emitter.position),
            5.0 * est.position_error_1sigma_km + 1.0);
}

TEST(SequentialLocalizer, ResetClearsState) {
  const auto mp = make_passes(1, 1.0, 14);
  SequentialLocalizer loc;
  loc.incorporate(mp.passes[0]);
  EXPECT_TRUE(loc.has_estimate());
  loc.reset();
  EXPECT_FALSE(loc.has_estimate());
  EXPECT_EQ(loc.passes_incorporated(), 0);
  EXPECT_THROW((void)loc.current(), PreconditionError);
}

TEST(Crlb, MoreMeasurementsTightenTheBound) {
  const auto mp = make_passes(2, 5.0, 15);
  const double b1 = crlb_position_km(mp.passes[0], mp.emitter.position,
                                     kCarrierHz, true);
  std::vector<FoaMeasurement> all = mp.passes[0];
  all.insert(all.end(), mp.passes[1].begin(), mp.passes[1].end());
  const double b2 = crlb_position_km(all, mp.emitter.position, kCarrierHz,
                                     true);
  EXPECT_GT(b1, 0.0);
  EXPECT_LT(b2, b1);
}

TEST(Crlb, LowerNoiseTightensTheBound) {
  const auto hi = make_passes(1, 10.0, 16);
  const auto lo = make_passes(1, 1.0, 16);
  const double b_hi = crlb_position_km(hi.passes[0], hi.emitter.position,
                                       kCarrierHz, true);
  const double b_lo = crlb_position_km(lo.passes[0], lo.emitter.position,
                                       kCarrierHz, true);
  EXPECT_NEAR(b_hi / b_lo, 10.0, 0.5);
}

TEST(Crlb, WlsEfficiencyApproachesBound) {
  // The WLS posterior σ should be comparable to the CRLB (the posterior is
  // evaluated at the estimate, the bound at the truth; the weakly
  // observable cross-track direction makes the comparison loose for a
  // single pass).
  const auto mp = make_passes(1, 1.0, 17);
  const auto est = WlsGeolocator().solve(
      mp.passes[0], GeoPoint::from_degrees(29.0, 30.0), kCarrierHz);
  const double bound = crlb_position_km(mp.passes[0], mp.emitter.position,
                                        kCarrierHz, true);
  EXPECT_GT(est.position_error_1sigma_km, bound * 0.3);
  EXPECT_LT(est.position_error_1sigma_km, bound * 3.0);
}

TEST(Crlb, KnownCarrierInformationIsLarger) {
  const auto mp = make_passes(1, 5.0, 18);
  const double with_carrier = crlb_position_km(
      mp.passes[0], mp.emitter.position, kCarrierHz, true, true);
  const double known_carrier = crlb_position_km(
      mp.passes[0], mp.emitter.position, kCarrierHz, true, false);
  EXPECT_LE(known_carrier, with_carrier + 1e-12);
  EXPECT_THROW((void)crlb_position_km({}, mp.emitter.position, kCarrierHz,
                                      true),
               PreconditionError);
}

TEST(AccuracyModelTest, ContractionAndThreshold) {
  AccuracyModel model;
  EXPECT_DOUBLE_EQ(model.sequential_error_km(1), 8.0);
  EXPECT_NEAR(model.sequential_error_km(2), 8.0 * 0.35, 1e-12);
  EXPECT_NEAR(model.sequential_error_km(3), 8.0 * 0.35 * 0.35, 1e-12);
  EXPECT_LT(model.simultaneous_error_km(), model.sequential_error_km(1));
  EXPECT_EQ(model.passes_to_reach(8.0), 1);
  EXPECT_EQ(model.passes_to_reach(3.0), 2);
  EXPECT_EQ(model.passes_to_reach(1e-12, 5), 5);
  EXPECT_THROW((void)model.sequential_error_km(0), PreconditionError);
  EXPECT_THROW(AccuracyModel({-1.0, 0.3, 0.5}), PreconditionError);
}

}  // namespace
}  // namespace oaq
