#include "geoloc/wls.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geom/geodesy.hpp"

namespace oaq {
namespace {

constexpr double kCarrierHz = 400.0e6;

struct Scenario {
  Emitter emitter;
  std::vector<FoaMeasurement> measurements;
};

/// One satellite pass near an emitter at 30°N, with earth rotation on so
/// the geometry is generic (no exact left/right symmetry).
Scenario make_pass(double sigma_hz, std::uint64_t seed,
                   double node_offset_deg = 0.0, int n_epochs = 30,
                   Duration window_start = Duration::minutes(5),
                   Duration window_end = Duration::minutes(13)) {
  Scenario sc;
  sc.emitter.position = GeoPoint::from_degrees(30.0, 31.0);
  sc.emitter.carrier_hz = kCarrierHz;
  sc.emitter.start = TimePoint::origin();

  // Ascending pass that tracks over ~30°N around t ≈ 8-9 min.
  const Orbit orbit = Orbit::circular_with_period(
      Duration::minutes(90), deg2rad(85.0), deg2rad(30.0 + node_offset_deg),
      deg2rad(0.0));
  const DopplerModel model(true);
  Rng rng(seed);
  sc.measurements = model.take_measurements(
      orbit, {0, 0}, sc.emitter,
      measurement_epochs(window_start, window_end, n_epochs), deg2rad(18.0),
      sigma_hz, rng);
  return sc;
}

TEST(WlsGeolocator, RecoversEmitterFromCleanPass) {
  const auto sc = make_pass(1e-3, 1);
  ASSERT_GE(sc.measurements.size(), 10u);
  const WlsGeolocator solver;
  const auto est = solver.solve(
      sc.measurements,
      GeoPoint::from_degrees(28.0, 29.0),  // a couple of degrees off
      kCarrierHz + 500.0);
  EXPECT_TRUE(est.converged);
  EXPECT_LT(great_circle_km(est.position, sc.emitter.position), 0.5);
  EXPECT_NEAR(est.carrier_hz, kCarrierHz, 5.0);
  EXPECT_LT(est.rms_residual_hz, 3.0);
}

TEST(WlsGeolocator, NoisyPassErrorWithinCovariancePrediction) {
  const auto sc = make_pass(5.0, 2);
  const WlsGeolocator solver;
  const auto est = solver.solve(sc.measurements,
                                GeoPoint::from_degrees(29.0, 30.0),
                                kCarrierHz);
  EXPECT_TRUE(est.converged);
  const double err = great_circle_km(est.position, sc.emitter.position);
  EXPECT_LT(err, 5.0 * est.position_error_1sigma_km + 1.0);
  EXPECT_GT(est.position_error_1sigma_km, 0.0);
}

TEST(WlsGeolocator, InitialGuessLandsNearGroundTrack) {
  const auto sc = make_pass(1.0, 3);
  const auto guess = WlsGeolocator::initial_guess(sc.measurements);
  // The guess is the sub-satellite direction near closest approach: within
  // a footprint radius of the emitter.
  EXPECT_LT(central_angle(guess, sc.emitter.position), deg2rad(18.0));
}

TEST(WlsGeolocator, SolvesFromDataDrivenGuess) {
  const auto sc = make_pass(2.0, 4);
  const WlsGeolocator solver;
  const auto est = solver.solve(
      sc.measurements, WlsGeolocator::initial_guess(sc.measurements),
      kCarrierHz + 2000.0);
  EXPECT_TRUE(est.converged);
  EXPECT_LT(great_circle_km(est.position, sc.emitter.position), 10.0);
}

TEST(WlsGeolocator, FixedCarrierModeUsesTwoParameters) {
  auto sc = make_pass(1.0, 5);
  WlsGeolocator::Options opt;
  opt.estimate_carrier = false;
  const WlsGeolocator solver(opt);
  EXPECT_EQ(solver.parameter_count(), 2u);
  const auto est = solver.solve(sc.measurements,
                                GeoPoint::from_degrees(29.0, 30.0),
                                kCarrierHz);
  EXPECT_TRUE(est.converged);
  EXPECT_EQ(est.covariance.rows(), 2u);
  EXPECT_LT(great_circle_km(est.position, sc.emitter.position), 1.0);
}

TEST(WlsGeolocator, KnownCarrierNeverHurtsAtCommonLinearizationPoint) {
  // Marginalizing out a nuisance parameter (the unknown carrier) can only
  // inflate the position covariance. Guaranteed when both posteriors are
  // evaluated at the same point, so compare covariances built from the
  // same converged free-carrier estimate.
  const auto sc = make_pass(3.0, 6);
  const auto est = WlsGeolocator().solve(
      sc.measurements, GeoPoint::from_degrees(29.0, 30.0), kCarrierHz);
  ASSERT_TRUE(est.converged);
  ASSERT_EQ(est.information.rows(), 3u);
  // Fixed-carrier covariance: invert the 2x2 position block of the
  // information. Free-carrier covariance: position block of the full
  // 3x3 inverse (Schur marginalization).
  Matrix pos_info(2, 2);
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 2; ++b) pos_info(a, b) = est.information(a, b);
  const Matrix cov_fixed = pos_info.inverse();
  const Matrix cov_free_full = est.information.inverse();
  EXPECT_LE(cov_fixed(0, 0), cov_free_full(0, 0) + 1e-18);
  EXPECT_LE(cov_fixed(1, 1), cov_free_full(1, 1) + 1e-18);
}

TEST(WlsGeolocator, RejectsUnderdeterminedProblems) {
  const auto sc = make_pass(1.0, 7, 0.0, 2, Duration::minutes(8),
                            Duration::minutes(9));
  const WlsGeolocator solver;
  EXPECT_THROW(
      (void)solver.solve(sc.measurements, GeoPoint{}, kCarrierHz),
      PreconditionError);
  EXPECT_THROW((void)WlsGeolocator::initial_guess({}), PreconditionError);
}

TEST(WlsGeolocator, PriorPullsSolutionAndTightensCovariance) {
  const auto sc = make_pass(5.0, 8);
  const WlsGeolocator solver;
  const auto est1 = solver.solve(sc.measurements,
                                 GeoPoint::from_degrees(29.0, 30.0),
                                 kCarrierHz);
  // Feed the posterior of pass 1 as prior for a re-solve of the same data:
  // the posterior information should grow.
  GeolocationPrior prior;
  prior.position = est1.position;
  prior.carrier_hz = est1.carrier_hz;
  prior.information = est1.information;
  const auto est2 = solver.solve_with_prior(sc.measurements, prior);
  EXPECT_TRUE(est2.converged);
  EXPECT_LT(est2.position_error_1sigma_km, est1.position_error_1sigma_km);
  // Shape mismatch is rejected.
  GeolocationPrior bad = prior;
  bad.information = Matrix::identity(2);
  EXPECT_THROW((void)solver.solve_with_prior(sc.measurements, bad),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
