#include "geoloc/dual_fix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geoloc/wls.hpp"

namespace oaq {
namespace {

constexpr double kCarrierHz = 400.0e6;

std::vector<PairMeasurement> make_pairs(const GeoPoint& truth,
                                        double sigma_tdoa_s,
                                        double sigma_fdoa_hz,
                                        std::uint64_t seed, int n_epochs = 9) {
  Emitter e;
  e.position = truth;
  e.carrier_hz = kCarrierHz;
  e.start = TimePoint::origin();
  const Orbit a = Orbit::circular_with_period(Duration::minutes(90),
                                              deg2rad(85.0), deg2rad(30.0),
                                              0.0);
  const Orbit b = Orbit::circular_with_period(Duration::minutes(90),
                                              deg2rad(85.0), deg2rad(30.0),
                                              deg2rad(-20.0));
  const TdoaModel model(true);
  Rng rng(seed);
  return model.take_measurements(
      a, {0, 0}, b, {0, 1}, e,
      measurement_epochs(Duration::minutes(7), Duration::minutes(11),
                         n_epochs),
      deg2rad(18.0), sigma_tdoa_s, sigma_fdoa_hz, rng);
}

TEST(DualSatelliteFix, RecoversEmitterFromCleanSnapshot) {
  const auto truth = GeoPoint::from_degrees(30.0, 31.0);
  // A SINGLE simultaneous snapshot suffices — no sequential passes needed.
  // The initial guess plays the role of the protocol's preliminary
  // single-coverage result (within a few km of the truth).
  const auto pairs = make_pairs(truth, 1e-9, 1e-3, 1, 2);
  ASSERT_GE(pairs.size(), 1u);
  const DualSatelliteFix solver;
  const auto est = solver.solve({pairs.front()},
                                GeoPoint::from_degrees(29.5, 30.5),
                                kCarrierHz);
  EXPECT_TRUE(est.converged);
  EXPECT_LT(great_circle_km(est.position, truth), 0.1);
}

TEST(DualSatelliteFix, GhostSolutionExistsWithoutAPrior) {
  // One TDOA/FDOA snapshot defines two conic ground curves that intersect
  // at TWO points; starting far from the truth converges to the ghost —
  // a self-consistent fix (tiny residual) hundreds of km away. The OAQ
  // preliminary result is what selects the right root in practice.
  const auto truth = GeoPoint::from_degrees(30.0, 31.0);
  const auto pairs = make_pairs(truth, 1e-9, 1e-3, 1, 2);
  ASSERT_GE(pairs.size(), 1u);
  const DualSatelliteFix solver;
  const auto est = solver.solve({pairs.front()},
                                GeoPoint::from_degrees(28.0, 29.0),
                                kCarrierHz);
  EXPECT_TRUE(est.converged);
  EXPECT_LT(est.rms_residual, 1e-3);                       // consistent...
  EXPECT_GT(great_circle_km(est.position, truth), 50.0);   // ...but wrong
}

TEST(DualSatelliteFix, NoisySnapshotStaysWithinCovariance) {
  const auto truth = GeoPoint::from_degrees(30.0, 31.0);
  const auto pairs = make_pairs(truth, 1e-6, 1.0, 2);
  ASSERT_GE(pairs.size(), 3u);
  const DualSatelliteFix solver;
  const auto est = solver.solve(pairs, GeoPoint::from_degrees(29.0, 30.0),
                                kCarrierHz);
  EXPECT_TRUE(est.converged);
  const double err = great_circle_km(est.position, truth);
  EXPECT_LT(err, 5.0 * est.position_error_1sigma_km + 0.5);
  EXPECT_LT(est.rms_residual, 3.0);
}

TEST(DualSatelliteFix, SimultaneousBeatsSingleSatelliteSharply) {
  // Table 1's accuracy ordering, physically: a dual simultaneous snapshot
  // outperforms a whole single-satellite Doppler pass at comparable noise.
  const auto truth = GeoPoint::from_degrees(30.0, 31.0);
  const auto pairs = make_pairs(truth, 1e-6, 1.0, 3);
  const DualSatelliteFix dual;
  const auto est_dual = dual.solve(pairs, GeoPoint::from_degrees(29.0, 30.0),
                                   kCarrierHz);

  // Single-satellite pass with the same FOA noise.
  Emitter e;
  e.position = truth;
  e.carrier_hz = kCarrierHz;
  e.start = TimePoint::origin();
  const Orbit a = Orbit::circular_with_period(Duration::minutes(90),
                                              deg2rad(85.0), deg2rad(30.0),
                                              0.0);
  const DopplerModel foa(true);
  Rng rng(3);
  const auto singles = foa.take_measurements(
      a, {0, 0}, e,
      measurement_epochs(Duration::minutes(5), Duration::minutes(13), 25),
      deg2rad(18.0), 1.0, rng);
  const auto est_single = WlsGeolocator().solve(
      singles, GeoPoint::from_degrees(29.0, 30.0), kCarrierHz);

  EXPECT_LT(est_dual.position_error_1sigma_km,
            est_single.position_error_1sigma_km * 0.5);
}

TEST(DualSatelliteFix, MoreSnapshotsTightenTheFix) {
  const auto truth = GeoPoint::from_degrees(30.0, 31.0);
  const auto pairs = make_pairs(truth, 1e-6, 1.0, 4, 9);
  ASSERT_GE(pairs.size(), 4u);
  const DualSatelliteFix solver;
  const auto one = solver.solve({pairs.front()},
                                GeoPoint::from_degrees(29.0, 30.0),
                                kCarrierHz);
  const auto all = solver.solve(pairs, GeoPoint::from_degrees(29.0, 30.0),
                                kCarrierHz);
  EXPECT_LT(all.position_error_1sigma_km, one.position_error_1sigma_km);
}

TEST(DualSatelliteFix, RejectsEmptyInput) {
  const DualSatelliteFix solver;
  EXPECT_THROW((void)solver.solve({}, GeoPoint{}, kCarrierHz),
               PreconditionError);
  const auto pairs = make_pairs(GeoPoint::from_degrees(30.0, 31.0), 1e-6,
                                1.0, 5);
  EXPECT_THROW((void)solver.solve(pairs, GeoPoint{}, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
