#include "fault/plane_capacity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

PlaneDependability paper_model(double lambda_per_hr, int eta) {
  PlaneDependability m;
  m.design_active = 14;
  m.satellite_failure_rate = Rate::per_hour(lambda_per_hr);
  m.policy.ground_threshold = eta;
  return m;
}

TEST(CapacityTrace, StartsFullAndStaysInRange) {
  const auto model = paper_model(1e-4, 10);
  const auto trace = simulate_capacity_trace(model, 1, Duration::hours(60000));
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().active, 14);
  EXPECT_EQ(trace.front().at, TimePoint::origin());
  for (const auto& ev : trace) {
    EXPECT_GE(ev.active, 0);
    EXPECT_LE(ev.active, 14);
  }
  // Times are nondecreasing.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
}

TEST(CapacityTrace, CapacityChangesByOneExceptRestores) {
  const auto model = paper_model(1e-4, 10);
  const auto trace = simulate_capacity_trace(model, 2, Duration::hours(90000));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const int delta = trace[i].active - trace[i - 1].active;
    // -1 failure, +1 spare/expedited arrival, larger jumps only on restore
    // back to design capacity.
    if (delta > 1) {
      EXPECT_EQ(trace[i].active, 14);
    }
    EXPECT_GE(delta, -1);
  }
}

TEST(CapacityTrace, DeterministicForSeed) {
  const auto model = paper_model(5e-5, 10);
  const auto a = simulate_capacity_trace(model, 7, Duration::hours(50000));
  const auto b = simulate_capacity_trace(model, 7, Duration::hours(50000));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].active, b[i].active);
  }
}

TEST(CapacityPmf, NormalizedAndSupportedAboveFloor) {
  const auto model = paper_model(1e-4, 10);
  const auto pmf = plane_capacity_pmf(model, 3, 200);
  double total = 0.0;
  for (int k = 0; k <= 14; ++k) total += pmf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The expedited policy keeps capacities below η−1 rare (paper neglects
  // k < 9 for η = 10).
  EXPECT_LT(pmf.probability(8) + pmf.probability(7) + pmf.probability(6),
            0.05);
}

TEST(CapacityPmf, LowFailureRateIsDominatedByFullCapacity) {
  // Fig. 7: "the full orbital-plane capacity (k = 14) will dominate when
  // node-failure rate is low".
  const auto pmf = plane_capacity_pmf(paper_model(1e-5, 10), 4, 300);
  EXPECT_GT(pmf.probability(14), 0.5);
  for (int k = 9; k < 14; ++k) {
    EXPECT_LT(pmf.probability(k), pmf.probability(14)) << "k=" << k;
  }
}

TEST(CapacityPmf, HighFailureRateIsDominatedByThreshold) {
  // Fig. 7: "the threshold capacity (k = η) tends to become dominant as
  // the failure rate increases".
  const auto pmf = plane_capacity_pmf(paper_model(1e-4, 10), 5, 300);
  for (int k = 11; k <= 14; ++k) {
    EXPECT_GT(pmf.probability(10), pmf.probability(k)) << "k=" << k;
  }
  EXPECT_GT(pmf.probability(10), pmf.probability(9));
}

TEST(CapacityPmf, ThresholdProbabilityGrowsWithLambda) {
  // Fig. 7: P(10) is very small at λ = 1e-5 and rapidly increases.
  const auto lo = plane_capacity_pmf(paper_model(1e-5, 10), 6, 300);
  const auto mid = plane_capacity_pmf(paper_model(5e-5, 10), 6, 300);
  const auto hi = plane_capacity_pmf(paper_model(1e-4, 10), 6, 300);
  EXPECT_LT(lo.probability(10), 0.05);
  EXPECT_LT(lo.probability(10), mid.probability(10));
  EXPECT_LT(mid.probability(10), hi.probability(10));
}

TEST(CapacityPmf, MatchesPureDeathReferenceForDegeneratePolicy) {
  // With instantaneous spares and the threshold policy disabled (η = 0,
  // huge lead time, no expedited), the process is a pure death chain; the
  // DES must agree with the exact CTMC solution.
  PlaneDependability m;
  m.design_active = 14;
  m.satellite_failure_rate = Rate::per_hour(1e-4);
  m.policy.in_orbit_spares = 2;
  m.policy.spare_activation_delay = Duration::hours(1e-7);
  m.policy.ground_threshold = 0;
  m.policy.launch_lead_time = Duration::hours(1e9);
  m.policy.expedited_replacements = false;
  const auto sim_pmf = plane_capacity_pmf(m, 7, 3000);
  const auto exact = pure_death_reference_pmf(m);
  for (int k = 6; k <= 14; ++k) {
    EXPECT_NEAR(sim_pmf.probability(k), exact[static_cast<std::size_t>(k)],
                0.01)
        << "k=" << k;
  }
}

TEST(CapacityPmf, RejectsBadModels) {
  auto m = paper_model(1e-5, 10);
  m.design_active = 0;
  EXPECT_THROW((void)plane_capacity_pmf(m, 1, 1), PreconditionError);
  m = paper_model(1e-5, 14);
  EXPECT_THROW((void)plane_capacity_pmf(m, 1, 1), PreconditionError);
  m = paper_model(1e-5, 10);
  EXPECT_THROW((void)plane_capacity_pmf(m, 1, 0), PreconditionError);
  EXPECT_THROW((void)simulate_capacity_trace(m, 1, Duration::zero()),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
