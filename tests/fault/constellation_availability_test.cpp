#include "fault/constellation_availability.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/plane_capacity.hpp"

namespace oaq {
namespace {

DiscretePmf simple_pmf() {
  DiscretePmf pmf;
  pmf.add(14, 0.7);
  pmf.add(12, 0.2);
  pmf.add(9, 0.1);
  return pmf;
}

TEST(ConstellationAvailability, SinglePlaneReducesToInput) {
  const ConstellationAvailability avail(simple_pmf(), 1, 14);
  const auto& total = avail.total_pmf();
  EXPECT_NEAR(total[14], 0.7, 1e-12);
  EXPECT_NEAR(total[12], 0.2, 1e-12);
  EXPECT_NEAR(total[9], 0.1, 1e-12);
  EXPECT_NEAR(avail.expected_total(), 14 * 0.7 + 12 * 0.2 + 9 * 0.1, 1e-12);
}

TEST(ConstellationAvailability, TotalPmfNormalizesAndHasRightSupport) {
  const ConstellationAvailability avail(simple_pmf(), 7, 14);
  const auto& total = avail.total_pmf();
  EXPECT_EQ(total.size(), 7u * 14u + 1u);
  double sum = 0.0;
  for (double v : total) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Max total: all planes at 14.
  EXPECT_NEAR(total[98], std::pow(0.7, 7), 1e-12);
  // Min total: all planes at 9.
  EXPECT_NEAR(total[63], std::pow(0.1, 7), 1e-15);
}

TEST(ConstellationAvailability, ExpectationIsLinear) {
  const ConstellationAvailability one(simple_pmf(), 1, 14);
  const ConstellationAvailability seven(simple_pmf(), 7, 14);
  EXPECT_NEAR(seven.expected_total(), 7.0 * one.expected_total(), 1e-9);
}

TEST(ConstellationAvailability, AllPlanesAtLeastUsesIndependence) {
  const ConstellationAvailability avail(simple_pmf(), 7, 14);
  // Per-plane P(k >= 11) = 0.9.
  EXPECT_NEAR(avail.probability_all_planes_at_least(11), std::pow(0.9, 7),
              1e-12);
  EXPECT_NEAR(avail.probability_some_plane_below(11),
              1.0 - std::pow(0.9, 7), 1e-12);
  EXPECT_DOUBLE_EQ(avail.probability_all_planes_at_least(0), 1.0);
}

TEST(ConstellationAvailability, ExpectedPlanesBelowThreshold) {
  const ConstellationAvailability avail(simple_pmf(), 7, 14);
  EXPECT_NEAR(avail.expected_planes_below(11), 7.0 * 0.1, 1e-12);
  EXPECT_NEAR(avail.expected_planes_below(13), 7.0 * 0.3, 1e-12);
  EXPECT_NEAR(avail.expected_planes_below(20), 7.0, 1e-12);
}

TEST(ConstellationAvailability, MatchesMonteCarloComposition) {
  // Cross-check the convolution against direct sampling.
  const auto pmf = simple_pmf();
  const ConstellationAvailability avail(pmf, 3, 14);
  Rng rng(9);
  const int trials = 200000;
  std::vector<int> counts(3 * 14 + 1, 0);
  auto sample_plane = [&]() {
    const double u = rng.uniform01();
    if (u < 0.7) return 14;
    if (u < 0.9) return 12;
    return 9;
  };
  for (int t = 0; t < trials; ++t) {
    ++counts[static_cast<std::size_t>(sample_plane() + sample_plane() +
                                      sample_plane())];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double mc = static_cast<double>(counts[i]) / trials;
    EXPECT_NEAR(mc, avail.total_pmf()[i], 0.005) << "total=" << i;
  }
}

TEST(ConstellationAvailability, WorksWithSimulatedPlanePmf) {
  PlaneDependability model;
  model.satellite_failure_rate = Rate::per_hour(5e-5);
  const auto pmf = plane_capacity_pmf(model, 3, 100);
  const ConstellationAvailability avail(pmf, 7, 14);
  EXPECT_GT(avail.expected_total(), 7 * 9);
  EXPECT_LE(avail.expected_total(), 98.0 + 1e-9);
  EXPECT_GE(avail.probability_all_planes_at_least(9), 0.5);
}

TEST(ConstellationAvailability, RejectsBadInput) {
  EXPECT_THROW(ConstellationAvailability(simple_pmf(), 0, 14),
               PreconditionError);
  EXPECT_THROW(ConstellationAvailability(simple_pmf(), 7, 0),
               PreconditionError);
  EXPECT_THROW(ConstellationAvailability(DiscretePmf{}, 7, 14),
               PreconditionError);
  DiscretePmf bad;
  bad.add(20, 1.0);
  EXPECT_THROW(ConstellationAvailability(bad, 7, 14), PreconditionError);
}

}  // namespace
}  // namespace oaq
