#include "fault/ctmc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(Ctmc, TwoStateTransientMatchesClosedForm) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: p1(t) = a/(a+b)(1 - e^{-(a+b)t}).
  const double a = 0.7, b = 0.3;
  Ctmc chain(2);
  chain.add_transition(0, 1, a);
  chain.add_transition(1, 0, b);
  for (double t : {0.1, 1.0, 5.0, 50.0}) {
    const auto p = chain.transient({1.0, 0.0}, t);
    const double expected = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(p[1], expected, 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-10);
  }
}

TEST(Ctmc, TransientAtZeroIsInitial) {
  Ctmc chain(3);
  chain.add_transition(0, 1, 1.0);
  const auto p = chain.transient({0.2, 0.5, 0.3}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(Ctmc, PureDeathMatchesPoissonCounting) {
  // A death chain with constant rate λ visits state k at time t with the
  // Poisson probability of k events (until absorption).
  const double lambda = 0.4;
  const int n = 30;
  Ctmc chain(n + 1);
  for (int i = 0; i < n; ++i) {
    chain.add_transition(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(i + 1), lambda);
  }
  std::vector<double> p0(n + 1, 0.0);
  p0[0] = 1.0;
  const double t = 10.0;
  const auto p = chain.transient(p0, t);
  double pois = std::exp(-lambda * t);
  for (int kk = 0; kk < 5; ++kk) {
    EXPECT_NEAR(p[static_cast<std::size_t>(kk)], pois, 1e-9) << "k=" << kk;
    pois *= lambda * t / (kk + 1);
  }
}

TEST(Ctmc, TimeAveragedMatchesQuadratureOfTransient) {
  const double a = 0.11, b = 0.05;
  Ctmc chain(2);
  chain.add_transition(0, 1, a);
  chain.add_transition(1, 0, b);
  const double horizon = 40.0;
  const auto avg = chain.time_averaged({1.0, 0.0}, horizon);
  // Closed form: (1/T)∫ p1 = a/(a+b)·[1 - (1-e^{-(a+b)T})/((a+b)T)].
  const double s = a + b;
  const double expected =
      a / s * (1.0 - (1.0 - std::exp(-s * horizon)) / (s * horizon));
  EXPECT_NEAR(avg[1], expected, 1e-9);
  EXPECT_NEAR(avg[0] + avg[1], 1.0, 1e-12);
}

TEST(Ctmc, SteadyStateDetailedBalance) {
  // Birth-death chain: π_k ∝ Π (birth_i / death_{i+1}).
  Ctmc chain(4);
  const double birth[3] = {1.0, 0.8, 0.4};
  const double death[3] = {0.5, 0.9, 1.5};
  for (int i = 0; i < 3; ++i) {
    chain.add_transition(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(i + 1), birth[i]);
    chain.add_transition(static_cast<std::size_t>(i + 1),
                         static_cast<std::size_t>(i), death[i]);
  }
  const auto pi = chain.steady_state();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(i)] * birth[i],
                pi[static_cast<std::size_t>(i + 1)] * death[i], 1e-8);
  }
  double sum = 0.0;
  for (double v : pi) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Ctmc, StiffRatesRemainStable) {
  // λ = 1e-5 /hr over 30000 hr — the paper's scale.
  Ctmc chain(2);
  chain.add_transition(0, 1, 1e-5);
  const auto p = chain.transient({1.0, 0.0}, 30000.0);
  EXPECT_NEAR(p[0], std::exp(-0.3), 1e-10);
  const auto avg = chain.time_averaged({1.0, 0.0}, 30000.0);
  EXPECT_NEAR(avg[0], (1.0 - std::exp(-0.3)) / 0.3, 1e-9);
}

TEST(Ctmc, RejectsMalformedInput) {
  Ctmc chain(2);
  EXPECT_THROW(chain.add_transition(0, 0, 1.0), PreconditionError);
  EXPECT_THROW(chain.add_transition(0, 5, 1.0), PreconditionError);
  EXPECT_THROW(chain.add_transition(0, 1, 0.0), PreconditionError);
  EXPECT_THROW((void)chain.transient({1.0}, 1.0), PreconditionError);
  EXPECT_THROW((void)chain.transient({1.0, 0.0}, -1.0), PreconditionError);
  EXPECT_THROW((void)chain.time_averaged({1.0, 0.0}, 0.0), PreconditionError);
  EXPECT_THROW(Ctmc(0), PreconditionError);
}

}  // namespace
}  // namespace oaq
