// NetworkStats drop-path and degradation-hook coverage (ISSUE 5): every
// dropped_* counter, the lossless_to_ground exemption, recover(), the
// reliable-delivery retry budget, and the composition rules of the
// fault-injection state (refcounted outages, max-of loss overrides).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/crosslink.hpp"
#include "sim/simulator.hpp"

namespace oaq {
namespace {

struct Ping {
  int value = 0;
};

CrosslinkNetwork::Options fixed_delay() {
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(10);
  opt.max_delay = Duration::seconds(10);
  return opt;
}

TEST(Degradation, EveryDropReasonLandsInItsCounter) {
  Simulator sim;
  CrosslinkNetwork net(sim, fixed_delay(), Rng(1));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({0, 1});
  const auto dead = Address::sat({0, 2});
  net.register_node(a, [](const Envelope&) {});
  net.register_node(b, [](const Envelope&) {});
  net.register_node(dead, [](const Envelope&) {});
  net.fail_silent(dead);

  std::vector<DropReason> observed;
  net.set_drop_handler([&](const Envelope&, DropReason reason) {
    observed.push_back(reason);
  });

  net.send(dead, b, Ping{});                  // dead sender
  net.send(a, dead, Ping{});                  // dead receiver
  net.send(a, Address::sat({0, 7}), Ping{});  // never registered
  sim.run();

  EXPECT_EQ(net.stats().dropped_dead_sender, 1u);
  EXPECT_EQ(net.stats().dropped_dead_receiver, 1u);
  EXPECT_EQ(net.stats().dropped_unregistered, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
  // The drop handler sees final drops — but not dead-sender ones (the
  // would-be retrier is the dead node itself).
  EXPECT_EQ(observed, (std::vector<DropReason>{DropReason::kDeadReceiver,
                                               DropReason::kUnregistered}));
}

TEST(Degradation, LosslessToGroundExemptsDownlinksOnly) {
  Simulator sim;
  auto opt = fixed_delay();
  opt.loss_probability = 1.0;
  opt.lossless_to_ground = true;
  CrosslinkNetwork net(sim, opt, Rng(2));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({0, 1});
  int crosslink = 0, downlink = 0;
  net.register_node(b, [&](const Envelope&) { ++crosslink; });
  net.register_node(Address::ground(), [&](const Envelope&) { ++downlink; });

  for (int i = 0; i < 10; ++i) net.send(a, b, Ping{i});
  for (int i = 0; i < 10; ++i) net.send(a, Address::ground(), Ping{i});
  sim.run();

  EXPECT_EQ(crosslink, 0);  // p = 1 kills every crosslink
  EXPECT_EQ(downlink, 10);  // downlinks are exempt
  EXPECT_EQ(net.stats().dropped_loss, 10u);
}

TEST(Degradation, LossOverridesExemptGroundToo) {
  // The exemption must hold for injected burst loss, not just the base
  // probability — alert downlinks stay deliverable during a loss window.
  Simulator sim;
  auto opt = fixed_delay();
  opt.lossless_to_ground = true;
  CrosslinkNetwork net(sim, opt, Rng(3));
  int downlink = 0;
  net.register_node(Address::ground(), [&](const Envelope&) { ++downlink; });
  net.push_loss_override(0, 1.0);
  for (int i = 0; i < 10; ++i) {
    net.send(Address::sat({0, 0}), Address::ground(), Ping{i});
  }
  sim.run();
  EXPECT_EQ(downlink, 10);
  EXPECT_EQ(net.stats().dropped_loss, 0u);
}

TEST(Degradation, RecoverRevivesOnlyRegisteredNodes) {
  Simulator sim;
  CrosslinkNetwork net(sim, fixed_delay(), Rng(4));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.fail_silent(b);
  net.recover(b);
  EXPECT_FALSE(net.is_failed(b));
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);  // original handler survived the outage

  // A node that was never registered has no handler to revive.
  const auto ghost = Address::sat({0, 5});
  net.recover(ghost);
  net.send(Address::sat({0, 0}), ghost, Ping{});
  sim.run();
  EXPECT_EQ(net.stats().dropped_unregistered, 1u);
}

TEST(Degradation, ReliableRetryRecoversFromTransientLoss) {
  Simulator sim;
  auto opt = fixed_delay();
  opt.reliable = true;
  opt.retry_limit = 3;
  opt.backoff_base = 2.0;
  CrosslinkNetwork net(sim, opt, Rng(5));
  const auto b = Address::sat({0, 1});
  std::vector<int> attempts;
  net.register_node(b, [&](const Envelope& e) { attempts.push_back(e.attempt); });

  // Certain loss for the first two attempts (t = 0 and t = 20 s; the ack
  // timeout is 2·max_delay·base^i), lifted before the third at t = 60 s.
  net.push_loss_override(9, 1.0);
  sim.schedule_after(Duration::seconds(50), [&] { net.pop_loss_override(9); });
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();

  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_EQ(attempts[0], 2);  // delivered on the second retry
  EXPECT_EQ(net.stats().retries, 2u);
  EXPECT_EQ(net.stats().retries_exhausted, 0u);
  EXPECT_EQ(net.stats().dropped_loss, 0u);  // only *final* drops count
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Degradation, ExhaustedRetryBudgetIsAFinalDrop) {
  Simulator sim;
  auto opt = fixed_delay();
  opt.reliable = true;
  opt.retry_limit = 2;
  CrosslinkNetwork net(sim, opt, Rng(6));
  const auto b = Address::sat({0, 1});
  net.register_node(b, [](const Envelope&) {});
  int handler_calls = 0;
  DropReason last = DropReason::kDeadSender;
  net.set_drop_handler([&](const Envelope& e, DropReason reason) {
    ++handler_calls;
    last = reason;
    EXPECT_EQ(e.attempt, 2);  // budget spent
  });

  net.push_loss_override(1, 1.0);  // never lifted
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();

  EXPECT_EQ(net.stats().retries, 2u);
  EXPECT_EQ(net.stats().retries_exhausted, 1u);
  EXPECT_EQ(net.stats().dropped_loss, 1u);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(last, DropReason::kLoss);
}

TEST(Degradation, ReliableRetryRidesOutALinkOutage) {
  Simulator sim;
  auto opt = fixed_delay();
  opt.reliable = true;
  opt.retry_limit = 3;
  CrosslinkNetwork net(sim, opt, Rng(7));
  const auto b = Address::sat({1, 0});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });

  net.reserve_fault_state(2, 1);
  net.block_link(0, 1);
  sim.schedule_after(Duration::seconds(50), [&] { net.unblock_link(0, 1); });
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();

  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.stats().dropped_link, 0u);
  EXPECT_EQ(net.stats().retries, 2u);
}

TEST(Degradation, DropHandlerMaySendFromTheCallback) {
  // The handler runs after the envelope's pool slot is released, so a
  // re-route (the episode engine's chain-hop rescue) is legal mid-drop.
  Simulator sim;
  CrosslinkNetwork net(sim, fixed_delay(), Rng(8));
  const auto a = Address::sat({0, 0});
  const auto alive = Address::sat({0, 2});
  int rerouted = 0;
  net.register_node(alive, [&](const Envelope&) { ++rerouted; });
  net.set_drop_handler([&](const Envelope& e, DropReason) {
    net.send(e.from, alive, Ping{1});
  });
  net.send(a, Address::sat({0, 7}), Ping{0});  // unregistered: drops, re-routes
  sim.run();
  EXPECT_EQ(rerouted, 1);
}

TEST(Degradation, BlockLinkRefcountsSymmetrically) {
  Simulator sim;
  CrosslinkNetwork net(sim, fixed_delay(), Rng(9));
  const auto b = Address::sat({1, 0});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.reserve_fault_state(2, 2);

  net.block_link(0, 1);
  net.block_link(1, 0);  // overlapping window, reversed pair
  net.unblock_link(0, 1);
  net.send(Address::sat({0, 0}), b, Ping{});  // one ref left: still down
  sim.run();
  EXPECT_EQ(net.stats().dropped_link, 1u);

  net.unblock_link(1, 0);
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Degradation, LossOverridesTakeTheMaximum) {
  Simulator sim;
  auto opt = fixed_delay();
  opt.loss_probability = 0.0;
  CrosslinkNetwork net(sim, opt, Rng(10));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });

  net.push_loss_override(1, 1.0);
  net.push_loss_override(2, 0.0);  // weaker override must not win
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_loss, 1u);

  net.pop_loss_override(1);  // max falls back to the weaker override
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);
  net.pop_loss_override(2);
}

TEST(Degradation, DelayScaleIsTheProductOfActiveFactors) {
  Simulator sim;
  CrosslinkNetwork net(sim, fixed_delay(), Rng(11));
  std::vector<double> delays_s;
  net.register_node(Address::sat({0, 1}), [&](const Envelope& e) {
    delays_s.push_back((e.delivered - e.sent).to_seconds());
  });
  net.push_delay_scale(1, 2.0);
  net.push_delay_scale(2, 3.0);
  net.send(Address::sat({0, 0}), Address::sat({0, 1}), Ping{});
  sim.run();
  net.pop_delay_scale(2);
  net.send(Address::sat({0, 0}), Address::sat({0, 1}), Ping{});
  sim.run();
  net.pop_delay_scale(1);
  net.send(Address::sat({0, 0}), Address::sat({0, 1}), Ping{});
  sim.run();
  ASSERT_EQ(delays_s.size(), 3u);
  EXPECT_DOUBLE_EQ(delays_s[0], 60.0);
  EXPECT_DOUBLE_EQ(delays_s[1], 20.0);
  EXPECT_DOUBLE_EQ(delays_s[2], 10.0);
}

}  // namespace
}  // namespace oaq
