#include "net/router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "orbit/plane.hpp"

namespace oaq {
namespace {

TEST(PlaneRouter, NextVisitorIsTrailingSlot) {
  const PlaneRouter router(2, 10);
  EXPECT_EQ(router.next_visitor({2, 5}), (SatelliteId{2, 4}));
  EXPECT_EQ(router.next_visitor({2, 0}), (SatelliteId{2, 9}));  // wraps
  EXPECT_EQ(router.previous_visitor({2, 4}), (SatelliteId{2, 5}));
  EXPECT_EQ(router.previous_visitor({2, 9}), (SatelliteId{2, 0}));
}

TEST(PlaneRouter, NextThenPreviousIsIdentity) {
  const PlaneRouter router(0, 14);
  for (int s = 0; s < 14; ++s) {
    const SatelliteId id{0, s};
    EXPECT_EQ(router.previous_visitor(router.next_visitor(id)), id);
    EXPECT_EQ(router.next_visitor(router.previous_visitor(id)), id);
  }
}

TEST(PlaneRouter, NextVisitorMatchesOrbitGeometry) {
  // Geometric ground truth: the next slot to pass over a point covered by
  // slot s is s-1 (mod k) — its sub-satellite point reaches s's after Tr.
  OrbitalPlane plane(0, Duration::minutes(90), deg2rad(90.0), 0.0, 0.0, 10);
  const PlaneRouter router(0, plane.active_count());
  const auto t = Duration::minutes(4.0);
  const auto tr = plane.revisit_time();
  for (int s = 0; s < plane.active_count(); ++s) {
    const auto here = plane.subsatellite_point(s, t);
    const auto next = router.next_visitor({0, s});
    const auto later = plane.subsatellite_point(next.slot, t + tr);
    EXPECT_NEAR(central_angle(here, later), 0.0, 1e-9) << "slot " << s;
  }
}

TEST(PlaneRouter, RejectsForeignSatellites) {
  const PlaneRouter router(1, 8);
  EXPECT_THROW((void)router.next_visitor({0, 3}), PreconditionError);
  EXPECT_THROW((void)router.next_visitor({1, 8}), PreconditionError);
  EXPECT_THROW((void)router.previous_visitor({1, -1}), PreconditionError);
  EXPECT_THROW(PlaneRouter(0, 0), PreconditionError);
}

}  // namespace
}  // namespace oaq
