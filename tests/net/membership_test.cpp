#include "net/membership.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

CrosslinkNetwork::Options fast_links() {
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(0.5);
  opt.max_delay = Duration::seconds(2.0);
  return opt;
}

MembershipConfig config() {
  MembershipConfig c;
  c.heartbeat_period = Duration::seconds(30);
  c.suspicion_timeout = Duration::seconds(120);
  return c;
}

std::vector<SatelliteId> ring(int n) {
  std::vector<SatelliteId> out;
  for (int s = 0; s < n; ++s) out.push_back({0, s});
  return out;
}

TEST(Membership, StableGroupNeverSuspects) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(1));
  MembershipGroup group(sim, net, ring(9), config());
  sim.run_until(TimePoint::at(Duration::minutes(30)));
  const auto members = ring(9);
  const std::set<SatelliteId> all(members.begin(), members.end());
  EXPECT_TRUE(group.converged(all));
}

TEST(Membership, SingleFailureConvergesEverywhere) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(2));
  MembershipGroup group(sim, net, ring(9), config());
  // Satellite {0,4} fails silently at t = 5 min.
  sim.schedule_after(Duration::minutes(5),
                     [&] { net.fail_silent(Address::sat({0, 4})); });
  sim.run_until(TimePoint::at(Duration::minutes(20)));
  const auto members = ring(9);
  std::set<SatelliteId> live(members.begin(), members.end());
  live.erase({0, 4});
  EXPECT_TRUE(group.converged(live));
  // Every survivor routes around the failure.
  EXPECT_EQ(group.node({0, 3}).live_successor(), (SatelliteId{0, 5}));
  EXPECT_EQ(group.node({0, 5}).live_predecessor(), (SatelliteId{0, 3}));
}

TEST(Membership, DetectionLatencyIsBoundedBySuspicionTimeout) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(3));
  MembershipGroup group(sim, net, ring(6), config());
  sim.schedule_after(Duration::minutes(5),
                     [&] { net.fail_silent(Address::sat({0, 2})); });
  // Neighbors must suspect within suspicion_timeout + heartbeat_period.
  sim.run_until(TimePoint::at(Duration::minutes(5) +
                              Duration::seconds(120 + 30 + 5)));
  EXPECT_FALSE(group.node({0, 1}).considers_alive({0, 2}));
  EXPECT_FALSE(group.node({0, 3}).considers_alive({0, 2}));
}

TEST(Membership, AdjacentDoubleFailureConverges) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(4));
  MembershipGroup group(sim, net, ring(9), config());
  sim.schedule_after(Duration::minutes(5), [&] {
    net.fail_silent(Address::sat({0, 4}));
    net.fail_silent(Address::sat({0, 5}));
  });
  sim.run_until(TimePoint::at(Duration::minutes(30)));
  const auto members = ring(9);
  std::set<SatelliteId> live(members.begin(), members.end());
  live.erase({0, 4});
  live.erase({0, 5});
  EXPECT_TRUE(group.converged(live));
  EXPECT_EQ(group.node({0, 3}).live_successor(), (SatelliteId{0, 6}));
}

TEST(Membership, StaggeredFailuresConverge) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(5));
  MembershipGroup group(sim, net, ring(10), config());
  sim.schedule_after(Duration::minutes(3),
                     [&] { net.fail_silent(Address::sat({0, 1})); });
  sim.schedule_after(Duration::minutes(12),
                     [&] { net.fail_silent(Address::sat({0, 7})); });
  sim.run_until(TimePoint::at(Duration::minutes(40)));
  const auto members = ring(10);
  std::set<SatelliteId> live(members.begin(), members.end());
  live.erase({0, 1});
  live.erase({0, 7});
  EXPECT_TRUE(group.converged(live));
}

TEST(Membership, LossyLinksDoNotCauseFalseSuspicion) {
  // 10% message loss with a 150-second suspicion timeout: suspicion needs
  // five consecutive heartbeat losses (1e-5 per sliding window), so false
  // suspicion over a 30-minute run is vanishingly unlikely.
  Simulator sim;
  auto opt = fast_links();
  opt.loss_probability = 0.1;
  CrosslinkNetwork net(sim, opt, Rng(6));
  MembershipConfig lossy = config();
  lossy.suspicion_timeout = Duration::seconds(150);
  MembershipGroup group(sim, net, ring(8), lossy);
  sim.run_until(TimePoint::at(Duration::minutes(30)));
  const auto members = ring(8);
  const std::set<SatelliteId> all(members.begin(), members.end());
  EXPECT_TRUE(group.converged(all));
}

TEST(Membership, ViewFeedsLiveNeighborQueries) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(7));
  MembershipGroup group(sim, net, ring(4), config());
  sim.run_until(TimePoint::at(Duration::minutes(2)));
  EXPECT_EQ(group.node({0, 0}).live_successor(), (SatelliteId{0, 1}));
  EXPECT_EQ(group.node({0, 0}).live_predecessor(), (SatelliteId{0, 3}));
  EXPECT_TRUE(group.node({0, 0}).considers_alive({0, 2}));
}

TEST(Membership, RejectsDegenerateConfigs) {
  Simulator sim;
  CrosslinkNetwork net(sim, fast_links(), Rng(8));
  EXPECT_THROW(MembershipNode(sim, net, {0, 0}, {{0, 0}}, config()),
               PreconditionError);
  EXPECT_THROW(MembershipNode(sim, net, {9, 9}, ring(4), config()),
               PreconditionError);
  MembershipConfig bad = config();
  bad.suspicion_timeout = bad.heartbeat_period;
  EXPECT_THROW(MembershipNode(sim, net, {0, 0}, ring(4), bad),
               PreconditionError);
  MembershipNode node(sim, net, {0, 0}, ring(4), config());
  node.start();
  EXPECT_THROW(node.start(), PreconditionError);
}

}  // namespace
}  // namespace oaq
