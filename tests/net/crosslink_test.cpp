#include "net/crosslink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace oaq {
namespace {

struct Ping {
  int value = 0;
};

CrosslinkNetwork::Options tight_options() {
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(10);
  opt.max_delay = Duration::seconds(30);
  return opt;
}

TEST(CrosslinkNetwork, DeliversWithinDelayBounds) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(1));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({0, 1});
  std::vector<Envelope> inbox;
  net.register_node(b, [&](const Envelope& e) { inbox.push_back(e); });

  for (int i = 0; i < 50; ++i) net.send(a, b, Ping{i});
  sim.run();

  ASSERT_EQ(inbox.size(), 50u);
  for (const auto& e : inbox) {
    const auto delay = e.delivered - e.sent;
    EXPECT_GE(delay.to_seconds(), 10.0);
    EXPECT_LE(delay.to_seconds(), 30.0);
    EXPECT_EQ(e.from, a);
    EXPECT_EQ(e.to, b);
  }
  EXPECT_EQ(net.stats().sent, 50u);
  EXPECT_EQ(net.stats().delivered, 50u);
}

TEST(CrosslinkNetwork, PayloadTypeRoundTrips) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(2));
  const auto b = Address::sat({0, 1});
  int got = -1;
  std::string text;
  net.register_node(b, [&](const Envelope& e) {
    if (const auto* p = e.payload.get_if<Ping>()) got = p->value;
    if (const auto* s = e.payload.get_if<std::string>()) text = *s;
  });
  net.send(Address::sat({0, 0}), b, Ping{42});
  net.send(Address::ground(), b, std::string("alert"));
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(text, "alert");
}

TEST(CrosslinkNetwork, FailSilentReceiverDropsQuietly) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(3));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);

  net.fail_silent(b);
  EXPECT_TRUE(net.is_failed(b));
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.stats().dropped_dead_receiver, 1u);
}

TEST(CrosslinkNetwork, FailSilentSenderCannotSend) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(4));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.fail_silent(a);
  net.send(a, b, Ping{});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_dead_sender, 1u);
}

TEST(CrosslinkNetwork, FailureMidFlightDropsDelivery) {
  // The receiver fails after the message is sent but before delivery:
  // fail-silent means the message vanishes.
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(5));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.schedule_after(Duration::seconds(1), [&] { net.fail_silent(b); });
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_dead_receiver, 1u);
}

TEST(CrosslinkNetwork, ReregisteringRevivesNode) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(6));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  net.fail_silent(b);
  net.register_node(b, [&](const Envelope&) { ++received; });
  EXPECT_FALSE(net.is_failed(b));
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(CrosslinkNetwork, RejectsDuplicateRegistrationOfLiveAddress) {
  // Overwriting a live handler would silently swallow the first handler's
  // traffic — two episodes wiring the same satellite is a caller bug.
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(6));
  const auto b = Address::sat({0, 1});
  const auto g = Address::ground();
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  EXPECT_THROW(net.register_node(b, [](const Envelope&) {}),
               PreconditionError);
  net.register_node(g, [](const Envelope&) {});
  EXPECT_THROW(net.register_node(g, [](const Envelope&) {}),
               PreconditionError);
  // The original handler keeps working after the rejected duplicate.
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 1);
  // A failed node is the one sanctioned re-registration (revival).
  net.fail_silent(b);
  net.register_node(b, [&](const Envelope&) { received += 10; });
  net.send(Address::sat({0, 0}), b, Ping{});
  sim.run();
  EXPECT_EQ(received, 11);
}

TEST(CrosslinkNetwork, RejectsNegativeSatelliteAddress) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(6));
  EXPECT_THROW(net.register_node(Address::sat({-1, 0}), [](const Envelope&) {}),
               PreconditionError);
  // Sending TO a bogus address is a countable drop, not an error.
  net.send(Address::sat({0, 0}), Address::sat({-1, 2}), Ping{});
  sim.run();
  EXPECT_EQ(net.stats().dropped_unregistered, 1u);
}

TEST(CrosslinkNetwork, PooledEnvelopesSurviveNestedSends) {
  // A handler that sends while its envelope is in scope must observe its
  // own envelope unchanged (the pool may grow during the nested send).
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(11));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({0, 1});
  const auto c = Address::sat({0, 2});
  std::vector<int> b_seen;
  int c_seen = 0;
  net.register_node(b, [&](const Envelope& e) {
    const int v = e.payload.get_if<Ping>()->value;
    for (int i = 0; i < 4; ++i) net.send(b, c, Ping{100 + i});
    b_seen.push_back(e.payload.get_if<Ping>()->value);
    EXPECT_EQ(b_seen.back(), v);
  });
  net.register_node(c, [&](const Envelope&) { ++c_seen; });
  for (int i = 0; i < 8; ++i) net.send(a, b, Ping{i});
  sim.run();
  // Random delays permute delivery order; every payload must arrive once.
  std::sort(b_seen.begin(), b_seen.end());
  EXPECT_EQ(b_seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(c_seen, 32);
}

TEST(CrosslinkNetwork, UnregisteredDestinationCounted) {
  Simulator sim;
  CrosslinkNetwork net(sim, tight_options(), Rng(7));
  net.send(Address::sat({0, 0}), Address::sat({3, 3}), Ping{});
  sim.run();
  EXPECT_EQ(net.stats().dropped_unregistered, 1u);
}

TEST(CrosslinkNetwork, LossProbabilityDropsExpectedShare) {
  Simulator sim;
  auto opt = tight_options();
  opt.loss_probability = 0.25;
  CrosslinkNetwork net(sim, opt, Rng(8));
  const auto b = Address::sat({0, 1});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });
  const int n = 4000;
  for (int i = 0; i < n; ++i) net.send(Address::sat({0, 0}), b, Ping{i});
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.75, 0.03);
  EXPECT_EQ(net.stats().dropped_loss + net.stats().delivered,
            static_cast<std::uint64_t>(n));
}

TEST(CrosslinkNetwork, RejectsBadOptions) {
  Simulator sim;
  CrosslinkNetwork::Options bad;
  bad.min_delay = Duration::seconds(-1);
  EXPECT_THROW(CrosslinkNetwork(sim, bad, Rng(9)), PreconditionError);
  bad = tight_options();
  bad.max_delay = Duration::seconds(5);
  EXPECT_THROW(CrosslinkNetwork(sim, bad, Rng(9)), PreconditionError);
  bad = tight_options();
  bad.loss_probability = 1.5;
  EXPECT_THROW(CrosslinkNetwork(sim, bad, Rng(9)), PreconditionError);
  CrosslinkNetwork net(sim, tight_options(), Rng(9));
  EXPECT_THROW(net.register_node(Address::ground(), nullptr),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
