// Link-health estimator hysteresis (ISSUE 10): EWMA demote / probe /
// restore transitions, probation escalation under the cap, and the
// reset() pristine postcondition. The sampling hook is private, so every
// test drives health the way production does — real sends under a
// per-link loss window.
#include "net/crosslink.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace oaq {
namespace {

struct Ping {
  int value = 0;
};

/// Health on with a fast EWMA (alpha 0.5): two consecutive failures take
/// a fresh link from 1.0 to 0.25, under the 0.5 demotion threshold. The
/// hysteresis knobs stay at the ProtocolConfig defaults (demote 0.5,
/// restore 0.7, probation 60 s, backoff 2, cap 5 min).
CrosslinkNetwork::Options health_options() {
  CrosslinkNetwork::Options opt;
  opt.min_delay = Duration::seconds(10);
  opt.max_delay = Duration::seconds(30);
  opt.health.enabled = true;
  opt.health.alpha = 0.5;
  return opt;
}

TEST(LinkHealth, DemotesAfterConsecutiveFailures) {
  Simulator sim;
  CrosslinkNetwork net(sim, health_options(), Rng(11));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({1, 0});
  net.register_node(b, [](const Envelope&) {});

  net.push_link_loss(1, 0, 1, 1.0);
  net.send(a, b, Ping{});  // ewma 1.0 → 0.5: at the threshold, no demote
  EXPECT_EQ(net.demoted_link_count(), 0);
  EXPECT_FALSE(net.link_avoided(0, 1));
  net.send(a, b, Ping{});  // ewma 0.5 → 0.25 < 0.5: demote
  sim.run();

  EXPECT_EQ(net.stats().dropped_loss, 2u);
  EXPECT_EQ(net.stats().links_demoted, 1u);
  EXPECT_EQ(net.stats().link_probations, 1u);
  EXPECT_EQ(net.demoted_link_count(), 1);
  EXPECT_TRUE(net.link_avoided(0, 1));
  EXPECT_TRUE(net.link_avoided(1, 0));  // plane pairs are symmetric
  EXPECT_DOUBLE_EQ(net.link_health_ewma(0, 1), 0.25);
  EXPECT_FALSE(net.health_pristine());
}

TEST(LinkHealth, OffByDefaultNeverDemotes) {
  Simulator sim;
  CrosslinkNetwork::Options opt;  // health disabled — the default
  opt.min_delay = Duration::seconds(10);
  opt.max_delay = Duration::seconds(30);
  CrosslinkNetwork net(sim, opt, Rng(12));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({1, 0});
  net.register_node(b, [](const Envelope&) {});

  net.push_link_loss(1, 0, 1, 1.0);
  for (int i = 0; i < 6; ++i) net.send(a, b, Ping{});
  sim.run();

  EXPECT_EQ(net.stats().dropped_loss, 6u);
  EXPECT_EQ(net.stats().links_demoted, 0u);
  EXPECT_EQ(net.demoted_link_count(), 0);
  EXPECT_FALSE(net.link_avoided(0, 1));
  EXPECT_DOUBLE_EQ(net.link_health_ewma(0, 1), 1.0);
  EXPECT_TRUE(net.health_pristine());
}

TEST(LinkHealth, ProbeRestoresAfterProbation) {
  Simulator sim;
  CrosslinkNetwork net(sim, health_options(), Rng(13));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({1, 0});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });

  net.push_link_loss(1, 0, 1, 1.0);
  net.send(a, b, Ping{});
  net.send(a, b, Ping{});  // demoted at t = 0, probation until 60 s
  net.pop_link_loss(1);    // storm over — but the estimator can't know yet

  bool avoided_inside_probation = false;
  sim.schedule_at(TimePoint::at(Duration::seconds(30)), [&] {
    avoided_inside_probation = net.link_avoided(0, 1);
  });
  // Past probation, traffic counts as probes; two delivered samples lift
  // the EWMA 0.25 → 0.625 → 0.8125, past the 0.7 restore threshold.
  sim.schedule_at(TimePoint::at(Duration::seconds(61)),
                  [&] { net.send(a, b, Ping{}); });
  sim.schedule_at(TimePoint::at(Duration::seconds(100)),
                  [&] { net.send(a, b, Ping{}); });
  sim.run();

  EXPECT_TRUE(avoided_inside_probation);
  EXPECT_EQ(received, 2);
  EXPECT_GE(net.stats().link_probes, 2u);
  EXPECT_EQ(net.stats().links_restored, 1u);
  EXPECT_EQ(net.demoted_link_count(), 0);
  EXPECT_FALSE(net.link_avoided(0, 1));
  EXPECT_DOUBLE_EQ(net.link_health_ewma(0, 1), 0.8125);
}

TEST(LinkHealth, ProbationEscalationIsCapped) {
  CrosslinkNetwork::Options opt = health_options();
  opt.health.probation_backoff = 64.0;
  opt.health.probation_cap = Duration::seconds(120);
  Simulator sim;
  CrosslinkNetwork net(sim, opt, Rng(14));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({1, 0});
  net.register_node(b, [](const Envelope&) {});

  net.push_link_loss(1, 0, 1, 1.0);
  net.send(a, b, Ping{});
  net.send(a, b, Ping{});  // demoted at t = 0: level 1, retry at 60 s
  // A failing probe at 61 s escalates to level 2. Uncapped that would be
  // 60 s · 64 = 3840 s of probation; the cap clamps it to 120 s, so the
  // link must accept probes again from 181 s.
  sim.schedule_at(TimePoint::at(Duration::seconds(61)),
                  [&] { net.send(a, b, Ping{}); });
  bool avoided_at_170 = false;
  bool avoided_at_185 = true;
  sim.schedule_at(TimePoint::at(Duration::seconds(170)),
                  [&] { avoided_at_170 = net.link_avoided(0, 1); });
  sim.schedule_at(TimePoint::at(Duration::seconds(185)),
                  [&] { avoided_at_185 = net.link_avoided(0, 1); });
  sim.run();

  EXPECT_EQ(net.stats().link_probations, 2u);  // demotion + escalation
  EXPECT_EQ(net.stats().link_probes, 1u);
  EXPECT_TRUE(avoided_at_170);
  EXPECT_FALSE(avoided_at_185);
  EXPECT_EQ(net.demoted_link_count(), 1);  // probation open ≠ restored
}

TEST(LinkHealth, ResetRestoresPristineUnderRepeatedStorms) {
  // Property over repeated arm/storm/reset cycles: whatever a storm did
  // to the estimator — samples, demotions, open probations — reset()
  // returns every health cell to its never-sampled state while the
  // registered handlers keep working.
  Simulator sim;
  CrosslinkNetwork net(sim, health_options(), Rng(15));
  const auto a = Address::sat({0, 0});
  const auto b = Address::sat({1, 0});
  int received = 0;
  net.register_node(b, [&](const Envelope&) { ++received; });

  const Rng outer(99);
  for (int cycle = 0; cycle < 25; ++cycle) {
    net.reset(outer.fork(static_cast<std::uint64_t>(cycle)));
    ASSERT_TRUE(net.health_pristine()) << "cycle " << cycle;
    ASSERT_EQ(net.demoted_link_count(), 0) << "cycle " << cycle;
    ASSERT_DOUBLE_EQ(net.link_health_ewma(0, 1), 1.0) << "cycle " << cycle;

    // A storm of varying intensity: lossy sends, then clean ones.
    Rng storm = outer.fork(1000 + static_cast<std::uint64_t>(cycle));
    const auto token = static_cast<std::uint32_t>(cycle + 1);
    net.push_link_loss(token, 0, 1, 1.0);
    const int lossy = 1 + static_cast<int>(storm.uniform_index(4));
    for (int i = 0; i < lossy; ++i) net.send(a, b, Ping{});
    net.pop_link_loss(token);
    const int clean = static_cast<int>(storm.uniform_index(3));
    for (int i = 0; i < clean; ++i) net.send(a, b, Ping{});
    sim.run();
    EXPECT_FALSE(net.health_pristine()) << "cycle " << cycle;
  }

  net.reset(Rng(7));
  EXPECT_TRUE(net.health_pristine());
  EXPECT_EQ(net.demoted_link_count(), 0);
  EXPECT_DOUBLE_EQ(net.link_health_ewma(0, 1), 1.0);
  EXPECT_GT(received, 0);  // handlers survived every reset
}

}  // namespace
}  // namespace oaq
