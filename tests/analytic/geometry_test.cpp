#include "analytic/geometry.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

TEST(PlaneGeometry, ReferenceValuesFromPaper) {
  const PlaneGeometry g;  // θ = 90, Tc = 9
  EXPECT_NEAR(g.tr(14).to_minutes(), 90.0 / 14.0, 1e-12);
  EXPECT_NEAR(g.tr(12).to_minutes(), 7.5, 1e-12);
  EXPECT_NEAR(g.l1(12).to_minutes(), 7.5, 1e-12);
  EXPECT_NEAR(g.l2(12).to_minutes(), 1.5, 1e-12);
  EXPECT_NEAR(g.l2(9).to_minutes(), 1.0, 1e-12);
  EXPECT_NEAR(g.alpha_length(12).to_minutes(), 6.0, 1e-12);
  EXPECT_NEAR(g.alpha_length(9).to_minutes(), 9.0, 1e-12);  // = Tc
}

TEST(PlaneGeometry, IndicatorSwitchesAtEleven) {
  // Paper: "the underlapping scenario will happen when k is dropped to
  // below 11".
  const PlaneGeometry g;
  for (int k = 11; k <= 16; ++k) {
    EXPECT_EQ(g.indicator(k), 1) << "k=" << k;
  }
  for (int k = 1; k <= 10; ++k) {
    EXPECT_EQ(g.indicator(k), 0) << "k=" << k;
  }
  EXPECT_EQ(g.min_overlapping_k(), 11);
}

TEST(PlaneGeometry, AlphaPlusL2IsPeriod) {
  const PlaneGeometry g;
  for (int k = 6; k <= 16; ++k) {
    EXPECT_NEAR((g.alpha_length(k) + g.l2(k)).to_minutes(),
                g.l1(k).to_minutes(), 1e-12)
        << "k=" << k;
  }
}

TEST(PlaneGeometry, MaxChainMatchesEq2) {
  const PlaneGeometry g;
  // Paper: for τ < 9 min and underlapping planes the bound is 2
  // (sequential dual coverage).
  for (int k = 6; k <= 10; ++k) {
    if (g.l2(k) < Duration::minutes(5)) {
      EXPECT_EQ(g.max_chain(k, Duration::minutes(5)), 2) << "k=" << k;
    }
  }
  // τ below L2: not even a second satellite arrives in time.
  EXPECT_EQ(g.max_chain(9, Duration::minutes(0.5)), 1);  // L2[9] = 1
  // Very generous deadline: chain grows by one per extra L1.
  EXPECT_EQ(g.max_chain(9, Duration::minutes(1.0 + 10.0 * 2 + 0.5)), 4);
}

TEST(PlaneGeometry, MaxChainRejectsOverlapping) {
  const PlaneGeometry g;
  EXPECT_THROW((void)g.max_chain(12, Duration::minutes(5)), PreconditionError);
  EXPECT_THROW((void)g.max_chain(9, Duration::zero()), PreconditionError);
}

TEST(PlaneGeometry, BoundaryCaseTrEqualsTc) {
  // k = 10: Tr = Tc = 9 ⇒ I = 0, L2 = 0 — back-to-back footprints.
  const PlaneGeometry g;
  EXPECT_EQ(g.indicator(10), 0);
  EXPECT_NEAR(g.l2(10).to_minutes(), 0.0, 1e-12);
  EXPECT_EQ(g.max_chain(10, Duration::minutes(5)), 2);
}

TEST(PlaneGeometry, CustomConstellation) {
  // A denser design: θ = 100 min, Tc = 12.5 min ⇒ overlap needs k ≥ 9.
  const PlaneGeometry g(Duration::minutes(100), Duration::minutes(12.5));
  EXPECT_EQ(g.min_overlapping_k(), 9);
  EXPECT_EQ(g.indicator(9), 1);
  EXPECT_EQ(g.indicator(8), 0);
}

TEST(PlaneGeometry, RejectsDegenerateInputs) {
  EXPECT_THROW(PlaneGeometry(Duration::zero(), Duration::minutes(9)),
               PreconditionError);
  EXPECT_THROW(PlaneGeometry(Duration::minutes(90), Duration::minutes(90)),
               PreconditionError);
  const PlaneGeometry g;
  EXPECT_THROW((void)g.tr(0), PreconditionError);
}

}  // namespace
}  // namespace oaq
