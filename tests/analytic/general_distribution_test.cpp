// Tests of the general-distribution QoS model (sensitivity to the paper's
// exponential assumption).
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/qos_model.hpp"
#include "common/error.hpp"

namespace oaq {
namespace {

std::shared_ptr<const DurationDistribution> instant_computation() {
  // Effectively instantaneous (mean 36 ms): completion ≈ 1 within any τ.
  return std::make_shared<ExponentialDuration>(Rate::per_minute(1e3));
}

TEST(GeneralDistributionModel, ExponentialVariantMatchesRateVariant) {
  QosModelParams p;
  const QosModel by_rates(PlaneGeometry{}, p);
  const QosModel by_dist(PlaneGeometry{}, p.tau,
                         std::make_shared<ExponentialDuration>(p.mu),
                         std::make_shared<ExponentialDuration>(p.nu));
  for (int k : {9, 10, 12, 14}) {
    for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
      const auto a = by_rates.conditional_pmf(k, s);
      const auto b = by_dist.conditional_pmf(k, s);
      for (int y = 0; y <= 3; ++y) {
        EXPECT_NEAR(a[static_cast<std::size_t>(y)],
                    b[static_cast<std::size_t>(y)], 1e-12);
      }
    }
  }
}

TEST(GeneralDistributionModel, DeterministicDurationClosedForm) {
  // Deterministic duration D, instantaneous computation, k = 12 overlap:
  // G3 = (min(L̂, D... ) — a signal survives a wait u iff u < D, so
  // G3 = (min(L̂, D) + L2) / L1 with L̂ = min(L1−L2, τ).
  const double tau = 5.0, l1 = 7.5, l2 = 1.5;
  for (double d_min : {1.0, 3.0, 10.0}) {
    const QosModel model(
        PlaneGeometry{}, Duration::minutes(tau),
        std::make_shared<DeterministicDuration>(Duration::minutes(d_min)),
        instant_computation());
    const double l_hat = std::min(l1 - l2, tau);
    const double expected = (std::min(l_hat, d_min) + l2) / l1;
    EXPECT_NEAR(model.g3(12), expected, 2e-3) << "D=" << d_min;
  }
}

TEST(GeneralDistributionModel, DeterministicDurationUnderlapClosedForm) {
  // k = 9 (L1 = 10, L2 = 1), instantaneous computation, τ = 5:
  // G2a = (1/L1)·length{d in [L2, τ] : d < D} = (min(τ, max(D, L2)) − L2)/L1.
  for (double d_min : {0.5, 3.0, 20.0}) {
    const QosModel model(
        PlaneGeometry{}, Duration::minutes(5),
        std::make_shared<DeterministicDuration>(Duration::minutes(d_min)),
        instant_computation());
    const double expected =
        (std::min(5.0, std::max(d_min, 1.0)) - 1.0) / 10.0;
    EXPECT_NEAR(model.g2(9), expected, 2e-3) << "D=" << d_min;
  }
}

TEST(GeneralDistributionModel, BurstyTrafficHurtsOaqAtEqualMean) {
  // Weibull shape < 1 puts more mass on very short signals, which die
  // before the coordination window opens: OAQ's level-3 share drops
  // relative to the exponential law with the same mean.
  const Duration mean = Duration::minutes(2);
  const QosModel expo(PlaneGeometry{}, Duration::minutes(5),
                      std::make_shared<ExponentialDuration>(
                          Rate::per_minute(0.5)),
                      instant_computation());
  const QosModel bursty(PlaneGeometry{}, Duration::minutes(5),
                        std::make_shared<WeibullDuration>(
                            WeibullDuration::with_mean(0.5, mean)),
                        instant_computation());
  const QosModel steady(PlaneGeometry{}, Duration::minutes(5),
                        std::make_shared<WeibullDuration>(
                            WeibullDuration::with_mean(3.0, mean)),
                        instant_computation());
  EXPECT_LT(bursty.g3(12), expo.g3(12));
  EXPECT_GT(steady.g3(12), expo.g3(12));
  // BAQ's level 3 only depends on occurrence position, not duration —
  // identical across laws.
  EXPECT_NEAR(bursty.conditional(12, 3, Scheme::kBaq),
              steady.conditional(12, 3, Scheme::kBaq), 1e-9);
}

TEST(GeneralDistributionModel, PmfStaysValidAcrossLaws) {
  const Duration mean = Duration::minutes(3);
  const std::shared_ptr<const DurationDistribution> laws[] = {
      std::make_shared<ExponentialDuration>(Rate::per_minute(1.0 / 3.0)),
      std::make_shared<DeterministicDuration>(mean),
      std::make_shared<WeibullDuration>(WeibullDuration::with_mean(0.7, mean)),
      std::make_shared<UniformDuration>(Duration::minutes(1),
                                        Duration::minutes(5)),
  };
  for (const auto& law : laws) {
    const QosModel model(PlaneGeometry{}, Duration::minutes(5), law,
                         std::make_shared<ExponentialDuration>(
                             Rate::per_minute(30)));
    for (int k : {7, 9, 10, 11, 12, 14}) {
      for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
        const auto pmf = model.conditional_pmf(k, s);
        double sum = 0.0;
        for (double v : pmf) {
          EXPECT_GE(v, -1e-9);
          sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
      }
    }
  }
}

TEST(GeneralDistributionModel, RejectsNullDistributions) {
  EXPECT_THROW(QosModel(PlaneGeometry{}, Duration::minutes(5), nullptr,
                        instant_computation()),
               PreconditionError);
  EXPECT_THROW(QosModel(PlaneGeometry{}, Duration::minutes(5),
                        instant_computation(), nullptr),
               PreconditionError);
}

}  // namespace
}  // namespace oaq
