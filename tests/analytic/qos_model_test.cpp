#include "analytic/qos_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace oaq {
namespace {

QosModel paper_model(double tau_min = 5.0, double mu = 0.5, double nu = 30.0) {
  QosModelParams p;
  p.tau = Duration::minutes(tau_min);
  p.mu = Rate::per_minute(mu);
  p.nu = Rate::per_minute(nu);
  return QosModel(PlaneGeometry{}, p);
}

TEST(QosModel, PaperHeadlineNumbersAtKTwelve) {
  // §4.3: "even when k = 12 ... with probability 0.44 the constellation
  // will still be able to deliver a geolocation result rated at QoS
  // level 3. ... the value of P(Y=3|12) is only 0.20 with the BAQ scheme."
  const auto model = paper_model();
  EXPECT_NEAR(model.conditional(12, 3, Scheme::kOaq), 0.44, 0.005);
  EXPECT_NEAR(model.conditional(12, 3, Scheme::kBaq), 0.20, 0.005);
}

TEST(QosModel, G3MatchesManualClosedForm) {
  // Closed-form evaluation of Eq. (4) for k = 12, τ = 5, µ = 0.5, ν = 30:
  // (1/7.5)[∫₀⁵ e^{-.5u}(1-e^{-30(5-u)})du + 1.5(1-e^{-150})] ≈ 0.44415.
  const auto model = paper_model();
  const double mu = 0.5, nu = 30.0, tau = 5.0;
  const double a = (1.0 - std::exp(-mu * tau)) / mu;
  const double b = std::exp(-nu * tau) *
                   (std::exp((nu - mu) * tau) - 1.0) / (nu - mu);
  const double expected = (a - b + 1.5 * (1.0 - std::exp(-nu * tau))) / 7.5;
  EXPECT_NEAR(model.g3(12), expected, 1e-9);
}

TEST(QosModel, PmfNormalizesForAllSchemesAndCapacities) {
  const auto model = paper_model();
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    for (int k = 0; k <= 16; ++k) {
      const auto pmf = model.conditional_pmf(k, s);
      double sum = 0.0;
      for (double v : pmf) {
        EXPECT_GE(v, -1e-12);
        EXPECT_LE(v, 1.0 + 1e-12);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
    }
  }
}

TEST(QosModel, TableOneStructure) {
  // Table 1: overlapping planes reach levels {3, 1}; underlapping planes
  // reach {2, 1, 0}.
  const auto model = paper_model();
  for (int k = 11; k <= 14; ++k) {
    const auto pmf = model.conditional_pmf(k, Scheme::kOaq);
    EXPECT_GT(pmf[3], 0.0) << "k=" << k;
    EXPECT_EQ(pmf[2], 0.0) << "k=" << k;
    EXPECT_GT(pmf[1], 0.0) << "k=" << k;
    EXPECT_EQ(pmf[0], 0.0) << "k=" << k;
  }
  for (int k = 7; k <= 9; ++k) {
    const auto pmf = model.conditional_pmf(k, Scheme::kOaq);
    EXPECT_EQ(pmf[3], 0.0) << "k=" << k;
    EXPECT_GT(pmf[2], 0.0) << "k=" << k;
    EXPECT_GT(pmf[1], 0.0) << "k=" << k;
    EXPECT_GT(pmf[0], 0.0) << "k=" << k;
  }
  // k = 6: the gap L2 = 6 min exceeds τ = 5 min, so even OAQ cannot reach
  // level 2 (Theorem 2 requires τ > L2).
  EXPECT_EQ(model.conditional(6, 2, Scheme::kOaq), 0.0);
  // BAQ never reaches level 2 (not applicable).
  for (int k = 6; k <= 14; ++k) {
    EXPECT_EQ(model.conditional(k, 2, Scheme::kBaq), 0.0) << "k=" << k;
  }
}

TEST(QosModel, OaqDominatesBaqAtEveryLevel) {
  // The OAQ tail distribution stochastically dominates BAQ's for every k.
  const auto model = paper_model();
  for (int k = 1; k <= 16; ++k) {
    for (int y = 1; y <= 3; ++y) {
      EXPECT_GE(model.conditional_tail(k, y, Scheme::kOaq),
                model.conditional_tail(k, y, Scheme::kBaq) - 1e-12)
          << "k=" << k << " y=" << y;
    }
  }
}

TEST(QosModel, DetectionIsSchemeIndependentFloor) {
  // P(Y >= 1 | k) is the detection probability for both schemes (the
  // preliminary result is always delivered once detected).
  const auto model = paper_model();
  for (int k = 6; k <= 14; ++k) {
    EXPECT_NEAR(model.conditional_tail(k, 1, Scheme::kOaq),
                model.detect_probability(k), 1e-12);
    EXPECT_NEAR(model.conditional_tail(k, 1, Scheme::kBaq),
                model.detect_probability(k), 1e-12);
  }
  EXPECT_DOUBLE_EQ(model.detect_probability(12), 1.0);
}

TEST(QosModel, LongerSignalsImproveOaqButNotBaqLevel3) {
  // Fig. 8's behaviour: decreasing µ (longer signals) raises OAQ's
  // P(Y=3|k); BAQ is insensitive to µ.
  const auto fast = paper_model(5.0, 0.5, 30.0);
  const auto slow = paper_model(5.0, 0.2, 30.0);
  for (int k = 11; k <= 14; ++k) {
    EXPECT_GT(slow.conditional(k, 3, Scheme::kOaq),
              fast.conditional(k, 3, Scheme::kOaq))
        << "k=" << k;
    EXPECT_NEAR(slow.conditional(k, 3, Scheme::kBaq),
                fast.conditional(k, 3, Scheme::kBaq), 1e-12)
        << "k=" << k;
  }
}

TEST(QosModel, LargerDeadlineNeverHurts) {
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    for (int k : {9, 10, 12, 14}) {
      double prev3 = -1.0, prev2 = -1.0;
      for (double tau : {1.0, 2.0, 3.0, 5.0, 7.0, 8.9}) {
        const auto m = paper_model(tau);
        const double p3 = m.conditional_tail(k, 3, s);
        const double p2 = m.conditional_tail(k, 2, s);
        EXPECT_GE(p3, prev3 - 1e-12) << "k=" << k << " tau=" << tau;
        EXPECT_GE(p2, prev2 - 1e-12) << "k=" << k << " tau=" << tau;
        prev3 = p3;
        prev2 = p2;
      }
    }
  }
}

TEST(QosModel, SequentialDualNeedsDeadlineBeyondGap) {
  // Theorem 2: level 2 requires τ > L2[k]; with τ smaller the next
  // satellite cannot arrive in time.
  const auto tight = paper_model(0.9);  // L2[9] = 1 min > τ
  EXPECT_DOUBLE_EQ(tight.conditional(9, 2, Scheme::kOaq), 0.0);
  const auto loose = paper_model(1.5);
  EXPECT_GT(loose.conditional(9, 2, Scheme::kOaq), 0.0);
}

TEST(QosModel, TheoremTwoCaseTwoActivatesForLargeDeadline) {
  // With ν → ∞, the case-1 term saturates once τ ≥ L1[9] = 10 min: the
  // full [L2, L1] wait window is usable and completion is instantaneous.
  // Any growth of g2 beyond τ = 10 is therefore exactly the case-2 (G2b)
  // contribution — gap signals located by the pair (S_{i+1}, S_{i+2}).
  const double nu = 1e6;
  const auto at_l1 = paper_model(10.0, 0.5, nu);
  const auto beyond = paper_model(14.0, 0.5, nu);
  const double g2b = beyond.g2(9) - at_l1.g2(9);
  // Closed form: e^{−µL1}·(1 − e^{−µL2})/µ / L1, µ = 0.5, L1 = 10, L2 = 1.
  const double expected =
      std::exp(-0.5 * 10.0) * (1.0 - std::exp(-0.5)) / 0.5 / 10.0;
  EXPECT_NEAR(g2b, expected, 1e-6);
  EXPECT_GT(g2b, 0.0);
}

TEST(QosModel, ZeroCapacityAlwaysMisses) {
  const auto model = paper_model();
  const auto pmf = model.conditional_pmf(0, Scheme::kOaq);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(QosModel, GuardsMisuse) {
  const auto model = paper_model();
  EXPECT_THROW((void)model.g3(9), PreconditionError);   // underlapping
  EXPECT_THROW((void)model.g2(12), PreconditionError);  // overlapping
  EXPECT_THROW((void)model.conditional(12, 4, Scheme::kOaq),
               PreconditionError);
  EXPECT_THROW((void)model.conditional(-1, 1, Scheme::kOaq),
               PreconditionError);
  QosModelParams bad;
  bad.tau = Duration::zero();
  EXPECT_THROW(QosModel(PlaneGeometry{}, bad), PreconditionError);
}

TEST(QosModel, FastComputationLimitMatchesGeometryRatio) {
  // ν → ∞: computation is instantaneous; BAQ level 3 tends to L2/L1.
  const auto model = paper_model(5.0, 0.5, 1e5);
  EXPECT_NEAR(model.conditional(12, 3, Scheme::kBaq), 1.5 / 7.5, 1e-9);
  EXPECT_NEAR(model.conditional(14, 3, Scheme::kBaq),
              (9.0 - 90.0 / 14.0) / (90.0 / 14.0), 1e-9);
}

}  // namespace
}  // namespace oaq
