#include "analytic/measure.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace oaq {
namespace {

QosModel paper_model(double tau = 5.0, double mu = 0.2, double nu = 30.0) {
  QosModelParams p;
  p.tau = Duration::minutes(tau);
  p.mu = Rate::per_minute(mu);
  p.nu = Rate::per_minute(nu);
  return QosModel(PlaneGeometry{}, p);
}

DiscretePmf point_mass(int k) {
  DiscretePmf pmf;
  pmf.add(k, 1.0);
  return pmf;
}

TEST(QosMeasureTest, PointMassReducesToConditional) {
  const auto model = paper_model();
  const auto m = qos_measure(model, point_mass(12), Scheme::kOaq);
  const auto cond = model.conditional_pmf(12, Scheme::kOaq);
  for (int y = 0; y <= 3; ++y) {
    EXPECT_NEAR(m.at(y), cond[static_cast<std::size_t>(y)], 1e-12);
  }
}

TEST(QosMeasureTest, MixtureIsConvexCombination) {
  const auto model = paper_model();
  DiscretePmf pk;
  pk.add(14, 0.6);
  pk.add(12, 0.3);
  pk.add(9, 0.1);
  const auto m = qos_measure(model, pk, Scheme::kOaq);
  for (int y = 0; y <= 3; ++y) {
    const double expected = 0.6 * model.conditional(14, y, Scheme::kOaq) +
                            0.3 * model.conditional(12, y, Scheme::kOaq) +
                            0.1 * model.conditional(9, y, Scheme::kOaq);
    EXPECT_NEAR(m.at(y), expected, 1e-12);
  }
  // Normalization and tail consistency.
  EXPECT_NEAR(m.tail(0), 1.0, 1e-12);
  EXPECT_NEAR(m.tail(2), m.at(2) + m.at(3), 1e-12);
  EXPECT_NEAR(m.tail(3), m.at(3), 1e-12);
}

TEST(QosMeasureTest, Figure9ShapeAtLowLambda) {
  // Fig. 9 (τ=5, µ=0.2): at λ = 1e-5 the dominant capacity is k = 14 with
  // some 13/12; OAQ P(Y≥2) ≈ 0.75 vs BAQ ≈ 0.33, and P(Y≥1) = 1 for both.
  const auto model = paper_model();
  DiscretePmf pk;  // representative low-λ capacity mix (η = 12)
  pk.add(14, 0.70);
  pk.add(13, 0.22);
  pk.add(12, 0.08);
  const auto oaq = qos_measure(model, pk, Scheme::kOaq);
  const auto baq = qos_measure(model, pk, Scheme::kBaq);
  EXPECT_NEAR(oaq.tail(2), 0.75, 0.08);
  EXPECT_NEAR(baq.tail(2), 0.33, 0.06);
  EXPECT_NEAR(oaq.tail(1), 1.0, 1e-9);
  EXPECT_NEAR(baq.tail(1), 1.0, 1e-9);
}

TEST(QosMeasureTest, OaqDominatesBaqForAnyCapacityMix) {
  const auto model = paper_model();
  DiscretePmf pk;
  pk.add(9, 0.25);
  pk.add(10, 0.35);
  pk.add(12, 0.2);
  pk.add(14, 0.2);
  const auto oaq = qos_measure(model, pk, Scheme::kOaq);
  const auto baq = qos_measure(model, pk, Scheme::kBaq);
  for (int y = 1; y <= 3; ++y) {
    EXPECT_GE(oaq.tail(y), baq.tail(y) - 1e-12) << "y=" << y;
  }
}

TEST(QosMeasureTest, RejectsEmptyOrNegativeCapacity) {
  const auto model = paper_model();
  EXPECT_THROW((void)qos_measure(model, DiscretePmf{}, Scheme::kOaq),
               PreconditionError);
  DiscretePmf bad;
  bad.add(-1, 1.0);
  EXPECT_THROW((void)qos_measure(model, bad, Scheme::kOaq),
               PreconditionError);
  const auto m = qos_measure(model, point_mass(12), Scheme::kOaq);
  EXPECT_THROW((void)m.tail(4), PreconditionError);
  EXPECT_THROW((void)m.at(-1), PreconditionError);
}

}  // namespace
}  // namespace oaq
