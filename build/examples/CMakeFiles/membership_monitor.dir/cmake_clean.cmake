file(REMOVE_RECURSE
  "CMakeFiles/membership_monitor.dir/membership_monitor.cpp.o"
  "CMakeFiles/membership_monitor.dir/membership_monitor.cpp.o.d"
  "membership_monitor"
  "membership_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
