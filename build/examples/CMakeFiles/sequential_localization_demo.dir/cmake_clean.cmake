file(REMOVE_RECURSE
  "CMakeFiles/sequential_localization_demo.dir/sequential_localization_demo.cpp.o"
  "CMakeFiles/sequential_localization_demo.dir/sequential_localization_demo.cpp.o.d"
  "sequential_localization_demo"
  "sequential_localization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_localization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
