# Empty dependencies file for sequential_localization_demo.
# This may be replaced when dependencies are built.
