# Empty dependencies file for constellation_designer.
# This may be replaced when dependencies are built.
