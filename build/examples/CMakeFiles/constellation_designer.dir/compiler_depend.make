# Empty compiler generated dependencies file for constellation_designer.
# This may be replaced when dependencies are built.
