file(REMOVE_RECURSE
  "CMakeFiles/constellation_designer.dir/constellation_designer.cpp.o"
  "CMakeFiles/constellation_designer.dir/constellation_designer.cpp.o.d"
  "constellation_designer"
  "constellation_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
