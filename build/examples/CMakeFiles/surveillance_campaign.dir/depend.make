# Empty dependencies file for surveillance_campaign.
# This may be replaced when dependencies are built.
