file(REMOVE_RECURSE
  "CMakeFiles/surveillance_campaign.dir/surveillance_campaign.cpp.o"
  "CMakeFiles/surveillance_campaign.dir/surveillance_campaign.cpp.o.d"
  "surveillance_campaign"
  "surveillance_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
