
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/orbit/constellation_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/constellation_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/constellation_test.cpp.o.d"
  "/root/repo/tests/orbit/coverage_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/coverage_test.cpp.o.d"
  "/root/repo/tests/orbit/j2_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/j2_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/j2_test.cpp.o.d"
  "/root/repo/tests/orbit/kepler_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/kepler_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/kepler_test.cpp.o.d"
  "/root/repo/tests/orbit/plane_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/plane_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/plane_test.cpp.o.d"
  "/root/repo/tests/orbit/visibility_test.cpp" "tests/CMakeFiles/test_orbit.dir/orbit/visibility_test.cpp.o" "gcc" "tests/CMakeFiles/test_orbit.dir/orbit/visibility_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orbit/CMakeFiles/oaq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oaq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
