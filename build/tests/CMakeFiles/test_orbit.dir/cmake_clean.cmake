file(REMOVE_RECURSE
  "CMakeFiles/test_orbit.dir/orbit/constellation_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/constellation_test.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/coverage_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/coverage_test.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/j2_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/j2_test.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/kepler_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/kepler_test.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/plane_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/plane_test.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/visibility_test.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/visibility_test.cpp.o.d"
  "test_orbit"
  "test_orbit.pdb"
  "test_orbit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
