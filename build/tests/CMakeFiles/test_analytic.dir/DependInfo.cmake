
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic/general_distribution_test.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/general_distribution_test.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/general_distribution_test.cpp.o.d"
  "/root/repo/tests/analytic/geometry_test.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/geometry_test.cpp.o.d"
  "/root/repo/tests/analytic/measure_test.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/measure_test.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/measure_test.cpp.o.d"
  "/root/repo/tests/analytic/qos_model_test.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/qos_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/qos_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytic/CMakeFiles/oaq_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
