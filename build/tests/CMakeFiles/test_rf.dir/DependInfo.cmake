
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rf/doppler_test.cpp" "tests/CMakeFiles/test_rf.dir/rf/doppler_test.cpp.o" "gcc" "tests/CMakeFiles/test_rf.dir/rf/doppler_test.cpp.o.d"
  "/root/repo/tests/rf/tdoa_test.cpp" "tests/CMakeFiles/test_rf.dir/rf/tdoa_test.cpp.o" "gcc" "tests/CMakeFiles/test_rf.dir/rf/tdoa_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/oaq_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/oaq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oaq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
