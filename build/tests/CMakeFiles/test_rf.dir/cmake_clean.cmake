file(REMOVE_RECURSE
  "CMakeFiles/test_rf.dir/rf/doppler_test.cpp.o"
  "CMakeFiles/test_rf.dir/rf/doppler_test.cpp.o.d"
  "CMakeFiles/test_rf.dir/rf/tdoa_test.cpp.o"
  "CMakeFiles/test_rf.dir/rf/tdoa_test.cpp.o.d"
  "test_rf"
  "test_rf.pdb"
  "test_rf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
