file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/analytic_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/analytic_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/capacity_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/capacity_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/episode_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/episode_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/lossy_links_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/lossy_links_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/membership_fuzz_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/membership_fuzz_test.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
