
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/parallel_test.cpp" "tests/CMakeFiles/test_parallel.dir/common/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/common/parallel_test.cpp.o.d"
  "/root/repo/tests/oaq/determinism_test.cpp" "tests/CMakeFiles/test_parallel.dir/oaq/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/oaq/determinism_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oaq/CMakeFiles/oaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/oaq_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oaq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geoloc/CMakeFiles/oaq_geoloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/oaq_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/oaq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oaq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oaq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
