file(REMOVE_RECURSE
  "CMakeFiles/test_oaq.dir/oaq/campaign_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/campaign_test.cpp.o.d"
  "CMakeFiles/test_oaq.dir/oaq/episode_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/episode_test.cpp.o.d"
  "CMakeFiles/test_oaq.dir/oaq/montecarlo_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/montecarlo_test.cpp.o.d"
  "CMakeFiles/test_oaq.dir/oaq/planner_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/planner_test.cpp.o.d"
  "CMakeFiles/test_oaq.dir/oaq/qos_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/qos_test.cpp.o.d"
  "CMakeFiles/test_oaq.dir/oaq/schedule_test.cpp.o"
  "CMakeFiles/test_oaq.dir/oaq/schedule_test.cpp.o.d"
  "test_oaq"
  "test_oaq.pdb"
  "test_oaq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oaq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
