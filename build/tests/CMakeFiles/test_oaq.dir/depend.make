# Empty dependencies file for test_oaq.
# This may be replaced when dependencies are built.
