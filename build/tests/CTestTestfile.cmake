# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_orbit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rf[1]_include.cmake")
include("/root/repo/build/tests/test_geoloc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_oaq[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
