# Empty dependencies file for oaqctl.
# This may be replaced when dependencies are built.
