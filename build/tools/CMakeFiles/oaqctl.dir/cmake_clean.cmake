file(REMOVE_RECURSE
  "CMakeFiles/oaqctl.dir/oaqctl.cpp.o"
  "CMakeFiles/oaqctl.dir/oaqctl.cpp.o.d"
  "oaqctl"
  "oaqctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaqctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
