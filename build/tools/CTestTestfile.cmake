# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(oaqctl_qos "/root/repo/build/tools/oaqctl" "qos" "--k" "12")
set_tests_properties(oaqctl_qos PROPERTIES  PASS_REGULAR_EXPRESSION "0.4444" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_capacity "/root/repo/build/tools/oaqctl" "capacity" "--lambda" "7e-5" "--cycles" "60")
set_tests_properties(oaqctl_capacity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_measure "/root/repo/build/tools/oaqctl" "measure" "--lambda" "5e-5" "--eta" "12" "--mu" "0.2" "--cycles" "60")
set_tests_properties(oaqctl_measure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_plan "/root/repo/build/tools/oaqctl" "plan" "--k" "9" "--tau" "25" "--at" "2")
set_tests_properties(oaqctl_plan PROPERTIES  PASS_REGULAR_EXPRESSION "sequential-dual" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_simulate "/root/repo/build/tools/oaqctl" "simulate" "--k" "9" "--episodes" "2000")
set_tests_properties(oaqctl_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_coverage "/root/repo/build/tools/oaqctl" "coverage" "--bands" "12")
set_tests_properties(oaqctl_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_help "/root/repo/build/tools/oaqctl" "help")
set_tests_properties(oaqctl_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oaqctl_campaign "/root/repo/build/tools/oaqctl" "campaign" "--k" "9" "--per-hour" "5" "--hours" "50")
set_tests_properties(oaqctl_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
