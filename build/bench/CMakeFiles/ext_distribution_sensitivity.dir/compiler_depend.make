# Empty compiler generated dependencies file for ext_distribution_sensitivity.
# This may be replaced when dependencies are built.
