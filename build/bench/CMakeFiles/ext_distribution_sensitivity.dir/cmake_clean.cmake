file(REMOVE_RECURSE
  "CMakeFiles/ext_distribution_sensitivity.dir/ext_distribution_sensitivity.cpp.o"
  "CMakeFiles/ext_distribution_sensitivity.dir/ext_distribution_sensitivity.cpp.o.d"
  "ext_distribution_sensitivity"
  "ext_distribution_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_distribution_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
