file(REMOVE_RECURSE
  "CMakeFiles/tab1_qos_levels.dir/tab1_qos_levels.cpp.o"
  "CMakeFiles/tab1_qos_levels.dir/tab1_qos_levels.cpp.o.d"
  "tab1_qos_levels"
  "tab1_qos_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_qos_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
