# Empty compiler generated dependencies file for tab1_qos_levels.
# This may be replaced when dependencies are built.
