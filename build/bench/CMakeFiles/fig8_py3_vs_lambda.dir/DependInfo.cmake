
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_py3_vs_lambda.cpp" "bench/CMakeFiles/fig8_py3_vs_lambda.dir/fig8_py3_vs_lambda.cpp.o" "gcc" "bench/CMakeFiles/fig8_py3_vs_lambda.dir/fig8_py3_vs_lambda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytic/CMakeFiles/oaq_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/oaq_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
