# Empty compiler generated dependencies file for fig8_py3_vs_lambda.
# This may be replaced when dependencies are built.
