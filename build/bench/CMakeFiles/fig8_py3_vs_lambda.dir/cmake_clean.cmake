file(REMOVE_RECURSE
  "CMakeFiles/fig8_py3_vs_lambda.dir/fig8_py3_vs_lambda.cpp.o"
  "CMakeFiles/fig8_py3_vs_lambda.dir/fig8_py3_vs_lambda.cpp.o.d"
  "fig8_py3_vs_lambda"
  "fig8_py3_vs_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_py3_vs_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
