file(REMOVE_RECURSE
  "CMakeFiles/ext_tau_sweep.dir/ext_tau_sweep.cpp.o"
  "CMakeFiles/ext_tau_sweep.dir/ext_tau_sweep.cpp.o.d"
  "ext_tau_sweep"
  "ext_tau_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tau_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
