# Empty compiler generated dependencies file for ext_tau_sweep.
# This may be replaced when dependencies are built.
