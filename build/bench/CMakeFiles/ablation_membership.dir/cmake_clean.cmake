file(REMOVE_RECURSE
  "CMakeFiles/ablation_membership.dir/ablation_membership.cpp.o"
  "CMakeFiles/ablation_membership.dir/ablation_membership.cpp.o.d"
  "ablation_membership"
  "ablation_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
