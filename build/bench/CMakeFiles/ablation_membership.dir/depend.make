# Empty dependencies file for ablation_membership.
# This may be replaced when dependencies are built.
