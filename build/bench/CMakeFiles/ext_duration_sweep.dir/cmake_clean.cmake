file(REMOVE_RECURSE
  "CMakeFiles/ext_duration_sweep.dir/ext_duration_sweep.cpp.o"
  "CMakeFiles/ext_duration_sweep.dir/ext_duration_sweep.cpp.o.d"
  "ext_duration_sweep"
  "ext_duration_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_duration_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
