# Empty compiler generated dependencies file for ext_duration_sweep.
# This may be replaced when dependencies are built.
