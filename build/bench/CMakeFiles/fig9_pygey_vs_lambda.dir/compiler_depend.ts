# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_pygey_vs_lambda.
