file(REMOVE_RECURSE
  "CMakeFiles/fig9_pygey_vs_lambda.dir/fig9_pygey_vs_lambda.cpp.o"
  "CMakeFiles/fig9_pygey_vs_lambda.dir/fig9_pygey_vs_lambda.cpp.o.d"
  "fig9_pygey_vs_lambda"
  "fig9_pygey_vs_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pygey_vs_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
