# Empty compiler generated dependencies file for fig9_pygey_vs_lambda.
# This may be replaced when dependencies are built.
