file(REMOVE_RECURSE
  "CMakeFiles/ext_constellation_availability.dir/ext_constellation_availability.cpp.o"
  "CMakeFiles/ext_constellation_availability.dir/ext_constellation_availability.cpp.o.d"
  "ext_constellation_availability"
  "ext_constellation_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_constellation_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
