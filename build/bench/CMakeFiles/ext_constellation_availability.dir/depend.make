# Empty dependencies file for ext_constellation_availability.
# This may be replaced when dependencies are built.
