file(REMOVE_RECURSE
  "CMakeFiles/ablation_sim_vs_analytic.dir/ablation_sim_vs_analytic.cpp.o"
  "CMakeFiles/ablation_sim_vs_analytic.dir/ablation_sim_vs_analytic.cpp.o.d"
  "ablation_sim_vs_analytic"
  "ablation_sim_vs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sim_vs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
