file(REMOVE_RECURSE
  "CMakeFiles/ablation_ideal_geometry.dir/ablation_ideal_geometry.cpp.o"
  "CMakeFiles/ablation_ideal_geometry.dir/ablation_ideal_geometry.cpp.o.d"
  "ablation_ideal_geometry"
  "ablation_ideal_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ideal_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
