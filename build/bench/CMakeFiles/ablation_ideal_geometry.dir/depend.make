# Empty dependencies file for ablation_ideal_geometry.
# This may be replaced when dependencies are built.
