file(REMOVE_RECURSE
  "CMakeFiles/fig2_geometry.dir/fig2_geometry.cpp.o"
  "CMakeFiles/fig2_geometry.dir/fig2_geometry.cpp.o.d"
  "fig2_geometry"
  "fig2_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
