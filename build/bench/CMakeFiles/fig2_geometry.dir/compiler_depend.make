# Empty compiler generated dependencies file for fig2_geometry.
# This may be replaced when dependencies are built.
