file(REMOVE_RECURSE
  "CMakeFiles/ablation_messaging.dir/ablation_messaging.cpp.o"
  "CMakeFiles/ablation_messaging.dir/ablation_messaging.cpp.o.d"
  "ablation_messaging"
  "ablation_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
