# Empty compiler generated dependencies file for ablation_messaging.
# This may be replaced when dependencies are built.
