file(REMOVE_RECURSE
  "CMakeFiles/accuracy_by_basis.dir/accuracy_by_basis.cpp.o"
  "CMakeFiles/accuracy_by_basis.dir/accuracy_by_basis.cpp.o.d"
  "accuracy_by_basis"
  "accuracy_by_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_by_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
