# Empty compiler generated dependencies file for accuracy_by_basis.
# This may be replaced when dependencies are built.
