# Empty dependencies file for tab_mk_chain.
# This may be replaced when dependencies are built.
