file(REMOVE_RECURSE
  "CMakeFiles/tab_mk_chain.dir/tab_mk_chain.cpp.o"
  "CMakeFiles/tab_mk_chain.dir/tab_mk_chain.cpp.o.d"
  "tab_mk_chain"
  "tab_mk_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mk_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
