# Empty dependencies file for fig7_plane_capacity.
# This may be replaced when dependencies are built.
