# Empty dependencies file for ext_load_curve.
# This may be replaced when dependencies are built.
