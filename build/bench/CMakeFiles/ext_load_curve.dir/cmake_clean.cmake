file(REMOVE_RECURSE
  "CMakeFiles/ext_load_curve.dir/ext_load_curve.cpp.o"
  "CMakeFiles/ext_load_curve.dir/ext_load_curve.cpp.o.d"
  "ext_load_curve"
  "ext_load_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_load_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
