# Empty dependencies file for geoloc_accuracy.
# This may be replaced when dependencies are built.
