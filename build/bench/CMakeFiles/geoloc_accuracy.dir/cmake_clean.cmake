file(REMOVE_RECURSE
  "CMakeFiles/geoloc_accuracy.dir/geoloc_accuracy.cpp.o"
  "CMakeFiles/geoloc_accuracy.dir/geoloc_accuracy.cpp.o.d"
  "geoloc_accuracy"
  "geoloc_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoloc_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
