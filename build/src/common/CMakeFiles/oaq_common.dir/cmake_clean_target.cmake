file(REMOVE_RECURSE
  "liboaq_common.a"
)
