# Empty compiler generated dependencies file for oaq_common.
# This may be replaced when dependencies are built.
