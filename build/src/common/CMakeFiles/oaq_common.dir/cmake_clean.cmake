file(REMOVE_RECURSE
  "CMakeFiles/oaq_common.dir/distribution.cpp.o"
  "CMakeFiles/oaq_common.dir/distribution.cpp.o.d"
  "CMakeFiles/oaq_common.dir/matrix.cpp.o"
  "CMakeFiles/oaq_common.dir/matrix.cpp.o.d"
  "CMakeFiles/oaq_common.dir/numeric.cpp.o"
  "CMakeFiles/oaq_common.dir/numeric.cpp.o.d"
  "CMakeFiles/oaq_common.dir/parallel.cpp.o"
  "CMakeFiles/oaq_common.dir/parallel.cpp.o.d"
  "CMakeFiles/oaq_common.dir/stats.cpp.o"
  "CMakeFiles/oaq_common.dir/stats.cpp.o.d"
  "CMakeFiles/oaq_common.dir/table.cpp.o"
  "CMakeFiles/oaq_common.dir/table.cpp.o.d"
  "liboaq_common.a"
  "liboaq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
