file(REMOVE_RECURSE
  "liboaq_core.a"
)
