file(REMOVE_RECURSE
  "CMakeFiles/oaq_core.dir/campaign.cpp.o"
  "CMakeFiles/oaq_core.dir/campaign.cpp.o.d"
  "CMakeFiles/oaq_core.dir/episode.cpp.o"
  "CMakeFiles/oaq_core.dir/episode.cpp.o.d"
  "CMakeFiles/oaq_core.dir/montecarlo.cpp.o"
  "CMakeFiles/oaq_core.dir/montecarlo.cpp.o.d"
  "CMakeFiles/oaq_core.dir/planner.cpp.o"
  "CMakeFiles/oaq_core.dir/planner.cpp.o.d"
  "CMakeFiles/oaq_core.dir/schedule.cpp.o"
  "CMakeFiles/oaq_core.dir/schedule.cpp.o.d"
  "CMakeFiles/oaq_core.dir/target_episode.cpp.o"
  "CMakeFiles/oaq_core.dir/target_episode.cpp.o.d"
  "liboaq_core.a"
  "liboaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
