# Empty compiler generated dependencies file for oaq_core.
# This may be replaced when dependencies are built.
