file(REMOVE_RECURSE
  "liboaq_geom.a"
)
