# Empty compiler generated dependencies file for oaq_geom.
# This may be replaced when dependencies are built.
