file(REMOVE_RECURSE
  "CMakeFiles/oaq_geom.dir/geodesy.cpp.o"
  "CMakeFiles/oaq_geom.dir/geodesy.cpp.o.d"
  "CMakeFiles/oaq_geom.dir/spherical_cap.cpp.o"
  "CMakeFiles/oaq_geom.dir/spherical_cap.cpp.o.d"
  "liboaq_geom.a"
  "liboaq_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
