file(REMOVE_RECURSE
  "CMakeFiles/oaq_net.dir/crosslink.cpp.o"
  "CMakeFiles/oaq_net.dir/crosslink.cpp.o.d"
  "CMakeFiles/oaq_net.dir/membership.cpp.o"
  "CMakeFiles/oaq_net.dir/membership.cpp.o.d"
  "liboaq_net.a"
  "liboaq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
