file(REMOVE_RECURSE
  "liboaq_net.a"
)
