# Empty compiler generated dependencies file for oaq_net.
# This may be replaced when dependencies are built.
