# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geom")
subdirs("orbit")
subdirs("rf")
subdirs("sim")
subdirs("geoloc")
subdirs("net")
subdirs("fault")
subdirs("analytic")
subdirs("oaq")
