
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/constellation.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/constellation.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/constellation.cpp.o.d"
  "/root/repo/src/orbit/coverage.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/coverage.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/coverage.cpp.o.d"
  "/root/repo/src/orbit/footprint.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/footprint.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/footprint.cpp.o.d"
  "/root/repo/src/orbit/kepler.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/kepler.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/kepler.cpp.o.d"
  "/root/repo/src/orbit/plane.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/plane.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/plane.cpp.o.d"
  "/root/repo/src/orbit/visibility.cpp" "src/orbit/CMakeFiles/oaq_orbit.dir/visibility.cpp.o" "gcc" "src/orbit/CMakeFiles/oaq_orbit.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/oaq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
