file(REMOVE_RECURSE
  "liboaq_orbit.a"
)
