file(REMOVE_RECURSE
  "CMakeFiles/oaq_orbit.dir/constellation.cpp.o"
  "CMakeFiles/oaq_orbit.dir/constellation.cpp.o.d"
  "CMakeFiles/oaq_orbit.dir/coverage.cpp.o"
  "CMakeFiles/oaq_orbit.dir/coverage.cpp.o.d"
  "CMakeFiles/oaq_orbit.dir/footprint.cpp.o"
  "CMakeFiles/oaq_orbit.dir/footprint.cpp.o.d"
  "CMakeFiles/oaq_orbit.dir/kepler.cpp.o"
  "CMakeFiles/oaq_orbit.dir/kepler.cpp.o.d"
  "CMakeFiles/oaq_orbit.dir/plane.cpp.o"
  "CMakeFiles/oaq_orbit.dir/plane.cpp.o.d"
  "CMakeFiles/oaq_orbit.dir/visibility.cpp.o"
  "CMakeFiles/oaq_orbit.dir/visibility.cpp.o.d"
  "liboaq_orbit.a"
  "liboaq_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
