# Empty compiler generated dependencies file for oaq_orbit.
# This may be replaced when dependencies are built.
