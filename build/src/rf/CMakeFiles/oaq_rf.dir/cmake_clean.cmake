file(REMOVE_RECURSE
  "CMakeFiles/oaq_rf.dir/doppler.cpp.o"
  "CMakeFiles/oaq_rf.dir/doppler.cpp.o.d"
  "CMakeFiles/oaq_rf.dir/tdoa.cpp.o"
  "CMakeFiles/oaq_rf.dir/tdoa.cpp.o.d"
  "liboaq_rf.a"
  "liboaq_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
