file(REMOVE_RECURSE
  "liboaq_rf.a"
)
