# Empty dependencies file for oaq_rf.
# This may be replaced when dependencies are built.
