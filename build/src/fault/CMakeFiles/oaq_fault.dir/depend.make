# Empty dependencies file for oaq_fault.
# This may be replaced when dependencies are built.
