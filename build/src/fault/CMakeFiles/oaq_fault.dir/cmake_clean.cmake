file(REMOVE_RECURSE
  "CMakeFiles/oaq_fault.dir/constellation_availability.cpp.o"
  "CMakeFiles/oaq_fault.dir/constellation_availability.cpp.o.d"
  "CMakeFiles/oaq_fault.dir/ctmc.cpp.o"
  "CMakeFiles/oaq_fault.dir/ctmc.cpp.o.d"
  "CMakeFiles/oaq_fault.dir/plane_capacity.cpp.o"
  "CMakeFiles/oaq_fault.dir/plane_capacity.cpp.o.d"
  "liboaq_fault.a"
  "liboaq_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
