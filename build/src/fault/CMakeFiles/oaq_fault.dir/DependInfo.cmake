
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/constellation_availability.cpp" "src/fault/CMakeFiles/oaq_fault.dir/constellation_availability.cpp.o" "gcc" "src/fault/CMakeFiles/oaq_fault.dir/constellation_availability.cpp.o.d"
  "/root/repo/src/fault/ctmc.cpp" "src/fault/CMakeFiles/oaq_fault.dir/ctmc.cpp.o" "gcc" "src/fault/CMakeFiles/oaq_fault.dir/ctmc.cpp.o.d"
  "/root/repo/src/fault/plane_capacity.cpp" "src/fault/CMakeFiles/oaq_fault.dir/plane_capacity.cpp.o" "gcc" "src/fault/CMakeFiles/oaq_fault.dir/plane_capacity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
