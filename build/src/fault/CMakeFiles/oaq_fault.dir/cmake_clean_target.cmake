file(REMOVE_RECURSE
  "liboaq_fault.a"
)
