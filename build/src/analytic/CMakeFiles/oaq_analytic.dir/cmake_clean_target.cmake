file(REMOVE_RECURSE
  "liboaq_analytic.a"
)
