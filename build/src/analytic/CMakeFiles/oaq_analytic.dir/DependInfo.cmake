
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/geometry.cpp" "src/analytic/CMakeFiles/oaq_analytic.dir/geometry.cpp.o" "gcc" "src/analytic/CMakeFiles/oaq_analytic.dir/geometry.cpp.o.d"
  "/root/repo/src/analytic/measure.cpp" "src/analytic/CMakeFiles/oaq_analytic.dir/measure.cpp.o" "gcc" "src/analytic/CMakeFiles/oaq_analytic.dir/measure.cpp.o.d"
  "/root/repo/src/analytic/qos_model.cpp" "src/analytic/CMakeFiles/oaq_analytic.dir/qos_model.cpp.o" "gcc" "src/analytic/CMakeFiles/oaq_analytic.dir/qos_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
