file(REMOVE_RECURSE
  "CMakeFiles/oaq_analytic.dir/geometry.cpp.o"
  "CMakeFiles/oaq_analytic.dir/geometry.cpp.o.d"
  "CMakeFiles/oaq_analytic.dir/measure.cpp.o"
  "CMakeFiles/oaq_analytic.dir/measure.cpp.o.d"
  "CMakeFiles/oaq_analytic.dir/qos_model.cpp.o"
  "CMakeFiles/oaq_analytic.dir/qos_model.cpp.o.d"
  "liboaq_analytic.a"
  "liboaq_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
