# Empty dependencies file for oaq_analytic.
# This may be replaced when dependencies are built.
