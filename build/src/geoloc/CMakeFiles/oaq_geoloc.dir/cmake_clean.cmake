file(REMOVE_RECURSE
  "CMakeFiles/oaq_geoloc.dir/crlb.cpp.o"
  "CMakeFiles/oaq_geoloc.dir/crlb.cpp.o.d"
  "CMakeFiles/oaq_geoloc.dir/dual_fix.cpp.o"
  "CMakeFiles/oaq_geoloc.dir/dual_fix.cpp.o.d"
  "CMakeFiles/oaq_geoloc.dir/sequential.cpp.o"
  "CMakeFiles/oaq_geoloc.dir/sequential.cpp.o.d"
  "CMakeFiles/oaq_geoloc.dir/wls.cpp.o"
  "CMakeFiles/oaq_geoloc.dir/wls.cpp.o.d"
  "liboaq_geoloc.a"
  "liboaq_geoloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
