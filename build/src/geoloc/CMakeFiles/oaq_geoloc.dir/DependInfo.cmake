
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geoloc/crlb.cpp" "src/geoloc/CMakeFiles/oaq_geoloc.dir/crlb.cpp.o" "gcc" "src/geoloc/CMakeFiles/oaq_geoloc.dir/crlb.cpp.o.d"
  "/root/repo/src/geoloc/dual_fix.cpp" "src/geoloc/CMakeFiles/oaq_geoloc.dir/dual_fix.cpp.o" "gcc" "src/geoloc/CMakeFiles/oaq_geoloc.dir/dual_fix.cpp.o.d"
  "/root/repo/src/geoloc/sequential.cpp" "src/geoloc/CMakeFiles/oaq_geoloc.dir/sequential.cpp.o" "gcc" "src/geoloc/CMakeFiles/oaq_geoloc.dir/sequential.cpp.o.d"
  "/root/repo/src/geoloc/wls.cpp" "src/geoloc/CMakeFiles/oaq_geoloc.dir/wls.cpp.o" "gcc" "src/geoloc/CMakeFiles/oaq_geoloc.dir/wls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/oaq_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/oaq_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oaq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
