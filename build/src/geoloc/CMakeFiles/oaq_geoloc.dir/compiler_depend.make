# Empty compiler generated dependencies file for oaq_geoloc.
# This may be replaced when dependencies are built.
