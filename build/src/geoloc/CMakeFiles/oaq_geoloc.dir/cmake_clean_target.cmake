file(REMOVE_RECURSE
  "liboaq_geoloc.a"
)
