# Empty dependencies file for oaq_sim.
# This may be replaced when dependencies are built.
