file(REMOVE_RECURSE
  "liboaq_sim.a"
)
