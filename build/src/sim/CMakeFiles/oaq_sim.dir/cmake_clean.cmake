file(REMOVE_RECURSE
  "CMakeFiles/oaq_sim.dir/simulator.cpp.o"
  "CMakeFiles/oaq_sim.dir/simulator.cpp.o.d"
  "liboaq_sim.a"
  "liboaq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oaq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
