// oaqctl — command-line front end to the oaq-constellation library.
//
//   oaqctl qos       --k 12 --tau 5 --mu 0.5 --nu 30
//   oaqctl measure   --lambda 5e-5 --eta 12 --tau 5 --mu 0.2
//   oaqctl capacity  --lambda 7e-5 --eta 10 --cycles 400
//   oaqctl plan      --k 9 --tau 5 --at 2.0
//   oaqctl simulate  --k 9 --tau 5 --mu 0.5 --episodes 20000 [--baq]
//                    [--trace out.jsonl] [--metrics out.json] [--profile]
//                    [--fault-plan plan.txt] [--loss P] [--reliable]
//                    [--self-heal] [--ge-loss PA,PB,P,R,LOSS]
//                    [--outage-train PA,PB,UP,DOWN]
//                    [--check-invariants] [--chaos-sweep]
//   oaqctl coverage  [--bands 18]
//   oaqctl trace-summary trace.jsonl [--metrics metrics.json]
//   oaqctl report    [--trace T] [--metrics M] [--spans S] [--manifest F]
//                    [--top N] [--json out.json]
//
// Every subcommand prints an aligned table; see `oaqctl help`.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analytic/measure.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/plan.hpp"
#include "fault/plane_capacity.hpp"
#include "oaq/batch_episode.hpp"
#include "oaq/montecarlo.hpp"
#include "oaq/campaign.hpp"
#include "oaq/planner.hpp"
#include "obs/jsonfmt.hpp"
#include "obs/ledger.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "orbit/constellation_builder.hpp"
#include "orbit/coverage.hpp"

// Build provenance for the run manifest; the build system injects real
// values (tools/CMakeLists.txt), these are the out-of-tree fallbacks.
#ifndef OAQ_GIT_DESCRIBE
#define OAQ_GIT_DESCRIBE "unknown"
#endif
#ifndef OAQ_BUILD_TYPE
#define OAQ_BUILD_TYPE "unknown"
#endif

namespace oaq {
namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      OAQ_REQUIRE(key.rfind("--", 0) == 0, "flags must start with --");
      key.erase(0, 2);
      OAQ_REQUIRE(!key.empty(), "empty flag name");
      // A token starting with "--" is the next flag, so this one is a
      // boolean; anything else (including negative numbers) is the value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  /// Strict numeric parse: the whole value must be a finite number —
  /// `--tau 5x` or `--tau abc` is a one-line error, not silently 5 or 0.
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    double out = 0.0;
    try {
      out = std::stod(it->second, &used);
    } catch (const std::exception&) {
      fail(key, it->second, "a number");
    }
    if (used != it->second.size() || !std::isfinite(out)) {
      fail(key, it->second, "a finite number");
    }
    return out;
  }
  [[nodiscard]] int integer(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    int out = 0;
    try {
      out = std::stoi(it->second, &used);
    } catch (const std::exception&) {
      fail(key, it->second, "an integer");
    }
    if (used != it->second.size()) fail(key, it->second, "an integer");
    return out;
  }
  /// number() constrained to [lo, hi].
  [[nodiscard]] double number_in(const std::string& key, double fallback,
                                 double lo, double hi) const {
    const double out = number(key, fallback);
    if (out < lo || out > hi) {
      throw std::invalid_argument("--" + key + " must be in [" +
                                  std::to_string(lo) + ", " +
                                  std::to_string(hi) + "]");
    }
    return out;
  }
  /// number() constrained to be strictly positive.
  [[nodiscard]] double positive(const std::string& key,
                                double fallback) const {
    const double out = number(key, fallback);
    if (!(out > 0.0)) {
      throw std::invalid_argument("--" + key + " must be positive");
    }
    return out;
  }
  /// integer() constrained to be >= `floor`.
  [[nodiscard]] int at_least(const std::string& key, int fallback,
                             int floor) const {
    const int out = integer(key, fallback);
    if (out < floor) {
      throw std::invalid_argument("--" + key + " must be >= " +
                                  std::to_string(floor));
    }
    return out;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  [[noreturn]] static void fail(const std::string& key,
                                const std::string& value,
                                const std::string& expected) {
    throw std::invalid_argument("--" + key + ": expected " + expected +
                                ", got '" + value + "'");
  }

  std::map<std::string, std::string> values_;
};

/// A resolved --constellation value: the shells as specified (for the
/// manifest and canonical re-serialization) plus the built constellation.
struct ConstellationChoice {
  std::vector<WalkerShell> shells;
  Constellation constellation;
  std::string origin;  ///< "preset:NAME" or the file path
};

/// Parse --constellation <preset|file> (nullopt when absent). A value
/// matching a preset name loads that design point; anything else must be
/// a readable shell file in the canonical line format (tools/README.md).
/// Validation is strict either way: unknown names list the presets, and
/// malformed files fail with the offending line number.
std::optional<ConstellationChoice> load_constellation(const Args& args) {
  const std::string value = args.str("constellation");
  if (value.empty()) return std::nullopt;
  const auto& names = constellation_preset_names();
  std::vector<WalkerShell> shells;
  std::string origin;
  if (std::find(names.begin(), names.end(), value) != names.end()) {
    shells = constellation_preset(value);
    origin = "preset:" + value;
  } else {
    std::ifstream is(value);
    if (!is.good()) {
      std::string msg = "--constellation: '" + value +
                        "' is neither a preset (";
      for (std::size_t i = 0; i < names.size(); ++i) {
        msg += (i == 0 ? "" : ", ");
        msg += names[i];
      }
      msg += ") nor a readable shell file";
      throw std::invalid_argument(msg);
    }
    try {
      shells = parse_constellation(is);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("--constellation " + value + ": " +
                                  e.what());
    }
    origin = value;
  }
  return ConstellationChoice{shells, build_constellation(shells),
                             std::move(origin)};
}

/// Geometric-mode target flags: --lat / --lon in degrees.
GeoPoint target_from_flags(const Args& args) {
  return GeoPoint::from_degrees(args.number_in("lat", 0.0, -90.0, 90.0),
                                args.number_in("lon", 0.0, -180.0, 180.0));
}

/// Parse --fault-plan FILE (nullopt when absent). With `horizon` the
/// parser additionally rejects clauses scheduled past it (campaign mode,
/// where clause times are absolute run time).
std::optional<FaultPlan> load_fault_plan(
    const Args& args, std::optional<Duration> horizon = std::nullopt) {
  const std::string path = args.str("fault-plan");
  if (path.empty()) return std::nullopt;
  std::ifstream is(path);
  if (!is.good()) {
    throw std::invalid_argument("cannot open fault plan: " + path);
  }
  try {
    return horizon ? parse_fault_plan(is, *horizon) : parse_fault_plan(is);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("--fault-plan " + path + ": " + e.what());
  }
}

/// Exact-arity comma-separated numeric flag value ("0,1,4.0,2.0,0.95").
std::vector<double> comma_numbers(const std::string& flag,
                                  const std::string& value,
                                  std::size_t arity) {
  std::vector<double> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size() || item.empty() || !std::isfinite(v)) {
      throw std::invalid_argument("--" + flag + ": '" + item +
                                  "' is not a finite number");
    }
    out.push_back(v);
  }
  if (out.size() != arity) {
    throw std::invalid_argument(
        "--" + flag + ": expected " + std::to_string(arity) +
        " comma-separated numbers, got " + std::to_string(out.size()));
  }
  return out;
}

/// Stochastic-clause flags shared by simulate and campaign (appended to
/// the --fault-plan clauses, or to a fresh plan, over [0, window]):
///   --ge-loss PA,PB,P,R,LOSS      Gilbert–Elliott loss on link (PA, PB)
///   --outage-train PA,PB,UP,DOWN  alternating up/down outage on (PA, PB)
void append_stochastic_clauses(const Args& args,
                               std::optional<FaultPlan>& plan,
                               Duration window) {
  const std::string ge = args.str("ge-loss");
  const std::string train = args.str("outage-train");
  if (ge.empty() && train.empty()) return;
  if (!plan) plan.emplace();
  if (!ge.empty()) {
    const auto v = comma_numbers("ge-loss", ge, 5);
    plan->add(FaultPlan::ge_loss(static_cast<int>(v[0]),
                                 static_cast<int>(v[1]), v[2], v[3], v[4],
                                 Duration::zero(), window));
  }
  if (!train.empty()) {
    const auto v = comma_numbers("outage-train", train, 4);
    plan->add(FaultPlan::outage_train(static_cast<int>(v[0]),
                                      static_cast<int>(v[1]), v[2], v[3],
                                      Duration::zero(), window));
  }
}

/// Link-degradation flags shared by simulate and campaign:
/// --loss P --reliable --retries N --backoff B --self-heal.
void apply_link_flags(const Args& args, ProtocolConfig& protocol) {
  protocol.crosslink_loss_probability =
      args.number_in("loss", protocol.crosslink_loss_probability, 0.0, 1.0);
  if (args.flag("reliable")) protocol.reliable_links = true;
  protocol.link_retry_limit =
      args.at_least("retries", protocol.link_retry_limit, 0);
  protocol.link_backoff_base =
      args.number_in("backoff", protocol.link_backoff_base, 1.0, 64.0);
  if (args.flag("self-heal")) protocol.self_healing_links = true;
  protocol.link_health_alpha = args.number_in(
      "health-alpha", protocol.link_health_alpha, 0.0, 1.0);
}

/// Observability file sinks shared by `simulate` and `campaign`:
/// --trace PATH (JSONL events), --metrics PATH (JSON registry), --spans
/// PATH (Chrome trace-event JSON), --profile (BENCH_JSON reduce timings on
/// stdout). Any file sink also emits a run-manifest JSON next to it — a
/// SEPARATE file, so the golden-pinned trace/metrics bytes are untouched
/// (--manifest PATH overrides the derived name).
struct ObsSinks {
  std::string trace_path;
  std::string metrics_path;
  std::string spans_path;
  std::string manifest_path;
  bool want_profile = false;
  TraceCollector trace;
  MetricsRegistry metrics;
  ReduceProfile profile;
  SpanProfiler spans;
  RunManifest manifest;

  explicit ObsSinks(const Args& args)
      : trace_path(args.str("trace")),
        metrics_path(args.str("metrics")),
        spans_path(args.str("spans")),
        manifest_path(args.str("manifest")),
        want_profile(args.flag("profile")) {
    if (manifest_path.empty()) {
      // Derived: next to the first requested artifact.
      const std::string& anchor = !metrics_path.empty() ? metrics_path
                                  : !trace_path.empty() ? trace_path
                                                        : spans_path;
      if (!anchor.empty()) manifest_path = anchor + ".manifest.json";
    }
    manifest.git_describe = OAQ_GIT_DESCRIBE;
    manifest.build_type = OAQ_BUILD_TYPE;
    manifest.compiler = __VERSION__;
  }

  [[nodiscard]] TraceCollector* trace_ptr() {
    return trace_path.empty() ? nullptr : &trace;
  }
  [[nodiscard]] MetricsRegistry* metrics_ptr() {
    return metrics_path.empty() ? nullptr : &metrics;
  }
  [[nodiscard]] ReduceProfile* profile_ptr() {
    return want_profile ? &profile : nullptr;
  }
  [[nodiscard]] SpanProfiler* spans_ptr() {
    return spans_path.empty() ? nullptr : &spans;
  }

  /// Write the requested files and print the BENCH_JSON profile line.
  void finish(const std::string& bench_name) {
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      OAQ_REQUIRE(os.good(), "cannot open trace output file");
      trace.write_jsonl(os);
      std::cout << "trace: " << trace.total_recorded() << " events ("
                << trace.total_dropped() << " dropped) -> " << trace_path
                << "\n";
      manifest.add_artifact("trace", trace_path);
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      OAQ_REQUIRE(os.good(), "cannot open metrics output file");
      metrics.write_json(os);
      os << "\n";
      std::cout << "metrics: " << metrics.counters().size() << " counters, "
                << metrics.stats().size() << " stats -> " << metrics_path
                << "\n";
      manifest.add_artifact("metrics", metrics_path);
    }
    if (!spans_path.empty()) {
      std::ofstream os(spans_path);
      OAQ_REQUIRE(os.good(), "cannot open spans output file");
      spans.write_chrome_json(os);
      std::cout << "spans: " << spans.shards() << " shard arenas -> "
                << spans_path << "\n";
      manifest.add_artifact("spans", spans_path);
    }
    if (!manifest_path.empty()) {
      std::ofstream os(manifest_path);
      OAQ_REQUIRE(os.good(), "cannot open manifest output file");
      manifest.write_json(os);
      std::cout << "manifest: -> " << manifest_path << "\n";
    }
    if (want_profile) {
      std::cout << "BENCH_JSON ";
      profile.write_bench_json(std::cout, bench_name);
      std::cout << "\n";
    }
  }
};

QosModel make_model(const Args& args) {
  QosModelParams p;
  p.tau = Duration::minutes(args.positive("tau", 5.0));
  p.mu = Rate::per_minute(args.positive("mu", 0.5));
  p.nu = Rate::per_minute(args.positive("nu", 30.0));
  return QosModel(PlaneGeometry{}, p);
}

PlaneDependability make_dependability(const Args& args) {
  PlaneDependability dep;
  dep.satellite_failure_rate = Rate::per_hour(args.number("lambda", 5e-5));
  dep.policy.ground_threshold = args.integer("eta", 10);
  dep.policy.launch_lead_time =
      Duration::hours(args.number("launch-lead", 8000.0));
  dep.policy.expedited_lead_time =
      Duration::hours(args.number("expedited-lead", 150.0));
  dep.policy.scheduled_period =
      Duration::hours(args.number("phi", 30000.0));
  return dep;
}

int cmd_qos(const Args& args) {
  const auto model = make_model(args);
  const int k = args.integer("k", 12);
  TablePrinter table({"scheme", "P(Y=0)", "P(Y=1)", "P(Y=2)", "P(Y=3)",
                      "P(Y>=2)"},
                     4);
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    const auto pmf = model.conditional_pmf(k, s);
    table.add_row({std::string(s == Scheme::kOaq ? "OAQ" : "BAQ"), pmf[0],
                   pmf[1], pmf[2], pmf[3],
                   model.conditional_tail(k, 2, s)});
  }
  std::cout << "P(Y = y | k = " << k << "), tau = "
            << model.params().tau.to_minutes() << " min, mu = "
            << model.params().mu.per_minute_value() << "/min\n";
  table.print(std::cout);
  return 0;
}

int cmd_capacity(const Args& args) {
  const auto dep = make_dependability(args);
  const auto pmf = plane_capacity_pmf(
      dep, static_cast<std::uint64_t>(args.integer("seed", 42)),
      args.integer("cycles", 400));
  TablePrinter table({"k", "P(K = k)"}, 4);
  for (int k = dep.design_active; k >= 0; --k) {
    if (pmf.probability(k) < 1e-6) continue;
    table.add_row({static_cast<long long>(k), pmf.probability(k)});
  }
  std::cout << "Steady-state plane capacity, lambda = "
            << sci(dep.satellite_failure_rate.per_hour_value())
            << "/hr, eta = " << dep.policy.ground_threshold << "\n";
  table.print(std::cout);
  return 0;
}

int cmd_measure(const Args& args) {
  const auto model = make_model(args);
  const auto dep = make_dependability(args);
  const auto pk = plane_capacity_pmf(dep, 42, args.integer("cycles", 400));
  TablePrinter table({"scheme", "P(Y>=1)", "P(Y>=2)", "P(Y>=3)"}, 4);
  for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
    const auto m = qos_measure(model, pk, s);
    table.add_row({std::string(s == Scheme::kOaq ? "OAQ" : "BAQ"), m.tail(1),
                   m.tail(2), m.tail(3)});
  }
  std::cout << "Eq. (3) QoS measure, lambda = "
            << sci(dep.satellite_failure_rate.per_hour_value()) << "/hr\n";
  table.print(std::cout);
  return 0;
}

int cmd_plan(const Args& args) {
  const int k = args.integer("k", 9);
  const AnalyticSchedule sched(PlaneGeometry{}, k,
                               Duration::minutes(args.number("phase", 0.0)));
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(args.number("tau", 5.0));
  const OpportunityPlanner planner(sched, cfg);
  const auto t0 = TimePoint::at(Duration::minutes(args.number("at", 2.0)));
  const auto plan = planner.plan(t0);

  std::cout << "Opportunity from detection at t = "
            << t0.since_origin().to_minutes() << " min (k = " << k
            << ", tau = " << cfg.tau.to_minutes() << "):\n";
  if (plan.simultaneous_at) {
    std::cout << "  simultaneous coverage at t = "
              << plan.simultaneous_at->to_minutes() << " min\n";
  }
  TablePrinter table({"ordinal", "satellite slot", "arrival min",
                      "expected err km"},
                     2);
  for (const auto& step : plan.chain) {
    table.add_row({static_cast<long long>(step.ordinal),
                   static_cast<long long>(step.satellite.slot),
                   step.arrival.to_minutes(), step.expected_error_km});
  }
  table.print(std::cout);
  std::cout << "best achievable: " << to_string(plan.best_achievable)
            << " (" << plan.best_error_km << " km)\n";
  return 0;
}

/// `--chaos-sweep`: rerun the Monte-Carlo under a battery of degradation
/// scenarios (plus the --fault-plan file when given) and tabulate the QoS
/// damage. Every scenario runs with invariant checking on.
int run_chaos_sweep(QosSimulationConfig cfg,
                    const std::optional<FaultPlan>& file_plan) {
  const Duration tau = cfg.protocol.tau;
  struct Scenario {
    std::string name;
    FaultPlan plan;
  };
  std::vector<Scenario> scenarios(1);
  scenarios[0].name = "baseline";
  scenarios.push_back({"burst_loss 0.25", {}});
  scenarios.back().plan.add(
      FaultPlan::burst_loss(0.25, Duration::zero(), tau));
  scenarios.push_back({"delay_spike x3", {}});
  scenarios.back().plan.add(
      FaultPlan::delay_spike(3.0, Duration::zero(), tau));
  scenarios.push_back({"fail_silent 0/0", {}});
  scenarios.back().plan.add(
      FaultPlan::fail_silent({0, 0}, Duration::zero()));
  scenarios.push_back({"storm", {}});
  scenarios.back()
      .plan.add(FaultPlan::burst_loss(0.25, Duration::zero(), tau))
      .add(FaultPlan::delay_spike(3.0, Duration::zero(), tau))
      .add(FaultPlan::fail_silent({0, 0}, Duration::zero()));
  if (file_plan) scenarios.push_back({"fault-plan file", *file_plan});

  cfg.trace = nullptr;
  cfg.metrics = nullptr;
  cfg.profile = nullptr;
  cfg.check_invariants = true;

  // Cell seeds come off the reserved campaign-fault stream (stream 6 of
  // the master fork tree — tools/README.md "RNG stream layout"): cell i
  // runs with a seed drawn from Rng(seed).fork(6).fork(i). Scenarios are
  // therefore mutually independent: reordering or inserting one never
  // perturbs another cell's draws, and none of them shadows the plain
  // `simulate` run at the same --seed.
  const Rng sweep_master(cfg.seed);

  TablePrinter table({"scenario", "P(Y>=2)", "P(missed)", "duplicates",
                      "unresolved", "violations"},
                     4);
  std::int64_t total_violations = 0;
  std::vector<std::string> samples;
  for (std::size_t cell = 0; cell < scenarios.size(); ++cell) {
    const Scenario& s = scenarios[cell];
    Rng cell_rng = sweep_master.fork(6).fork(cell);
    cfg.seed = cell_rng.next_u64();
    cfg.fault_plan = s.plan.empty() ? nullptr : &s.plan;
    const auto sim = simulate_qos(cfg);
    table.add_row({s.name, sim.tail(QosLevel::kSequentialDual),
                   sim.probability(QosLevel::kMissed),
                   static_cast<long long>(sim.duplicates),
                   static_cast<long long>(sim.unresolved),
                   static_cast<long long>(sim.invariant_violations)});
    total_violations += sim.invariant_violations;
    for (const auto& sample : sim.invariant_samples) {
      if (samples.size() < 8) samples.push_back(s.name + ": " + sample);
    }
  }
  std::cout << "Chaos sweep, k = " << cfg.k << ", " << cfg.episodes
            << " episodes per scenario:\n";
  table.print(std::cout);
  for (const auto& sample : samples) {
    std::cout << "violation: " << sample << "\n";
  }
  std::cout << "invariants: " << total_violations << " violation(s)\n";
  return total_violations == 0 ? 0 : 1;
}

int cmd_simulate(const Args& args) {
  QosSimulationConfig cfg;
  cfg.k = args.at_least("k", 9, 1);
  cfg.episodes = args.at_least("episodes", 20000, 1);
  cfg.seed = static_cast<std::uint64_t>(args.at_least("seed", 1, 0));
  cfg.mu = Rate::per_minute(args.positive("mu", 0.5));
  cfg.opportunity_adaptive = !args.flag("baq");
  cfg.protocol.tau = Duration::minutes(args.positive("tau", 5.0));
  cfg.protocol.delta =
      Duration::seconds(args.number_in("delta-s", 12.0, 0.0, 1e6));
  cfg.protocol.tg = Duration::seconds(args.number_in("tg-s", 6.0, 0.0, 1e6));
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.jobs = args.at_least("jobs", 0, 0);
  // Queue telemetry is deterministic, so the jobs-independence contract of
  // --metrics output holds with it enabled.
  cfg.queue_metrics = true;
  cfg.batch_episodes = !args.flag("no-batch-episodes");
  cfg.pooled_episodes = !args.flag("no-pooled-episodes");
  // Batch-engine occupancy counters are pure functions of the episode
  // sequence, so they share queue_metrics' determinism contract.
  cfg.batch_metrics = true;
  // Strict: --interleave-width only means something on the batch engine,
  // so the combination with --no-batch-episodes is a contradiction, not a
  // silent no-op; out-of-range widths are a one-line error likewise.
  if (args.flag("interleave-width")) {
    if (!cfg.batch_episodes) {
      throw std::invalid_argument(
          "--interleave-width requires the batch engine; drop "
          "--no-batch-episodes");
    }
    const int width = args.integer("interleave-width", 0);
    if (width < 0 || width > kEpisodeBatchWidth) {
      throw std::invalid_argument(
          "--interleave-width must be 0 (block width) or in [1, " +
          std::to_string(kEpisodeBatchWidth) + "]");
    }
    cfg.interleave_width = width;
  }
  apply_link_flags(args, cfg.protocol);

  // Geometric mode: --constellation <preset|file> (+ --lat/--lon target,
  // --earth-rotation). Shell-relative fault clauses are resolved against
  // the constellation's shell layout before arming.
  const auto con = load_constellation(args);
  if (con) {
    cfg.constellation = &con->constellation;
    cfg.target = target_from_flags(args);
    cfg.earth_rotation = args.flag("earth-rotation");
  }

  auto plan = load_fault_plan(args);
  // Stochastic clause flags expand over [0, τ] — simulate's clause times
  // are relative to the signal start, and τ bounds the protocol window.
  append_stochastic_clauses(args, plan, cfg.protocol.tau);
  if (args.flag("chaos-sweep")) return run_chaos_sweep(cfg, plan);
  std::optional<FaultPlan> resolved;
  if (plan && !plan->empty()) {
    if (con) {
      resolved = plan->resolve(con->constellation);
    } else {
      for (const auto& c : plan->clauses()) {
        if (c.shell >= 0) {
          throw std::invalid_argument(
              "--fault-plan uses shell-relative clauses; pass "
              "--constellation so they can be resolved");
        }
      }
      resolved = *plan;
    }
    cfg.fault_plan = &*resolved;
  }
  cfg.check_invariants =
      args.flag("check-invariants") || cfg.fault_plan != nullptr;

  ObsSinks obs(args);
  cfg.trace = obs.trace_ptr();
  cfg.metrics = obs.metrics_ptr();
  cfg.profile = obs.profile_ptr();
  cfg.spans = obs.spans_ptr();

  obs.manifest.tool = "simulate";
  obs.manifest.seed = cfg.seed;
  obs.manifest.jobs = cfg.jobs;
  obs.manifest.add_config("k", std::to_string(cfg.k));
  obs.manifest.add_config("episodes", std::to_string(cfg.episodes));
  obs.manifest.add_config("scheme", cfg.opportunity_adaptive ? "oaq" : "baq");
  obs.manifest.add_config("tau_min",
                          std::to_string(cfg.protocol.tau.to_minutes()));
  obs.manifest.add_config("mu_per_min",
                          std::to_string(cfg.mu.per_minute_value()));
  obs.manifest.add_config(
      "loss", std::to_string(cfg.protocol.crosslink_loss_probability));
  obs.manifest.add_config("reliable",
                          cfg.protocol.reliable_links ? "1" : "0");
  obs.manifest.add_config("batch_episodes", cfg.batch_episodes ? "1" : "0");
  obs.manifest.add_config("interleave_width",
                          std::to_string(cfg.interleave_width));
  obs.manifest.add_config("pooled_episodes", cfg.pooled_episodes ? "1" : "0");
  obs.manifest.add_config("constellation", con ? con->origin : "");
  if (con) {
    obs.manifest.add_config("target_lat_deg",
                            std::to_string(cfg.target.lat_deg()));
    obs.manifest.add_config("target_lon_deg",
                            std::to_string(cfg.target.lon_deg()));
  }
  obs.manifest.add_config("fault_plan",
                          cfg.fault_plan != nullptr ? args.str("fault-plan")
                                                    : "");

  const auto sim = simulate_qos(cfg);
  TablePrinter table({"level", "probability"}, 4);
  for (int y = 0; y <= 3; ++y) {
    table.add_row({std::string(to_string(static_cast<QosLevel>(y))),
                   sim.level_pmf.probability(y)});
  }
  std::cout << (cfg.opportunity_adaptive ? "OAQ" : "BAQ")
            << " Monte-Carlo, k = " << cfg.k << ", " << cfg.episodes
            << " episodes:\n";
  table.print(std::cout);
  std::cout << "mean chain " << sim.mean_chain_length << ", duplicates "
            << sim.duplicates << ", unresolved " << sim.unresolved
            << ", late alerts " << sim.untimely << "\n";
  if (cfg.check_invariants) {
    std::cout << "invariants: " << sim.invariant_violations
              << " violation(s)\n";
    for (const auto& sample : sim.invariant_samples) {
      std::cout << "violation: " << sample << "\n";
    }
  }
  obs.finish("oaqctl.simulate");
  return cfg.check_invariants && sim.invariant_violations > 0 ? 1 : 0;
}

int cmd_campaign(const Args& args) {
  CampaignConfig cfg;
  cfg.k = args.at_least("k", 9, 1);
  cfg.signal_arrival_rate = Rate::per_hour(args.positive("per-hour", 10.0));
  cfg.horizon = Duration::hours(args.positive("hours", 100.0));
  cfg.protocol.tau = Duration::minutes(args.positive("tau", 5.0));
  cfg.protocol.nu = Rate::per_minute(args.positive("nu", 30.0));
  cfg.protocol.computation_cap =
      Duration::seconds(args.number_in("cap-s", 6.0, 0.0, 1e6));
  cfg.compute_contention = !args.flag("no-contention");
  cfg.seed = static_cast<std::uint64_t>(args.at_least("seed", 1, 0));
  cfg.replications = args.at_least("replications", 1, 1);
  cfg.jobs = args.at_least("jobs", 0, 0);
  cfg.queue_metrics = true;  // deterministic; see cmd_simulate
  cfg.batch_episodes = !args.flag("no-batch-episodes");
  apply_link_flags(args, cfg.protocol);

  // Geometric mode, exactly as in cmd_simulate.
  const auto con = load_constellation(args);
  if (con) {
    cfg.constellation = &con->constellation;
    cfg.target = target_from_flags(args);
    cfg.earth_rotation = args.flag("earth-rotation");
  }

  // Campaign clause times are absolute run time, so the horizon-aware
  // parse rejects clauses that could never fire; stochastic clause flags
  // expand over the whole horizon.
  auto plan = load_fault_plan(args, cfg.horizon);
  append_stochastic_clauses(args, plan, cfg.horizon);
  std::optional<FaultPlan> resolved;
  if (plan && !plan->empty()) {
    if (con) {
      resolved = plan->resolve(con->constellation);
    } else {
      for (const auto& c : plan->clauses()) {
        if (c.shell >= 0) {
          throw std::invalid_argument(
              "--fault-plan uses shell-relative clauses; pass "
              "--constellation so they can be resolved");
        }
      }
      resolved = *plan;
    }
    cfg.fault_plan = &*resolved;
  }
  cfg.check_invariants =
      args.flag("check-invariants") || cfg.fault_plan != nullptr;

  ObsSinks obs(args);
  cfg.trace = obs.trace_ptr();
  cfg.metrics = obs.metrics_ptr();
  cfg.profile = obs.profile_ptr();
  cfg.spans = obs.spans_ptr();
  // Per-envelope trace attribution: every xlink_* event names its owning
  // target, so trace-summary's drops column is exact for multi-target
  // runs (the library default stays -1 for the golden campaign trace).
  cfg.episode_attribution = true;
  EpisodeLedger ledger;
  const std::string ledger_path = args.str("ledger");
  if (!ledger_path.empty()) cfg.ledger = &ledger;

  obs.manifest.tool = "campaign";
  obs.manifest.seed = cfg.seed;
  obs.manifest.jobs = cfg.jobs;
  obs.manifest.add_config("k", std::to_string(cfg.k));
  obs.manifest.add_config(
      "per_hour", std::to_string(cfg.signal_arrival_rate.per_hour_value()));
  obs.manifest.add_config("hours", std::to_string(cfg.horizon.to_hours()));
  obs.manifest.add_config("replications",
                          std::to_string(cfg.replications));
  obs.manifest.add_config("scheme", cfg.opportunity_adaptive ? "oaq" : "baq");
  obs.manifest.add_config("tau_min",
                          std::to_string(cfg.protocol.tau.to_minutes()));
  obs.manifest.add_config("contention", cfg.compute_contention ? "1" : "0");
  obs.manifest.add_config(
      "loss", std::to_string(cfg.protocol.crosslink_loss_probability));
  obs.manifest.add_config("reliable",
                          cfg.protocol.reliable_links ? "1" : "0");
  obs.manifest.add_config("constellation", con ? con->origin : "");
  if (con) {
    obs.manifest.add_config("target_lat_deg",
                            std::to_string(cfg.target.lat_deg()));
    obs.manifest.add_config("target_lon_deg",
                            std::to_string(cfg.target.lon_deg()));
  }
  obs.manifest.add_config("fault_plan",
                          cfg.fault_plan != nullptr ? args.str("fault-plan")
                                                    : "");

  const auto r = run_campaign(cfg);
  if (!ledger_path.empty()) {
    std::ofstream os(ledger_path);
    OAQ_REQUIRE(os.good(), "cannot open ledger output file");
    ledger.write_json(os);
    std::cout << "ledger: " << ledger.size() << " target rows -> "
              << ledger_path << "\n";
    obs.manifest.add_artifact("ledger", ledger_path);
  }
  TablePrinter table({"metric", "value"}, 4);
  table.add_row({std::string("replications"),
                 static_cast<long long>(r.replications)});
  table.add_row({std::string("signals"), static_cast<long long>(r.signals)});
  table.add_row({std::string("delivered"),
                 static_cast<long long>(r.delivered)});
  table.add_row({std::string("P(Y>=2)"),
                 r.tail(QosLevel::kSequentialDual)});
  table.add_row({std::string("P(missed)"),
                 r.probability(QosLevel::kMissed)});
  table.add_row({std::string("mean latency min"), r.mean_latency_min});
  table.add_row({std::string("contended computations"),
                 static_cast<long long>(r.contended_computations)});
  std::cout << "Campaign: k = " << cfg.k << ", "
            << args.number("per-hour", 10.0) << " signals/hour over "
            << cfg.horizon.to_hours() << " h\n";
  table.print(std::cout);
  if (cfg.check_invariants) {
    std::cout << "invariants: " << r.invariant_violations
              << " violation(s)\n";
    for (const auto& sample : r.invariant_samples) {
      std::cout << "violation: " << sample << "\n";
    }
  }
  obs.finish("oaqctl.campaign");
  return cfg.check_invariants && r.invariant_violations > 0 ? 1 : 0;
}

/// Number following `"key":` in a metrics JSON dump (the registry writer's
/// flat format — deliberately not a general JSON parser).
std::optional<double> find_metric_number(const std::string& text,
                                         const std::string& key) {
  const std::string needle = '"' + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::stod(text.substr(pos + needle.size()));
}

/// Print the DES ready-queue telemetry recorded in a --metrics JSON file
/// (sim.queue.* keys; simulate and campaign export them).
int print_queue_telemetry(const std::string& metrics_path) {
  std::ifstream is(metrics_path);
  if (!is.good()) {
    std::cerr << "error: cannot open metrics file: " << metrics_path << '\n';
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  const auto runs = find_metric_number(text, "sim.queue.runs_created");
  const auto merges = find_metric_number(text, "sim.queue.run_merges");
  const auto purged = find_metric_number(text, "sim.queue.tombstones_purged");
  const auto events = find_metric_number(text, "sim.events");
  if (!runs || !merges || !purged) {
    std::cout << "no sim.queue.* metrics in " << metrics_path << "\n";
    return 0;
  }
  // The stat value is an object; its "max" field follows the key.
  double max_run = 0.0;
  const auto stat_pos = text.find("\"sim.queue.max_run_length\":");
  if (stat_pos != std::string::npos) {
    const auto max_pos = text.find("\"max\":", stat_pos);
    if (max_pos != std::string::npos) {
      max_run = std::stod(text.substr(max_pos + 6));
    }
  }
  // Share of ready-queue entries that died as tombstones instead of
  // firing: purged / (purged + processed events).
  const double fired = events.value_or(0.0);
  const double ratio =
      *purged + fired > 0.0 ? *purged / (*purged + fired) : 0.0;
  TablePrinter table({"ready-queue metric", "value"}, 4);
  table.add_row({std::string("runs created"),
                 static_cast<long long>(*runs)});
  table.add_row({std::string("run merges"),
                 static_cast<long long>(*merges)});
  table.add_row({std::string("tombstones purged"),
                 static_cast<long long>(*purged)});
  table.add_row({std::string("tombstone purge ratio"), ratio});
  table.add_row({std::string("max run length"),
                 static_cast<long long>(max_run)});
  std::cout << "DES ready-queue telemetry (" << metrics_path << "):\n";
  table.print(std::cout);
  return 0;
}

/// `oaqctl trace-summary trace.jsonl [--metrics metrics.json]` —
/// termination-cause × chain-length table over a JSONL trace written by
/// --trace, plus the ready-queue telemetry of a --metrics file when given.
int cmd_trace_summary(const std::string& path,
                      const std::string& metrics_path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "error: cannot open trace file: " << path << '\n';
    return 1;
  }
  const TraceSummary summary = summarize_trace(is);
  std::cout << "Trace " << path << ": " << summary.events << " events, "
            << summary.detections << " detections, "
            << summary.alerts_delivered << " alerts delivered, "
            << summary.terminations << " terminations\n";
  if (summary.drops > 0 || summary.retries > 0 ||
      summary.faults_injected > 0) {
    // Degradation accounting (PR 5): crosslink drops by reason, reliable
    // retries, and injected fault activations.
    std::cout << "degradation: " << summary.drops << " drops";
    const char* sep = " (";
    for (const auto& [reason, count] : summary.drops_by_reason) {
      std::cout << sep << reason << " " << count;
      sep = ", ";
    }
    if (!summary.drops_by_reason.empty()) std::cout << ")";
    std::cout << ", " << summary.retries << " retries, "
              << summary.faults_injected << " faults injected";
    if (summary.drops_unattributed > 0) {
      std::cout << ", " << summary.drops_unattributed
                << " drops unattributed";
    }
    std::cout << "\n";
  }
  if (summary.termination.empty()) {
    std::cout << "no termination events\n";
    return metrics_path.empty() ? 0 : print_queue_telemetry(metrics_path);
  }

  std::vector<std::string> headers{"termination cause"};
  for (int chain = 0; chain <= summary.max_chain; ++chain) {
    headers.push_back("n=" + std::to_string(chain));
  }
  headers.emplace_back("total");
  headers.emplace_back("drops");
  TablePrinter table(headers, 0);
  for (const auto& [cause, by_chain] : summary.termination) {
    std::vector<Cell> row{cause};
    long long total = 0;
    for (int chain = 0; chain <= summary.max_chain; ++chain) {
      const auto it = by_chain.find(chain);
      const long long count = it == by_chain.end() ? 0 : it->second;
      row.emplace_back(count);
      total += count;
    }
    row.emplace_back(total);
    // Crosslink drops in episodes whose first termination had this cause.
    const auto drops_it = summary.drops_by_cause.find(cause);
    row.emplace_back(static_cast<long long>(
        drops_it == summary.drops_by_cause.end() ? 0 : drops_it->second));
    table.add_row(row);
  }
  table.print(std::cout);
  return metrics_path.empty() ? 0 : print_queue_telemetry(metrics_path);
}

/// Whole file as a string; nullopt when unreadable.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// One exported span, flattened from the Chrome trace-event JSON.
struct SpanEntry {
  std::string arena;  ///< thread name ("main", "shard-3")
  std::string name;
  double dur_us = 0.0;
  std::int64_t count = 0;
  std::int64_t items = 0;
};

/// Flatten a --spans file ("ph":"X" events; "ph":"M" thread_name records
/// name the arenas). Empty on parse failure.
std::vector<SpanEntry> parse_spans(const std::string& text) {
  std::vector<SpanEntry> out;
  const auto doc = MiniJson::parse(text);
  if (!doc) return out;
  const MiniJson* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  std::map<double, std::string> arena_names;  // tid -> thread_name
  for (const MiniJson& ev : events->array) {
    const MiniJson* ph = ev.find("ph");
    const MiniJson* tid = ev.find("tid");
    if (ph == nullptr || tid == nullptr || !ph->is_string()) continue;
    if (ph->text == "M") {
      const MiniJson* args = ev.find("args");
      const MiniJson* name = args != nullptr ? args->find("name") : nullptr;
      if (name != nullptr && name->is_string()) {
        arena_names[tid->number] = name->text;
      }
      continue;
    }
    if (ph->text != "X") continue;
    SpanEntry entry;
    const auto arena_it = arena_names.find(tid->number);
    entry.arena = arena_it != arena_names.end()
                      ? arena_it->second
                      : "tid-" + std::to_string(
                            static_cast<long long>(tid->number));
    if (const MiniJson* name = ev.find("name"); name != nullptr) {
      entry.name = name->text;
    }
    if (const MiniJson* dur = ev.find("dur"); dur != nullptr) {
      entry.dur_us = dur->number;
    }
    if (const MiniJson* args = ev.find("args"); args != nullptr) {
      if (const MiniJson* count = args->find("count"); count != nullptr) {
        entry.count = static_cast<std::int64_t>(count->number);
      }
      if (const MiniJson* items = args->find("items"); items != nullptr) {
        entry.items = static_cast<std::int64_t>(items->number);
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

/// `oaqctl report [--trace T] [--metrics M] [--spans S] [--manifest F]
/// [--top N] [--json OUT]` — consolidates one run's artifacts into a
/// single human report (and optionally one oaq-report-v1 JSON document):
/// manifest identity, detection→alert latency percentiles, termination
/// cause × chain × drops attribution, top-k spans by inclusive wall time,
/// and the DES ready-queue telemetry.
int cmd_report(const Args& args) {
  const std::string trace_path = args.str("trace");
  const std::string metrics_path = args.str("metrics");
  const std::string spans_path = args.str("spans");
  std::string manifest_path = args.str("manifest");
  const int top_k = args.at_least("top", 10, 1);
  const std::string json_path = args.str("json");
  if (trace_path.empty() && metrics_path.empty() && spans_path.empty()) {
    std::cerr << "usage: oaqctl report [--trace T.jsonl] [--metrics M.json]"
                 " [--spans S.json] [--manifest F.json] [--top N]"
                 " [--json OUT.json]\n";
    return 1;
  }
  if (manifest_path.empty()) {
    // The emitters derive <artifact>.manifest.json; try the same anchors.
    for (const std::string& anchor : {metrics_path, trace_path, spans_path}) {
      if (anchor.empty()) continue;
      if (std::ifstream probe(anchor + ".manifest.json"); probe.good()) {
        manifest_path = anchor + ".manifest.json";
        break;
      }
    }
  }

  // --- Manifest. ---
  std::optional<MiniJson> manifest;
  if (!manifest_path.empty()) {
    if (const auto text = slurp(manifest_path)) {
      manifest = MiniJson::parse(*text);
    }
    if (!manifest || !manifest->is_object()) {
      std::cerr << "error: cannot parse manifest: " << manifest_path << '\n';
      return 1;
    }
    const auto field = [&](std::string_view key) -> std::string {
      const MiniJson* v = manifest->find(key);
      if (v == nullptr) return "?";
      if (v->is_string()) return v->text;
      std::ostringstream os;
      write_json_double(os, v->number);
      return os.str();
    };
    std::cout << "run: tool " << field("tool") << ", seed " << field("seed")
              << ", jobs " << field("jobs") << ", config digest "
              << field("config_digest") << ", build " << field("git_describe")
              << " (" << field("build_type") << ")\n";
  }

  // --- Trace: latency percentiles + cause×chain×drops. ---
  std::optional<TraceSummary> summary;
  std::vector<double> latencies_min;
  std::vector<double> recovery_min;
  if (!trace_path.empty()) {
    const auto text = slurp(trace_path);
    if (!text) {
      std::cerr << "error: cannot open trace file: " << trace_path << '\n';
      return 1;
    }
    std::istringstream stream(*text);
    summary = summarize_trace(stream);
    // Detection → first alert per (shard, episode): the campaign latency
    // definition (CampaignResult::latency_min), recovered from the trace.
    std::map<std::pair<int, std::int64_t>, double> detection_t;
    std::map<std::pair<int, std::int64_t>, double> first_alert_t;
    // Post-outage recovery per (shard, episode): time from the last fault
    // deactivation (a < 0) preceding delivery to the first delivery.
    // Events within a shard arrive in sim-time order, so snapshotting the
    // running last-deactivation time at the delivery event is exact.
    struct RecoveryRow {
      double last_degrade_end = -1.0;
      double degrade_end_at_delivery = -1.0;
      double delivered_min = -1.0;
    };
    std::map<std::pair<int, std::int64_t>, RecoveryRow> recovery_rows;
    std::istringstream lines(*text);
    std::string line;
    while (std::getline(lines, line)) {
      const auto parsed = parse_trace_line(line);
      if (!parsed) continue;
      const std::pair<int, std::int64_t> key{parsed->shard,
                                             parsed->event.episode};
      if (parsed->event.type == TraceEventType::kDetection) {
        detection_t.emplace(key, parsed->event.t_min);
      } else if (parsed->event.type == TraceEventType::kAlert) {
        first_alert_t.emplace(key, parsed->event.t_min);
      } else if (parsed->event.type == TraceEventType::kAlertDelivered) {
        RecoveryRow& row = recovery_rows[key];
        if (row.delivered_min < 0.0) {
          row.delivered_min = parsed->event.t_min;
          row.degrade_end_at_delivery = row.last_degrade_end;
        }
      } else if (is_fault(parsed->event.type) && parsed->event.a < 0) {
        RecoveryRow& row = recovery_rows[key];
        row.last_degrade_end =
            std::max(row.last_degrade_end, parsed->event.t_min);
      }
    }
    for (const auto& [key, alert_t] : first_alert_t) {
      const auto it = detection_t.find(key);
      if (it != detection_t.end()) {
        latencies_min.push_back(alert_t - it->second);
      }
    }
    std::sort(latencies_min.begin(), latencies_min.end());
    for (const auto& [key, row] : recovery_rows) {
      if (row.delivered_min >= 0.0 && row.degrade_end_at_delivery >= 0.0) {
        recovery_min.push_back(row.delivered_min -
                               row.degrade_end_at_delivery);
      }
    }
    std::sort(recovery_min.begin(), recovery_min.end());

    std::cout << "trace: " << summary->events << " events, "
              << summary->detections << " detections, "
              << summary->alerts_delivered << " alerts delivered, "
              << summary->drops << " drops, " << summary->retries
              << " retries, " << summary->faults_injected
              << " faults injected\n";
    if (!latencies_min.empty()) {
      TablePrinter table({"latency (detection → first alert)", "min"}, 3);
      table.add_row({std::string("episodes"),
                     static_cast<long long>(latencies_min.size())});
      table.add_row({std::string("p50"), percentile(latencies_min, 50.0)});
      table.add_row({std::string("p90"), percentile(latencies_min, 90.0)});
      table.add_row({std::string("p99"), percentile(latencies_min, 99.0)});
      table.add_row({std::string("max"), latencies_min.back()});
      table.print(std::cout);
    }
    if (!recovery_min.empty()) {
      TablePrinter table({"recovery (degradation end → delivery)", "min"},
                         3);
      table.add_row({std::string("episodes"),
                     static_cast<long long>(recovery_min.size())});
      table.add_row({std::string("p50"), percentile(recovery_min, 50.0)});
      table.add_row({std::string("p99"), percentile(recovery_min, 99.0)});
      table.add_row({std::string("max"), recovery_min.back()});
      table.print(std::cout);
    }
    if (!summary->termination.empty()) {
      // Rows are deterministic: std::map keys iterate in sorted order.
      TablePrinter table({"termination cause", "episodes", "drops"}, 0);
      for (const auto& [cause, by_chain] : summary->termination) {
        long long total = 0;
        for (const auto& [chain, count] : by_chain) total += count;
        const auto drops_it = summary->drops_by_cause.find(cause);
        table.add_row({cause, total,
                       static_cast<long long>(
                           drops_it == summary->drops_by_cause.end()
                               ? 0
                               : drops_it->second)});
      }
      table.print(std::cout);
      if (summary->drops_unattributed > 0) {
        std::cout << "drops unattributed: " << summary->drops_unattributed
                  << " (trace written without per-episode attribution)\n";
      }
    }
  }

  // --- Spans: top-k by accumulated inclusive wall time. ---
  std::vector<SpanEntry> spans;
  if (!spans_path.empty()) {
    const auto text = slurp(spans_path);
    if (!text) {
      std::cerr << "error: cannot open spans file: " << spans_path << '\n';
      return 1;
    }
    spans = parse_spans(*text);
    std::sort(spans.begin(), spans.end(),
              [](const SpanEntry& a, const SpanEntry& b) {
                if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                if (a.arena != b.arena) return a.arena < b.arena;
                return a.name < b.name;
              });
    if (spans.size() > static_cast<std::size_t>(top_k)) {
      spans.resize(static_cast<std::size_t>(top_k));
    }
    if (!spans.empty()) {
      TablePrinter table({"span", "arena", "wall ms", "count", "items"}, 3);
      for (const SpanEntry& s : spans) {
        table.add_row({s.name, s.arena, s.dur_us / 1000.0,
                       static_cast<long long>(s.count),
                       static_cast<long long>(s.items)});
      }
      std::cout << "top " << spans.size() << " spans by inclusive time:\n";
      table.print(std::cout);
    }
  }

  // --- Metrics: DES ready-queue telemetry. ---
  std::optional<MiniJson> metrics;
  if (!metrics_path.empty()) {
    const auto text = slurp(metrics_path);
    if (!text) {
      std::cerr << "error: cannot open metrics file: " << metrics_path
                << '\n';
      return 1;
    }
    metrics = MiniJson::parse(*text);
    if (!metrics || !metrics->is_object()) {
      std::cerr << "error: cannot parse metrics: " << metrics_path << '\n';
      return 1;
    }
    const MiniJson* counters = metrics->find("counters");
    const auto counter = [&](std::string_view key) -> long long {
      const MiniJson* v =
          counters != nullptr ? counters->find(key) : nullptr;
      return v != nullptr ? static_cast<long long>(v->number) : 0;
    };
    if (counters != nullptr &&
        counters->find("sim.queue.runs_created") != nullptr) {
      TablePrinter table({"ready-queue metric", "value"}, 0);
      table.add_row({std::string("runs created"),
                     counter("sim.queue.runs_created")});
      table.add_row({std::string("run merges"),
                     counter("sim.queue.run_merges")});
      table.add_row({std::string("tombstones purged"),
                     counter("sim.queue.tombstones_purged")});
      table.add_row({std::string("sim events"), counter("sim.events")});
      table.print(std::cout);
    }
    // Batch-engine section (ISSUE 9): armed/escaped lane split and the
    // per-batch armed-lane occupancy histogram, when the run exported
    // sim.batch.* counters (simulate's analytic path with batch metrics).
    if (counters != nullptr &&
        counters->find("sim.batch.batches") != nullptr) {
      const long long episodes = counter("sim.batch.episodes");
      const long long armed = counter("sim.batch.des_lanes");
      const long long escaped = counter("sim.batch.escaped");
      TablePrinter table({"batch engine", "value"}, 0);
      table.add_row({std::string("batches"), counter("sim.batch.batches")});
      table.add_row({std::string("episodes"), episodes});
      table.add_row({std::string("armed lanes"), armed});
      table.add_row({std::string("escaped (closed form)"), escaped});
      table.print(std::cout);
      TablePrinter hist({"armed lanes per batch", "batches"}, 0);
      for (int occ = 0;; ++occ) {
        const std::string key =
            "sim.batch.occupancy." + std::to_string(occ);
        if (counters->find(key) == nullptr) break;
        hist.add_row({std::to_string(occ), counter(key)});
      }
      hist.print(std::cout);
    }
  }

  // --- Optional consolidated JSON document. ---
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os.good()) {
      std::cerr << "error: cannot open report output: " << json_path << '\n';
      return 1;
    }
    os << "{\"schema\":\"oaq-report-v1\",\"manifest\":";
    if (manifest) {
      // Re-emit the manifest fields the report keys on (identity +
      // digest); the full original stays in its own file.
      const auto str_field = [&](std::string_view key) {
        const MiniJson* v = manifest->find(key);
        write_json_string(os, v != nullptr ? v->text : "");
      };
      os << "{\"tool\":";
      str_field("tool");
      os << ",\"seed\":";
      const MiniJson* seed = manifest->find("seed");
      write_json_double(os, seed != nullptr ? seed->number : 0.0);
      os << ",\"jobs\":";
      const MiniJson* jobs = manifest->find("jobs");
      write_json_double(os, jobs != nullptr ? jobs->number : 0.0);
      os << ",\"config_digest\":";
      str_field("config_digest");
      os << "}";
    } else {
      os << "null";
    }
    os << ",\"latency_min\":{\"episodes\":" << latencies_min.size();
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"p50", 50.0},
          {"p90", 90.0},
          {"p99", 99.0}}) {
      os << ",\"" << label << "\":";
      write_json_double(os, percentile(latencies_min, p));
    }
    os << ",\"max\":";
    write_json_double(os,
                      latencies_min.empty() ? 0.0 : latencies_min.back());
    os << "},\"recovery_min\":{\"episodes\":" << recovery_min.size();
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"p50", 50.0}, {"p99", 99.0}}) {
      os << ",\"" << label << "\":";
      write_json_double(os, percentile(recovery_min, p));
    }
    os << ",\"max\":";
    write_json_double(os, recovery_min.empty() ? 0.0 : recovery_min.back());
    os << "},\"causes\":[";
    bool first = true;
    if (summary) {
      for (const auto& [cause, by_chain] : summary->termination) {
        long long total = 0;
        for (const auto& [chain, count] : by_chain) total += count;
        const auto drops_it = summary->drops_by_cause.find(cause);
        os << (first ? "" : ",") << "{\"cause\":";
        write_json_string(os, cause);
        os << ",\"episodes\":" << total << ",\"drops\":"
           << (drops_it == summary->drops_by_cause.end() ? 0
                                                         : drops_it->second)
           << "}";
        first = false;
      }
    }
    os << "],\"top_spans\":[";
    first = true;
    for (const SpanEntry& s : spans) {
      os << (first ? "" : ",") << "{\"name\":";
      write_json_string(os, s.name);
      os << ",\"arena\":";
      write_json_string(os, s.arena);
      os << ",\"wall_us\":";
      write_json_double(os, s.dur_us);
      os << ",\"count\":" << s.count << ",\"items\":" << s.items << "}";
      first = false;
    }
    os << "],\"queue\":";
    const MiniJson* counters =
        metrics && metrics->is_object() ? metrics->find("counters") : nullptr;
    if (counters != nullptr &&
        counters->find("sim.queue.runs_created") != nullptr) {
      os << "{";
      bool first_counter = true;
      for (const auto& [key, value] : counters->object) {
        if (key.rfind("sim.queue.", 0) != 0 && key != "sim.events") continue;
        os << (first_counter ? "" : ",");
        write_json_string(os, key);
        os << ":";
        write_json_double(os, value.number);
        first_counter = false;
      }
      os << "}";
    } else {
      os << "null";
    }
    os << ",\"batch\":";
    if (counters != nullptr &&
        counters->find("sim.batch.batches") != nullptr) {
      os << "{";
      bool first_counter = true;
      for (const auto& [key, value] : counters->object) {
        if (key.rfind("sim.batch.", 0) != 0) continue;
        os << (first_counter ? "" : ",");
        write_json_string(os, key);
        os << ":";
        write_json_double(os, value.number);
        first_counter = false;
      }
      os << "}";
    } else {
      os << "null";
    }
    os << "}\n";
    std::cout << "report: -> " << json_path << "\n";
  }
  return 0;
}

int cmd_coverage(const Args& args) {
  const auto con = load_constellation(args);
  const Constellation c =
      con ? con->constellation : Constellation::reference();
  const CoverageAnalyzer analyzer(c);
  const int bands = args.integer("bands", 18);
  TablePrinter table({"lat_deg", "covered", "overlap(>=2)"}, 3);
  for (const auto& b : analyzer.by_latitude_time_averaged(4, bands, 96)) {
    table.add_row({b.lat_deg, b.covered_fraction, b.overlap_fraction});
  }
  std::cout << (con ? con->origin : std::string("reference"))
            << " constellation coverage by latitude:\n";
  table.print(std::cout);
  return 0;
}

/// `oaqctl constellation [--constellation <preset|file>] [--out FILE]`:
/// summarize a constellation's shell layout and emit the canonical
/// on-disk form (which re-parses bit-exactly — verified on every run).
int cmd_constellation(const Args& args) {
  auto con = load_constellation(args);
  if (!con) {
    con = ConstellationChoice{constellation_preset("reference"),
                              ConstellationBuilder::preset("reference")
                                  .build(),
                              "preset:reference"};
  }
  const Constellation& c = con->constellation;
  TablePrinter table({"shell", "walker", "alt km", "incl deg", "layout",
                      "spares", "period min", "footprint deg"},
                     1);
  for (std::size_t s = 0; s < con->shells.size(); ++s) {
    const WalkerShell& sh = con->shells[s];
    const ConstellationDesign& d =
        c.shell_design(static_cast<int>(s));
    std::ostringstream walker;
    walker << sh.total_sats << "/" << sh.planes << "/" << sh.phasing;
    table.add_row({static_cast<long long>(s), walker.str(), sh.altitude_km,
                   sh.inclination_deg,
                   std::string(sh.star ? "star" : "delta"),
                   static_cast<long long>(sh.spares_per_plane),
                   d.period.to_minutes(), sh.footprint_deg});
  }
  std::cout << con->origin << ": " << c.num_shells() << " shell(s), "
            << c.num_planes() << " planes, " << c.total_active()
            << " active satellites\n";
  table.print(std::cout);

  // Canonical serialization; prove the round-trip before anyone ships the
  // file to another tool.
  std::ostringstream canonical;
  write_constellation(con->shells, canonical);
  {
    std::istringstream back(canonical.str());
    OAQ_REQUIRE(parse_constellation(back) == con->shells,
                "canonical form failed to round-trip");
  }
  const std::string out_path = args.str("out");
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    OAQ_REQUIRE(os.good(), "cannot open --out file");
    os << canonical.str();
    std::cout << "wrote " << out_path << "\n";
  } else {
    std::cout << "canonical form (round-trips through --constellation):\n"
              << canonical.str();
  }
  return 0;
}

int help() {
  std::cout <<
      "oaqctl — OAQ constellation toolkit\n"
      "  qos      --k K --tau MIN --mu R --nu R        conditional QoS pmf\n"
      "  capacity --lambda R --eta K --cycles N        plane capacity P(k)\n"
      "  measure  --lambda R --eta K --tau MIN --mu R  Eq. (3) P(Y>=y)\n"
      "  plan     --k K --tau MIN --at MIN             opportunity plan\n"
      "  simulate --k K --episodes N [--baq] [--jobs J]  protocol Monte-Carlo\n"
      "  campaign --k K --per-hour R --hours H\n"
      "           [--replications R] [--jobs J]         multi-target load run\n"
      "  coverage [--bands N]                          coverage by latitude\n"
      "  constellation [--constellation C] [--out F]   shell layout +\n"
      "           canonical round-trip file of a preset or shell file\n"
      "  trace-summary FILE.jsonl [--metrics FILE.json]\n"
      "           termination-cause x chain table; with --metrics also the\n"
      "           DES ready-queue telemetry (runs, merges, purge ratio)\n"
      "  report   [--trace T] [--metrics M] [--spans S] [--manifest F]\n"
      "           [--top N] [--json OUT]   one consolidated run report:\n"
      "           manifest identity, latency percentiles, cause x drops,\n"
      "           top spans, queue telemetry, batch-engine occupancy\n"
      "           (oaq-report-v1 JSON via --json)\n"
      "Monte-Carlo commands run on all cores by default; --jobs N (or the\n"
      "OAQ_JOBS env var) overrides, --jobs 1 is the serial path. Results\n"
      "are bit-identical for any jobs value. --no-batch-episodes runs the\n"
      "scalar per-episode oracle instead of the (byte-identical) batched\n"
      "SoA engine on the analytic path. simulate --interleave-width W\n"
      "multiplexes W armed lanes per batch over one episode-tagged event\n"
      "timeline (0 = block width, 1 = sequential drain; output bytes are\n"
      "identical at every width, so the flag is purely operational).\n"
      "Geometric mode (simulate, campaign, coverage): --constellation C\n"
      "runs against real orbital geometry, where C is a preset (reference,\n"
      "kepler, iridium-next, oneweb, starlink) or a Walker shell file (see\n"
      "tools/README.md); --lat D --lon D place the target (degrees),\n"
      "--earth-rotation enables Earth rotation, --no-pooled-episodes runs\n"
      "simulate's scalar per-episode oracle instead of the (byte-identical)\n"
      "pooled per-shard DES arena. Shell-relative fault clauses require\n"
      "--constellation and are resolved against its shell layout.\n"
      "Observability (simulate & campaign): --trace FILE writes protocol\n"
      "events as JSONL (bit-identical for any --jobs), --metrics FILE\n"
      "writes the run metrics registry as JSON, --spans FILE writes the\n"
      "hierarchical span profile as Chrome/Perfetto trace JSON, --profile\n"
      "prints a BENCH_JSON line with per-shard wall times. Any file sink\n"
      "also emits a run manifest (<file>.manifest.json, or --manifest F).\n"
      "campaign --ledger FILE writes the per-target attribution ledger.\n"
      "Fault injection (simulate & campaign): --fault-plan FILE replays a\n"
      "scripted degradation plan (see tools/README.md for the clause\n"
      "syntax), --loss P --reliable --retries N --backoff B set the link\n"
      "model, --self-heal enables the per-link health estimator and\n"
      "hysteretic chain re-routing (--health-alpha A tunes the EWMA),\n"
      "--ge-loss PA,PB,P,R,LOSS appends a Gilbert-Elliott loss clause and\n"
      "--outage-train PA,PB,UP,DOWN an alternating-outage clause to the\n"
      "plan, --check-invariants audits every episode (I1-I12). simulate\n"
      "--chaos-sweep tabulates QoS damage under built-in fault scenarios\n"
      "(cell i of the sweep is seeded from Rng(seed).fork(6).fork(i), the\n"
      "reserved fault stream, so cells never share draws). report with a\n"
      "--trace from a faulted run also prints post-outage recovery\n"
      "percentiles (last degradation end -> first delivery).\n"
      "Exit status is 1 when invariant checking finds a violation.\n";
  return 0;
}

}  // namespace
}  // namespace oaq

int main(int argc, char** argv) {
  using namespace oaq;
  if (argc < 2) return help();
  const std::string cmd = argv[1];
  try {
    if (cmd == "trace-summary") {
      if (argc < 3) {
        std::cerr << "usage: oaqctl trace-summary FILE.jsonl"
                     " [--metrics FILE.json]\n";
        return 1;
      }
      const Args args(argc, argv, 3);
      return cmd_trace_summary(argv[2], args.str("metrics"));
    }
    const Args args(argc, argv, 2);
    if (cmd == "qos") return cmd_qos(args);
    if (cmd == "capacity") return cmd_capacity(args);
    if (cmd == "measure") return cmd_measure(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "coverage") return cmd_coverage(args);
    if (cmd == "constellation") return cmd_constellation(args);
    if (cmd == "report") return cmd_report(args);
    return help();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
