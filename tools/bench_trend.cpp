// bench_trend — compares two committed oaq-bench-v1 snapshots and fails
// on throughput regressions.
//
//   bench_trend [--max-regression PCT] OLD.json NEW.json
//
// Benchmarks are matched by their "bench" key; every numeric metric the
// two snapshots share is compared and printed with its relative delta.
// Gated metrics:
//
//   * throughput-like values (anything under "throughput", plus
//     "speedup" / "*_per_sec" keys elsewhere): NEW may not fall more
//     than PCT percent below OLD (default 10);
//   * "steady_state_allocs": NEW may not exceed OLD at all — a single
//     new steady-state allocation is a regression regardless of PCT;
//   * "overhead_pct": NEW may not exceed OLD by more than PCT percent
//     of OLD (absolute slack of 1 point when OLD is ~0).
//
// Everything else (occupancy ratios, episode counts) is informational.
// Exit status: 0 = within gates, 1 = regression, 2 = usage/parse error.
// CI runs this between the last committed BENCH_*.json and the current
// build's snapshot, so a perf regression fails the pipeline with a
// per-metric explanation instead of a silent drift.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/jsonfmt.hpp"

namespace oaq {
namespace {

/// Flattened numeric metrics of one benchmark entry: "throughput.speedup",
/// "steady_state_allocs", ... (object-key order preserved by MiniJson, but
/// we store into a map so OLD/NEW iterate identically).
using MetricMap = std::map<std::string, double>;

void flatten(const MiniJson& node, const std::string& prefix, MetricMap& out) {
  if (node.is_number()) {
    out[prefix] = node.number;
    return;
  }
  if (!node.is_object()) return;
  for (const auto& [key, value] : node.object) {
    if (key == "bench") continue;
    flatten(value, prefix.empty() ? key : prefix + "." + key, out);
  }
}

/// bench name → flattened metrics, from one oaq-bench-v1 document.
std::optional<std::map<std::string, MetricMap>> load(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_trend: cannot open " << path << '\n';
    return std::nullopt;
  }
  const std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  const auto doc = MiniJson::parse(text);
  if (!doc || !doc->is_object()) {
    std::cerr << "bench_trend: cannot parse " << path << '\n';
    return std::nullopt;
  }
  if (const MiniJson* schema = doc->find("schema");
      schema == nullptr || schema->text != "oaq-bench-v1") {
    std::cerr << "bench_trend: " << path << " is not oaq-bench-v1\n";
    return std::nullopt;
  }
  const MiniJson* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    std::cerr << "bench_trend: " << path << " has no benchmarks array\n";
    return std::nullopt;
  }
  std::map<std::string, MetricMap> out;
  for (const MiniJson& entry : benchmarks->array) {
    const MiniJson* name = entry.find("bench");
    if (name == nullptr || !name->is_string()) continue;
    flatten(entry, "", out[name->text]);
  }
  return out;
}

/// Throughput-like: bigger is better, gated on relative decrease.
bool is_throughput(const std::string& key) {
  return key.rfind("throughput.", 0) == 0 || key == "speedup" ||
         (key.size() > 8 &&
          key.compare(key.size() - 8, 8, "_per_sec") == 0);
}

int run(int argc, char** argv) {
  double max_regression_pct = 10.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regression" && i + 1 < argc) {
      max_regression_pct = std::strtod(argv[++i], nullptr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() < 2 || !(max_regression_pct > 0.0)) {
    std::cerr << "usage: bench_trend [--max-regression PCT] OLD.json"
                 " NEW.json [NEWER.json ...]\n";
    return 2;
  }

  // Three or more files form a chain: each consecutive pair is compared
  // with the same gates, so one invocation audits a whole bench lineage
  // (BENCH_8 -> BENCH_9 -> BENCH_10).
  int regressions = 0;
  for (std::size_t step = 0; step + 1 < paths.size(); ++step) {
    const auto old_doc = load(paths[step]);
    const auto new_doc = load(paths[step + 1]);
    if (!old_doc || !new_doc) return 2;

    TablePrinter table({"bench", "metric", "old", "new", "delta %", "gate"},
                       3);
    for (const auto& [bench, new_metrics] : *new_doc) {
      const auto old_it = old_doc->find(bench);
      if (old_it == old_doc->end()) {
        table.add_row({bench, std::string("(new benchmark)"),
                       std::string("-"), std::string("-"), std::string("-"),
                       std::string("info")});
        continue;
      }
      for (const auto& [key, new_value] : new_metrics) {
        const auto old_metric = old_it->second.find(key);
        if (old_metric == old_it->second.end()) continue;
        const double old_value = old_metric->second;
        const double delta_pct =
            old_value != 0.0
                ? (new_value - old_value) / std::fabs(old_value) * 100.0
                : (new_value == 0.0 ? 0.0 : 100.0);
        std::string gate = "info";
        if (is_throughput(key)) {
          gate = delta_pct < -max_regression_pct ? "FAIL" : "ok";
        } else if (key == "steady_state_allocs") {
          gate = new_value > old_value ? "FAIL" : "ok";
        } else if (key == "overhead_pct") {
          // Percent-point metric: allow PCT% relative growth with one
          // absolute point of slack so a 0.1 -> 0.4 jitter can't fail.
          gate = new_value > old_value + 1.0 &&
                         new_value >
                             old_value * (1.0 + max_regression_pct / 100.0)
                     ? "FAIL"
                     : "ok";
        }
        if (gate == "FAIL") ++regressions;
        table.add_row({bench, key, old_value, new_value, delta_pct, gate});
      }
    }
    table.set_caption("bench trend: " + paths[step] + " -> " +
                      paths[step + 1] + " (max regression " +
                      std::to_string(max_regression_pct) + "%)");
    table.print(std::cout);
  }
  if (regressions > 0) {
    std::cout << "bench_trend: " << regressions
              << " gated metric(s) regressed\n";
    return 1;
  }
  std::cout << "bench_trend: all gated metrics within "
            << max_regression_pct << "%\n";
  return 0;
}

}  // namespace
}  // namespace oaq

int main(int argc, char** argv) { return oaq::run(argc, argv); }
