#!/usr/bin/env bash
# Runs the ISSUE 3 performance benches and aggregates their BENCH_JSON
# lines into BENCH_3.json at the repo root.
#
#   tools/run_bench.sh [build-dir]
#
# Configures a Release build (default build-bench/), builds des_kernel and
# parallel_scaling, runs both, and joins every line of the form
#   BENCH_JSON {...}
# into a single JSON document (see tools/README.md for the schema). The
# des_kernel binary itself enforces the acceptance gates (>= 2x
# schedule/cancel speedup over the legacy kernel, zero steady-state
# allocations per event), so a failing gate fails this script.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-bench"}"
out="${repo_root}/BENCH_3.json"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j --target des_kernel parallel_scaling >/dev/null

log="$(mktemp)"
trap 'rm -f "${log}"' EXIT

echo "== des_kernel ==" >&2
"${build_dir}/bench/des_kernel" | tee -a "${log}" >&2
echo "== parallel_scaling ==" >&2
"${build_dir}/bench/parallel_scaling" | tee -a "${log}" >&2

# Join the BENCH_JSON payloads into {"benchmarks": [...]}.
grep '^BENCH_JSON ' "${log}" | sed 's/^BENCH_JSON //' |
  awk 'BEGIN { printf "{\"schema\":\"oaq-bench-v1\",\"benchmarks\":[" }
       { printf "%s%s", (NR > 1 ? "," : ""), $0 }
       END { printf "]}\n" }' > "${out}"

echo "wrote ${out}" >&2
