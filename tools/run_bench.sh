#!/usr/bin/env bash
# Runs the performance benches and aggregates their BENCH_JSON lines into
# BENCH_3.json (DES kernel + parallel scaling, ISSUE 3), BENCH_4.json
# (batched Kepler geometry + shared visibility cache, ISSUE 4), BENCH_5.json
# (fault-injection engine, ISSUE 5), BENCH_6.json (SoA episode batching,
# ISSUE 6), BENCH_7.json (episode batching + span-profiler overhead,
# ISSUE 7), BENCH_8.json (BENCH_7's pair + the mega-constellation
# scale-out, ISSUE 8), BENCH_9.json (the same trio, with
# episode_batch now also emitting its episode_interleave payload,
# ISSUE 9), and BENCH_10.json (BENCH_9's trio plus the chaos_soak
# stochastic-fault / self-healing-link harness, ISSUE 10) at the repo
# root.
#
#   tools/run_bench.sh [build-dir]
#
# Configures a Release build (default build-bench/), builds and runs the
# bench binaries, and joins their lines of the form
#   BENCH_JSON {...}
# into single JSON documents (see tools/README.md for the schemas). The
# des_kernel, geometry_batch, fault_storm, episode_batch, span_overhead,
# and constellation_scale binaries enforce their acceptance gates
# (>= 1.5-2x speedups, <= 5% overheads, zero steady-state allocations),
# so a failing gate fails this script (chaos_soak gates its clean-path
# overhead, expansion allocations, and invariant count likewise).
# Afterwards bench_trend compares BENCH_8 -> BENCH_9 -> BENCH_10 and
# fails on a gated throughput regression.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-bench"}"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j \
  --target des_kernel parallel_scaling geometry_batch fault_storm \
  episode_batch span_overhead constellation_scale chaos_soak \
  bench_trend >/dev/null

log3="$(mktemp)"
log4="$(mktemp)"
log5="$(mktemp)"
log6="$(mktemp)"
log7="$(mktemp)"
log8="$(mktemp)"
log9="$(mktemp)"
log10="$(mktemp)"
trap 'rm -f "${log3}" "${log4}" "${log5}" "${log6}" "${log7}" "${log8}" \
  "${log9}" "${log10}"' EXIT

# Join a log's BENCH_JSON payloads into {"benchmarks": [...]}.
aggregate() {
  grep '^BENCH_JSON ' "$1" | sed 's/^BENCH_JSON //' |
    awk 'BEGIN { printf "{\"schema\":\"oaq-bench-v1\",\"benchmarks\":[" }
         { printf "%s%s", (NR > 1 ? "," : ""), $0 }
         END { printf "]}\n" }' > "$2"
  echo "wrote $2" >&2
}

echo "== des_kernel ==" >&2
"${build_dir}/bench/des_kernel" | tee -a "${log3}" >&2
echo "== parallel_scaling ==" >&2
"${build_dir}/bench/parallel_scaling" | tee -a "${log3}" >&2
aggregate "${log3}" "${repo_root}/BENCH_3.json"

echo "== geometry_batch ==" >&2
"${build_dir}/bench/geometry_batch" | tee -a "${log4}" >&2
aggregate "${log4}" "${repo_root}/BENCH_4.json"

echo "== fault_storm ==" >&2
"${build_dir}/bench/fault_storm" | tee -a "${log5}" >&2
aggregate "${log5}" "${repo_root}/BENCH_5.json"

echo "== episode_batch ==" >&2
"${build_dir}/bench/episode_batch" | tee -a "${log6}" >&2
aggregate "${log6}" "${repo_root}/BENCH_6.json"

echo "== episode_batch + span_overhead ==" >&2
"${build_dir}/bench/episode_batch" | tee -a "${log7}" >&2
"${build_dir}/bench/span_overhead" | tee -a "${log7}" >&2
aggregate "${log7}" "${repo_root}/BENCH_7.json"

echo "== episode_batch + span_overhead + constellation_scale ==" >&2
"${build_dir}/bench/episode_batch" | tee -a "${log8}" >&2
"${build_dir}/bench/span_overhead" | tee -a "${log8}" >&2
"${build_dir}/bench/constellation_scale" | tee -a "${log8}" >&2
aggregate "${log8}" "${repo_root}/BENCH_8.json"

echo "== episode_batch (interleave) + span_overhead + constellation_scale ==" >&2
"${build_dir}/bench/episode_batch" | tee -a "${log9}" >&2
"${build_dir}/bench/span_overhead" | tee -a "${log9}" >&2
"${build_dir}/bench/constellation_scale" | tee -a "${log9}" >&2
aggregate "${log9}" "${repo_root}/BENCH_9.json"

echo "== episode_batch + span_overhead + constellation_scale + chaos_soak ==" >&2
"${build_dir}/bench/episode_batch" | tee -a "${log10}" >&2
"${build_dir}/bench/span_overhead" | tee -a "${log10}" >&2
"${build_dir}/bench/constellation_scale" | tee -a "${log10}" >&2
"${build_dir}/bench/chaos_soak" | tee -a "${log10}" >&2
aggregate "${log10}" "${repo_root}/BENCH_10.json"

echo "== bench_trend BENCH_8 -> BENCH_9 -> BENCH_10 ==" >&2
"${build_dir}/tools/bench_trend" --max-regression 10 \
  "${repo_root}/BENCH_8.json" "${repo_root}/BENCH_9.json" \
  "${repo_root}/BENCH_10.json" >&2
