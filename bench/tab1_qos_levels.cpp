// E4 — Table 1 + §4.3 constituent measure: the QoS spectrum and the
// conditional distribution P(Y = y | k) for OAQ and BAQ, including the
// paper's headline 0.44 (OAQ) vs 0.20 (BAQ) at k = 12.
#include <iostream>

#include "analytic/qos_model.hpp"
#include "common/table.hpp"
#include "oaq/qos.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Table 1: QoS levels vs geometric properties ===\n\n";
  TablePrinter spectrum({"I[k]", "Y=3 simultaneous", "Y=2 sequential",
                         "Y=1 single", "Y=0 missed"},
                        0);
  auto mark = [](bool yes) { return std::string(yes ? "X" : "-"); };
  for (const bool overlap : {true, false}) {
    const auto levels = achievable_levels(overlap);
    auto has = [&](QosLevel l) {
      for (auto v : levels) {
        if (v == l) return true;
      }
      return false;
    };
    spectrum.add_row({static_cast<long long>(overlap ? 1 : 0),
                      mark(has(QosLevel::kSimultaneousDual)),
                      mark(has(QosLevel::kSequentialDual)),
                      mark(has(QosLevel::kSingle)),
                      mark(has(QosLevel::kMissed))});
  }
  spectrum.print(std::cout);

  QosModelParams params;  // τ = 5, µ = 0.5, ν = 30 (paper §4.3)
  const QosModel model(PlaneGeometry{}, params);

  std::cout << "\nP(Y = y | k), tau = 5, mu = 0.5, nu = 30:\n";
  TablePrinter table({"k", "scheme", "P(Y=0|k)", "P(Y=1|k)", "P(Y=2|k)",
                      "P(Y=3|k)"},
                     4);
  for (int k = 14; k >= 9; --k) {
    for (const Scheme s : {Scheme::kOaq, Scheme::kBaq}) {
      const auto pmf = model.conditional_pmf(k, s);
      table.add_row({static_cast<long long>(k),
                     std::string(s == Scheme::kOaq ? "OAQ" : "BAQ"), pmf[0],
                     pmf[1], pmf[2], pmf[3]});
    }
  }
  table.print(std::cout);

  std::cout << "\nHeadline (paper section 4.3): P(Y=3|12) OAQ = "
            << model.conditional(12, 3, Scheme::kOaq)
            << " (paper 0.44), BAQ = "
            << model.conditional(12, 3, Scheme::kBaq) << " (paper 0.20)\n";
  return 0;
}
