// SoA episode-batching harness (ISSUE 6 tentpole): scalar vs batched
// episodes/sec through simulate_qos, the batch engine's steady-state
// allocation count (hence alloc_counter), and the lane-occupancy histogram
// of the SoA prologue. Prints a human table plus a BENCH_JSON line
// (aggregated into BENCH_6.json by tools/run_bench.sh).
//
//   episode_batch [episodes]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "alloc_counter.hpp"
#include "common/distribution.hpp"
#include "common/table.hpp"
#include "oaq/batch_episode.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The golden-trace simulation shape: single plane, k = 9, OAQ, bounded
/// computations — the protocol path the batch engine vectorizes.
QosSimulationConfig base_config(int episodes) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.jobs = 1;  // single-thread A/B: per-core throughput, no pool noise
  return cfg;
}

/// Episodes/sec of one simulate_qos run with the batch engine on or off.
double episodes_per_sec(const QosSimulationConfig& base, bool batched) {
  QosSimulationConfig cfg = base;
  cfg.batch_episodes = batched;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(cfg.episodes) / elapsed;
}

struct SteadyState {
  std::uint64_t allocs = 0;
  std::uint64_t episodes = 0;
  BatchEpisodeStats stats;
};

/// Drive one BatchEpisodeEngine directly: a warm-up block grows every
/// reusable buffer (slab, envelope pool, pass/agent/participant storage),
/// then the allocation delta over the following episodes must be zero.
SteadyState steady_state_allocs(const QosSimulationConfig& cfg,
                                std::int64_t warm, std::int64_t total) {
  const ExponentialDuration duration_law(cfg.mu);
  const Rng episode_rng = Rng(cfg.seed).fork(3);
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  BatchEpisodeEngine engine(cfg.geometry, cfg.k, cfg.protocol,
                            cfg.opportunity_adaptive, duration_law,
                            episode_rng, signal_start, /*plan=*/nullptr);
  std::uint64_t level_sink = 0;
  const BatchEpisodeEngine::ResultSink sink =
      [&level_sink](std::int64_t, const EpisodeResult& r) {
        level_sink += static_cast<std::uint64_t>(to_int(r.level));
      };
  engine.run(0, warm, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  const std::uint64_t allocs_before = benchutil::allocation_count();
  engine.run(warm, total, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  if (level_sink == ~0ull) std::abort();  // defeat over-eager optimizers
  SteadyState out;
  out.allocs = benchutil::allocation_count() - allocs_before;
  out.episodes = static_cast<std::uint64_t>(total - warm);
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 12000;

  std::cout << "=== SoA episode batching (" << episodes << " episodes) ===\n\n";

  const QosSimulationConfig cfg = base_config(episodes);

  // Untimed warm-up (page faults, allocator growth, frequency ramp), then
  // interleaved repetitions so drift hits both variants.
  (void)episodes_per_sec(cfg, /*batched=*/false);
  double scalar_eps = 0.0, batched_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    scalar_eps = std::max(scalar_eps, episodes_per_sec(cfg, false));
    batched_eps = std::max(batched_eps, episodes_per_sec(cfg, true));
  }
  const double speedup = batched_eps / scalar_eps;

  const SteadyState steady = steady_state_allocs(cfg, 512, 4096);

  TablePrinter table({"path", "episodes/s", "speedup"}, 2);
  table.add_row({std::string("scalar (per-episode ctor)"), scalar_eps, 1.0});
  table.add_row({std::string("batched (SoA + reuse)"), batched_eps, speedup});
  table.print(std::cout);

  const BatchEpisodeStats& bs = steady.stats;
  std::cout << "\nsteady state: " << steady.allocs << " allocs over "
            << steady.episodes << " episodes\n"
            << "lanes: " << bs.des_lanes << " DES / " << bs.escaped
            << " escaped of " << bs.episodes << "\n"
            << "occupancy (armed lanes per " << kEpisodeBatchWidth
            << "-wide block):";
  for (std::size_t i = 0; i < bs.occupancy.size(); ++i) {
    std::cout << " " << i << ":" << bs.occupancy[i];
  }
  std::cout << "\n";

  std::ostringstream json;
  json << "{\"bench\":\"episode_batch\",\"episodes\":" << episodes
       << ",\"throughput\":{\"scalar_episodes_per_sec\":" << scalar_eps
       << ",\"batched_episodes_per_sec\":" << batched_eps
       << ",\"speedup\":" << speedup
       << "},\"steady_state_allocs\":" << steady.allocs
       << ",\"occupancy\":{\"des_lanes\":" << bs.des_lanes
       << ",\"escaped\":" << bs.escaped << ",\"histogram\":[";
  for (std::size_t i = 0; i < bs.occupancy.size(); ++i) {
    json << (i == 0 ? "" : ",") << bs.occupancy[i];
  }
  json << "]}}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Acceptance gates (ISSUE 6): the batched path sustains >= 2x the
  // scalar episodes/sec and allocates nothing in steady state.
  const bool ok = speedup >= 2.0 && steady.allocs == 0;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
