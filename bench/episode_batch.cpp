// SoA episode-batching harness (ISSUE 6 tentpole): scalar vs batched
// episodes/sec through simulate_qos, the batch engine's steady-state
// allocation count (hence alloc_counter), and the lane-occupancy histogram
// of the SoA prologue. Prints a human table plus a BENCH_JSON line
// (aggregated into BENCH_6.json by tools/run_bench.sh).
//
// The interleave variant (ISSUE 9) measures the same armed-heavy workload
// through the episode-tagged merged timeline: a width sweep (1 = the PR 6
// sequential drain, up to the full block width), an occupancy sweep over
// the signal-duration law, and the steady-state allocation count at full
// width. Its headline gate is the interleaved engine against the
// sequential per-episode drain; width parity (merged timeline vs the
// width-1 drain) is reported and gated as a cost-neutrality floor — the
// per-lane protocol work is width-invariant by the determinism contract
// (DESIGN.md §15), so interleaving buys structure, not protocol time.
//
//   episode_batch [episodes]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <sstream>

#include "alloc_counter.hpp"
#include "common/distribution.hpp"
#include "common/table.hpp"
#include "oaq/batch_episode.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The golden-trace simulation shape: single plane, k = 9, OAQ, bounded
/// computations — the protocol path the batch engine vectorizes.
QosSimulationConfig base_config(int episodes) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.jobs = 1;  // single-thread A/B: per-core throughput, no pool noise
  return cfg;
}

/// Episodes/sec of one simulate_qos run with the batch engine on or off.
/// The batched measurement pins interleave width 1 — the PR 6 sequential
/// drain — so the SoA-batching speedup stays apples-to-apples with the
/// committed BENCH_6..8 trajectories; the interleave variant below
/// measures the merged timeline separately.
double episodes_per_sec(const QosSimulationConfig& base, bool batched) {
  QosSimulationConfig cfg = base;
  cfg.batch_episodes = batched;
  cfg.interleave_width = 1;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(cfg.episodes) / elapsed;
}

/// Episodes/sec of the batched path at an explicit interleave width.
double interleaved_eps(const QosSimulationConfig& base, int width) {
  QosSimulationConfig cfg = base;
  cfg.batch_episodes = true;
  cfg.interleave_width = width;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(cfg.episodes) / elapsed;
}

struct SteadyState {
  std::uint64_t allocs = 0;
  std::uint64_t episodes = 0;
  BatchEpisodeStats stats;
};

/// Drive one BatchEpisodeEngine directly at the given interleave width: a
/// warm-up block grows every reusable buffer (slab, envelope pool,
/// pass/agent/participant storage, the merged run), then the allocation
/// delta over the following episodes must be zero.
SteadyState steady_state_allocs(const QosSimulationConfig& cfg,
                                std::int64_t warm, std::int64_t total,
                                int width) {
  const ExponentialDuration duration_law(cfg.mu);
  const Rng episode_rng = Rng(cfg.seed).fork(3);
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  BatchEpisodeEngine engine(cfg.geometry, cfg.k, cfg.protocol,
                            cfg.opportunity_adaptive, duration_law,
                            episode_rng, signal_start, /*plan=*/nullptr, width);
  std::uint64_t level_sink = 0;
  const BatchEpisodeEngine::ResultSink sink =
      [&level_sink](std::int64_t, const EpisodeResult& r) {
        level_sink += static_cast<std::uint64_t>(to_int(r.level));
      };
  engine.run(0, warm, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  const std::uint64_t allocs_before = benchutil::allocation_count();
  engine.run(warm, total, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  if (level_sink == ~0ull) std::abort();  // defeat over-eager optimizers
  SteadyState out;
  out.allocs = benchutil::allocation_count() - allocs_before;
  out.episodes = static_cast<std::uint64_t>(total - warm);
  out.stats = engine.stats();
  return out;
}

/// One occupancy-sweep point: scale the signal-duration law (longer
/// signals arm more lanes per block) and report the armed-lane fraction
/// with the full-width interleaved throughput at that occupancy.
struct OccupancyPoint {
  double mu_scale = 1.0;
  double armed_fraction = 0.0;
  double eps = 0.0;
};

OccupancyPoint occupancy_point(const QosSimulationConfig& cfg,
                               double mu_scale, std::int64_t total,
                               int width = 0) {
  const ExponentialDuration duration_law(cfg.mu * mu_scale);
  const Rng episode_rng = Rng(cfg.seed).fork(3);
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  BatchEpisodeEngine engine(cfg.geometry, cfg.k, cfg.protocol,
                            cfg.opportunity_adaptive, duration_law,
                            episode_rng, signal_start, /*plan=*/nullptr, width);
  std::uint64_t level_sink = 0;
  const BatchEpisodeEngine::ResultSink sink =
      [&level_sink](std::int64_t, const EpisodeResult& r) {
        level_sink += static_cast<std::uint64_t>(to_int(r.level));
      };
  const std::int64_t warm = total / 5;
  engine.run(0, warm, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  const auto t0 = Clock::now();
  engine.run(warm, total, /*trace=*/nullptr, /*invariants=*/nullptr, sink);
  const double elapsed = seconds_since(t0);
  if (level_sink == ~0ull) std::abort();
  const BatchEpisodeStats& st = engine.stats();
  OccupancyPoint out;
  out.mu_scale = mu_scale;
  out.armed_fraction = st.episodes == 0 ? 0.0
                                        : static_cast<double>(st.des_lanes) /
                                              static_cast<double>(st.episodes);
  out.eps = static_cast<double>(total - warm) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 12000;

  std::cout << "=== SoA episode batching (" << episodes << " episodes) ===\n\n";

  const QosSimulationConfig cfg = base_config(episodes);

  // Untimed warm-up (page faults, allocator growth, frequency ramp), then
  // interleaved repetitions so drift hits every variant.
  (void)episodes_per_sec(cfg, /*batched=*/false);
  double scalar_eps = 0.0, batched_eps = 0.0, interleave_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    scalar_eps = std::max(scalar_eps, episodes_per_sec(cfg, false));
    batched_eps = std::max(batched_eps, episodes_per_sec(cfg, true));
    interleave_eps = std::max(interleave_eps, interleaved_eps(cfg, 0));
  }
  const double speedup = batched_eps / scalar_eps;

  const SteadyState steady = steady_state_allocs(cfg, 512, 4096, /*width=*/1);

  // --- Interleaved merged timeline (ISSUE 9): width sweep on the same
  // armed-heavy workload (~98% of lanes arm), occupancy sweep over the
  // signal-duration law, steady-state allocations at full width. The
  // width sweep drives the engine directly (no shard machinery on either
  // side) with repetitions interleaved across widths so thermal drift on
  // a busy single core hits every width, not whichever runs last. ---
  constexpr int kWidths[] = {1, 2, 4, kEpisodeBatchWidth};
  constexpr int kWidthCount = static_cast<int>(std::size(kWidths));
  double width_eps[kWidthCount] = {};
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < kWidthCount; ++i) {
      width_eps[i] = std::max(
          width_eps[i],
          occupancy_point(cfg, 1.0, episodes, kWidths[i]).eps);
    }
  }
  // Headline: the interleaved engine against the sequential per-episode
  // drain of the same armed-heavy workload. Width parity (merged timeline
  // vs the width-1 drain loop, direct engine A/B) is gated separately as
  // a cost-neutrality floor: the per-lane protocol work is width-invariant
  // by the determinism contract, so the merged timeline can redistribute
  // queue cost but never protocol cost (DESIGN.md §15).
  const double interleave_speedup = interleave_eps / scalar_eps;
  const double width_parity = width_eps[kWidthCount - 1] / width_eps[0];
  const SteadyState interleave_steady =
      steady_state_allocs(cfg, 512, 4096, /*width=*/0);
  OccupancyPoint occupancy[3];
  {
    const double scales[3] = {4.0, 1.0, 0.25};
    for (int i = 0; i < 3; ++i) {
      occupancy[i] = occupancy_point(cfg, scales[i], 6000);
    }
  }

  TablePrinter table({"path", "episodes/s", "speedup"}, 2);
  table.add_row({std::string("scalar (per-episode ctor)"), scalar_eps, 1.0});
  table.add_row({std::string("batched (SoA + reuse)"), batched_eps, speedup});
  table.add_row({std::string("interleaved (merged timeline)"), interleave_eps,
                 interleave_speedup});
  table.print(std::cout);

  std::cout << "\ninterleave width sweep:";
  for (int i = 0; i < kWidthCount; ++i) {
    std::cout << " w" << kWidths[i] << "=" << static_cast<long>(width_eps[i]);
  }
  std::cout << "  (width parity " << width_parity << ")\n"
            << "occupancy sweep (mu-scale -> armed fraction, episodes/s):";
  for (const OccupancyPoint& pt : occupancy) {
    std::cout << "  " << pt.mu_scale << " -> " << pt.armed_fraction << ", "
              << static_cast<long>(pt.eps);
  }
  std::cout << "\ninterleaved steady state: " << interleave_steady.allocs
            << " allocs over " << interleave_steady.episodes << " episodes\n";

  const BatchEpisodeStats& bs = steady.stats;
  std::cout << "\nsteady state: " << steady.allocs << " allocs over "
            << steady.episodes << " episodes\n"
            << "lanes: " << bs.des_lanes << " DES / " << bs.escaped
            << " escaped of " << bs.episodes << "\n"
            << "occupancy (armed lanes per " << kEpisodeBatchWidth
            << "-wide block):";
  for (std::size_t i = 0; i < bs.occupancy.size(); ++i) {
    std::cout << " " << i << ":" << bs.occupancy[i];
  }
  std::cout << "\n";

  std::ostringstream json;
  json << "{\"bench\":\"episode_batch\",\"episodes\":" << episodes
       << ",\"throughput\":{\"scalar_episodes_per_sec\":" << scalar_eps
       << ",\"batched_episodes_per_sec\":" << batched_eps
       << ",\"speedup\":" << speedup
       << "},\"steady_state_allocs\":" << steady.allocs
       << ",\"occupancy\":{\"des_lanes\":" << bs.des_lanes
       << ",\"escaped\":" << bs.escaped << ",\"histogram\":[";
  for (std::size_t i = 0; i < bs.occupancy.size(); ++i) {
    json << (i == 0 ? "" : ",") << bs.occupancy[i];
  }
  json << "]}}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  std::ostringstream ijson;
  ijson << "{\"bench\":\"episode_interleave\",\"episodes\":" << episodes
        << ",\"throughput\":{\"sequential_episodes_per_sec\":" << scalar_eps
        << ",\"interleaved_episodes_per_sec\":" << interleave_eps
        << ",\"speedup_vs_sequential\":" << interleave_speedup
        << "},\"width8_vs_width1\":" << width_parity << ",\"width_sweep\":[";
  for (int i = 0; i < kWidthCount; ++i) {
    ijson << (i == 0 ? "" : ",") << "{\"width\":" << kWidths[i]
          << ",\"episodes_per_sec\":" << width_eps[i] << "}";
  }
  ijson << "],\"occupancy_sweep\":[";
  for (int i = 0; i < 3; ++i) {
    ijson << (i == 0 ? "" : ",") << "{\"mu_scale\":" << occupancy[i].mu_scale
          << ",\"armed_fraction\":" << occupancy[i].armed_fraction
          << ",\"episodes_per_sec\":" << occupancy[i].eps << "}";
  }
  ijson << "],\"steady_state_allocs\":" << interleave_steady.allocs << "}";
  std::cout << "BENCH_JSON " << ijson.str() << "\n";

  // Acceptance gates. ISSUE 6: the batched path sustains >= 2x the scalar
  // episodes/sec and allocates nothing in steady state. ISSUE 9: the
  // interleaved merged timeline sustains >= 1.5x the sequential
  // per-episode drain on the armed-heavy workload, stays within the
  // cost-neutrality floor of the width-1 drain loop (protocol work is
  // width-invariant; 0.75 absorbs single-core scheduler noise), and
  // allocates nothing in steady state at full width.
  const bool ok = speedup >= 2.0 && steady.allocs == 0 &&
                  interleave_speedup >= 1.5 && width_parity >= 0.75 &&
                  interleave_steady.allocs == 0;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
