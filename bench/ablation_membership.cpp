// E15 — Group-membership extension ablation (paper §5, concluding
// remarks): how much QoS does a converged membership view recover when
// chain peers are fail-silent?
//
// Campaign: k = 9 underlapping plane, generous deadline (τ = 22 min so a
// skipped peer can be replaced by the following one), each episode's
// chain second member fail-silent with probability p_fault. Three
// configurations:
//   blind      — protocol alone: the wait-deadline timeout guarantees a
//                (level-1) alert;
//   informed   — the membership service has already converged, so the
//                chain skips the dead peer and recovers level 2;
//   oracle-off — no faults (upper bound).
#include <iostream>

#include "common/table.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

struct Row {
  double p2 = 0.0;
  double mean_latency_min = 0.0;
  int delivered = 0;
  int episodes = 0;
};

Row run_campaign(double p_fault, bool informed) {
  const PlaneGeometry geometry;
  const int k = 9;
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(22);
  cfg.delta = Duration::seconds(12);
  cfg.tg = Duration::seconds(6);
  cfg.computation_cap = Duration::seconds(6);

  Rng master(555);
  Rng phase_rng = master.fork(1);
  Rng dur_rng = master.fork(2);
  Rng ep_rng = master.fork(3);
  Rng fault_rng = master.fork(4);

  Row row;
  const int episodes = 4000;
  RunningStat latency;
  for (int e = 0; e < episodes; ++e) {
    const Duration phase = phase_rng.uniform(Duration::zero(),
                                             geometry.tr(k));
    const AnalyticSchedule sched(geometry, k, phase);
    const EpisodeEngine engine(sched, cfg, true);
    const TimePoint start = TimePoint::at(Duration::minutes(60));
    const Duration dur = dur_rng.exponential(Rate::per_minute(0.05));
    Rng rng = ep_rng.fork(static_cast<std::uint64_t>(e));

    std::vector<EpisodeEngine::Fault> faults;
    std::set<SatelliteId> view;
    if (fault_rng.bernoulli(p_fault)) {
      // Locate the chain's second member (next pass after detection).
      const auto passes = sched.passes(Duration::minutes(40),
                                       Duration::minutes(110));
      Duration t0 = start.since_origin();
      for (const auto& p : passes) {
        if (p.start <= t0 && t0 < p.end) break;
        if (p.start > t0) { t0 = p.start; break; }
      }
      for (const auto& p : passes) {
        if (p.start > t0) {
          faults.push_back({p.satellite, TimePoint::origin()});
          if (informed) view.insert(p.satellite);
          break;
        }
      }
    }
    const auto r = engine.run(start, dur, rng, faults, view);
    ++row.episodes;
    if (r.alert_delivered) {
      ++row.delivered;
      latency.add((r.first_alert_sent - r.detection).to_minutes());
      if (r.level == QosLevel::kSequentialDual) row.p2 += 1.0;
    }
  }
  row.p2 /= row.episodes;
  row.mean_latency_min = latency.mean();
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: membership-informed chains under fail-silent "
               "peers (k = 9, tau = 22, backward messaging) ===\n\n";
  TablePrinter table({"config", "P(fault)", "P(Y=2)", "mean alert latency "
                      "min", "delivered"},
                     4);
  for (const double p : {0.0, 0.3, 0.7}) {
    for (const bool informed : {false, true}) {
      if (p == 0.0 && informed) continue;
      const auto row = run_campaign(p, informed);
      table.add_row({std::string(p == 0.0        ? "no faults"
                                 : informed      ? "membership view"
                                                 : "protocol alone"),
                     p, row.p2, row.mean_latency_min,
                     static_cast<long long>(row.delivered)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: the protocol alone never loses an alert (the "
               "paper's guarantee) but pays the full wait deadline and "
               "drops to level 1 when a peer is silently dead; a converged "
               "membership view re-routes the chain and recovers both the "
               "level-2 share and the latency.\n";
  return 0;
}
