// E12 — Messaging-variant ablation (§3.2 last paragraph): backward
// "coordination done" propagation versus forward responsibility, under
// fail-silent injection of the requested peer.
//
// Expected: both variants deliver every detected signal without faults;
// with the second chain member fail-silent, backward messaging still
// guarantees delivery (the predecessor's wait deadline fires) while
// forward responsibility silently loses the alert.
#include <iostream>

#include "common/table.hpp"
#include "oaq/episode.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

struct Outcome {
  int detected = 0;
  int delivered = 0;
  int timely = 0;
  int duplicates = 0;
};

Outcome run_campaign(bool backward, bool inject_fault) {
  const PlaneGeometry geometry;
  const int k = 9;
  ProtocolConfig cfg;
  cfg.tau = Duration::minutes(5);
  cfg.delta = Duration::seconds(12);
  cfg.tg = Duration::seconds(6);
  cfg.nu = Rate::per_minute(30);
  cfg.computation_cap = Duration::seconds(6);
  cfg.backward_messaging = backward;

  Rng master(2024);
  Rng phase_rng = master.fork(1);
  Rng dur_rng = master.fork(2);
  Rng ep_rng = master.fork(3);

  Outcome out;
  const int episodes = 4000;
  for (int e = 0; e < episodes; ++e) {
    const Duration phase =
        phase_rng.uniform(Duration::zero(), geometry.tr(k));
    const AnalyticSchedule sched(geometry, k, phase);
    const EpisodeEngine engine(sched, cfg, true);
    const TimePoint start = TimePoint::at(Duration::minutes(60));
    const Duration dur = dur_rng.exponential(Rate::per_minute(0.2));
    Rng rng = ep_rng.fork(static_cast<std::uint64_t>(e));

    std::vector<EpisodeEngine::Fault> faults;
    if (inject_fault) {
      // Kill the chain's SECOND member: first locate the detector S1 (the
      // pass covering the signal start, or the first pass after it), then
      // fail the satellite of the next pass.
      const auto passes = sched.passes(Duration::minutes(50),
                                       Duration::minutes(100));
      Duration t0 = Duration::minutes(60);
      for (const auto& p : passes) {
        if (p.start <= t0 && t0 < p.end) break;        // covered at start
        if (p.start > t0) { t0 = p.start; break; }     // detected on arrival
      }
      for (const auto& p : passes) {
        if (p.start > t0) {
          faults.push_back({p.satellite, start});
          break;
        }
      }
    }
    const auto r = engine.run(start, dur, rng, faults);
    out.detected += r.detected;
    out.delivered += r.alert_delivered;
    out.timely += (r.alert_delivered && r.timely);
    out.duplicates += (r.alerts_sent > 1);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: backward messaging vs forward responsibility "
               "(k = 9, tau = 5, fail-silent second chain member) ===\n\n";
  TablePrinter table({"variant", "fault", "detected", "delivered",
                      "delivered/detected", "timely", "duplicates"},
                     4);
  for (const bool backward : {true, false}) {
    for (const bool fault : {false, true}) {
      const auto o = run_campaign(backward, fault);
      table.add_row({std::string(backward ? "backward-done" : "forward-resp"),
                     std::string(fault ? "S2 fail-silent" : "none"),
                     static_cast<long long>(o.detected),
                     static_cast<long long>(o.delivered),
                     o.detected ? static_cast<double>(o.delivered) / o.detected
                                : 0.0,
                     static_cast<long long>(o.timely),
                     static_cast<long long>(o.duplicates)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper claim: \"with the backward-messaging scheme, the "
               "delivery of the alert message will be guaranteed even if "
               "Sn+1 becomes fail-silent in the middle of computation.\"\n";
  return 0;
}
