// Chaos-soak harness (ISSUE 10 tentpole): randomized storm campaigns of
// stochastic fault processes against the self-healing link layer.
//
// Four measurements, three acceptance gates:
//   1. Storm soak — simulate_qos on the iridium-next preset (geometric
//      mode) with a Gilbert–Elliott + outage-train + sat-lifecycle plan
//      and self-healing links, invariants I1–I12 checked on every
//      episode. Reports availability (timely-alert fraction), the p50/p99
//      alert recovery time after the last degradation window ends, and
//      the alert-latency degradation vs the clean (no-storm) baseline.
//      Gate: zero invariant violations.
//   2. Clean-path overhead — analytic simulate_qos with self-healing
//      links enabled but no plan vs fully off. Gate: <= 5% wall-clock
//      (the health path must stay branch-cheap while nothing degrades).
//   3. Expansion hot path — repeated FaultProcessExpander::expand rounds
//      of a stochastic plan. Gate: zero steady-state heap allocations
//      (the expander's internal plan keeps its capacity).
//   4. Storm throughput — episodes/sec of the soak run. Informational.
//
// Prints a human table plus BENCH_JSON lines (aggregated into
// BENCH_10.json by tools/run_bench.sh; schema in tools/README.md).
//
//   chaos_soak [storm_episodes] [overhead_episodes] [rounds]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "alloc_counter.hpp"
#include "common/table.hpp"
#include "fault/process.hpp"
#include "oaq/montecarlo.hpp"
#include "obs/trace.hpp"
#include "orbit/constellation_builder.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Nearest-rank percentile of an unsorted sample (q in [0, 1]).
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

/// The randomized storm over the iridium-next shell (6 planes): a
/// Gilbert–Elliott flapper on every plane's own intra-plane links (chain
/// hops are mostly along-track, so same-plane pairs carry the
/// coordination traffic), an outage/recovery train on two cross-plane
/// seams, and a satellite death + spare swap. Rates are per minute;
/// windows cover the episode's useful horizon (τ = 5 min by default plus
/// signal tails). Expanded per episode from the reserved fault fork, so
/// every episode sees a different storm.
FaultPlan storm_plan() {
  FaultPlan plan;
  for (int p = 0; p < 6; ++p) {
    plan.add(FaultPlan::ge_loss(p, p, /*p_rate=*/2.0, /*r_rate=*/6.0,
                                /*loss=*/0.9, Duration::minutes(0.0),
                                Duration::minutes(6.0)));
  }
  plan.add(FaultPlan::outage_train(0, 1, /*up_mean_min=*/1.5,
                                   /*down_mean_min=*/0.4,
                                   Duration::minutes(0.0),
                                   Duration::minutes(6.0)));
  plan.add(FaultPlan::outage_train(2, 3, /*up_mean_min=*/1.5,
                                   /*down_mean_min=*/0.4,
                                   Duration::minutes(0.5),
                                   Duration::minutes(6.0)));
  for (int p = 0; p < 6; ++p) {
    for (int slot = 0; slot < 11; slot += 3) {
      plan.add(FaultPlan::sat_lifecycle({p, slot}, /*death_rate=*/0.2,
                                        /*spare_mean_min=*/1.0,
                                        Duration::minutes(0.0),
                                        Duration::minutes(6.0)));
    }
  }
  return plan;
}

/// The soak configuration: geometric mode over the iridium-next Walker
/// preset, OAQ, bounded computations, self-healing links on.
QosSimulationConfig soak_config(const Constellation& c, int episodes) {
  QosSimulationConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.episodes = episodes;
  cfg.seed = 13;
  cfg.jobs = 1;  // serial: wall-clock comparisons without scheduler noise
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.protocol.self_healing_links = true;
  return cfg;
}

/// Per-episode aggregates scanned out of the trace stream.
struct EpisodeScan {
  double detection_min = -1.0;    ///< kDetection time
  double first_alert_min = -1.0;  ///< first kAlert time
  double delivered_min = -1.0;    ///< first kAlertDelivered time
  double last_degrade_end = -1.0; ///< last fault_* deactivation (a < 0)
  /// last_degrade_end snapshot at delivery time (events arrive in sim
  /// order): the most recent degradation window that had already closed
  /// when the alert landed — the recovery-time reference point.
  double degrade_end_at_delivery = -1.0;
};

/// Folds one run's trace into per-(shard, episode) scan rows.
std::map<std::pair<int, std::int64_t>, EpisodeScan> scan_trace(
    const TraceCollector& trace) {
  std::map<std::pair<int, std::int64_t>, EpisodeScan> rows;
  for (int s = 0; s < trace.shards(); ++s) {
    for (const TraceEvent& ev : trace.shard_buffer(s).events()) {
      EpisodeScan& row = rows[{s, ev.episode}];
      switch (ev.type) {
        case TraceEventType::kDetection:
          if (row.detection_min < 0.0) row.detection_min = ev.t_min;
          break;
        case TraceEventType::kAlert:
          if (row.first_alert_min < 0.0) row.first_alert_min = ev.t_min;
          break;
        case TraceEventType::kAlertDelivered:
          if (row.delivered_min < 0.0) {
            row.delivered_min = ev.t_min;
            row.degrade_end_at_delivery = row.last_degrade_end;
          }
          break;
        default:
          if (is_fault(ev.type) && ev.a < 0) {
            row.last_degrade_end = std::max(row.last_degrade_end, ev.t_min);
          }
          break;
      }
    }
  }
  return rows;
}

struct SoakNumbers {
  double availability = 0.0;      ///< timely alerts / episodes
  double mean_latency_min = 0.0;  ///< detection → first alert, delivered eps
  double recovery_p50_min = 0.0;  ///< degradation end → delivery
  double recovery_p99_min = 0.0;
  std::int64_t recovery_samples = 0;
  std::int64_t violations = 0;
  double episodes_per_sec = 0.0;
  std::int64_t xlink_sends = 0;
  std::int64_t xlink_drops = 0;
  std::int64_t faults = 0;  ///< fault_* activations (a > 0)
};

SoakNumbers run_soak(const Constellation& c, int episodes,
                     const FaultPlan* plan) {
  QosSimulationConfig cfg = soak_config(c, episodes);
  cfg.fault_plan = plan;
  cfg.check_invariants = true;
  TraceCollector trace;
  cfg.trace = &trace;

  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();

  SoakNumbers out;
  out.violations = qos.invariant_violations;
  out.episodes_per_sec = static_cast<double>(qos.episodes) / elapsed;

  for (int s = 0; s < trace.shards(); ++s) {
    for (const TraceEvent& ev : trace.shard_buffer(s).events()) {
      if (ev.type == TraceEventType::kXlinkSend) ++out.xlink_sends;
      if (ev.type == TraceEventType::kXlinkDrop) ++out.xlink_drops;
      if (is_fault(ev.type) && ev.a > 0) ++out.faults;
    }
  }

  std::int64_t timely = 0;
  double latency_sum = 0.0;
  std::int64_t latency_n = 0;
  std::vector<double> recovery;
  for (const auto& [key, row] : scan_trace(trace)) {
    if (row.delivered_min < 0.0) continue;
    if (row.detection_min >= 0.0 && row.first_alert_min >= 0.0) {
      latency_sum += row.first_alert_min - row.detection_min;
      ++latency_n;
    }
    // Recovery after outage end: how long after the most recent closed
    // degradation window the alert finally landed.
    if (row.degrade_end_at_delivery >= 0.0) {
      recovery.push_back(row.delivered_min - row.degrade_end_at_delivery);
    }
  }
  // Availability is deterministic protocol output, not a trace artifact:
  // timely = delivered minus late ones.
  const auto delivered = static_cast<std::int64_t>(
      static_cast<double>(qos.episodes) *
      (1.0 - qos.probability(QosLevel::kMissed)) +
      0.5);
  timely = delivered - qos.untimely;
  out.availability =
      static_cast<double>(timely) / static_cast<double>(qos.episodes);
  out.mean_latency_min = latency_n > 0 ? latency_sum / latency_n : 0.0;
  out.recovery_samples = static_cast<std::int64_t>(recovery.size());
  out.recovery_p50_min = percentile(recovery, 0.50);
  out.recovery_p99_min = percentile(recovery, 0.99);
  return out;
}

/// The link-layer storm on the analytic single-plane protocol (k = 9,
/// where coordination chains actually relay over crosslinks): a
/// Gilbert–Elliott flapper and an outage train on the plane's own links.
/// This is what drives the EWMA health estimator — drops demote links,
/// the chain layer re-routes, probations escalate — so the I9/I10 gates
/// bite here.
FaultPlan link_storm_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::ge_loss(0, 0, /*p_rate=*/4.0, /*r_rate=*/2.0,
                              /*loss=*/1.0, Duration::minutes(0.0),
                              Duration::minutes(8.0)));
  plan.add(FaultPlan::outage_train(0, 0, /*up_mean_min=*/1.0,
                                   /*down_mean_min=*/0.5,
                                   Duration::minutes(0.0),
                                   Duration::minutes(8.0)));
  return plan;
}

struct LinkStormNumbers {
  double availability = 0.0;
  std::int64_t violations = 0;
  std::int64_t demoted = 0;
  std::int64_t restored = 0;
  std::int64_t probes = 0;
  std::int64_t reroutes = 0;
  std::int64_t drops = 0;
};

/// Analytic-mode link storm under self-healing links + reliable retries:
/// the health counters come from the gated net.health.* metrics.
LinkStormNumbers run_link_storm(int episodes, const FaultPlan* plan) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 13;
  cfg.jobs = 1;
  cfg.protocol.self_healing_links = true;
  // A faster EWMA than the production default: episodes are short, so the
  // estimator must converge within one storm window to exercise the
  // demote → probe → restore cycle the soak is gating.
  cfg.protocol.link_health_alpha = 0.45;
  cfg.protocol.reliable_links = true;
  cfg.fault_plan = plan;
  cfg.check_invariants = true;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  const SimulatedQos qos = simulate_qos(cfg);
  LinkStormNumbers out;
  const std::int64_t delivered = metrics.counter("alerts.delivered");
  const std::int64_t timely = metrics.counter("alerts.timely");
  (void)delivered;
  out.availability =
      static_cast<double>(timely) / static_cast<double>(qos.episodes);
  out.violations = qos.invariant_violations;
  out.demoted = metrics.counter("net.health.demoted");
  out.restored = metrics.counter("net.health.restored");
  out.probes = metrics.counter("net.health.probes");
  out.reroutes = metrics.counter("episodes.reroutes");
  out.drops = metrics.counter("xlink.dropped_loss") +
              metrics.counter("xlink.dropped_link");
  return out;
}

/// Episodes/sec of one analytic simulate_qos run (clean-path overhead
/// probe; interleaving is the caller's job).
double analytic_eps(int episodes, bool self_healing) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.jobs = 1;
  cfg.protocol.self_healing_links = self_healing;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(qos.episodes) / elapsed;
}

struct ExpanderNumbers {
  double expansions_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_rounds = 0;
};

/// Repeated expansion rounds of the storm plan through one long-lived
/// expander: the first half warms the internal plan's capacity, the
/// second half must not allocate (the chaos-soak 0-alloc gate).
ExpanderNumbers expansion_hot_path(int rounds, const FaultPlan& plan) {
  FaultProcessExpander expander;
  const Rng rng(42);
  std::uint64_t clause_sink = 0;
  const auto round = [&](int r) {
    const FaultPlan& out =
        expander.expand(plan, rng.fork(static_cast<std::uint64_t>(r) + 1));
    clause_sink += out.size();
  };
  const int warm = rounds / 2;
  for (int r = 0; r < warm; ++r) round(r);

  ExpanderNumbers out;
  const std::uint64_t allocs_before = benchutil::allocation_count();
  const auto t0 = Clock::now();
  for (int r = warm; r < rounds; ++r) round(r);
  const double elapsed = seconds_since(t0);
  out.steady_allocs = benchutil::allocation_count() - allocs_before;
  out.steady_rounds = static_cast<std::uint64_t>(rounds - warm);
  out.expansions_per_sec = static_cast<double>(out.steady_rounds) / elapsed;
  if (clause_sink == ~0ull) std::abort();  // defeat over-eager optimizers
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int storm_episodes = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int overhead_episodes = argc > 2 ? std::atoi(argv[2]) : 40000;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 20000;

  std::cout << "=== chaos soak (" << storm_episodes << " storm episodes, "
            << overhead_episodes << " overhead episodes, " << rounds
            << " expansion rounds) ===\n\n";

  const Constellation c = ConstellationBuilder::preset("iridium-next").build();
  const FaultPlan storm = storm_plan();

  const SoakNumbers clean = run_soak(c, storm_episodes, /*plan=*/nullptr);
  const SoakNumbers soak = run_soak(c, storm_episodes, &storm);
  const double latency_degradation =
      clean.mean_latency_min > 0.0
          ? soak.mean_latency_min / clean.mean_latency_min - 1.0
          : 0.0;

  const FaultPlan link_storm = link_storm_plan();
  const LinkStormNumbers ls_clean =
      run_link_storm(storm_episodes, /*plan=*/nullptr);
  const LinkStormNumbers ls = run_link_storm(storm_episodes, &link_storm);

  // Untimed warm-up, then interleaved repetitions (fault_storm idiom) so
  // frequency drift hits baseline and health-on runs alike.
  (void)analytic_eps(overhead_episodes, false);
  double base_eps = 0.0, health_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    base_eps = std::max(base_eps, analytic_eps(overhead_episodes, false));
    health_eps = std::max(health_eps, analytic_eps(overhead_episodes, true));
  }
  const double overhead = base_eps / health_eps - 1.0;

  const ExpanderNumbers hot = expansion_hot_path(rounds, storm);

  TablePrinter table({"measure", "clean", "storm"}, 4);
  table.add_row({std::string("availability"), clean.availability,
                 soak.availability});
  table.add_row({std::string("mean alert latency (min)"),
                 clean.mean_latency_min, soak.mean_latency_min});
  table.add_row({std::string("invariant violations"),
                 static_cast<double>(clean.violations),
                 static_cast<double>(soak.violations)});
  table.add_row({std::string("crosslink sends"),
                 static_cast<double>(clean.xlink_sends),
                 static_cast<double>(soak.xlink_sends)});
  table.add_row({std::string("crosslink drops"),
                 static_cast<double>(clean.xlink_drops),
                 static_cast<double>(soak.xlink_drops)});
  table.add_row({std::string("fault activations"),
                 static_cast<double>(clean.faults),
                 static_cast<double>(soak.faults)});
  table.print(std::cout);
  std::cout << "\nlink storm (analytic k=9, self-healing + reliable): "
            << "availability " << ls_clean.availability << " -> "
            << ls.availability << ", " << ls.drops << " drops, "
            << ls.demoted << " demotions, " << ls.restored << " restores, "
            << ls.probes << " probes, " << ls.reroutes << " re-routes, "
            << ls.violations + ls_clean.violations << " violations\n"
            << "recovery after degradation end: p50 "
            << soak.recovery_p50_min << " min, p99 " << soak.recovery_p99_min
            << " min over " << soak.recovery_samples << " samples\n"
            << "alert-latency degradation: " << latency_degradation * 100.0
            << "%\n"
            << "clean-path overhead (health on, no plan): "
            << overhead * 100.0 << "%\n"
            << "expansion hot path: " << hot.expansions_per_sec
            << " expansions/s, " << hot.steady_allocs << " allocs over "
            << hot.steady_rounds << " steady rounds\n"
            << "storm throughput: " << soak.episodes_per_sec
            << " episodes/s\n";

  std::ostringstream json;
  json << "{\"bench\":\"chaos_soak\",\"storm_episodes\":" << storm_episodes
       << ",\"availability\":{\"clean\":" << clean.availability
       << ",\"storm\":" << soak.availability
       << "},\"alert_latency_min\":{\"clean_mean\":" << clean.mean_latency_min
       << ",\"storm_mean\":" << soak.mean_latency_min
       << ",\"degradation_fraction\":" << latency_degradation
       << "},\"recovery_min\":{\"samples\":" << soak.recovery_samples
       << ",\"p50\":" << soak.recovery_p50_min
       << ",\"p99\":" << soak.recovery_p99_min
       << "},\"link_storm\":{\"clean_availability\":" << ls_clean.availability
       << ",\"storm_availability\":" << ls.availability
       << ",\"drops\":" << ls.drops << ",\"demotions\":" << ls.demoted
       << ",\"restores\":" << ls.restored << ",\"probes\":" << ls.probes
       << ",\"reroutes\":" << ls.reroutes
       << "},\"clean_path_overhead\":{\"baseline_episodes_per_sec\":"
       << base_eps << ",\"health_episodes_per_sec\":" << health_eps
       << ",\"overhead_fraction\":" << overhead
       << "},\"expansion_hot_path\":{\"rounds\":" << rounds
       << ",\"expansions_per_sec\":" << hot.expansions_per_sec
       << ",\"steady_state_allocs\":" << hot.steady_allocs
       << "},\"storm_episodes_per_sec\":" << soak.episodes_per_sec
       << ",\"invariant_violations\":"
       << soak.violations + clean.violations + ls.violations +
              ls_clean.violations
       << "}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Acceptance gates (ISSUE 10): invariants clean under the storm, the
  // idle health path costs <= 5% wall-clock, and stochastic expansion
  // allocates nothing at steady state.
  bool ok = true;
  if (soak.violations + clean.violations + ls.violations +
          ls_clean.violations != 0) {
    std::cout << "REGRESSION: invariant violations under chaos soak\n";
    ok = false;
  }
  if (overhead > 0.05) {
    std::cout << "REGRESSION: clean-path overhead above 5%\n";
    ok = false;
  }
  if (hot.steady_allocs != 0) {
    std::cout << "REGRESSION: stochastic expansion allocated at steady "
                 "state\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
