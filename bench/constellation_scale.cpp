// Mega-constellation scale-out harness (ISSUE 8 tentpole): episodes/sec
// and peak RSS across the Walker preset ladder {reference 7×14,
// iridium-next 6×11, oneweb 18×36, starlink 72×22} at jobs 1/4/8; the
// pooled-vs-naive per-episode A/B at the 72×22 design point; the pooled
// runner's steady-state allocation count (hence alloc_counter); and the
// warm SharedVisibilityCache hit accounting. Prints a human table plus a
// BENCH_JSON line (aggregated into BENCH_8.json by tools/run_bench.sh).
//
//   constellation_scale [episodes]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "common/distribution.hpp"
#include "common/table.hpp"
#include "oaq/montecarlo.hpp"
#include "oaq/pooled_episode.hpp"
#include "oaq/schedule.hpp"
#include "orbit/constellation_builder.hpp"
#include "orbit/visibility.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Linux ru_maxrss is KiB. Monotonic over the process lifetime, so the
/// scale sweep runs presets in increasing-size order: each row's value is
/// the high-water mark up to and including that preset.
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// The paper's geometric protocol shape, OAQ, bounded computations —
/// pointed at whichever constellation is under test.
QosSimulationConfig scale_config(const Constellation& c, int episodes) {
  QosSimulationConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.episodes = episodes;
  cfg.seed = 11;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  return cfg;
}

double run_seconds(const QosSimulationConfig& base, int jobs, bool pooled) {
  QosSimulationConfig cfg = base;
  cfg.jobs = jobs;
  cfg.pooled_episodes = pooled;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return elapsed;
}

double episodes_per_sec(const QosSimulationConfig& base, int jobs,
                        bool pooled) {
  return static_cast<double>(base.episodes) / run_seconds(base, jobs, pooled);
}

/// Drive one PooledEpisodeRunner directly, feeding it the exact
/// per-episode streams simulate_qos forks: a warm-up block grows every
/// reusable buffer (event slab, envelope pool, dense per-node tables,
/// episode storage) and populates the covering visibility window, then
/// the allocation delta over the following episodes must be zero.
std::uint64_t pooled_steady_state_allocs(const Constellation& c,
                                         std::int64_t warm,
                                         std::int64_t total) {
  const QosSimulationConfig cfg = scale_config(c, 1);
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  VisibilityCache::Options vopt;
  vopt.window_quantum = signal_start.since_origin() + c.max_period() +
                        cfg.protocol.tau + Duration::hours(2);
  VisibilityCache cache(c, cfg.earth_rotation, vopt);
  GeometricSchedule schedule(cache, cfg.target);
  PooledEpisodeRunner runner(schedule, c.active_satellites(), cfg.protocol,
                             cfg.opportunity_adaptive, /*plan=*/nullptr);
  const ExponentialDuration duration_law(cfg.mu);
  const Rng episode_rng = Rng(cfg.seed).fork(3);
  std::uint64_t level_sink = 0;
  const auto run_one = [&](std::int64_t e) {
    const Rng ep = episode_rng.fork(static_cast<std::uint64_t>(e));
    Rng phase_rng = ep.fork(1);
    Rng duration_rng = ep.fork(2);
    const Duration phase =
        phase_rng.uniform(Duration::zero(), c.max_period());
    const Duration duration = duration_law.sample(duration_rng);
    const EpisodeResult& r =
        runner.run_episode(e, ep.fork(3), signal_start + phase, duration,
                           /*trace=*/nullptr, /*invariants=*/nullptr);
    level_sink += static_cast<std::uint64_t>(to_int(r.level));
  };
  for (std::int64_t e = 0; e < warm; ++e) run_one(e);
  const std::uint64_t allocs_before = benchutil::allocation_count();
  for (std::int64_t e = warm; e < total; ++e) run_one(e);
  if (level_sink == ~0ull) std::abort();  // defeat over-eager optimizers
  return benchutil::allocation_count() - allocs_before;
}

struct AbThroughput {
  double naive_eps = 0.0;
  double pooled_eps = 0.0;
};

/// Pooled-vs-naive per-episode throughput, both engines driven directly
/// over one pre-warmed VisibilityCache so the timed regions contain pure
/// episode work: the naive path re-constructs Simulator/CrosslinkNetwork
/// and re-registers the pass horizon per episode (exactly like the scalar
/// simulate_qos loop), the pooled path resets one arena. Measuring this
/// way — instead of subtracting two full simulate_qos runs — keeps the
/// one-time visibility seed sweep out of the comparison entirely, so the
/// recorded numbers are stable enough to trend-gate.
AbThroughput pooled_vs_naive(const Constellation& c, std::int64_t naive_n,
                             std::int64_t pooled_n) {
  const QosSimulationConfig cfg = scale_config(c, 1);
  const TimePoint signal_start = TimePoint::at(Duration::minutes(60));
  VisibilityCache::Options vopt;
  vopt.window_quantum = signal_start.since_origin() + c.max_period() +
                        cfg.protocol.tau + Duration::hours(2);
  VisibilityCache cache(c, cfg.earth_rotation, vopt);
  GeometricSchedule schedule(cache, cfg.target);
  PooledEpisodeRunner runner(schedule, c.active_satellites(), cfg.protocol,
                             cfg.opportunity_adaptive, /*plan=*/nullptr);
  const EpisodeEngine engine(schedule, cfg.protocol,
                             cfg.opportunity_adaptive);
  const ExponentialDuration duration_law(cfg.mu);
  const Rng episode_rng = Rng(cfg.seed).fork(3);
  std::uint64_t level_sink = 0;
  const auto episode_inputs = [&](std::int64_t e, Duration& phase,
                                  Duration& duration) {
    const Rng ep = episode_rng.fork(static_cast<std::uint64_t>(e));
    Rng phase_rng = ep.fork(1);
    Rng duration_rng = ep.fork(2);
    phase = phase_rng.uniform(Duration::zero(), c.max_period());
    duration = duration_law.sample(duration_rng);
    return ep.fork(3);
  };
  const auto run_naive = [&](std::int64_t e) {
    Duration phase, duration;
    Rng protocol = episode_inputs(e, phase, duration);
    const EpisodeResult r =
        engine.run(signal_start + phase, duration, protocol);
    level_sink += static_cast<std::uint64_t>(to_int(r.level));
  };
  const auto run_pooled = [&](std::int64_t e) {
    Duration phase, duration;
    Rng protocol = episode_inputs(e, phase, duration);
    const EpisodeResult& r =
        runner.run_episode(e, protocol, signal_start + phase, duration,
                           /*trace=*/nullptr, /*invariants=*/nullptr);
    level_sink += static_cast<std::uint64_t>(to_int(r.level));
  };
  // Warm-up: populates the covering cache window and grows every pooled
  // buffer to steady state.
  for (std::int64_t e = 0; e < 64; ++e) {
    run_naive(e);
    run_pooled(e);
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double t_naive = kInf, t_pooled = kInf;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = Clock::now();
    for (std::int64_t e = 0; e < naive_n; ++e) run_naive(e);
    t_naive = std::min(t_naive, seconds_since(t0));
    t0 = Clock::now();
    for (std::int64_t e = 0; e < pooled_n; ++e) run_pooled(e);
    t_pooled = std::min(t_pooled, seconds_since(t0));
  }
  if (level_sink == ~0ull) std::abort();  // defeat over-eager optimizers
  return {static_cast<double>(naive_n) / t_naive,
          static_cast<double>(pooled_n) / t_pooled};
}

struct HitAccounting {
  std::int64_t queries = 0;
  std::int64_t hits = 0;
};

/// One metered run: with the run-covering quantum, all but each shard's
/// first pass query must hit the frozen shared cache.
HitAccounting warm_cache_hits(const QosSimulationConfig& base) {
  QosSimulationConfig cfg = base;
  cfg.jobs = 1;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  (void)simulate_qos(cfg);
  HitAccounting out;
  out.queries = metrics.counters().at("visibility.pass_queries");
  out.hits = metrics.counters().at("visibility.pass_hits");
  return out;
}

struct PresetRow {
  std::string name;
  int planes = 0;
  int active = 0;
  double eps[3] = {0.0, 0.0, 0.0};  // jobs 1 / 4 / 8
  double rss_mib = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 1000;
  constexpr int kJobs[3] = {1, 4, 8};

  std::cout << "=== Mega-constellation scale-out (" << episodes
            << " episodes per cell) ===\n\n";

  // Scale sweep, increasing constellation size so the monotonic RSS
  // high-water mark is attributable to the newest (largest) preset.
  const char* kPresets[] = {"iridium-next", "reference", "oneweb",
                            "starlink"};
  std::vector<PresetRow> rows;
  for (const char* name : kPresets) {
    const Constellation c = ConstellationBuilder::preset(name).build();
    const QosSimulationConfig cfg = scale_config(c, episodes);
    PresetRow row;
    row.name = name;
    row.planes = c.num_planes();
    row.active = c.total_active();
    (void)episodes_per_sec(cfg, 1, /*pooled=*/true);  // untimed warm-up
    for (int rep = 0; rep < 2; ++rep) {
      for (int j = 0; j < 3; ++j) {
        row.eps[j] = std::max(row.eps[j],
                              episodes_per_sec(cfg, kJobs[j], true));
      }
    }
    row.rss_mib = peak_rss_mib();
    rows.push_back(row);
  }

  TablePrinter table({"preset", "shape", "eps jobs=1", "eps jobs=4",
                      "eps jobs=8", "peak RSS MiB"},
                     1);
  for (const PresetRow& r : rows) {
    table.add_row({r.name,
                   std::to_string(r.planes) + "x" +
                       std::to_string(r.active / r.planes),
                   r.eps[0], r.eps[1], r.eps[2], r.rss_mib});
  }
  table.print(std::cout);

  // Pooled-vs-naive A/B at the 72×22 design point, single-thread so the
  // ratio is per-core DES-context reuse, not pool scheduling noise. The
  // pooled path runs more episodes so its (much shorter) timed region
  // still dwarfs scheduler noise.
  const Constellation starlink =
      ConstellationBuilder::preset("starlink").build();
  const AbThroughput ab = pooled_vs_naive(starlink, std::int64_t{4} * episodes,
                                          std::int64_t{16} * episodes);
  const double naive_eps = ab.naive_eps;
  const double pooled_eps = ab.pooled_eps;
  const double speedup = pooled_eps / naive_eps;
  std::cout << "\nstarlink 72x22 A/B (jobs=1, per-episode, warm cache): "
            << "naive " << naive_eps << " eps, pooled " << pooled_eps
            << " eps, speedup " << speedup << "x\n";

  const std::uint64_t steady_allocs =
      pooled_steady_state_allocs(starlink, 64, 512);
  std::cout << "steady state: " << steady_allocs
            << " allocs over 448 pooled starlink episodes\n";

  const HitAccounting hits =
      warm_cache_hits(scale_config(starlink, std::max(1, episodes / 4)));
  std::cout << "warm shared cache: " << hits.hits << " hits / "
            << hits.queries << " pass queries\n";

  std::ostringstream json;
  json << "{\"bench\":\"constellation_scale\",\"episodes\":" << episodes
       << ",\"scale\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PresetRow& r = rows[i];
    json << (i == 0 ? "" : ",") << "{\"preset\":\"" << r.name
         << "\",\"planes\":" << r.planes << ",\"active\":" << r.active
         << ",\"episodes_per_sec\":{\"jobs1\":" << r.eps[0]
         << ",\"jobs4\":" << r.eps[1] << ",\"jobs8\":" << r.eps[2]
         << "},\"peak_rss_mib\":" << r.rss_mib << "}";
  }
  json << "],\"throughput\":{\"naive_episodes_per_sec\":" << naive_eps
       << ",\"pooled_episodes_per_sec\":" << pooled_eps
       << ",\"speedup\":" << speedup
       << "},\"steady_state_allocs\":" << steady_allocs
       << ",\"visibility\":{\"pass_queries\":" << hits.queries
       << ",\"pass_hits\":" << hits.hits << "}}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Acceptance gates (ISSUE 8): the pooled path sustains >= 1.5x the naive
  // per-episode path at 72×22, allocates nothing in steady state, and the
  // warm shared-cache hit accounting is preserved.
  const bool ok = speedup >= 1.5 && steady_allocs == 0 && hits.hits > 0 &&
                  hits.queries >= hits.hits;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
