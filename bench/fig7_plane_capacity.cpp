// E5 — Figure 7: steady-state probability of orbital-plane capacity
// P(K = k) versus the node-failure rate λ (η = 10, φ = 30000 hrs).
//
// Paper narrative to reproduce: P(14) dominates when λ is low; P(10) (the
// threshold capacity) is very small at λ = 1e-5, rapidly increases, and
// becomes dominant as λ grows; k < 9 stays negligible.
#include <iostream>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Figure 7: P(K = k) vs lambda (eta = 10, phi = 30000 h) "
               "===\n\n";
  SeriesPrinter series("lambda", {"P(9)", "P(10)", "P(11)", "P(12)", "P(13)",
                                  "P(14)"});
  for (const double lam : linspace(1e-5, 1e-4, 10)) {
    PlaneDependability model;
    model.satellite_failure_rate = Rate::per_hour(lam);
    model.policy.ground_threshold = 10;
    const auto pmf = plane_capacity_pmf(model, 42, 600);
    series.add_point(lam, {pmf.probability(9), pmf.probability(10),
                           pmf.probability(11), pmf.probability(12),
                           pmf.probability(13), pmf.probability(14)});
  }
  series.print(std::cout);

  std::cout << "\nValidation against the exact pure-death CTMC (degenerate "
               "policy, lambda = 1e-4):\n";
  PlaneDependability degen;
  degen.satellite_failure_rate = Rate::per_hour(1e-4);
  degen.policy.spare_activation_delay = Duration::hours(1e-7);
  degen.policy.ground_threshold = 0;
  degen.policy.launch_lead_time = Duration::hours(1e9);
  degen.policy.expedited_replacements = false;
  const auto sim = plane_capacity_pmf(degen, 7, 2000);
  const auto exact = pure_death_reference_pmf(degen);
  TablePrinter check({"k", "DES", "CTMC"}, 4);
  for (int k = 14; k >= 8; --k) {
    check.add_row({static_cast<long long>(k), sim.probability(k),
                   exact[static_cast<std::size_t>(k)]});
  }
  check.print(std::cout);
  return 0;
}
