// Fault-injection harness (ISSUE 5 tentpole): cost of the fault engine.
//
// Three measurements, two acceptance gates:
//   1. Empty-plan overhead — simulate_qos with an attached-but-empty
//      FaultPlan vs no plan at all. Gate: <= 5% wall-clock overhead (the
//      hooks must be branch-cheap when nothing is scripted).
//   2. Injection hot path — repeated arm/fire rounds of a storm plan
//      against one pre-warmed network. Gate: zero steady-state heap
//      allocations (arm() pre-sizes everything; activate/deactivate only
//      flip pre-sized state).
//   3. Storm throughput — episodes/sec with a six-clause plan mixing all
//      clause types, plus invariant checking. Informational (the
//      correctness side is tests/faultinject).
//
// Prints a human table plus BENCH_JSON lines (aggregated into
// BENCH_5.json by tools/run_bench.sh).
//
//   fault_storm [episodes] [rounds]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "alloc_counter.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/crosslink.hpp"
#include "oaq/montecarlo.hpp"
#include "sim/simulator.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A plan touching every clause kind, sized for the analytic single-plane
/// episode (plane 0, slots 0..k-1). Windows overlap deliberately.
FaultPlan storm_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::fail_silent({0, 2}, Duration::minutes(1.0)));
  plan.add(FaultPlan::recover({0, 2}, Duration::minutes(4.0)));
  plan.add(
      FaultPlan::link_outage(0, 0, Duration::minutes(0.5), Duration::minutes(3.0)));
  plan.add(
      FaultPlan::delay_spike(3.0, Duration::minutes(1.0), Duration::minutes(5.0)));
  plan.add(
      FaultPlan::burst_loss(0.3, Duration::minutes(0.0), Duration::minutes(2.0)));
  plan.add(
      FaultPlan::partition(0x1, Duration::minutes(2.0), Duration::minutes(6.0)));
  return plan;
}

QosSimulationConfig base_config(int episodes) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.jobs = 1;  // serial: wall-clock comparisons without scheduler noise
  return cfg;
}

/// Episodes/sec of one simulate_qos run, best of `reps` (interleaving is
/// the caller's job).
double run_once(const QosSimulationConfig& cfg) {
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(qos.episodes) / elapsed;
}

struct HotPathNumbers {
  double activations_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_rounds = 0;
};

/// Repeated arm + drain rounds of the storm plan against one long-lived
/// network: the injector's whole lifecycle (construct, arm, activate,
/// deactivate) per round. First half warms pools and degradation tables;
/// the second half must not allocate.
HotPathNumbers injection_hot_path(int rounds, const FaultPlan& plan) {
  Simulator sim;
  Rng rng(99);
  CrosslinkNetwork net(sim, {}, rng.fork(1));
  for (int slot = 0; slot < 9; ++slot) {
    net.register_node(Address::sat({0, slot}), [](const Envelope&) {});
  }

  HotPathNumbers out;
  std::uint64_t activations = 0;
  const auto round = [&](int r) {
    FaultInjector injector(sim, net, plan, rng.fork(100 + r));
    injector.arm(sim.now());
    sim.run();
    activations += injector.stats().activations;
  };

  const int warm = rounds / 2;
  for (int r = 0; r < warm; ++r) round(r);

  const std::uint64_t allocs_before = benchutil::allocation_count();
  const auto t0 = Clock::now();
  for (int r = warm; r < rounds; ++r) round(r);
  const double elapsed = seconds_since(t0);
  out.steady_allocs = benchutil::allocation_count() - allocs_before;
  out.steady_rounds = static_cast<std::uint64_t>(rounds - warm);
  out.activations_per_sec =
      static_cast<double>(activations) / 2.0 / elapsed;  // steady half
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 40000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 20000;

  std::cout << "=== fault injection engine (" << episodes << " episodes, "
            << rounds << " arm/fire rounds) ===\n\n";

  const FaultPlan empty;
  const FaultPlan storm = storm_plan();

  QosSimulationConfig cfg_base = base_config(episodes);
  QosSimulationConfig cfg_empty = base_config(episodes);
  cfg_empty.fault_plan = &empty;
  QosSimulationConfig cfg_storm = base_config(episodes);
  cfg_storm.fault_plan = &storm;
  cfg_storm.check_invariants = true;

  // Untimed warm-up (same idiom as geometry_batch): the first run pays
  // page faults, allocator growth, and frequency ramp-up, and the baseline
  // ran first in every repetition — cold, it depressed base_eps and made
  // the empty-plan overhead read ~-1.5% on a quiet machine.
  (void)run_once(cfg_base);

  // Interleave baseline/empty repetitions so frequency drift hits both.
  double base_eps = 0.0, empty_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    base_eps = std::max(base_eps, run_once(cfg_base));
    empty_eps = std::max(empty_eps, run_once(cfg_empty));
  }
  const double overhead = base_eps / empty_eps - 1.0;
  const double storm_eps = run_once(cfg_storm);
  const HotPathNumbers hot = injection_hot_path(rounds, storm);

  TablePrinter table({"workload", "episodes/s", "vs baseline"}, 2);
  table.add_row({std::string("baseline (no plan)"), base_eps, 1.0});
  table.add_row(
      {std::string("empty plan attached"), empty_eps, empty_eps / base_eps});
  table.add_row({std::string("6-clause storm"), storm_eps, storm_eps / base_eps});
  table.print(std::cout);
  std::cout << "\nempty-plan overhead: " << overhead * 100.0 << "%\n"
            << "injection hot path: " << hot.activations_per_sec
            << " activations/s, " << hot.steady_allocs << " allocs over "
            << hot.steady_rounds << " steady rounds\n";

  std::ostringstream json;
  json << "{\"bench\":\"fault_storm\",\"episodes\":" << episodes
       << ",\"empty_plan_overhead\":{\"baseline_episodes_per_sec\":" << base_eps
       << ",\"empty_plan_episodes_per_sec\":" << empty_eps
       << ",\"overhead_fraction\":" << overhead
       << "},\"storm_episodes_per_sec\":" << storm_eps
       << ",\"injection_hot_path\":{\"rounds\":" << rounds
       << ",\"activations_per_sec\":" << hot.activations_per_sec
       << ",\"steady_state_allocs\":" << hot.steady_allocs << "}}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Acceptance gates (ISSUE 5): attaching an empty plan costs <= 5%
  // wall-clock, and the injection hot path allocates nothing at steady
  // state.
  const bool ok = overhead <= 0.05 && hot.steady_allocs == 0;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
