// The pre-pooling DES kernel (ISSUE 3 baseline), kept verbatim for honest
// old-vs-new benchmarking: shared_ptr-per-event priority queue plus a
// live-event hash map, with std::function callbacks. Bench-only — the
// library's kernel is src/sim/simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace oaq::legacy {

struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Event-driven simulator with a monotonic virtual clock (seed-kernel
/// semantics: identical observable behaviour to the pooled kernel).
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  EventId schedule_at(TimePoint t, Callback cb) {
    OAQ_REQUIRE(t >= now_, "cannot schedule an event in the past");
    OAQ_REQUIRE(cb != nullptr, "event callback must be callable");
    auto ev = std::make_shared<Event>();
    ev->at = t;
    ev->seq = next_seq_++;
    ev->callback = std::move(cb);
    queue_.push(ev);
    live_.emplace(ev->seq, ev);
    if (live_.size() > peak_pending_) peak_pending_ = live_.size();
    return EventId{ev->seq};
  }

  EventId schedule_after(Duration delay, Callback cb) {
    OAQ_REQUIRE(delay >= Duration::zero(), "delay must be nonnegative");
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) {
    const auto it = live_.find(id.value);
    if (it == live_.end()) return false;
    it->second->cancelled = true;
    live_.erase(it);
    return true;
  }

  [[nodiscard]] bool is_pending(EventId id) const {
    return live_.contains(id.value);
  }

  bool step() {
    auto ev = pop_next();
    if (!ev) return false;
    OAQ_ENSURE(ev->at >= now_, "event queue violated time order");
    now_ = ev->at;
    ++processed_;
    ev->callback();
    return true;
  }

  void run(std::uint64_t max_events = UINT64_MAX) {
    for (std::uint64_t i = 0; i < max_events; ++i) {
      if (!step()) return;
    }
  }

  void run_until(TimePoint t) {
    OAQ_REQUIRE(t >= now_, "cannot run backwards");
    while (!queue_.empty()) {
      auto top = queue_.top();
      if (top->cancelled) {
        queue_.pop();
        continue;
      }
      if (top->at > t) break;
      step();
    }
    now_ = t;
  }

  [[nodiscard]] std::size_t pending_count() const { return live_.size(); }
  [[nodiscard]] std::uint64_t processed_count() const { return processed_; }
  [[nodiscard]] std::size_t peak_pending_count() const {
    return peak_pending_;
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq = 0;
    Callback callback;
    bool cancelled = false;
  };
  struct Later {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;  // FIFO among simultaneous events
    }
  };

  std::shared_ptr<Event> pop_next() {
    while (!queue_.empty()) {
      auto ev = queue_.top();
      queue_.pop();
      if (!ev->cancelled) {
        live_.erase(ev->seq);
        return ev;
      }
    }
    return nullptr;
  }

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, Later>
      queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Event>> live_;
};

}  // namespace oaq::legacy
