// E11 — Sequential-localization motivation (paper refs [4, 5]): measured
// WLS geolocation error and the CRLB as a function of the number of
// cooperating satellite passes, from synthetic Doppler measurements.
//
// This is the physical basis of the paper's claim that "additional
// information from diverse sources enables further accuracy-improvement
// iterations" and of the AccuracyModel defaults used by TC-1.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "geoloc/crlb.hpp"
#include "geoloc/sequential.hpp"

using namespace oaq;

namespace {

constexpr double kCarrierHz = 400.0e6;

std::vector<std::vector<FoaMeasurement>> make_passes(int n, double sigma_hz,
                                                     const GeoPoint& truth,
                                                     std::uint64_t seed) {
  Emitter emitter;
  emitter.position = truth;
  emitter.carrier_hz = kCarrierHz;
  emitter.start = TimePoint::origin();
  const DopplerModel model(true);
  Rng rng(seed);
  std::vector<std::vector<FoaMeasurement>> out;
  const Duration revisit = Duration::minutes(9);  // Tr[10]
  for (int p = 0; p < n; ++p) {
    const Orbit orbit = Orbit::circular_with_period(
        Duration::minutes(90), deg2rad(85.0), deg2rad(30.0),
        -2.0 * kPi * p / 10.0);
    out.push_back(model.take_measurements(
        orbit, {0, p}, emitter,
        measurement_epochs(Duration::minutes(5) + revisit * p,
                           Duration::minutes(13) + revisit * p, 25),
        deg2rad(18.0), sigma_hz, rng));
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Sequential localization: error vs number of cooperating "
               "passes (sigma = 5 Hz, 400 MHz carrier, 30N emitter) ===\n\n";
  const GeoPoint truth = GeoPoint::from_degrees(30.0, 31.0);
  const int trials = 40;
  const int max_passes = 4;

  std::vector<RunningStat> err(max_passes);
  std::vector<RunningStat> posterior(max_passes);
  std::vector<RunningStat> bound(max_passes);

  for (int t = 0; t < trials; ++t) {
    const auto passes =
        make_passes(max_passes, 5.0, truth, 1000 + static_cast<unsigned>(t));
    SequentialLocalizer loc;
    std::vector<FoaMeasurement> all;
    for (int p = 0; p < max_passes; ++p) {
      const auto& est = loc.incorporate(passes[static_cast<std::size_t>(p)]);
      all.insert(all.end(), passes[static_cast<std::size_t>(p)].begin(),
                 passes[static_cast<std::size_t>(p)].end());
      err[static_cast<std::size_t>(p)].add(
          great_circle_km(est.position, truth));
      posterior[static_cast<std::size_t>(p)].add(
          est.position_error_1sigma_km);
      bound[static_cast<std::size_t>(p)].add(
          crlb_position_km(all, truth, kCarrierHz, true));
    }
  }

  TablePrinter table({"passes", "mean err km", "posterior 1-sigma km",
                      "CRLB km", "err vs 1-pass"},
                     3);
  table.set_caption(
      "Mean over 40 noise realizations; the contraction per added pass "
      "calibrates AccuracyModel::sequential_contraction");
  for (int p = 0; p < max_passes; ++p) {
    const auto& e = err[static_cast<std::size_t>(p)];
    table.add_row({static_cast<long long>(p + 1), e.mean(),
                   posterior[static_cast<std::size_t>(p)].mean(),
                   bound[static_cast<std::size_t>(p)].mean(),
                   e.mean() / err[0].mean()});
  }
  table.print(std::cout);
  std::cout << "\nPaper basis (Levanon '98; Chan & Towers '92): accumulated "
               "measurements from successive passes support iterative WLS "
               "and shrink the error — the mechanism OAQ exploits.\n";
  return 0;
}
