// E19 — QoS under load: concurrent signals contending for the plane's
// computation resources (multi-target campaign engine).
//
// The paper's evaluation treats one signal at a time. Here emitters arrive
// as a Poisson stream over a k = 9 plane; satellites serialize their
// geolocation computations (mean 1 min, capped at 2 min — a deliberately
// heavy payload to expose contention). As load grows, queueing eats into
// the window of opportunity and the sequential-dual share erodes.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "oaq/campaign.hpp"

using namespace oaq;

int main(int argc, char** argv) {
  // Optional overrides: ext_load_curve [replications] [jobs]. Extra
  // replications tighten every row's confidence interval; the parallel
  // engine spreads them across jobs workers (0 = auto). Row statistics
  // are jobs-invariant.
  const int replications = argc > 1 ? std::atoi(argv[1]) : 1;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 0;
  std::cout << "=== QoS vs signal load (k = 9, tau = 5, computation mean "
               "1 min cap 2 min, 100-hour campaigns";
  if (replications > 1) std::cout << " x " << replications;
  std::cout << ") ===\n\n";
  TablePrinter table({"signals/hour", "signals", "P(Y>=2)", "P(missed)",
                      "mean latency min", "contended", "mean queue s"},
                     3);
  for (const double per_hour : {1.0, 5.0, 15.0, 30.0, 60.0, 120.0}) {
    CampaignConfig cfg;
    cfg.k = 9;
    cfg.protocol.tau = Duration::minutes(5);
    cfg.protocol.delta = Duration::seconds(12);
    cfg.protocol.tg = Duration::seconds(6);
    cfg.protocol.nu = Rate::per_minute(1.0);
    cfg.protocol.computation_cap = Duration::minutes(2);
    cfg.duration_distribution =
        std::make_shared<ExponentialDuration>(Rate::per_minute(0.2));
    cfg.signal_arrival_rate = Rate::per_hour(per_hour);
    cfg.horizon = Duration::hours(100);
    cfg.seed = 2024;
    cfg.replications = replications;
    cfg.jobs = jobs;
    const auto r = run_campaign(cfg);
    table.add_row({per_hour, static_cast<long long>(r.signals),
                   r.tail(QosLevel::kSequentialDual),
                   r.probability(QosLevel::kMissed), r.mean_latency_min,
                   static_cast<long long>(r.contended_computations),
                   r.mean_queueing_delay_s});
  }
  table.print(std::cout);
  std::cout << "\nReading: the protocol's delivery guarantee holds at every "
               "load (no signal that was detected goes unreported), but "
               "compute contention erodes the high-end share — capacity "
               "planning for the payload processor is part of QoS.\n";
  return 0;
}
