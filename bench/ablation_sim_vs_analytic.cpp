// E10 — Model validation (not in the paper): the event-driven protocol
// simulator, run under the analytic model's assumptions (δ = Tg = 0,
// Exp(ν) computations), reproduces the closed-form P(Y = y | k).
#include <cstdlib>
#include <iostream>

#include "analytic/qos_model.hpp"
#include "common/table.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

int main(int argc, char** argv) {
  // Optional worker-count override: ablation_sim_vs_analytic [jobs];
  // 0 = auto (OAQ_JOBS env, else all cores). Results are jobs-invariant.
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 0;
  std::cout << "=== Ablation: protocol Monte-Carlo vs closed-form model "
               "(tau = 5, mu = 0.5, nu = 30, 20000 episodes/cell) ===\n\n";
  QosModelParams p;
  const QosModel model(PlaneGeometry{}, p);

  TablePrinter table({"k", "scheme", "y", "analytic", "simulated", "abs err"},
                     4);
  double worst = 0.0;
  for (int k : {9, 10, 11, 12, 14}) {
    for (const bool oaq : {true, false}) {
      QosSimulationConfig cfg;
      cfg.k = k;
      cfg.opportunity_adaptive = oaq;
      cfg.episodes = 20000;
      cfg.seed = 4242;
      cfg.mu = p.mu;
      cfg.protocol.tau = p.tau;
      cfg.protocol.delta = Duration::zero();
      cfg.protocol.tg = Duration::zero();
      cfg.protocol.nu = p.nu;
      cfg.jobs = jobs;
      const auto sim = simulate_qos(cfg);
      const auto ana =
          model.conditional_pmf(k, oaq ? Scheme::kOaq : Scheme::kBaq);
      for (int y = 0; y <= 3; ++y) {
        const double a = ana[static_cast<std::size_t>(y)];
        const double s = sim.level_pmf.probability(y);
        if (a < 1e-9 && s < 1e-9) continue;
        worst = std::max(worst, std::abs(a - s));
        table.add_row({static_cast<long long>(k),
                       std::string(oaq ? "OAQ" : "BAQ"),
                       static_cast<long long>(y), a, s, std::abs(a - s)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nworst |analytic - simulated| = " << worst
            << " (Monte-Carlo noise at 20000 episodes is ~0.01)\n";
  return 0;
}
