// Global heap-allocation counter for bench binaries (ISSUE 3).
//
// Linking alloc_counter.cpp into a binary replaces the global operator
// new/delete with malloc/free wrappers that bump an atomic counter per
// allocation. Bench-only: the library itself is never built with this —
// it exists to *prove* the steady-state zero-allocation claim of the
// pooled DES kernel, not to instrument production runs.
#pragma once

#include <cstdint>

namespace oaq::benchutil {

/// Number of global operator-new calls since process start. Only counts
/// when alloc_counter.cpp is linked into the binary; the delta across a
/// code region is that region's allocation count (single-threaded use).
[[nodiscard]] std::uint64_t allocation_count() noexcept;

}  // namespace oaq::benchutil
