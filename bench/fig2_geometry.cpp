// E2 — Figures 2 & 5 + Eq. (1): geometric orientation of a plane's
// footprint trajectory as capacity degrades, cross-checked against true
// orbital geometry (pass prediction on a polar plane).
#include <iostream>

#include "analytic/geometry.hpp"
#include "common/table.hpp"
#include "orbit/visibility.hpp"

using namespace oaq;

int main() {
  const PlaneGeometry g;  // θ = 90 min, Tc = 9 min

  std::cout << "=== Figures 2 & 5: Tr[k], L1[k], L2[k], I[k] (theta = 90, "
               "Tc = 9) ===\n\n";
  TablePrinter table({"k", "Tr[k] min", "L1[k] min", "L2[k] min", "I[k]",
                      "orientation"},
                     3);
  table.set_caption("Analytic geometry (paper: underlapping when k < 11)");
  for (int k = 14; k >= 6; --k) {
    table.add_row({static_cast<long long>(k), g.tr(k).to_minutes(),
                   g.l1(k).to_minutes(), g.l2(k).to_minutes(),
                   static_cast<long long>(g.indicator(k)),
                   std::string(g.overlapping(k) ? "overlapping"
                                                : "underlapping")});
  }
  table.print(std::cout);

  std::cout << "\nCross-check against true orbital geometry (polar plane, "
               "equatorial centerline target):\n";
  TablePrinter check({"k", "empirical Tr", "empirical Tc", "multi-cov share",
                      "gap share"},
                     3);
  for (int k : {14, 12, 11, 10, 9}) {
    ConstellationDesign d;
    d.num_planes = 1;
    d.sats_per_plane = k;
    d.inclination_rad = deg2rad(90.0);
    const Constellation c(d);
    const PassPredictor pred(c);
    const auto passes = pred.passes(GeoPoint{0.0, 0.0}, Duration::zero(),
                                    Duration::minutes(180));
    const auto timeline = PassPredictor::multiplicity_timeline(
        passes, Duration::zero(), Duration::minutes(180));
    const auto stats = PassPredictor::summarize(timeline);
    double tr_emp = 0.0, tc_emp = 0.0;
    int n = 0, m = 0;
    for (std::size_t i = 2; i + 1 < passes.size(); ++i, ++n) {
      tr_emp += (passes[i].start - passes[i - 1].start).to_minutes();
    }
    for (std::size_t i = 1; i + 1 < passes.size(); ++i, ++m) {
      tc_emp += passes[i].duration().to_minutes();
    }
    check.add_row({static_cast<long long>(k), n ? tr_emp / n : 0.0,
                   m ? tc_emp / m : 0.0, stats.multiple / stats.horizon,
                   stats.uncovered / stats.horizon});
  }
  check.print(std::cout);
  std::cout << "\n(expected: multi-coverage share (Tc-Tr)/Tr for k >= 11, "
               "gap share (Tr-Tc)/Tr for k <= 10)\n";
  return 0;
}
