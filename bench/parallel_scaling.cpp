// Parallel-execution scaling harness (tentpole of the parallel engine PR).
//
// Runs the same simulate_qos experiment at jobs = 1, 2, 4, 8, verifies the
// results are bit-identical across thread counts, and reports episodes/sec
// and speedup per worker count — as a human table and as one
// machine-readable summary line prefixed "BENCH_JSON " (the repo's
// BENCH_*.json data format) for tracking across commits.
//
//   parallel_scaling [episodes] [seed]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

QosSimulationConfig scaling_config(int episodes, std::uint64_t seed) {
  // Realistic-delay protocol (nonzero delta/Tg, bounded computation): the
  // configuration every extension bench sweeps around.
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = seed;
  cfg.mu = Rate::per_minute(0.3);
  cfg.protocol.tau = Duration::minutes(5);
  cfg.protocol.delta = Duration::seconds(12);
  cfg.protocol.tg = Duration::seconds(6);
  cfg.protocol.nu = Rate::per_minute(30);
  cfg.protocol.computation_cap = Duration::seconds(6);
  return cfg;
}

bool identical(const SimulatedQos& a, const SimulatedQos& b) {
  return a.level_pmf.weights() == b.level_pmf.weights() &&
         a.duplicates == b.duplicates && a.unresolved == b.unresolved &&
         a.untimely == b.untimely &&
         a.mean_chain_length == b.mean_chain_length &&
         a.max_chain_length == b.max_chain_length;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 20000;
  const auto seed =
      static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 99);

  // hardware_jobs() is the detected concurrency (it IS 1 on a single-core
  // runner — not a probe failure); the pool floor still provides extra
  // executors there, so jobs > 1 runs remain multi-threaded but cannot
  // speed up. Record both numbers and flag the speedup columns as
  // meaningless on a single core rather than letting a ~1.0× "regression"
  // alarm anyone tracking BENCH json across heterogeneous runners.
  const int hw = hardware_jobs();
  const int effective_executors = ThreadPool::global().size() + 1;
  const bool single_core = hw <= 1;

  std::cout << "=== Monte-Carlo parallel scaling (" << episodes
            << " episodes, k = 9, hardware concurrency " << hw
            << ", pool executors " << effective_executors << ") ===\n\n";
  if (single_core) {
    std::cout << "NOTE: single-core runner — speedup columns measure "
                 "threading overhead only;\nonly the bit-identical check "
                 "gates this bench here.\n\n";
  }

  TablePrinter table({"jobs", "seconds", "episodes/sec", "speedup"}, 3);
  std::ostringstream json;
  json << "{\"bench\":\"parallel_scaling\",\"episodes\":" << episodes
       << ",\"hardware_jobs\":" << hw
       << ",\"effective_executors\":" << effective_executors
       << ",\"single_core\":" << (single_core ? "true" : "false")
       << ",\"speedup_meaningful\":" << (single_core ? "false" : "true")
       << ",\"results\":[";

  SimulatedQos reference;
  double serial_seconds = 0.0;
  bool all_identical = true;
  bool first = true;
  for (const int jobs : {1, 2, 4, 8}) {
    auto cfg = scaling_config(episodes, seed);
    cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto sim = simulate_qos(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (jobs == 1) {
      reference = sim;
      serial_seconds = seconds;
    } else if (!identical(sim, reference)) {
      all_identical = false;
    }
    const double eps = static_cast<double>(episodes) / seconds;
    const double speedup = serial_seconds / seconds;
    table.add_row({static_cast<long long>(jobs), seconds, eps, speedup});
    json << (first ? "" : ",") << "{\"jobs\":" << jobs
         << ",\"seconds\":" << seconds << ",\"episodes_per_sec\":" << eps
         << ",\"speedup\":" << speedup << "}";
    first = false;
  }
  json << "],\"bit_identical\":" << (all_identical ? "true" : "false") << "}";

  table.print(std::cout);
  std::cout << "\nbit-identical across jobs: "
            << (all_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  std::cout << "BENCH_JSON " << json.str() << "\n";
  return all_identical ? 0 : 1;
}
