// E17 — Sensitivity to the exponential assumption: the paper assumes
// Exp(µ) signal durations "a fairly typical assumption in performance
// modeling". How do the QoS curves move under deterministic, bursty
// (Weibull shape 0.5) and ageing (Weibull shape 3) duration laws with the
// SAME mean? The analytic model generalizes (only the survival function
// enters); the Monte-Carlo protocol simulation cross-checks it.
#include <cstdlib>
#include <iostream>

#include "analytic/qos_model.hpp"
#include "common/table.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

namespace {

std::shared_ptr<const DurationDistribution> make_law(const std::string& name,
                                                     Duration mean) {
  if (name == "exponential") {
    return std::make_shared<ExponentialDuration>(
        Rate::per_second(1.0 / mean.to_seconds()));
  }
  if (name == "deterministic") {
    return std::make_shared<DeterministicDuration>(mean);
  }
  if (name == "weibull-0.5") {
    return std::make_shared<WeibullDuration>(
        WeibullDuration::with_mean(0.5, mean));
  }
  return std::make_shared<WeibullDuration>(
      WeibullDuration::with_mean(3.0, mean));
}

}  // namespace

int main(int argc, char** argv) {
  // Optional worker-count override: ext_distribution_sensitivity [jobs];
  // 0 = auto (OAQ_JOBS env, else all cores). Results are jobs-invariant.
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 0;
  std::cout << "=== Sensitivity to the signal-duration law (equal mean "
               "2 min, tau = 5, nu = 30) ===\n\n";
  const Duration mean = Duration::minutes(2);
  const auto nu = std::make_shared<ExponentialDuration>(Rate::per_minute(30));

  TablePrinter table({"duration law", "P(Y=3|12) analytic", "P(Y=3|12) sim",
                      "P(Y=2|9) analytic", "P(Y=2|9) sim"},
                     4);
  for (const std::string name :
       {"exponential", "deterministic", "weibull-0.5", "weibull-3"}) {
    const auto law = make_law(name, mean);
    const QosModel model(PlaneGeometry{}, Duration::minutes(5), law, nu);

    auto simulate = [&](int k) {
      QosSimulationConfig cfg;
      cfg.k = k;
      cfg.episodes = 12000;
      cfg.seed = 99;
      cfg.duration_distribution = law;
      cfg.protocol.tau = Duration::minutes(5);
      cfg.protocol.delta = Duration::zero();
      cfg.protocol.tg = Duration::zero();
      cfg.protocol.nu = Rate::per_minute(30);
      cfg.jobs = jobs;
      return simulate_qos(cfg);
    };
    const auto sim12 = simulate(12);
    const auto sim9 = simulate(9);
    table.add_row({name, model.conditional(12, 3, Scheme::kOaq),
                   sim12.probability(QosLevel::kSimultaneousDual),
                   model.conditional(9, 2, Scheme::kOaq),
                   sim9.probability(QosLevel::kSequentialDual)});
  }
  table.print(std::cout);
  std::cout << "\nReading: at equal mean, burstier traffic (many short "
               "signals) shrinks the window of opportunity and OAQ's "
               "high-end share; ageing laws widen it. The analytic model "
               "tracks the protocol simulation in every regime — the "
               "paper's conclusions are not an artifact of the "
               "exponential assumption.\n";
  return 0;
}
