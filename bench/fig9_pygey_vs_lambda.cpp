// E7 — Figure 9: the QoS measure P(Y >= y) for y = 1, 2, 3 versus the
// node-failure rate λ, OAQ against BAQ (τ = 5, µ = 0.2, η = 12,
// φ = 30000 h).
//
// Paper targets: at λ = 1e-5, OAQ P(Y>=2) ≈ 0.75 vs BAQ ≈ 0.33; at
// λ = 1e-4, OAQ ≈ 0.41 vs BAQ ≈ 0.04; P(Y>=1) = 1 for both throughout.
#include <iostream>

#include "analytic/measure.hpp"
#include "common/numeric.hpp"
#include "common/table.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Figure 9: P(Y >= y) vs lambda (tau = 5, mu = 0.2, "
               "eta = 12, phi = 30000 h) ===\n\n";
  QosModelParams p;
  p.tau = Duration::minutes(5);
  p.mu = Rate::per_minute(0.2);
  p.nu = Rate::per_minute(30);
  const QosModel model(PlaneGeometry{}, p);

  SeriesPrinter series("lambda",
                       {"OAQ y>=1", "OAQ y>=2", "OAQ y>=3", "BAQ y>=1",
                        "BAQ y>=2", "BAQ y>=3"});
  for (const double lam : linspace(1e-5, 1e-4, 10)) {
    PlaneDependability dep;
    dep.satellite_failure_rate = Rate::per_hour(lam);
    // Reconstructed SAN configuration for the eta = 12 experiments (the
    // paper's SAN internals are unpublished): a slow replenishment
    // pipeline lets the plane drift 1-2 satellites below the threshold at
    // high lambda, which is what drives BAQ toward zero in Fig. 9 — the
    // paper's central point. See EXPERIMENTS.md.
    dep.policy.ground_threshold = 12;
    dep.policy.launch_lead_time = Duration::hours(25000);
    dep.policy.expedited_lead_time = Duration::hours(1700);
    const auto pk = plane_capacity_pmf(dep, 42, 600);
    const auto oaq = qos_measure(model, pk, Scheme::kOaq);
    const auto baq = qos_measure(model, pk, Scheme::kBaq);
    series.add_point(lam, {oaq.tail(1), oaq.tail(2), oaq.tail(3), baq.tail(1),
                           baq.tail(2), baq.tail(3)});
  }
  series.print(std::cout);
  std::cout << "\nPaper reference points: OAQ P(Y>=2) 0.75 -> 0.41 and BAQ "
               "0.33 -> 0.04 across the lambda domain; P(Y>=1) = 1 for "
               "both schemes.\n";
  return 0;
}
