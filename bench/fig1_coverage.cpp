// E1 — Figure 1: the reference RF geolocation constellation offers full
// Earth coverage, with the overlapped-footprint share growing from the
// equator to the poles (SOAP-substitute coverage analysis).
#include <iostream>

#include "common/table.hpp"
#include "orbit/coverage.hpp"

using namespace oaq;

int main() {
  const auto constellation = Constellation::reference();
  const CoverageAnalyzer analyzer(constellation);

  std::cout << "=== Figure 1: reference constellation coverage (98 active "
               "satellites, 7 planes x 14) ===\n\n";

  const auto global = analyzer.global(Duration::zero(), 36, 144);
  std::cout << "global covered fraction : " << global.covered_fraction << '\n'
            << "global >=2-fold fraction: " << global.overlap_fraction << '\n'
            << "worst band gap fraction : " << global.max_gap_fraction
            << "\n\n";

  TablePrinter table({"lat_deg", "covered", "overlap(>=2)", "mean_mult"}, 3);
  table.set_caption(
      "Time-averaged coverage by latitude band (paper: overlap lowest at "
      "the equator, highest at the poles; ~30N moderately high)");
  for (const auto& band : analyzer.by_latitude_time_averaged(6, 18, 144)) {
    table.add_row({band.lat_deg, band.covered_fraction, band.overlap_fraction,
                   band.mean_multiplicity});
  }
  table.print(std::cout);

  std::cout << "\nDegraded comparison (every plane at k = 9, underlapping):\n";
  auto degraded = Constellation::reference();
  for (int j = 0; j < degraded.num_planes(); ++j) {
    degraded.plane(j).set_active_count(9);
  }
  const auto dg = CoverageAnalyzer(degraded).global(Duration::zero(), 36, 144);
  std::cout << "covered fraction        : " << dg.covered_fraction << '\n'
            << ">=2-fold fraction       : " << dg.overlap_fraction << '\n';
  return 0;
}
