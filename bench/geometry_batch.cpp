// Batched geometry engine harness (ISSUE 4 tentpole): scalar-vs-batched
// Kepler margin-sweep throughput, solve-only throughput, the warm-up wall
// of private per-shard visibility caches vs the seeded shared cache, and
// the frozen cache's steady-state allocation count. Prints a human table
// plus one BENCH_JSON line (aggregated into BENCH_4.json by
// tools/run_bench.sh).
//
//   geometry_batch [samples] [reps]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "alloc_counter.hpp"
#include "common/table.hpp"
#include "geom/geodesy.hpp"
#include "oaq/montecarlo.hpp"
#include "orbit/batch_kepler.hpp"
#include "orbit/shared_visibility_cache.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Constellation bench_constellation() {
  ConstellationDesign d;
  d.num_planes = 2;
  d.sats_per_plane = 8;
  d.inclination_rad = deg2rad(85.0);
  return Constellation(d);
}

struct ThroughputPair {
  double scalar_per_sec = 0.0;
  double batch_per_sec = 0.0;
  [[nodiscard]] double speedup() const { return batch_per_sec / scalar_per_sec; }
};

/// The PassPredictor hot loop, both ways: the pre-batch scalar chain
/// (subsatellite_point -> central_angle per sample, via the public
/// propagator API) against BatchKepler::coverage_margins over the same
/// sample grid. Samples/sec on an eccentric J2 orbit — the most expensive
/// configuration the sweep meets.
ThroughputPair margin_sweep_throughput(int samples, int reps) {
  KeplerianElements el;
  el.semi_major_km = 6921.0;
  el.eccentricity = 0.01;
  el.inclination_rad = deg2rad(85.0);
  el.raan_rad = 0.7;
  el.arg_perigee_rad = 0.3;
  const Orbit orbit = Orbit(el).with_j2();
  const BatchKepler batch(orbit);
  const GeoPoint target = GeoPoint::from_degrees(12.0, 34.0);
  const double psi = deg2rad(20.0);

  std::vector<double> t(static_cast<std::size_t>(samples));
  std::vector<double> m(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    t[static_cast<std::size_t>(i)] = 7.3 * static_cast<double>(i);
  }

  ThroughputPair out;
  double sink = 0.0;
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < samples; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const GeoPoint ssp =
          orbit.subsatellite_point(Duration::seconds(t[idx]), false);
      m[idx] = psi - central_angle(ssp, target);
    }
    sink += m.back();
  }
  out.scalar_per_sec =
      static_cast<double>(samples) * reps / seconds_since(t0);

  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    batch.coverage_margins(target, psi, false, t.data(), t.size(), m.data());
    sink += m.back();
  }
  out.batch_per_sec = static_cast<double>(samples) * reps / seconds_since(t0);
  if (sink == 0.0) std::abort();  // defeat over-eager optimizers
  return out;
}

/// Kepler-equation solves/sec, scalar loop vs the masked-Newton batch.
/// Informational (no gate): the batch replicates the scalar iteration
/// bit-for-bit, so the win here is loop structure, not fewer iterations.
ThroughputPair solve_throughput(int samples, int reps) {
  const double e = 0.3;
  std::vector<double> mean(static_cast<std::size_t>(samples));
  std::vector<double> ecc(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    mean[static_cast<std::size_t>(i)] = 0.37 * static_cast<double>(i);
  }

  ThroughputPair out;
  double sink = 0.0;
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < mean.size(); ++i) {
      ecc[i] = solve_kepler(mean[i], e);
    }
    sink += ecc.back();
  }
  out.scalar_per_sec =
      static_cast<double>(samples) * reps / seconds_since(t0);

  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    BatchKepler::solve(mean.data(), mean.size(), e, ecc.data());
    sink += ecc.back();
  }
  out.batch_per_sec = static_cast<double>(samples) * reps / seconds_since(t0);
  if (sink == 0.0) std::abort();
  return out;
}

struct WarmupRow {
  int jobs = 0;
  double legacy_s = 0.0;
  double shared_s = 0.0;
  [[nodiscard]] double speedup() const { return legacy_s / shared_s; }
};

/// Wall clock of a geometric Monte-Carlo run whose cost is dominated by
/// cache warm-up: with private caches every one of the 64 shards redoes
/// the same quantum-window Kepler sweep; the shared cache seeds it once.
/// The ratio is work elimination (64 sweeps -> 1), so it holds on a
/// single-core runner too.
WarmupRow warmup_wall(const Constellation& c, int jobs) {
  QosSimulationConfig cfg;
  cfg.constellation = &c;
  cfg.target = GeoPoint{0.0, 0.0};
  cfg.episodes = 2 * kQosEpisodeShards;  // every shard participates
  cfg.seed = 7;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.jobs = jobs;

  WarmupRow row;
  row.jobs = jobs;
  // Untimed warm-up so one-time costs (thread-pool spin-up at this jobs
  // level, page faults) don't land in whichever timed run goes first.
  cfg.shared_visibility = false;
  (void)simulate_qos(cfg);

  auto t0 = Clock::now();
  (void)simulate_qos(cfg);
  row.legacy_s = seconds_since(t0);

  cfg.shared_visibility = true;
  t0 = Clock::now();
  (void)simulate_qos(cfg);
  row.shared_s = seconds_since(t0);
  return row;
}

/// Steady-state allocations per frozen-cache query: seed, freeze, warm the
/// output vector's capacity once, then count operator-new calls across
/// repeated sub-window queries (all frozen hits). The acceptance gate is
/// exactly zero.
std::uint64_t frozen_query_allocs(const Constellation& c, int queries) {
  SharedVisibilityCache::Options opt;
  opt.window_quantum = Duration::hours(4);
  SharedVisibilityCache cache(c, false, opt);
  const GeoPoint target{0.0, 0.0};
  cache.seed_window(target, Duration::zero(), opt.window_quantum);
  cache.freeze();

  VisibilityCacheStats stats;
  std::vector<Pass> out;
  std::size_t sink = 0;
  // Jittered sub-windows of the seeded quantum — the Monte-Carlo access
  // pattern; every one quantizes to the frozen entry.
  std::uint64_t salt = 1;
  const auto window = [&salt] {
    salt = salt * 2862933555777941757ull + 3037000493ull;
    const double from_min = static_cast<double>(salt % 120);
    return std::pair(Duration::minutes(from_min),
                     Duration::minutes(from_min + 90.0));
  };
  for (int q = 0; q < 16; ++q) {  // warm-up: grows `out` to peak capacity
    const auto [from, to] = window();
    cache.passes_window_into(target, from, to, out, &stats);
    sink += out.size();
  }
  const std::uint64_t before = benchutil::allocation_count();
  for (int q = 0; q < queries; ++q) {
    const auto [from, to] = window();
    cache.passes_window_into(target, from, to, out, &stats);
    sink += out.size();
  }
  if (sink == 0) std::abort();
  return benchutil::allocation_count() - before;
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 65536;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 20;

  std::cout << "=== Batched Kepler geometry engine (" << samples
            << " samples x " << reps << " reps) ===\n\n";

  const ThroughputPair margins = margin_sweep_throughput(samples, reps);
  const ThroughputPair solves = solve_throughput(samples, reps);

  const Constellation c = bench_constellation();
  std::vector<WarmupRow> warmup;
  for (const int jobs : {1, 4, 8}) warmup.push_back(warmup_wall(c, jobs));
  const std::uint64_t steady_allocs = frozen_query_allocs(c, 4096);

  TablePrinter kernels({"kernel", "scalar/s", "batched/s", "speedup"}, 2);
  kernels.add_row({std::string("margin sweep"), margins.scalar_per_sec,
                   margins.batch_per_sec, margins.speedup()});
  kernels.add_row({std::string("kepler solve"), solves.scalar_per_sec,
                   solves.batch_per_sec, solves.speedup()});
  kernels.print(std::cout);

  std::cout << "\n";
  TablePrinter walls({"jobs", "private caches (s)", "shared cache (s)",
                      "speedup"},
                     3);
  for (const auto& row : warmup) {
    walls.add_row({static_cast<long long>(row.jobs), row.legacy_s,
                   row.shared_s, row.speedup()});
  }
  walls.print(std::cout);
  std::cout << "\nfrozen-cache steady-state allocations over 4096 queries: "
            << steady_allocs << "\n";

  std::ostringstream json;
  json << "{\"bench\":\"geometry_batch\",\"samples\":" << samples
       << ",\"reps\":" << reps
       << ",\"margin_sweep\":{\"scalar_samples_per_sec\":"
       << margins.scalar_per_sec
       << ",\"batch_samples_per_sec\":" << margins.batch_per_sec
       << ",\"speedup\":" << margins.speedup()
       << "},\"kepler_solve\":{\"scalar_solves_per_sec\":"
       << solves.scalar_per_sec
       << ",\"batch_solves_per_sec\":" << solves.batch_per_sec
       << ",\"speedup\":" << solves.speedup() << "},\"warmup\":[";
  for (std::size_t i = 0; i < warmup.size(); ++i) {
    const auto& row = warmup[i];
    json << (i > 0 ? "," : "") << "{\"jobs\":" << row.jobs
         << ",\"private_s\":" << row.legacy_s
         << ",\"shared_s\":" << row.shared_s
         << ",\"speedup\":" << row.speedup() << "}";
  }
  json << "],\"frozen_steady_state_allocs\":" << steady_allocs << "}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Regression gates (ISSUE 4 acceptance): >= 2x batched margin-sweep
  // throughput, >= 2x lower warm-up wall at jobs 4 with the shared cache,
  // zero steady-state allocations on the frozen read path.
  bool ok = true;
  if (margins.speedup() < 2.0) {
    std::cout << "REGRESSION: margin-sweep speedup " << margins.speedup()
              << " < 2.0\n";
    ok = false;
  }
  const auto jobs4 =
      std::find_if(warmup.begin(), warmup.end(),
                   [](const WarmupRow& r) { return r.jobs == 4; });
  if (jobs4 == warmup.end() || jobs4->speedup() < 2.0) {
    std::cout << "REGRESSION: shared-cache warm-up speedup at jobs 4 "
              << (jobs4 == warmup.end() ? 0.0 : jobs4->speedup())
              << " < 2.0\n";
    ok = false;
  }
  if (steady_allocs != 0) {
    std::cout << "REGRESSION: frozen cache allocated " << steady_allocs
              << " times in steady state\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
