// E13 — google-benchmark microbenchmarks of the library's hot kernels.
#include <benchmark/benchmark.h>

#include "analytic/qos_model.hpp"
#include "common/numeric.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/plane_capacity.hpp"
#include "geoloc/wls.hpp"
#include "oaq/episode.hpp"
#include "oaq/montecarlo.hpp"
#include "legacy_simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orbit/kepler.hpp"
#include "orbit/visibility_cache.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace oaq;

void BM_OrbitPropagationCircular(benchmark::State& state) {
  const auto orbit = Orbit::circular_with_period(Duration::minutes(90),
                                                 deg2rad(85.0), 0.3, 0.7);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(orbit.position_eci(Duration::seconds(t)));
  }
}
BENCHMARK(BM_OrbitPropagationCircular);

void BM_OrbitPropagationElliptical(benchmark::State& state) {
  KeplerianElements el;
  el.semi_major_km = 8000.0;
  el.eccentricity = 0.2;
  el.inclination_rad = 0.5;
  const Orbit orbit(el);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(orbit.state_at(Duration::seconds(t)));
  }
}
BENCHMARK(BM_OrbitPropagationElliptical);

void BM_AdaptiveSimpson(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(integrate(
        [](double x) { return std::exp(-0.5 * x) * (1.0 - std::exp(-30.0 * (5.0 - x))); },
        0.0, 5.0, 1e-12));
  }
}
BENCHMARK(BM_AdaptiveSimpson);

void BM_QosConditionalPmf(benchmark::State& state) {
  const QosModel model(PlaneGeometry{}, QosModelParams{});
  int k = 6;
  for (auto _ : state) {
    k = k == 16 ? 6 : k + 1;
    benchmark::DoNotOptimize(model.conditional_pmf(k, Scheme::kOaq));
  }
}
BENCHMARK(BM_QosConditionalPmf);

void BM_PlaneCapacityCycle(benchmark::State& state) {
  PlaneDependability model;
  model.satellite_failure_rate = Rate::per_hour(1e-4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plane_capacity_pmf(model, ++seed, 10));
  }
}
BENCHMARK(BM_PlaneCapacityCycle);

void BM_ProtocolEpisode(benchmark::State& state) {
  const AnalyticSchedule sched(PlaneGeometry{}, 9, Duration::minutes(1));
  ProtocolConfig cfg;
  cfg.delta = Duration::zero();
  cfg.tg = Duration::zero();
  const EpisodeEngine engine(sched, cfg, true);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(
        TimePoint::at(Duration::minutes(60)), Duration::minutes(4), rng));
  }
}
BENCHMARK(BM_ProtocolEpisode);

void BM_WlsSolve(benchmark::State& state) {
  Emitter emitter;
  emitter.position = GeoPoint::from_degrees(30.0, 31.0);
  emitter.carrier_hz = 400e6;
  emitter.start = TimePoint::origin();
  const DopplerModel model(true);
  Rng rng(1);
  const Orbit orbit = Orbit::circular_with_period(Duration::minutes(90),
                                                  deg2rad(85.0),
                                                  deg2rad(30.0), 0.0);
  const auto batch = model.take_measurements(
      orbit, {0, 0}, emitter,
      measurement_epochs(Duration::minutes(5), Duration::minutes(13), 25),
      deg2rad(18.0), 5.0, rng);
  const WlsGeolocator solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(
        batch, GeoPoint::from_degrees(29.0, 30.0), 400e6));
  }
}
BENCHMARK(BM_WlsSolve);

// Dispatch + merge cost of the thread-pool reduction on a near-trivial map
// (integer range sum, 16 shards). Serial (jobs = 1) vs pooled runs bound
// the overhead a Monte-Carlo caller pays per parallel_reduce invocation.
void BM_ParallelReduceOverhead(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto sum = parallel_reduce<std::int64_t>(
        4096, 16, jobs,
        [](std::int64_t begin, std::int64_t end, int) {
          std::int64_t s = 0;
          for (std::int64_t i = begin; i < end; ++i) s += i;
          return s;
        },
        [](std::int64_t& into, std::int64_t from) { into += from; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ParallelReduceOverhead)->Arg(1)->Arg(2)->Arg(4);

// One episode through the full simulate_qos path (per-episode RNG
// derivation, schedule construction, protocol run, accumulator fold) —
// the unit of work the parallel engine shards.
void BM_SimulateQosStep(benchmark::State& state) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 1;
  cfg.jobs = 1;
  cfg.protocol.delta = Duration::zero();
  cfg.protocol.tg = Duration::zero();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(simulate_qos(cfg));
  }
}
BENCHMARK(BM_SimulateQosStep);

// Same step with every observer attached (trace + metrics + profile).
// Compare against BM_SimulateQosStep: the plain run IS the disabled-
// tracer case (null sinks, one branch per recording site) and must stay
// within the < 2% overhead budget of the pre-observability engine; this
// variant measures the cost of turning everything on.
void BM_SimulateQosStepTraced(benchmark::State& state) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = 1;
  cfg.jobs = 1;
  cfg.protocol.delta = Duration::zero();
  cfg.protocol.tg = Duration::zero();
  TraceCollector trace(1 << 12);
  MetricsRegistry metrics;
  ReduceProfile profile;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  cfg.profile = &profile;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(simulate_qos(cfg));
  }
}
BENCHMARK(BM_SimulateQosStepTraced);

// Raw ring-buffer push: the per-event cost an *enabled* tracer adds to
// the protocol hot path.
void BM_TracePush(benchmark::State& state) {
  ShardTraceBuffer buf(1 << 12);
  TraceEvent ev;
  ev.type = TraceEventType::kChainHop;
  std::int64_t i = 0;
  for (auto _ : state) {
    ev.episode = ++i;
    buf.push(ev);
    benchmark::DoNotOptimize(buf.recorded());
  }
}
BENCHMARK(BM_TracePush);

// Counter increment through the registry map — the per-record cost of
// enabled harness metrics.
void BM_MetricsAdd(benchmark::State& state) {
  MetricsRegistry m;
  for (auto _ : state) {
    m.add("xlink.sent");
    benchmark::DoNotOptimize(m.counter("xlink.sent"));
  }
}
BENCHMARK(BM_MetricsAdd);

// Schedule+fire round trip through a DES kernel (ISSUE 3): a batch of
// timers armed and drained per iteration. Template lets the same workload
// hit the pooled kernel and the seed-era shared_ptr kernel.
template <typename Sim>
void BM_DesScheduleFire(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Sim sim;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int b = 0; b < batch; ++b) {
      sim.schedule_after(Duration::seconds(static_cast<double>(b % 32)),
                         [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DesScheduleFire<Simulator>)->Arg(256);
BENCHMARK(BM_DesScheduleFire<legacy::Simulator>)->Arg(256);

// Cancel-dominated workload: arm a batch, cancel half (the protocol's
// wait-deadline pattern), drain the rest. The pooled kernel tombstones in
// O(1); the legacy kernel pays a hash erase plus queue-top skipping.
template <typename Sim>
void BM_DesCancelHeavy(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Sim sim;
  std::uint64_t fired = 0;
  std::vector<decltype(sim.schedule_after(Duration::zero(),
                                          typename Sim::Callback{}))>
      ids;
  ids.reserve(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    ids.clear();
    for (int b = 0; b < batch; ++b) {
      ids.push_back(sim.schedule_after(
          Duration::seconds(static_cast<double>(b % 32)), [&fired] { ++fired; }));
    }
    for (int b = 0; b < batch; b += 2) {
      sim.cancel(ids[static_cast<std::size_t>(b)]);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_DesCancelHeavy<Simulator>)->Arg(256);
BENCHMARK(BM_DesCancelHeavy<legacy::Simulator>)->Arg(256);

// Pass-window queries through a warm VisibilityCache vs a cold
// PassPredictor sweep — the per-episode geometry cost in geometric
// Monte-Carlo mode.
void BM_VisibilityCachedQuery(benchmark::State& state) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  const Constellation c(d);
  VisibilityCache cache(c);
  const GeoPoint target{0.0, 0.0};
  std::uint64_t salt = 1;
  for (auto _ : state) {
    salt = salt * 2862933555777941757ull + 3037000493ull;
    const auto from = Duration::minutes(static_cast<double>(salt % 180));
    benchmark::DoNotOptimize(
        cache.passes_window(target, from, from + Duration::minutes(90)));
  }
}
BENCHMARK(BM_VisibilityCachedQuery);

void BM_VisibilityUncachedQuery(benchmark::State& state) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  const Constellation c(d);
  const PassPredictor predictor(c);
  const GeoPoint target{0.0, 0.0};
  std::uint64_t salt = 1;
  for (auto _ : state) {
    salt = salt * 2862933555777941757ull + 3037000493ull;
    const auto from = Duration::minutes(static_cast<double>(salt % 180));
    benchmark::DoNotOptimize(
        predictor.passes(target, from, from + Duration::minutes(90)));
  }
}
BENCHMARK(BM_VisibilityUncachedQuery);

void BM_Xoshiro(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
