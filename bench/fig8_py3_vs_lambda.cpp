// E6 — Figure 8: P(Y = 3) as a function of the node-failure rate λ for the
// OAQ and BAQ schemes at µ = 0.2 and µ = 0.5 (τ = 5, η = 12, φ = 30000 h).
//
// Paper narrative: OAQ improves as µ drops (up to ~38% between µ = 0.5 and
// µ = 0.2 over the λ domain); BAQ is insensitive to µ; OAQ > BAQ
// throughout.
#include <iostream>

#include "analytic/measure.hpp"
#include "common/numeric.hpp"
#include "common/table.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

namespace {

QosModel make_model(double mu) {
  QosModelParams p;
  p.tau = Duration::minutes(5);
  p.mu = Rate::per_minute(mu);
  p.nu = Rate::per_minute(30);
  return QosModel(PlaneGeometry{}, p);
}

}  // namespace

int main() {
  std::cout << "=== Figure 8: P(Y = 3) vs lambda (tau = 5, eta = 12, "
               "phi = 30000 h) ===\n\n";
  const auto model_02 = make_model(0.2);
  const auto model_05 = make_model(0.5);

  SeriesPrinter series("lambda", {"OAQ mu=0.2", "OAQ mu=0.5", "BAQ mu=0.2",
                                  "BAQ mu=0.5"});
  double max_gain = 0.0;
  for (const double lam : linspace(1e-5, 1e-4, 10)) {
    PlaneDependability dep;
    dep.satellite_failure_rate = Rate::per_hour(lam);
    // Reconstructed SAN configuration for the eta = 12 experiments (the
    // paper's SAN internals are unpublished): a slow replenishment
    // pipeline lets the plane drift 1-2 satellites below the threshold at
    // high lambda, which is what drives BAQ toward zero in Fig. 9 — the
    // paper's central point. See EXPERIMENTS.md.
    dep.policy.ground_threshold = 12;
    dep.policy.launch_lead_time = Duration::hours(25000);
    dep.policy.expedited_lead_time = Duration::hours(1700);
    const auto pk = plane_capacity_pmf(dep, 42, 600);

    const double oaq02 = qos_measure(model_02, pk, Scheme::kOaq).at(3);
    const double oaq05 = qos_measure(model_05, pk, Scheme::kOaq).at(3);
    const double baq02 = qos_measure(model_02, pk, Scheme::kBaq).at(3);
    const double baq05 = qos_measure(model_05, pk, Scheme::kBaq).at(3);
    series.add_point(lam, {oaq02, oaq05, baq02, baq05});
    if (oaq05 > 0.0) max_gain = std::max(max_gain, oaq02 / oaq05 - 1.0);
  }
  series.print(std::cout);
  std::cout << "\nMax OAQ gain from mu = 0.5 -> 0.2 over the lambda domain: "
            << max_gain * 100.0 << "% (paper: up to 38%)\n"
            << "BAQ columns are identical by construction (paper: \"the "
               "same variation does not yield any differences\").\n";
  return 0;
}
