// E8 — §4.3: "We also evaluate the QoS measure as a function of τ. The
// results illustrate how the OAQ scheme achieves better QoS by taking full
// advantage of the 'time allowance'."
#include <iostream>

#include "analytic/measure.hpp"
#include "common/table.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

int main() {
  std::cout << "=== QoS vs deadline tau (mu = 0.2, nu = 30, lambda = 5e-5, "
               "eta = 12) ===\n\n";
  PlaneDependability dep;
  dep.satellite_failure_rate = Rate::per_hour(5e-5);
  dep.policy.ground_threshold = 12;
  dep.policy.launch_lead_time = Duration::hours(25000);
  dep.policy.expedited_lead_time = Duration::hours(1700);
  const auto pk = plane_capacity_pmf(dep, 42, 600);

  SeriesPrinter series("tau_min", {"OAQ P(Y>=3)", "BAQ P(Y>=3)",
                                   "OAQ P(Y>=2)", "BAQ P(Y>=2)"});
  for (double tau = 0.5; tau <= 8.51; tau += 0.5) {
    QosModelParams p;
    p.tau = Duration::minutes(tau);
    p.mu = Rate::per_minute(0.2);
    p.nu = Rate::per_minute(30);
    const QosModel model(PlaneGeometry{}, p);
    const auto oaq = qos_measure(model, pk, Scheme::kOaq);
    const auto baq = qos_measure(model, pk, Scheme::kBaq);
    series.add_point(tau, {oaq.tail(3), baq.tail(3), oaq.tail(2),
                           baq.tail(2)});
  }
  series.print(std::cout);
  std::cout << "\nExpected shape: OAQ grows steadily with the time "
               "allowance; BAQ saturates at the geometric ratio L2/L1 as "
               "soon as tau covers the computation time.\n";
  return 0;
}
