// E14 — Accuracy by coverage basis (grounds Table 1's ordering physically):
// measured geolocation error for
//   level 1: one single-satellite Doppler pass,
//   level 2: two sequential passes (sequential localization),
//   level 3: a simultaneous dual-satellite TDOA/FDOA snapshot window.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "geoloc/dual_fix.hpp"
#include "geoloc/sequential.hpp"

using namespace oaq;

namespace {

constexpr double kCarrierHz = 400.0e6;

Orbit plane_orbit(double slot_offset_deg) {
  return Orbit::circular_with_period(Duration::minutes(90), deg2rad(85.0),
                                     deg2rad(30.0), deg2rad(slot_offset_deg));
}

}  // namespace

int main() {
  std::cout << "=== Accuracy by coverage basis (sigma_FOA = 5 Hz, "
               "sigma_TDOA = 1 us, sigma_FDOA = 1 Hz; 40 trials each) "
               "===\n\n";
  const GeoPoint truth = GeoPoint::from_degrees(30.0, 31.0);
  Emitter emitter;
  emitter.position = truth;
  emitter.carrier_hz = kCarrierHz;
  emitter.start = TimePoint::origin();

  RunningStat single_err, seq_err, sim_err;
  const DopplerModel foa(true);
  const TdoaModel tdoa(true);
  const DualSatelliteFix dual_solver;

  for (int t = 0; t < 40; ++t) {
    Rng rng(5000 + static_cast<unsigned>(t));

    // Level 1: one pass by one satellite.
    const auto pass1 = foa.take_measurements(
        plane_orbit(0.0), {0, 0}, emitter,
        measurement_epochs(Duration::minutes(5), Duration::minutes(13), 25),
        deg2rad(18.0), 5.0, rng);
    SequentialLocalizer loc;
    const auto& est1 = loc.incorporate(pass1);
    single_err.add(great_circle_km(est1.position, truth));

    // Level 2: a second satellite revisits Tr = 9 min later.
    const auto pass2 = foa.take_measurements(
        plane_orbit(-36.0), {0, 1}, emitter,
        measurement_epochs(Duration::minutes(14), Duration::minutes(22), 25),
        deg2rad(18.0), 5.0, rng);
    const auto& est2 = loc.incorporate(pass2);
    seq_err.add(great_circle_km(est2.position, truth));

    // Level 3: two satellites co-observe (overlap geometry), one short
    // simultaneous window, initialized from the preliminary result.
    const auto pairs = tdoa.take_measurements(
        plane_orbit(0.0), {0, 0}, plane_orbit(-20.0), {0, 1}, emitter,
        measurement_epochs(Duration::minutes(7), Duration::minutes(10), 7),
        deg2rad(18.0), 1e-6, 1.0, rng);
    if (!pairs.empty()) {
      const auto est3 = dual_solver.solve(pairs, est1.position, kCarrierHz);
      sim_err.add(great_circle_km(est3.position, truth));
    }
  }

  TablePrinter table({"QoS level", "basis", "mean err km", "max err km",
                      "time to fix"},
                     3);
  table.add_row({static_cast<long long>(1), std::string("single pass"),
                 single_err.mean(), single_err.max(),
                 std::string("~8 min (one pass)")});
  table.add_row({static_cast<long long>(2),
                 std::string("sequential dual (2 passes)"), seq_err.mean(),
                 seq_err.max(), std::string("~17 min (revisit + pass)")});
  table.add_row({static_cast<long long>(3),
                 std::string("simultaneous dual (TDOA/FDOA)"),
                 sim_err.mean(), sim_err.max(),
                 std::string("~3 min (one overlap window)")});
  table.print(std::cout);
  std::cout << "\nReading (Table 1): both dual bases are ~10x more accurate "
               "than a single pass; simultaneous coverage additionally "
               "resolves the ambiguity IMMEDIATELY — sub-km quality inside "
               "one overlap window instead of waiting a full revisit "
               "period, which is why it tops the QoS spectrum under a "
               "delivery deadline.\n";
  return 0;
}
