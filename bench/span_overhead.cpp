// Span-profiler harness (ISSUE 7 tentpole): wall-clock overhead of
// running simulate_qos with the hierarchical span profiler attached vs
// detached, and the steady-state allocation count of the record hot path
// (SpanArena enter/exit plus EpisodeLedger recording — hence
// alloc_counter). Prints a human table plus a BENCH_JSON line (aggregated
// into BENCH_7.json by tools/run_bench.sh).
//
//   span_overhead [episodes]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "alloc_counter.hpp"
#include "common/table.hpp"
#include "oaq/montecarlo.hpp"
#include "obs/ledger.hpp"
#include "obs/span.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The golden-trace simulation shape (same as episode_batch, so the two
/// snapshots' episodes/sec are comparable across BENCH_*.json versions).
QosSimulationConfig base_config(int episodes) {
  QosSimulationConfig cfg;
  cfg.k = 9;
  cfg.episodes = episodes;
  cfg.seed = 7;
  cfg.protocol.computation_cap = cfg.protocol.tg;
  cfg.jobs = 1;  // single-thread A/B: per-core throughput, no pool noise
  // Pin the sequential drain: this harness gates the profiler's overhead,
  // so the engine config must stay fixed across BENCH_*.json snapshots
  // (BENCH_8 and earlier measured the pre-interleave drain; the merged
  // timeline's own cost is episode_batch's episode_interleave payload).
  cfg.interleave_width = 1;
  return cfg;
}

/// Episodes/sec of one simulate_qos run, spans attached or detached.
double episodes_per_sec(const QosSimulationConfig& base,
                        SpanProfiler* spans) {
  QosSimulationConfig cfg = base;
  cfg.spans = spans;
  const auto t0 = Clock::now();
  const SimulatedQos qos = simulate_qos(cfg);
  const double elapsed = seconds_since(t0);
  if (qos.episodes != cfg.episodes) std::abort();
  return static_cast<double>(cfg.episodes) / elapsed;
}

/// Allocation delta of the record hot path after warm-up: re-entering
/// known span paths and bumping pre-sized ledger rows must not allocate.
std::uint64_t steady_state_allocs(std::int64_t iterations) {
  SpanProfiler spans;
  spans.prepare(1);
  SpanArena* arena = spans.shard_arena(0);
  EpisodeLedger ledger;
  ledger.reserve(64);
  // Warm-up: discover every call path and touch every ledger row once.
  for (std::int64_t i = 0; i < 64; ++i) {
    const ScopedSpan outer(arena, "episode");
    const ScopedSpan inner(arena, "drain");
    arena->add_items(1);
    ledger.record_drop(i, DropReason::kLoss);
    ledger.record_retry(i);
  }
  const std::uint64_t before = benchutil::allocation_count();
  for (std::int64_t i = 0; i < iterations; ++i) {
    const ScopedSpan outer(arena, "episode");
    const ScopedSpan inner(arena, "drain");
    arena->add_items(1);
    ledger.record_drop(i & 63, DropReason::kLoss);
    ledger.record_retry(i & 63);
  }
  const std::uint64_t allocs = benchutil::allocation_count() - before;
  if (!arena->balanced() || ledger.totals().drops() < iterations) {
    std::abort();  // defeat over-eager optimizers, check the tallies
  }
  return allocs;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 12000;

  std::cout << "=== span profiler overhead (" << episodes
            << " episodes) ===\n\n";

  const QosSimulationConfig cfg = base_config(episodes);

  // Untimed warm-up, then interleaved repetitions so drift hits both
  // variants; best-of-3 mirrors the episode_batch harness.
  (void)episodes_per_sec(cfg, nullptr);
  double off_eps = 0.0, on_eps = 0.0;
  SpanProfiler spans;
  for (int rep = 0; rep < 3; ++rep) {
    off_eps = std::max(off_eps, episodes_per_sec(cfg, nullptr));
    on_eps = std::max(on_eps, episodes_per_sec(cfg, &spans));
  }
  const double overhead_pct = (off_eps / on_eps - 1.0) * 100.0;

  const std::uint64_t hot_allocs = steady_state_allocs(1 << 18);

  TablePrinter table({"path", "episodes/s", "overhead %"}, 2);
  table.add_row({std::string("spans detached"), off_eps, 0.0});
  table.add_row({std::string("spans attached"), on_eps, overhead_pct});
  table.print(std::cout);
  std::cout << "\nsteady state: " << hot_allocs
            << " allocs over " << (1 << 18)
            << " span-enter/exit + ledger-record iterations\n";

  std::ostringstream json;
  json << "{\"bench\":\"span_overhead\",\"episodes\":" << episodes
       << ",\"throughput\":{\"spans_off_episodes_per_sec\":" << off_eps
       << ",\"spans_on_episodes_per_sec\":" << on_eps
       << "},\"overhead_pct\":" << overhead_pct
       << ",\"steady_state_allocs\":" << hot_allocs << "}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  // Acceptance gates (ISSUE 7): attaching the profiler costs <= 5% of
  // episodes/sec and the record hot path allocates nothing.
  const bool ok = overhead_pct <= 5.0 && hot_allocs == 0;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
