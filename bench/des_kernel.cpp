// DES hot-path harness (ISSUE 3 tentpole): old-vs-new kernel throughput,
// cancel-heavy churn, steady-state allocation counts, and cached-vs-
// uncached visibility queries. Prints a human table plus BENCH_JSON lines
// (aggregated into BENCH_3.json by tools/run_bench.sh).
//
//   des_kernel [events] [rounds]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "alloc_counter.hpp"
#include "common/table.hpp"
#include "legacy_simulator.hpp"
#include "oaq/schedule.hpp"
#include "orbit/visibility_cache.hpp"
#include "sim/simulator.hpp"

using namespace oaq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Self-rescheduling event chain: each firing does a little arithmetic and
/// schedules its successor — the DES analogue of the protocol's
/// timeout/handoff pattern. 32 bytes of captured state: inline in the
/// pooled kernel's SmallFunction, heap-allocated by std::function.
template <typename Sim>
struct Chain {
  Sim* sim;
  std::uint64_t* fired;
  std::uint64_t budget;
  std::uint64_t salt;

  void operator()() {
    ++*fired;
    salt = salt * 2862933555777941757ull + 3037000493ull;
    if (--budget == 0) return;
    sim->schedule_after(Duration::seconds(1.0 + static_cast<double>(salt & 7)),
                        Chain(*this));
  }
};

/// Events/sec of `chains` interleaved self-rescheduling chains totalling
/// `total_events` firings. `allocs_per_event` (optional out) measures the
/// steady-state half of the run, after slab/heap/pool growth is done.
template <typename Sim>
double schedule_fire_events_per_sec(int chains, std::uint64_t total_events,
                                    double* allocs_per_event = nullptr) {
  Sim sim;
  std::uint64_t fired = 0;
  const std::uint64_t per_chain = total_events / static_cast<std::uint64_t>(chains);
  const auto t0 = Clock::now();
  for (int c = 0; c < chains; ++c) {
    sim.schedule_after(
        Duration::seconds(static_cast<double>(c % 16)),
        Chain<Sim>{&sim, &fired, per_chain, 0x9e3779b97f4a7c15ull + c});
  }
  // First half warms the pools; the second half is steady state.
  const std::uint64_t half = chains * per_chain / 2;
  while (fired < half && sim.step()) {
  }
  const std::uint64_t allocs_before = benchutil::allocation_count();
  const std::uint64_t fired_before = fired;
  sim.run();
  const std::uint64_t steady_allocs =
      benchutil::allocation_count() - allocs_before;
  const double elapsed = seconds_since(t0);
  if (allocs_per_event != nullptr) {
    *allocs_per_event = static_cast<double>(steady_allocs) /
                        static_cast<double>(fired - fired_before);
  }
  return static_cast<double>(fired) / elapsed;
}

/// Ops/sec of a cancel-heavy workload: every round schedules a batch,
/// cancels half of it (the protocol's wait-deadline pattern: most armed
/// timeouts never fire), and drains the rest.
template <typename Sim>
double cancel_heavy_ops_per_sec(int batch, int rounds) {
  Sim sim;
  std::vector<decltype(sim.schedule_after(Duration::zero(),
                                          typename Sim::Callback{}))>
      ids;
  ids.reserve(static_cast<std::size_t>(batch));
  std::uint64_t sink = 0;
  std::uint64_t ops = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    ids.clear();
    for (int b = 0; b < batch; ++b) {
      ids.push_back(sim.schedule_after(
          Duration::seconds(static_cast<double>((b * 7 + r) % 64)),
          [&sink] { ++sink; }));
    }
    for (int b = 0; b < batch; b += 2) sim.cancel(ids[static_cast<std::size_t>(b)]);
    sim.run();
    ops += static_cast<std::uint64_t>(batch) + static_cast<std::uint64_t>(batch);
  }
  return static_cast<double>(ops) / seconds_since(t0);
}

/// Pops/sec of a pure drain: each round schedules one big batch up front
/// and then drains it with no further scheduling. After the first flush
/// the ready queue holds a single sorted run over an empty spill — the
/// settle() fast-path shape an episode's tail (and the cancel-heavy
/// pattern between batches) sits in almost exclusively.
template <typename Sim>
double single_run_drain_pops_per_sec(int batch, int rounds) {
  Sim sim;
  std::uint64_t sink = 0;
  std::uint64_t pops = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int b = 0; b < batch; ++b) {
      sim.schedule_after(
          Duration::seconds(static_cast<double>((b * 13 + r) % 97)),
          [&sink] { ++sink; });
    }
    sim.run();
    pops += static_cast<std::uint64_t>(batch);
  }
  if (sink == 0) std::abort();  // defeat over-eager optimizers
  return static_cast<double>(pops) / seconds_since(t0);
}

struct VisibilityNumbers {
  double uncached_qps = 0.0;
  double cached_qps = 0.0;
  double hit_rate = 0.0;
};

/// Repeated pass queries over jittered sub-windows of a 6-hour horizon —
/// the Monte-Carlo access pattern — against a fresh PassPredictor per call
/// (the pre-cache GeometricSchedule behaviour) vs a VisibilityCache.
VisibilityNumbers visibility_cached_vs_uncached(int queries) {
  ConstellationDesign d;
  d.num_planes = 1;
  d.sats_per_plane = 10;
  d.inclination_rad = deg2rad(90.0);
  const Constellation c(d);
  const GeoPoint target{0.0, 0.0};
  const GeometricSchedule uncached(c, target);
  VisibilityCache cache(c);
  const GeometricSchedule cached(cache, target);

  VisibilityNumbers out;
  std::uint64_t salt = 1;
  const auto window = [&salt] {
    salt = salt * 2862933555777941757ull + 3037000493ull;
    const double from_min = static_cast<double>(salt % 180);
    return std::pair(Duration::minutes(from_min),
                     Duration::minutes(from_min + 90.0));
  };

  auto t0 = Clock::now();
  std::size_t sink = 0;
  for (int q = 0; q < queries; ++q) {
    const auto [from, to] = window();
    sink += uncached.passes(from, to).size();
  }
  out.uncached_qps = queries / seconds_since(t0);

  salt = 1;
  t0 = Clock::now();
  for (int q = 0; q < queries; ++q) {
    const auto [from, to] = window();
    sink += cached.passes(from, to).size();
  }
  out.cached_qps = queries / seconds_since(t0);
  out.hit_rate = static_cast<double>(cache.stats().pass_hits) /
                 static_cast<double>(cache.stats().pass_queries);
  if (sink == 0) std::abort();  // defeat over-eager optimizers
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto events =
      static_cast<std::uint64_t>(argc > 1 ? std::atoll(argv[1]) : 2000000);
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 500;

  std::cout << "=== DES kernel hot path (" << events << " events, "
            << rounds << " cancel rounds) ===\n\n";

  // 4096 concurrent timers ~ a campaign shard's pending-event working set
  // (many in-flight signals x timeout/handoff/arrival timers each).
  constexpr int kChains = 4096;
  constexpr int kCancelBatch = 4096;

  double legacy_allocs = 0.0, pooled_allocs = 0.0;
  const double legacy_fire = schedule_fire_events_per_sec<legacy::Simulator>(
      kChains, events, &legacy_allocs);
  const double pooled_fire =
      schedule_fire_events_per_sec<Simulator>(kChains, events, &pooled_allocs);
  const double legacy_cancel =
      cancel_heavy_ops_per_sec<legacy::Simulator>(kCancelBatch, rounds);
  const double pooled_cancel =
      cancel_heavy_ops_per_sec<Simulator>(kCancelBatch, rounds);
  const double legacy_drain =
      single_run_drain_pops_per_sec<legacy::Simulator>(kCancelBatch, rounds);
  const double pooled_drain =
      single_run_drain_pops_per_sec<Simulator>(kCancelBatch, rounds);
  const VisibilityNumbers vis = visibility_cached_vs_uncached(400);

  TablePrinter table({"workload", "legacy", "pooled", "speedup"}, 2);
  table.add_row({std::string("schedule+fire (ev/s)"), legacy_fire, pooled_fire,
                 pooled_fire / legacy_fire});
  table.add_row({std::string("cancel-heavy (op/s)"), legacy_cancel,
                 pooled_cancel, pooled_cancel / legacy_cancel});
  table.add_row({std::string("single-run drain (pop/s)"), legacy_drain,
                 pooled_drain, pooled_drain / legacy_drain});
  table.add_row({std::string("steady allocs/event"), legacy_allocs,
                 pooled_allocs, 0.0});
  table.print(std::cout);
  std::cout << "\nvisibility passes: uncached " << vis.uncached_qps
            << " q/s, cached " << vis.cached_qps << " q/s (speedup "
            << vis.cached_qps / vis.uncached_qps << ", hit rate "
            << vis.hit_rate << ")\n";

  std::ostringstream json;
  json << "{\"bench\":\"des_kernel\",\"events\":" << events
       << ",\"schedule_fire\":{\"legacy_events_per_sec\":" << legacy_fire
       << ",\"pooled_events_per_sec\":" << pooled_fire
       << ",\"speedup\":" << pooled_fire / legacy_fire
       << "},\"cancel_heavy\":{\"legacy_ops_per_sec\":" << legacy_cancel
       << ",\"pooled_ops_per_sec\":" << pooled_cancel
       << ",\"speedup\":" << pooled_cancel / legacy_cancel
       << "},\"single_run_drain\":{\"legacy_pops_per_sec\":" << legacy_drain
       << ",\"pooled_pops_per_sec\":" << pooled_drain
       << ",\"speedup\":" << pooled_drain / legacy_drain
       << "},\"steady_state_allocs_per_event\":{\"legacy\":" << legacy_allocs
       << ",\"pooled\":" << pooled_allocs << "}}";
  std::cout << "BENCH_JSON " << json.str() << "\n";

  std::ostringstream vjson;
  vjson << "{\"bench\":\"visibility_cache\",\"queries\":" << 400
        << ",\"uncached_queries_per_sec\":" << vis.uncached_qps
        << ",\"cached_queries_per_sec\":" << vis.cached_qps
        << ",\"speedup\":" << vis.cached_qps / vis.uncached_qps
        << ",\"hit_rate\":" << vis.hit_rate << "}";
  std::cout << "BENCH_JSON " << vjson.str() << "\n";

  // Regression gates (ISSUE 3 acceptance): >= 2x schedule/cancel speedup,
  // zero steady-state allocations per event in the pooled kernel. The
  // single-run fast path (ISSUE 6) must not regress the drain below the
  // legacy heap.
  const bool ok = pooled_fire >= 2.0 * legacy_fire &&
                  pooled_cancel >= 2.0 * legacy_cancel &&
                  pooled_allocs == 0.0 && pooled_drain >= legacy_drain;
  if (!ok) std::cout << "REGRESSION: acceptance thresholds not met\n";
  return ok ? 0 : 1;
}
