// E9 — §4.3: "when the QoS measure is evaluated as a function of the mean
// signal duration, we observe that the OAQ scheme is able to responsively
// treat a longer signal duration as the extended opportunity to achieve
// better geolocation quality."
#include <iostream>

#include "analytic/measure.hpp"
#include "common/table.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

int main() {
  std::cout << "=== QoS vs mean signal duration 1/mu (tau = 5, nu = 30, "
               "lambda = 5e-5, eta = 12) ===\n\n";
  PlaneDependability dep;
  dep.satellite_failure_rate = Rate::per_hour(5e-5);
  dep.policy.ground_threshold = 12;
  dep.policy.launch_lead_time = Duration::hours(25000);
  dep.policy.expedited_lead_time = Duration::hours(1700);
  const auto pk = plane_capacity_pmf(dep, 42, 600);

  SeriesPrinter series("mean_dur_min", {"OAQ P(Y>=3)", "BAQ P(Y>=3)",
                                        "OAQ P(Y>=2)", "BAQ P(Y>=2)"});
  for (double mean : {0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0}) {
    QosModelParams p;
    p.tau = Duration::minutes(5);
    p.mu = Rate::per_minute(1.0 / mean);
    p.nu = Rate::per_minute(30);
    const QosModel model(PlaneGeometry{}, p);
    const auto oaq = qos_measure(model, pk, Scheme::kOaq);
    const auto baq = qos_measure(model, pk, Scheme::kBaq);
    series.add_point(mean, {oaq.tail(3), baq.tail(3), oaq.tail(2),
                            baq.tail(2)});
  }
  series.print(std::cout);
  std::cout << "\nExpected shape: OAQ rises with the mean duration (longer "
               "signals = wider windows of opportunity); BAQ is flat.\n";
  return 0;
}
