// E16 — Constellation-level availability vs node-failure rate: expected
// total active satellites, probability some plane has gone underlapping
// (k < 11), and expected number of underlapping planes (7 i.i.d. planes,
// the independence argument of paper §4.2.2).
#include <iostream>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "fault/constellation_availability.hpp"
#include "fault/plane_capacity.hpp"

using namespace oaq;

int main() {
  std::cout << "=== Constellation availability vs lambda (7 planes, "
               "eta = 10, phi = 30000 h) ===\n\n";
  SeriesPrinter series("lambda",
                       {"E[total active]", "P(some plane underlap)",
                        "E[underlap planes]", "P(all planes >= 9)"});
  for (const double lam : linspace(1e-5, 1e-4, 10)) {
    PlaneDependability model;
    model.satellite_failure_rate = Rate::per_hour(lam);
    model.policy.ground_threshold = 10;
    const auto per_plane = plane_capacity_pmf(model, 42, 400);
    const ConstellationAvailability avail(per_plane, 7, 14);
    series.add_point(lam,
                     {avail.expected_total(),
                      avail.probability_some_plane_below(11),
                      avail.expected_planes_below(11),
                      avail.probability_all_planes_at_least(9)});
  }
  series.print(std::cout);
  std::cout << "\nReading: even at the top of the lambda domain the "
               "threshold policy keeps every plane at k >= 9 almost "
               "surely, but most planes lose footprint overlap — exactly "
               "the regime where OAQ's sequential coordination carries "
               "the QoS (paper Figs. 7-9).\n";
  return 0;
}
