// E18 — How much does the paper's ideal-geometry assumption matter?
//
// The analytic model (and Fig. 6) assume a perfectly repeating footprint
// pattern: no Earth rotation relative to the plane, no J2 drift. This
// ablation runs the SAME degraded plane (k = 9) over a 30°N target under
//   ideal      — non-rotating Earth (the paper's idealization),
//   rotating   — Earth rotation on (ground tracks precess ~22.5°/orbit),
//   rotating+J2 — plus J2 secular drift,
// and compares the coverage statistics and the protocol's delivered QoS
// over a one-day horizon. Under rotation a single plane no longer revisits
// the same spot, so the FULL 7-plane constellation provides the revisits —
// which is how the real system works; the single-plane worst case of the
// paper is the conservative bound.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "oaq/episode.hpp"

using namespace oaq;

namespace {

struct Variant {
  const char* name;
  bool rotation;
  bool j2;
};

Constellation degraded_reference(bool j2) {
  ConstellationDesign d;
  d.j2 = j2;
  Constellation c(d);
  for (int p = 0; p < c.num_planes(); ++p) c.plane(p).set_active_count(9);
  return c;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: ideal vs rotating vs J2 geometry (reference "
               "constellation degraded to k = 9 everywhere, 30N target, "
               "1-day horizon) ===\n\n";
  const GeoPoint target = GeoPoint::from_degrees(30.0, 20.0);

  TablePrinter cov({"geometry", "gap share", "multi share", "longest gap "
                    "min", "passes/day"},
                   4);
  TablePrinter qos({"geometry", "episodes", "P(Y>=2)", "P(missed)",
                    "mean latency min"},
                   4);

  for (const Variant v : {Variant{"ideal", false, false},
                          Variant{"rotating", true, false},
                          Variant{"rotating+J2", true, true}}) {
    const auto c = degraded_reference(v.j2);
    const PassPredictor pred(c, v.rotation);
    const auto horizon = Duration::hours(24);
    const auto passes = pred.passes(target, Duration::zero(), horizon);
    const auto timeline =
        PassPredictor::multiplicity_timeline(passes, Duration::zero(),
                                             horizon);
    const auto stats = PassPredictor::summarize(timeline);
    cov.add_row({std::string(v.name), stats.uncovered / stats.horizon,
                 stats.multiple / stats.horizon,
                 stats.longest_gap.to_minutes(),
                 static_cast<long long>(passes.size())});

    // Protocol episodes at regular offsets through the day.
    const GeometricSchedule sched(c, target, v.rotation);
    ProtocolConfig cfg;
    cfg.tau = Duration::minutes(5);
    cfg.delta = Duration::seconds(12);
    cfg.tg = Duration::seconds(6);
    cfg.computation_cap = Duration::seconds(6);
    const EpisodeEngine engine(sched, cfg, true);
    Rng master(2003);
    int episodes = 0, high = 0, missed = 0;
    RunningStat latency;
    for (int e = 0; e < 80; ++e) {
      Rng rng = master.fork(static_cast<std::uint64_t>(e));
      const auto r = engine.run(
          TimePoint::at(Duration::minutes(10.0 + 17.0 * e)),
          Duration::minutes(25), rng);
      ++episodes;
      high += to_int(r.level) >= 2;
      missed += !r.alert_delivered;
      if (r.alert_delivered) {
        latency.add((r.first_alert_sent - r.detection).to_minutes());
      }
    }
    qos.add_row({std::string(v.name), static_cast<long long>(episodes),
                 static_cast<double>(high) / episodes,
                 static_cast<double>(missed) / episodes, latency.mean()});
  }
  cov.print(std::cout);
  std::cout << '\n';
  qos.print(std::cout);
  std::cout << "\nReading: with rotation the 7 planes' tracks interleave "
               "over the target, so coverage is richer than the paper's "
               "single-plane worst case — its analytic numbers are the "
               "conservative bound. J2 shifts pass times but barely moves "
               "the one-day statistics.\n";
  return 0;
}
