// E3 — Eq. (2): the upper bound M[k] on the number of satellites that can
// consecutively capture a signal, versus the deadline τ; cross-checked
// against the longest coordination chain the protocol simulator produces.
#include <iostream>

#include "common/table.hpp"
#include "oaq/montecarlo.hpp"

using namespace oaq;

int main() {
  const PlaneGeometry g;

  std::cout << "=== Eq. (2): chain-length bound M[k] (underlapping planes) "
               "===\n\n";
  TablePrinter table({"k", "L1 min", "L2 min", "tau=0.5", "tau=5", "tau=12",
                      "tau=25"},
                     0);
  table.set_caption(
      "M[k] = 2 + floor((tau - L2)/L1) when tau > L2, else 1 "
      "(paper: M = 2 for tau < 9 -> sequential dual coverage)");
  for (int k : {10, 9, 8, 7, 6}) {
    std::vector<Cell> row{static_cast<long long>(k)};
    row.emplace_back(g.l1(k).to_minutes());
    row.emplace_back(g.l2(k).to_minutes());
    for (double tau : {0.5, 5.0, 12.0, 25.0}) {
      row.emplace_back(static_cast<long long>(
          g.max_chain(k, Duration::minutes(tau))));
    }
    TablePrinter* t = &table;
    t->add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nSimulated longest chain (protocol Monte-Carlo, long "
               "signals, mu = 0.05/min):\n";
  TablePrinter sim_table({"k", "tau min", "M[k] bound", "sim max chain",
                          "sim mean chain"},
                         2);
  for (int k : {9, 8, 7}) {
    for (double tau : {5.0, 12.0, 25.0}) {
      QosSimulationConfig cfg;
      cfg.k = k;
      cfg.episodes = 3000;
      cfg.seed = 7;
      cfg.mu = Rate::per_minute(0.05);
      cfg.protocol.tau = Duration::minutes(tau);
      cfg.protocol.delta = Duration::zero();
      cfg.protocol.tg = Duration::zero();
      const auto r = simulate_qos(cfg);
      sim_table.add_row({static_cast<long long>(k), tau,
                         static_cast<long long>(
                             g.max_chain(k, Duration::minutes(tau))),
                         static_cast<long long>(r.max_chain_length),
                         r.mean_chain_length});
    }
  }
  sim_table.print(std::cout);
  return 0;
}
