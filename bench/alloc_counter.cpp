#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

namespace oaq::benchutil {
std::uint64_t allocation_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}
}  // namespace oaq::benchutil

// Global replacements: every form funnels through counted_alloc/free so
// mismatched pairs (sized delete, nothrow new) stay consistent.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
