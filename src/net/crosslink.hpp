// Inter-satellite crosslink network.
//
// The OAQ protocol is "enabled by message-passing over crosslinks between
// neighboring satellites" (§3.1). This module is the transport: typed
// envelopes between addresses (satellites or the ground station) with a
// bounded random delay (the paper's δ is the *maximum* inter-satellite
// message-delivery delay), optional loss, and fail-silent node injection.
// The protocol layer (src/oaq) defines the payload types.
//
// Hot-path layout (ISSUE 3): per-address state lives in dense vectors
// indexed by (plane, slot) — no ordered-map lookups per delivery — and
// in-flight envelopes are pooled with a free list, so the delivery event
// captures only a pool slot and the DES kernel keeps it inline.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "orbit/plane.hpp"
#include "sim/simulator.hpp"

namespace oaq {

/// A network endpoint: a satellite or the ground station.
struct Address {
  enum class Kind : std::uint8_t { kSatellite, kGround };

  Kind kind = Kind::kSatellite;
  SatelliteId satellite{};  ///< meaningful when kind == kSatellite

  [[nodiscard]] static Address sat(SatelliteId id) {
    return {Kind::kSatellite, id};
  }
  [[nodiscard]] static Address ground() { return {Kind::kGround, {}}; }

  friend constexpr bool operator==(const Address&, const Address&) = default;
  friend constexpr auto operator<=>(const Address&, const Address&) = default;
};

/// A delivered message.
struct Envelope {
  Address from;
  Address to;
  TimePoint sent{};
  TimePoint delivered{};
  std::any payload;
};

/// Counters for observability and tests.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;        ///< random loss
  std::uint64_t dropped_dead_sender = 0;
  std::uint64_t dropped_dead_receiver = 0;
  std::uint64_t dropped_unregistered = 0;
};

/// Simulated crosslink / downlink message bus.
class CrosslinkNetwork {
 public:
  struct Options {
    /// Delivery delay is uniform in [min_delay, max_delay]; max_delay is
    /// the paper's δ.
    Duration min_delay = Duration::seconds(10);
    Duration max_delay = Duration::seconds(30);
    double loss_probability = 0.0;
    /// Exempt messages addressed to the ground station from random loss
    /// (downlinks are acknowledged/retried in practice; crosslinks are
    /// the lossy hops the protocol must tolerate).
    bool lossless_to_ground = false;
  };

  using Handler = std::function<void(const Envelope&)>;

  CrosslinkNetwork(Simulator& sim, Options options, Rng rng);

  /// Attach a handler for messages addressed to `node`. One handler per
  /// address: registering over a live handler is a precondition error
  /// (it would silently swallow the first handler's traffic). The one
  /// sanctioned re-registration is of a fail-silent node, which replaces
  /// the handler and revives it. Must not be called from inside a handler
  /// (the dense tables may grow under the executing handler).
  void register_node(const Address& node, Handler handler);

  /// Make a node fail-silent: it no longer receives or sends, with no
  /// notification to anyone — the failure mode of §3.2.
  void fail_silent(const Address& node);

  [[nodiscard]] bool is_failed(const Address& node) const;

  /// Queue a message. It is delivered after a random delay unless lost or
  /// either endpoint is fail-silent at the relevant moment (send checks the
  /// sender now; delivery checks the receiver then).
  void send(const Address& from, const Address& to, std::any payload);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Attach a trace sink: every send/recv/drop is recorded as an
  /// xlink_* event stamped with `episode_id` (-1 when the network is
  /// shared by many episodes, as in campaigns). Null disables tracing —
  /// the recording sites are a single branch on the pointer.
  void set_trace(ShardTraceBuffer* trace, std::int64_t episode_id) {
    trace_ = trace;
    trace_episode_ = episode_id;
  }

 private:
  /// Per-address state, held in dense per-plane vectors (plus one ground
  /// entry). A default-constructed entry means "never seen".
  struct NodeState {
    Handler handler;  ///< null = unregistered
    bool failed = false;
  };

  /// Dense lookup; null when the address was never registered or failed.
  [[nodiscard]] const NodeState* find(const Address& addr) const;
  /// Dense lookup, growing the per-plane tables on demand.
  [[nodiscard]] NodeState& ensure(const Address& addr);

  /// Deliver the pooled envelope in `slot` (the DES callback body).
  void deliver(std::uint32_t slot);

  /// Trace encoding of an address: satellite slot, or -1 for the ground.
  [[nodiscard]] static std::int16_t trace_slot(const Address& addr) {
    return addr.kind == Address::Kind::kGround
               ? std::int16_t{-1}
               : static_cast<std::int16_t>(addr.satellite.slot);
  }
  void trace_event(TraceEventType type, const Address& from,
                   const Address& to, std::int32_t a, double v) const;

  Simulator* sim_;
  Options options_;
  Rng rng_;
  NodeState ground_;
  std::vector<std::vector<NodeState>> sats_;  ///< [plane][slot]
  std::vector<Envelope> pool_;                ///< in-flight envelope slab
  std::vector<std::uint32_t> free_slots_;
  NetworkStats stats_;
  ShardTraceBuffer* trace_ = nullptr;
  std::int64_t trace_episode_ = -1;
};

}  // namespace oaq
