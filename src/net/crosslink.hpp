// Inter-satellite crosslink network.
//
// The OAQ protocol is "enabled by message-passing over crosslinks between
// neighboring satellites" (§3.1). This module is the transport: typed
// envelopes between addresses (satellites or the ground station) with a
// bounded random delay (the paper's δ is the *maximum* inter-satellite
// message-delivery delay), optional loss, and fail-silent node injection.
// The protocol layer (src/oaq) defines the payload types.
//
// Hot-path layout (ISSUE 3): per-address state lives in dense vectors
// indexed by (plane, slot) — no ordered-map lookups per delivery — and
// in-flight envelopes are pooled with a free list, so the delivery event
// captures only a pool slot and the DES kernel keeps it inline.
//
// Degradation hooks (ISSUE 5): the FaultInjector drives time-varying link
// state — refcounted per-plane-pair outages, plane-set partitions,
// multiplicative delay scaling, and windowed loss overrides — through the
// push/pop methods below; all of it is branch-gated so the undegraded path
// is bit-identical to the pre-fault transport. An optional reliable mode
// retries failed attempts with exponential backoff (ack-timeout model; see
// DESIGN.md §11 for the δ_eff bound the protocol layer consumes).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/plane_set.hpp"
#include "common/rng.hpp"
#include "net/payload.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "orbit/plane.hpp"
#include "sim/simulator.hpp"

namespace oaq {

/// A network endpoint: a satellite or the ground station.
struct Address {
  enum class Kind : std::uint8_t { kSatellite, kGround };

  Kind kind = Kind::kSatellite;
  SatelliteId satellite{};  ///< meaningful when kind == kSatellite

  [[nodiscard]] static Address sat(SatelliteId id) {
    return {Kind::kSatellite, id};
  }
  [[nodiscard]] static Address ground() { return {Kind::kGround, {}}; }

  friend constexpr bool operator==(const Address&, const Address&) = default;
  friend constexpr auto operator<=>(const Address&, const Address&) = default;
};

/// A delivered message.
struct Envelope {
  Address from;
  Address to;
  TimePoint sent{};       ///< original send() time (first attempt)
  TimePoint delivered{};
  int attempt = 0;        ///< retransmissions consumed (reliable mode)
  TimePoint attempt_started{};  ///< start of the current attempt
  /// Episode/target id of the sending protocol agent; -1 for traffic that
  /// belongs to no episode (membership gossip). Drives the per-episode
  /// attribution ledger on shared-network campaigns.
  std::int64_t episode = -1;
  Payload payload;
};

/// Counters for observability and tests.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;        ///< random loss
  std::uint64_t dropped_dead_sender = 0;
  std::uint64_t dropped_dead_receiver = 0;
  std::uint64_t dropped_unregistered = 0;
  std::uint64_t dropped_link = 0;        ///< link outage / partition window
  std::uint64_t retries = 0;             ///< reliable-mode retransmissions
  std::uint64_t retries_exhausted = 0;   ///< final drops after >= 1 retry
  // Link-health estimator counters (ISSUE 10; zero when health is off).
  std::uint64_t links_demoted = 0;       ///< healthy → demoted transitions
  std::uint64_t links_restored = 0;      ///< demoted → healthy transitions
  std::uint64_t link_probations = 0;     ///< demotions + probation escalations
  std::uint64_t link_probes = 0;         ///< attempts risked over demoted links
  std::uint64_t reroutes = 0;            ///< note_reroute() calls (chain layer)
};

/// Simulated crosslink / downlink message bus.
class CrosslinkNetwork {
 public:
  struct Options {
    /// Delivery delay is uniform in [min_delay, max_delay]; max_delay is
    /// the paper's δ.
    Duration min_delay = Duration::seconds(10);
    Duration max_delay = Duration::seconds(30);
    double loss_probability = 0.0;
    /// Exempt messages addressed to the ground station from random loss
    /// (downlinks are acknowledged/retried in practice; crosslinks are
    /// the lossy hops the protocol must tolerate).
    bool lossless_to_ground = false;
    /// Reliable delivery: a failed attempt (loss, dead receiver, link
    /// down) is retransmitted after an ack timeout of 2·max_delay·base^i
    /// from the attempt's start, up to `retry_limit` retries. Worst-case
    /// total delay is ProtocolConfig::effective_delta() — the δ_eff the
    /// wait-deadline math consumes.
    bool reliable = false;
    int retry_limit = 2;
    double backoff_base = 2.0;
    /// Per-plane-pair link-health estimator (ISSUE 10): an EWMA of
    /// delivery outcomes feeds a hysteretic demote/restore state machine
    /// the chain layer consults for re-routing. Entirely branch-gated on
    /// `enabled` — the default path is bit-identical to the pre-health
    /// transport.
    struct HealthOptions {
      bool enabled = false;
      double alpha = 0.2;          ///< EWMA weight of the newest sample
      double demote_below = 0.5;   ///< demote when ewma drops under this
      double restore_above = 0.7;  ///< restore when ewma recovers past this
      /// Base probation after a demotion; a link is avoided for new
      /// chains until it elapses. Escalates by `probation_backoff` per
      /// consecutive demotion, capped at `probation_cap` (callers set the
      /// cap to the protocol's τ so a probed link stays τ-feasible).
      Duration probation = Duration::seconds(60);
      double probation_backoff = 2.0;
      Duration probation_cap = Duration::minutes(5);
    };
    HealthOptions health;
  };

  using Handler = std::function<void(const Envelope&)>;
  /// Observer of *final* drops (after any retry budget is spent). Called
  /// with the dropped envelope after its pool slot is released, so the
  /// handler may send. Not called for dead-sender drops (the would-be
  /// retrier is gone).
  using DropHandler = std::function<void(const Envelope&, DropReason)>;

  CrosslinkNetwork(Simulator& sim, Options options, Rng rng);

  /// Attach a handler for messages addressed to `node`. One handler per
  /// address: registering over a live handler is a precondition error
  /// (it would silently swallow the first handler's traffic). The one
  /// sanctioned re-registration is of a fail-silent node, which replaces
  /// the handler and revives it. Must not be called from inside a handler
  /// (the dense tables may grow under the executing handler).
  void register_node(const Address& node, Handler handler);

  /// Make a node fail-silent: it no longer receives or sends, with no
  /// notification to anyone — the failure mode of §3.2.
  void fail_silent(const Address& node);

  /// Revive a fail-silent node with its original handler (the injector's
  /// `recover` clause). A node that was never registered stays dead.
  void recover(const Address& node);

  [[nodiscard]] bool is_failed(const Address& node) const;

  /// Queue a message. It is delivered after a random delay unless lost or
  /// either endpoint is fail-silent at the relevant moment (send checks the
  /// sender now; delivery checks the receiver then). `episode` tags the
  /// envelope with the sending episode/target id for the attribution
  /// ledger; -1 (no episode) falls back to the trace episode, so
  /// single-episode callers are unchanged.
  void send(const Address& from, const Address& to, Payload payload,
            std::int64_t episode = -1);

  /// Return the network to its just-constructed state for the next episode
  /// in a batch, keeping everything reusable: registered handlers, the
  /// drop handler, the envelope pool and its free list, and the reserved
  /// degradation tables all survive; stats, fail-silent flags, degradation
  /// windows, and the trace sink are cleared and the RNG is re-seeded.
  /// Precondition: no envelope in flight (the simulator has drained).
  void reset(Rng rng);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Attach a trace sink: every send/recv/drop is recorded as an
  /// xlink_* event stamped with `episode_id` (-1 when the network is
  /// shared by many episodes, as in campaigns). Null disables tracing —
  /// the recording sites are a single branch on the pointer.
  void set_trace(ShardTraceBuffer* trace, std::int64_t episode_id) {
    trace_ = trace;
    trace_episode_ = episode_id;
  }

  /// Attach a final-drop observer (the episode engine's re-route hook).
  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }

  /// Attach a per-episode attribution ledger: every final drop, retry, and
  /// exhausted retry budget is recorded against the owning envelope's
  /// episode id (the global row for episode-less traffic). Null disables —
  /// one branch per recording site, like the trace sink.
  void set_ledger(EpisodeLedger* ledger) { ledger_ = ledger; }

  /// Stamp xlink_* trace events with the envelope's episode id instead of
  /// the network-wide trace episode. Off by default: shared-network
  /// campaigns historically stamped -1 (the golden campaign trace pins
  /// those bytes); `oaqctl campaign` turns it on so trace-summary can
  /// attribute drops per target.
  void set_trace_attribution(bool on) { trace_attribution_ = on; }

  // --- Degradation hooks (FaultInjector). Tokens identify the pushing
  // clause so windows may overlap in any order; all effective values are
  // order-independent (max for loss, product for delay, set membership
  // for partitions, refcounts for outages). ---

  /// Pre-size the degradation tables so the injector's activate/deactivate
  /// events allocate nothing in steady state.
  void reserve_fault_state(int planes, std::size_t clauses);

  /// Block every crosslink between two planes (refcounted; symmetric).
  void block_link(int plane_a, int plane_b);
  void unblock_link(int plane_a, int plane_b);

  /// Multiply delivery delays by `factor` while active.
  void push_delay_scale(std::uint32_t token, double factor);
  void pop_delay_scale(std::uint32_t token);

  /// Override crosslink loss while active; the effective probability is
  /// the max of the base and every active override.
  void push_loss_override(std::uint32_t token, double probability);
  void pop_loss_override(std::uint32_t token);

  /// Partition the constellation: links crossing the plane-set boundary
  /// (exactly one endpoint's plane in `plane_mask`) are down. Ground
  /// links are exempt. Planes >= PlaneSet::kMaxPlanes are never in a mask.
  void push_partition(std::uint32_t token, PlaneSet plane_mask);
  void pop_partition(std::uint32_t token);

  /// Raise loss on the crosslinks between one plane pair (symmetric)
  /// while active; the effective probability for a matching link is the
  /// max of the base, global overrides, and every matching link override.
  void push_link_loss(std::uint32_t token, int plane_a, int plane_b,
                      double probability);
  void pop_link_loss(std::uint32_t token);

  // --- Link health (ISSUE 10; all no-ops unless options().health.enabled).

  /// True when the plane pair is demoted and still inside its probation —
  /// the chain layer should prefer another relay when one is feasible.
  [[nodiscard]] bool link_avoided(int plane_a, int plane_b) const;

  /// Chain layer notification: a send was re-routed around an avoided or
  /// failed link. Counts into stats and the episode ledger.
  void note_reroute(std::int64_t episode);

  /// Currently demoted plane pairs.
  [[nodiscard]] int demoted_link_count() const { return demoted_links_; }

  /// Health EWMA of a plane pair (1.0 when never sampled) — test hook.
  [[nodiscard]] double link_health_ewma(int plane_a, int plane_b) const;

  /// True when any windowed degradation (outage, partition, loss or delay
  /// override, per-link loss) is still active — invariant I12 demands
  /// this quiesce once the fault process does.
  [[nodiscard]] bool degradation_active() const {
    return active_link_blocks_ > 0 || !partitions_.empty() ||
           !loss_overrides_.empty() || !delay_factors_.empty() ||
           !link_losses_.empty();
  }

  /// True when every health cell is back to its never-sampled state and
  /// no link is demoted — the reset() postcondition the property tests
  /// pin.
  [[nodiscard]] bool health_pristine() const;

 private:
  /// Per-address state, held in dense per-plane vectors (plus one ground
  /// entry). A default-constructed entry means "never seen".
  struct NodeState {
    Handler handler;  ///< null = unregistered
    bool failed = false;
  };

  /// Dense lookup; null when the address was never registered or failed.
  [[nodiscard]] const NodeState* find(const Address& addr) const;
  /// Dense lookup, growing the per-plane tables on demand.
  [[nodiscard]] NodeState& ensure(const Address& addr);

  /// One transmission attempt of the pooled envelope in `slot`: link /
  /// loss checks, delay draw, delivery event.
  void attempt(std::uint32_t slot);
  /// Deliver the pooled envelope in `slot` (the DES callback body).
  void deliver(std::uint32_t slot);
  /// A failed attempt: retry (reliable mode, budget left) or final drop.
  void fail_attempt(std::uint32_t slot, DropReason reason);
  /// Release the slot, count and trace the drop, notify the drop handler.
  void final_drop(std::uint32_t slot, DropReason reason);

  [[nodiscard]] std::uint32_t alloc_slot();
  [[nodiscard]] bool link_blocked(const Address& from,
                                  const Address& to) const;
  [[nodiscard]] double effective_loss(const Address& from,
                                      const Address& to) const {
    double p = options_.loss_probability;
    for (const auto& [token, override_p] : loss_overrides_) {
      if (override_p > p) p = override_p;
    }
    if (!link_losses_.empty() && from.kind == Address::Kind::kSatellite &&
        to.kind == Address::Kind::kSatellite) {
      const int pa = from.satellite.plane;
      const int pb = to.satellite.plane;
      for (const LinkLoss& l : link_losses_) {
        const bool match = (l.plane_a == pa && l.plane_b == pb) ||
                           (l.plane_a == pb && l.plane_b == pa);
        if (match && l.probability > p) p = l.probability;
      }
    }
    return p;
  }
  [[nodiscard]] std::uint16_t& link_block_count(int plane_a, int plane_b);
  void recompute_delay_scale();

  /// One EWMA delivery-outcome sample on a satellite-satellite link;
  /// drives the demote/restore hysteresis. Health must be enabled.
  void record_link_sample(int plane_a, int plane_b, bool success,
                          std::int64_t episode);
  [[nodiscard]] Duration probation_of(int level) const;

  /// Trace encoding of an address: satellite slot, or -1 for the ground.
  [[nodiscard]] static std::int16_t trace_slot(const Address& addr) {
    return addr.kind == Address::Kind::kGround
               ? std::int16_t{-1}
               : static_cast<std::int16_t>(addr.satellite.slot);
  }
  void trace_event(TraceEventType type, const Address& from,
                   const Address& to, std::int32_t a, double v,
                   std::int64_t episode) const;
  /// Plane-level health event (sat/peer carry plane indices).
  void trace_link_event(TraceEventType type, int plane_a, int plane_b,
                        std::int32_t a, double v, std::int64_t episode) const;
  /// Episode id an event about `env` is stamped/recorded with.
  [[nodiscard]] std::int64_t trace_episode_of(const Envelope& env) const {
    return trace_attribution_ ? env.episode : trace_episode_;
  }

  Simulator* sim_;
  Options options_;
  Rng rng_;
  NodeState ground_;
  std::vector<std::vector<NodeState>> sats_;  ///< [plane][slot]
  std::vector<Envelope> pool_;                ///< in-flight envelope slab
  std::vector<std::uint32_t> free_slots_;
  NetworkStats stats_;
  ShardTraceBuffer* trace_ = nullptr;
  std::int64_t trace_episode_ = -1;
  bool trace_attribution_ = false;
  EpisodeLedger* ledger_ = nullptr;
  DropHandler drop_handler_;

  // Degradation state. All empty/zero on the undegraded path, where every
  // hot-path read collapses to one predictable branch.
  int link_block_planes_ = 0;     ///< side length of the refcount matrix
  int active_link_blocks_ = 0;    ///< total live block_link refs
  std::vector<std::uint16_t> link_blocks_;  ///< [plane_a * n + plane_b]
  std::vector<std::pair<std::uint32_t, PlaneSet>> partitions_;
  std::vector<std::pair<std::uint32_t, double>> loss_overrides_;
  std::vector<std::pair<std::uint32_t, double>> delay_factors_;
  double delay_scale_ = 1.0;  ///< product of active factors; 1 when none

  /// One active per-link loss window (push_link_loss).
  struct LinkLoss {
    std::uint32_t token = 0;
    int plane_a = 0;
    int plane_b = 0;
    double probability = 0.0;
  };
  std::vector<LinkLoss> link_losses_;

  /// Per-plane-pair health cell. Default state = pristine: fully healthy,
  /// never demoted.
  struct LinkHealth {
    double ewma = 1.0;
    bool demoted = false;
    int level = 0;  ///< consecutive-demotion escalation (probation power)
    TimePoint retry_at{};

    friend bool operator==(const LinkHealth&, const LinkHealth&) = default;
  };
  [[nodiscard]] LinkHealth& health_cell(int plane_a, int plane_b);
  [[nodiscard]] const LinkHealth* find_health(int plane_a,
                                              int plane_b) const;
  int health_planes_ = 0;            ///< side length of health_ matrix
  bool health_dirty_ = false;        ///< any sample recorded since reset
  int demoted_links_ = 0;            ///< currently demoted plane pairs
  std::vector<LinkHealth> health_;   ///< [plane_a * n + plane_b], a <= b
};

}  // namespace oaq
