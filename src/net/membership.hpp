// In-plane group membership — the paper's stated extension direction
// ("our current work is directed toward adapting group membership
// management techniques to the applications in the environments of
// distributed autonomous mobile computing", §5).
//
// Design: satellites of one plane form a logical ring in slot order. Each
// member heartbeats its ring successor and predecessor every period and
// suspects a neighbor it has not heard from within the suspicion timeout
// (> period + 2δ, so healthy links never cause false suspicion). A
// suspected member is removed from the local view and a failure notice is
// gossiped around the ring (deduplicated per failed member), so all
// surviving members converge on the same view; monitoring then re-targets
// the next live member in ring order. O(1) messaging per member per
// period — appropriate for large constellations.
//
// The OAQ protocol consumes the converged view: a coordination chain can
// skip a known-failed "next visitor" instead of paying the wait-deadline
// timeout (see EpisodeEngine and bench/ablation_membership).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/crosslink.hpp"

namespace oaq {

/// Membership timing parameters.
struct MembershipConfig {
  Duration heartbeat_period = Duration::seconds(30);
  /// Must exceed heartbeat_period + 2·max network delay.
  Duration suspicion_timeout = Duration::seconds(90);
};

/// Heartbeat message between ring neighbors.
struct Heartbeat {
  SatelliteId from{};
  std::uint64_t sequence = 0;
};

/// Gossiped notice that `failed` has been removed from the view.
struct FailureNotice {
  SatelliteId failed{};
  SatelliteId reporter{};
};

/// One satellite's membership agent.
class MembershipNode {
 public:
  MembershipNode(Simulator& sim, CrosslinkNetwork& net, SatelliteId self,
                 std::vector<SatelliteId> ring, MembershipConfig config);

  /// Begin heartbeating and monitoring. Registers the network handler.
  void start();

  [[nodiscard]] SatelliteId self() const { return self_; }

  /// Members this node currently believes are alive (including itself).
  [[nodiscard]] const std::set<SatelliteId>& live_view() const {
    return live_;
  }
  [[nodiscard]] bool considers_alive(SatelliteId id) const {
    return live_.contains(id);
  }

  /// Ring successor / predecessor among members believed alive.
  [[nodiscard]] SatelliteId live_successor() const;
  [[nodiscard]] SatelliteId live_predecessor() const;

 private:
  void on_message(const Envelope& env);
  void send_heartbeats();
  void check_neighbors();
  void suspect(SatelliteId id);
  void remove_member(SatelliteId id, bool gossip);
  [[nodiscard]] SatelliteId neighbor(int direction) const;

  Simulator* sim_;
  CrosslinkNetwork* net_;
  SatelliteId self_;
  std::vector<SatelliteId> ring_;  ///< full design ring, slot order
  MembershipConfig config_;
  std::set<SatelliteId> live_;
  std::map<SatelliteId, TimePoint> last_heard_;
  std::uint64_t sequence_ = 0;
  bool started_ = false;
};

/// Convenience: build, start and drive a whole plane's membership group.
class MembershipGroup {
 public:
  MembershipGroup(Simulator& sim, CrosslinkNetwork& net,
                  const std::vector<SatelliteId>& members,
                  MembershipConfig config);

  [[nodiscard]] MembershipNode& node(SatelliteId id);
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// True when every live node's view equals the set of actually-live
  /// members (global convergence predicate for tests).
  [[nodiscard]] bool converged(const std::set<SatelliteId>& actually_live) const;

 private:
  std::vector<std::unique_ptr<MembershipNode>> nodes_;
};

}  // namespace oaq
