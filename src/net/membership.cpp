#include "net/membership.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oaq {

MembershipNode::MembershipNode(Simulator& sim, CrosslinkNetwork& net,
                               SatelliteId self, std::vector<SatelliteId> ring,
                               MembershipConfig config)
    : sim_(&sim), net_(&net), self_(self), ring_(std::move(ring)),
      config_(config) {
  OAQ_REQUIRE(ring_.size() >= 2, "membership needs at least two members");
  OAQ_REQUIRE(std::find(ring_.begin(), ring_.end(), self) != ring_.end(),
              "self must be a ring member");
  OAQ_REQUIRE(config.heartbeat_period > Duration::zero(),
              "heartbeat period must be positive");
  OAQ_REQUIRE(config.suspicion_timeout > config.heartbeat_period,
              "suspicion timeout must exceed the heartbeat period");
  live_.insert(ring_.begin(), ring_.end());
}

SatelliteId MembershipNode::neighbor(int direction) const {
  // Next live member in ring order, scanning from self.
  const auto self_it = std::find(ring_.begin(), ring_.end(), self_);
  const auto n = static_cast<std::ptrdiff_t>(ring_.size());
  const auto self_idx = self_it - ring_.begin();
  for (std::ptrdiff_t step = 1; step < n; ++step) {
    const auto idx = ((self_idx + direction * step) % n + n) % n;
    const SatelliteId candidate = ring_[static_cast<std::size_t>(idx)];
    if (live_.contains(candidate)) return candidate;
  }
  return self_;  // alone in the ring
}

SatelliteId MembershipNode::live_successor() const { return neighbor(+1); }
SatelliteId MembershipNode::live_predecessor() const { return neighbor(-1); }

void MembershipNode::start() {
  OAQ_REQUIRE(!started_, "membership node already started");
  started_ = true;
  net_->register_node(Address::sat(self_),
                      [this](const Envelope& env) { on_message(env); });
  const TimePoint now = sim_->now();
  last_heard_[live_successor()] = now;
  last_heard_[live_predecessor()] = now;
  send_heartbeats();
  sim_->schedule_after(config_.suspicion_timeout,
                       [this] { check_neighbors(); });
}

void MembershipNode::send_heartbeats() {
  ++sequence_;
  const Heartbeat hb{self_, sequence_};
  const SatelliteId succ = live_successor();
  const SatelliteId pred = live_predecessor();
  if (succ != self_) net_->send(Address::sat(self_), Address::sat(succ), hb);
  if (pred != self_ && pred != succ) {
    net_->send(Address::sat(self_), Address::sat(pred), hb);
  }
  sim_->schedule_after(config_.heartbeat_period, [this] { send_heartbeats(); });
}

void MembershipNode::check_neighbors() {
  const TimePoint now = sim_->now();
  // Monitor current ring neighbors only.
  for (const SatelliteId watched : {live_successor(), live_predecessor()}) {
    if (watched == self_) continue;
    const auto it = last_heard_.find(watched);
    if (it == last_heard_.end()) {
      // Started watching a new neighbor after a view change.
      last_heard_[watched] = now;
      continue;
    }
    if (now - it->second > config_.suspicion_timeout) suspect(watched);
  }
  sim_->schedule_after(config_.heartbeat_period, [this] { check_neighbors(); });
}

void MembershipNode::suspect(SatelliteId id) { remove_member(id, true); }

void MembershipNode::remove_member(SatelliteId id, bool gossip) {
  if (id == self_ || !live_.contains(id)) return;
  live_.erase(id);
  last_heard_.erase(id);
  if (gossip) {
    const FailureNotice notice{id, self_};
    const SatelliteId succ = live_successor();
    const SatelliteId pred = live_predecessor();
    if (succ != self_) {
      net_->send(Address::sat(self_), Address::sat(succ), notice);
    }
    if (pred != self_ && pred != succ) {
      net_->send(Address::sat(self_), Address::sat(pred), notice);
    }
  }
}

void MembershipNode::on_message(const Envelope& env) {
  if (const auto* hb = env.payload.get_if<Heartbeat>()) {
    last_heard_[hb->from] = sim_->now();
    // A heartbeat from a member we removed means it is back (or we were
    // wrong); readmit it.
    if (!live_.contains(hb->from)) live_.insert(hb->from);
    return;
  }
  if (const auto* notice = env.payload.get_if<FailureNotice>()) {
    if (!live_.contains(notice->failed)) return;  // already known: stop
    remove_member(notice->failed, false);
    // Forward around the ring (dedup via the containment check above).
    const FailureNotice fwd{notice->failed, self_};
    const SatelliteId succ = live_successor();
    const SatelliteId pred = live_predecessor();
    if (succ != self_) {
      net_->send(Address::sat(self_), Address::sat(succ), fwd);
    }
    if (pred != self_ && pred != succ) {
      net_->send(Address::sat(self_), Address::sat(pred), fwd);
    }
  }
}

MembershipGroup::MembershipGroup(Simulator& sim, CrosslinkNetwork& net,
                                 const std::vector<SatelliteId>& members,
                                 MembershipConfig config) {
  OAQ_REQUIRE(members.size() >= 2, "group needs at least two members");
  nodes_.reserve(members.size());
  for (const SatelliteId id : members) {
    nodes_.push_back(
        std::make_unique<MembershipNode>(sim, net, id, members, config));
  }
  for (auto& node : nodes_) node->start();
}

MembershipNode& MembershipGroup::node(SatelliteId id) {
  for (auto& n : nodes_) {
    if (n->self() == id) return *n;
  }
  OAQ_REQUIRE(false, "unknown member");
}

bool MembershipGroup::converged(
    const std::set<SatelliteId>& actually_live) const {
  for (const auto& n : nodes_) {
    if (!actually_live.contains(n->self())) continue;  // dead nodes: skip
    if (n->live_view() != actually_live) return false;
  }
  return true;
}

}  // namespace oaq
