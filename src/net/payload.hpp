// Small-buffer-optimized message payload for the crosslink hot path.
//
// Envelopes used to carry std::any, which heap-allocates every payload
// larger than a pointer or two — one allocation per protocol message, the
// dominant per-episode cost once the DES kernel itself went allocation-free
// (ISSUE 6). Every protocol message (CoordinationRequest, AlertMessage,
// CoordinationDone, Heartbeat, FailureNotice) is a small trivially-copyable
// struct, so a Payload stores values up to `InlineBytes` in place and falls
// back to the heap only for oversized or throwing-move types. Copyable —
// tests copy Envelopes out of handlers — with `get_if<T>()` replacing
// `std::any_cast<T>(&payload)`.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace oaq {

template <std::size_t InlineBytes = 64>
class BasicPayload {
 public:
  BasicPayload() noexcept = default;

  /// Wraps any copyable value. Values that fit the inline buffer (and are
  /// nothrow-movable, so buffer-to-buffer moves cannot throw mid-transfer)
  /// are stored in place; others on the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicPayload> &&
                std::is_copy_constructible_v<std::decay_t<F>>>>
  BasicPayload(F&& value) {  // NOLINT(google-explicit-*)
    using T = std::decay_t<F>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(buffer_)) T(std::forward<F>(value));
      ops_ = &inline_ops<T>;
    } else {
      ::new (static_cast<void*>(buffer_)) T*(new T(std::forward<F>(value)));
      ops_ = &heap_ops<T>;
    }
  }

  BasicPayload(const BasicPayload& other) { copy_from(other); }
  BasicPayload(BasicPayload&& other) noexcept { move_from(other); }

  BasicPayload& operator=(const BasicPayload& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  BasicPayload& operator=(BasicPayload&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  ~BasicPayload() { reset(); }

  /// Pointer to the held value when it is exactly a T, else null — the
  /// std::any_cast<T>(&payload) idiom. Type identity is the per-type ops
  /// table address (inline variables collapse to one address program-wide).
  template <typename T>
  [[nodiscard]] const T* get_if() const noexcept {
    if constexpr (fits_inline<T>()) {
      if (ops_ != &inline_ops<T>) return nullptr;
      return std::launder(reinterpret_cast<const T*>(buffer_));
    } else {
      if (ops_ != &heap_ops<T>) return nullptr;
      return *std::launder(reinterpret_cast<T* const*>(buffer_));
    }
  }

  [[nodiscard]] bool has_value() const noexcept { return ops_ != nullptr; }

  /// True when the held value lives in the inline buffer (diagnostic; the
  /// allocation-counter bench asserts every protocol message qualifies).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*copy)(void* dst, const void* src);
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool inline_storage;
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= InlineBytes &&
           alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  static constexpr Ops inline_ops = {
      [](void* dst, const void* src) {
        ::new (dst) T(*std::launder(reinterpret_cast<const T*>(src)));
      },
      [](void* dst, void* src) noexcept {
        T* from = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*from));
        from->~T();
      },
      [](void* buf) noexcept {
        std::launder(reinterpret_cast<T*>(buf))->~T();
      },
      /*inline_storage=*/true,
  };

  template <typename T>
  static constexpr Ops heap_ops = {
      [](void* dst, const void* src) {
        ::new (dst) T*(new T(**std::launder(
            reinterpret_cast<const T* const*>(src))));
      },
      [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(T*));  // steal the owning pointer
      },
      [](void* buf) noexcept {
        delete *std::launder(reinterpret_cast<T**>(buf));
      },
      /*inline_storage=*/false,
  };

  // ops_ is assigned only after the copy lands, so a throwing payload copy
  // leaves this empty instead of pointing at an unconstructed buffer.
  void copy_from(const BasicPayload& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(buffer_, other.buffer_);
      ops_ = other.ops_;
    }
  }

  void move_from(BasicPayload& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  static_assert(InlineBytes >= sizeof(void*), "buffer must hold a pointer");
  alignas(std::max_align_t) unsigned char buffer_[InlineBytes];
  const Ops* ops_ = nullptr;
};

/// The Envelope payload type: 64 bytes inline covers every protocol message.
using Payload = BasicPayload<64>;

}  // namespace oaq
