// In-plane neighbor routing.
//
// The coordination chain runs along "satellites that revisit the target one
// after another" (§3.2, footnote 3): within a plane of k evenly phased
// satellites, the satellite that revisits a ground point Tr after slot s is
// slot (s − 1) mod k — the one trailing in orbital phase.
#pragma once

#include "common/error.hpp"
#include "orbit/constellation.hpp"
#include "orbit/plane.hpp"

namespace oaq {

/// Resolves coordination-chain neighbors within one orbital plane.
class PlaneRouter {
 public:
  explicit PlaneRouter(int plane_index, int active_count)
      : plane_index_(plane_index), active_count_(active_count) {
    OAQ_REQUIRE(active_count > 0, "router needs a nonempty plane");
  }

  /// Router for global plane `plane` of `constellation`, sized by the
  /// owning shell's per-plane slot count — shells differ in
  /// sats_per_plane, so multi-shell routing tables must not assume
  /// shell 0's ring size.
  [[nodiscard]] static PlaneRouter for_plane(const Constellation& constellation,
                                             int plane) {
    return PlaneRouter(
        plane, constellation.shell_design(constellation.shell_of_plane(plane))
                   .sats_per_plane);
  }

  /// The satellite whose footprint reaches a ground point next after `id`.
  [[nodiscard]] SatelliteId next_visitor(SatelliteId id) const {
    check(id);
    return {plane_index_, (id.slot + active_count_ - 1) % active_count_};
  }

  /// The satellite that visited before `id` (downstream of the chain).
  [[nodiscard]] SatelliteId previous_visitor(SatelliteId id) const {
    check(id);
    return {plane_index_, (id.slot + 1) % active_count_};
  }

  [[nodiscard]] int active_count() const { return active_count_; }

 private:
  void check(SatelliteId id) const {
    OAQ_REQUIRE(id.plane == plane_index_, "satellite not in this plane");
    OAQ_REQUIRE(id.slot >= 0 && id.slot < active_count_, "slot out of range");
  }

  int plane_index_;
  int active_count_;
};

}  // namespace oaq
