#include "net/crosslink.hpp"

#include "common/error.hpp"

namespace oaq {

CrosslinkNetwork::CrosslinkNetwork(Simulator& sim, Options options, Rng rng)
    : sim_(&sim), options_(options), rng_(rng) {
  OAQ_REQUIRE(options.min_delay >= Duration::zero(),
              "delays must be nonnegative");
  OAQ_REQUIRE(options.max_delay >= options.min_delay,
              "max delay must dominate min delay");
  OAQ_REQUIRE(options.loss_probability >= 0.0 &&
                  options.loss_probability <= 1.0,
              "loss probability must be in [0,1]");
}

void CrosslinkNetwork::register_node(const Address& node, Handler handler) {
  OAQ_REQUIRE(handler != nullptr, "handler must be callable");
  handlers_[node] = std::move(handler);
  failed_[node] = false;
}

void CrosslinkNetwork::fail_silent(const Address& node) {
  failed_[node] = true;
}

bool CrosslinkNetwork::is_failed(const Address& node) const {
  const auto it = failed_.find(node);
  return it != failed_.end() && it->second;
}

void CrosslinkNetwork::send(const Address& from, const Address& to,
                            std::any payload) {
  ++stats_.sent;
  if (is_failed(from)) {
    ++stats_.dropped_dead_sender;
    return;
  }
  const bool loss_exempt =
      options_.lossless_to_ground && to.kind == Address::Kind::kGround;
  if (!loss_exempt && rng_.bernoulli(options_.loss_probability)) {
    ++stats_.dropped_loss;
    return;
  }
  const Duration delay = rng_.uniform(options_.min_delay, options_.max_delay);
  Envelope env;
  env.from = from;
  env.to = to;
  env.sent = sim_->now();
  env.payload = std::move(payload);
  sim_->schedule_after(delay, [this, env = std::move(env)]() mutable {
    if (is_failed(env.to)) {
      ++stats_.dropped_dead_receiver;
      return;
    }
    const auto it = handlers_.find(env.to);
    if (it == handlers_.end()) {
      ++stats_.dropped_unregistered;
      return;
    }
    env.delivered = sim_->now();
    ++stats_.delivered;
    it->second(env);
  });
}

}  // namespace oaq
