#include "net/crosslink.hpp"

#include "common/error.hpp"

namespace oaq {

CrosslinkNetwork::CrosslinkNetwork(Simulator& sim, Options options, Rng rng)
    : sim_(&sim), options_(options), rng_(rng) {
  OAQ_REQUIRE(options.min_delay >= Duration::zero(),
              "delays must be nonnegative");
  OAQ_REQUIRE(options.max_delay >= options.min_delay,
              "max delay must dominate min delay");
  OAQ_REQUIRE(options.loss_probability >= 0.0 &&
                  options.loss_probability <= 1.0,
              "loss probability must be in [0,1]");
}

void CrosslinkNetwork::register_node(const Address& node, Handler handler) {
  OAQ_REQUIRE(handler != nullptr, "handler must be callable");
  handlers_[node] = std::move(handler);
  failed_[node] = false;
}

void CrosslinkNetwork::fail_silent(const Address& node) {
  failed_[node] = true;
}

bool CrosslinkNetwork::is_failed(const Address& node) const {
  const auto it = failed_.find(node);
  return it != failed_.end() && it->second;
}

void CrosslinkNetwork::trace_event(TraceEventType type, const Address& from,
                                   const Address& to, std::int32_t a,
                                   double v) const {
  TraceEvent ev;
  ev.episode = trace_episode_;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = type;
  ev.sat = trace_slot(from);
  ev.peer = trace_slot(to);
  ev.a = a;
  ev.v = v;
  trace_->push(ev);
}

void CrosslinkNetwork::send(const Address& from, const Address& to,
                            std::any payload) {
  ++stats_.sent;
  if (is_failed(from)) {
    ++stats_.dropped_dead_sender;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, from, to,
                  static_cast<std::int32_t>(DropReason::kDeadSender), 0.0);
    }
    return;
  }
  const bool loss_exempt =
      options_.lossless_to_ground && to.kind == Address::Kind::kGround;
  if (!loss_exempt && rng_.bernoulli(options_.loss_probability)) {
    ++stats_.dropped_loss;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, from, to,
                  static_cast<std::int32_t>(DropReason::kLoss), 0.0);
    }
    return;
  }
  const Duration delay = rng_.uniform(options_.min_delay, options_.max_delay);
  if (trace_ != nullptr) {
    trace_event(TraceEventType::kXlinkSend, from, to, 0, delay.to_seconds());
  }
  Envelope env;
  env.from = from;
  env.to = to;
  env.sent = sim_->now();
  env.payload = std::move(payload);
  sim_->schedule_after(delay, [this, env = std::move(env)]() mutable {
    if (is_failed(env.to)) {
      ++stats_.dropped_dead_receiver;
      if (trace_ != nullptr) {
        trace_event(TraceEventType::kXlinkDrop, env.from, env.to,
                    static_cast<std::int32_t>(DropReason::kDeadReceiver),
                    0.0);
      }
      return;
    }
    const auto it = handlers_.find(env.to);
    if (it == handlers_.end()) {
      ++stats_.dropped_unregistered;
      if (trace_ != nullptr) {
        trace_event(TraceEventType::kXlinkDrop, env.from, env.to,
                    static_cast<std::int32_t>(DropReason::kUnregistered),
                    0.0);
      }
      return;
    }
    env.delivered = sim_->now();
    ++stats_.delivered;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkRecv, env.from, env.to, 0,
                  (env.delivered - env.sent).to_seconds());
    }
    it->second(env);
  });
}

}  // namespace oaq
