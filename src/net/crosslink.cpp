#include "net/crosslink.hpp"

#include "common/error.hpp"

namespace oaq {

CrosslinkNetwork::CrosslinkNetwork(Simulator& sim, Options options, Rng rng)
    : sim_(&sim), options_(options), rng_(rng) {
  OAQ_REQUIRE(options.min_delay >= Duration::zero(),
              "delays must be nonnegative");
  OAQ_REQUIRE(options.max_delay >= options.min_delay,
              "max delay must dominate min delay");
  OAQ_REQUIRE(options.loss_probability >= 0.0 &&
                  options.loss_probability <= 1.0,
              "loss probability must be in [0,1]");
}

const CrosslinkNetwork::NodeState* CrosslinkNetwork::find(
    const Address& addr) const {
  if (addr.kind == Address::Kind::kGround) return &ground_;
  const int plane = addr.satellite.plane;
  const int slot = addr.satellite.slot;
  if (plane < 0 || slot < 0 ||
      static_cast<std::size_t>(plane) >= sats_.size()) {
    return nullptr;
  }
  const auto& ring = sats_[static_cast<std::size_t>(plane)];
  if (static_cast<std::size_t>(slot) >= ring.size()) return nullptr;
  return &ring[static_cast<std::size_t>(slot)];
}

CrosslinkNetwork::NodeState& CrosslinkNetwork::ensure(const Address& addr) {
  if (addr.kind == Address::Kind::kGround) return ground_;
  const int plane = addr.satellite.plane;
  const int slot = addr.satellite.slot;
  OAQ_REQUIRE(plane >= 0 && slot >= 0,
              "satellite addresses must have nonnegative plane and slot");
  if (static_cast<std::size_t>(plane) >= sats_.size()) {
    sats_.resize(static_cast<std::size_t>(plane) + 1);
  }
  auto& ring = sats_[static_cast<std::size_t>(plane)];
  if (static_cast<std::size_t>(slot) >= ring.size()) {
    ring.resize(static_cast<std::size_t>(slot) + 1);
  }
  return ring[static_cast<std::size_t>(slot)];
}

void CrosslinkNetwork::register_node(const Address& node, Handler handler) {
  OAQ_REQUIRE(handler != nullptr, "handler must be callable");
  NodeState& state = ensure(node);
  OAQ_REQUIRE(state.handler == nullptr || state.failed,
              "duplicate handler registration for a live address");
  state.handler = std::move(handler);
  state.failed = false;
}

void CrosslinkNetwork::fail_silent(const Address& node) {
  ensure(node).failed = true;
}

bool CrosslinkNetwork::is_failed(const Address& node) const {
  const NodeState* state = find(node);
  return state != nullptr && state->failed;
}

void CrosslinkNetwork::trace_event(TraceEventType type, const Address& from,
                                   const Address& to, std::int32_t a,
                                   double v) const {
  TraceEvent ev;
  ev.episode = trace_episode_;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = type;
  ev.sat = trace_slot(from);
  ev.peer = trace_slot(to);
  ev.a = a;
  ev.v = v;
  trace_->push(ev);
}

void CrosslinkNetwork::send(const Address& from, const Address& to,
                            std::any payload) {
  ++stats_.sent;
  if (is_failed(from)) {
    ++stats_.dropped_dead_sender;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, from, to,
                  static_cast<std::int32_t>(DropReason::kDeadSender), 0.0);
    }
    return;
  }
  const bool loss_exempt =
      options_.lossless_to_ground && to.kind == Address::Kind::kGround;
  if (!loss_exempt && rng_.bernoulli(options_.loss_probability)) {
    ++stats_.dropped_loss;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, from, to,
                  static_cast<std::int32_t>(DropReason::kLoss), 0.0);
    }
    return;
  }
  const Duration delay = rng_.uniform(options_.min_delay, options_.max_delay);
  if (trace_ != nullptr) {
    trace_event(TraceEventType::kXlinkSend, from, to, 0, delay.to_seconds());
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Envelope& env = pool_[slot];
  env.from = from;
  env.to = to;
  env.sent = sim_->now();
  env.payload = std::move(payload);
  // The capture is two words, so the DES kernel stores it inline: a send
  // costs no allocation beyond the payload's own std::any storage.
  sim_->schedule_after(delay, [this, slot] { deliver(slot); });
}

void CrosslinkNetwork::deliver(std::uint32_t slot) {
  // Move the envelope out and free the slot before dispatching: the
  // handler may send (growing the pool) or the caller may reuse the slot,
  // neither of which must invalidate the envelope the handler sees.
  Envelope env = std::move(pool_[slot]);
  pool_[slot].payload.reset();
  free_slots_.push_back(slot);
  if (is_failed(env.to)) {
    ++stats_.dropped_dead_receiver;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, env.from, env.to,
                  static_cast<std::int32_t>(DropReason::kDeadReceiver), 0.0);
    }
    return;
  }
  const NodeState* state = find(env.to);
  if (state == nullptr || state->handler == nullptr) {
    ++stats_.dropped_unregistered;
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, env.from, env.to,
                  static_cast<std::int32_t>(DropReason::kUnregistered), 0.0);
    }
    return;
  }
  env.delivered = sim_->now();
  ++stats_.delivered;
  if (trace_ != nullptr) {
    trace_event(TraceEventType::kXlinkRecv, env.from, env.to, 0,
                (env.delivered - env.sent).to_seconds());
  }
  state->handler(env);
}

}  // namespace oaq
