#include "net/crosslink.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {

CrosslinkNetwork::CrosslinkNetwork(Simulator& sim, Options options, Rng rng)
    : sim_(&sim), options_(options), rng_(rng) {
  OAQ_REQUIRE(options.min_delay >= Duration::zero(),
              "delays must be nonnegative");
  OAQ_REQUIRE(options.max_delay >= options.min_delay,
              "max delay must dominate min delay");
  OAQ_REQUIRE(options.loss_probability >= 0.0 &&
                  options.loss_probability <= 1.0,
              "loss probability must be in [0,1]");
  OAQ_REQUIRE(options.retry_limit >= 0, "retry limit must be nonnegative");
  OAQ_REQUIRE(options.backoff_base >= 1.0, "backoff base must be >= 1");
  if (options.health.enabled) {
    OAQ_REQUIRE(options.health.alpha > 0.0 && options.health.alpha <= 1.0,
                "health alpha must be in (0,1]");
    OAQ_REQUIRE(options.health.demote_below > 0.0 &&
                    options.health.demote_below <=
                        options.health.restore_above &&
                    options.health.restore_above <= 1.0,
                "health thresholds must satisfy 0 < demote <= restore <= 1");
    OAQ_REQUIRE(options.health.probation > Duration::zero(),
                "health probation must be positive");
    OAQ_REQUIRE(options.health.probation_backoff >= 1.0,
                "probation backoff must be >= 1");
    OAQ_REQUIRE(options.health.probation_cap >= options.health.probation,
                "probation cap must dominate the base probation");
  }
}

const CrosslinkNetwork::NodeState* CrosslinkNetwork::find(
    const Address& addr) const {
  if (addr.kind == Address::Kind::kGround) return &ground_;
  const int plane = addr.satellite.plane;
  const int slot = addr.satellite.slot;
  if (plane < 0 || slot < 0 ||
      static_cast<std::size_t>(plane) >= sats_.size()) {
    return nullptr;
  }
  const auto& ring = sats_[static_cast<std::size_t>(plane)];
  if (static_cast<std::size_t>(slot) >= ring.size()) return nullptr;
  return &ring[static_cast<std::size_t>(slot)];
}

CrosslinkNetwork::NodeState& CrosslinkNetwork::ensure(const Address& addr) {
  if (addr.kind == Address::Kind::kGround) return ground_;
  const int plane = addr.satellite.plane;
  const int slot = addr.satellite.slot;
  OAQ_REQUIRE(plane >= 0 && slot >= 0,
              "satellite addresses must have nonnegative plane and slot");
  if (static_cast<std::size_t>(plane) >= sats_.size()) {
    sats_.resize(static_cast<std::size_t>(plane) + 1);
  }
  auto& ring = sats_[static_cast<std::size_t>(plane)];
  if (static_cast<std::size_t>(slot) >= ring.size()) {
    ring.resize(static_cast<std::size_t>(slot) + 1);
  }
  return ring[static_cast<std::size_t>(slot)];
}

void CrosslinkNetwork::register_node(const Address& node, Handler handler) {
  OAQ_REQUIRE(handler != nullptr, "handler must be callable");
  NodeState& state = ensure(node);
  OAQ_REQUIRE(state.handler == nullptr || state.failed,
              "duplicate handler registration for a live address");
  state.handler = std::move(handler);
  state.failed = false;
}

void CrosslinkNetwork::fail_silent(const Address& node) {
  ensure(node).failed = true;
}

void CrosslinkNetwork::recover(const Address& node) {
  NodeState& state = ensure(node);
  // The node rejoins with its original handler; a node that never had one
  // stays unreachable (there is nothing to revive).
  if (state.handler != nullptr) state.failed = false;
}

bool CrosslinkNetwork::is_failed(const Address& node) const {
  const NodeState* state = find(node);
  return state != nullptr && state->failed;
}

void CrosslinkNetwork::trace_event(TraceEventType type, const Address& from,
                                   const Address& to, std::int32_t a,
                                   double v, std::int64_t episode) const {
  TraceEvent ev;
  ev.episode = episode;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = type;
  ev.sat = trace_slot(from);
  ev.peer = trace_slot(to);
  ev.a = a;
  ev.v = v;
  trace_->push(ev);
}

// --- Degradation hooks ------------------------------------------------------

void CrosslinkNetwork::reserve_fault_state(int planes, std::size_t clauses) {
  if (planes > link_block_planes_) {
    std::vector<std::uint16_t> grown(
        static_cast<std::size_t>(planes) * static_cast<std::size_t>(planes),
        0);
    for (int a = 0; a < link_block_planes_; ++a) {
      for (int b = 0; b < link_block_planes_; ++b) {
        grown[static_cast<std::size_t>(a) * static_cast<std::size_t>(planes) +
              static_cast<std::size_t>(b)] =
            link_blocks_[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(link_block_planes_) +
                         static_cast<std::size_t>(b)];
      }
    }
    link_blocks_ = std::move(grown);
    link_block_planes_ = planes;
  }
  if (options_.health.enabled && planes > health_planes_) {
    std::vector<LinkHealth> grown(
        static_cast<std::size_t>(planes) * static_cast<std::size_t>(planes));
    for (int a = 0; a < health_planes_; ++a) {
      for (int b = 0; b < health_planes_; ++b) {
        grown[static_cast<std::size_t>(a) * static_cast<std::size_t>(planes) +
              static_cast<std::size_t>(b)] =
            health_[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(health_planes_) +
                    static_cast<std::size_t>(b)];
      }
    }
    health_ = std::move(grown);
    health_planes_ = planes;
  }
  partitions_.reserve(clauses);
  loss_overrides_.reserve(clauses);
  delay_factors_.reserve(clauses);
  link_losses_.reserve(clauses);
}

std::uint16_t& CrosslinkNetwork::link_block_count(int plane_a, int plane_b) {
  const int needed = std::max(plane_a, plane_b) + 1;
  if (needed > link_block_planes_) reserve_fault_state(needed, 0);
  return link_blocks_[static_cast<std::size_t>(plane_a) *
                          static_cast<std::size_t>(link_block_planes_) +
                      static_cast<std::size_t>(plane_b)];
}

void CrosslinkNetwork::block_link(int plane_a, int plane_b) {
  OAQ_REQUIRE(plane_a >= 0 && plane_b >= 0, "planes must be nonnegative");
  ++link_block_count(plane_a, plane_b);
  if (plane_a != plane_b) ++link_block_count(plane_b, plane_a);
  ++active_link_blocks_;
}

void CrosslinkNetwork::unblock_link(int plane_a, int plane_b) {
  std::uint16_t& count = link_block_count(plane_a, plane_b);
  OAQ_REQUIRE(count > 0 && active_link_blocks_ > 0,
              "unblock_link without a matching block_link");
  --count;
  if (plane_a != plane_b) --link_block_count(plane_b, plane_a);
  --active_link_blocks_;
}

void CrosslinkNetwork::recompute_delay_scale() {
  double scale = 1.0;
  for (const auto& [token, factor] : delay_factors_) scale *= factor;
  delay_scale_ = scale;
}

void CrosslinkNetwork::push_delay_scale(std::uint32_t token, double factor) {
  OAQ_REQUIRE(factor > 0.0, "delay factor must be positive");
  delay_factors_.emplace_back(token, factor);
  recompute_delay_scale();
}

void CrosslinkNetwork::pop_delay_scale(std::uint32_t token) {
  const auto it = std::find_if(
      delay_factors_.begin(), delay_factors_.end(),
      [token](const auto& entry) { return entry.first == token; });
  OAQ_REQUIRE(it != delay_factors_.end(), "unknown delay-scale token");
  *it = delay_factors_.back();
  delay_factors_.pop_back();
  recompute_delay_scale();
}

void CrosslinkNetwork::push_loss_override(std::uint32_t token,
                                          double probability) {
  OAQ_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "loss probability must be in [0,1]");
  loss_overrides_.emplace_back(token, probability);
}

void CrosslinkNetwork::pop_loss_override(std::uint32_t token) {
  const auto it = std::find_if(
      loss_overrides_.begin(), loss_overrides_.end(),
      [token](const auto& entry) { return entry.first == token; });
  OAQ_REQUIRE(it != loss_overrides_.end(), "unknown loss-override token");
  *it = loss_overrides_.back();
  loss_overrides_.pop_back();
}

void CrosslinkNetwork::push_partition(std::uint32_t token,
                                      PlaneSet plane_mask) {
  partitions_.emplace_back(token, plane_mask);
}

void CrosslinkNetwork::pop_partition(std::uint32_t token) {
  const auto it = std::find_if(
      partitions_.begin(), partitions_.end(),
      [token](const auto& entry) { return entry.first == token; });
  OAQ_REQUIRE(it != partitions_.end(), "unknown partition token");
  *it = partitions_.back();
  partitions_.pop_back();
}

void CrosslinkNetwork::push_link_loss(std::uint32_t token, int plane_a,
                                      int plane_b, double probability) {
  OAQ_REQUIRE(plane_a >= 0 && plane_b >= 0, "planes must be nonnegative");
  OAQ_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "loss probability must be in [0,1]");
  link_losses_.push_back({token, plane_a, plane_b, probability});
}

void CrosslinkNetwork::pop_link_loss(std::uint32_t token) {
  const auto it = std::find_if(
      link_losses_.begin(), link_losses_.end(),
      [token](const LinkLoss& entry) { return entry.token == token; });
  OAQ_REQUIRE(it != link_losses_.end(), "unknown link-loss token");
  *it = link_losses_.back();
  link_losses_.pop_back();
}

// --- Link health (ISSUE 10) -------------------------------------------------

void CrosslinkNetwork::trace_link_event(TraceEventType type, int plane_a,
                                        int plane_b, std::int32_t a, double v,
                                        std::int64_t episode) const {
  // Plane-level event: sat/peer carry PLANE indices (like the injector's
  // fault_link_outage encoding), not satellite slots.
  TraceEvent ev;
  ev.episode = trace_attribution_ ? episode : trace_episode_;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = type;
  ev.sat = static_cast<std::int16_t>(plane_a);
  ev.peer = static_cast<std::int16_t>(plane_b);
  ev.a = a;
  ev.v = v;
  trace_->push(ev);
}

CrosslinkNetwork::LinkHealth& CrosslinkNetwork::health_cell(int plane_a,
                                                            int plane_b) {
  if (plane_a > plane_b) std::swap(plane_a, plane_b);
  if (plane_b >= health_planes_) {
    // Mirror the link_blocks_ grow-on-demand: matrix side follows the
    // highest plane ever sampled.
    const int planes = plane_b + 1;
    std::vector<LinkHealth> grown(
        static_cast<std::size_t>(planes) * static_cast<std::size_t>(planes));
    for (int a = 0; a < health_planes_; ++a) {
      for (int b = 0; b < health_planes_; ++b) {
        grown[static_cast<std::size_t>(a) * static_cast<std::size_t>(planes) +
              static_cast<std::size_t>(b)] =
            health_[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(health_planes_) +
                    static_cast<std::size_t>(b)];
      }
    }
    health_ = std::move(grown);
    health_planes_ = planes;
  }
  return health_[static_cast<std::size_t>(plane_a) *
                     static_cast<std::size_t>(health_planes_) +
                 static_cast<std::size_t>(plane_b)];
}

const CrosslinkNetwork::LinkHealth* CrosslinkNetwork::find_health(
    int plane_a, int plane_b) const {
  if (plane_a > plane_b) std::swap(plane_a, plane_b);
  if (plane_a < 0 || plane_b >= health_planes_) return nullptr;
  return &health_[static_cast<std::size_t>(plane_a) *
                      static_cast<std::size_t>(health_planes_) +
                  static_cast<std::size_t>(plane_b)];
}

Duration CrosslinkNetwork::probation_of(int level) const {
  const Options::HealthOptions& h = options_.health;
  const double scale =
      std::pow(h.probation_backoff, static_cast<double>(level - 1));
  return std::min(h.probation * scale, h.probation_cap);
}

void CrosslinkNetwork::record_link_sample(int plane_a, int plane_b,
                                          bool success,
                                          std::int64_t episode) {
  LinkHealth& h = health_cell(plane_a, plane_b);
  health_dirty_ = true;
  const Options::HealthOptions& opt = options_.health;
  h.ewma = (1.0 - opt.alpha) * h.ewma + opt.alpha * (success ? 1.0 : 0.0);
  if (!h.demoted) {
    if (!success && h.ewma < opt.demote_below) {
      // Healthy → demoted. The escalation level survives restores, so a
      // link that keeps flapping serves ever longer probations (capped).
      h.demoted = true;
      ++h.level;
      h.retry_at = sim_->now() + probation_of(h.level);
      ++demoted_links_;
      ++stats_.links_demoted;
      ++stats_.link_probations;
      if (ledger_ != nullptr) ledger_->record_probation(episode);
      if (trace_ != nullptr) {
        trace_link_event(TraceEventType::kLinkDemoted, plane_a, plane_b,
                         h.level, h.ewma, episode);
      }
    }
  } else if (success && h.ewma >= opt.restore_above) {
    // Demoted → healthy: probe traffic dragged the EWMA back up.
    h.demoted = false;
    --demoted_links_;
    ++stats_.links_restored;
    if (trace_ != nullptr) {
      trace_link_event(TraceEventType::kLinkRestored, plane_a, plane_b,
                       h.level, h.ewma, episode);
    }
  } else if (!success && sim_->now() >= h.retry_at) {
    // A probe past the probation failed: escalate and re-probation.
    ++h.level;
    h.retry_at = sim_->now() + probation_of(h.level);
    ++stats_.link_probations;
    if (ledger_ != nullptr) ledger_->record_probation(episode);
  }
}

bool CrosslinkNetwork::link_avoided(int plane_a, int plane_b) const {
  if (demoted_links_ == 0) return false;
  const LinkHealth* h = find_health(plane_a, plane_b);
  return h != nullptr && h->demoted && sim_->now() < h->retry_at;
}

void CrosslinkNetwork::note_reroute(std::int64_t episode) {
  ++stats_.reroutes;
  if (ledger_ != nullptr) ledger_->record_reroute(episode);
}

double CrosslinkNetwork::link_health_ewma(int plane_a, int plane_b) const {
  const LinkHealth* h = find_health(plane_a, plane_b);
  return h != nullptr ? h->ewma : 1.0;
}

bool CrosslinkNetwork::health_pristine() const {
  if (demoted_links_ != 0) return false;
  const LinkHealth pristine{};
  for (const LinkHealth& h : health_) {
    if (!(h == pristine)) return false;
  }
  return true;
}

bool CrosslinkNetwork::link_blocked(const Address& from,
                                    const Address& to) const {
  if (from.kind == Address::Kind::kGround ||
      to.kind == Address::Kind::kGround) {
    return false;  // outages and partitions only sever crosslinks
  }
  const int pa = from.satellite.plane;
  const int pb = to.satellite.plane;
  if (active_link_blocks_ > 0 && pa < link_block_planes_ &&
      pb < link_block_planes_ &&
      link_blocks_[static_cast<std::size_t>(pa) *
                       static_cast<std::size_t>(link_block_planes_) +
                   static_cast<std::size_t>(pb)] > 0) {
    return true;
  }
  for (const auto& [token, mask] : partitions_) {
    if (mask.test(pa) != mask.test(pb)) return true;
  }
  return false;
}

// --- Transport --------------------------------------------------------------

std::uint32_t CrosslinkNetwork::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void CrosslinkNetwork::reset(Rng rng) {
  OAQ_REQUIRE(free_slots_.size() == pool_.size(),
              "reset with envelopes still in flight");
  rng_ = rng;
  stats_ = {};
  trace_ = nullptr;
  trace_episode_ = -1;
  trace_attribution_ = false;
  ledger_ = nullptr;
  ground_.failed = false;
  for (auto& ring : sats_) {
    for (auto& state : ring) state.failed = false;
  }
  partitions_.clear();
  loss_overrides_.clear();
  delay_factors_.clear();
  delay_scale_ = 1.0;
  link_losses_.clear();
  if (active_link_blocks_ > 0) {
    std::fill(link_blocks_.begin(), link_blocks_.end(), std::uint16_t{0});
    active_link_blocks_ = 0;
  }
  if (health_dirty_) {
    std::fill(health_.begin(), health_.end(), LinkHealth{});
    health_dirty_ = false;
    demoted_links_ = 0;
  }
}

void CrosslinkNetwork::send(const Address& from, const Address& to,
                            Payload payload, std::int64_t episode) {
  // Episode-less sends inherit the network-wide trace episode, so the
  // single-episode engines (which stamp it per episode) need no change.
  if (episode < 0) episode = trace_episode_;
  ++stats_.sent;
  if (is_failed(from)) {
    ++stats_.dropped_dead_sender;
    if (ledger_ != nullptr) {
      ledger_->record_drop(episode, DropReason::kDeadSender);
    }
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkDrop, from, to,
                  static_cast<std::int32_t>(DropReason::kDeadSender), 0.0,
                  trace_attribution_ ? episode : trace_episode_);
    }
    return;
  }
  const std::uint32_t slot = alloc_slot();
  Envelope& env = pool_[slot];
  env.from = from;
  env.to = to;
  env.sent = sim_->now();
  env.attempt = 0;
  env.episode = episode;
  env.payload = std::move(payload);
  attempt(slot);
}

void CrosslinkNetwork::attempt(std::uint32_t slot) {
  Envelope& env = pool_[slot];
  env.attempt_started = sim_->now();
  // A sender that died between attempts stops retrying (the first attempt
  // checked liveness in send(), preserving the pre-retry stat semantics).
  if (env.attempt > 0 && is_failed(env.from)) {
    final_drop(slot, DropReason::kDeadSender);
    return;
  }
  if (options_.health.enabled && demoted_links_ > 0 &&
      env.from.kind == Address::Kind::kSatellite &&
      env.to.kind == Address::Kind::kSatellite) {
    // An attempt risked over a demoted link whose probation has elapsed is
    // a probe — the traffic that can restore the link's health.
    const LinkHealth* h =
        find_health(env.from.satellite.plane, env.to.satellite.plane);
    if (h != nullptr && h->demoted && sim_->now() >= h->retry_at) {
      ++stats_.link_probes;
      if (trace_ != nullptr) {
        trace_link_event(TraceEventType::kLinkProbe, env.from.satellite.plane,
                         env.to.satellite.plane, h->level, h->ewma,
                         env.episode);
      }
    }
  }
  if ((active_link_blocks_ > 0 || !partitions_.empty()) &&
      link_blocked(env.from, env.to)) {
    fail_attempt(slot, DropReason::kLinkDown);
    return;
  }
  const bool loss_exempt =
      options_.lossless_to_ground && env.to.kind == Address::Kind::kGround;
  if (!loss_exempt && rng_.bernoulli(effective_loss(env.from, env.to))) {
    fail_attempt(slot, DropReason::kLoss);
    return;
  }
  Duration lo = options_.min_delay;
  Duration hi = options_.max_delay;
  if (!delay_factors_.empty()) {
    lo = lo * delay_scale_;
    hi = hi * delay_scale_;
  }
  const Duration delay = rng_.uniform(lo, hi);
  if (trace_ != nullptr && env.attempt == 0) {
    trace_event(TraceEventType::kXlinkSend, env.from, env.to, 0,
                delay.to_seconds(), trace_episode_of(env));
  }
  // The capture is two words, so the DES kernel stores it inline: a send
  // costs no allocation at all for inline payloads (every protocol message).
  sim_->schedule_after(delay, [this, slot] { deliver(slot); });
}

void CrosslinkNetwork::fail_attempt(std::uint32_t slot, DropReason reason) {
  Envelope& env = pool_[slot];
  if (options_.health.enabled &&
      env.from.kind == Address::Kind::kSatellite &&
      env.to.kind == Address::Kind::kSatellite) {
    record_link_sample(env.from.satellite.plane, env.to.satellite.plane,
                       /*success=*/false, env.episode);
  }
  if (options_.reliable && env.attempt < options_.retry_limit) {
    // Ack-timeout retransmission: the sender detects the failure
    // 2·max_delay·base^i after attempt i started (worst-case round trip,
    // backed off), then re-sends. Summing the timeouts over the full
    // budget plus one final flight gives the δ_eff bound of DESIGN.md §11.
    const Duration ack_timeout =
        2.0 * options_.max_delay *
        std::pow(options_.backoff_base, static_cast<double>(env.attempt));
    ++env.attempt;
    ++stats_.retries;
    if (ledger_ != nullptr) ledger_->record_retry(env.episode);
    if (trace_ != nullptr) {
      trace_event(TraceEventType::kXlinkRetry, env.from, env.to,
                  static_cast<std::int32_t>(reason),
                  ack_timeout.to_seconds(), trace_episode_of(env));
    }
    const TimePoint retry_at = env.attempt_started + ack_timeout;
    sim_->schedule_at(std::max(retry_at, sim_->now()),
                      [this, slot] { attempt(slot); });
    return;
  }
  final_drop(slot, reason);
}

void CrosslinkNetwork::final_drop(std::uint32_t slot, DropReason reason) {
  // Move the envelope out and free the slot before any observer runs: the
  // drop handler may send, growing the pool.
  Envelope env = std::move(pool_[slot]);
  pool_[slot].payload.reset();
  free_slots_.push_back(slot);
  switch (reason) {
    case DropReason::kDeadSender: ++stats_.dropped_dead_sender; break;
    case DropReason::kLoss: ++stats_.dropped_loss; break;
    case DropReason::kDeadReceiver: ++stats_.dropped_dead_receiver; break;
    case DropReason::kUnregistered: ++stats_.dropped_unregistered; break;
    case DropReason::kLinkDown: ++stats_.dropped_link; break;
  }
  if (options_.reliable && env.attempt > 0) ++stats_.retries_exhausted;
  if (ledger_ != nullptr) {
    ledger_->record_drop(env.episode, reason);
    if (options_.reliable && env.attempt > 0) {
      ledger_->record_retry_exhausted(env.episode);
    }
  }
  if (trace_ != nullptr) {
    trace_event(TraceEventType::kXlinkDrop, env.from, env.to,
                static_cast<std::int32_t>(reason), 0.0,
                trace_episode_of(env));
  }
  if (drop_handler_ != nullptr && reason != DropReason::kDeadSender) {
    drop_handler_(env, reason);
  }
}

void CrosslinkNetwork::deliver(std::uint32_t slot) {
  // Failure checks read the envelope in place: a reliable-mode retry keeps
  // the slot, so the envelope must not be moved out until delivery is
  // certain.
  if (is_failed(pool_[slot].to)) {
    fail_attempt(slot, DropReason::kDeadReceiver);
    return;
  }
  const NodeState* state = find(pool_[slot].to);
  if (state == nullptr || state->handler == nullptr) {
    final_drop(slot, DropReason::kUnregistered);
    return;
  }
  // Move the envelope out and free the slot before dispatching: the
  // handler may send (growing the pool) or the caller may reuse the slot,
  // neither of which must invalidate the envelope the handler sees.
  Envelope env = std::move(pool_[slot]);
  pool_[slot].payload.reset();
  free_slots_.push_back(slot);
  env.delivered = sim_->now();
  ++stats_.delivered;
  if (options_.health.enabled &&
      env.from.kind == Address::Kind::kSatellite &&
      env.to.kind == Address::Kind::kSatellite) {
    record_link_sample(env.from.satellite.plane, env.to.satellite.plane,
                       /*success=*/true, env.episode);
  }
  if (trace_ != nullptr) {
    trace_event(TraceEventType::kXlinkRecv, env.from, env.to, 0,
                (env.delivered - env.sent).to_seconds(),
                trace_episode_of(env));
  }
  state->handler(env);
}

}  // namespace oaq
