#include "fault/injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oaq {

namespace {

constexpr TraceEventType trace_type_of(FaultClauseKind kind) {
  switch (kind) {
    case FaultClauseKind::kFailSilent:
      return TraceEventType::kFaultFailSilent;
    case FaultClauseKind::kRecover:
      return TraceEventType::kFaultRecover;
    case FaultClauseKind::kLinkOutage:
      return TraceEventType::kFaultLinkOutage;
    case FaultClauseKind::kDelaySpike:
      return TraceEventType::kFaultDelaySpike;
    case FaultClauseKind::kBurstLoss:
      return TraceEventType::kFaultBurstLoss;
    case FaultClauseKind::kPartition:
      return TraceEventType::kFaultPartition;
    case FaultClauseKind::kLinkLoss:
      return TraceEventType::kFaultLinkLoss;
    case FaultClauseKind::kGeLoss:
    case FaultClauseKind::kOutageTrain:
    case FaultClauseKind::kSatLifecycle:
      // Stochastic kinds are expanded away before arming; they never
      // reach the event loop (the mapping is only for completeness).
      return TraceEventType::kFaultLinkLoss;
  }
  return TraceEventType::kFaultFailSilent;  // unreachable
}

}  // namespace

FaultInjector::FaultInjector(Simulator& sim, CrosslinkNetwork& net,
                             const FaultPlan& plan, Rng rng,
                             ShardTraceBuffer* trace, std::int64_t episode_id,
                             EpisodeLedger* ledger,
                             FaultProcessExpander* expander)
    : sim_(&sim),
      net_(&net),
      plan_(&plan),
      rng_(rng),
      trace_(trace),
      episode_id_(episode_id),
      ledger_(ledger),
      expander_(expander) {}

void FaultInjector::arm(TimePoint anchor) {
  OAQ_REQUIRE(!armed_, "a FaultInjector arms exactly once");
  armed_ = true;
  if (has_stochastic_clauses(*plan_)) {
    // Expand the generative clauses into scripted ones from the reserved
    // fault stream — before any event fires, so protocol draws are
    // untouched and the expansion is identical at any worker count.
    if (expander_ == nullptr) {
      owned_expander_ = std::make_unique<FaultProcessExpander>();
      expander_ = owned_expander_.get();
    }
    plan_ = &expander_->expand(*plan_, rng_);
    stats_.expanded_clauses = plan_->size();
  }
  stats_.clauses_armed = plan_->size();
  if (plan_->empty()) return;

  net_->reserve_fault_state(plan_->max_plane() + 1, plan_->size());
  const auto& clauses = plan_->clauses();
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    const FaultClause& c = clauses[i];
    if (c.windowed()) {
      sim_->schedule_at(std::max(anchor + c.window_start, sim_->now()),
                        [this, i] { activate(i); });
      sim_->schedule_at(std::max(anchor + c.window_end, sim_->now()),
                        [this, i] { deactivate(i); });
    } else {
      sim_->schedule_at(std::max(anchor + c.at, sim_->now()),
                        [this, i] { activate(i); });
    }
  }
}

void FaultInjector::activate(std::size_t index) {
  const FaultClause& c = plan_->clauses()[index];
  const auto token = static_cast<std::uint32_t>(index);
  switch (c.kind) {
    case FaultClauseKind::kFailSilent:
      net_->fail_silent(Address::sat(c.satellite));
      break;
    case FaultClauseKind::kRecover:
      net_->recover(Address::sat(c.satellite));
      break;
    case FaultClauseKind::kLinkOutage:
      net_->block_link(c.plane_a, c.plane_b);
      break;
    case FaultClauseKind::kDelaySpike:
      net_->push_delay_scale(token, c.value);
      break;
    case FaultClauseKind::kBurstLoss:
      net_->push_loss_override(token, c.value);
      break;
    case FaultClauseKind::kPartition:
      net_->push_partition(token, c.plane_mask);
      break;
    case FaultClauseKind::kLinkLoss:
      net_->push_link_loss(token, c.plane_a, c.plane_b, c.value);
      break;
    case FaultClauseKind::kGeLoss:
    case FaultClauseKind::kOutageTrain:
    case FaultClauseKind::kSatLifecycle:
      break;  // unreachable: expanded away in arm()
  }
  if (c.origin == FaultClauseOrigin::kLifecycle) {
    // Spare-swap accounting (invariant I11): lifecycle expansions always
    // emit matched death/spare pairs, and both events always fire.
    if (c.kind == FaultClauseKind::kFailSilent) ++stats_.lifecycle_deaths;
    if (c.kind == FaultClauseKind::kRecover) ++stats_.lifecycle_spares;
  }
  ++stats_.activations;
  if (ledger_ != nullptr) ledger_->record_fault(episode_id_);
  trace_clause(c, +1);
}

void FaultInjector::deactivate(std::size_t index) {
  const FaultClause& c = plan_->clauses()[index];
  const auto token = static_cast<std::uint32_t>(index);
  switch (c.kind) {
    case FaultClauseKind::kLinkOutage:
      net_->unblock_link(c.plane_a, c.plane_b);
      break;
    case FaultClauseKind::kDelaySpike:
      net_->pop_delay_scale(token);
      break;
    case FaultClauseKind::kBurstLoss:
      net_->pop_loss_override(token);
      break;
    case FaultClauseKind::kPartition:
      net_->pop_partition(token);
      break;
    case FaultClauseKind::kLinkLoss:
      net_->pop_link_loss(token);
      break;
    case FaultClauseKind::kFailSilent:
    case FaultClauseKind::kRecover:
      break;  // point clauses never deactivate
    case FaultClauseKind::kGeLoss:
    case FaultClauseKind::kOutageTrain:
    case FaultClauseKind::kSatLifecycle:
      break;  // unreachable: expanded away in arm()
  }
  trace_clause(c, -1);
}

void FaultInjector::trace_clause(const FaultClause& c,
                                 std::int32_t direction) const {
  if (trace_ == nullptr) return;
  TraceEvent ev;
  ev.episode = episode_id_;
  ev.t_min = sim_->now().since_origin().to_minutes();
  ev.type = trace_type_of(c.kind);
  ev.a = direction;
  switch (c.kind) {
    case FaultClauseKind::kFailSilent:
    case FaultClauseKind::kRecover:
      ev.sat = static_cast<std::int16_t>(c.satellite.slot);
      ev.peer = static_cast<std::int16_t>(c.satellite.plane);
      break;
    case FaultClauseKind::kLinkOutage:
      ev.sat = static_cast<std::int16_t>(c.plane_a);
      ev.peer = static_cast<std::int16_t>(c.plane_b);
      break;
    case FaultClauseKind::kDelaySpike:
    case FaultClauseKind::kBurstLoss:
      ev.v = c.value;
      break;
    case FaultClauseKind::kPartition:
      ev.v = static_cast<double>(c.plane_mask.low_word());
      break;
    case FaultClauseKind::kLinkLoss:
      ev.sat = static_cast<std::int16_t>(c.plane_a);
      ev.peer = static_cast<std::int16_t>(c.plane_b);
      ev.v = c.value;
      break;
    case FaultClauseKind::kGeLoss:
    case FaultClauseKind::kOutageTrain:
    case FaultClauseKind::kSatLifecycle:
      break;  // unreachable: expanded away in arm()
  }
  trace_->push(ev);
}

}  // namespace oaq
