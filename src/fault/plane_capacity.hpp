// Orbital-plane capacity dependability model — the UltraSAN substitute.
//
// Computes P(k): the steady-state probability that a plane has k active
// operational satellites (paper Fig. 7, Eq. 3), under
//   * statistically independent per-satellite failures at rate λ,
//   * in-orbit spares deployed (with a small activation delay) to replace
//     early failures,
//   * a THRESHOLD-TRIGGERED ground-spare policy: when capacity first drops
//     to the threshold η, a full-restoration launch (plane back to
//     14 active + 2 spares) is initiated with a multi-month lead time;
//     while that launch is pending, each further failure below η triggers
//     an expedited single-satellite replacement with a shorter lead time,
//   * a SCHEDULED policy: every φ hours the whole constellation is restored
//     to design capacity (a regeneration point).
//
// The paper does not publish its SAN's internal delays; the lead-time
// defaults below are calibrated so the published Fig. 7 narrative holds:
// P(14) dominates at λ = 1e-5/hr, P(η) becomes the dominant state at
// λ = 1e-4/hr, and capacities below η-1 are rare (the paper neglects
// k < 9 for η = 10). See DESIGN.md §3 and EXPERIMENTS.md.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "fault/ctmc.hpp"

namespace oaq {

/// Spare-deployment policy parameters (see file comment).
struct SparePolicy {
  int in_orbit_spares = 2;
  Duration spare_activation_delay = Duration::hours(24);
  int ground_threshold = 10;  ///< η: launch when capacity drops to this
  Duration launch_lead_time = Duration::hours(8000);
  bool expedited_replacements = true;
  Duration expedited_lead_time = Duration::hours(150);
  Duration scheduled_period = Duration::hours(30000);  ///< φ
};

/// One orbital plane's dependability model.
struct PlaneDependability {
  int design_active = 14;
  Rate satellite_failure_rate = Rate::per_hour(1e-5);  ///< λ
  SparePolicy policy;
};

struct ConstellationDesign;  // src/orbit/constellation.hpp

/// Dependability model of one plane of `design`: design capacity and
/// in-orbit spares come from the shell, and the ground-launch threshold η
/// keeps the reference model's margin (design − 4, floored at 1) so the
/// 14-active default still yields η = 10. Shell-aware call sites derive
/// one model per shell instead of assuming the 7×14+2 reference.
[[nodiscard]] PlaneDependability plane_dependability_of(
    const ConstellationDesign& design);

/// A step in a plane-capacity sample path.
struct CapacityEvent {
  TimePoint at{};
  int active = 0;  ///< capacity immediately after the event
};

/// Simulate one sample path of the plane-capacity process over `horizon`.
/// The path starts at design capacity; scheduled restorations occur at
/// every multiple of φ. The returned trace starts with an event at t = 0.
[[nodiscard]] std::vector<CapacityEvent> simulate_capacity_trace(
    const PlaneDependability& model, std::uint64_t seed, Duration horizon);

/// Steady-state pmf of the active-satellite count K, estimated from
/// `n_cycles` regeneration cycles (cycle length φ). Exact in the limit —
/// the scheduled restoration makes cycles i.i.d.
[[nodiscard]] DiscretePmf plane_capacity_pmf(const PlaneDependability& model,
                                             std::uint64_t seed,
                                             int n_cycles = 400);

/// Exact reference pmf for the DEGENERATE policy (instantaneous in-orbit
/// spares, no threshold policy): the capacity process is then a pure-death
/// CTMC over one scheduled cycle, solvable by uniformization. Used to
/// validate the simulator.
[[nodiscard]] std::vector<double> pure_death_reference_pmf(
    const PlaneDependability& model);

}  // namespace oaq
