#include "fault/plane_capacity.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "orbit/constellation.hpp"

namespace oaq {

PlaneDependability plane_dependability_of(const ConstellationDesign& design) {
  PlaneDependability model;
  model.design_active = design.sats_per_plane;
  model.policy.in_orbit_spares = design.in_orbit_spares_per_plane;
  model.policy.ground_threshold = std::max(1, design.sats_per_plane - 4);
  return model;
}

namespace {

void validate(const PlaneDependability& model) {
  OAQ_REQUIRE(model.design_active > 0, "plane needs active satellites");
  OAQ_REQUIRE(model.policy.in_orbit_spares >= 0, "spares must be >= 0");
  OAQ_REQUIRE(model.policy.ground_threshold >= 0 &&
                  model.policy.ground_threshold < model.design_active,
              "threshold must be below design capacity");
  OAQ_REQUIRE(model.policy.scheduled_period > Duration::zero(),
              "scheduled period must be positive");
  OAQ_REQUIRE(model.satellite_failure_rate > Rate::zero(),
              "failure rate must be positive");
}

/// In-cycle pending arrival.
struct Arrival {
  double at_h = 0.0;  // absolute hours
  enum class Kind { kSpare, kExpedited, kLaunch } kind = Kind::kSpare;
};

/// Simulates cycles, invoking `weigh(k, dt_hours)` for every constant-k
/// stretch and `record(t_hours, k)` at every capacity change.
template <typename WeighFn, typename RecordFn>
void run_cycles(const PlaneDependability& model, Rng& rng, double horizon_h,
                WeighFn&& weigh, RecordFn&& record) {
  const double lambda_h = model.satellite_failure_rate.per_hour_value();
  const SparePolicy& pol = model.policy;
  const double phi_h = pol.scheduled_period.to_hours();
  const double ts_h = pol.spare_activation_delay.to_hours();
  const double tl_h = pol.launch_lead_time.to_hours();
  const double te_h = pol.expedited_lead_time.to_hours();

  double t = 0.0;
  int k = model.design_active;
  int spares = pol.in_orbit_spares;
  bool launch_pending = false;
  std::vector<Arrival> arrivals;
  record(t, k);

  auto full_restore = [&](double at) {
    arrivals.clear();
    launch_pending = false;
    spares = pol.in_orbit_spares;
    if (k != model.design_active) {
      k = model.design_active;
      record(at, k);
    }
  };

  double next_cycle_end = phi_h;
  while (t < horizon_h) {
    // Next failure (exponential race; resampled at each event is valid by
    // memorylessness).
    const double t_fail =
        k > 0 ? t + rng.exponential(static_cast<double>(k) * lambda_h)
              : std::numeric_limits<double>::infinity();
    // Earliest pending arrival.
    double t_arr = std::numeric_limits<double>::infinity();
    std::size_t arr_idx = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (arrivals[i].at_h < t_arr) {
        t_arr = arrivals[i].at_h;
        arr_idx = i;
      }
    }
    const double t_next =
        std::min({t_fail, t_arr, next_cycle_end, horizon_h});
    weigh(k, t_next - t);
    t = t_next;
    if (t >= horizon_h) break;

    if (t == next_cycle_end) {
      full_restore(t);
      next_cycle_end += phi_h;
      continue;
    }
    if (t == t_fail) {
      k -= 1;
      record(t, k);
      if (spares > 0) {
        --spares;
        arrivals.push_back({t + ts_h, Arrival::Kind::kSpare});
      }
      if (k <= pol.ground_threshold && !launch_pending) {
        launch_pending = true;
        arrivals.push_back({t + tl_h, Arrival::Kind::kLaunch});
      } else if (k < pol.ground_threshold && launch_pending &&
                 pol.expedited_replacements) {
        arrivals.push_back({t + te_h, Arrival::Kind::kExpedited});
      }
      continue;
    }
    // Arrival.
    const Arrival arr = arrivals[arr_idx];
    arrivals.erase(arrivals.begin() + static_cast<std::ptrdiff_t>(arr_idx));
    switch (arr.kind) {
      case Arrival::Kind::kLaunch:
        full_restore(t);
        break;
      case Arrival::Kind::kSpare:
      case Arrival::Kind::kExpedited:
        if (k < model.design_active) {
          k += 1;
          record(t, k);
        }
        break;
    }
  }
}

}  // namespace

std::vector<CapacityEvent> simulate_capacity_trace(
    const PlaneDependability& model, std::uint64_t seed, Duration horizon) {
  validate(model);
  OAQ_REQUIRE(horizon > Duration::zero(), "horizon must be positive");
  Rng rng(seed);
  std::vector<CapacityEvent> trace;
  run_cycles(
      model, rng, horizon.to_hours(), [](int, double) {},
      [&](double t_h, int k) {
        trace.push_back({TimePoint::at(Duration::hours(t_h)), k});
      });
  return trace;
}

DiscretePmf plane_capacity_pmf(const PlaneDependability& model,
                               std::uint64_t seed, int n_cycles) {
  validate(model);
  OAQ_REQUIRE(n_cycles > 0, "need at least one cycle");
  Rng rng(seed);
  DiscretePmf pmf;
  const double horizon_h =
      model.policy.scheduled_period.to_hours() * n_cycles;
  run_cycles(
      model, rng, horizon_h,
      [&](int k, double dt) {
        if (dt > 0.0) pmf.add(k, dt);
      },
      [](double, int) {});
  return pmf;
}

std::vector<double> pure_death_reference_pmf(const PlaneDependability& model) {
  validate(model);
  // States: cumulative failures f = 0..(design+spares); with instantaneous
  // spare activation the active capacity is k(f) = min(design, total - f).
  const int design = model.design_active;
  const int total = design + model.policy.in_orbit_spares;
  const double lambda_h = model.satellite_failure_rate.per_hour_value();

  Ctmc chain(static_cast<std::size_t>(total + 1));
  auto k_of = [&](int f) { return std::min(design, total - f); };
  for (int f = 0; f < total; ++f) {
    const int k = k_of(f);
    if (k > 0) {
      chain.add_transition(static_cast<std::size_t>(f),
                           static_cast<std::size_t>(f + 1),
                           static_cast<double>(k) * lambda_h);
    }
  }
  std::vector<double> p0(static_cast<std::size_t>(total + 1), 0.0);
  p0[0] = 1.0;
  const auto avg =
      chain.time_averaged(p0, model.policy.scheduled_period.to_hours());

  std::vector<double> by_k(static_cast<std::size_t>(design + 1), 0.0);
  for (int f = 0; f <= total; ++f) {
    by_k[static_cast<std::size_t>(k_of(f))] += avg[static_cast<std::size_t>(f)];
  }
  return by_k;
}

}  // namespace oaq
