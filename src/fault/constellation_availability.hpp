// Constellation-level availability: composing independent per-plane
// capacity distributions.
//
// The paper evaluates QoS per plane (no shared spares, so "structural
// variations of neighboring planes will have no effects on the QoS
// measure", §4.2.2). For constellation-level dashboards — expected total
// capacity, probability that some plane has gone underlapping — the
// per-plane pmf must be composed across the (statistically independent)
// planes. This module does that by exact convolution.
#pragma once

#include <vector>

#include "common/stats.hpp"

namespace oaq {

/// Composition of `num_planes` i.i.d. plane-capacity distributions.
class ConstellationAvailability {
 public:
  /// `per_plane` is a capacity pmf (e.g. from plane_capacity_pmf);
  /// `max_capacity` is the per-plane design capacity.
  ConstellationAvailability(const DiscretePmf& per_plane, int num_planes,
                            int max_capacity);

  [[nodiscard]] int num_planes() const { return num_planes_; }

  /// pmf of the total active-satellite count across all planes
  /// (index = count, exact convolution).
  [[nodiscard]] const std::vector<double>& total_pmf() const { return total_; }

  [[nodiscard]] double expected_total() const;

  /// P(every plane has at least `k` active satellites).
  [[nodiscard]] double probability_all_planes_at_least(int k) const;

  /// P(at least one plane has fewer than `k` active satellites).
  [[nodiscard]] double probability_some_plane_below(int k) const {
    return 1.0 - probability_all_planes_at_least(k);
  }

  /// Expected number of planes with fewer than `k` active satellites
  /// (e.g. k = 11: expected underlapping planes of the reference design).
  [[nodiscard]] double expected_planes_below(int k) const;

 private:
  std::vector<double> plane_pmf_;  ///< dense per-plane pmf, index = k
  std::vector<double> total_;
  int num_planes_;
};

}  // namespace oaq
