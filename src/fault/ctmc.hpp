// Finite continuous-time Markov chains with uniformization solvers.
//
// This is the numerical core of the UltraSAN substitute: the plane
// dependability model (plane_capacity.hpp) is validated against exact CTMC
// transient/time-averaged solutions computed here. Uniformization gives
// numerically stable results for the stiff rate ranges in the paper
// (λ = 1e-5/hr against 30000-hr horizons).
#pragma once

#include <cstddef>
#include <vector>

namespace oaq {

/// A finite CTMC defined by its transition rates.
class Ctmc {
 public:
  explicit Ctmc(std::size_t num_states);

  [[nodiscard]] std::size_t num_states() const { return exit_rate_.size(); }

  /// Add a transition `from` → `to` with the given rate (>0). Multiple
  /// calls accumulate.
  void add_transition(std::size_t from, std::size_t to, double rate);

  /// Transient distribution p(t) = p0·e^{Qt} by uniformization, to
  /// truncation tolerance `tol`.
  [[nodiscard]] std::vector<double> transient(const std::vector<double>& p0,
                                              double t,
                                              double tol = 1e-12) const;

  /// Time-averaged distribution (1/T)∫₀ᵀ p(t)dt — the quantity a Poisson
  /// observer (PASTA) sees over a deterministic cycle of length T.
  [[nodiscard]] std::vector<double> time_averaged(const std::vector<double>& p0,
                                                  double t,
                                                  double tol = 1e-12) const;

  /// Stationary distribution of an irreducible chain (power iteration on
  /// the uniformized DTMC).
  [[nodiscard]] std::vector<double> steady_state(double tol = 1e-14,
                                                 int max_iter = 1000000) const;

 private:
  struct Arc {
    std::size_t to;
    double rate;
  };

  /// One step of the uniformized DTMC: y = x·P.
  [[nodiscard]] std::vector<double> dtmc_step(const std::vector<double>& x,
                                              double uniform_rate) const;

  std::vector<std::vector<Arc>> arcs_;
  std::vector<double> exit_rate_;
};

}  // namespace oaq
