#include "fault/invariants.hpp"

#include <sstream>

namespace oaq {

void InvariantChecker::check_episode(std::int64_t episode_id,
                                     const EpisodeResult& r,
                                     const ProtocolConfig& config) {
  ++episodes_checked_;
  if (r.detected && r.terminations < 1) {
    record(episode_id, "I1", "detected episode recorded no termination");
  }
  if (r.double_terminations != 0) {
    std::ostringstream os;
    os << r.double_terminations << " agent(s) terminated twice";
    record(episode_id, "I2", os.str());
  }
  if (r.alert_delivered && (!r.detected || r.alerts_sent < 1)) {
    record(episode_id, "I3", "alert delivered without detection/alert");
  }
  if (r.alert_delivered) {
    const bool should_be_timely =
        r.first_alert_sent <= r.detection + config.tau;
    if (r.timely != should_be_timely) {
      record(episode_id, "I4",
             r.timely ? "late alert counted timely"
                      : "timely alert counted late");
    }
  }
  if (r.alerts_sent > r.terminations) {
    std::ostringstream os;
    os << r.alerts_sent << " alerts from " << r.terminations
       << " terminations";
    record(episode_id, "I5", os.str());
  }
  if (r.alerts_sent > 1 && r.wait_rescues < 1) {
    record(episode_id, "I6", "duplicate alert without a wait-deadline rescue");
  }
  const EpisodeTelemetry& t = r.telemetry;
  const std::uint64_t drops = t.messages_dropped_loss +
                              t.messages_dropped_dead +
                              t.messages_dropped_link;
  if (drops == 0 && t.faults_injected == 0 && !r.all_participants_resolved) {
    record(episode_id, "I7", "unresolved participant in a clean episode");
  }
  const std::int64_t participants =
      static_cast<std::int64_t>(r.participants.size());
  const std::int64_t reroute_bound =
      static_cast<std::int64_t>(r.horizon_passes) *
      (participants > 0 ? participants : 1);
  if (r.reroutes > reroute_bound) {
    std::ostringstream os;
    os << r.reroutes << " re-routes exceed the search space bound "
       << reroute_bound << " (routing livelock)";
    record(episode_id, "I9", os.str());
  }
  if (t.links_demoted != t.links_restored + t.links_demoted_end) {
    std::ostringstream os;
    os << "health-state imbalance: demoted " << t.links_demoted
       << " != restored " << t.links_restored << " + still-demoted "
       << t.links_demoted_end;
    record(episode_id, "I10", os.str());
  }
  if (t.lifecycle_deaths != t.lifecycle_spares) {
    std::ostringstream os;
    os << "spare-swap imbalance: " << t.lifecycle_deaths << " deaths vs "
       << t.lifecycle_spares << " spare activations";
    record(episode_id, "I11", os.str());
  }
  if (t.degradation_active_end != 0) {
    record(episode_id, "I12",
           "windowed degradation still active after quiesce");
  }
}

void InvariantChecker::check_simulator(std::int64_t episode_id,
                                       const SimAccounting& a) {
  if (a.scheduled != a.processed + a.cancelled + a.pending) {
    std::ostringstream os;
    os << "event ledger imbalance: scheduled " << a.scheduled
       << " != processed " << a.processed << " + cancelled " << a.cancelled
       << " + pending " << a.pending;
    record(episode_id, "I8", os.str());
  }
}

void InvariantChecker::merge(const InvariantChecker& other) {
  violations_ += other.violations_;
  episodes_checked_ += other.episodes_checked_;
  for (const std::string& sample : other.samples_) {
    if (samples_.size() >= kMaxSamples) break;
    samples_.push_back(sample);
  }
}

void InvariantChecker::record(std::int64_t episode_id,
                              std::string_view invariant,
                              std::string_view what) {
  ++violations_;
  if (samples_.size() >= kMaxSamples) return;
  std::ostringstream os;
  os << invariant << " episode " << episode_id << ": " << what;
  samples_.push_back(os.str());
}

}  // namespace oaq
