// Deterministic DES-driven fault injection (ISSUE 5 tentpole).
//
// A FaultInjector replays a FaultPlan against one CrosslinkNetwork:
// arm(anchor) schedules every clause as ordinary pooled DES events (one
// for point clauses, activate + deactivate for windowed ones), so faults
// interleave with protocol events under the simulator's deterministic
// tie-breaking and the run is bit-identical at any worker count.
//
// Determinism contract: the injector owns a *dedicated* RNG fork handed
// in by the caller (episode: protocol_rng.fork(0x666c74); campaign:
// master.fork(6)). Rng::fork is const — taking the fork never advances
// the parent — so attaching a plan, or adding clause types to it, cannot
// perturb the protocol's own draws. Stochastic clauses (ge_loss,
// outage_train, sat_lifecycle — ISSUE 10) consume exactly this reserved
// stream: arm() expands them through a FaultProcessExpander into
// scripted clauses *before* any event fires, so protocol draws still see
// untouched streams and jobs-1/4/8 byte-identity holds.
//
// Cost contract: arm() does all allocation up front (event scheduling +
// CrosslinkNetwork::reserve_fault_state); the firing callbacks only flip
// pre-sized network state and push trace events — zero steady-state
// allocations (bench/fault_storm gate).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "fault/process.hpp"
#include "net/crosslink.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace oaq {

class FaultInjector {
 public:
  struct Stats {
    std::uint64_t clauses_armed = 0;
    std::uint64_t activations = 0;  ///< fired activate events (a = +1)
    /// Scripted clauses after stochastic expansion (0 for scripted plans).
    std::uint64_t expanded_clauses = 0;
    std::uint64_t lifecycle_deaths = 0;  ///< fired lifecycle fail_silents
    std::uint64_t lifecycle_spares = 0;  ///< fired lifecycle recovers
  };

  /// The injector must outlive the simulator run (callbacks capture
  /// `this`). `trace`/`episode_id` stamp the fault_* events like the
  /// network's xlink_* events (null disables tracing). `ledger` (nullable)
  /// receives every activation under `episode_id` — campaign plans anchor
  /// at the origin and belong to no single episode, so they land in the
  /// ledger's global row. `expander` (nullable) is the reusable
  /// stochastic-clause expander; pooled engines pass a long-lived one so
  /// repeated arms allocate nothing, one-shot callers may leave it null
  /// and the injector creates its own on demand.
  FaultInjector(Simulator& sim, CrosslinkNetwork& net, const FaultPlan& plan,
                Rng rng, ShardTraceBuffer* trace = nullptr,
                std::int64_t episode_id = -1,
                EpisodeLedger* ledger = nullptr,
                FaultProcessExpander* expander = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every clause relative to `anchor` (clause times before
  /// `sim.now()` fire immediately, preserving causality). Call once.
  void arm(TimePoint anchor);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void activate(std::size_t index);
  void deactivate(std::size_t index);
  void trace_clause(const FaultClause& clause, std::int32_t direction) const;

  Simulator* sim_;
  CrosslinkNetwork* net_;
  const FaultPlan* plan_;
  Rng rng_;  ///< reserved fault stream; feeds stochastic expansion only
  ShardTraceBuffer* trace_;
  std::int64_t episode_id_;
  EpisodeLedger* ledger_;
  FaultProcessExpander* expander_;
  std::unique_ptr<FaultProcessExpander> owned_expander_;
  Stats stats_;
  bool armed_ = false;
};

}  // namespace oaq
