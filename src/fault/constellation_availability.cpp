#include "fault/constellation_availability.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

ConstellationAvailability::ConstellationAvailability(
    const DiscretePmf& per_plane, int num_planes, int max_capacity)
    : num_planes_(num_planes) {
  OAQ_REQUIRE(num_planes > 0, "need at least one plane");
  OAQ_REQUIRE(max_capacity > 0, "capacity bound must be positive");
  OAQ_REQUIRE(per_plane.total_weight() > 0.0, "per-plane pmf is empty");

  plane_pmf_.assign(static_cast<std::size_t>(max_capacity) + 1, 0.0);
  for (const auto& [k, w] : per_plane.weights()) {
    OAQ_REQUIRE(k >= 0 && k <= max_capacity,
                "capacity outside [0, max_capacity]");
    plane_pmf_[static_cast<std::size_t>(k)] = w / per_plane.total_weight();
  }

  // Exact convolution, one plane at a time.
  total_ = {1.0};
  for (int p = 0; p < num_planes; ++p) {
    std::vector<double> next(total_.size() + plane_pmf_.size() - 1, 0.0);
    for (std::size_t a = 0; a < total_.size(); ++a) {
      if (total_[a] == 0.0) continue;
      for (std::size_t b = 0; b < plane_pmf_.size(); ++b) {
        next[a + b] += total_[a] * plane_pmf_[b];
      }
    }
    total_ = std::move(next);
  }
}

double ConstellationAvailability::expected_total() const {
  double e = 0.0;
  for (std::size_t i = 0; i < total_.size(); ++i) {
    e += static_cast<double>(i) * total_[i];
  }
  return e;
}

double ConstellationAvailability::probability_all_planes_at_least(
    int k) const {
  if (k <= 0) return 1.0;
  double per_plane_ok = 0.0;
  for (std::size_t i = static_cast<std::size_t>(
           std::min<std::ptrdiff_t>(k, static_cast<std::ptrdiff_t>(
                                           plane_pmf_.size())));
       i < plane_pmf_.size(); ++i) {
    per_plane_ok += plane_pmf_[i];
  }
  return std::pow(per_plane_ok, num_planes_);
}

double ConstellationAvailability::expected_planes_below(int k) const {
  double below = 0.0;
  for (std::size_t i = 0;
       i < plane_pmf_.size() && static_cast<int>(i) < k; ++i) {
    below += plane_pmf_[i];
  }
  return below * static_cast<double>(num_planes_);
}

}  // namespace oaq
