#include "fault/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oaq {

Ctmc::Ctmc(std::size_t num_states)
    : arcs_(num_states), exit_rate_(num_states, 0.0) {
  OAQ_REQUIRE(num_states > 0, "CTMC needs at least one state");
}

void Ctmc::add_transition(std::size_t from, std::size_t to, double rate) {
  OAQ_REQUIRE(from < num_states() && to < num_states(), "state out of range");
  OAQ_REQUIRE(from != to, "self-loops are meaningless in a CTMC");
  OAQ_REQUIRE(rate > 0.0, "rate must be positive");
  arcs_[from].push_back({to, rate});
  exit_rate_[from] += rate;
}

std::vector<double> Ctmc::dtmc_step(const std::vector<double>& x,
                                    double uniform_rate) const {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    const double mass = x[s];
    if (mass == 0.0) continue;
    // Stay with probability 1 - exit/Λ.
    y[s] += mass * (1.0 - exit_rate_[s] / uniform_rate);
    for (const Arc& a : arcs_[s]) {
      y[a.to] += mass * (a.rate / uniform_rate);
    }
  }
  return y;
}

namespace {

/// Number of uniformization terms needed so the Poisson tail is below tol.
int poisson_truncation(double mean, double tol) {
  // Conservative: walk the cumulative until 1 - cdf < tol.
  double term = std::exp(-mean);
  if (term == 0.0) {
    // Large mean: normal-approximation upper bound.
    return static_cast<int>(mean + 8.0 * std::sqrt(mean) + 16.0);
  }
  double cdf = term;
  int k = 0;
  while (1.0 - cdf > tol && k < 10000000) {
    ++k;
    term *= mean / k;
    cdf += term;
  }
  return k;
}

}  // namespace

std::vector<double> Ctmc::transient(const std::vector<double>& p0, double t,
                                    double tol) const {
  OAQ_REQUIRE(p0.size() == num_states(), "initial distribution size mismatch");
  OAQ_REQUIRE(t >= 0.0, "time must be nonnegative");
  const double max_exit = *std::max_element(exit_rate_.begin(),
                                            exit_rate_.end());
  if (max_exit == 0.0 || t == 0.0) return p0;
  const double lam = max_exit * 1.02;  // uniformization rate Λ
  const double mean = lam * t;
  const int terms = poisson_truncation(mean, tol);

  // p(t) = Σ_k Poisson(k; Λt) · p0·P^k.
  std::vector<double> result(num_states(), 0.0);
  std::vector<double> x = p0;
  // Poisson pmf computed iteratively in log space for large means.
  double log_pmf = -mean;  // log pmf at k = 0
  for (int k = 0; k <= terms; ++k) {
    const double w = std::exp(log_pmf);
    for (std::size_t s = 0; s < x.size(); ++s) result[s] += w * x[s];
    x = dtmc_step(x, lam);
    log_pmf += std::log(mean) - std::log1p(k);  // -> log pmf at k+1
  }
  return result;
}

std::vector<double> Ctmc::time_averaged(const std::vector<double>& p0,
                                        double t, double tol) const {
  OAQ_REQUIRE(p0.size() == num_states(), "initial distribution size mismatch");
  OAQ_REQUIRE(t > 0.0, "averaging window must be nonempty");
  const double max_exit = *std::max_element(exit_rate_.begin(),
                                            exit_rate_.end());
  if (max_exit == 0.0) return p0;
  const double lam = max_exit * 1.02;
  const double mean = lam * t;
  const int terms = poisson_truncation(mean, tol);

  // (1/T)∫₀ᵀ p(s)ds = (1/(ΛT)) Σ_k P(N(T) ≥ k+1) · p0·P^k.
  // Compute the Poisson tail iteratively from the pmf.
  std::vector<double> result(num_states(), 0.0);
  std::vector<double> x = p0;
  double log_pmf = -mean;
  double cdf = std::exp(log_pmf);  // P(N <= 0) after k=0 handled below
  for (int k = 0; k <= terms; ++k) {
    const double tail = std::max(0.0, 1.0 - cdf);  // P(N >= k+1)
    const double w = tail / mean;
    for (std::size_t s = 0; s < x.size(); ++s) result[s] += w * x[s];
    x = dtmc_step(x, lam);
    log_pmf += std::log(mean) - std::log1p(k);
    cdf += std::exp(log_pmf);
  }
  // Normalize away the truncation remainder.
  double sum = 0.0;
  for (double v : result) sum += v;
  OAQ_ENSURE(sum > 0.0, "time-averaged distribution vanished");
  for (double& v : result) v /= sum;
  return result;
}

std::vector<double> Ctmc::steady_state(double tol, int max_iter) const {
  const double max_exit = *std::max_element(exit_rate_.begin(),
                                            exit_rate_.end());
  std::vector<double> x(num_states(), 1.0 / static_cast<double>(num_states()));
  if (max_exit == 0.0) return x;
  const double lam = max_exit * 1.02;
  for (int i = 0; i < max_iter; ++i) {
    auto y = dtmc_step(x, lam);
    double delta = 0.0;
    for (std::size_t s = 0; s < x.size(); ++s) delta += std::abs(y[s] - x[s]);
    x = std::move(y);
    if (delta < tol) break;
  }
  return x;
}

}  // namespace oaq
