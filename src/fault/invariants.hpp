// Protocol invariant checking under fault injection (ISSUE 5 tentpole).
//
// The checker audits each finished episode's result and the DES kernel's
// event accounting against properties the protocol must keep under *any*
// fault plan (paper §3.2 guarantees):
//
//   I1 a detected episode records at least one termination cause;
//   I2 no agent terminates twice (exactly one recorded cause each);
//   I3 a delivered alert implies a detection and a sent alert;
//   I4 a delivered alert is counted timely iff its first alert left by
//      t0 + τ — no late alert is ever counted timely;
//   I5 alerts never outnumber terminations;
//   I6 a duplicate final alert only happens with a recorded wait-deadline
//      rescue (the lost-done path) — never spontaneously;
//   I7 an episode with no drops and no injected faults leaves no
//      participant unresolved. Single-episode engines audit exact
//      per-episode telemetry; shared-network campaigns used to audit
//      run-wide counters (any drop anywhere excused every episode) but
//      now read the per-episode EpisodeLedger (src/obs/ledger.hpp), so
//      the audit is exact per target: only an episode whose OWN envelopes
//      were dropped — or that overlapped a fault activation — is excused;
//   I8 the kernel's ledger balances: scheduled = processed + cancelled +
//      still-pending (no leaked or double-freed pooled events).
//
// ISSUE 10 adds four robustness invariants over the self-healing link
// layer and the stochastic fault processes:
//
//   I9  no routing livelock: health-aware re-routes are bounded by
//       horizon_passes × participants — each re-route strictly advances
//       the chain's pass cursor, so it cannot exceed the search space;
//   I10 health-state conservation: every demotion is either restored
//       during the episode or still demoted at its end
//       (links_demoted = links_restored + links_demoted_end);
//   I11 spare-swap accounting: sat_lifecycle expansions emit matched
//       death/spare pairs and the run drains both, so fired lifecycle
//       deaths equal fired lifecycle spares;
//   I12 recovery bounded on quiesce: once the episode drains, no windowed
//       degradation (outage, partition, loss override, delay spike,
//       link-loss overlay) is still active — every activate met its
//       deactivate.
//
// Always compiled in; a detached checker is a null pointer at the call
// sites (EpisodeFaultHooks), so the default path pays one branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oaq/episode.hpp"
#include "sim/simulator.hpp"

namespace oaq {

class InvariantChecker {
 public:
  /// Retained violation descriptions (the count is unbounded).
  static constexpr std::size_t kMaxSamples = 32;

  /// Audit one finished episode (I1–I7, I9–I12).
  void check_episode(std::int64_t episode_id, const EpisodeResult& result,
                     const ProtocolConfig& config);

  /// Audit the DES kernel ledger after the run (I8).
  void check_simulator(std::int64_t episode_id,
                       const SimAccounting& accounting);

  /// Fold another checker's findings in (shard-merge; sample list stays
  /// capped at kMaxSamples).
  void merge(const InvariantChecker& other);

  [[nodiscard]] bool ok() const { return violations_ == 0; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] std::uint64_t episodes_checked() const {
    return episodes_checked_;
  }
  [[nodiscard]] const std::vector<std::string>& samples() const {
    return samples_;
  }

 private:
  void record(std::int64_t episode_id, std::string_view invariant,
              std::string_view what);

  std::uint64_t violations_ = 0;
  std::uint64_t episodes_checked_ = 0;
  std::vector<std::string> samples_;
};

}  // namespace oaq
