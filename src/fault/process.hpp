// Stochastic fault-process expansion (ISSUE 10 tentpole).
//
// The generative clause kinds (ge_loss, outage_train, sat_lifecycle —
// see src/fault/plan.hpp) describe fault *processes*: links that flap
// with memory and satellites that die and get replaced, rather than
// scripted one-shot windows. FaultProcessExpander realises one sample
// path of every such process, deterministically, from an explicit RNG —
// the injector's reserved fault fork (`fork(0x666c74)` per episode,
// `master.fork(6)` per campaign) — producing a fully scripted FaultPlan
// the unchanged injector event loop then replays.
//
// Determinism argument (DESIGN.md §16): expansion happens entirely at
// arm() time, before any protocol event fires, and consumes only the
// reserved fault fork. Protocol draws therefore see exactly the streams
// they would with a scripted plan, and the expanded clause list is a
// pure function of (plan, rng) — the same at any --jobs or
// --interleave-width. Each clause expands from its own sub-fork
// (rng.fork(i + 1)), so clause order in the plan never couples the
// per-clause sample paths.
//
// The expander owns one reusable FaultPlan: after warm-up, expansion
// performs zero steady-state allocations (gated by bench/chaos_soak).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "fault/plan.hpp"

namespace oaq {

/// True when `plan` holds at least one generative clause and therefore
/// needs FaultProcessExpander::expand before arming.
[[nodiscard]] bool has_stochastic_clauses(const FaultPlan& plan);

/// Expands generative clauses into scripted ones; scripted clauses pass
/// through unchanged (in their original relative order, generated
/// clauses appended in clause order then time order within a clause).
class FaultProcessExpander {
 public:
  /// Ceiling on the scripted clauses one generative clause may emit —
  /// a degenerate parameterisation (e.g. millisecond dwells over an
  /// hour-long window) truncates its sample path here instead of
  /// exhausting memory. Counted in Stats::truncated_clauses.
  static constexpr int kMaxIntervalsPerClause = 1024;

  struct Stats {
    std::uint64_t expansions = 0;         ///< expand() calls
    std::uint64_t stochastic_clauses = 0; ///< generative clauses seen
    std::uint64_t emitted_clauses = 0;    ///< scripted clauses generated
    std::uint64_t truncated_clauses = 0;  ///< hit kMaxIntervalsPerClause
  };

  /// Expands `plan` against `rng`; the returned reference stays valid
  /// until the next expand() call on this expander. Clause i draws from
  /// rng.fork(i + 1) only.
  [[nodiscard]] const FaultPlan& expand(const FaultPlan& plan, Rng rng);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void expand_ge_loss(const FaultClause& c, Rng rng);
  void expand_outage_train(const FaultClause& c, Rng rng);
  void expand_sat_lifecycle(const FaultClause& c, Rng rng);

  FaultPlan out_;
  Stats stats_;
};

}  // namespace oaq
