#include "fault/process.hpp"

#include <algorithm>

namespace oaq {

bool has_stochastic_clauses(const FaultPlan& plan) {
  for (const FaultClause& c : plan.clauses()) {
    if (is_stochastic(c.kind)) return true;
  }
  return false;
}

const FaultPlan& FaultProcessExpander::expand(const FaultPlan& plan,
                                              Rng rng) {
  out_.clear();  // keeps capacity: zero steady-state allocations
  out_.reserve(plan.size());
  ++stats_.expansions;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultClause& c = plan.clauses()[i];
    if (!is_stochastic(c.kind)) {
      out_.add(c);
      continue;
    }
    ++stats_.stochastic_clauses;
    // Each clause samples from its own fork so its path depends only on
    // (rng, clause index), never on what earlier clauses drew.
    Rng clause_rng = rng.fork(static_cast<std::uint64_t>(i) + 1);
    switch (c.kind) {
      case FaultClauseKind::kGeLoss:
        expand_ge_loss(c, clause_rng);
        break;
      case FaultClauseKind::kOutageTrain:
        expand_outage_train(c, clause_rng);
        break;
      case FaultClauseKind::kSatLifecycle:
        expand_sat_lifecycle(c, clause_rng);
        break;
      default:
        break;  // unreachable: is_stochastic() gated above
    }
  }
  return out_;
}

// Gilbert–Elliott: the link starts the window in the good state and
// alternates Exp(p_rate) good dwells with Exp(r_rate) bad dwells; each
// bad dwell (clipped to the clause window) becomes a link_loss window at
// the clause's bad-state loss probability.
void FaultProcessExpander::expand_ge_loss(const FaultClause& c, Rng rng) {
  const double t1 = c.window_end.to_minutes();
  double t = c.window_start.to_minutes();
  int emitted = 0;
  while (emitted < kMaxIntervalsPerClause) {
    t += rng.exponential(c.param_a);  // good dwell
    if (t >= t1) return;
    const double bad_end = std::min(t + rng.exponential(c.param_b), t1);
    if (bad_end > t) {
      out_.add(FaultPlan::link_loss(c.plane_a, c.plane_b, c.value,
                                    Duration::minutes(t),
                                    Duration::minutes(bad_end)));
      ++stats_.emitted_clauses;
      ++emitted;
    }
    t = bad_end;
    if (t >= t1) return;
  }
  ++stats_.truncated_clauses;
}

// Alternating renewal process: Exp(1/up_mean) up dwells, Exp(1/down_mean)
// down dwells; each down dwell becomes a link_outage window.
void FaultProcessExpander::expand_outage_train(const FaultClause& c,
                                               Rng rng) {
  const double t1 = c.window_end.to_minutes();
  double t = c.window_start.to_minutes();
  int emitted = 0;
  while (emitted < kMaxIntervalsPerClause) {
    t += rng.exponential(1.0 / c.param_a);  // up dwell
    if (t >= t1) return;
    const double down_end = std::min(t + rng.exponential(1.0 / c.param_b), t1);
    if (down_end > t) {
      out_.add(FaultPlan::link_outage(c.plane_a, c.plane_b,
                                      Duration::minutes(t),
                                      Duration::minutes(down_end)));
      ++stats_.emitted_clauses;
      ++emitted;
    }
    t = down_end;
    if (t >= t1) return;
  }
  ++stats_.truncated_clauses;
}

// Renewal death/replace: Exp(death_rate) time-to-failure, then an
// Exp(1/spare_mean) spare-activation delay. Each renewal becomes a
// fail_silent/recover pair tagged kLifecycle so the injector can audit
// spare-swap accounting (invariant I11). The recover event may land past
// the clause window — the pair always stays matched, mirroring the CTMC
// solver's two-state availability chain (dead fraction λ/(λ+μ)).
void FaultProcessExpander::expand_sat_lifecycle(const FaultClause& c,
                                                Rng rng) {
  const double t1 = c.window_end.to_minutes();
  double t = c.window_start.to_minutes();
  int emitted = 0;
  while (emitted + 2 <= kMaxIntervalsPerClause) {
    t += rng.exponential(c.param_a);  // time to failure
    if (t >= t1) return;
    const double recover_at = t + rng.exponential(1.0 / c.param_b);
    FaultClause death = FaultPlan::fail_silent(c.satellite,
                                               Duration::minutes(t));
    death.origin = FaultClauseOrigin::kLifecycle;
    out_.add(death);
    FaultClause spare = FaultPlan::recover(c.satellite,
                                           Duration::minutes(recover_at));
    spare.origin = FaultClauseOrigin::kLifecycle;
    out_.add(spare);
    stats_.emitted_clauses += 2;
    emitted += 2;
    t = recover_at;
  }
  ++stats_.truncated_clauses;
}

}  // namespace oaq
