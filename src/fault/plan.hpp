// Scripted fault plans (ISSUE 5 tentpole).
//
// A FaultPlan is a validated list of typed degradation clauses that a
// FaultInjector (src/fault/injector) replays as pooled DES events against
// a CrosslinkNetwork. Clause times are *relative* — the injector anchors
// them (episode: signal start; campaign: the origin) — so one plan can be
// reused across episodes, replications, and campaigns.
//
// Clause catalogue (paper §3.2 fail-silence, generalised to link-level
// degradation):
//   fail_silent(sat, t)                node goes silent at t
//   recover(sat, t)                    silent node revives at t
//   link_outage(plane_a, plane_b, [t0, t1])  inter-plane links down
//   delay_spike(factor, [t0, t1])      delivery delays × factor
//   burst_loss(p, [t0, t1])            crosslink loss raised to >= p
//   partition(plane_set, [t0, t1])     plane set cut off from the rest
//   link_loss(plane_a, plane_b, p, [t0, t1])  per-link loss raised to >= p
//
// Stochastic clause kinds (ISSUE 10): generative clauses describing a
// fault *process* rather than a scripted window. They never reach the
// injector's event loop directly — FaultProcessExpander
// (src/fault/process) expands them deterministically at arm() time, from
// the injector's reserved RNG fork, into the scripted kinds above:
//   ge_loss(plane_a, plane_b, p, r, loss, [t0, t1])
//       Gilbert–Elliott two-state link: good→bad at rate p (per min),
//       bad→good at rate r; bad dwells become link_loss(loss) windows.
//   outage_train(plane_a, plane_b, up, down, [t0, t1])
//       alternating exponential up/down dwells (mean minutes); down
//       dwells become link_outage windows.
//   sat_lifecycle(plane, slot, death_rate, spare_delay, [t0, t1])
//       exponential node death (rate per min) + exponential
//       spare-activation delay (mean minutes); each renewal becomes a
//       fail_silent/recover pair. Matches the CTMC solver's two-state
//       availability model for cross-validation.
//
// Shell addressing (ISSUE 8): plane indices are GLOBAL by default. A
// clause may instead address planes relative to one shell of a
// multi-shell constellation (`shell` field / trailing `shell N` token in
// the on-disk format); `FaultPlan::resolve(constellation)` translates
// such clauses to global indices — the form the injector and
// CrosslinkNetwork consume — validating that every plane stays inside
// the addressed shell.
//
// The on-disk format (tools/README.md) is line-based: one clause per
// line, times in minutes, `#` comments. parse_fault_plan /
// write_fault_plan round-trip it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/plane_set.hpp"
#include "common/units.hpp"
#include "orbit/plane.hpp"

namespace oaq {

enum class FaultClauseKind : std::uint8_t {
  kFailSilent = 0,
  kRecover,
  kLinkOutage,
  kDelaySpike,
  kBurstLoss,
  kPartition,
  kLinkLoss,
  // Stochastic (generative) kinds — expanded by FaultProcessExpander at
  // arm() time; the injector never schedules them directly.
  kGeLoss,
  kOutageTrain,
  kSatLifecycle,
};

/// Stable name of a clause kind (the plan-file keyword).
[[nodiscard]] std::string_view to_string(FaultClauseKind kind);

/// True for the generative kinds that require FaultProcessExpander
/// expansion before arming (kGeLoss, kOutageTrain, kSatLifecycle).
[[nodiscard]] bool is_stochastic(FaultClauseKind kind);

/// Where a clause came from — used by the injector's spare-swap
/// accounting (invariant I11). Not serialised and not part of clause
/// identity; expansion tags lifecycle-generated fail/recover pairs.
enum class FaultClauseOrigin : std::uint8_t {
  kScripted = 0,  ///< authored directly (file, builder, or flag)
  kLifecycle,     ///< emitted by a sat_lifecycle expansion
};

/// One degradation clause. Which fields are meaningful depends on `kind`;
/// use the FaultPlan builders rather than aggregate-initialising.
struct FaultClause {
  FaultClauseKind kind = FaultClauseKind::kFailSilent;
  SatelliteId satellite{};       ///< fail_silent / recover / sat_lifecycle
  int plane_a = 0;               ///< link_outage / link_loss / ge / train
  int plane_b = 0;               ///< link_outage / link_loss / ge / train
  PlaneSet plane_mask{};         ///< partition (bit p = plane p)
  double value = 0.0;            ///< delay factor / loss probability
  /// First stochastic parameter: ge_loss good→bad rate (per min),
  /// outage_train mean up dwell (min), sat_lifecycle death rate (per min).
  double param_a = 0.0;
  /// Second stochastic parameter: ge_loss bad→good rate (per min),
  /// outage_train mean down dwell (min), sat_lifecycle mean
  /// spare-activation delay (min).
  double param_b = 0.0;
  /// Provenance tag (not serialised; see FaultClauseOrigin).
  FaultClauseOrigin origin = FaultClauseOrigin::kScripted;
  /// Plane indices are relative to this shell of a multi-shell
  /// constellation; -1 (the default) means global indices. Shell-relative
  /// clauses must pass through FaultPlan::resolve before arming.
  int shell = -1;
  Duration at = Duration::zero();            ///< point clauses
  Duration window_start = Duration::zero();  ///< windowed clauses
  Duration window_end = Duration::zero();

  /// True for the windowed kinds (two scheduled events, activate +
  /// deactivate); false for the point kinds (one event).
  [[nodiscard]] bool windowed() const {
    return kind != FaultClauseKind::kFailSilent &&
           kind != FaultClauseKind::kRecover;
  }
};

class Constellation;  // src/orbit/constellation.hpp

/// An ordered, validated clause list.
class FaultPlan {
 public:
  /// Validates and appends; throws std::invalid_argument on a malformed
  /// clause (negative times, empty/backwards window, loss outside [0,1],
  /// factor <= 0, plane out of [0, 128), empty or universal partition).
  FaultPlan& add(const FaultClause& clause);

  // Clause builders. The plane-addressed kinds take an optional shell
  // index: >= 0 makes the planes shell-relative (resolve() translates).
  [[nodiscard]] static FaultClause fail_silent(SatelliteId sat, Duration at,
                                               int shell = -1);
  [[nodiscard]] static FaultClause recover(SatelliteId sat, Duration at,
                                           int shell = -1);
  [[nodiscard]] static FaultClause link_outage(int plane_a, int plane_b,
                                               Duration t0, Duration t1,
                                               int shell = -1);
  [[nodiscard]] static FaultClause delay_spike(double factor, Duration t0,
                                               Duration t1);
  [[nodiscard]] static FaultClause burst_loss(double probability, Duration t0,
                                              Duration t1);
  [[nodiscard]] static FaultClause partition(PlaneSet plane_mask,
                                             Duration t0, Duration t1,
                                             int shell = -1);
  [[nodiscard]] static FaultClause link_loss(int plane_a, int plane_b,
                                             double probability, Duration t0,
                                             Duration t1, int shell = -1);
  [[nodiscard]] static FaultClause ge_loss(int plane_a, int plane_b,
                                           double p_rate, double r_rate,
                                           double loss, Duration t0,
                                           Duration t1, int shell = -1);
  [[nodiscard]] static FaultClause outage_train(int plane_a, int plane_b,
                                                double up_mean_min,
                                                double down_mean_min,
                                                Duration t0, Duration t1,
                                                int shell = -1);
  [[nodiscard]] static FaultClause sat_lifecycle(SatelliteId sat,
                                                 double death_rate,
                                                 double spare_mean_min,
                                                 Duration t0, Duration t1,
                                                 int shell = -1);

  [[nodiscard]] const std::vector<FaultClause>& clauses() const {
    return clauses_;
  }
  [[nodiscard]] bool empty() const { return clauses_.empty(); }
  [[nodiscard]] std::size_t size() const { return clauses_.size(); }

  /// Drops all clauses, keeping the allocated capacity (expansion reuse).
  void clear() { clauses_.clear(); }
  void reserve(std::size_t n) { clauses_.reserve(n); }

  /// Highest plane index any clause names (-1 for an empty plan); sizes
  /// CrosslinkNetwork::reserve_fault_state. Treats indices as global —
  /// resolve shell-relative plans first.
  [[nodiscard]] int max_plane() const;

  /// Translates shell-relative clauses to global plane indices against
  /// `constellation`'s shell layout; global clauses pass through
  /// unchanged. Throws std::invalid_argument when a clause names a shell
  /// the constellation lacks or a plane outside its shell — a clause can
  /// never silently touch a neighboring shell.
  [[nodiscard]] FaultPlan resolve(const Constellation& constellation) const;

 private:
  std::vector<FaultClause> clauses_;
};

/// Parses the line-based plan format; throws std::invalid_argument with
/// the offending line number and token on syntax or validation errors.
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& is);

/// As above, but additionally rejects clauses that could never fire
/// inside an episode of length `horizon` (a windowed clause whose window
/// starts at/after the horizon, or a point clause at/after it) with a
/// message naming the horizon. Pass Duration::infinity() to disable the
/// check (equivalent to the one-argument overload).
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& is, Duration horizon);

/// Writes a plan back in the canonical line format (round-trips through
/// parse_fault_plan).
void write_fault_plan(const FaultPlan& plan, std::ostream& os);

}  // namespace oaq
