#include "fault/plan.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "orbit/constellation.hpp"

namespace oaq {

namespace {

constexpr std::string_view kKindNames[] = {
    "fail_silent", "recover",      "link_outage", "delay_spike",
    "burst_loss",  "partition",    "link_loss",   "ge_loss",
    "outage_train", "sat_lifecycle",
};

// `what` stays a C string so a passing check allocates nothing — add() is
// on the stochastic-expansion hot path (bench/chaos_soak's 0-alloc gate).
void require(bool condition, const char* what) {
  if (!condition) {
    throw std::invalid_argument(std::string("fault plan: ") + what);
  }
}

// Cold-path overload for call sites that compose their message (resolve()
// diagnostics); the composition itself only happens on failure paths there.
void require(bool condition, const std::string& what) {
  require(condition, what.c_str());
}

void validate_plane(int plane) {
  require(plane >= 0 && plane < PlaneSet::kMaxPlanes,
          "plane index must be in [0, 128)");
}

}  // namespace

std::string_view to_string(FaultClauseKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < std::size(kKindNames) ? kKindNames[i] : "unknown";
}

bool is_stochastic(FaultClauseKind kind) {
  return kind == FaultClauseKind::kGeLoss ||
         kind == FaultClauseKind::kOutageTrain ||
         kind == FaultClauseKind::kSatLifecycle;
}

FaultPlan& FaultPlan::add(const FaultClause& clause) {
  switch (clause.kind) {
    case FaultClauseKind::kFailSilent:
    case FaultClauseKind::kRecover:
      validate_plane(clause.satellite.plane);
      require(clause.satellite.slot >= 0, "satellite slot must be >= 0");
      require(clause.at >= Duration::zero(), "clause time must be >= 0");
      break;
    case FaultClauseKind::kLinkOutage:
      validate_plane(clause.plane_a);
      validate_plane(clause.plane_b);
      break;
    case FaultClauseKind::kDelaySpike:
      require(clause.value > 0.0, "delay factor must be positive");
      break;
    case FaultClauseKind::kBurstLoss:
      require(clause.value >= 0.0 && clause.value <= 1.0,
              "loss probability must be in [0, 1]");
      break;
    case FaultClauseKind::kPartition:
      require(!clause.plane_mask.empty(),
              "partition needs at least one plane");
      // The legacy all-low-64 mask meant "every plane" before the 128-wide
      // PlaneSet; both spellings of a universal partition are rejected.
      require(!clause.plane_mask.all() &&
                  clause.plane_mask != PlaneSet(~std::uint64_t{0}),
              "partition of every plane cuts nothing");
      break;
    case FaultClauseKind::kLinkLoss:
      validate_plane(clause.plane_a);
      validate_plane(clause.plane_b);
      require(clause.value >= 0.0 && clause.value <= 1.0,
              "loss probability must be in [0, 1]");
      break;
    case FaultClauseKind::kGeLoss:
      validate_plane(clause.plane_a);
      validate_plane(clause.plane_b);
      require(clause.param_a > 0.0, "good->bad rate must be positive");
      require(clause.param_b > 0.0, "bad->good rate must be positive");
      require(clause.value >= 0.0 && clause.value <= 1.0,
              "bad-state loss probability must be in [0, 1]");
      break;
    case FaultClauseKind::kOutageTrain:
      validate_plane(clause.plane_a);
      validate_plane(clause.plane_b);
      require(clause.param_a > 0.0, "mean up dwell must be positive");
      require(clause.param_b > 0.0, "mean down dwell must be positive");
      break;
    case FaultClauseKind::kSatLifecycle:
      validate_plane(clause.satellite.plane);
      require(clause.satellite.slot >= 0, "satellite slot must be >= 0");
      require(clause.param_a > 0.0, "death rate must be positive");
      require(clause.param_b > 0.0, "mean spare delay must be positive");
      break;
  }
  require(clause.shell >= -1, "shell index must be >= 0 (or -1 for global)");
  if (clause.windowed()) {
    require(clause.window_start >= Duration::zero(),
            "window start must be >= 0");
    require(clause.window_end > clause.window_start,
            "window must end after it starts");
  }
  clauses_.push_back(clause);
  return *this;
}

FaultClause FaultPlan::fail_silent(SatelliteId sat, Duration at, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kFailSilent;
  c.satellite = sat;
  c.at = at;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::recover(SatelliteId sat, Duration at, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kRecover;
  c.satellite = sat;
  c.at = at;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::link_outage(int plane_a, int plane_b, Duration t0,
                                   Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kLinkOutage;
  c.plane_a = plane_a;
  c.plane_b = plane_b;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::delay_spike(double factor, Duration t0, Duration t1) {
  FaultClause c;
  c.kind = FaultClauseKind::kDelaySpike;
  c.value = factor;
  c.window_start = t0;
  c.window_end = t1;
  return c;
}

FaultClause FaultPlan::burst_loss(double probability, Duration t0,
                                  Duration t1) {
  FaultClause c;
  c.kind = FaultClauseKind::kBurstLoss;
  c.value = probability;
  c.window_start = t0;
  c.window_end = t1;
  return c;
}

FaultClause FaultPlan::partition(PlaneSet plane_mask, Duration t0,
                                 Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kPartition;
  c.plane_mask = plane_mask;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::link_loss(int plane_a, int plane_b, double probability,
                                 Duration t0, Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kLinkLoss;
  c.plane_a = plane_a;
  c.plane_b = plane_b;
  c.value = probability;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::ge_loss(int plane_a, int plane_b, double p_rate,
                               double r_rate, double loss, Duration t0,
                               Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kGeLoss;
  c.plane_a = plane_a;
  c.plane_b = plane_b;
  c.param_a = p_rate;
  c.param_b = r_rate;
  c.value = loss;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::outage_train(int plane_a, int plane_b,
                                    double up_mean_min, double down_mean_min,
                                    Duration t0, Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kOutageTrain;
  c.plane_a = plane_a;
  c.plane_b = plane_b;
  c.param_a = up_mean_min;
  c.param_b = down_mean_min;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

FaultClause FaultPlan::sat_lifecycle(SatelliteId sat, double death_rate,
                                     double spare_mean_min, Duration t0,
                                     Duration t1, int shell) {
  FaultClause c;
  c.kind = FaultClauseKind::kSatLifecycle;
  c.satellite = sat;
  c.param_a = death_rate;
  c.param_b = spare_mean_min;
  c.window_start = t0;
  c.window_end = t1;
  c.shell = shell;
  return c;
}

int FaultPlan::max_plane() const {
  int max = -1;
  for (const FaultClause& c : clauses_) {
    switch (c.kind) {
      case FaultClauseKind::kFailSilent:
      case FaultClauseKind::kRecover:
      case FaultClauseKind::kSatLifecycle:
        max = std::max(max, c.satellite.plane);
        break;
      case FaultClauseKind::kLinkOutage:
      case FaultClauseKind::kLinkLoss:
      case FaultClauseKind::kGeLoss:
      case FaultClauseKind::kOutageTrain:
        max = std::max({max, c.plane_a, c.plane_b});
        break;
      case FaultClauseKind::kPartition:
        max = std::max(max, c.plane_mask.max_plane());
        break;
      case FaultClauseKind::kDelaySpike:
      case FaultClauseKind::kBurstLoss:
        break;  // constellation-wide; no plane reference
    }
  }
  return max;
}

FaultPlan FaultPlan::resolve(const Constellation& constellation) const {
  FaultPlan out;
  out.clauses_.reserve(clauses_.size());
  for (FaultClause c : clauses_) {
    if (c.shell >= 0) {
      require(c.shell < constellation.num_shells(),
              "clause addresses shell " + std::to_string(c.shell) +
                  " of a " + std::to_string(constellation.num_shells()) +
                  "-shell constellation");
      const int offset = constellation.shell_first_plane(c.shell);
      const int count = constellation.shell_plane_count(c.shell);
      const auto in_shell = [&](int plane) {
        require(plane >= 0 && plane < count,
                "plane " + std::to_string(plane) + " outside shell " +
                    std::to_string(c.shell) + " (" + std::to_string(count) +
                    " planes)");
      };
      switch (c.kind) {
        case FaultClauseKind::kFailSilent:
        case FaultClauseKind::kRecover:
        case FaultClauseKind::kSatLifecycle:
          in_shell(c.satellite.plane);
          c.satellite.plane += offset;
          break;
        case FaultClauseKind::kLinkOutage:
        case FaultClauseKind::kLinkLoss:
        case FaultClauseKind::kGeLoss:
        case FaultClauseKind::kOutageTrain:
          in_shell(c.plane_a);
          in_shell(c.plane_b);
          c.plane_a += offset;
          c.plane_b += offset;
          break;
        case FaultClauseKind::kPartition:
          in_shell(c.plane_mask.max_plane());
          c.plane_mask = c.plane_mask.shifted_up(offset);
          break;
        case FaultClauseKind::kDelaySpike:
        case FaultClauseKind::kBurstLoss:
          break;  // constellation-wide; shell tag is inert
      }
      c.shell = -1;
    }
    out.add(c);  // revalidate in global terms
  }
  return out;
}

namespace {

[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw std::invalid_argument("fault plan line " + std::to_string(line_no) +
                              ": " + what);
}

double read_number(std::istringstream& fields, int line_no,
                   std::string_view what) {
  // Read the raw token first so a malformed field can be echoed back in
  // the error instead of the bare "expected <field>" the stream operator
  // would leave us with.
  std::string token;
  if (!(fields >> token)) {
    parse_fail(line_no, "expected " + std::string(what));
  }
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    parse_fail(line_no,
               "expected " + std::string(what) + ", got '" + token + "'");
  }
}

int read_int(std::istringstream& fields, int line_no, std::string_view what) {
  const double value = read_number(fields, line_no, what);
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    parse_fail(line_no, std::string(what) + " must be an integer");
  }
  return as_int;
}

/// "1,3,7" → plane set.
PlaneSet read_plane_set(std::istringstream& fields, int line_no) {
  std::string text;
  if (!(fields >> text)) parse_fail(line_no, "expected plane set");
  PlaneSet mask;
  std::istringstream planes(text);
  std::string item;
  while (std::getline(planes, item, ',')) {
    if (item.empty()) parse_fail(line_no, "empty plane in set");
    int plane = 0;
    try {
      std::size_t used = 0;
      plane = std::stoi(item, &used);
      if (used != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      parse_fail(line_no, "bad plane '" + item + "' in set");
    }
    if (plane < 0 || plane >= PlaneSet::kMaxPlanes) {
      parse_fail(line_no, "plane index must be in [0, 128)");
    }
    mask.set(plane);
  }
  if (mask.empty()) parse_fail(line_no, "empty plane set");
  return mask;
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& is) {
  return parse_fault_plan(is, Duration::infinity());
}

FaultPlan parse_fault_plan(std::istream& is, Duration horizon) {
  FaultPlan plan;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line

    FaultClause clause;
    if (keyword == "fail_silent" || keyword == "recover") {
      const int plane = read_int(fields, line_no, "plane");
      const int slot = read_int(fields, line_no, "slot");
      const Duration at =
          Duration::minutes(read_number(fields, line_no, "time (min)"));
      clause = keyword == "fail_silent"
                   ? FaultPlan::fail_silent({plane, slot}, at)
                   : FaultPlan::recover({plane, slot}, at);
    } else if (keyword == "link_outage") {
      const int plane_a = read_int(fields, line_no, "plane_a");
      const int plane_b = read_int(fields, line_no, "plane_b");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::link_outage(plane_a, plane_b, t0, t1);
    } else if (keyword == "delay_spike" || keyword == "burst_loss") {
      const double value = read_number(
          fields, line_no,
          keyword == "delay_spike" ? "factor" : "loss probability");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = keyword == "delay_spike"
                   ? FaultPlan::delay_spike(value, t0, t1)
                   : FaultPlan::burst_loss(value, t0, t1);
    } else if (keyword == "partition") {
      const PlaneSet mask = read_plane_set(fields, line_no);
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::partition(mask, t0, t1);
    } else if (keyword == "link_loss") {
      const int plane_a = read_int(fields, line_no, "plane_a");
      const int plane_b = read_int(fields, line_no, "plane_b");
      const double loss = read_number(fields, line_no, "loss probability");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::link_loss(plane_a, plane_b, loss, t0, t1);
    } else if (keyword == "ge_loss") {
      const int plane_a = read_int(fields, line_no, "plane_a");
      const int plane_b = read_int(fields, line_no, "plane_b");
      const double p_rate =
          read_number(fields, line_no, "good->bad rate (per min)");
      const double r_rate =
          read_number(fields, line_no, "bad->good rate (per min)");
      const double loss = read_number(fields, line_no, "bad-state loss");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::ge_loss(plane_a, plane_b, p_rate, r_rate, loss, t0,
                                  t1);
    } else if (keyword == "outage_train") {
      const int plane_a = read_int(fields, line_no, "plane_a");
      const int plane_b = read_int(fields, line_no, "plane_b");
      const double up = read_number(fields, line_no, "mean up dwell (min)");
      const double down =
          read_number(fields, line_no, "mean down dwell (min)");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::outage_train(plane_a, plane_b, up, down, t0, t1);
    } else if (keyword == "sat_lifecycle") {
      const int plane = read_int(fields, line_no, "plane");
      const int slot = read_int(fields, line_no, "slot");
      const double death =
          read_number(fields, line_no, "death rate (per min)");
      const double spare =
          read_number(fields, line_no, "mean spare delay (min)");
      const Duration t0 =
          Duration::minutes(read_number(fields, line_no, "start (min)"));
      const Duration t1 =
          Duration::minutes(read_number(fields, line_no, "end (min)"));
      clause = FaultPlan::sat_lifecycle({plane, slot}, death, spare, t0, t1);
    } else {
      parse_fail(line_no, "unknown clause '" + keyword + "'");
    }
    std::string extra;
    if (fields >> extra) {
      // Optional trailing shell token on the plane-addressed kinds:
      // `... shell N` makes the clause's plane indices shell-relative.
      const bool plane_addressed =
          clause.kind != FaultClauseKind::kDelaySpike &&
          clause.kind != FaultClauseKind::kBurstLoss;
      if (plane_addressed && extra == "shell") {
        clause.shell = read_int(fields, line_no, "shell index");
        if (clause.shell < 0) parse_fail(line_no, "shell index must be >= 0");
        if (fields >> extra) {
          parse_fail(line_no, "trailing text '" + extra + "'");
        }
      } else {
        parse_fail(line_no, "trailing text '" + extra + "'");
      }
    }
    if (horizon < Duration::infinity()) {
      const Duration first_fire = clause.windowed() ? clause.window_start
                                                    : clause.at;
      if (first_fire >= horizon) {
        parse_fail(line_no,
                   "clause would first fire at " +
                       std::to_string(first_fire.to_minutes()) +
                       " min, at/after the episode horizon (" +
                       std::to_string(horizon.to_minutes()) +
                       " min) — it would never take effect");
      }
    }
    try {
      plan.add(clause);
    } catch (const std::invalid_argument& err) {
      parse_fail(line_no, err.what());
    }
  }
  return plan;
}

void write_fault_plan(const FaultPlan& plan, std::ostream& os) {
  for (const FaultClause& c : plan.clauses()) {
    os << to_string(c.kind);
    switch (c.kind) {
      case FaultClauseKind::kFailSilent:
      case FaultClauseKind::kRecover:
        os << ' ' << c.satellite.plane << ' ' << c.satellite.slot << ' '
           << c.at.to_minutes();
        break;
      case FaultClauseKind::kLinkOutage:
        os << ' ' << c.plane_a << ' ' << c.plane_b;
        break;
      case FaultClauseKind::kDelaySpike:
      case FaultClauseKind::kBurstLoss:
        os << ' ' << c.value;
        break;
      case FaultClauseKind::kPartition: {
        os << ' ';
        bool first = true;
        for (int p = 0; p < PlaneSet::kMaxPlanes; ++p) {
          if (c.plane_mask.test(p)) {
            if (!first) os << ',';
            os << p;
            first = false;
          }
        }
        break;
      }
      case FaultClauseKind::kLinkLoss:
        os << ' ' << c.plane_a << ' ' << c.plane_b << ' ' << c.value;
        break;
      case FaultClauseKind::kGeLoss:
        os << ' ' << c.plane_a << ' ' << c.plane_b << ' ' << c.param_a << ' '
           << c.param_b << ' ' << c.value;
        break;
      case FaultClauseKind::kOutageTrain:
        os << ' ' << c.plane_a << ' ' << c.plane_b << ' ' << c.param_a << ' '
           << c.param_b;
        break;
      case FaultClauseKind::kSatLifecycle:
        os << ' ' << c.satellite.plane << ' ' << c.satellite.slot << ' '
           << c.param_a << ' ' << c.param_b;
        break;
    }
    if (c.windowed()) {
      os << ' ' << c.window_start.to_minutes() << ' '
         << c.window_end.to_minutes();
    }
    if (c.shell >= 0) os << " shell " << c.shell;
    os << '\n';
  }
}

}  // namespace oaq
