// Deterministic discrete-event simulation kernel.
//
// Drives the protocol simulator (src/oaq), the crosslink network (src/net)
// and the dependability model (src/fault). Events at equal timestamps fire
// in scheduling order, so runs are bit-reproducible for a fixed seed.
//
// The kernel is allocation-free in steady state (ISSUE 3): events live in a
// slab with a free list and are addressed by dense slots; EventIds carry the
// slot's generation tag, making cancel / is_pending O(1) without any
// per-event map; callbacks are stored in a small-buffer-optimized
// SmallFunction. The ready queue is a merge-run ("lazy") queue rather than a
// comparison heap: schedule appends to an unsorted spill buffer, which is
// sorted into a run only when its earliest entry must fire, and pops stream
// from the sorted runs through a small tournament. Ordering is by a packed
// 128-bit (time-bits, seq) key — sim times are nonnegative, so the IEEE
// double bit pattern orders like an integer — which keeps event order
// exactly (time, then scheduling order) and therefore bit-reproducible.
// Cancelled events leave tombstones that pops skip and merges purge. All
// buffers are recycled, so scheduling performs zero heap allocations once
// the slab and run pool have grown to the episode's working set.
//
// Episode tags (ISSUE 9): the kernel can multiplex several independent
// episodes over one event timeline. A 16-bit tag occupies the high bits of
// the sequence word, so the packed key orders (time, tag, scheduling
// order) with zero queue-machinery changes; per-tag lane accounting keeps
// a virtual clock and scheduled/processed/cancelled/pending balances that
// match what each episode would have seen in a dedicated simulator. Tag 0
// is the default lane — untagged users produce bit-identical sequence
// words to the pre-tag kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/function.hpp"
#include "common/units.hpp"

namespace oaq {

/// Maintenance counters of the merge-run ready queue, cumulative over the
/// simulator's life. Pure functions of the event/cancel sequence — runs
/// with the same seed report the same numbers — so the observability layer
/// can export them next to the deterministic simulation metrics.
struct QueueStats {
  std::uint64_t runs_created = 0;  ///< sorted runs materialized from spills
  std::uint64_t run_merges = 0;    ///< full k-way consolidations (run cap hit)
  std::uint64_t tombstones_purged = 0;  ///< cancelled entries dropped
  std::uint64_t max_run_length = 0;     ///< largest run ever materialized
  std::uint64_t spill_folds = 0;  ///< spills folded into the sole run in place
};

/// Lifetime event accounting. Every event ever scheduled is exactly one of
/// processed, cancelled, or still pending, so
/// `scheduled == processed + cancelled + pending` holds at every step
/// boundary — the balance the fault-storm InvariantChecker asserts.
struct SimAccounting {
  std::uint64_t scheduled = 0;
  std::uint64_t processed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t pending = 0;
};

/// Opaque id of a scheduled event; usable to cancel it. Packs the event's
/// slab slot (low 32 bits) and its generation tag (high 32 bits): a slot
/// may be reused after the event fires or is cancelled, but the bumped
/// generation makes every stale id compare as "no longer pending".
struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Event-driven simulator with a monotonic virtual clock.
class Simulator {
 public:
  /// Inline capture budget: the protocol's largest hot callback (this +
  /// a Pass + a TimePoint and change) fits with headroom, and so does a
  /// moved-in std::function.
  using Callback = SmallFunction<void(), 64>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now). Returns a cancellable id.
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after a nonnegative delay from now.
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or unknown event
  /// is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True when an event with this id is still pending.
  [[nodiscard]] bool is_pending(EventId id) const;

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fire (safety valve).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run all events with time <= `t`, then advance the clock to `t`.
  void run_until(TimePoint t);

  /// Pre-size the slab and heap for an expected concurrent-event count
  /// (optional; the kernel grows on demand and then stops allocating).
  void reserve(std::size_t events);

  /// Return the kernel to its just-constructed state — clock at the
  /// origin, sequence counter restarted, all counters zeroed — while
  /// keeping the grown slab, free list, and run buffers, so the next
  /// episode in a batch schedules without allocating. The event order of a
  /// subsequent run is identical to a fresh simulator's: the ordering key
  /// is (time, restarted sequence) and never the recycled slot numbers.
  /// Precondition: the queue has drained (no pending events).
  void reset();

  [[nodiscard]] std::size_t pending_count() const { return live_; }
  [[nodiscard]] std::uint64_t processed_count() const { return processed_; }
  /// High-water mark of the pending-event set over the simulator's life —
  /// the DES queue-depth gauge the observability layer reports.
  [[nodiscard]] std::size_t peak_pending_count() const { return peak_pending_; }
  /// Ready-queue maintenance counters (run/merge/tombstone accounting).
  [[nodiscard]] const QueueStats& queue_stats() const { return queue_stats_; }
  /// Scheduled/processed/cancelled/pending balance (see SimAccounting).
  [[nodiscard]] SimAccounting accounting() const {
    return {scheduled_, processed_, cancelled_,
            static_cast<std::uint64_t>(live_)};
  }

  /// Maximum episode tag value (the tag rides in the top 16 bits of the
  /// sequence word, leaving 48 bits of scheduling order).
  static constexpr std::uint16_t kMaxEpisodeTag = 0xFFFF;

  /// Select the episode lane that subsequently scheduled events belong to.
  /// Events scheduled from inside a callback inherit the firing event's
  /// tag automatically, so one explicit call while arming an episode is
  /// enough; the whole cascade it spawns stays in its lane. Grows the lane
  /// table on first use of a tag (reserve_episode_tags pre-sizes it).
  void set_episode_tag(std::uint16_t tag);

  /// Pre-size the lane table for tags [0, n) so arming never allocates.
  void reserve_episode_tags(std::size_t n);

  /// Currently selected episode lane (the firing event's lane during a
  /// callback).
  [[nodiscard]] std::uint16_t episode_tag() const { return current_tag_; }

  /// Per-lane event balance — what `accounting()` would report had this
  /// episode run in a dedicated simulator.
  [[nodiscard]] SimAccounting episode_accounting(std::uint16_t tag) const;

  /// Per-lane pending-event high-water mark.
  [[nodiscard]] std::size_t episode_peak_pending(std::uint16_t tag) const;

  /// Per-lane virtual clock: the timestamp of the lane's last fired event
  /// (the origin before any fire). While a lane's own callback runs,
  /// `now()` and `episode_now(tag)` agree.
  [[nodiscard]] TimePoint episode_now(std::uint16_t tag) const;

 private:
  /// Slab entry. `gen` is odd while the slot is armed (event pending) and
  /// even while free; it increments on every arm and disarm, so an EventId
  /// matches iff its generation equals the slot's current (odd) one.
  struct Event {
    TimePoint at{};
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    Callback callback;
  };

  /// Ready-queue entry. `at_bits` is the event time's IEEE bit pattern
  /// (nonnegative, so unsigned comparison matches double comparison); the
  /// full ordering key is the 128-bit (at_bits, seq) pair, unique per
  /// event and identical to "time, then scheduling order".
  struct QueueEntry {
    std::uint64_t at_bits = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;

    [[nodiscard]] unsigned __int128 key() const {
      return (static_cast<unsigned __int128>(at_bits) << 64) | seq;
    }
  };

  /// A sorted batch of queue entries consumed front to back.
  struct Run {
    std::vector<QueueEntry> entries;
    std::size_t head = 0;
  };

  /// Per-episode lane: virtual clock plus the event balance the episode
  /// would have accumulated in a dedicated simulator.
  struct LaneState {
    TimePoint now = TimePoint::origin();
    std::uint64_t scheduled = 0;
    std::uint64_t processed = 0;
    std::uint64_t cancelled = 0;
    std::size_t live = 0;
    std::size_t peak = 0;
  };

  [[nodiscard]] static constexpr std::uint16_t tag_of_seq(std::uint64_t seq) {
    return static_cast<std::uint16_t>(seq >> 48);
  }

  [[nodiscard]] static constexpr EventId pack(std::uint32_t slot,
                                              std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) | slot};
  }
  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.value & 0xFFFFFFFFull);
  }
  [[nodiscard]] static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id.value >> 32);
  }

  [[nodiscard]] bool entry_live(const QueueEntry& e) const {
    return slab_[e.slot].gen == e.gen;
  }

  /// Sort the spill buffer (minus tombstones) into a new run, merging the
  /// existing runs first if the run limit is hit.
  void flush_spill();
  /// K-way merge of every run into one, purging tombstones.
  void merge_runs();
  /// Advance run heads past tombstones, retire exhausted runs, and flush
  /// the spill when it holds the minimum. Returns the index of the run
  /// whose head is the global minimum, or -1 when no live event remains.
  int settle();
  [[nodiscard]] std::vector<QueueEntry> take_buffer();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint16_t current_tag_ = 0;
  std::uint64_t tag_bits_ = 0;  ///< current_tag_ << 48, OR-ed into seq
  std::vector<LaneState> lanes_ = std::vector<LaneState>(1);
  QueueStats queue_stats_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_;
  std::vector<Run> runs_;
  std::vector<QueueEntry> spill_;  ///< unsorted newly scheduled events
  unsigned __int128 spill_min_ = 0;
  std::vector<std::vector<QueueEntry>> buffer_pool_;  ///< recycled run storage
};

}  // namespace oaq
