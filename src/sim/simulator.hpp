// Deterministic discrete-event simulation kernel.
//
// Drives the protocol simulator (src/oaq), the crosslink network (src/net)
// and the dependability model (src/fault). Events at equal timestamps fire
// in scheduling order, so runs are bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace oaq {

/// Opaque id of a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Event-driven simulator with a monotonic virtual clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now). Returns a cancellable id.
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after a nonnegative delay from now.
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or unknown event
  /// is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True when an event with this id is still pending.
  [[nodiscard]] bool is_pending(EventId id) const;

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fire (safety valve).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run all events with time <= `t`, then advance the clock to `t`.
  void run_until(TimePoint t);

  [[nodiscard]] std::size_t pending_count() const { return live_.size(); }
  [[nodiscard]] std::uint64_t processed_count() const { return processed_; }
  /// High-water mark of the pending-event set over the simulator's life —
  /// the DES queue-depth gauge the observability layer reports.
  [[nodiscard]] std::size_t peak_pending_count() const { return peak_pending_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq = 0;
    Callback callback;
    bool cancelled = false;
  };
  struct Later {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;  // FIFO among simultaneous events
    }
  };

  /// Pop the next non-cancelled event, or nullptr when drained.
  std::shared_ptr<Event> pop_next();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, Later>
      queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Event>> live_;
};

}  // namespace oaq
