#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace oaq {

namespace {

/// Run-count ceiling before everything is merged into one. Small enough
/// that the per-pop tournament stays a handful of compares, large enough
/// that bursts of immediate events don't force merges.
constexpr std::size_t kMaxRuns = 8;

constexpr unsigned __int128 kNoKey = ~static_cast<unsigned __int128>(0);

/// Time bits for the ordering key. Sim times are nonnegative (schedule_at
/// requires t >= now and the clock starts at the origin), so the IEEE bit
/// pattern compares like an unsigned integer; +0.0 normalizes a possible
/// negative zero, and +infinity orders above every finite time.
std::uint64_t time_bits(TimePoint t) {
  return std::bit_cast<std::uint64_t>(t.since_origin().to_seconds() + 0.0);
}

}  // namespace

std::vector<Simulator::QueueEntry> Simulator::take_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<QueueEntry> buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buf.clear();
  return buf;
}

void Simulator::merge_runs() {
  ++queue_stats_.run_merges;
  std::vector<QueueEntry> out = take_buffer();
  std::size_t total = 0;
  for (const Run& r : runs_) total += r.entries.size() - r.head;
  // Round up so a slowly creeping high-water merge size settles on one
  // capacity instead of reallocating at every new maximum.
  out.reserve(std::bit_ceil(total + 1));
  while (true) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(runs_.size()); ++i) {
      Run& r = runs_[i];
      while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
        ++r.head;  // purge tombstones while streaming
        ++queue_stats_.tombstones_purged;
      }
      if (r.head >= r.entries.size()) continue;
      if (best < 0 ||
          r.entries[r.head].key() < runs_[best].entries[runs_[best].head].key()) {
        best = i;
      }
    }
    if (best < 0) break;
    out.push_back(runs_[best].entries[runs_[best].head++]);
  }
  for (Run& r : runs_) buffer_pool_.push_back(std::move(r.entries));
  runs_.clear();
  if (!out.empty()) {
    queue_stats_.max_run_length =
        std::max(queue_stats_.max_run_length,
                 static_cast<std::uint64_t>(out.size()));
    runs_.push_back(Run{std::move(out), 0});
  } else {
    buffer_pool_.push_back(std::move(out));
  }
}

void Simulator::flush_spill() {
  const std::size_t before = spill_.size();
  std::erase_if(spill_, [this](const QueueEntry& e) { return !entry_live(e); });
  queue_stats_.tombstones_purged +=
      static_cast<std::uint64_t>(before - spill_.size());
  spill_min_ = kNoKey;
  if (spill_.empty()) return;
  std::sort(spill_.begin(), spill_.end(),
            [](const QueueEntry& a, const QueueEntry& b) {
              return a.key() < b.key();
            });
  if (runs_.size() >= kMaxRuns) merge_runs();
  // Both bookkeeping vectors are bounded by the run limit; reserving the
  // bound once keeps later first-time-maximum growth off the hot path.
  if (runs_.capacity() < kMaxRuns + 1) {
    runs_.reserve(kMaxRuns + 1);
    buffer_pool_.reserve(kMaxRuns + 2);
  }
  Run r;
  r.entries = take_buffer();
  r.entries.swap(spill_);
  ++queue_stats_.runs_created;
  queue_stats_.max_run_length =
      std::max(queue_stats_.max_run_length,
               static_cast<std::uint64_t>(r.entries.size()));
  runs_.push_back(std::move(r));
}

int Simulator::settle() {
  if (live_ == 0) return -1;
  // Fast path: one run and no spill means the ≤8-way tournament and the
  // spill-minimum check are both no-ops — advance the head past tombstones
  // and pop from the sole run. Long drain phases (an episode's tail, the
  // cancel-heavy pattern) sit in this shape almost exclusively.
  if (runs_.size() == 1 && spill_.empty()) {
    Run& r = runs_.front();
    while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
      ++r.head;
      ++queue_stats_.tombstones_purged;
    }
    // An exhausted sole run falls through so the general path recycles it.
    if (r.head < r.entries.size()) return 0;
  }
  while (true) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(runs_.size());) {
      Run& r = runs_[i];
      while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
        ++r.head;
        ++queue_stats_.tombstones_purged;
      }
      if (r.head >= r.entries.size()) {  // exhausted: recycle, swap-erase
        buffer_pool_.push_back(std::move(r.entries));
        runs_[i] = std::move(runs_.back());
        runs_.pop_back();
        continue;
      }
      if (best < 0 ||
          r.entries[r.head].key() < runs_[best].entries[runs_[best].head].key()) {
        best = i;
      }
      ++i;
    }
    // The spill's tracked minimum is conservative (a cancelled event can
    // leave it lower than any live entry), so flushing when it wins never
    // skips an event — at worst it sorts the spill slightly early.
    if (!spill_.empty() &&
        (best < 0 || spill_min_ < runs_[best].entries[runs_[best].head].key())) {
      flush_spill();
      continue;
    }
    return best;
  }
}

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  OAQ_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OAQ_REQUIRE(cb != nullptr, "event callback must be callable");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
    // The free list holds at most one entry per slab slot; growing it in
    // lockstep keeps the later disarm path (cancel/fire, incl. queue
    // drain) allocation-free.
    free_.reserve(slab_.capacity());
  }
  Event& ev = slab_[slot];
  ev.at = t;
  ev.seq = next_seq_++;
  ev.callback = std::move(cb);
  ++ev.gen;  // arm: generation becomes odd
  QueueEntry entry{time_bits(t), ev.seq, slot, ev.gen};
  if (entry.key() < spill_min_) spill_min_ = entry.key();
  spill_.push_back(entry);
  ++scheduled_;
  ++live_;
  if (live_ > peak_pending_) peak_pending_ = live_;
  return pack(slot, ev.gen);
}

EventId Simulator::schedule_after(Duration delay, Callback cb) {
  OAQ_REQUIRE(delay >= Duration::zero(), "delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slab_.size()) return false;
  Event& ev = slab_[slot];
  if (ev.gen != gen_of(id) || (ev.gen & 1u) == 0) return false;
  ++ev.gen;  // disarm: the queue entry becomes a tombstone
  ev.callback = nullptr;  // release captured state now, not at pop time
  free_.push_back(slot);
  ++cancelled_;
  --live_;
  return true;
}

bool Simulator::is_pending(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slab_.size() && slab_[slot].gen == gen_of(id) &&
         (gen_of(id) & 1u) != 0;
}

bool Simulator::step() {
  const int best = settle();
  if (best < 0) return false;
  Run& r = runs_[best];
  const QueueEntry top = r.entries[r.head++];
  Event& ev = slab_[top.slot];
  OAQ_ENSURE(ev.at >= now_, "event queue violated time order");
  ++ev.gen;  // disarm before invoking: the own id reads "already fired"
  Callback cb = std::move(ev.callback);
  free_.push_back(top.slot);
  --live_;
  now_ = ev.at;
  ++processed_;
  cb();  // may grow the slab; `ev` must not be touched past this point
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  OAQ_REQUIRE(t >= now_, "cannot run backwards");
  const std::uint64_t limit = time_bits(t);
  while (true) {
    const int best = settle();
    if (best < 0) break;
    const Run& r = runs_[best];
    if (r.entries[r.head].at_bits > limit) break;
    step();
  }
  now_ = t;
}

void Simulator::reserve(std::size_t events) {
  slab_.reserve(events);
  free_.reserve(events);
  spill_.reserve(events);
}

void Simulator::reset() {
  OAQ_REQUIRE(live_ == 0, "reset with events still pending");
  now_ = TimePoint::origin();
  next_seq_ = 1;
  processed_ = 0;
  scheduled_ = 0;
  cancelled_ = 0;
  peak_pending_ = 0;
  queue_stats_ = {};
  for (Run& r : runs_) buffer_pool_.push_back(std::move(r.entries));
  runs_.clear();
  spill_.clear();
  spill_min_ = 0;
  // slab_ and free_ survive: every slot is disarmed (even generation) and
  // already on the free list, so the next episode reuses them in place.
}

}  // namespace oaq
