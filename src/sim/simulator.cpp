#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace oaq {

namespace {

/// Run-count ceiling before everything is merged into one. Small enough
/// that the per-pop tournament stays a handful of compares, large enough
/// that bursts of immediate events don't force merges.
constexpr std::size_t kMaxRuns = 8;

/// Largest tail segment flush_spill() will shift to fold a due spill into
/// the sole run in place. The fold turns the schedule-one-pop-one steady
/// state — and the interleaved multi-lane timeline, whose pending set is
/// width times larger — into one long-lived sorted run (no per-event run
/// materialization, no tournaments, no k-way merges). The bound keeps the
/// shift O(1): a deep pending set with near-head arrivals falls back to
/// run creation instead of degrading into an O(pending) memmove per event.
constexpr std::size_t kMaxFoldTail = 64;

/// Dead-prefix length below which flush_spill() skips compacting the sole
/// run. Under the direct-append fast path the sole run can live for the
/// whole simulation (new tail entries keep arriving before settle() ever
/// sees it exhausted), so popped entries would otherwise accumulate ahead
/// of `head` forever — the buffer grew by every tail merge for the
/// lifetime of the simulator. Compaction is deferred until the dead
/// prefix outweighs the live tail, so each moved entry is paid for by a
/// prior pop: amortized O(1), and the buffer stays within 2x the peak
/// live set.
constexpr std::size_t kMinCompactDead = 64;

constexpr unsigned __int128 kNoKey = ~static_cast<unsigned __int128>(0);

/// Scheduling-order counter budget under the 16-bit episode tag. A run
/// between resets would need 2^48 schedules to exhaust it.
constexpr std::uint64_t kSeqLimit = 1ull << 48;

/// Time bits for the ordering key. Sim times are nonnegative (schedule_at
/// requires t >= now and the clock starts at the origin), so the IEEE bit
/// pattern compares like an unsigned integer; +0.0 normalizes a possible
/// negative zero, and +infinity orders above every finite time.
std::uint64_t time_bits(TimePoint t) {
  return std::bit_cast<std::uint64_t>(t.since_origin().to_seconds() + 0.0);
}

}  // namespace

std::vector<Simulator::QueueEntry> Simulator::take_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<QueueEntry> buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buf.clear();
  return buf;
}

void Simulator::merge_runs() {
  ++queue_stats_.run_merges;
  std::vector<QueueEntry> out = take_buffer();
  std::size_t total = 0;
  for (const Run& r : runs_) total += r.entries.size() - r.head;
  // Round up so a slowly creeping high-water merge size settles on one
  // capacity instead of reallocating at every new maximum.
  out.reserve(std::bit_ceil(total + 1));
  while (true) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(runs_.size()); ++i) {
      Run& r = runs_[i];
      while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
        ++r.head;  // purge tombstones while streaming
        ++queue_stats_.tombstones_purged;
      }
      if (r.head >= r.entries.size()) continue;
      if (best < 0 ||
          r.entries[r.head].key() < runs_[best].entries[runs_[best].head].key()) {
        best = i;
      }
    }
    if (best < 0) break;
    out.push_back(runs_[best].entries[runs_[best].head++]);
  }
  for (Run& r : runs_) buffer_pool_.push_back(std::move(r.entries));
  runs_.clear();
  if (!out.empty()) {
    queue_stats_.max_run_length =
        std::max(queue_stats_.max_run_length,
                 static_cast<std::uint64_t>(out.size()));
    runs_.push_back(Run{std::move(out), 0});
  } else {
    buffer_pool_.push_back(std::move(out));
  }
}

void Simulator::flush_spill() {
  const std::size_t before = spill_.size();
  std::erase_if(spill_, [this](const QueueEntry& e) { return !entry_live(e); });
  queue_stats_.tombstones_purged +=
      static_cast<std::uint64_t>(before - spill_.size());
  spill_min_ = kNoKey;
  if (spill_.empty()) return;
  std::sort(spill_.begin(), spill_.end(),
            [](const QueueEntry& a, const QueueEntry& b) {
              return a.key() < b.key();
            });
  // In-place fold: with a single run, merge the sorted spill into it by a
  // backward shift instead of materializing a new run. Pop order is the
  // packed key order either way; this only changes where sorted entries
  // live. The dead prefix [0, head) is never touched — a same-time entry
  // from a lower episode tag may key below an already-popped entry, which
  // is fine because pops are only time-ordered across tags (DESIGN.md §15).
  if (runs_.size() == 1) {
    Run& r = runs_.front();
    std::vector<QueueEntry>& dst = r.entries;
    // Reclaim the dead prefix once it outweighs the live tail. Pop order
    // is unaffected — only where the live entries sit in the buffer
    // changes — and shrinking before the merge below means the resize
    // path stays inside the warmed capacity instead of growing it.
    if (r.head >= kMinCompactDead && r.head > dst.size() - r.head) {
      std::move(dst.begin() + static_cast<std::ptrdiff_t>(r.head), dst.end(),
                dst.begin());
      dst.resize(dst.size() - r.head);
      r.head = 0;
    }
    const std::size_t n = dst.size();
    const std::size_t m = spill_.size();
    const unsigned __int128 lo = spill_.front().key();
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(dst.begin() + static_cast<std::ptrdiff_t>(r.head),
                         dst.end(), lo,
                         [](const QueueEntry& e, unsigned __int128 key) {
                           return e.key() < key;
                         }) -
        dst.begin());
    // Left fold: when the whole spill fits in the gap before dst[pos]
    // (always true for the single-event spills the steady state produces),
    // reuse the dead prefix the pops have opened: everything in [head, pos)
    // keys below the spill, so the fold is one shift plus one copy. Under
    // the interleaved timeline — where the firing lane sits at the earliest
    // virtual time and new events land near the merged head — this is the
    // common case: the cost is O(spill), not O(pending lanes).
    const std::size_t left_cost = pos - r.head;
    if (r.head >= m && left_cost <= n - pos && left_cost <= kMaxFoldTail &&
        (pos == n || spill_.back().key() < dst[pos].key())) {
      std::move(dst.begin() + static_cast<std::ptrdiff_t>(r.head),
                dst.begin() + static_cast<std::ptrdiff_t>(pos),
                dst.begin() + static_cast<std::ptrdiff_t>(r.head - m));
      std::copy(spill_.begin(), spill_.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(pos - m));
      r.head -= m;
      spill_.clear();
      queue_stats_.spill_folds += 1;
      return;
    }
    if (n - pos <= kMaxFoldTail) {
      dst.resize(n + m);  // capacity stabilizes: steady state allocates nothing
      std::size_t i = n;
      std::size_t j = m;
      std::size_t k = n + m;
      while (j > 0) {
        if (i > pos && dst[i - 1].key() > spill_[j - 1].key()) {
          dst[--k] = dst[--i];
        } else {
          dst[--k] = spill_[--j];
        }
      }
      spill_.clear();
      queue_stats_.spill_folds += 1;
      queue_stats_.max_run_length =
          std::max(queue_stats_.max_run_length,
                   static_cast<std::uint64_t>(n + m));
      return;
    }
  }
  if (runs_.size() >= kMaxRuns) merge_runs();
  // Both bookkeeping vectors are bounded by the run limit; reserving the
  // bound once keeps later first-time-maximum growth off the hot path.
  if (runs_.capacity() < kMaxRuns + 1) {
    runs_.reserve(kMaxRuns + 1);
    buffer_pool_.reserve(kMaxRuns + 2);
  }
  Run r;
  r.entries = take_buffer();
  r.entries.swap(spill_);
  ++queue_stats_.runs_created;
  queue_stats_.max_run_length =
      std::max(queue_stats_.max_run_length,
               static_cast<std::uint64_t>(r.entries.size()));
  runs_.push_back(std::move(r));
}

int Simulator::settle() {
  if (live_ == 0) return -1;
  // Fast path: one run and no spill means the ≤8-way tournament and the
  // spill-minimum check are both no-ops — advance the head past tombstones
  // and pop from the sole run. Long drain phases (an episode's tail, the
  // cancel-heavy pattern) sit in this shape almost exclusively.
  if (runs_.size() == 1 && spill_.empty()) {
    Run& r = runs_.front();
    while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
      ++r.head;
      ++queue_stats_.tombstones_purged;
    }
    // An exhausted sole run falls through so the general path recycles it.
    if (r.head < r.entries.size()) return 0;
  }
  while (true) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(runs_.size());) {
      Run& r = runs_[i];
      while (r.head < r.entries.size() && !entry_live(r.entries[r.head])) {
        ++r.head;
        ++queue_stats_.tombstones_purged;
      }
      if (r.head >= r.entries.size()) {  // exhausted: recycle, swap-erase
        buffer_pool_.push_back(std::move(r.entries));
        runs_[i] = std::move(runs_.back());
        runs_.pop_back();
        continue;
      }
      if (best < 0 ||
          r.entries[r.head].key() < runs_[best].entries[runs_[best].head].key()) {
        best = i;
      }
      ++i;
    }
    // The spill's tracked minimum is conservative (a cancelled event can
    // leave it lower than any live entry), so flushing when it wins never
    // skips an event — at worst it sorts the spill slightly early.
    if (!spill_.empty() &&
        (best < 0 || spill_min_ < runs_[best].entries[runs_[best].head].key())) {
      flush_spill();
      continue;
    }
    return best;
  }
}

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  OAQ_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OAQ_REQUIRE(cb != nullptr, "event callback must be callable");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
    // The free list holds at most one entry per slab slot; growing it in
    // lockstep keeps the later disarm path (cancel/fire, incl. queue
    // drain) allocation-free.
    free_.reserve(slab_.capacity());
  }
  OAQ_REQUIRE(next_seq_ < kSeqLimit, "scheduling-order counter exhausted");
  Event& ev = slab_[slot];
  ev.at = t;
  ev.seq = tag_bits_ | next_seq_++;
  ev.callback = std::move(cb);
  ++ev.gen;  // arm: generation becomes odd
  QueueEntry entry{time_bits(t), ev.seq, slot, ev.gen};
  // Direct append: an event keying past the sole run's back (the far-future
  // deadlines every lane arms) extends the run in place — it never rides
  // the spill, so it never costs a sort or a fold shift. Tombstones keep
  // their key, so comparing against a cancelled back entry stays ordered.
  if (spill_.empty() && runs_.size() == 1 && !runs_.front().entries.empty() &&
      entry.key() > runs_.front().entries.back().key()) {
    runs_.front().entries.push_back(entry);
  } else {
    if (entry.key() < spill_min_) spill_min_ = entry.key();
    spill_.push_back(entry);
  }
  ++scheduled_;
  ++live_;
  if (live_ > peak_pending_) peak_pending_ = live_;
  LaneState& lane = lanes_[current_tag_];
  ++lane.scheduled;
  ++lane.live;
  if (lane.live > lane.peak) lane.peak = lane.live;
  return pack(slot, ev.gen);
}

EventId Simulator::schedule_after(Duration delay, Callback cb) {
  OAQ_REQUIRE(delay >= Duration::zero(), "delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slab_.size()) return false;
  Event& ev = slab_[slot];
  if (ev.gen != gen_of(id) || (ev.gen & 1u) == 0) return false;
  ++ev.gen;  // disarm: the queue entry becomes a tombstone
  ev.callback = nullptr;  // release captured state now, not at pop time
  free_.push_back(slot);
  ++cancelled_;
  --live_;
  LaneState& lane = lanes_[tag_of_seq(ev.seq)];
  ++lane.cancelled;
  --lane.live;
  return true;
}

bool Simulator::is_pending(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slab_.size() && slab_[slot].gen == gen_of(id) &&
         (gen_of(id) & 1u) != 0;
}

bool Simulator::step() {
  const int best = settle();
  if (best < 0) return false;
  Run& r = runs_[best];
  const QueueEntry top = r.entries[r.head++];
  Event& ev = slab_[top.slot];
  OAQ_ENSURE(ev.at >= now_, "event queue violated time order");
  ++ev.gen;  // disarm before invoking: the own id reads "already fired"
  Callback cb = std::move(ev.callback);
  free_.push_back(top.slot);
  --live_;
  now_ = ev.at;
  ++processed_;
  // The callback runs in the firing event's lane: its virtual clock
  // advances and anything it schedules or cancels inherits the tag.
  current_tag_ = tag_of_seq(top.seq);
  tag_bits_ = top.seq & (0xFFFFull << 48);
  LaneState& lane = lanes_[current_tag_];
  lane.now = ev.at;
  ++lane.processed;
  --lane.live;
  cb();  // may grow the slab; `ev` must not be touched past this point
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  OAQ_REQUIRE(t >= now_, "cannot run backwards");
  const std::uint64_t limit = time_bits(t);
  while (true) {
    const int best = settle();
    if (best < 0) break;
    const Run& r = runs_[best];
    if (r.entries[r.head].at_bits > limit) break;
    step();
  }
  now_ = t;
}

void Simulator::reserve(std::size_t events) {
  slab_.reserve(events);
  free_.reserve(events);
  spill_.reserve(events);
}

void Simulator::set_episode_tag(std::uint16_t tag) {
  current_tag_ = tag;
  tag_bits_ = static_cast<std::uint64_t>(tag) << 48;
  if (tag >= lanes_.size()) lanes_.resize(tag + 1);
}

void Simulator::reserve_episode_tags(std::size_t n) {
  if (n > lanes_.size()) lanes_.resize(n);
}

SimAccounting Simulator::episode_accounting(std::uint16_t tag) const {
  if (tag >= lanes_.size()) return {};
  const LaneState& lane = lanes_[tag];
  return {lane.scheduled, lane.processed, lane.cancelled,
          static_cast<std::uint64_t>(lane.live)};
}

std::size_t Simulator::episode_peak_pending(std::uint16_t tag) const {
  return tag < lanes_.size() ? lanes_[tag].peak : 0;
}

TimePoint Simulator::episode_now(std::uint16_t tag) const {
  return tag < lanes_.size() ? lanes_[tag].now : TimePoint::origin();
}

void Simulator::reset() {
  OAQ_REQUIRE(live_ == 0, "reset with events still pending");
  now_ = TimePoint::origin();
  next_seq_ = 1;
  processed_ = 0;
  scheduled_ = 0;
  cancelled_ = 0;
  peak_pending_ = 0;
  current_tag_ = 0;
  tag_bits_ = 0;
  for (LaneState& lane : lanes_) lane = LaneState{};
  queue_stats_ = {};
  for (Run& r : runs_) buffer_pool_.push_back(std::move(r.entries));
  runs_.clear();
  spill_.clear();
  spill_min_ = 0;
  // slab_ and free_ survive: every slot is disarmed (even generation) and
  // already on the free list, so the next episode reuses them in place.
}

}  // namespace oaq
