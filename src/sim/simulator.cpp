#include "sim/simulator.hpp"

#include <utility>

namespace oaq {

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  OAQ_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OAQ_REQUIRE(cb != nullptr, "event callback must be callable");
  auto ev = std::make_shared<Event>();
  ev->at = t;
  ev->seq = next_seq_++;
  ev->callback = std::move(cb);
  queue_.push(ev);
  live_.emplace(ev->seq, ev);
  if (live_.size() > peak_pending_) peak_pending_ = live_.size();
  return EventId{ev->seq};
}

EventId Simulator::schedule_after(Duration delay, Callback cb) {
  OAQ_REQUIRE(delay >= Duration::zero(), "delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const auto it = live_.find(id.value);
  if (it == live_.end()) return false;
  it->second->cancelled = true;
  live_.erase(it);
  return true;
}

bool Simulator::is_pending(EventId id) const {
  return live_.contains(id.value);
}

std::shared_ptr<Simulator::Event> Simulator::pop_next() {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    queue_.pop();
    if (!ev->cancelled) {
      live_.erase(ev->seq);
      return ev;
    }
  }
  return nullptr;
}

bool Simulator::step() {
  auto ev = pop_next();
  if (!ev) return false;
  OAQ_ENSURE(ev->at >= now_, "event queue violated time order");
  now_ = ev->at;
  ++processed_;
  ev->callback();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  OAQ_REQUIRE(t >= now_, "cannot run backwards");
  while (!queue_.empty()) {
    // Peek without firing events beyond the boundary.
    auto top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->at > t) break;
    step();
  }
  now_ = t;
}

}  // namespace oaq
