// Doppler-shifted frequency-of-arrival (FOA) measurement model.
//
// Sequential localization in the paper rests on Levanon (1998) and
// Chan & Towers (1992): a LEO satellite receiving a ground emitter observes
// the carrier shifted by the range-rate Doppler; a time series of such
// measurements constrains the emitter position. This module predicts and
// synthesizes those measurements; src/geoloc inverts them.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "orbit/kepler.hpp"
#include "orbit/plane.hpp"
#include "rf/emitter.hpp"

namespace oaq {

/// One frequency-of-arrival observation.
struct FoaMeasurement {
  Duration time{};            ///< measurement epoch (since frame epoch)
  SatelliteId satellite{};    ///< which satellite took it
  StateVector sat_state;      ///< ECI satellite state at `time`
  double frequency_hz = 0.0;  ///< received (Doppler-shifted) frequency
  double sigma_hz = 1.0;      ///< 1-σ measurement noise
};

/// Doppler prediction and synthetic-measurement generation.
class DopplerModel {
 public:
  /// `earth_rotation` must match the orbit-propagation convention used by
  /// the caller (see Orbit::subsatellite_point).
  explicit DopplerModel(bool earth_rotation = true)
      : earth_rotation_(earth_rotation) {}

  [[nodiscard]] bool earth_rotation() const { return earth_rotation_; }

  /// Received frequency at the satellite for a given emitter location and
  /// carrier: f_rx = f0·(1 − ṙ/c) with ṙ the range rate.
  [[nodiscard]] double predicted_frequency_hz(const StateVector& sat,
                                              const GeoPoint& emitter_pos,
                                              double carrier_hz,
                                              Duration t) const;

  /// Range rate (km/s) between satellite and a ground point; positive when
  /// they separate.
  [[nodiscard]] double range_rate_km_s(const StateVector& sat,
                                       const GeoPoint& emitter_pos,
                                       Duration t) const;

  /// Synthesize noisy measurements of `emitter` taken by `orbit` at the
  /// given epochs. Epochs when the emitter is not transmitting, or outside
  /// the footprint `psi_rad`, are skipped.
  [[nodiscard]] std::vector<FoaMeasurement> take_measurements(
      const Orbit& orbit, SatelliteId sat_id, const Emitter& emitter,
      const std::vector<Duration>& epochs, double psi_rad, double sigma_hz,
      Rng& rng) const;

 private:
  bool earth_rotation_;
};

/// Evenly spaced epochs covering [start, end] (n >= 2).
[[nodiscard]] std::vector<Duration> measurement_epochs(Duration start,
                                                       Duration end, int n);

}  // namespace oaq
