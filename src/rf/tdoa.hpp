// Dual-satellite TDOA/FDOA measurements for simultaneous coverage.
//
// When two satellites co-observe an emitter (the paper's simultaneous
// multiple coverage), they can difference their observations: the time
// difference of arrival (TDOA) constrains the emitter to a hyperbolic
// ground curve and the frequency difference (FDOA) to another, independent
// curve — "the ambiguity problem will practically disappear, resulting in
// a dramatic improvement of positioning accuracy" (paper §2, after
// Levanon '98). This module synthesizes those pair measurements; the
// dual-satellite solver lives in src/geoloc/dual_fix.
#pragma once

#include "common/rng.hpp"
#include "rf/doppler.hpp"

namespace oaq {

/// One simultaneous dual-satellite observation pair.
struct PairMeasurement {
  Duration time{};
  SatelliteId sat_a{};
  SatelliteId sat_b{};
  StateVector state_a;
  StateVector state_b;
  double tdoa_s = 0.0;      ///< arrival-time difference (a minus b), seconds
  double sigma_tdoa_s = 0.0;
  double fdoa_hz = 0.0;     ///< received-frequency difference (a minus b)
  double sigma_fdoa_hz = 0.0;
};

/// TDOA/FDOA prediction and synthesis for co-observing satellite pairs.
class TdoaModel {
 public:
  explicit TdoaModel(bool earth_rotation = true)
      : doppler_(earth_rotation) {}

  /// Predicted TDOA (seconds): (range_a − range_b)/c.
  [[nodiscard]] double predicted_tdoa_s(const StateVector& a,
                                        const StateVector& b,
                                        const GeoPoint& emitter_pos,
                                        Duration t) const;

  /// Predicted FDOA (Hz): difference of the two received frequencies.
  [[nodiscard]] double predicted_fdoa_hz(const StateVector& a,
                                         const StateVector& b,
                                         const GeoPoint& emitter_pos,
                                         double carrier_hz, Duration t) const;

  /// Synthesize noisy pair measurements at the epochs where both
  /// satellites' footprints (angular radius `psi_rad`) cover the emitter
  /// and the emitter transmits.
  [[nodiscard]] std::vector<PairMeasurement> take_measurements(
      const Orbit& orbit_a, SatelliteId id_a, const Orbit& orbit_b,
      SatelliteId id_b, const Emitter& emitter,
      const std::vector<Duration>& epochs, double psi_rad,
      double sigma_tdoa_s, double sigma_fdoa_hz, Rng& rng) const;

  [[nodiscard]] const DopplerModel& doppler() const { return doppler_; }

 private:
  DopplerModel doppler_;
};

}  // namespace oaq
