// RF emitter model.
//
// The paper's targets are ground RF sources ("the cellular phones emitting
// RF signals") with unpredictable start times and exponentially distributed
// durations (§4.2.2). This is the synthetic substitute for real emitter
// traces: it exercises the same detection/measurement code path.
#pragma once

#include "common/units.hpp"
#include "geom/geodesy.hpp"

namespace oaq {

/// Speed of light, km/s.
inline constexpr double kSpeedOfLightKmPerS = 299792.458;

/// A ground RF emitter with a finite transmission window.
struct Emitter {
  GeoPoint position;              ///< true location (what geolocation recovers)
  double carrier_hz = 400.0e6;    ///< nominal carrier frequency
  TimePoint start{};              ///< transmission start
  Duration duration = Duration::infinity();  ///< transmission length

  [[nodiscard]] TimePoint end() const { return start + duration; }

  /// True when the emitter is transmitting at `t`.
  [[nodiscard]] bool emitting_at(TimePoint t) const {
    return t >= start && (!duration.is_finite() || t < end());
  }

  /// Emitter position in ECI at time `t` (since the frame epoch).
  /// With `earth_rotation` false the ECEF and ECI frames coincide.
  [[nodiscard]] Vec3 position_eci(Duration t, bool earth_rotation) const {
    const Vec3 ecef = geo_to_ecef(position);
    return earth_rotation ? ecef_to_eci(ecef, t) : ecef;
  }

  /// Emitter inertial velocity at time `t` (km/s); zero without rotation.
  [[nodiscard]] Vec3 velocity_eci(Duration t, bool earth_rotation) const {
    if (!earth_rotation) return {};
    const Vec3 r = position_eci(t, true);
    const Vec3 omega{0.0, 0.0, kEarthRotationRadPerS};
    return omega.cross(r);
  }
};

}  // namespace oaq
