#include "rf/doppler.hpp"

#include "common/error.hpp"

namespace oaq {

double DopplerModel::range_rate_km_s(const StateVector& sat,
                                     const GeoPoint& emitter_pos,
                                     Duration t) const {
  Emitter em;
  em.position = emitter_pos;
  const Vec3 r_em = em.position_eci(t, earth_rotation_);
  const Vec3 v_em = em.velocity_eci(t, earth_rotation_);
  const Vec3 dr = sat.position_km - r_em;
  const Vec3 dv = sat.velocity_km_s - v_em;
  const double range = dr.norm();
  OAQ_ENSURE(range > 0.0, "satellite and emitter coincide");
  return dr.dot(dv) / range;
}

double DopplerModel::predicted_frequency_hz(const StateVector& sat,
                                            const GeoPoint& emitter_pos,
                                            double carrier_hz,
                                            Duration t) const {
  OAQ_REQUIRE(carrier_hz > 0.0, "carrier frequency must be positive");
  const double rdot = range_rate_km_s(sat, emitter_pos, t);
  return carrier_hz * (1.0 - rdot / kSpeedOfLightKmPerS);
}

std::vector<FoaMeasurement> DopplerModel::take_measurements(
    const Orbit& orbit, SatelliteId sat_id, const Emitter& emitter,
    const std::vector<Duration>& epochs, double psi_rad, double sigma_hz,
    Rng& rng) const {
  OAQ_REQUIRE(sigma_hz > 0.0, "measurement noise must be positive");
  std::vector<FoaMeasurement> out;
  out.reserve(epochs.size());
  for (const Duration t : epochs) {
    if (!emitter.emitting_at(TimePoint::at(t))) continue;
    const GeoPoint subsat = orbit.subsatellite_point(t, earth_rotation_);
    if (central_angle(subsat, emitter.position) > psi_rad) continue;
    FoaMeasurement m;
    m.time = t;
    m.satellite = sat_id;
    m.sat_state = orbit.state_at(t);
    m.sigma_hz = sigma_hz;
    m.frequency_hz =
        predicted_frequency_hz(m.sat_state, emitter.position,
                               emitter.carrier_hz, t) +
        rng.normal(0.0, sigma_hz);
    out.push_back(m);
  }
  return out;
}

std::vector<Duration> measurement_epochs(Duration start, Duration end, int n) {
  OAQ_REQUIRE(n >= 2, "need at least two epochs");
  OAQ_REQUIRE(end > start, "epoch window must be nonempty");
  std::vector<Duration> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(start + (end - start) * (static_cast<double>(i) / (n - 1)));
  }
  return out;
}

}  // namespace oaq
