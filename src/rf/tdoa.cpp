#include "rf/tdoa.hpp"

#include "common/error.hpp"

namespace oaq {
namespace {

double range_km(const StateVector& sat, const Vec3& emitter_eci) {
  return (sat.position_km - emitter_eci).norm();
}

}  // namespace

double TdoaModel::predicted_tdoa_s(const StateVector& a, const StateVector& b,
                                   const GeoPoint& emitter_pos,
                                   Duration t) const {
  Emitter em;
  em.position = emitter_pos;
  const Vec3 r_em = em.position_eci(t, doppler_.earth_rotation());
  return (range_km(a, r_em) - range_km(b, r_em)) / kSpeedOfLightKmPerS;
}

double TdoaModel::predicted_fdoa_hz(const StateVector& a, const StateVector& b,
                                    const GeoPoint& emitter_pos,
                                    double carrier_hz, Duration t) const {
  return doppler_.predicted_frequency_hz(a, emitter_pos, carrier_hz, t) -
         doppler_.predicted_frequency_hz(b, emitter_pos, carrier_hz, t);
}

std::vector<PairMeasurement> TdoaModel::take_measurements(
    const Orbit& orbit_a, SatelliteId id_a, const Orbit& orbit_b,
    SatelliteId id_b, const Emitter& emitter,
    const std::vector<Duration>& epochs, double psi_rad, double sigma_tdoa_s,
    double sigma_fdoa_hz, Rng& rng) const {
  OAQ_REQUIRE(sigma_tdoa_s > 0.0 && sigma_fdoa_hz > 0.0,
              "noise sigmas must be positive");
  std::vector<PairMeasurement> out;
  for (const Duration t : epochs) {
    if (!emitter.emitting_at(TimePoint::at(t))) continue;
    const bool rot = doppler_.earth_rotation();
    const GeoPoint sub_a = orbit_a.subsatellite_point(t, rot);
    const GeoPoint sub_b = orbit_b.subsatellite_point(t, rot);
    if (central_angle(sub_a, emitter.position) > psi_rad) continue;
    if (central_angle(sub_b, emitter.position) > psi_rad) continue;

    PairMeasurement m;
    m.time = t;
    m.sat_a = id_a;
    m.sat_b = id_b;
    m.state_a = orbit_a.state_at(t);
    m.state_b = orbit_b.state_at(t);
    m.sigma_tdoa_s = sigma_tdoa_s;
    m.sigma_fdoa_hz = sigma_fdoa_hz;
    m.tdoa_s = predicted_tdoa_s(m.state_a, m.state_b, emitter.position, t) +
               rng.normal(0.0, sigma_tdoa_s);
    m.fdoa_hz = predicted_fdoa_hz(m.state_a, m.state_b, emitter.position,
                                  emitter.carrier_hz, t) +
                rng.normal(0.0, sigma_fdoa_hz);
    out.push_back(m);
  }
  return out;
}

}  // namespace oaq
