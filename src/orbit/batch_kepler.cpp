#include "orbit/batch_kepler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

BatchKepler::BatchKepler(const Orbit& orbit)
    : elements_(orbit.elements()),
      mean_motion_(orbit.mean_motion_rad_s()),
      j2_(orbit.j2_enabled()),
      b_over_a_(std::sqrt(1.0 - orbit.elements().eccentricity *
                                    orbit.elements().eccentricity)),
      p_hat_(orbit.perifocal_x_eci()),
      q_hat_(orbit.perifocal_y_eci()) {
  if (j2_) j2_rates_ = orbit.j2_secular_rates();
}

void BatchKepler::solve(const double* mean_anomaly_rad, std::size_t n,
                        double eccentricity, double* eccentric_anomaly_rad,
                        double tol) {
  OAQ_REQUIRE(eccentricity >= 0.0 && eccentricity < 1.0,
              "eccentricity must be in [0, 1)");
  constexpr std::size_t kW = kBatchKeplerWidth;
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t nb = std::min(kW, n - base);
    double m[kW];
    double e_anom[kW];
    bool active[kW];
    // Same guess as the scalar solver: E ≈ M + e·sin M after wrapping.
    for (std::size_t j = 0; j < nb; ++j) {
      m[j] = wrap_pi(mean_anomaly_rad[base + j]);
      e_anom[j] = m[j] + eccentricity * std::sin(m[j]);
      active[j] = true;
    }
    // Masked Newton: each lane performs exactly the scalar iteration —
    // apply the step, THEN retire on |step| < tol — so a lane's value
    // sequence matches solve_kepler's regardless of its neighbours.
    for (int iter = 0; iter < 64; ++iter) {
      bool any = false;
      for (std::size_t j = 0; j < nb; ++j) {
        if (!active[j]) continue;
        const double f = e_anom[j] - eccentricity * std::sin(e_anom[j]) - m[j];
        const double fp = 1.0 - eccentricity * std::cos(e_anom[j]);
        const double step = f / fp;
        e_anom[j] -= step;
        if (std::abs(step) < tol) {
          active[j] = false;
        } else {
          any = true;
        }
      }
      if (!any) break;
    }
    for (std::size_t j = 0; j < nb; ++j) eccentric_anomaly_rad[base + j] = e_anom[j];
  }
}

void BatchKepler::positions_block(const double* t_s, std::size_t nb,
                                  double* x_km, double* y_km,
                                  double* z_km) const {
  constexpr std::size_t kW = kBatchKeplerWidth;
  const double a = elements_.semi_major_km;
  const double e = elements_.eccentricity;

  // Per-lane rotation columns and epoch anomaly: constant without J2,
  // secularly drifted per sample with it (the scalar path rebuilds a
  // drifted Orbit per call; the rates are hoisted — they are a pure
  // function of the elements, so every call computed the same values).
  double phx[kW], phy[kW], phz[kW], qhx[kW], qhy[kW], qhz[kW], m0[kW];
  if (j2_) {
    for (std::size_t j = 0; j < nb; ++j) {
      const double dt = t_s[j];
      const double raan =
          wrap_two_pi(elements_.raan_rad + j2_rates_.raan_rate * dt);
      const double argp = wrap_two_pi(elements_.arg_perigee_rad +
                                      j2_rates_.arg_perigee_rate * dt);
      m0[j] = elements_.mean_anomaly_rad + j2_rates_.mean_anomaly_rate * dt;
      // Same R = Rz(Ω)·Rx(i)·Rz(ω) column expressions as the Orbit ctor.
      const double co = std::cos(raan);
      const double so = std::sin(raan);
      const double ci = std::cos(elements_.inclination_rad);
      const double si = std::sin(elements_.inclination_rad);
      const double cw = std::cos(argp);
      const double sw = std::sin(argp);
      phx[j] = co * cw - so * sw * ci;
      phy[j] = so * cw + co * sw * ci;
      phz[j] = sw * si;
      qhx[j] = -co * sw - so * cw * ci;
      qhy[j] = -so * sw + co * cw * ci;
      qhz[j] = cw * si;
    }
  } else {
    for (std::size_t j = 0; j < nb; ++j) {
      phx[j] = p_hat_.x;
      phy[j] = p_hat_.y;
      phz[j] = p_hat_.z;
      qhx[j] = q_hat_.x;
      qhy[j] = q_hat_.y;
      qhz[j] = q_hat_.z;
      m0[j] = elements_.mean_anomaly_rad;
    }
  }

  // Perifocal coordinates, mirroring position_eci's two branches. The
  // named xc/yc products keep the multiply/add association identical to
  // the inlined Vec3 operator chain of the scalar path.
  double xc[kW], yc[kW];
  if (e == 0.0) {
    for (std::size_t j = 0; j < nb; ++j) {
      const double u = m0[j] + mean_motion_ * t_s[j];
      xc[j] = a * std::cos(u);
      yc[j] = a * std::sin(u);
    }
  } else {
    double m[kW], e_anom[kW];
    for (std::size_t j = 0; j < nb; ++j) {
      m[j] = m0[j] + mean_motion_ * t_s[j];
    }
    solve(m, nb, e, e_anom);
    for (std::size_t j = 0; j < nb; ++j) {
      const double ce = std::cos(e_anom[j]);
      const double se = std::sin(e_anom[j]);
      xc[j] = a * (ce - e);
      yc[j] = a * b_over_a_ * se;  // a·√(1−e²)·sin E, sqrt hoisted
    }
  }
  for (std::size_t j = 0; j < nb; ++j) {
    const double px = phx[j] * xc[j];
    const double qx = qhx[j] * yc[j];
    x_km[j] = px + qx;
    const double py = phy[j] * xc[j];
    const double qy = qhy[j] * yc[j];
    y_km[j] = py + qy;
    const double pz = phz[j] * xc[j];
    const double qz = qhz[j] * yc[j];
    z_km[j] = pz + qz;
  }
}

void BatchKepler::positions_eci(const double* t_s, std::size_t n, double* x_km,
                                double* y_km, double* z_km) const {
  constexpr std::size_t kW = kBatchKeplerWidth;
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t nb = std::min(kW, n - base);
    positions_block(t_s + base, nb, x_km + base, y_km + base, z_km + base);
  }
}

void BatchKepler::coverage_margins(const GeoPoint& target,
                                   double footprint_radius_rad,
                                   bool earth_rotation, const double* t_s,
                                   std::size_t n, double* margin_rad) const {
  constexpr std::size_t kW = kBatchKeplerWidth;
  // Hoisted: the scalar chain rebuilt this unit vector per sample inside
  // central_angle; it is a pure function of the target.
  const Vec3 tu = geo_to_ecef_unit(target);
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t nb = std::min(kW, n - base);
    double x[kW], y[kW], z[kW];
    positions_block(t_s + base, nb, x, y, z);
    if (earth_rotation) {
      for (std::size_t j = 0; j < nb; ++j) {
        const double theta = kEarthRotationRadPerS * t_s[base + j];
        const double c = std::cos(theta);
        const double s = std::sin(theta);
        const double ex = c * x[j] + s * y[j];
        const double ey = -s * x[j] + c * y[j];
        x[j] = ex;
        y[j] = ey;
      }
    }
    // central_angle(subsat, target) without the geodetic round trip: the
    // angle between the (unnormalized) position and the target direction
    // equals the angle between their unit vectors; atan2(|u×v|, u·v) is
    // scale-invariant in u.
    for (std::size_t j = 0; j < nb; ++j) {
      const Vec3 pos{x[j], y[j], z[j]};
      const double angle = std::atan2(pos.cross(tu).norm(), pos.dot(tu));
      margin_rad[base + j] = footprint_radius_rad - angle;
    }
  }
}

}  // namespace oaq
