#include "orbit/coverage.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

CoverageAnalyzer::CoverageAnalyzer(const Constellation& constellation)
    : constellation_(&constellation) {}

std::vector<LatitudeBandCoverage> CoverageAnalyzer::by_latitude(
    Duration t, int nlat, int nlon) const {
  OAQ_REQUIRE(nlat > 0 && nlon > 0, "grid must be nonempty");

  // Precompute sub-satellite caps once per snapshot, with each
  // satellite's own shell footprint (shells differ in altitude and ψ).
  std::vector<GeoPoint> subsats;
  std::vector<double> psis;
  for (const auto id : constellation_->active_satellites()) {
    subsats.push_back(constellation_->subsatellite_point(id, t));
    psis.push_back(
        constellation_->footprint_of_plane(id.plane).angular_radius_rad());
  }

  std::vector<LatitudeBandCoverage> bands;
  bands.reserve(static_cast<std::size_t>(nlat));
  for (int i = 0; i < nlat; ++i) {
    const double lat = -kPi / 2.0 + kPi * (i + 0.5) / nlat;
    int covered = 0;
    int overlapped = 0;
    long multiplicity_sum = 0;
    for (int j = 0; j < nlon; ++j) {
      const double lon = -kPi + 2.0 * kPi * (j + 0.5) / nlon;
      const GeoPoint p{lat, lon};
      int count = 0;
      for (std::size_t s = 0; s < subsats.size(); ++s) {
        if (central_angle(subsats[s], p) <= psis[s]) ++count;
      }
      covered += (count >= 1);
      overlapped += (count >= 2);
      multiplicity_sum += count;
    }
    LatitudeBandCoverage band;
    band.lat_deg = rad2deg(lat);
    band.covered_fraction = static_cast<double>(covered) / nlon;
    band.overlap_fraction = static_cast<double>(overlapped) / nlon;
    band.mean_multiplicity = static_cast<double>(multiplicity_sum) / nlon;
    bands.push_back(band);
  }
  return bands;
}

GlobalCoverage CoverageAnalyzer::global(Duration t, int nlat, int nlon) const {
  const auto bands = by_latitude(t, nlat, nlon);
  GlobalCoverage g;
  double weight_sum = 0.0;
  for (const auto& band : bands) {
    const double w = std::cos(deg2rad(band.lat_deg));  // band area weight
    weight_sum += w;
    g.covered_fraction += w * band.covered_fraction;
    g.overlap_fraction += w * band.overlap_fraction;
    g.max_gap_fraction =
        std::max(g.max_gap_fraction, 1.0 - band.covered_fraction);
  }
  g.covered_fraction /= weight_sum;
  g.overlap_fraction /= weight_sum;
  return g;
}

std::vector<LatitudeBandCoverage> CoverageAnalyzer::by_latitude_time_averaged(
    int samples, int nlat, int nlon) const {
  OAQ_REQUIRE(samples > 0, "need at least one snapshot");
  std::vector<LatitudeBandCoverage> acc;
  // Sample over the longest shell period so every shell completes at
  // least one revolution (equals design().period for one shell).
  const Duration period = constellation_->max_period();
  for (int s = 0; s < samples; ++s) {
    const auto snap =
        by_latitude(period * (static_cast<double>(s) / samples), nlat, nlon);
    if (acc.empty()) {
      acc = snap;
      continue;
    }
    for (std::size_t b = 0; b < acc.size(); ++b) {
      acc[b].covered_fraction += snap[b].covered_fraction;
      acc[b].overlap_fraction += snap[b].overlap_fraction;
      acc[b].mean_multiplicity += snap[b].mean_multiplicity;
    }
  }
  for (auto& band : acc) {
    band.covered_fraction /= samples;
    band.overlap_fraction /= samples;
    band.mean_multiplicity /= samples;
  }
  return acc;
}

}  // namespace oaq
