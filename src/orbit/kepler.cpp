#include "orbit/kepler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oaq {

double solve_kepler(double mean_anomaly_rad, double eccentricity, double tol) {
  OAQ_REQUIRE(eccentricity >= 0.0 && eccentricity < 1.0,
              "eccentricity must be in [0, 1)");
  const double m = wrap_pi(mean_anomaly_rad);
  // Starting guess: E ≈ M + e·sin M works well for all e < 1.
  double e_anom = m + eccentricity * std::sin(m);
  for (int iter = 0; iter < 64; ++iter) {
    const double f = e_anom - eccentricity * std::sin(e_anom) - m;
    const double fp = 1.0 - eccentricity * std::cos(e_anom);
    const double step = f / fp;
    e_anom -= step;
    if (std::abs(step) < tol) break;
  }
  return e_anom;
}

Orbit::Orbit(const KeplerianElements& elements) : elements_(elements) {
  OAQ_REQUIRE(elements.semi_major_km > kEarthRadiusKm,
              "orbit must be above the Earth surface");
  OAQ_REQUIRE(elements.eccentricity >= 0.0 && elements.eccentricity < 1.0,
              "eccentricity must be in [0, 1)");
  const double a = elements.semi_major_km;
  mean_motion_ = std::sqrt(kEarthMuKm3PerS2 / (a * a * a));

  // Perifocal→ECI rotation R = Rz(Ω)·Rx(i)·Rz(ω), stored as the images of
  // the perifocal x (toward perigee) and y axes.
  const double co = std::cos(elements.raan_rad);
  const double so = std::sin(elements.raan_rad);
  const double ci = std::cos(elements.inclination_rad);
  const double si = std::sin(elements.inclination_rad);
  const double cw = std::cos(elements.arg_perigee_rad);
  const double sw = std::sin(elements.arg_perigee_rad);
  p_hat_ = {co * cw - so * sw * ci, so * cw + co * sw * ci, sw * si};
  q_hat_ = {-co * sw - so * cw * ci, -so * sw + co * cw * ci, cw * si};
}

Orbit Orbit::circular(double altitude_km, double inclination_rad,
                      double raan_rad, double arg_latitude_rad) {
  OAQ_REQUIRE(altitude_km > 0.0, "altitude must be positive");
  KeplerianElements el;
  el.semi_major_km = kEarthRadiusKm + altitude_km;
  el.eccentricity = 0.0;
  el.inclination_rad = inclination_rad;
  el.raan_rad = raan_rad;
  el.arg_perigee_rad = 0.0;
  // For e = 0 the mean anomaly equals the argument of latitude.
  el.mean_anomaly_rad = wrap_two_pi(arg_latitude_rad);
  return Orbit(el);
}

Orbit Orbit::circular_with_period(Duration period, double inclination_rad,
                                  double raan_rad, double arg_latitude_rad) {
  const double a = semi_major_for_period(period);
  return circular(a - kEarthRadiusKm, inclination_rad, raan_rad,
                  arg_latitude_rad);
}

double Orbit::semi_major_for_period(Duration period) {
  OAQ_REQUIRE(period > Duration::zero(), "period must be positive");
  const double t_over_2pi = period.to_seconds() / (2.0 * kPi);
  return std::cbrt(kEarthMuKm3PerS2 * t_over_2pi * t_over_2pi);
}

Duration Orbit::period() const {
  return Duration::seconds(2.0 * kPi / mean_motion_);
}

Orbit Orbit::with_j2() const {
  Orbit copy = *this;
  copy.j2_ = true;
  return copy;
}

Orbit::SecularRates Orbit::j2_secular_rates() const {
  // Standard first-order secular J2 rates (Vallado eq. 9-38ff):
  //   dΩ/dt = −(3/2) J2 n (Re/p)² cos i
  //   dω/dt =  (3/4) J2 n (Re/p)² (4 − 5 sin² i)
  //   dM/dt =  (3/4) J2 n (Re/p)² √(1−e²) (2 − 3 sin² i)
  const double a = elements_.semi_major_km;
  const double e = elements_.eccentricity;
  const double p = a * (1.0 - e * e);
  const double factor = kEarthJ2 * mean_motion_ *
                        (kEarthRadiusKm / p) * (kEarthRadiusKm / p);
  const double si = std::sin(elements_.inclination_rad);
  const double ci = std::cos(elements_.inclination_rad);
  SecularRates rates;
  rates.raan_rate = -1.5 * factor * ci;
  rates.arg_perigee_rate = 0.75 * factor * (4.0 - 5.0 * si * si);
  rates.mean_anomaly_rate =
      0.75 * factor * std::sqrt(1.0 - e * e) * (2.0 - 3.0 * si * si);
  return rates;
}

const Orbit& Orbit::self_or_drifted(Duration t, Orbit& scratch) const {
  if (!j2_) return *this;
  const SecularRates rates = j2_secular_rates();
  KeplerianElements drifted = elements_;
  const double dt = t.to_seconds();
  drifted.raan_rad = wrap_two_pi(elements_.raan_rad + rates.raan_rate * dt);
  drifted.arg_perigee_rad =
      wrap_two_pi(elements_.arg_perigee_rad + rates.arg_perigee_rate * dt);
  drifted.mean_anomaly_rad =
      elements_.mean_anomaly_rad + rates.mean_anomaly_rate * dt;
  scratch = Orbit(drifted);
  return scratch;
}

StateVector Orbit::state_at(Duration t) const {
  if (j2_) {
    Orbit scratch(elements_);
    return self_or_drifted(t, scratch).state_at(t);
  }
  const double a = elements_.semi_major_km;
  const double e = elements_.eccentricity;
  const double m = elements_.mean_anomaly_rad + mean_motion_ * t.to_seconds();
  const double e_anom = solve_kepler(m, e);
  const double ce = std::cos(e_anom);
  const double se = std::sin(e_anom);
  const double b_over_a = std::sqrt(1.0 - e * e);

  // Perifocal coordinates.
  const double x = a * (ce - e);
  const double y = a * b_over_a * se;
  const double r = a * (1.0 - e * ce);
  const double vx = -a * mean_motion_ * a / r * se;
  const double vy = a * mean_motion_ * a / r * b_over_a * ce;

  return {p_hat_ * x + q_hat_ * y, p_hat_ * vx + q_hat_ * vy};
}

Vec3 Orbit::position_eci(Duration t) const {
  if (j2_) {
    Orbit scratch(elements_);
    return self_or_drifted(t, scratch).position_eci(t);
  }
  const double e = elements_.eccentricity;
  if (e == 0.0) {
    // Fast path for circular orbits — no Kepler solve.
    const double u = elements_.mean_anomaly_rad + mean_motion_ * t.to_seconds();
    const double a = elements_.semi_major_km;
    return p_hat_ * (a * std::cos(u)) + q_hat_ * (a * std::sin(u));
  }
  return state_at(t).position_km;
}

GeoPoint Orbit::subsatellite_point(Duration t, bool earth_rotation) const {
  const Vec3 eci = position_eci(t);
  return ecef_to_geo(earth_rotation ? eci_to_ecef(eci, t) : eci);
}

}  // namespace oaq
