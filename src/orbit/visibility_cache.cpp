#include "orbit/visibility_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace oaq {
namespace {

/// splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t VisibilityKeyHash::operator()(const VisibilityKey& k) const {
  std::uint64_t h = mix64(k.lat);
  h = mix64(h ^ k.lon);
  h = mix64(h ^ k.t0);
  h = mix64(h ^ k.t1);
  return static_cast<std::size_t>(h);
}

VisibilityKey make_visibility_key(const GeoPoint& target, Duration t0,
                                  Duration t1) {
  return VisibilityKey{std::bit_cast<std::uint64_t>(target.lat_rad),
                       std::bit_cast<std::uint64_t>(target.lon_rad),
                       std::bit_cast<std::uint64_t>(t0.to_seconds()),
                       std::bit_cast<std::uint64_t>(t1.to_seconds())};
}

VisibilityCache::VisibilityCache(const Constellation& constellation,
                                 bool earth_rotation, Options options)
    : constellation_(&constellation),
      earth_rotation_(earth_rotation),
      options_(options),
      predictor_(constellation, earth_rotation) {
  OAQ_REQUIRE(options.tol > Duration::zero(), "tolerance must be positive");
  OAQ_REQUIRE(options.window_quantum > Duration::zero(),
              "window quantum must be positive");
}

const std::vector<Pass>& VisibilityCache::passes(const GeoPoint& target,
                                                 Duration t0, Duration t1) {
  ++stats_.pass_queries;
  const VisibilityKey key = make_visibility_key(target, t0, t1);
  const auto it = pass_cache_.find(key);
  if (it != pass_cache_.end()) {
    ++stats_.pass_hits;
    return it->second;
  }
  return pass_cache_
      .emplace(key, predictor_.passes(target, t0, t1, options_.tol))
      .first->second;
}

const std::vector<CoverageSegment>& VisibilityCache::multiplicity_timeline(
    const GeoPoint& target, Duration t0, Duration t1) {
  ++stats_.timeline_queries;
  const VisibilityKey key = make_visibility_key(target, t0, t1);
  const auto it = timeline_cache_.find(key);
  if (it != timeline_cache_.end()) {
    ++stats_.timeline_hits;
    return it->second;
  }
  const std::vector<Pass>& p = passes(target, t0, t1);
  return timeline_cache_
      .emplace(key, PassPredictor::multiplicity_timeline(p, t0, t1))
      .first->second;
}

std::vector<Pass> VisibilityCache::passes_window(const GeoPoint& target,
                                                 Duration from, Duration to) {
  std::vector<Pass> out;
  passes_window_into(target, from, to, out);
  return out;
}

void VisibilityCache::passes_window_into(const GeoPoint& target,
                                         Duration from, Duration to,
                                         std::vector<Pass>& out) {
  OAQ_REQUIRE(to > from, "pass window must be nonempty");
  out.clear();
  const Duration f = std::max(from, Duration::zero());
  if (to <= f) return;
  const double q = options_.window_quantum.to_seconds();
  const Duration q_from =
      Duration::seconds(std::floor(f.to_seconds() / q) * q);
  const Duration q_to = Duration::seconds(std::ceil(to.to_seconds() / q) * q);
  const std::vector<Pass>& all = passes(target, q_from, q_to);
  for (const Pass& p : all) {
    if (p.end <= f || p.start >= to) continue;
    out.push_back({p.satellite, std::max(p.start, f), std::min(p.end, to)});
  }
}

void VisibilityCache::clear() {
  pass_cache_.clear();
  timeline_cache_.clear();
  stats_ = {};
}

}  // namespace oaq
