#include "orbit/constellation_builder.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "orbit/kepler.hpp"

namespace oaq {

namespace {

void require(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument("constellation: " + what);
}

}  // namespace

ConstellationDesign design_from_shell(const WalkerShell& shell) {
  require(shell.planes > 0, "shell needs at least one plane");
  require(shell.total_sats > 0, "shell needs at least one satellite");
  require(shell.total_sats % shell.planes == 0,
          "T must divide evenly across the P planes");
  require(shell.phasing >= 0, "phasing factor F must be >= 0");
  require(shell.phasing < shell.planes, "phasing factor F must be < P");
  require(shell.altitude_km > 0.0, "altitude must be positive");
  require(shell.inclination_deg > 0.0 && shell.inclination_deg < 180.0,
          "inclination must be in (0, 180) degrees");
  require(shell.footprint_deg > 0.0 && shell.footprint_deg <= 90.0,
          "footprint half-angle must be in (0, 90] degrees");
  require(shell.spares_per_plane >= 0, "spares per plane must be >= 0");
  require(shell.period_min >= 0.0, "period override must be >= 0");

  ConstellationDesign design;
  design.num_planes = shell.planes;
  design.sats_per_plane = shell.total_sats / shell.planes;
  design.in_orbit_spares_per_plane = shell.spares_per_plane;
  design.inclination_rad = deg2rad(shell.inclination_deg);
  design.period =
      shell.period_min > 0.0
          ? Duration::minutes(shell.period_min)
          : Orbit::circular(shell.altitude_km, design.inclination_rad,
                            /*raan_rad=*/0.0, /*arg_latitude_rad=*/0.0)
                .period();
  // ψ = π·Tc/θ inverted: a ψ-degree half-angle footprint is transited in
  // θ·ψ/180. For the reference shell (θ = 90 min, ψ = 18°) this lands
  // exactly on the paper's Tc = 9 min.
  design.coverage_time = design.period * (shell.footprint_deg / 180.0);
  design.raan_spread_rad = shell.star ? kPi : 2.0 * kPi;
  design.phasing_factor = shell.phasing;
  return design;
}

Constellation build_constellation(const std::vector<WalkerShell>& shells) {
  require(!shells.empty(), "constellation needs at least one shell");
  std::vector<ConstellationDesign> designs;
  designs.reserve(shells.size());
  for (const WalkerShell& shell : shells) {
    designs.push_back(design_from_shell(shell));
  }
  return Constellation(designs);
}

ConstellationBuilder& ConstellationBuilder::add_shell(
    const WalkerShell& shell) {
  (void)design_from_shell(shell);  // validate eagerly, keep the shell form
  shells_.push_back(shell);
  return *this;
}

Constellation ConstellationBuilder::build() const {
  return build_constellation(shells_);
}

ConstellationBuilder ConstellationBuilder::preset(std::string_view name) {
  ConstellationBuilder builder;
  for (const WalkerShell& shell : constellation_preset(name)) {
    builder.add_shell(shell);
  }
  return builder;
}

std::vector<WalkerShell> constellation_preset(std::string_view name) {
  // The paper's idealized design pins θ = 90 min directly (the matching
  // circular altitude is ~281 km); the published design points derive θ
  // from their deployment altitudes.
  if (name == "reference") {
    return {{/*total_sats=*/98, /*planes=*/7, /*phasing=*/1,
             /*altitude_km=*/281.0, /*inclination_deg=*/85.0, /*star=*/true,
             /*spares_per_plane=*/2, /*footprint_deg=*/18.0,
             /*period_min=*/90.0}};
  }
  if (name == "kepler") {
    return {{/*total_sats=*/140, /*planes=*/7, /*phasing=*/1,
             /*altitude_km=*/600.0, /*inclination_deg=*/98.6, /*star=*/true}};
  }
  if (name == "iridium-next") {
    return {{/*total_sats=*/66, /*planes=*/6, /*phasing=*/1,
             /*altitude_km=*/780.0, /*inclination_deg=*/86.4, /*star=*/true}};
  }
  if (name == "oneweb") {
    return {{/*total_sats=*/648, /*planes=*/18, /*phasing=*/1,
             /*altitude_km=*/1200.0, /*inclination_deg=*/86.4,
             /*star=*/true}};
  }
  if (name == "starlink") {
    return {{/*total_sats=*/1584, /*planes=*/72, /*phasing=*/1,
             /*altitude_km=*/550.0, /*inclination_deg=*/53.0,
             /*star=*/false}};
  }
  throw std::invalid_argument("constellation: unknown preset '" +
                              std::string(name) + "'");
}

const std::vector<std::string_view>& constellation_preset_names() {
  static const std::vector<std::string_view> names = {
      "reference", "kepler", "iridium-next", "oneweb", "starlink"};
  return names;
}

namespace {

[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw std::invalid_argument("constellation line " +
                              std::to_string(line_no) + ": " + what);
}

double read_number(std::istringstream& fields, int line_no,
                   std::string_view what) {
  double value = 0.0;
  if (!(fields >> value)) {
    parse_fail(line_no, "expected " + std::string(what));
  }
  return value;
}

int read_int(std::istringstream& fields, int line_no, std::string_view what) {
  const double value = read_number(fields, line_no, what);
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    parse_fail(line_no, std::string(what) + " must be an integer");
  }
  return as_int;
}

/// Shortest decimal form that parses back to the same double — the
/// round-trip guarantee of the on-disk format.
void write_double(std::ostream& os, double value) {
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), value);
  os.write(buf, end - buf);
  (void)ec;  // a 64-char buffer never overflows a double's shortest form
}

}  // namespace

std::vector<WalkerShell> parse_constellation(std::istream& is) {
  std::vector<WalkerShell> shells;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    if (keyword != "shell") {
      parse_fail(line_no, "unknown keyword '" + keyword + "'");
    }

    WalkerShell shell;
    shell.total_sats = read_int(fields, line_no, "T (total satellites)");
    shell.planes = read_int(fields, line_no, "P (planes)");
    shell.phasing = read_int(fields, line_no, "F (phasing factor)");
    shell.altitude_km = read_number(fields, line_no, "altitude (km)");
    shell.inclination_deg = read_number(fields, line_no, "inclination (deg)");
    std::string pattern;
    if (!(fields >> pattern)) parse_fail(line_no, "expected star|delta");
    if (pattern == "star") {
      shell.star = true;
    } else if (pattern == "delta") {
      shell.star = false;
    } else {
      parse_fail(line_no, "pattern must be star or delta, got '" + pattern +
                              "'");
    }
    shell.spares_per_plane = read_int(fields, line_no, "spares per plane");
    shell.footprint_deg = read_number(fields, line_no, "footprint (deg)");
    // Optional trailing override, mirroring the fault plan's optional
    // trailing tokens: everything else is rejected as trailing text.
    std::string extra;
    if (fields >> extra) {
      if (extra != "period") {
        parse_fail(line_no, "trailing text '" + extra + "'");
      }
      shell.period_min = read_number(fields, line_no, "period (min)");
      if (fields >> extra) {
        parse_fail(line_no, "trailing text '" + extra + "'");
      }
    }
    try {
      (void)design_from_shell(shell);
    } catch (const std::invalid_argument& err) {
      parse_fail(line_no, err.what());
    }
    shells.push_back(shell);
  }
  if (shells.empty()) {
    throw std::invalid_argument("constellation: file defines no shells");
  }
  return shells;
}

void write_constellation(const std::vector<WalkerShell>& shells,
                         std::ostream& os) {
  for (const WalkerShell& shell : shells) {
    os << "shell " << shell.total_sats << ' ' << shell.planes << ' '
       << shell.phasing << ' ';
    write_double(os, shell.altitude_km);
    os << ' ';
    write_double(os, shell.inclination_deg);
    os << ' ' << (shell.star ? "star" : "delta") << ' '
       << shell.spares_per_plane << ' ';
    write_double(os, shell.footprint_deg);
    if (shell.period_min > 0.0) {
      os << " period ";
      write_double(os, shell.period_min);
    }
    os << '\n';
  }
}

}  // namespace oaq
