// Latitude-sliced constellation coverage analysis — the SOAP substitute.
//
// The paper reads two facts off the Satellite Orbit Analysis Program's
// interactive model: (1) the full 98-satellite constellation covers the
// whole Earth, with the overlapped-footprint share growing from equator to
// poles, and (2) at ~30° latitude a point on a footprint-trajectory
// centerline is the least likely to see overlapped coverage. This analyzer
// computes those quantities on a lat/lon grid from the true geometry.
#pragma once

#include <vector>

#include "orbit/constellation.hpp"

namespace oaq {

/// Coverage of one latitude band at a snapshot (area-weighted fractions).
struct LatitudeBandCoverage {
  double lat_deg = 0.0;         ///< band center latitude
  double covered_fraction = 0.0;   ///< fraction covered by >= 1 footprint
  double overlap_fraction = 0.0;   ///< fraction covered by >= 2 footprints
  double mean_multiplicity = 0.0;  ///< average number of covering footprints
};

/// Whole-Earth coverage summary at a snapshot.
struct GlobalCoverage {
  double covered_fraction = 0.0;
  double overlap_fraction = 0.0;
  double max_gap_fraction = 0.0;  ///< worst uncovered fraction over bands
};

/// Grid-based coverage analyzer for a constellation snapshot.
class CoverageAnalyzer {
 public:
  explicit CoverageAnalyzer(const Constellation& constellation);

  /// Coverage by latitude band at time `t` with `nlat`×`nlon` sampling.
  [[nodiscard]] std::vector<LatitudeBandCoverage> by_latitude(
      Duration t, int nlat = 36, int nlon = 144) const;

  /// Area-weighted whole-Earth coverage at time `t`.
  [[nodiscard]] GlobalCoverage global(Duration t, int nlat = 36,
                                      int nlon = 144) const;

  /// Time-averaged band coverage over `samples` snapshots spanning one
  /// orbital period (captures the motion-average a single snapshot misses).
  [[nodiscard]] std::vector<LatitudeBandCoverage> by_latitude_time_averaged(
      int samples = 8, int nlat = 36, int nlon = 144) const;

 private:
  const Constellation* constellation_;
};

}  // namespace oaq
