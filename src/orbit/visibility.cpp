#include "orbit/visibility.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "orbit/batch_kepler.hpp"

namespace oaq {

PassPredictor::PassPredictor(const Constellation& constellation,
                             bool earth_rotation)
    : constellation_(&constellation), earth_rotation_(earth_rotation) {}

std::vector<Pass> PassPredictor::passes(const GeoPoint& target, Duration t0,
                                        Duration t1, Duration tol) const {
  OAQ_REQUIRE(t1 > t0, "pass horizon must be nonempty");
  OAQ_REQUIRE(tol > Duration::zero(), "tolerance must be positive");
  std::vector<Pass> result;

  // Sample grid and margin sweep, reused across satellites. The grid
  // accumulates exactly like the pre-batch scalar loop did (t += step,
  // clamped to t1), so crossing brackets land on the same sample times.
  std::vector<double> times;
  std::vector<double> margins;

  for (int pi = 0; pi < constellation_->num_planes(); ++pi) {
    const auto& plane = constellation_->plane(pi);
    // Per-plane footprint: shells differ in altitude and sensor half-angle
    // (single-shell constellations see the same fp/ψ as before).
    const auto& fp = constellation_->footprint_of_plane(pi);
    const double psi = fp.angular_radius_rad();
    // Sample interval: a footprint transit lasts Tc = θ·ψ/π; 64 samples per
    // transit reliably brackets every crossing.
    const Duration transit = fp.coverage_time(plane.period());
    const Duration step = transit / 64.0;
    times.clear();
    {
      double t = t0.to_seconds();
      times.push_back(t);
      while (t < t1.to_seconds()) {
        t = std::min(t + step.to_seconds(), t1.to_seconds());
        times.push_back(t);
      }
    }
    for (int slot = 0; slot < plane.active_count(); ++slot) {
      const Orbit orbit = plane.orbit_of(slot);
      const BatchKepler batch(orbit);
      // Root refinement evaluates single elements through the SAME batched
      // kernel, so bracket endpoints agree bitwise with the sweep values —
      // find_root's sign preconditions can never be violated by a
      // sweep/refine mismatch.
      auto margin = [&](double t_sec) {
        double m = 0.0;
        batch.coverage_margins(target, psi, earth_rotation_, &t_sec, 1, &m);
        return m;
      };

      margins.resize(times.size());
      batch.coverage_margins(target, psi, earth_rotation_, times.data(),
                             times.size(), margins.data());

      double m_prev = margins[0];
      double pass_start = m_prev > 0.0 ? times[0] : -1.0;
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double t = times[i - 1];
        const double t_next = times[i];
        const double m_next = margins[i];
        if (m_prev <= 0.0 && m_next > 0.0) {
          pass_start = find_root(margin, t, t_next, tol.to_seconds());
        } else if (m_prev > 0.0 && m_next <= 0.0) {
          const double pass_end = find_root(margin, t, t_next, tol.to_seconds());
          OAQ_ENSURE(pass_start >= 0.0, "pass end without start");
          result.push_back({SatelliteId{pi, slot},
                            Duration::seconds(pass_start),
                            Duration::seconds(pass_end)});
          pass_start = -1.0;
        }
        m_prev = m_next;
      }
      if (pass_start >= 0.0 && m_prev > 0.0) {
        // Still covered at the end of the horizon.
        result.push_back({SatelliteId{pi, slot}, Duration::seconds(pass_start),
                          t1});
      }
    }
  }

  std::sort(result.begin(), result.end(), [](const Pass& a, const Pass& b) {
    return a.start < b.start;
  });
  return result;
}

std::vector<CoverageSegment> PassPredictor::multiplicity_timeline(
    const std::vector<Pass>& passes, Duration t0, Duration t1) {
  OAQ_REQUIRE(t1 > t0, "timeline horizon must be nonempty");
  // Sweep over pass boundaries.
  struct Event {
    Duration at;
    bool enter;
    SatelliteId sat;
  };
  std::vector<Event> events;
  events.reserve(passes.size() * 2);
  for (const auto& p : passes) {
    const Duration s = std::max(p.start, t0);
    const Duration e = std::min(p.end, t1);
    if (e <= s) continue;
    events.push_back({s, true, p.satellite});
    events.push_back({e, false, p.satellite});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.enter < b.enter;  // process exits before entries at equal times
  });

  std::vector<CoverageSegment> timeline;
  std::vector<SatelliteId> current;
  Duration cursor = t0;
  auto emit = [&](Duration upto) {
    if (upto > cursor) {
      timeline.push_back({cursor, upto, current});
      cursor = upto;
    }
  };
  for (const auto& ev : events) {
    emit(ev.at);
    if (ev.enter) {
      current.push_back(ev.sat);
    } else {
      current.erase(std::remove(current.begin(), current.end(), ev.sat),
                    current.end());
    }
  }
  emit(t1);
  return timeline;
}

CoverageStats PassPredictor::summarize(
    const std::vector<CoverageSegment>& timeline) {
  CoverageStats stats;
  for (const auto& seg : timeline) {
    const Duration d = seg.duration();
    stats.horizon += d;
    switch (seg.multiplicity()) {
      case 0:
        stats.uncovered += d;
        stats.longest_gap = std::max(stats.longest_gap, d);
        break;
      case 1:
        stats.single += d;
        stats.longest_single_pass = std::max(stats.longest_single_pass, d);
        break;
      default:
        stats.multiple += d;
        break;
    }
    stats.max_multiplicity = std::max(stats.max_multiplicity, seg.multiplicity());
  }
  return stats;
}

}  // namespace oaq
