#include "orbit/visibility.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace oaq {
namespace {

/// Elevation-like margin: positive when the satellite covers the target.
double coverage_margin(const Orbit& orbit, const FootprintModel& fp,
                       const GeoPoint& target, Duration t,
                       bool earth_rotation) {
  const GeoPoint subsat = orbit.subsatellite_point(t, earth_rotation);
  return fp.angular_radius_rad() - central_angle(subsat, target);
}

}  // namespace

PassPredictor::PassPredictor(const Constellation& constellation,
                             bool earth_rotation)
    : constellation_(&constellation), earth_rotation_(earth_rotation) {}

std::vector<Pass> PassPredictor::passes(const GeoPoint& target, Duration t0,
                                        Duration t1, Duration tol) const {
  OAQ_REQUIRE(t1 > t0, "pass horizon must be nonempty");
  OAQ_REQUIRE(tol > Duration::zero(), "tolerance must be positive");
  std::vector<Pass> result;
  const auto& fp = constellation_->footprint();

  for (int pi = 0; pi < constellation_->num_planes(); ++pi) {
    const auto& plane = constellation_->plane(pi);
    // Sample interval: a footprint transit lasts Tc = θ·ψ/π; 64 samples per
    // transit reliably brackets every crossing.
    const Duration transit = fp.coverage_time(plane.period());
    const Duration step = transit / 64.0;
    for (int slot = 0; slot < plane.active_count(); ++slot) {
      const Orbit orbit = plane.orbit_of(slot);
      auto margin = [&](double t_sec) {
        return coverage_margin(orbit, fp, target, Duration::seconds(t_sec),
                               earth_rotation_);
      };

      double t = t0.to_seconds();
      double m_prev = margin(t);
      double pass_start = m_prev > 0.0 ? t : -1.0;
      while (t < t1.to_seconds()) {
        const double t_next = std::min(t + step.to_seconds(), t1.to_seconds());
        const double m_next = margin(t_next);
        if (m_prev <= 0.0 && m_next > 0.0) {
          pass_start = find_root(margin, t, t_next, tol.to_seconds());
        } else if (m_prev > 0.0 && m_next <= 0.0) {
          const double pass_end = find_root(margin, t, t_next, tol.to_seconds());
          OAQ_ENSURE(pass_start >= 0.0, "pass end without start");
          result.push_back({SatelliteId{pi, slot},
                            Duration::seconds(pass_start),
                            Duration::seconds(pass_end)});
          pass_start = -1.0;
        }
        t = t_next;
        m_prev = m_next;
      }
      if (pass_start >= 0.0 && m_prev > 0.0) {
        // Still covered at the end of the horizon.
        result.push_back({SatelliteId{pi, slot}, Duration::seconds(pass_start),
                          t1});
      }
    }
  }

  std::sort(result.begin(), result.end(), [](const Pass& a, const Pass& b) {
    return a.start < b.start;
  });
  return result;
}

std::vector<CoverageSegment> PassPredictor::multiplicity_timeline(
    const std::vector<Pass>& passes, Duration t0, Duration t1) {
  OAQ_REQUIRE(t1 > t0, "timeline horizon must be nonempty");
  // Sweep over pass boundaries.
  struct Event {
    Duration at;
    bool enter;
    SatelliteId sat;
  };
  std::vector<Event> events;
  events.reserve(passes.size() * 2);
  for (const auto& p : passes) {
    const Duration s = std::max(p.start, t0);
    const Duration e = std::min(p.end, t1);
    if (e <= s) continue;
    events.push_back({s, true, p.satellite});
    events.push_back({e, false, p.satellite});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.enter < b.enter;  // process exits before entries at equal times
  });

  std::vector<CoverageSegment> timeline;
  std::vector<SatelliteId> current;
  Duration cursor = t0;
  auto emit = [&](Duration upto) {
    if (upto > cursor) {
      timeline.push_back({cursor, upto, current});
      cursor = upto;
    }
  };
  for (const auto& ev : events) {
    emit(ev.at);
    if (ev.enter) {
      current.push_back(ev.sat);
    } else {
      current.erase(std::remove(current.begin(), current.end(), ev.sat),
                    current.end());
    }
  }
  emit(t1);
  return timeline;
}

CoverageStats PassPredictor::summarize(
    const std::vector<CoverageSegment>& timeline) {
  CoverageStats stats;
  for (const auto& seg : timeline) {
    const Duration d = seg.duration();
    stats.horizon += d;
    switch (seg.multiplicity()) {
      case 0:
        stats.uncovered += d;
        stats.longest_gap = std::max(stats.longest_gap, d);
        break;
      case 1:
        stats.single += d;
        stats.longest_single_pass = std::max(stats.longest_single_pass, d);
        break;
      default:
        stats.multiple += d;
        break;
    }
    stats.max_multiplicity = std::max(stats.max_multiplicity, seg.multiplicity());
  }
  return stats;
}

}  // namespace oaq
