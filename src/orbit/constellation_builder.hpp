// Parameterized Walker-shell constellation builder (ISSUE 8 tentpole).
//
// Expresses constellations in the i:T/P/F Walker notation used by the
// mega-constellation literature: T total satellites in P planes at
// inclination i, with inter-plane phasing factor F. A star shell spreads
// its ascending nodes over π (polar-style counter-rotating seam), a delta
// shell over 2π. Multiple shells compose into one Constellation occupying
// contiguous global plane-index ranges.
//
// Named design points (SNIPPETS.md):
//   reference     7×14 (+2 spares/plane)  θ=90 min  i=85°    star  (paper)
//   kepler        7×20    h=600 km        i=98.6°          star
//   iridium-next  6×11    h=780 km        i=86.4°          star
//   oneweb        18×36   h=1200 km       i=86.4°          star
//   starlink      72×22   h=550 km        i=53°            delta
//
// The on-disk format (tools/README.md) matches the fault-plan
// conventions: line-based, one shell per line, `#` comments,
// std::invalid_argument with the offending line number on syntax or
// validation errors. parse_constellation / write_constellation round-trip
// it.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "orbit/constellation.hpp"

namespace oaq {

/// One Walker shell in i:T/P/F form plus the physical knobs the QoS model
/// needs (altitude → period, sensor half-angle → coverage time).
struct WalkerShell {
  int total_sats = 0;          ///< T: active satellites across the shell
  int planes = 0;              ///< P: orbital planes
  int phasing = 0;             ///< F: inter-plane phasing factor, [0, P)
  double altitude_km = 550.0;  ///< circular-orbit altitude (derives θ)
  double inclination_deg = 53.0;
  bool star = true;            ///< star (RAAN over π) vs delta (over 2π)
  int spares_per_plane = 0;    ///< in-orbit spares per plane
  /// Sensor footprint half-angle ψ in degrees; the shell's coverage time
  /// is Tc = θ·ψ/180 (FootprintModel's ψ = π·Tc/θ inverted).
  double footprint_deg = 18.0;
  /// Explicit orbital period in minutes; > 0 overrides the
  /// altitude-derived period (the paper's idealized θ = 90 min design).
  double period_min = 0.0;

  friend bool operator==(const WalkerShell&, const WalkerShell&) = default;
};

/// Validates a shell and lowers it to a ConstellationDesign. Throws
/// std::invalid_argument on: non-positive T or P, T % P != 0, F outside
/// [0, P), non-positive altitude, inclination outside (0, 180), footprint
/// outside (0, 90], negative spares, or negative period override.
[[nodiscard]] ConstellationDesign design_from_shell(const WalkerShell& shell);

/// Composes validated shells into one multi-shell Constellation.
[[nodiscard]] Constellation build_constellation(
    const std::vector<WalkerShell>& shells);

/// Incremental composition with eager per-shell validation.
class ConstellationBuilder {
 public:
  /// Validates and appends; throws std::invalid_argument on a malformed
  /// shell (see design_from_shell).
  ConstellationBuilder& add_shell(const WalkerShell& shell);

  [[nodiscard]] const std::vector<WalkerShell>& shells() const {
    return shells_;
  }
  [[nodiscard]] Constellation build() const;

  /// Builder pre-loaded with a named design point (see file header);
  /// throws std::invalid_argument for an unknown name.
  [[nodiscard]] static ConstellationBuilder preset(std::string_view name);

 private:
  std::vector<WalkerShell> shells_;
};

/// Shells of a named design point; throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] std::vector<WalkerShell> constellation_preset(
    std::string_view name);

/// The recognized preset names, in documentation order.
[[nodiscard]] const std::vector<std::string_view>&
constellation_preset_names();

/// Parses the line-based shell format; throws std::invalid_argument with
/// the offending line number on syntax or validation errors, and on a
/// file with no shells.
[[nodiscard]] std::vector<WalkerShell> parse_constellation(std::istream& is);

/// Writes shells in the canonical line format (round-trips bit-exactly
/// through parse_constellation — doubles print in shortest form).
void write_constellation(const std::vector<WalkerShell>& shells,
                         std::ostream& os);

}  // namespace oaq
