#include "orbit/plane.hpp"

#include "common/error.hpp"

namespace oaq {

OrbitalPlane::OrbitalPlane(int plane_index, Duration period,
                           double inclination_rad, double raan_rad,
                           double phase_offset_rad, int design_count, bool j2)
    : plane_index_(plane_index), period_(period),
      inclination_rad_(inclination_rad), raan_rad_(raan_rad),
      phase_offset_rad_(phase_offset_rad), design_count_(design_count),
      active_count_(design_count), j2_(j2) {
  OAQ_REQUIRE(design_count > 0, "plane needs at least one satellite");
  OAQ_REQUIRE(period > Duration::zero(), "period must be positive");
  altitude_km_ = Orbit::semi_major_for_period(period) - kEarthRadiusKm;
}

Duration OrbitalPlane::revisit_time() const {
  return revisit_time_for(active_count_);
}

Duration OrbitalPlane::revisit_time_for(int k) const {
  OAQ_REQUIRE(k > 0, "revisit time undefined for an empty plane");
  return period_ / static_cast<double>(k);
}

void OrbitalPlane::set_active_count(int k) {
  OAQ_REQUIRE(k >= 0 && k <= design_count_,
              "active count must be within [0, design count]");
  active_count_ = k;
}

double OrbitalPlane::slot_spacing_rad() const {
  OAQ_REQUIRE(active_count_ > 0, "no active satellites");
  return 2.0 * kPi / static_cast<double>(active_count_);
}

Orbit OrbitalPlane::orbit_of(int slot) const {
  OAQ_REQUIRE(slot >= 0 && slot < active_count_, "slot out of range");
  const double u0 =
      phase_offset_rad_ + slot_spacing_rad() * static_cast<double>(slot);
  const Orbit orbit =
      Orbit::circular(altitude_km_, inclination_rad_, raan_rad_, u0);
  return j2_ ? orbit.with_j2() : orbit;
}

Vec3 OrbitalPlane::position_eci(int slot, Duration t) const {
  return orbit_of(slot).position_eci(t);
}

GeoPoint OrbitalPlane::subsatellite_point(int slot, Duration t,
                                          bool earth_rotation) const {
  return orbit_of(slot).subsatellite_point(t, earth_rotation);
}

std::vector<SatelliteId> OrbitalPlane::active_satellites() const {
  std::vector<SatelliteId> out;
  out.reserve(static_cast<std::size_t>(active_count_));
  for (int s = 0; s < active_count_; ++s) out.push_back({plane_index_, s});
  return out;
}

}  // namespace oaq
