#include "orbit/shared_visibility_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace oaq {
namespace {

/// Quantized enclosing window — identical arithmetic to
/// VisibilityCache::passes_window, so the two caches key (and therefore
/// compute) exactly the same windows and return exactly the same clipped
/// passes for any request.
struct QuantizedWindow {
  Duration f;       ///< request start clamped to >= 0
  Duration q_from;  ///< window start rounded down to the quantum grid
  Duration q_to;    ///< window end rounded up to the quantum grid
  bool empty = false;
};

QuantizedWindow quantize(Duration from, Duration to, Duration quantum) {
  OAQ_REQUIRE(to > from, "pass window must be nonempty");
  QuantizedWindow w;
  w.f = std::max(from, Duration::zero());
  if (to <= w.f) {
    w.empty = true;
    return w;
  }
  const double q = quantum.to_seconds();
  w.q_from = Duration::seconds(std::floor(w.f.to_seconds() / q) * q);
  w.q_to = Duration::seconds(std::ceil(to.to_seconds() / q) * q);
  return w;
}

void append_clipped(const std::vector<Pass>& all, Duration f, Duration to,
                    std::vector<Pass>& out) {
  for (const Pass& p : all) {
    if (p.end <= f || p.start >= to) continue;
    out.push_back({p.satellite, std::max(p.start, f), std::min(p.end, to)});
  }
}

}  // namespace

SharedVisibilityCache::SharedVisibilityCache(const Constellation& constellation,
                                             bool earth_rotation,
                                             Options options)
    : constellation_(&constellation),
      earth_rotation_(earth_rotation),
      options_(options),
      predictor_(constellation, earth_rotation) {
  OAQ_REQUIRE(options.tol > Duration::zero(), "tolerance must be positive");
  OAQ_REQUIRE(options.window_quantum > Duration::zero(),
              "window quantum must be positive");
}

void SharedVisibilityCache::seed_window(const GeoPoint& target, Duration from,
                                        Duration to) {
  OAQ_REQUIRE(!frozen(), "seed_window after freeze");
  const QuantizedWindow w = quantize(from, to, options_.window_quantum);
  if (w.empty) return;
  const VisibilityKey key = make_visibility_key(target, w.q_from, w.q_to);
  Stripe& s = stripe_of(key);
  // The stripe lock is held across the compute: a concurrent seeder of the
  // SAME window blocks instead of duplicating the sweep, which is the
  // whole point of seeding. Distinct windows usually land on distinct
  // stripes and proceed in parallel.
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] = s.map.try_emplace(key);
  if (inserted) {
    it->second = predictor_.passes(target, w.q_from, w.q_to, options_.tol);
    seed_computes_.fetch_add(1, std::memory_order_relaxed);
  }
}

int SharedVisibilityCache::seed_windows(const std::vector<GeoPoint>& targets,
                                        Duration from, Duration to, int jobs) {
  OAQ_REQUIRE(!frozen(), "seed_windows after freeze");
  if (targets.empty()) return 0;
  const int n = static_cast<int>(targets.size());
  const int executors = std::min(resolve_jobs(jobs), n);
  if (executors <= 1) {
    for (const GeoPoint& target : targets) seed_window(target, from, to);
    return 1;
  }
  // One shard per target: each sweep is Kepler-heavy and seed_window is
  // striped-lock thread-safe, so target granularity balances well without
  // oversubscribing the stripes. for_each_shard joins every executor
  // before returning, preserving the seeds-happen-before-freeze contract.
  ThreadPool::global().for_each_shard(n, executors, [&](int i) {
    seed_window(targets[static_cast<std::size_t>(i)], from, to);
  });
  return executors;
}

void SharedVisibilityCache::freeze() {
  OAQ_REQUIRE(!frozen(), "freeze called twice");
  for (Stripe& s : stripes_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    frozen_map_.merge(s.map);
    s.map.clear();
  }
  frozen_.store(true, std::memory_order_release);
}

void SharedVisibilityCache::passes_window_into(const GeoPoint& target,
                                               Duration from, Duration to,
                                               std::vector<Pass>& out,
                                               VisibilityCacheStats* stats)
    const {
  OAQ_REQUIRE(frozen(), "passes_window before freeze");
  out.clear();
  const QuantizedWindow w = quantize(from, to, options_.window_quantum);
  if (w.empty) return;
  if (stats != nullptr) ++stats->pass_queries;
  const VisibilityKey key = make_visibility_key(target, w.q_from, w.q_to);
  const auto it = frozen_map_.find(key);
  if (it != frozen_map_.end()) {
    if (stats != nullptr) ++stats->pass_hits;
    append_clipped(it->second, w.f, to, out);
    return;
  }
  // Overflow: an un-seeded window. Compute-once under the stripe lock; the
  // value is a pure function of the key, so whichever shard computes it the
  // entry is identical. Deliberately NOT a stats hit even when present —
  // hit counts must not depend on cross-shard timing.
  Stripe& s = stripe_of(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto [oit, inserted] = s.map.try_emplace(key);
  if (inserted) {
    oit->second = predictor_.passes(target, w.q_from, w.q_to, options_.tol);
    overflow_computes_.fetch_add(1, std::memory_order_relaxed);
  }
  append_clipped(oit->second, w.f, to, out);
}

std::vector<Pass> SharedVisibilityCache::passes_window(
    const GeoPoint& target, Duration from, Duration to,
    VisibilityCacheStats* stats) const {
  std::vector<Pass> out;
  passes_window_into(target, from, to, out, stats);
  return out;
}

std::size_t SharedVisibilityCache::frozen_entries() const {
  OAQ_REQUIRE(frozen(), "frozen_entries before freeze");
  return frozen_map_.size();
}

std::size_t SharedVisibilityCache::overflow_entries() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace oaq
