#include "orbit/footprint.hpp"

#include "common/error.hpp"

namespace oaq {

FootprintModel::FootprintModel(double angular_radius_rad)
    : psi_(angular_radius_rad) {
  OAQ_REQUIRE(psi_ > 0.0 && psi_ < kPi / 2.0,
              "footprint angular radius must be in (0, pi/2)");
}

FootprintModel FootprintModel::from_coverage_time(Duration coverage_time,
                                                  Duration period) {
  OAQ_REQUIRE(coverage_time > Duration::zero(), "coverage time must be positive");
  OAQ_REQUIRE(coverage_time < period,
              "coverage time must be shorter than the orbit period");
  return FootprintModel(kPi * (coverage_time / period));
}

Duration FootprintModel::coverage_time(Duration period) const {
  return period * (psi_ / kPi);
}

SphericalCap FootprintModel::cap_at(const GeoPoint& subsat) const {
  return SphericalCap(subsat, psi_);
}

bool FootprintModel::covers(const GeoPoint& subsat, const GeoPoint& p) const {
  return central_angle(subsat, p) <= psi_ + 1e-12;
}

}  // namespace oaq
