// Batched structure-of-arrays Kepler geometry kernels (ISSUE 4 tentpole).
//
// The scalar propagator (orbit/kepler) answers one (satellite, time) query
// per call; the geometry hot path — PassPredictor's sampling sweep and the
// visibility caches built on it — asks for thousands of contiguous
// timesteps per satellite. BatchKepler evaluates those sweeps over
// contiguous arrays in explicit fixed-width blocks of kBatchKeplerWidth
// lanes (plus a tail that runs the SAME per-lane code on a partial block,
// so a 1-element call is bitwise identical to the same element inside a
// full block — the root-refinement path relies on this):
//
//   * solve() / positions_eci() replicate the scalar solve_kepler /
//     Orbit::position_eci expression sequences lane by lane — same wrap,
//     same Newton guess, same apply-step-then-check-tolerance order — so
//     outputs are BIT-IDENTICAL to the scalar propagator (pinned by
//     tests/orbit/batch_kepler_test.cpp), while per-orbit invariants
//     (sqrt(1−e²), the J2 secular rates) are hoisted out of the loop, the
//     unused velocity half of state_at is skipped, and the pure-arithmetic
//     stages (mean anomaly, perifocal→ECI combine) are laid out as
//     auto-vectorizable array loops.
//   * coverage_margins() evaluates the pass-sweep margin
//     ψ − central_angle(subsatellite, target). The scalar chain converts
//     the position to geodetic coordinates and immediately back to a unit
//     vector; on directions that round trip is the identity, so the
//     batched margin measures the central angle directly between the
//     position vector and the precomputed target direction — algebraically
//     equal, ~3× fewer libm calls per sample. Pass boundaries move by
//     rounding noise relative to the scalar chain, but the sampling sweep
//     and the Brent refinement both evaluate THIS function, so
//     PassPredictor::passes stays exactly self-consistent, and results
//     remain pure functions of the query (bit-identical for any --jobs).
#pragma once

#include <cstddef>

#include "orbit/kepler.hpp"

namespace oaq {

/// Lane count of the explicit inner loop. Eight doubles fill an AVX-512
/// register (two AVX2 registers) and give the out-of-order core eight
/// independent Newton chains to overlap.
inline constexpr std::size_t kBatchKeplerWidth = 8;

/// Batched sweep evaluator for one orbit. Cheap to construct (copies the
/// elements and hoists per-orbit invariants); create one per (plane, slot)
/// inside a sweep.
class BatchKepler {
 public:
  explicit BatchKepler(const Orbit& orbit);

  /// Eccentric anomaly for `n` mean anomalies — per element bitwise equal
  /// to solve_kepler(mean[i], eccentricity, tol). In/out arrays may alias.
  static void solve(const double* mean_anomaly_rad, std::size_t n,
                    double eccentricity, double* eccentric_anomaly_rad,
                    double tol = 1e-13);

  /// ECI positions at elapsed seconds `t_s[0..n)` — per element bitwise
  /// equal to orbit.position_eci(Duration::seconds(t_s[i])), including the
  /// circular fast path and J2 secular drift.
  void positions_eci(const double* t_s, std::size_t n, double* x_km,
                     double* y_km, double* z_km) const;

  /// Coverage margin ψ − central_angle(subsatellite(t), target) for each
  /// sample; positive while the footprint of radius ψ covers `target`.
  /// `earth_rotation` rotates positions into ECEF first, like
  /// Orbit::subsatellite_point.
  void coverage_margins(const GeoPoint& target, double footprint_radius_rad,
                        bool earth_rotation, const double* t_s, std::size_t n,
                        double* margin_rad) const;

 private:
  /// One block (nb <= kBatchKeplerWidth lanes) of the position sweep.
  void positions_block(const double* t_s, std::size_t nb, double* x_km,
                       double* y_km, double* z_km) const;

  KeplerianElements elements_;
  double mean_motion_ = 0.0;  ///< rad/s (same value the Orbit precomputed)
  bool j2_ = false;
  Orbit::SecularRates j2_rates_{};  ///< hoisted: pure function of elements
  double b_over_a_ = 1.0;           ///< hoisted sqrt(1 − e²)
  Vec3 p_hat_;                      ///< perifocal x axis in ECI
  Vec3 q_hat_;                      ///< perifocal y axis in ECI
};

}  // namespace oaq
