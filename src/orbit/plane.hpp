// An orbital plane: a ring of evenly phased satellites sharing one orbit
// geometry (inclination, node, altitude).
//
// The paper's structural-degradation story happens at plane granularity:
// when a plane loses satellites past its in-orbit spares, the survivors are
// re-phased to even spacing (`set_active_count`), stretching the revisit
// time Tr[k] = θ/k and eventually breaking footprint overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "orbit/footprint.hpp"
#include "orbit/kepler.hpp"

namespace oaq {

/// Identifies a satellite by plane index and in-plane slot.
struct SatelliteId {
  int plane = 0;
  int slot = 0;

  friend constexpr bool operator==(SatelliteId, SatelliteId) = default;
  friend constexpr auto operator<=>(SatelliteId, SatelliteId) = default;
};

/// One orbital plane of a constellation.
class OrbitalPlane {
 public:
  /// `design_count` satellites evenly phased in a circular orbit of
  /// `period`, inclination `inclination_rad`, node `raan_rad`, with the
  /// whole ring advanced by `phase_offset_rad` (used for inter-plane
  /// phasing in Walker constellations).
  OrbitalPlane(int plane_index, Duration period, double inclination_rad,
               double raan_rad, double phase_offset_rad, int design_count,
               bool j2 = false);

  [[nodiscard]] int plane_index() const { return plane_index_; }
  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] double inclination_rad() const { return inclination_rad_; }
  [[nodiscard]] double raan_rad() const { return raan_rad_; }
  [[nodiscard]] int design_count() const { return design_count_; }
  [[nodiscard]] int active_count() const { return active_count_; }

  /// Revisit time Tr[k] = θ / k for the current active count.
  [[nodiscard]] Duration revisit_time() const;
  /// Revisit time for a hypothetical active count.
  [[nodiscard]] Duration revisit_time_for(int k) const;

  /// Phasing adjustment after failures: redistributes `k` survivors evenly.
  /// Models the paper's "surviving satellites undergo a phasing adjustment
  /// so that they can be evenly distributed in the plane again".
  void set_active_count(int k);

  /// Orbit of the active satellite in `slot` (0 <= slot < active_count).
  [[nodiscard]] Orbit orbit_of(int slot) const;

  /// ECI position of the active satellite in `slot` at time `t`.
  [[nodiscard]] Vec3 position_eci(int slot, Duration t) const;

  /// Sub-satellite point of the active satellite in `slot`.
  [[nodiscard]] GeoPoint subsatellite_point(int slot, Duration t,
                                            bool earth_rotation = false) const;

  /// Ids of all active satellites, slot order.
  [[nodiscard]] std::vector<SatelliteId> active_satellites() const;

  /// In-plane angular spacing between adjacent active satellites, radians.
  [[nodiscard]] double slot_spacing_rad() const;

 private:
  int plane_index_;
  Duration period_;
  double inclination_rad_;
  double raan_rad_;
  double phase_offset_rad_;
  int design_count_;
  int active_count_;
  double altitude_km_;
  bool j2_;
};

}  // namespace oaq
