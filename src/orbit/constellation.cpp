#include "orbit/constellation.hpp"

#include "common/error.hpp"

namespace oaq {

Constellation::Constellation(const ConstellationDesign& design)
    : design_(design),
      footprint_(FootprintModel::from_coverage_time(design.coverage_time,
                                                    design.period)) {
  OAQ_REQUIRE(design.num_planes > 0, "constellation needs at least one plane");
  OAQ_REQUIRE(design.sats_per_plane > 0, "planes need at least one satellite");
  planes_.reserve(static_cast<std::size_t>(design.num_planes));
  const double raan_step =
      design.raan_spread_rad / static_cast<double>(design.num_planes);
  const double phase_unit =
      2.0 * kPi / static_cast<double>(design.num_planes *
                                     design.sats_per_plane);
  for (int j = 0; j < design.num_planes; ++j) {
    const double raan = raan_step * static_cast<double>(j);
    const double phase_offset =
        phase_unit * static_cast<double>(design.phasing_factor * j);
    planes_.emplace_back(j, design.period, design.inclination_rad, raan,
                         phase_offset, design.sats_per_plane, design.j2);
  }
}

Constellation Constellation::reference() {
  return Constellation(ConstellationDesign{});
}

const OrbitalPlane& Constellation::plane(int i) const {
  OAQ_REQUIRE(i >= 0 && i < num_planes(), "plane index out of range");
  return planes_[static_cast<std::size_t>(i)];
}

OrbitalPlane& Constellation::plane(int i) {
  OAQ_REQUIRE(i >= 0 && i < num_planes(), "plane index out of range");
  return planes_[static_cast<std::size_t>(i)];
}

int Constellation::total_active() const {
  int total = 0;
  for (const auto& p : planes_) total += p.active_count();
  return total;
}

std::vector<SatelliteId> Constellation::active_satellites() const {
  std::vector<SatelliteId> out;
  out.reserve(static_cast<std::size_t>(total_active()));
  for (const auto& p : planes_) {
    for (const auto& id : p.active_satellites()) out.push_back(id);
  }
  return out;
}

GeoPoint Constellation::subsatellite_point(SatelliteId id, Duration t,
                                           bool earth_rotation) const {
  return plane(id.plane).subsatellite_point(id.slot, t, earth_rotation);
}

std::vector<SatelliteId> Constellation::covering_satellites(
    const GeoPoint& p, Duration t, bool earth_rotation) const {
  std::vector<SatelliteId> out;
  for (const auto& pl : planes_) {
    for (int s = 0; s < pl.active_count(); ++s) {
      const auto subsat = pl.subsatellite_point(s, t, earth_rotation);
      if (footprint_.covers(subsat, p)) out.push_back({pl.plane_index(), s});
    }
  }
  return out;
}

}  // namespace oaq
