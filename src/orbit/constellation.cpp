#include "orbit/constellation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oaq {

Constellation::Constellation(const ConstellationDesign& design)
    : Constellation(std::vector<ConstellationDesign>{design}) {}

Constellation::Constellation(const std::vector<ConstellationDesign>& shells) {
  OAQ_REQUIRE(!shells.empty(), "constellation needs at least one shell");
  shells_.reserve(shells.size());
  int first_plane = 0;
  for (const ConstellationDesign& design : shells) {
    OAQ_REQUIRE(design.num_planes > 0,
                "constellation needs at least one plane");
    OAQ_REQUIRE(design.sats_per_plane > 0,
                "planes need at least one satellite");
    shells_.push_back({design, first_plane,
                       FootprintModel::from_coverage_time(design.coverage_time,
                                                          design.period)});
    first_plane += design.num_planes;
  }
  OAQ_REQUIRE(first_plane <= PlaneSet::kMaxPlanes,
              "constellation exceeds the addressable plane range");
  planes_.reserve(static_cast<std::size_t>(first_plane));
  for (const Shell& shell : shells_) {
    const ConstellationDesign& design = shell.design;
    // Walker i:T/P/F within the shell: node spacing and inter-plane
    // phasing are shell-local, but the plane index handed to OrbitalPlane
    // is GLOBAL — SatelliteId.plane addresses across shells.
    const double raan_step =
        design.raan_spread_rad / static_cast<double>(design.num_planes);
    const double phase_unit =
        2.0 * kPi / static_cast<double>(design.num_planes *
                                       design.sats_per_plane);
    for (int j = 0; j < design.num_planes; ++j) {
      const double raan = raan_step * static_cast<double>(j);
      const double phase_offset =
          phase_unit * static_cast<double>(design.phasing_factor * j);
      planes_.emplace_back(shell.first_plane + j, design.period,
                           design.inclination_rad, raan, phase_offset,
                           design.sats_per_plane, design.j2);
    }
  }
}

Constellation Constellation::reference() {
  return Constellation(ConstellationDesign{});
}

const OrbitalPlane& Constellation::plane(int i) const {
  OAQ_REQUIRE(i >= 0 && i < num_planes(), "plane index out of range");
  return planes_[static_cast<std::size_t>(i)];
}

OrbitalPlane& Constellation::plane(int i) {
  OAQ_REQUIRE(i >= 0 && i < num_planes(), "plane index out of range");
  return planes_[static_cast<std::size_t>(i)];
}

const ConstellationDesign& Constellation::shell_design(int s) const {
  OAQ_REQUIRE(s >= 0 && s < num_shells(), "shell index out of range");
  return shells_[static_cast<std::size_t>(s)].design;
}

int Constellation::shell_first_plane(int s) const {
  OAQ_REQUIRE(s >= 0 && s < num_shells(), "shell index out of range");
  return shells_[static_cast<std::size_t>(s)].first_plane;
}

int Constellation::shell_plane_count(int s) const {
  OAQ_REQUIRE(s >= 0 && s < num_shells(), "shell index out of range");
  return shells_[static_cast<std::size_t>(s)].design.num_planes;
}

int Constellation::shell_of_plane(int plane) const {
  OAQ_REQUIRE(plane >= 0 && plane < num_planes(), "plane index out of range");
  for (int s = num_shells() - 1; s >= 0; --s) {
    if (plane >= shells_[static_cast<std::size_t>(s)].first_plane) return s;
  }
  return 0;  // unreachable: shell 0 starts at plane 0
}

const FootprintModel& Constellation::footprint_of_plane(int plane) const {
  return shells_[static_cast<std::size_t>(shell_of_plane(plane))].footprint;
}

Duration Constellation::max_period() const {
  Duration max = shells_[0].design.period;
  for (const Shell& shell : shells_) {
    max = std::max(max, shell.design.period);
  }
  return max;
}

int Constellation::total_active() const {
  int total = 0;
  for (const auto& p : planes_) total += p.active_count();
  return total;
}

std::vector<SatelliteId> Constellation::active_satellites() const {
  std::vector<SatelliteId> out;
  out.reserve(static_cast<std::size_t>(total_active()));
  for (const auto& p : planes_) {
    for (const auto& id : p.active_satellites()) out.push_back(id);
  }
  return out;
}

GeoPoint Constellation::subsatellite_point(SatelliteId id, Duration t,
                                           bool earth_rotation) const {
  return plane(id.plane).subsatellite_point(id.slot, t, earth_rotation);
}

std::vector<SatelliteId> Constellation::covering_satellites(
    const GeoPoint& p, Duration t, bool earth_rotation) const {
  std::vector<SatelliteId> out;
  for (const auto& pl : planes_) {
    const FootprintModel& fp = footprint_of_plane(pl.plane_index());
    for (int s = 0; s < pl.active_count(); ++s) {
      const auto subsat = pl.subsatellite_point(s, t, earth_rotation);
      if (fp.covers(subsat, p)) out.push_back({pl.plane_index(), s});
    }
  }
  return out;
}

}  // namespace oaq
