// Memoized pass prediction (ISSUE 3).
//
// PassPredictor::passes solves Kepler's equation tens of thousands of
// times per query (a sampling sweep plus root refinement per boundary).
// Monte-Carlo shards and campaigns ask for passes over the same target and
// near-identical windows thousands of times; a VisibilityCache memoizes
// the results so each distinct (target, window) pays the Kepler cost once.
//
// Two query layers:
//   * passes()/multiplicity_timeline() — exact memoization: bit-identical
//     to calling PassPredictor directly with the same arguments, keyed on
//     the bit patterns of (target, t0, t1).
//   * passes_window() — quantized queries for workloads whose windows vary
//     per episode: the request is rounded OUT to a grid of
//     `options.window_quantum`, the enclosing window is computed and
//     cached once, and the result is clipped to the request. Episodes with
//     nearby windows share one cached computation. The clipped result is a
//     pure function of the request (never of cache state or call order),
//     so sharded runs stay bit-identical for any worker count.
//
// The cache is single-threaded by design: create one per shard/thread
// (they are cheap — one PassPredictor plus the maps) instead of sharing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "orbit/visibility.hpp"

namespace oaq {

/// Hit/miss counters; exported by the engines into the metrics registry.
struct VisibilityCacheStats {
  std::uint64_t pass_queries = 0;
  std::uint64_t pass_hits = 0;
  std::uint64_t timeline_queries = 0;
  std::uint64_t timeline_hits = 0;
};

/// Bit-exact cache key shared by VisibilityCache and SharedVisibilityCache:
/// hashing the IEEE-754 patterns makes 'same inputs' mean 'same bits' — no
/// epsilon surprises, no false hits.
struct VisibilityKey {
  std::uint64_t lat = 0, lon = 0, t0 = 0, t1 = 0;
  friend bool operator==(const VisibilityKey&, const VisibilityKey&) = default;
};
struct VisibilityKeyHash {
  std::size_t operator()(const VisibilityKey& k) const;
};
[[nodiscard]] VisibilityKey make_visibility_key(const GeoPoint& target,
                                                Duration t0, Duration t1);

/// Tuning knobs of a VisibilityCache (namespace-scope so it can serve as
/// a defaulted constructor argument).
struct VisibilityCacheOptions {
  /// Boundary-refinement tolerance used for every query (part of the
  /// cache's identity rather than the key: mixing tolerances in one
  /// cache would make hits depend on query order).
  Duration tol = Duration::seconds(0.01);
  /// Grid for passes_window(): requests are rounded out to multiples of
  /// this quantum before computing, so nearby windows share an entry.
  Duration window_quantum = Duration::hours(1);
};

/// Memoizing front end to a PassPredictor for one constellation.
class VisibilityCache {
 public:
  using Options = VisibilityCacheOptions;

  explicit VisibilityCache(const Constellation& constellation,
                           bool earth_rotation = false, Options options = {});

  /// Memoized PassPredictor::passes(target, t0, t1, tol). The reference is
  /// stable until clear() — the underlying map never invalidates values.
  const std::vector<Pass>& passes(const GeoPoint& target, Duration t0,
                                  Duration t1);

  /// Memoized multiplicity timeline over the cached passes for the same
  /// window (counts one pass query internally on first computation).
  const std::vector<CoverageSegment>& multiplicity_timeline(
      const GeoPoint& target, Duration t0, Duration t1);

  /// Quantized query: passes intersecting [from, to] (negative `from` is
  /// clamped to 0 like GeometricSchedule), clipped to the window, computed
  /// via the cached quantum-aligned enclosing window.
  [[nodiscard]] std::vector<Pass> passes_window(const GeoPoint& target,
                                                Duration from, Duration to);

  /// Same clipped passes written into `out` (cleared first). Steady state
  /// (cached window, `out` capacity reused) performs no allocation — the
  /// per-episode hot path of the pooled runners.
  void passes_window_into(const GeoPoint& target, Duration from, Duration to,
                          std::vector<Pass>& out);

  [[nodiscard]] const Constellation* constellation() const {
    return constellation_;
  }
  [[nodiscard]] bool earth_rotation() const { return earth_rotation_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] const VisibilityCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entry_count() const {
    return pass_cache_.size() + timeline_cache_.size();
  }
  void clear();

 private:
  const Constellation* constellation_;
  bool earth_rotation_;
  Options options_;
  PassPredictor predictor_;
  std::unordered_map<VisibilityKey, std::vector<Pass>, VisibilityKeyHash>
      pass_cache_;
  std::unordered_map<VisibilityKey, std::vector<CoverageSegment>,
                     VisibilityKeyHash>
      timeline_cache_;
  VisibilityCacheStats stats_;
};

}  // namespace oaq
