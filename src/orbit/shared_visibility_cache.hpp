// Cross-shard shared visibility cache (ISSUE 4 tentpole).
//
// VisibilityCache is deliberately single-threaded: every Monte-Carlo shard
// builds its own and recomputes the same (target, window) pass sweeps — at
// 64 episode shards the identical sweep can run 64×. SharedVisibilityCache
// is the cross-shard replacement, built around a two-phase protocol:
//
//   1. SEED (writable): seed_window() computes quantum-aligned enclosing
//      windows compute-if-absent under striped locks. Thread-safe; the
//      engines run it on the calling thread through the parallel_reduce
//      seed/freeze hook before workers fan out, so the common windows are
//      paid for exactly once per run instead of once per shard.
//   2. FROZEN (read-mostly): freeze() consolidates the stripes into one
//      immutable map that every shard then queries lock-free — and, via
//      passes_window_into(), allocation-free in the steady state. Queries
//      whose quantized window was not seeded fall back to per-stripe
//      overflow maps (compute-once under the stripe lock).
//
// Determinism: every cached value is a pure function of its key — the
// PassPredictor output for the quantized window — so query results never
// depend on which thread computed an entry or in what order. Per-shard hit
// counters stay deterministic too: a query counts as a hit iff its key is
// in the frozen map, a set fixed at freeze(), never on overflow-map state
// (overflow queries always count as misses, even when another shard has
// already computed the entry).
//
// Synchronization contract: all seed_window() calls must happen-before
// freeze() (join the seeding threads first); queries require frozen().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "orbit/visibility_cache.hpp"

namespace oaq {

/// Seed-then-freeze pass cache shared by all shards of a parallel run.
class SharedVisibilityCache {
 public:
  using Options = VisibilityCacheOptions;

  explicit SharedVisibilityCache(const Constellation& constellation,
                                 bool earth_rotation = false,
                                 Options options = {});

  /// Seed phase: compute (if absent) the quantum-aligned window enclosing
  /// [from, to] — the same quantization passes_window() uses, so a later
  /// query with these bounds is guaranteed a frozen-map hit. Thread-safe;
  /// must not race with freeze().
  void seed_window(const GeoPoint& target, Duration from, Duration to);

  /// Seed many targets' windows, fanning the per-target Kepler sweeps
  /// across the global thread pool with at most `jobs` concurrent
  /// executors (0 = auto; the caller participates). Blocks until every
  /// sweep completed, so all seeds still happen-before a subsequent
  /// freeze() — the barrier the two-phase protocol requires. Returns the
  /// executor count actually used (1 = ran serially); cached entries are
  /// pure functions of their keys, so the result set is identical for any
  /// value.
  int seed_windows(const std::vector<GeoPoint>& targets, Duration from,
                   Duration to, int jobs = 0);

  /// Consolidate seeded entries into the immutable lock-free map and enter
  /// the frozen phase. Call exactly once, after all seeders have joined.
  void freeze();

  [[nodiscard]] bool frozen() const {
    return frozen_.load(std::memory_order_acquire);
  }

  /// Frozen phase: passes intersecting [from, to] (negative `from` clamped
  /// to 0), clipped to the window — same values, same quantization as
  /// VisibilityCache::passes_window. Appends nothing on an empty window.
  /// Steady state (frozen-map hit, `out` capacity reused) performs no
  /// allocation. `stats` (optional, per-shard) counts one pass query and,
  /// on a frozen-map hit, one pass hit.
  void passes_window_into(const GeoPoint& target, Duration from, Duration to,
                          std::vector<Pass>& out,
                          VisibilityCacheStats* stats = nullptr) const;

  /// Convenience wrapper over passes_window_into for non-hot-path callers.
  [[nodiscard]] std::vector<Pass> passes_window(
      const GeoPoint& target, Duration from, Duration to,
      VisibilityCacheStats* stats = nullptr) const;

  [[nodiscard]] const Constellation* constellation() const {
    return constellation_;
  }
  [[nodiscard]] bool earth_rotation() const { return earth_rotation_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Entries consolidated at freeze(); requires frozen().
  [[nodiscard]] std::size_t frozen_entries() const;
  /// Entries computed on the post-freeze miss path (locks the stripes).
  [[nodiscard]] std::size_t overflow_entries() const;
  /// Windows actually computed by seed_window (excludes seed-phase dedup).
  [[nodiscard]] std::uint64_t seed_computes() const {
    return seed_computes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<VisibilityKey, std::vector<Pass>, VisibilityKeyHash>
        map;
  };

  [[nodiscard]] Stripe& stripe_of(const VisibilityKey& key) const {
    return stripes_[VisibilityKeyHash{}(key) % kStripes];
  }

  const Constellation* constellation_;
  bool earth_rotation_;
  Options options_;
  PassPredictor predictor_;
  /// Seed-phase entries before freeze(); overflow entries after.
  mutable std::array<Stripe, kStripes> stripes_;
  std::unordered_map<VisibilityKey, std::vector<Pass>, VisibilityKeyHash>
      frozen_map_;
  std::atomic<bool> frozen_{false};
  std::atomic<std::uint64_t> seed_computes_{0};
  mutable std::atomic<std::uint64_t> overflow_computes_{0};
};

}  // namespace oaq
